package compress

import (
	"fmt"

	"github.com/systemds/systemds-go/internal/matrix"
)

// Matrix right-hand sides for compressed matmult: X %*% B and t(X) %*% B with
// a dense n x k (or m x k) B. The CLA pre-scaling generalizes from one vector
// to k columns at once: each dictionary tuple is multiplied against a block of
// B's columns, then rows gather (or aggregate) by code. Columns of B are
// processed in fixed-size blocks so the pre-scaled dictionaries stay cache
// resident, and the pre-scaling buffers come from the pooled GEMM scratch.

// rhsColBlock is the column-block width for matrix right-hand sides: wide
// enough to amortize the per-block dictionary pass, small enough that the
// pre-scaled dictionary (nvals x rhsColBlock) stays in cache.
const rhsColBlock = 64

// MatMultDense computes c %*% b for a dense right-hand side b (NumCols x k),
// returning an m x k dense block. Rows are partitioned into the fixed chunks;
// within a chunk, column blocks and groups run in a fixed order, so results
// are bitwise identical across thread counts.
func (c *CompressedMatrix) MatMultDense(b *matrix.MatrixBlock, threads int) (*matrix.MatrixBlock, error) {
	if b.Rows() != c.NumCols {
		return nil, fmt.Errorf("compress: matmult rhs is %dx%d, want %dx*", b.Rows(), b.Cols(), c.NumCols)
	}
	k := b.Cols()
	bd := denseBlockValues(b)
	out := matrix.NewDense(c.NumRows, k)
	dst := out.DenseValues()
	// pre-scaling scratch per chunk: the largest dictionary times the column
	// block, plus two rhsColBlock-wide rows for RLE/SDC per-run buffers
	slots := (c.maxPreScaleSlots() + 2) * rhsColBlock
	forEachRowChunk(c.NumRows, threads, func(r0, r1 int) {
		scratch := matrix.GetScratch(slots)
		buf := scratch.Values()
		for j0 := 0; j0 < k; j0 += rhsColBlock {
			j1 := min(j0+rhsColBlock, k)
			for _, g := range c.Groups {
				accumRHS(g, dst, bd, k, r0, r1, j0, j1, buf)
			}
		}
		matrix.PutScratch(scratch)
	})
	out.RecomputeNNZ()
	return out, nil
}

// accumRHS accumulates one group's contribution to dst[r0:r1, j0:j1) of
// X %*% B. bd is B's dense row-major values of width k, dst the output's of
// width k.
func accumRHS(g ColGroup, dst, bd []float64, k, r0, r1, j0, j1 int, scratch []float64) {
	blk := j1 - j0
	switch t := g.(type) {
	case *DDCGroup:
		pre := scratch[:len(t.Dict)*blk]
		brow := bd[t.Col*k+j0:]
		for kk, d := range t.Dict {
			for jj := 0; jj < blk; jj++ {
				pre[kk*blk+jj] = float64(d * brow[jj])
			}
		}
		gatherRHS(dst, pre, t.Codes8, t.Codes16, k, r0, r1, j0, blk)
	case *CoCodedGroup:
		w := len(t.Cols)
		nv := t.numVals()
		pre := scratch[:nv*blk]
		for kk := 0; kk < nv; kk++ {
			prow := pre[kk*blk : kk*blk+blk]
			clear(prow)
			for a, gc := range t.Cols {
				d := t.Dict[kk*w+a]
				if d == 0 {
					continue
				}
				brow := bd[gc*k+j0:]
				for jj := 0; jj < blk; jj++ {
					prow[jj] += float64(d * brow[jj])
				}
			}
		}
		gatherRHS(dst, pre, t.Codes8, t.Codes16, k, r0, r1, j0, blk)
	case *RLEGroup:
		p := scratch[:blk]
		brow := bd[t.Col*k+j0:]
		for i, val := range t.Values {
			if val == 0 {
				continue
			}
			lo, hi := t.runRange(i, r0, r1)
			if lo >= hi {
				continue
			}
			for jj := 0; jj < blk; jj++ {
				p[jj] = float64(val * brow[jj])
			}
			for r := lo; r < hi; r++ {
				orow := dst[r*k+j0:]
				for jj := 0; jj < blk; jj++ {
					orow[jj] += p[jj]
				}
			}
		}
	case *SDCGroup:
		brow := bd[t.Col*k+j0:]
		dv := scratch[:blk]
		for jj := 0; jj < blk; jj++ {
			dv[jj] = float64(t.Default * brow[jj])
		}
		if t.Default != 0 {
			for r := r0; r < r1; r++ {
				orow := dst[r*k+j0:]
				for jj := 0; jj < blk; jj++ {
					orow[jj] += dv[jj]
				}
			}
		}
		pre := scratch[blk : blk+len(t.Dict)*blk]
		for kk, d := range t.Dict {
			for jj := 0; jj < blk; jj++ {
				pre[kk*blk+jj] = float64(d*brow[jj]) - dv[jj]
			}
		}
		lo, hi := t.posRange(r0, r1)
		for i := lo; i < hi; i++ {
			orow := dst[int(t.Pos[i])*k+j0:]
			prow := pre[int(t.Codes[i])*blk:]
			for jj := 0; jj < blk; jj++ {
				orow[jj] += prow[jj]
			}
		}
	case *UncompressedGroup:
		for r := r0; r < r1; r++ {
			orow := dst[r*k+j0:]
			for a, gc := range t.ColIdx {
				va := t.Data.Get(r, a)
				if va == 0 {
					continue
				}
				brow := bd[gc*k+j0:]
				for jj := 0; jj < blk; jj++ {
					orow[jj] += float64(va * brow[jj])
				}
			}
		}
	}
}

// gatherRHS adds the pre-scaled dictionary rows selected by each row's code to
// the output rows.
func gatherRHS(dst, pre []float64, codes8 []uint8, codes16 []uint16, k, r0, r1, j0, blk int) {
	if codes8 != nil {
		for r := r0; r < r1; r++ {
			prow := pre[int(codes8[r])*blk:]
			orow := dst[r*k+j0:]
			for jj := 0; jj < blk; jj++ {
				orow[jj] += prow[jj]
			}
		}
		return
	}
	for r := r0; r < r1; r++ {
		prow := pre[int(codes16[r])*blk:]
		orow := dst[r*k+j0:]
		for jj := 0; jj < blk; jj++ {
			orow[jj] += prow[jj]
		}
	}
}

// TransMatMultDense computes t(c) %*% b for a dense right-hand side b
// (NumRows x k), returning an n x k dense block — the multi-column
// generalization of VecMat: B's rows are aggregated per dictionary code first
// (one pass over the codes per column block), then combined with each member
// column's dictionary values. Groups own disjoint output rows, so the
// group-parallel execution is deterministic.
func (c *CompressedMatrix) TransMatMultDense(b *matrix.MatrixBlock, threads int) (*matrix.MatrixBlock, error) {
	if b.Rows() != c.NumRows {
		return nil, fmt.Errorf("compress: trans-matmult rhs is %dx%d, want %dx*", b.Rows(), b.Cols(), c.NumRows)
	}
	k := b.Cols()
	bd := denseBlockValues(b)
	out := matrix.NewDense(c.NumCols, k)
	dst := out.DenseValues()
	rows := c.NumRows
	forEachGroup(c.Groups, threads, func(_ int, g ColGroup) {
		if u, ok := g.(*UncompressedGroup); ok {
			for a, gc := range u.ColIdx {
				orow := dst[gc*k:]
				for r := 0; r < rows; r++ {
					va := u.Data.Get(r, a)
					if va == 0 {
						continue
					}
					brow := bd[r*k:]
					for jj := 0; jj < k; jj++ {
						orow[jj] += float64(va * brow[jj])
					}
				}
			}
			return
		}
		cv := newCodedView(g, rows)
		w := len(cv.cols)
		for j0 := 0; j0 < k; j0 += rhsColBlock {
			j1 := min(j0+rhsColBlock, k)
			blk := j1 - j0
			agg := make([]float64, cv.nvals*blk)
			if cv.codes8 != nil {
				for r := 0; r < rows; r++ {
					arow := agg[int(cv.codes8[r])*blk:]
					brow := bd[r*k+j0:]
					for jj := 0; jj < blk; jj++ {
						arow[jj] += brow[jj]
					}
				}
			} else {
				for r := 0; r < rows; r++ {
					arow := agg[int(cv.codes16[r])*blk:]
					brow := bd[r*k+j0:]
					for jj := 0; jj < blk; jj++ {
						arow[jj] += brow[jj]
					}
				}
			}
			for a, gc := range cv.cols {
				orow := dst[gc*k+j0:]
				for kk := 0; kk < cv.nvals; kk++ {
					d := cv.dict[kk*w+a]
					if d == 0 {
						continue
					}
					arow := agg[kk*blk:]
					for jj := 0; jj < blk; jj++ {
						orow[jj] += float64(d * arow[jj])
					}
				}
			}
		}
	})
	out.RecomputeNNZ()
	return out, nil
}
