package compress

import (
	"github.com/systemds/systemds-go/internal/matrix"
)

// Compress runs the sample-based planner over a matrix block and, when the
// estimated compression ratio clears the threshold, encodes each column under
// its chosen scheme. It returns the compressed matrix, the plan, and whether
// compression was accepted; a rejected plan returns (nil, plan, false) and
// the caller keeps the uncompressed block.
//
// Encoding is exact and deterministic: dictionaries are built in
// first-occurrence order by a sequential row scan per column, so the same
// input always yields the same compressed bytes (bitwise-reproducible runs).
// Columns whose exact dictionary overflows MaxDictSize, or whose exact run
// count makes RLE larger than the plain column, fall back to the
// uncompressed group; adjacent fallback columns coalesce into one group.
func Compress(m *matrix.MatrixBlock, cfg PlannerConfig, threads int) (*CompressedMatrix, *Plan, bool) {
	plan := EstimatePlan(m, cfg)
	if !plan.Accepted {
		return nil, plan, false
	}
	rows, cols := m.Rows(), m.Cols()
	encoded := make([]ColGroup, cols) // nil = uncompressed fallback
	forEachGroup(planGroups(plan), threads, func(i int, _ ColGroup) {
		c := plan.Cols[i].Col
		switch plan.Cols[i].Enc {
		case EncDDC:
			encoded[c] = encodeDDC(m, c, rows)
		case EncRLE:
			encoded[c] = encodeRLE(m, c, rows)
		}
	})
	// assemble groups in column order, coalescing adjacent uncompressed
	// columns into one plain block group
	out := &CompressedMatrix{NumRows: rows, NumCols: cols}
	for c := 0; c < cols; {
		if encoded[c] != nil {
			out.Groups = append(out.Groups, encoded[c])
			c++
			continue
		}
		c0 := c
		for c < cols && encoded[c] == nil {
			c++
		}
		out.Groups = append(out.Groups, encodeUncompressed(m, c0, c, rows))
	}
	// the sample can be fooled (e.g. periodic data aligned with the stride):
	// re-check the ACHIEVED ratio after exact encoding and reject compression
	// that did not actually pay off — the caller keeps the original block
	plan.ActualCompressedBytes = out.InMemorySize()
	if float64(plan.UncompressedBytes) < cfg.minRatio()*float64(plan.ActualCompressedBytes) {
		plan.Accepted = false
		return nil, plan, false
	}
	return out, plan, true
}

// planGroups adapts the per-column loop to forEachGroup's worker scheduling
// (the group values are unused; only the index drives the work).
func planGroups(p *Plan) []ColGroup { return make([]ColGroup, len(p.Cols)) }

// encodeDDC builds the exact dense-dictionary encoding of one column, or nil
// when the exact dictionary overflows the addressable code space.
func encodeDDC(m *matrix.MatrixBlock, col, rows int) ColGroup {
	dictIdx := map[float64]int{}
	var dict []float64
	var counts []int32
	codes := make([]uint16, rows)
	for r := 0; r < rows; r++ {
		v := m.Get(r, col)
		k, ok := dictIdx[v]
		if !ok {
			if len(dict) >= MaxDictSize {
				return nil
			}
			k = len(dict)
			dictIdx[v] = k
			dict = append(dict, v)
			counts = append(counts, 0)
		}
		counts[k]++
		codes[r] = uint16(k)
	}
	g := &DDCGroup{Col: col, Dict: dict, Counts: counts}
	if len(dict) <= 256 {
		c8 := make([]uint8, rows)
		for r, k := range codes {
			c8[r] = uint8(k)
		}
		g.Codes8 = c8
	} else {
		g.Codes16 = codes
	}
	// the exact dictionary can be far larger than the sample suggested; keep
	// the plain column when the encoding does not actually shrink it
	if g.InMemorySize() >= int64(rows)*8 {
		return nil
	}
	return g
}

// encodeRLE builds the exact run-length encoding of one column, or nil when
// the runs make it larger than the plain column.
func encodeRLE(m *matrix.MatrixBlock, col, rows int) ColGroup {
	if rows == 0 {
		return &RLEGroup{Col: col}
	}
	g := &RLEGroup{Col: col}
	cur := m.Get(0, col)
	start := 0
	for r := 1; r < rows; r++ {
		v := m.Get(r, col)
		if v != cur {
			g.Values = append(g.Values, cur)
			g.Starts = append(g.Starts, int32(start))
			g.Lens = append(g.Lens, int32(r-start))
			cur, start = v, r
		}
	}
	g.Values = append(g.Values, cur)
	g.Starts = append(g.Starts, int32(start))
	g.Lens = append(g.Lens, int32(rows-start))
	if g.InMemorySize() >= int64(rows)*8 {
		return nil
	}
	return g
}

// encodeUncompressed slices columns [c0, c1) into one plain block group.
func encodeUncompressed(m *matrix.MatrixBlock, c0, c1, rows int) ColGroup {
	cols := make([]int, c1-c0)
	for i := range cols {
		cols[i] = c0 + i
	}
	blk, err := matrix.Slice(m, 0, rows, c0, c1)
	if err != nil {
		// the bounds are derived from the input's own shape; a failure here is
		// a programming error, but fall back to a manual copy to stay total
		blk = matrix.NewDense(rows, c1-c0)
		for r := 0; r < rows; r++ {
			for c := c0; c < c1; c++ {
				blk.Set(r, c-c0, m.Get(r, c))
			}
		}
		blk = blk.ExamineAndApplySparsity()
	}
	return &UncompressedGroup{ColIdx: cols, Data: blk}
}
