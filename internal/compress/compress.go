package compress

import (
	"encoding/binary"
	"math"

	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/obs"
)

// Compress runs the sample-based planner over a matrix block and, when the
// estimated compression ratio clears the threshold, encodes each column (or
// co-coded column set) under its chosen scheme. It returns the compressed
// matrix, the plan, and whether compression was accepted; a rejected plan
// returns (nil, plan, false) and the caller keeps the uncompressed block.
//
// Encoding is exact and deterministic: dictionaries are built in
// first-occurrence order by a sequential row scan per column, so the same
// input always yields the same compressed bytes (bitwise-reproducible runs).
// Columns whose exact dictionary overflows MaxDictSize, or whose exact
// encoding is larger than the plain column, fall back — co-coded sets to
// per-column DDC, everything else to the uncompressed group; adjacent
// fallback columns coalesce into one group.
func Compress(m *matrix.MatrixBlock, cfg PlannerConfig, threads int) (*CompressedMatrix, *Plan, bool) {
	sp := obs.Begin(obs.CatCompress, "encode")
	out, plan, ok := compressBlock(m, cfg, threads)
	if ok {
		sp.EndBytes(plan.ActualCompressedBytes)
	} else {
		sp.End()
	}
	return out, plan, ok
}

func compressBlock(m *matrix.MatrixBlock, cfg PlannerConfig, threads int) (*CompressedMatrix, *Plan, bool) {
	plan := EstimatePlan(m, cfg)
	if !plan.Accepted {
		return nil, plan, false
	}
	rows, cols := m.Rows(), m.Cols()
	// one encode unit per planned group: co-coded sets plus single columns
	type encodeUnit struct {
		cols []int
		enc  Encoding
		def  float64
	}
	skip := make([]bool, cols)
	ccAt := make(map[int][]int, len(plan.CoCoded))
	for _, cc := range plan.CoCoded {
		ccAt[cc.Cols[0]] = cc.Cols
		for _, c := range cc.Cols[1:] {
			skip[c] = true
		}
	}
	units := make([]encodeUnit, 0, cols)
	for c := 0; c < cols; c++ {
		if skip[c] {
			continue
		}
		if set, ok := ccAt[c]; ok {
			units = append(units, encodeUnit{cols: set, enc: EncCoCoded})
			continue
		}
		units = append(units, encodeUnit{cols: []int{c}, enc: plan.Cols[c].Enc, def: plan.Cols[c].Default})
	}
	encoded := make([]ColGroup, cols) // indexed by first column; nil = fallback
	forEachIndex(len(units), threads, func(i int) {
		u := units[i]
		switch u.enc {
		case EncCoCoded:
			if g := encodeCoCoded(m, u.cols, rows); g != nil {
				encoded[u.cols[0]] = g
				return
			}
			// the exact joint dictionary overflowed or did not pay off:
			// encode the members separately
			for _, c := range u.cols {
				encoded[c] = encodeDDC(m, c, rows)
			}
		case EncDDC:
			encoded[u.cols[0]] = encodeDDC(m, u.cols[0], rows)
		case EncRLE:
			encoded[u.cols[0]] = encodeRLE(m, u.cols[0], rows)
		case EncSDC:
			encoded[u.cols[0]] = encodeSDC(m, u.cols[0], rows, u.def)
		}
	})
	// assemble groups in column order (a group's columns are contiguous),
	// coalescing adjacent uncompressed columns into one plain block group
	out := &CompressedMatrix{NumRows: rows, NumCols: cols}
	for c := 0; c < cols; {
		if g := encoded[c]; g != nil {
			out.Groups = append(out.Groups, g)
			c += len(g.Columns())
			continue
		}
		c0 := c
		for c < cols && encoded[c] == nil {
			c++
		}
		out.Groups = append(out.Groups, encodeUncompressed(m, c0, c, rows))
	}
	// the sample can be fooled (e.g. periodic data aligned with the stride):
	// re-check the ACHIEVED ratio after exact encoding and reject compression
	// that did not actually pay off — the caller keeps the original block
	plan.ActualCompressedBytes = out.InMemorySize()
	if float64(plan.UncompressedBytes) < cfg.minRatio()*float64(plan.ActualCompressedBytes) {
		plan.Accepted = false
		return nil, plan, false
	}
	return out, plan, true
}

// encodeDDC builds the exact dense-dictionary encoding of one column, or nil
// when the exact dictionary overflows the addressable code space.
func encodeDDC(m *matrix.MatrixBlock, col, rows int) ColGroup {
	dictIdx := map[float64]int{}
	var dict []float64
	var counts []int32
	codes := make([]uint16, rows)
	for r := 0; r < rows; r++ {
		v := m.Get(r, col)
		k, ok := dictIdx[v]
		if !ok {
			if len(dict) >= MaxDictSize {
				return nil
			}
			k = len(dict)
			dictIdx[v] = k
			dict = append(dict, v)
			counts = append(counts, 0)
		}
		counts[k]++
		codes[r] = uint16(k)
	}
	g := &DDCGroup{Col: col, Dict: dict, Counts: counts}
	if len(dict) <= 256 {
		c8 := make([]uint8, rows)
		for r, k := range codes {
			c8[r] = uint8(k)
		}
		g.Codes8 = c8
	} else {
		g.Codes16 = codes
	}
	// the exact dictionary can be far larger than the sample suggested; keep
	// the plain column when the encoding does not actually shrink it
	if g.InMemorySize() >= int64(rows)*8 {
		return nil
	}
	return g
}

// encodeRLE builds the exact run-length encoding of one column, or nil when
// the runs make it larger than the plain column.
func encodeRLE(m *matrix.MatrixBlock, col, rows int) ColGroup {
	if rows == 0 {
		return &RLEGroup{Col: col}
	}
	g := &RLEGroup{Col: col}
	cur := m.Get(0, col)
	start := 0
	for r := 1; r < rows; r++ {
		v := m.Get(r, col)
		if v != cur {
			g.Values = append(g.Values, cur)
			g.Starts = append(g.Starts, int32(start))
			g.Lens = append(g.Lens, int32(r-start))
			cur, start = v, r
		}
	}
	g.Values = append(g.Values, cur)
	g.Starts = append(g.Starts, int32(start))
	g.Lens = append(g.Lens, int32(rows-start))
	if g.InMemorySize() >= int64(rows)*8 {
		return nil
	}
	return g
}

// encodeSDC builds the exact sparse-dictionary encoding of one column around
// the given default value, or nil when the exceptions overflow the code space
// or the encoding does not shrink the column.
func encodeSDC(m *matrix.MatrixBlock, col, rows int, def float64) ColGroup {
	g := &SDCGroup{Col: col, N: rows, Default: def}
	dictIdx := map[float64]int{}
	for r := 0; r < rows; r++ {
		v := m.Get(r, col)
		if v == def {
			continue
		}
		k, ok := dictIdx[v]
		if !ok {
			if len(g.Dict) >= MaxDictSize {
				return nil
			}
			k = len(g.Dict)
			dictIdx[v] = k
			g.Dict = append(g.Dict, v)
			g.Counts = append(g.Counts, 0)
		}
		g.Counts[k]++
		g.Pos = append(g.Pos, int32(r))
		g.Codes = append(g.Codes, uint16(k))
	}
	if g.InMemorySize() >= int64(rows)*8 {
		return nil
	}
	return g
}

// encodeCoCoded builds the exact joint dictionary encoding of a contiguous
// column set, or nil when the tuple dictionary overflows MaxDictSize or the
// encoding is larger than the plain columns.
func encodeCoCoded(m *matrix.MatrixBlock, set []int, rows int) ColGroup {
	w := len(set)
	key := make([]byte, w*8)
	dictIdx := map[string]int{}
	var dict []float64
	var counts []int32
	codes := make([]uint16, rows)
	for r := 0; r < rows; r++ {
		for j, c := range set {
			binary.LittleEndian.PutUint64(key[j*8:], math.Float64bits(m.Get(r, c)))
		}
		k, ok := dictIdx[string(key)]
		if !ok {
			if len(counts) >= MaxDictSize {
				return nil
			}
			k = len(counts)
			dictIdx[string(key)] = k
			for _, c := range set {
				dict = append(dict, m.Get(r, c))
			}
			counts = append(counts, 0)
		}
		counts[k]++
		codes[r] = uint16(k)
	}
	g := &CoCodedGroup{Cols: append([]int(nil), set...), Dict: dict, Counts: counts}
	if len(counts) <= 256 {
		c8 := make([]uint8, rows)
		for r, k := range codes {
			c8[r] = uint8(k)
		}
		g.Codes8 = c8
	} else {
		g.Codes16 = codes
	}
	if g.InMemorySize() >= int64(rows)*8*int64(w) {
		return nil
	}
	return g
}

// encodeUncompressed slices columns [c0, c1) into one plain block group.
func encodeUncompressed(m *matrix.MatrixBlock, c0, c1, rows int) ColGroup {
	cols := make([]int, c1-c0)
	for i := range cols {
		cols[i] = c0 + i
	}
	blk, err := matrix.Slice(m, 0, rows, c0, c1)
	if err != nil {
		// the bounds are derived from the input's own shape; a failure here is
		// a programming error, but fall back to a manual copy to stay total
		blk = matrix.NewDense(rows, c1-c0)
		for r := 0; r < rows; r++ {
			for c := c0; c < c1; c++ {
				blk.Set(r, c-c0, m.Get(r, c))
			}
		}
		blk = blk.ExamineAndApplySparsity()
	}
	return &UncompressedGroup{ColIdx: cols, Data: blk}
}
