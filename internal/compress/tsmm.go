package compress

import (
	"github.com/systemds/systemds-go/internal/matrix"
)

// Compressed TSMM t(X) %*% X: the n x n Gram matrix decomposes over column
// group pairs, R[Ci, Cj] = sum_r X[r, Ci] * X[r, Cj]. For dictionary-coded
// groups the row sum collapses onto the small dictionaries: self blocks are
// counts-weighted dictionary cross products t(D_i) %*% diag(counts_i) %*% D_i,
// and cross blocks are co-occurrence-weighted products t(D_i) %*% C_ij %*% D_j
// where C_ij counts how often code pair (k_i, k_j) occurs across the rows —
// one O(rows) scan per pair instead of an O(rows * w_i * w_j) cell product
// (Elgohary et al., PVLDB 2016, §5). Uncompressed groups (and pairs whose
// co-occurrence table would not pay off) fall back to multiplying against
// decompressed row stripes staged through the pooled GEMM scratch buffers.
//
// Determinism: group pairs write disjoint output blocks (groups cover disjoint
// columns), so pair-parallel execution needs no synchronization; within a pair
// every accumulation runs in a fixed ascending order (codes, then row chunks),
// so results are bitwise identical across thread counts.

// maxCoocEntries caps the co-occurrence table built for one group pair; pairs
// whose joint code space is larger fall back to the stripe path (the table
// would cost more to fill and scan than the dense product it replaces).
const maxCoocEntries = 1 << 22

// codedView is the normalized dictionary-coded form of a column group used by
// the TSMM cross products: a tuple-major dictionary (nvals x len(cols)) plus
// one code per row. DDC and co-coded groups view their storage directly;
// SDC and RLE groups expand per-row codes once per TSMM call.
type codedView struct {
	cols    []int
	dict    []float64 // nvals x len(cols), tuple-major
	counts  []int32   // occurrences per tuple
	nvals   int
	codes8  []uint8
	codes16 []uint16
}

// newCodedView normalizes a group into dictionary+codes form, or nil for
// uncompressed groups.
func newCodedView(g ColGroup, rows int) *codedView {
	switch t := g.(type) {
	case *DDCGroup:
		return &codedView{cols: []int{t.Col}, dict: t.Dict, counts: t.Counts,
			nvals: len(t.Dict), codes8: t.Codes8, codes16: t.Codes16}
	case *CoCodedGroup:
		return &codedView{cols: t.Cols, dict: t.Dict, counts: t.Counts,
			nvals: t.numVals(), codes8: t.Codes8, codes16: t.Codes16}
	case *SDCGroup:
		// code 0 is the default value, exception codes shift up by one
		nv := len(t.Dict) + 1
		cv := &codedView{cols: []int{t.Col}, nvals: nv,
			dict: make([]float64, nv), counts: make([]int32, nv)}
		cv.dict[0] = t.Default
		copy(cv.dict[1:], t.Dict)
		cv.counts[0] = int32(t.N - len(t.Pos))
		copy(cv.counts[1:], t.Counts)
		if nv <= 256 {
			codes := make([]uint8, rows)
			for i, p := range t.Pos {
				codes[p] = uint8(t.Codes[i] + 1)
			}
			cv.codes8 = codes
		} else {
			codes := make([]uint16, rows)
			for i, p := range t.Pos {
				codes[p] = t.Codes[i] + 1
			}
			cv.codes16 = codes
		}
		return cv
	case *RLEGroup:
		// first-occurrence value dictionary, runs expanded to per-row codes
		cv := &codedView{cols: []int{t.Col}}
		codes := make([]uint16, rows)
		idx := map[float64]int{}
		for i, v := range t.Values {
			k, ok := idx[v]
			if !ok {
				k = cv.nvals
				idx[v] = k
				cv.dict = append(cv.dict, v)
				cv.counts = append(cv.counts, 0)
				cv.nvals++
			}
			cv.counts[k] += t.Lens[i]
			for r := int(t.Starts[i]); r < int(t.Starts[i]+t.Lens[i]); r++ {
				codes[r] = uint16(k)
			}
		}
		if cv.nvals <= 256 {
			c8 := make([]uint8, rows)
			for r, k := range codes {
				c8[r] = uint8(k)
			}
			cv.codes8 = c8
		} else {
			cv.codes16 = codes
		}
		return cv
	}
	return nil
}

// stripeInto expands rows [r0, r1) into a dense row-major stripe of width
// len(cv.cols).
func (cv *codedView) stripeInto(s []float64, r0, r1 int) {
	w := len(cv.cols)
	if cv.codes8 != nil {
		for r := r0; r < r1; r++ {
			copy(s[(r-r0)*w:(r-r0)*w+w], cv.dict[int(cv.codes8[r])*w:])
		}
		return
	}
	for r := r0; r < r1; r++ {
		copy(s[(r-r0)*w:(r-r0)*w+w], cv.dict[int(cv.codes16[r])*w:])
	}
}

// coocCounts fills the a.nvals x b.nvals co-occurrence table of code pairs by
// one joint scan over the rows.
func coocCounts(a, b *codedView, rows int) []int32 {
	t := make([]int32, a.nvals*b.nvals)
	bn := b.nvals
	switch {
	case a.codes8 != nil && b.codes8 != nil:
		for r := 0; r < rows; r++ {
			t[int(a.codes8[r])*bn+int(b.codes8[r])]++
		}
	case a.codes8 != nil:
		for r := 0; r < rows; r++ {
			t[int(a.codes8[r])*bn+int(b.codes16[r])]++
		}
	case b.codes8 != nil:
		for r := 0; r < rows; r++ {
			t[int(a.codes16[r])*bn+int(b.codes8[r])]++
		}
	default:
		for r := 0; r < rows; r++ {
			t[int(a.codes16[r])*bn+int(b.codes16[r])]++
		}
	}
	return t
}

// tsmmSide is one side of a group pair: either a coded view or the dense
// values of an uncompressed group (row-major rows x len(cols)).
type tsmmSide struct {
	cols  []int
	view  *codedView
	dense []float64
}

// chunkValues returns the dense row-major values of rows [r0, r1), expanding
// coded groups into the caller's pooled stripe buffer.
func (s *tsmmSide) chunkValues(buf []float64, r0, r1 int) []float64 {
	w := len(s.cols)
	if s.dense != nil {
		return s.dense[r0*w : r1*w]
	}
	s.view.stripeInto(buf, r0, r1)
	return buf[:(r1-r0)*w]
}

// tsmmSides normalizes every group once (coded views for dictionary groups,
// densified values for uncompressed groups).
func (c *CompressedMatrix) tsmmSides(threads int) []*tsmmSide {
	sides := make([]*tsmmSide, len(c.Groups))
	forEachGroup(c.Groups, threads, func(i int, g ColGroup) {
		s := &tsmmSide{cols: g.Columns()}
		if cv := newCodedView(g, c.NumRows); cv != nil {
			s.view = cv
		} else {
			u := g.(*UncompressedGroup)
			s.dense = denseBlockValues(u.Data)
		}
		sides[i] = s
	})
	return sides
}

// TSMM computes t(X) %*% X directly on the compressed representation,
// returning the n x n Gram matrix.
func (c *CompressedMatrix) TSMM(threads int) *matrix.MatrixBlock {
	n := c.NumCols
	rows := c.NumRows
	out := matrix.NewDense(n, n)
	dst := out.DenseValues()
	sides := c.tsmmSides(threads)
	// enumerate group pairs (i <= j) in a fixed order; each pair owns the
	// disjoint output blocks R[Ci, Cj] and R[Cj, Ci]
	type pair struct{ i, j int }
	pairs := make([]pair, 0, len(c.Groups)*(len(c.Groups)+1)/2)
	for i := range c.Groups {
		for j := i; j < len(c.Groups); j++ {
			pairs = append(pairs, pair{i, j})
		}
	}
	forEachIndex(len(pairs), threads, func(pi int) {
		p := pairs[pi]
		if p.i == p.j {
			tsmmSelf(dst, n, c.Groups[p.i], sides[p.i], rows)
			return
		}
		tsmmCross(dst, n, sides[p.i], sides[p.j], rows)
	})
	out.RecomputeNNZ()
	return out
}

// tsmmSelf fills the diagonal block R[Ci, Ci] of one group.
func tsmmSelf(dst []float64, n int, g ColGroup, s *tsmmSide, rows int) {
	if cv := s.view; cv != nil {
		// counts-weighted dictionary self product: every (a, b) column pair
		// accumulates over the tuple dictionary in ascending code order
		w := len(cv.cols)
		for a := 0; a < w; a++ {
			for b := a; b < w; b++ {
				var sum float64
				for k := 0; k < cv.nvals; k++ {
					cnt := cv.counts[k]
					if cnt == 0 {
						continue
					}
					sum += float64(float64(cnt) * cv.dict[k*w+a] * cv.dict[k*w+b])
				}
				ca, cb := cv.cols[a], cv.cols[b]
				dst[ca*n+cb] = sum
				dst[cb*n+ca] = sum
			}
		}
		return
	}
	// uncompressed fallback: tiled TSMM over the group's own block, scattered
	// to the global column positions
	u := g.(*UncompressedGroup)
	//sysds:ok(threadplumb): pair-level parallelism already saturates the workers; the per-pair kernel stays sequential by design
	gram := matrix.TSMM(u.Data, 1)
	for a, ca := range s.cols {
		for b, cb := range s.cols {
			dst[ca*n+cb] = gram.Get(a, b)
		}
	}
}

// tsmmCross fills the off-diagonal blocks R[Ci, Cj] and R[Cj, Ci] of a group
// pair.
func tsmmCross(dst []float64, n int, si, sj *tsmmSide, rows int) {
	wi, wj := len(si.cols), len(sj.cols)
	if si.view != nil && sj.view != nil &&
		si.view.nvals*sj.view.nvals <= maxCoocEntries {
		// co-occurrence-weighted dictionary cross product
		vi, vj := si.view, sj.view
		cooc := coocCounts(vi, vj, rows)
		for a := 0; a < wi; a++ {
			for b := 0; b < wj; b++ {
				var sum float64
				for ki := 0; ki < vi.nvals; ki++ {
					da := vi.dict[ki*wi+a]
					if da == 0 {
						continue
					}
					row := cooc[ki*vj.nvals:]
					for kj := 0; kj < vj.nvals; kj++ {
						cnt := row[kj]
						if cnt == 0 {
							continue
						}
						sum += float64(float64(cnt) * da * vj.dict[kj*wj+b])
					}
				}
				ca, cb := si.cols[a], sj.cols[b]
				dst[ca*n+cb] = sum
				dst[cb*n+ca] = sum
			}
		}
		return
	}
	// stripe fallback: decompress both sides chunk by chunk (pooled scratch)
	// and accumulate the dense cross product in ascending chunk order
	acc := make([]float64, wi*wj)
	bufI := matrix.GetScratch(compressedChunkRows * wi)
	bufJ := matrix.GetScratch(compressedChunkRows * wj)
	nChunks, chunkSize := rowChunks(rows)
	for ci := 0; ci < nChunks; ci++ {
		r0 := ci * chunkSize
		r1 := min(r0+chunkSize, rows)
		vi := si.chunkValues(bufI.Values(), r0, r1)
		vj := sj.chunkValues(bufJ.Values(), r0, r1)
		for r := 0; r < r1-r0; r++ {
			ri, rj := vi[r*wi:r*wi+wi], vj[r*wj:r*wj+wj]
			for a, va := range ri {
				if va == 0 {
					continue
				}
				arow := acc[a*wj:]
				for b, vb := range rj {
					arow[b] += float64(va * vb)
				}
			}
		}
	}
	matrix.PutScratch(bufI)
	matrix.PutScratch(bufJ)
	for a, ca := range si.cols {
		for b, cb := range sj.cols {
			dst[ca*n+cb] = acc[a*wj+b]
			dst[cb*n+ca] = acc[a*wj+b]
		}
	}
}

// denseBlockValues returns the row-major dense values of a block without
// mutating the caller's representation.
func denseBlockValues(m *matrix.MatrixBlock) []float64 {
	if !m.IsSparse() {
		return m.DenseValues()
	}
	return m.Copy().DenseValues()
}
