package compress

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"github.com/systemds/systemds-go/internal/matrix"
)

// Binary serialization of compressed matrices for buffer-pool spill files.
// The point of spilling a compressed matrix is that the *compressed* bytes
// hit disk: the format writes dictionaries, codes and runs directly, never a
// decompressed cell image.

const serializeMagic = uint32(0x53445343) // "SDSC"

type binWriter struct {
	w   *bufio.Writer
	err error
}

func (b *binWriter) write(v any) {
	if b.err == nil {
		b.err = binary.Write(b.w, binary.LittleEndian, v)
	}
}

type binReader struct {
	r   *bufio.Reader
	err error
}

func (b *binReader) read(v any) {
	if b.err == nil {
		b.err = binary.Read(b.r, binary.LittleEndian, v)
	}
}

// Write serializes the compressed matrix.
func (c *CompressedMatrix) Write(w io.Writer) error {
	bw := &binWriter{w: bufio.NewWriter(w)}
	bw.write(serializeMagic)
	bw.write(int64(c.NumRows))
	bw.write(int64(c.NumCols))
	bw.write(int32(len(c.Groups)))
	for _, g := range c.Groups {
		switch t := g.(type) {
		case *DDCGroup:
			bw.write(uint8(EncDDC))
			bw.write(int32(t.Col))
			bw.write(int32(len(t.Dict)))
			bw.write(t.Dict)
			bw.write(t.Counts)
			if t.Codes8 != nil {
				bw.write(uint8(1))
				bw.write(int64(len(t.Codes8)))
				bw.write(t.Codes8)
			} else {
				bw.write(uint8(2))
				bw.write(int64(len(t.Codes16)))
				bw.write(t.Codes16)
			}
		case *RLEGroup:
			bw.write(uint8(EncRLE))
			bw.write(int32(t.Col))
			bw.write(int32(len(t.Values)))
			bw.write(t.Values)
			bw.write(t.Starts)
			bw.write(t.Lens)
		case *CoCodedGroup:
			bw.write(uint8(EncCoCoded))
			bw.write(int32(len(t.Cols)))
			for _, ci := range t.Cols {
				bw.write(int32(ci))
			}
			bw.write(int32(t.numVals()))
			bw.write(t.Dict)
			bw.write(t.Counts)
			if t.Codes8 != nil {
				bw.write(uint8(1))
				bw.write(int64(len(t.Codes8)))
				bw.write(t.Codes8)
			} else {
				bw.write(uint8(2))
				bw.write(int64(len(t.Codes16)))
				bw.write(t.Codes16)
			}
		case *SDCGroup:
			bw.write(uint8(EncSDC))
			bw.write(int32(t.Col))
			bw.write(int64(t.N))
			bw.write(t.Default)
			bw.write(int32(len(t.Dict)))
			bw.write(t.Dict)
			bw.write(t.Counts)
			bw.write(int64(len(t.Pos)))
			bw.write(t.Pos)
			bw.write(t.Codes)
		case *UncompressedGroup:
			bw.write(uint8(EncUncompressed))
			bw.write(int32(len(t.ColIdx)))
			for _, ci := range t.ColIdx {
				bw.write(int32(ci))
			}
			rows, cols := t.Data.Rows(), t.Data.Cols()
			bw.write(int64(rows))
			bw.write(int64(cols))
			// dense row-major cell image of just this group's columns
			for r := 0; r < rows; r++ {
				for cc := 0; cc < cols; cc++ {
					bw.write(t.Data.Get(r, cc))
				}
			}
		default:
			return fmt.Errorf("compress: cannot serialize column group %T", g)
		}
	}
	if bw.err != nil {
		return bw.err
	}
	return bw.w.Flush()
}

// Read deserializes a compressed matrix written by Write.
func Read(r io.Reader) (*CompressedMatrix, error) {
	br := &binReader{r: bufio.NewReader(r)}
	var magic uint32
	br.read(&magic)
	if br.err == nil && magic != serializeMagic {
		return nil, fmt.Errorf("compress: bad magic %#x in compressed spill file", magic)
	}
	var rows64, cols64 int64
	var ngroups int32
	br.read(&rows64)
	br.read(&cols64)
	br.read(&ngroups)
	if br.err != nil {
		return nil, br.err
	}
	out := &CompressedMatrix{NumRows: int(rows64), NumCols: int(cols64)}
	for gi := int32(0); gi < ngroups; gi++ {
		var tag uint8
		br.read(&tag)
		switch Encoding(tag) {
		case EncDDC:
			var col, dictLen int32
			br.read(&col)
			br.read(&dictLen)
			g := &DDCGroup{Col: int(col), Dict: make([]float64, dictLen), Counts: make([]int32, dictLen)}
			br.read(g.Dict)
			br.read(g.Counts)
			var width uint8
			var n int64
			br.read(&width)
			br.read(&n)
			if width == 1 {
				g.Codes8 = make([]uint8, n)
				br.read(g.Codes8)
			} else {
				g.Codes16 = make([]uint16, n)
				br.read(g.Codes16)
			}
			out.Groups = append(out.Groups, g)
		case EncRLE:
			var col, nruns int32
			br.read(&col)
			br.read(&nruns)
			g := &RLEGroup{Col: int(col), Values: make([]float64, nruns), Starts: make([]int32, nruns), Lens: make([]int32, nruns)}
			br.read(g.Values)
			br.read(g.Starts)
			br.read(g.Lens)
			out.Groups = append(out.Groups, g)
		case EncCoCoded:
			var ncols, nvals int32
			br.read(&ncols)
			cols := make([]int, ncols)
			for i := range cols {
				var ci int32
				br.read(&ci)
				cols[i] = int(ci)
			}
			br.read(&nvals)
			g := &CoCodedGroup{Cols: cols,
				Dict:   make([]float64, int(nvals)*int(ncols)),
				Counts: make([]int32, nvals)}
			br.read(g.Dict)
			br.read(g.Counts)
			var width uint8
			var n int64
			br.read(&width)
			br.read(&n)
			if width == 1 {
				g.Codes8 = make([]uint8, n)
				br.read(g.Codes8)
			} else {
				g.Codes16 = make([]uint16, n)
				br.read(g.Codes16)
			}
			out.Groups = append(out.Groups, g)
		case EncSDC:
			var col, dictLen int32
			var nrows, npos int64
			br.read(&col)
			br.read(&nrows)
			g := &SDCGroup{Col: int(col), N: int(nrows)}
			br.read(&g.Default)
			br.read(&dictLen)
			g.Dict = make([]float64, dictLen)
			g.Counts = make([]int32, dictLen)
			br.read(g.Dict)
			br.read(g.Counts)
			br.read(&npos)
			g.Pos = make([]int32, npos)
			g.Codes = make([]uint16, npos)
			br.read(g.Pos)
			br.read(g.Codes)
			out.Groups = append(out.Groups, g)
		case EncUncompressed:
			var ncols int32
			br.read(&ncols)
			idx := make([]int, ncols)
			for i := range idx {
				var ci int32
				br.read(&ci)
				idx[i] = int(ci)
			}
			var grows, gcols int64
			br.read(&grows)
			br.read(&gcols)
			vals := make([]float64, grows*gcols)
			br.read(vals)
			if br.err != nil {
				return nil, br.err
			}
			blk := matrix.NewDenseFromSlice(int(grows), int(gcols), vals)
			out.Groups = append(out.Groups, &UncompressedGroup{ColIdx: idx, Data: blk.ExamineAndApplySparsity()})
		default:
			if br.err == nil {
				return nil, fmt.Errorf("compress: unknown column-group tag %d", tag)
			}
		}
		if br.err != nil {
			return nil, br.err
		}
	}
	return out, nil
}

// WriteFile spills the compressed matrix to a file.
func (c *CompressedMatrix) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.Write(f); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	return f.Close()
}

// ReadFile restores a compressed matrix from a spill file.
func ReadFile(path string) (*CompressedMatrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
