// Package compress implements compressed linear algebra (CLA) for
// SystemDS-Go: matrices are compressed column-wise into encoded column
// groups — DDC (dense dictionary coding) for low-cardinality columns, RLE
// (run-length encoding) for run-heavy columns, and an uncompressed-column
// fallback — and linear-algebra kernels execute directly on the compressed
// representation without decompressing (Elgohary et al., "Compressed Linear
// Algebra for Large-Scale Machine Learning", PVLDB 2016). A sample-based
// planner estimates per-column cardinality and run structure, picks the
// cheapest encoding per column, and rejects compression outright when the
// estimated ratio is too small to pay for itself.
package compress

import (
	"math"

	"github.com/systemds/systemds-go/internal/matrix"
)

// Encoding names a column-group encoding scheme.
type Encoding int

// Column-group encodings.
const (
	// EncDDC is dense dictionary coding: every row stores a small code
	// indexing a dictionary of the column's distinct values.
	EncDDC Encoding = iota
	// EncRLE is run-length encoding: the column is a sequence of
	// (value, start, length) runs covering every row, zeros included.
	EncRLE
	// EncUncompressed keeps the columns as a plain matrix block.
	EncUncompressed
	// EncCoCoded is joint dictionary coding of several correlated columns:
	// one code per row indexes a dictionary of value tuples.
	EncCoCoded
	// EncSDC is sparse dictionary coding: a default value covers most rows
	// and only the exception positions store dictionary codes.
	EncSDC
)

// String returns the short encoding name used in plan strings.
func (e Encoding) String() string {
	switch e {
	case EncDDC:
		return "ddc"
	case EncRLE:
		return "rle"
	case EncCoCoded:
		return "cc"
	case EncSDC:
		return "sdc"
	default:
		return "unc"
	}
}

// ColGroup is one compressed column group. All groups cover every row of the
// matrix (zeros are represented explicitly in the dictionary or runs), so
// value-map operations (scalar ops, cellwise unaries) are dictionary-only
// updates. Kernels index vectors by global row/column positions.
type ColGroup interface {
	// Columns returns the global column indexes the group covers, ascending.
	Columns() []int
	// Encoding returns the group's encoding scheme.
	Encoding() Encoding
	// InMemorySize estimates the group's in-memory footprint in bytes.
	InMemorySize() int64
	// NNZ returns the exact number of non-zero cells in the group.
	NNZ() int64
	// DecompressInto scatters rows [r0, r1) of the group into the dense
	// row-major output of width nCols.
	DecompressInto(out []float64, nCols, r0, r1 int)
	// MatVecAccum accumulates out[r] += sum_c group(r,c)*v[c] for rows
	// [r0, r1); v is indexed by global column, out by global row. scratch is
	// a caller-provided buffer of at least dictionary size (may be nil) that
	// lets per-chunk callers amortize the pre-scaled dictionary allocation.
	MatVecAccum(out, v []float64, r0, r1 int, scratch []float64)
	// VecMatAccum accumulates out[c] += sum_r v[r]*group(r,c) over all rows;
	// out is indexed by global column.
	VecMatAccum(out, v []float64)
	// MapValues returns a new group with fn applied to every cell value. The
	// encoding structure (codes, run positions) is shared, only the value
	// dictionary is rewritten — the dictionary-only update of CLA.
	MapValues(fn func(float64) float64) ColGroup
	// Sum returns the sum of all cells, SumSq the sum of squares.
	Sum() float64
	SumSq() float64
	// MinMax returns the smallest and largest cell value of the group.
	MinMax() (float64, float64)
	// ColAggInto writes per-column sums into out (global column indexing).
	ColSumsInto(out []float64)
	// RowSumsAccum accumulates per-row sums for rows [r0, r1).
	RowSumsAccum(out []float64, r0, r1 int)
}

// --- DDC: dense dictionary coding -----------------------------------------

// DDCGroup encodes one column as per-row codes into a dictionary of distinct
// values. Codes are stored in one byte when the dictionary has at most 256
// entries (DDC1) and two bytes otherwise (DDC2, up to 65536 entries).
type DDCGroup struct {
	Col    int
	Dict   []float64
	Counts []int32 // occurrences per dictionary entry (len == len(Dict))
	// exactly one of Codes8/Codes16 is non-nil, with one code per row
	Codes8  []uint8
	Codes16 []uint16
}

// Columns implements ColGroup.
func (g *DDCGroup) Columns() []int { return []int{g.Col} }

// Encoding implements ColGroup.
func (g *DDCGroup) Encoding() Encoding { return EncDDC }

// NumRows returns the number of encoded rows.
func (g *DDCGroup) NumRows() int {
	if g.Codes8 != nil {
		return len(g.Codes8)
	}
	return len(g.Codes16)
}

// InMemorySize implements ColGroup.
func (g *DDCGroup) InMemorySize() int64 {
	s := int64(len(g.Dict))*8 + int64(len(g.Counts))*4 + 64
	if g.Codes8 != nil {
		s += int64(len(g.Codes8))
	} else {
		s += int64(len(g.Codes16)) * 2
	}
	return s
}

// NNZ implements ColGroup.
func (g *DDCGroup) NNZ() int64 {
	var nnz int64
	for k, v := range g.Dict {
		if v != 0 {
			nnz += int64(g.Counts[k])
		}
	}
	return nnz
}

// DecompressInto implements ColGroup.
func (g *DDCGroup) DecompressInto(out []float64, nCols, r0, r1 int) {
	if g.Codes8 != nil {
		for r := r0; r < r1; r++ {
			out[(r-r0)*nCols+g.Col] = g.Dict[g.Codes8[r]]
		}
		return
	}
	for r := r0; r < r1; r++ {
		out[(r-r0)*nCols+g.Col] = g.Dict[g.Codes16[r]]
	}
}

// MatVecAccum implements ColGroup: the dictionary is pre-scaled by the vector
// entry once (the CLA pre-aggregation), then rows gather by code.
func (g *DDCGroup) MatVecAccum(out, v []float64, r0, r1 int, scratch []float64) {
	x := v[g.Col]
	if x == 0 {
		return
	}
	pre := scratch
	if len(pre) < len(g.Dict) {
		pre = make([]float64, len(g.Dict))
	} else {
		pre = pre[:len(g.Dict)]
	}
	for k, d := range g.Dict {
		pre[k] = d * x
	}
	if g.Codes8 != nil {
		for r := r0; r < r1; r++ {
			out[r-r0] += pre[g.Codes8[r]]
		}
		return
	}
	for r := r0; r < r1; r++ {
		out[r-r0] += pre[g.Codes16[r]]
	}
}

// VecMatAccum implements ColGroup: vector entries are aggregated per
// dictionary code first, then combined with the dictionary once.
func (g *DDCGroup) VecMatAccum(out, v []float64) {
	w := make([]float64, len(g.Dict))
	if g.Codes8 != nil {
		for r, c := range g.Codes8 {
			w[c] += v[r]
		}
	} else {
		for r, c := range g.Codes16 {
			w[c] += v[r]
		}
	}
	var s float64
	for k, d := range g.Dict {
		s += float64(w[k] * d)
	}
	out[g.Col] += s
}

// MapValues implements ColGroup: codes and counts are shared, only the
// dictionary is rewritten.
func (g *DDCGroup) MapValues(fn func(float64) float64) ColGroup {
	dict := make([]float64, len(g.Dict))
	for k, d := range g.Dict {
		dict[k] = fn(d)
	}
	return &DDCGroup{Col: g.Col, Dict: dict, Counts: g.Counts, Codes8: g.Codes8, Codes16: g.Codes16}
}

// Sum implements ColGroup.
func (g *DDCGroup) Sum() float64 {
	var s float64
	for k, d := range g.Dict {
		s += float64(float64(g.Counts[k]) * d)
	}
	return s
}

// SumSq implements ColGroup.
func (g *DDCGroup) SumSq() float64 {
	var s float64
	for k, d := range g.Dict {
		s += float64(float64(g.Counts[k]) * d * d)
	}
	return s
}

// MinMax implements ColGroup. Every dictionary entry occurs at least once, so
// scanning the dictionary is exact.
func (g *DDCGroup) MinMax() (float64, float64) {
	mn, mx := math.Inf(1), math.Inf(-1)
	for _, d := range g.Dict {
		mn = math.Min(mn, d)
		mx = math.Max(mx, d)
	}
	return mn, mx
}

// ColSumsInto implements ColGroup.
func (g *DDCGroup) ColSumsInto(out []float64) { out[g.Col] += g.Sum() }

// RowSumsAccum implements ColGroup.
func (g *DDCGroup) RowSumsAccum(out []float64, r0, r1 int) {
	if g.Codes8 != nil {
		for r := r0; r < r1; r++ {
			out[r-r0] += g.Dict[g.Codes8[r]]
		}
		return
	}
	for r := r0; r < r1; r++ {
		out[r-r0] += g.Dict[g.Codes16[r]]
	}
}

// --- RLE: run-length encoding ----------------------------------------------

// RLEGroup encodes one column as consecutive runs of equal values. Runs cover
// every row (zero cells form explicit zero runs), so the encoding is closed
// under value-map operations.
type RLEGroup struct {
	Col    int
	Values []float64
	Starts []int32
	Lens   []int32
}

// Columns implements ColGroup.
func (g *RLEGroup) Columns() []int { return []int{g.Col} }

// Encoding implements ColGroup.
func (g *RLEGroup) Encoding() Encoding { return EncRLE }

// NumRows returns the number of encoded rows.
func (g *RLEGroup) NumRows() int {
	n := len(g.Starts)
	if n == 0 {
		return 0
	}
	return int(g.Starts[n-1] + g.Lens[n-1])
}

// InMemorySize implements ColGroup.
func (g *RLEGroup) InMemorySize() int64 {
	return int64(len(g.Values))*16 + 64
}

// NNZ implements ColGroup.
func (g *RLEGroup) NNZ() int64 {
	var nnz int64
	for i, v := range g.Values {
		if v != 0 {
			nnz += int64(g.Lens[i])
		}
	}
	return nnz
}

// runRange clips run i to [r0, r1), returning the overlapping half-open row
// range (empty when lo >= hi).
func (g *RLEGroup) runRange(i, r0, r1 int) (int, int) {
	lo, hi := int(g.Starts[i]), int(g.Starts[i]+g.Lens[i])
	if lo < r0 {
		lo = r0
	}
	if hi > r1 {
		hi = r1
	}
	return lo, hi
}

// DecompressInto implements ColGroup.
func (g *RLEGroup) DecompressInto(out []float64, nCols, r0, r1 int) {
	for i, v := range g.Values {
		lo, hi := g.runRange(i, r0, r1)
		for r := lo; r < hi; r++ {
			out[(r-r0)*nCols+g.Col] = v
		}
	}
}

// MatVecAccum implements ColGroup: one multiply per run, spread over the run's
// rows.
func (g *RLEGroup) MatVecAccum(out, v []float64, r0, r1 int, _ []float64) {
	x := v[g.Col]
	if x == 0 {
		return
	}
	for i, val := range g.Values {
		if val == 0 {
			continue
		}
		lo, hi := g.runRange(i, r0, r1)
		p := val * x
		for r := lo; r < hi; r++ {
			out[r-r0] += p
		}
	}
}

// VecMatAccum implements ColGroup: the vector is summed once per run.
func (g *RLEGroup) VecMatAccum(out, v []float64) {
	var s float64
	for i, val := range g.Values {
		if val == 0 {
			continue
		}
		var rs float64
		for r := int(g.Starts[i]); r < int(g.Starts[i]+g.Lens[i]); r++ {
			rs += v[r]
		}
		s += float64(val * rs)
	}
	out[g.Col] += s
}

// MapValues implements ColGroup: run positions are shared, values rewritten.
func (g *RLEGroup) MapValues(fn func(float64) float64) ColGroup {
	vals := make([]float64, len(g.Values))
	for i, v := range g.Values {
		vals[i] = fn(v)
	}
	return &RLEGroup{Col: g.Col, Values: vals, Starts: g.Starts, Lens: g.Lens}
}

// Sum implements ColGroup.
func (g *RLEGroup) Sum() float64 {
	var s float64
	for i, v := range g.Values {
		s += float64(v * float64(g.Lens[i]))
	}
	return s
}

// SumSq implements ColGroup.
func (g *RLEGroup) SumSq() float64 {
	var s float64
	for i, v := range g.Values {
		s += float64(v * v * float64(g.Lens[i]))
	}
	return s
}

// MinMax implements ColGroup.
func (g *RLEGroup) MinMax() (float64, float64) {
	mn, mx := math.Inf(1), math.Inf(-1)
	for _, v := range g.Values {
		mn = math.Min(mn, v)
		mx = math.Max(mx, v)
	}
	return mn, mx
}

// ColSumsInto implements ColGroup.
func (g *RLEGroup) ColSumsInto(out []float64) { out[g.Col] += g.Sum() }

// RowSumsAccum implements ColGroup.
func (g *RLEGroup) RowSumsAccum(out []float64, r0, r1 int) {
	for i, v := range g.Values {
		if v == 0 {
			continue
		}
		lo, hi := g.runRange(i, r0, r1)
		for r := lo; r < hi; r++ {
			out[r-r0] += v
		}
	}
}

// --- Uncompressed fallback ---------------------------------------------------

// UncompressedGroup keeps a contiguous range of columns as a plain matrix
// block (rows x len(Cols)); incompressible columns land here so the rest of
// the matrix still compresses.
type UncompressedGroup struct {
	ColIdx []int // ascending, contiguous
	Data   *matrix.MatrixBlock
}

// Columns implements ColGroup.
func (g *UncompressedGroup) Columns() []int { return g.ColIdx }

// Encoding implements ColGroup.
func (g *UncompressedGroup) Encoding() Encoding { return EncUncompressed }

// InMemorySize implements ColGroup.
func (g *UncompressedGroup) InMemorySize() int64 { return g.Data.InMemorySize() + 64 }

// NNZ implements ColGroup.
func (g *UncompressedGroup) NNZ() int64 { return g.Data.NNZ() }

// DecompressInto implements ColGroup.
func (g *UncompressedGroup) DecompressInto(out []float64, nCols, r0, r1 int) {
	for r := r0; r < r1; r++ {
		for j, c := range g.ColIdx {
			out[(r-r0)*nCols+c] = g.Data.Get(r, j)
		}
	}
}

// MatVecAccum implements ColGroup.
func (g *UncompressedGroup) MatVecAccum(out, v []float64, r0, r1 int, _ []float64) {
	for r := r0; r < r1; r++ {
		var s float64
		for j, c := range g.ColIdx {
			s += float64(g.Data.Get(r, j) * v[c])
		}
		out[r-r0] += s
	}
}

// VecMatAccum implements ColGroup.
func (g *UncompressedGroup) VecMatAccum(out, v []float64) {
	rows := g.Data.Rows()
	for j, c := range g.ColIdx {
		var s float64
		for r := 0; r < rows; r++ {
			s += float64(v[r] * g.Data.Get(r, j))
		}
		out[c] += s
	}
}

// MapValues implements ColGroup.
func (g *UncompressedGroup) MapValues(fn func(float64) float64) ColGroup {
	out := matrix.NewDense(g.Data.Rows(), g.Data.Cols())
	dst := out.DenseValues()
	for r := 0; r < g.Data.Rows(); r++ {
		for j := 0; j < g.Data.Cols(); j++ {
			dst[r*g.Data.Cols()+j] = fn(g.Data.Get(r, j))
		}
	}
	out.RecomputeNNZ()
	return &UncompressedGroup{ColIdx: g.ColIdx, Data: out.ExamineAndApplySparsity()}
}

// Sum implements ColGroup.
//
//sysds:ok(threadplumb): group-level aggregation is sequential by design — CompressedMatrix aggregates visit groups in order, and the uncompressed fallback group covers only the few incompressible columns
func (g *UncompressedGroup) Sum() float64 { return matrix.Sum(g.Data, 1) }

// SumSq implements ColGroup.
//
//sysds:ok(threadplumb): group-level aggregation is sequential by design (see Sum)
func (g *UncompressedGroup) SumSq() float64 { return matrix.SumSq(g.Data, 1) }

// MinMax implements ColGroup.
func (g *UncompressedGroup) MinMax() (float64, float64) {
	//sysds:ok(threadplumb): group-level aggregation is sequential by design (see Sum)
	return matrix.Min(g.Data, 1), matrix.Max(g.Data, 1)
}

// ColSumsInto implements ColGroup.
func (g *UncompressedGroup) ColSumsInto(out []float64) {
	//sysds:ok(threadplumb): group-level aggregation is sequential by design (see Sum)
	cs := matrix.ColSums(g.Data, 1)
	for j, c := range g.ColIdx {
		out[c] += cs.Get(0, j)
	}
}

// RowSumsAccum implements ColGroup.
func (g *UncompressedGroup) RowSumsAccum(out []float64, r0, r1 int) {
	for r := r0; r < r1; r++ {
		var s float64
		for j := 0; j < g.Data.Cols(); j++ {
			s += g.Data.Get(r, j)
		}
		out[r-r0] += s
	}
}
