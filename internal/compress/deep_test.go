package compress

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"github.com/systemds/systemds-go/internal/matrix"
)

// Tests for the deep compressed-execution kernels: TSMM, matrix right-hand
// sides, SDC and co-coded groups, row slicing and the Haas–Stokes estimator.

// sdcMatrix builds columns that are mostly one constant with sparse
// low-cardinality exceptions — the SDC-friendly shape.
func sdcMatrix(rows, cols int, seed int64) *matrix.MatrixBlock {
	noise := matrix.RandUniform(rows, cols, 0, 1, 1.0, seed)
	out := matrix.NewDense(rows, cols)
	for c := 0; c < cols; c++ {
		def := float64(c + 1)
		for r := 0; r < rows; r++ {
			v := def
			if noise.Get(r, c) > 0.95 { // ~5% exceptions
				v = def + math.Floor(noise.Get(r, c)*40)
			}
			out.Set(r, c, v)
		}
	}
	out.RecomputeNNZ()
	return out
}

// correlatedMatrix builds columns that share one underlying low-cardinality
// signal — the co-coding-friendly shape (a joint dictionary costs no more
// codes than any single column).
func correlatedMatrix(rows, cols int, seed int64) *matrix.MatrixBlock {
	noise := matrix.RandUniform(rows, 1, 0, 1, 1.0, seed)
	out := matrix.NewDense(rows, cols)
	for r := 0; r < rows; r++ {
		base := math.Floor(noise.Get(r, 0) * 6)
		for c := 0; c < cols; c++ {
			out.Set(r, c, base+float64(c))
		}
	}
	out.RecomputeNNZ()
	return out
}

func deepDrivers(t *testing.T) map[string]*matrix.MatrixBlock {
	t.Helper()
	return map[string]*matrix.MatrixBlock{
		"dense-mixed": lowCardMatrix(500, 9, 1),
		"sparse":      sparseLowCardMatrix(400, 8, 2),
		"constant":    matrix.Fill(300, 4, 2.5),
		"sdc":         sdcMatrix(600, 5, 3),
		"correlated":  correlatedMatrix(500, 6, 4),
	}
}

func denseRHS(rows, cols int, seed int64) *matrix.MatrixBlock {
	return matrix.RandUniform(rows, cols, -1, 1, 1.0, seed)
}

func TestCompressedTSMMMatchesDense(t *testing.T) {
	for name, m := range deepDrivers(t) {
		t.Run(name, func(t *testing.T) {
			cm := compressOrFatal(t, m)
			want := matrix.TSMM(m, 1)
			for _, threads := range []int{1, 4} {
				got := cm.TSMM(threads)
				assertMatClose(t, got, want, "tsmm")
			}
		})
	}
}

func TestCompressedTSMMBitwiseStableAcrossThreads(t *testing.T) {
	m := lowCardMatrix(700, 9, 7)
	cm := compressOrFatal(t, m)
	base := cm.TSMM(1)
	for _, threads := range []int{2, 4, 8} {
		got := cm.TSMM(threads)
		for r := 0; r < base.Rows(); r++ {
			for c := 0; c < base.Cols(); c++ {
				if math.Float64bits(got.Get(r, c)) != math.Float64bits(base.Get(r, c)) {
					t.Fatalf("threads=%d: tsmm cell (%d,%d) not bitwise equal", threads, r, c)
				}
			}
		}
	}
}

// TestCompressedTSMMCrossFallback forces the stripe fallback by pairing a
// dictionary group with an uncompressed group.
func TestCompressedTSMMCrossFallback(t *testing.T) {
	m := lowCardMatrix(500, 9, 5) // every third column is incompressible noise
	cm := compressOrFatal(t, m)
	hasUnc := false
	for _, g := range cm.Groups {
		if g.Encoding() == EncUncompressed {
			hasUnc = true
		}
	}
	if !hasUnc {
		t.Fatal("driver no longer produces an uncompressed group; fallback untested")
	}
	assertMatClose(t, cm.TSMM(4), matrix.TSMM(m, 1), "tsmm with uncompressed groups")
}

func TestCompressedMatMultDenseMatches(t *testing.T) {
	for name, m := range deepDrivers(t) {
		t.Run(name, func(t *testing.T) {
			cm := compressOrFatal(t, m)
			for _, k := range []int{1, 3, 70} { // below, inside and above one column block
				b := denseRHS(m.Cols(), k, int64(100+k))
				want, err := matrix.Multiply(m, b, 1)
				if err != nil {
					t.Fatal(err)
				}
				for _, threads := range []int{1, 4} {
					got, err := cm.MatMultDense(b, threads)
					if err != nil {
						t.Fatal(err)
					}
					assertMatClose(t, got, want, "matmult-dense")
				}
			}
		})
	}
}

func TestCompressedTransMatMultDenseMatches(t *testing.T) {
	for name, m := range deepDrivers(t) {
		t.Run(name, func(t *testing.T) {
			cm := compressOrFatal(t, m)
			b := denseRHS(m.Rows(), 5, 42)
			want, err := matrix.Multiply(matrix.Transpose(m), b, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, threads := range []int{1, 4} {
				got, err := cm.TransMatMultDense(b, threads)
				if err != nil {
					t.Fatal(err)
				}
				assertMatClose(t, got, want, "trans-matmult-dense")
			}
		})
	}
}

func TestCompressedMatMultDenseBitwiseStable(t *testing.T) {
	m := lowCardMatrix(600, 9, 9)
	cm := compressOrFatal(t, m)
	b := denseRHS(m.Cols(), 33, 11)
	base, err := cm.MatMultDense(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{2, 8} {
		got, err := cm.MatMultDense(b, threads)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < base.Rows(); r++ {
			for c := 0; c < base.Cols(); c++ {
				if math.Float64bits(got.Get(r, c)) != math.Float64bits(base.Get(r, c)) {
					t.Fatalf("threads=%d: cell (%d,%d) not bitwise equal", threads, r, c)
				}
			}
		}
	}
}

// TestPlannerPicksSDC: a mostly-constant column with sparse exceptions should
// encode as SDC, and the whole matrix should round-trip exactly.
func TestPlannerPicksSDC(t *testing.T) {
	m := sdcMatrix(2000, 3, 13)
	cm := compressOrFatal(t, m)
	hasSDC := false
	for _, g := range cm.Groups {
		if g.Encoding() == EncSDC {
			hasSDC = true
		}
	}
	if !hasSDC {
		t.Fatalf("no SDC group chosen for mostly-constant columns: %s", cm.EncodingSummary())
	}
	assertMatClose(t, cm.Decompress(), m, "sdc round-trip")
}

// TestPlannerCoCodesCorrelatedColumns: perfectly correlated low-cardinality
// columns should merge into one co-coded group (one code array for all of
// them), and the result must round-trip exactly.
func TestPlannerCoCodesCorrelatedColumns(t *testing.T) {
	m := correlatedMatrix(2000, 6, 17)
	cm := compressOrFatal(t, m)
	var cc *CoCodedGroup
	for _, g := range cm.Groups {
		if t, ok := g.(*CoCodedGroup); ok {
			cc = t
		}
	}
	if cc == nil {
		t.Fatalf("no co-coded group for correlated columns: %s", cm.EncodingSummary())
	}
	if len(cc.Cols) < 2 {
		t.Fatalf("co-coded group spans %d columns, want >= 2", len(cc.Cols))
	}
	assertMatClose(t, cm.Decompress(), m, "co-coded round-trip")
	// the joint dictionary must be no larger than the shared signal's cardinality
	if cc.numVals() > 6 {
		t.Errorf("joint dictionary has %d tuples, want <= 6", cc.numVals())
	}
}

// TestNewGroupKernelsMatch runs the aggregate/vector kernels over the drivers
// that exercise SDC and co-coded groups (the generic suite in compress_test.go
// covers the original encodings).
func TestNewGroupKernelsMatch(t *testing.T) {
	for _, name := range []string{"sdc", "correlated"} {
		m := deepDrivers(t)[name]
		t.Run(name, func(t *testing.T) {
			cm := compressOrFatal(t, m)
			rows, cols := m.Rows(), m.Cols()
			v := denseRHS(cols, 1, 21)
			w := denseRHS(rows, 1, 22)
			wantMV, err := matrix.Multiply(m, v, 1)
			if err != nil {
				t.Fatal(err)
			}
			wt := matrix.Transpose(w)
			wantVM, err := matrix.Multiply(wt, m, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, threads := range []int{1, 4} {
				gotMV, err := cm.MatVec(v, threads)
				if err != nil {
					t.Fatal(err)
				}
				assertMatClose(t, gotMV, wantMV, "matvec")
				gotVM, err := cm.VecMat(wt, threads)
				if err != nil {
					t.Fatal(err)
				}
				assertMatClose(t, gotVM, wantVM, "vecmat")
			}
			if !relClose(cm.Sum(), matrix.Sum(m, 1)) {
				t.Errorf("sum = %v, want %v", cm.Sum(), matrix.Sum(m, 1))
			}
			if !relClose(cm.SumSq(), matrix.SumSq(m, 1)) {
				t.Errorf("sumsq = %v, want %v", cm.SumSq(), matrix.SumSq(m, 1))
			}
			if !relClose(cm.Min(), matrix.Min(m, 1)) || !relClose(cm.Max(), matrix.Max(m, 1)) {
				t.Errorf("min/max = %v/%v, want %v/%v", cm.Min(), cm.Max(), matrix.Min(m, 1), matrix.Max(m, 1))
			}
			assertMatClose(t, cm.ColSums(), matrix.ColSums(m, 1), "colsums")
			assertMatClose(t, cm.RowSums(1), matrix.RowSums(m, 1), "rowsums")
			sc := cm.MapValues(func(x float64) float64 { return 2*x + 1 }, 1)
			want2 := matrix.NewDense(rows, cols)
			for r := 0; r < rows; r++ {
				for c := 0; c < cols; c++ {
					want2.Set(r, c, 2*m.Get(r, c)+1)
				}
			}
			assertMatClose(t, sc.Decompress(), want2, "mapvalues")
		})
	}
}

func TestSerializeRoundTripNewGroups(t *testing.T) {
	for _, name := range []string{"sdc", "correlated"} {
		m := deepDrivers(t)[name]
		t.Run(name, func(t *testing.T) {
			cm := compressOrFatal(t, m)
			var buf bytes.Buffer
			if err := cm.Write(&buf); err != nil {
				t.Fatal(err)
			}
			back, err := Read(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if back.EncodingSummary() != cm.EncodingSummary() {
				t.Fatalf("encodings changed across serialize: %s -> %s", cm.EncodingSummary(), back.EncodingSummary())
			}
			assertMatClose(t, back.Decompress(), m, "serialized round-trip")
		})
	}
}

func TestSliceRowsMatchesDecompressedSlice(t *testing.T) {
	for name, m := range deepDrivers(t) {
		t.Run(name, func(t *testing.T) {
			cm := compressOrFatal(t, m)
			rows := m.Rows()
			for _, rng := range [][2]int{{0, rows / 2}, {rows / 3, rows - 1}, {rows - 5, rows}} {
				r0, r1 := rng[0], rng[1]
				sl := cm.SliceRows(r0, r1)
				want, err := matrix.Slice(m, r0, r1, 0, m.Cols())
				if err != nil {
					t.Fatal(err)
				}
				assertMatClose(t, sl.Decompress(), want, "sliced decompress")
				// count-weighted kernels must stay exact on the slice
				if !relClose(sl.Sum(), matrix.Sum(want, 1)) {
					t.Fatalf("slice [%d,%d) sum = %v, want %v", r0, r1, sl.Sum(), matrix.Sum(want, 1))
				}
				assertMatClose(t, sl.TSMM(2), matrix.TSMM(want, 1), "sliced tsmm")
				v := denseRHS(m.Cols(), 1, 33)
				gotMV, err := sl.MatVec(v, 2)
				if err != nil {
					t.Fatal(err)
				}
				wantMV, err := matrix.Multiply(want, v, 1)
				if err != nil {
					t.Fatal(err)
				}
				assertMatClose(t, gotMV, wantMV, "sliced matvec")
			}
		})
	}
}

// TestHaasStokesAccuracy checks the estimator against known distributions: it
// must stay close on uniform low-cardinality data and must correct the naive
// scale-up's gross overestimate on skewed data.
func TestHaasStokesAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	sample := func(pop []int, n int) []int {
		freq := map[int]int{}
		for i := 0; i < n; i++ {
			freq[pop[rng.Intn(len(pop))]]++
		}
		counts := make([]int, 0, len(freq))
		for _, c := range freq {
			counts = append(counts, c)
		}
		return counts
	}
	const rows, n = 100000, 2000

	// uniform, 50 distinct values: sample sees all of them; estimate ~= 50
	pop := make([]int, rows)
	for i := range pop {
		pop[i] = i % 50
	}
	if est := haasStokes(rows, n, sample(pop, n)); est < 45 || est > 100 {
		t.Errorf("uniform-50: estimate %d, want ~50", est)
	}

	// skewed: one heavy hitter (90%) plus 5000 rare values. The naive
	// scale-up rows*d/n is ~5000% off; Haas–Stokes must land well below it
	// and at least at the sampled distinct count.
	heavy := int(0.9 * rows)
	for i := range pop {
		if i < heavy {
			pop[i] = -1
		} else {
			pop[i] = i % 5000
		}
	}
	counts := sample(pop, n)
	d := len(counts)
	naive := rows * d / n
	est := haasStokes(rows, n, counts)
	if est < d {
		t.Errorf("skewed: estimate %d below sample distinct %d", est, d)
	}
	if est >= naive {
		t.Errorf("skewed: estimate %d does not improve on naive scale-up %d", est, naive)
	}
	if est < 1000 || est > 30000 {
		t.Errorf("skewed: estimate %d, want within [1000, 30000] for true 5001", est)
	}

	// exhaustive sample returns the exact distinct count
	if est := haasStokes(1000, 1000, []int{900, 50, 50}); est != 3 {
		t.Errorf("exhaustive: estimate %d, want 3", est)
	}
}
