package compress

import (
	"math"
	"sort"
)

// --- SDC: sparse dictionary coding with a default value ----------------------

// SDCGroup encodes a mostly-constant column as one default value plus a
// sparse list of exception positions with dictionary-coded exception values
// (SDC in SystemDS' compressed operand model). Rows not listed in Pos hold
// Default; only the exceptions pay per-row storage, so a column that is 95%
// one value costs ~5% of the row count regardless of cardinality in the tail.
type SDCGroup struct {
	Col     int
	N       int     // total encoded rows
	Default float64 // value of every row not listed in Pos
	Dict    []float64
	Counts  []int32  // occurrences per dictionary entry (len == len(Dict))
	Pos     []int32  // ascending exception row positions
	Codes   []uint16 // dictionary code per exception (len == len(Pos))
}

// Columns implements ColGroup.
func (g *SDCGroup) Columns() []int { return []int{g.Col} }

// Encoding implements ColGroup.
func (g *SDCGroup) Encoding() Encoding { return EncSDC }

// NumRows returns the number of encoded rows.
func (g *SDCGroup) NumRows() int { return g.N }

// InMemorySize implements ColGroup.
func (g *SDCGroup) InMemorySize() int64 {
	return int64(len(g.Dict))*8 + int64(len(g.Counts))*4 +
		int64(len(g.Pos))*4 + int64(len(g.Codes))*2 + 64
}

// NNZ implements ColGroup.
func (g *SDCGroup) NNZ() int64 {
	var nnz int64
	if g.Default != 0 {
		nnz += int64(g.N - len(g.Pos))
	}
	for k, v := range g.Dict {
		if v != 0 {
			nnz += int64(g.Counts[k])
		}
	}
	return nnz
}

// posRange returns the index range [lo, hi) of exceptions whose row positions
// fall inside [r0, r1).
func (g *SDCGroup) posRange(r0, r1 int) (int, int) {
	lo := sort.Search(len(g.Pos), func(i int) bool { return int(g.Pos[i]) >= r0 })
	hi := sort.Search(len(g.Pos), func(i int) bool { return int(g.Pos[i]) >= r1 })
	return lo, hi
}

// DecompressInto implements ColGroup.
func (g *SDCGroup) DecompressInto(out []float64, nCols, r0, r1 int) {
	for r := r0; r < r1; r++ {
		out[(r-r0)*nCols+g.Col] = g.Default
	}
	lo, hi := g.posRange(r0, r1)
	for i := lo; i < hi; i++ {
		out[(int(g.Pos[i])-r0)*nCols+g.Col] = g.Dict[g.Codes[i]]
	}
}

// MatVecAccum implements ColGroup: the default contribution is one multiply
// spread over all rows; exceptions patch the difference at their positions.
func (g *SDCGroup) MatVecAccum(out, v []float64, r0, r1 int, scratch []float64) {
	x := v[g.Col]
	if x == 0 {
		return
	}
	pd := float64(g.Default * x)
	if pd != 0 {
		for r := r0; r < r1; r++ {
			out[r-r0] += pd
		}
	}
	pre := scratch
	if len(pre) < len(g.Dict) {
		pre = make([]float64, len(g.Dict))
	} else {
		pre = pre[:len(g.Dict)]
	}
	for k, d := range g.Dict {
		pre[k] = float64(d*x) - pd
	}
	lo, hi := g.posRange(r0, r1)
	for i := lo; i < hi; i++ {
		out[int(g.Pos[i])-r0] += pre[g.Codes[i]]
	}
}

// VecMatAccum implements ColGroup: the vector is summed once for the default
// value, exceptions contribute their difference from the default.
func (g *SDCGroup) VecMatAccum(out, v []float64) {
	var sv float64
	for r := 0; r < g.N; r++ {
		sv += v[r]
	}
	s := float64(g.Default * sv)
	for i, p := range g.Pos {
		s += float64((g.Dict[g.Codes[i]] - g.Default) * v[p])
	}
	out[g.Col] += s
}

// MapValues implements ColGroup: positions, codes and counts are shared, only
// the default and the dictionary are rewritten.
func (g *SDCGroup) MapValues(fn func(float64) float64) ColGroup {
	dict := make([]float64, len(g.Dict))
	for k, d := range g.Dict {
		dict[k] = fn(d)
	}
	return &SDCGroup{Col: g.Col, N: g.N, Default: fn(g.Default),
		Dict: dict, Counts: g.Counts, Pos: g.Pos, Codes: g.Codes}
}

// Sum implements ColGroup.
func (g *SDCGroup) Sum() float64 {
	s := float64(g.Default * float64(g.N-len(g.Pos)))
	for k, d := range g.Dict {
		s += float64(float64(g.Counts[k]) * d)
	}
	return s
}

// SumSq implements ColGroup.
func (g *SDCGroup) SumSq() float64 {
	s := float64(g.Default * g.Default * float64(g.N-len(g.Pos)))
	for k, d := range g.Dict {
		s += float64(float64(g.Counts[k]) * d * d)
	}
	return s
}

// MinMax implements ColGroup.
func (g *SDCGroup) MinMax() (float64, float64) {
	mn, mx := math.Inf(1), math.Inf(-1)
	if len(g.Pos) < g.N {
		mn, mx = g.Default, g.Default
	}
	for _, d := range g.Dict {
		mn = math.Min(mn, d)
		mx = math.Max(mx, d)
	}
	return mn, mx
}

// ColSumsInto implements ColGroup.
func (g *SDCGroup) ColSumsInto(out []float64) { out[g.Col] += g.Sum() }

// RowSumsAccum implements ColGroup.
func (g *SDCGroup) RowSumsAccum(out []float64, r0, r1 int) {
	if g.Default != 0 {
		for r := r0; r < r1; r++ {
			out[r-r0] += g.Default
		}
	}
	lo, hi := g.posRange(r0, r1)
	for i := lo; i < hi; i++ {
		out[int(g.Pos[i])-r0] += g.Dict[g.Codes[i]] - g.Default
	}
}
