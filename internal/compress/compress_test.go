package compress

import (
	"math"
	"path/filepath"
	"testing"

	"github.com/systemds/systemds-go/internal/matrix"
)

// relClose reports whether two values agree within 1e-9 relative tolerance.
func relClose(a, b float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= 1e-9*math.Max(m, 1)
}

func assertMatClose(t *testing.T, got, want *matrix.MatrixBlock, what string) {
	t.Helper()
	if got.Rows() != want.Rows() || got.Cols() != want.Cols() {
		t.Fatalf("%s: got %dx%d, want %dx%d", what, got.Rows(), got.Cols(), want.Rows(), want.Cols())
	}
	for r := 0; r < want.Rows(); r++ {
		for c := 0; c < want.Cols(); c++ {
			if !relClose(got.Get(r, c), want.Get(r, c)) {
				t.Fatalf("%s: cell (%d,%d) = %v, want %v", what, r, c, got.Get(r, c), want.Get(r, c))
			}
		}
	}
}

// lowCardMatrix builds a matrix whose columns alternate between
// low-cardinality (DDC-friendly), run-heavy (RLE-friendly) and incompressible
// (uncompressed fallback) structure.
func lowCardMatrix(rows, cols int, seed int64) *matrix.MatrixBlock {
	noise := matrix.RandUniform(rows, cols, 0, 1, 1.0, seed)
	out := matrix.NewDense(rows, cols)
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			switch c % 3 {
			case 0: // low cardinality: 5 distinct values, random order
				out.Set(r, c, math.Floor(noise.Get(r, c)*5))
			case 1: // run-heavy: value changes every 64 rows
				out.Set(r, c, float64((r/64)%7))
			default: // incompressible: continuous noise
				out.Set(r, c, noise.Get(r, c))
			}
		}
	}
	out.RecomputeNNZ()
	return out
}

// sparseLowCardMatrix builds a sparse-representation driver with
// low-cardinality non-zero structure.
func sparseLowCardMatrix(rows, cols int, seed int64) *matrix.MatrixBlock {
	base := matrix.RandUniform(rows, cols, 0, 1, 0.1, seed)
	out := matrix.NewDense(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if v := base.Get(r, c); v != 0 {
				out.Set(r, c, math.Ceil(v*4))
			}
		}
	}
	return out.ExamineAndApplySparsity()
}

func compressOrFatal(t *testing.T, m *matrix.MatrixBlock) *CompressedMatrix {
	t.Helper()
	cm, plan, ok := Compress(m, PlannerConfig{}, 1)
	if !ok {
		t.Fatalf("compression rejected: %v", plan)
	}
	return cm
}

func testDrivers(t *testing.T) map[string]*matrix.MatrixBlock {
	t.Helper()
	return map[string]*matrix.MatrixBlock{
		"dense-mixed": lowCardMatrix(500, 9, 1),
		"sparse":      sparseLowCardMatrix(400, 8, 2),
		"constant":    matrix.Fill(300, 4, 2.5),
	}
}

func TestCompressDecompressRoundTrip(t *testing.T) {
	for name, m := range testDrivers(t) {
		t.Run(name, func(t *testing.T) {
			cm := compressOrFatal(t, m)
			assertMatClose(t, cm.Decompress(), m, "decompress")
			if cm.NNZ() != m.NNZ() {
				t.Errorf("nnz = %d, want %d", cm.NNZ(), m.NNZ())
			}
		})
	}
}

// TestCompressedKernelsMatchUncompressed is the property test of the issue:
// every compressed kernel matches the uncompressed kernel within 1e-9, over
// dense and sparse drivers and thread counts 1 and 4.
func TestCompressedKernelsMatchUncompressed(t *testing.T) {
	for name, m := range testDrivers(t) {
		for _, threads := range []int{1, 4} {
			t.Run(name, func(t *testing.T) {
				cm := compressOrFatal(t, m)
				rows, cols := m.Rows(), m.Cols()
				v := matrix.RandUniform(cols, 1, -1, 1, 1.0, 7)
				u := matrix.RandUniform(1, rows, -1, 1, 1.0, 8)
				w := matrix.RandUniform(rows, 1, 0, 1, 1.0, 9)

				want, err := matrix.Multiply(m, v, threads)
				if err != nil {
					t.Fatal(err)
				}
				got, err := cm.MatVec(v, threads)
				if err != nil {
					t.Fatal(err)
				}
				assertMatClose(t, got, want, "matvec")

				want, err = matrix.Multiply(u, m, threads)
				if err != nil {
					t.Fatal(err)
				}
				got, err = cm.VecMat(u, threads)
				if err != nil {
					t.Fatal(err)
				}
				assertMatClose(t, got, want, "vecmat")

				want, err = matrix.MMChain(m, v, nil, threads)
				if err != nil {
					t.Fatal(err)
				}
				got, err = cm.MMChain(v, nil, threads)
				if err != nil {
					t.Fatal(err)
				}
				assertMatClose(t, got, want, "mmchain")

				want, err = matrix.MMChain(m, v, w, threads)
				if err != nil {
					t.Fatal(err)
				}
				got, err = cm.MMChain(v, w, threads)
				if err != nil {
					t.Fatal(err)
				}
				assertMatClose(t, got, want, "mmchain-weighted")

				fn := func(x float64) float64 { return 2*x + 1 }
				mapped := cm.MapValues(fn, threads)
				wantMap := matrix.NewDense(rows, cols)
				for r := 0; r < rows; r++ {
					for c := 0; c < cols; c++ {
						wantMap.Set(r, c, fn(m.Get(r, c)))
					}
				}
				assertMatClose(t, mapped.Decompress(), wantMap, "mapvalues")

				if !relClose(cm.Sum(), matrix.Sum(m, threads)) {
					t.Errorf("sum = %v, want %v", cm.Sum(), matrix.Sum(m, threads))
				}
				if !relClose(cm.SumSq(), matrix.SumSq(m, threads)) {
					t.Errorf("sumsq = %v, want %v", cm.SumSq(), matrix.SumSq(m, threads))
				}
				if !relClose(cm.Min(), matrix.Min(m, threads)) {
					t.Errorf("min = %v, want %v", cm.Min(), matrix.Min(m, threads))
				}
				if !relClose(cm.Max(), matrix.Max(m, threads)) {
					t.Errorf("max = %v, want %v", cm.Max(), matrix.Max(m, threads))
				}
				assertMatClose(t, cm.ColSums(), matrix.ColSums(m, threads), "colsums")
				assertMatClose(t, cm.RowSums(threads), matrix.RowSums(m, threads), "rowsums")
			})
		}
	}
}

// TestCompressedKernelsBitwiseStableAcrossThreads asserts the fixed-chunk
// partitioning promise: thread count never changes a single bit.
func TestCompressedKernelsBitwiseStableAcrossThreads(t *testing.T) {
	m := lowCardMatrix(3000, 6, 3)
	cm := compressOrFatal(t, m)
	v := matrix.RandUniform(6, 1, -1, 1, 1.0, 11)
	r1, err := cm.MatVec(v, 1)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := cm.MatVec(v, 4)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < r1.Rows(); r++ {
		if r1.Get(r, 0) != r4.Get(r, 0) {
			t.Fatalf("matvec row %d differs across thread counts: %v vs %v", r, r1.Get(r, 0), r4.Get(r, 0))
		}
	}
}

// TestPlannerEncodingChoices asserts the planner picks the expected encoding
// per column structure.
func TestPlannerEncodingChoices(t *testing.T) {
	m := lowCardMatrix(2000, 3, 4) // col0 low-card, col1 run-heavy, col2 noise
	plan := EstimatePlan(m, PlannerConfig{})
	if got := plan.Cols[0].Enc; got != EncDDC {
		t.Errorf("low-cardinality column encoded as %s, want ddc", got)
	}
	if got := plan.Cols[1].Enc; got != EncRLE {
		t.Errorf("run-heavy column encoded as %s, want rle", got)
	}
	if got := plan.Cols[2].Enc; got != EncUncompressed {
		t.Errorf("noise column encoded as %s, want unc", got)
	}
}

// TestPlannerRatioCrossover drives the planner across the acceptance
// threshold: an all-noise matrix rejects (ratio ~1), an all-low-cardinality
// matrix accepts (ratio ~8), and the threshold knob moves the decision.
func TestPlannerRatioCrossover(t *testing.T) {
	noise := matrix.RandUniform(2000, 8, 0, 1, 1.0, 5)
	if _, plan, ok := Compress(noise, PlannerConfig{}, 1); ok {
		t.Fatalf("noise matrix accepted at ratio %.2f, want reject", plan.EstRatio)
	}
	lc := matrix.NewDense(2000, 8)
	for r := 0; r < 2000; r++ {
		for c := 0; c < 8; c++ {
			lc.Set(r, c, float64((r+c)%4))
		}
	}
	cm, plan, ok := Compress(lc, PlannerConfig{}, 1)
	if !ok {
		t.Fatalf("low-cardinality matrix rejected at ratio %.2f, want accept", plan.EstRatio)
	}
	if plan.EstRatio < 2 {
		t.Errorf("low-cardinality ratio %.2f, want >= 2", plan.EstRatio)
	}
	if cm.InMemorySize() >= lc.InMemorySize() {
		t.Errorf("compressed %dB not smaller than uncompressed %dB", cm.InMemorySize(), lc.InMemorySize())
	}
	// the threshold knob flips the decision for the same input: acceptance
	// requires BOTH the sample estimate and the achieved post-encode ratio to
	// clear the threshold, so the crossover sits at the smaller of the two
	achieved := float64(plan.UncompressedBytes) / float64(plan.ActualCompressedBytes)
	crossover := math.Min(plan.EstRatio, achieved)
	_, plan2, ok2 := Compress(lc, PlannerConfig{MinRatio: crossover + 0.01}, 1)
	if ok2 {
		t.Errorf("accept at threshold above the deliverable ratio (est %.2f, achieved %.2f)", plan2.EstRatio, achieved)
	}
	if _, _, ok3 := Compress(lc, PlannerConfig{MinRatio: crossover - 0.01}, 1); !ok3 {
		t.Errorf("reject at threshold below the deliverable ratio (est %.2f, achieved %.2f)", plan.EstRatio, achieved)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	for name, m := range testDrivers(t) {
		t.Run(name, func(t *testing.T) {
			cm := compressOrFatal(t, m)
			path := filepath.Join(t.TempDir(), "spill.sdsc")
			if err := cm.WriteFile(path); err != nil {
				t.Fatal(err)
			}
			back, err := ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			assertMatClose(t, back.Decompress(), m, "serialized round trip")
			if back.EncodingSummary() != cm.EncodingSummary() {
				t.Errorf("encodings changed across serialization: %s vs %s", back.EncodingSummary(), cm.EncodingSummary())
			}
		})
	}
}

// TestDictionaryOverflowFallsBack forces a column past MaxDictSize distinct
// values and asserts the exact encoder falls back to the uncompressed group
// rather than mis-encoding.
func TestDictionaryOverflowFallsBack(t *testing.T) {
	rows := MaxDictSize + 10
	m := matrix.NewDense(rows, 1)
	for r := 0; r < rows; r++ {
		m.Set(r, 0, float64(r)+0.5)
	}
	if g := encodeDDC(m, 0, rows); g != nil {
		t.Fatalf("DDC encoding of %d distinct values should overflow", rows)
	}
}

// TestSparseInputNotInflated asserts the acceptance baseline is the input's
// ACTUAL representation: a sparse CSR block whose dense image would make
// DDC look like an 8x win must be rejected when the encoding is larger than
// the CSR form it would replace.
func TestSparseInputNotInflated(t *testing.T) {
	base := matrix.RandUniform(4000, 50, 0, 1, 0.02, 13)
	m := matrix.NewDense(4000, 50)
	for r := 0; r < 4000; r++ {
		for c := 0; c < 50; c++ {
			if v := base.Get(r, c); v != 0 {
				m.Set(r, c, math.Ceil(v*4))
			}
		}
	}
	m = m.ExamineAndApplySparsity()
	if !m.IsSparse() {
		t.Fatalf("fixture should be sparse")
	}
	cm, plan, ok := Compress(m, PlannerConfig{}, 1)
	if ok && cm.InMemorySize() > m.InMemorySize() {
		t.Fatalf("accepted a compression larger than the input: %dB vs CSR %dB (ratio %.2f)",
			cm.InMemorySize(), m.InMemorySize(), plan.EstRatio)
	}
	if ok {
		t.Logf("accepted at ratio %.2f with %dB vs %dB", plan.EstRatio, cm.InMemorySize(), m.InMemorySize())
	}
}

// TestAchievedRatioRecheck fools the systematic sample with stride-aligned
// periodic data: the estimate accepts, but the exact encoding is larger than
// the input and must be rejected post-encode.
func TestAchievedRatioRecheck(t *testing.T) {
	rows := 16384
	m := matrix.NewDense(rows, 8)
	noise := matrix.RandUniform(rows, 8, 0, 1, 1.0, 17)
	for r := 0; r < rows; r++ {
		for c := 0; c < 8; c++ {
			if r%(rows/DefaultSampleRows) == 0 {
				m.Set(r, c, float64(r%2)) // sampled rows look 2-valued
			} else {
				m.Set(r, c, noise.Get(r, c)) // off-sample rows are distinct
			}
		}
	}
	m.RecomputeNNZ()
	cm, plan, ok := Compress(m, PlannerConfig{}, 1)
	if ok && cm.InMemorySize() > m.InMemorySize() {
		t.Fatalf("accepted an encoding larger than the input: %dB vs %dB (est ratio %.2f)",
			cm.InMemorySize(), m.InMemorySize(), plan.EstRatio)
	}
}
