package compress

import (
	"fmt"

	"github.com/systemds/systemds-go/internal/matrix"
)

// Planner knobs. The sample-based estimates are deliberately deterministic
// (systematic row sampling, no RNG), so the same input always produces the
// same plan and compressed runs are bitwise reproducible.
const (
	// DefaultSampleRows is the number of rows the planner inspects per column.
	DefaultSampleRows = 2048
	// DefaultMinRatio is the estimated compression ratio below which
	// compression is rejected: the encoded form would not pay for the encode
	// pass and the per-group overheads.
	DefaultMinRatio = 1.2
	// MaxDictSize is the largest dictionary a DDC group can address (two-byte
	// codes); columns with more distinct values fall back to the uncompressed
	// group.
	MaxDictSize = 65536
	// groupOverheadBytes is the fixed per-group bookkeeping charge used by the
	// size estimates (headers, slices, the interface value).
	groupOverheadBytes = 64
)

// PlannerConfig parameterizes the sample-based compression planner.
type PlannerConfig struct {
	// SampleRows is the number of rows sampled per column (systematic
	// sampling with a fixed stride); <= 0 uses DefaultSampleRows.
	SampleRows int
	// MinRatio is the estimated-ratio acceptance threshold; <= 0 uses
	// DefaultMinRatio.
	MinRatio float64
}

func (c PlannerConfig) sampleRows() int {
	if c.SampleRows <= 0 {
		return DefaultSampleRows
	}
	return c.SampleRows
}

func (c PlannerConfig) minRatio() float64 {
	if c.MinRatio <= 0 {
		return DefaultMinRatio
	}
	return c.MinRatio
}

// ColPlan is the planner's per-column estimate and encoding choice.
type ColPlan struct {
	Col int
	// Enc is the chosen encoding (cheapest estimated size).
	Enc Encoding
	// EstCard is the estimated number of distinct values, EstRuns the
	// estimated number of value runs.
	EstCard, EstRuns int
	// EstBytes is the estimated encoded size under Enc.
	EstBytes int64
}

// Plan is the output of the sample-based compression planner: per-column
// encoding choices, the estimated total size, and the accept/reject decision
// against the minimum-ratio threshold.
type Plan struct {
	Cols []ColPlan
	// UncompressedBytes is the actual in-memory size of the input block (CSR
	// for sparse inputs — the representation compression must beat, so a
	// sparse matrix is never "compressed" into something larger than its CSR
	// form); EstCompressedBytes is the estimated size of the chosen
	// encodings.
	UncompressedBytes  int64
	EstCompressedBytes int64
	// EstRatio is UncompressedBytes / EstCompressedBytes.
	EstRatio float64
	// ActualCompressedBytes is the exact encoded size (set by Compress after
	// encoding; 0 when the plan was rejected before encoding). Compress
	// re-checks the achieved ratio against it and rejects encodings that did
	// not actually shrink the data.
	ActualCompressedBytes int64
	// Accepted reports whether the estimated ratio clears the threshold.
	Accepted bool
	// SampledRows is the number of rows the estimates were derived from.
	SampledRows int
}

// String renders the plan decision for explain output and tests.
func (p *Plan) String() string {
	return fmt.Sprintf("compress plan: ratio=%.2f (est %dB of %dB) accepted=%v",
		p.EstRatio, p.EstCompressedBytes, p.UncompressedBytes, p.Accepted)
}

// EstimatePlan runs the sample-based planner over a matrix block: a
// systematic row sample is scanned once per column to estimate cardinality
// and run structure, each column is priced under DDC, RLE and the
// uncompressed fallback, and the cheapest encoding wins. Compression is
// accepted only when the estimated overall ratio clears cfg.MinRatio.
func EstimatePlan(m *matrix.MatrixBlock, cfg PlannerConfig) *Plan {
	rows, cols := m.Rows(), m.Cols()
	plan := &Plan{UncompressedBytes: m.InMemorySize()}
	if rows == 0 || cols == 0 {
		return plan
	}
	step := 1
	if s := cfg.sampleRows(); rows > s {
		step = rows / s
	}
	sampleIdx := make([]int, 0, rows/step+1)
	for r := 0; r < rows; r += step {
		sampleIdx = append(sampleIdx, r)
	}
	n := len(sampleIdx)
	plan.SampledRows = n
	plan.Cols = make([]ColPlan, cols)
	var total int64
	for c := 0; c < cols; c++ {
		distinct := map[float64]struct{}{}
		changes := 0
		prev := 0.0
		for i, r := range sampleIdx {
			v := m.Get(r, c)
			distinct[v] = struct{}{}
			if i > 0 && v != prev {
				changes++
			}
			prev = v
		}
		cp := estimateColumn(rows, n, len(distinct), changes)
		cp.Col = c
		plan.Cols[c] = cp
		total += cp.EstBytes + groupOverheadBytes
	}
	plan.EstCompressedBytes = total
	if total > 0 {
		plan.EstRatio = float64(plan.UncompressedBytes) / float64(total)
	}
	plan.Accepted = plan.EstRatio >= cfg.minRatio()
	return plan
}

// estimateColumn prices one column under each encoding from its sample
// statistics and picks the cheapest.
func estimateColumn(rows, sampled, sampleCard, sampleChanges int) ColPlan {
	// Cardinality: the sample's distinct count is a lower bound. When the
	// sample looks mostly-distinct the column is treated as incompressible
	// (card scales with the rows); otherwise the low-cardinality assumption
	// card ≈ sampleCard holds (the case DDC exists for).
	card := sampleCard
	if sampled > 0 && sampleCard > sampled/2 {
		card = int(float64(rows) * float64(sampleCard) / float64(sampled))
	}
	// Runs: the fraction of adjacent sampled pairs that differ, scaled to all
	// row adjacencies (a change between two sampled rows implies at least one
	// change in the gap; for stride 1 the count is exact).
	runs := 1
	if sampled > 1 {
		runs = int(float64(rows-1)*float64(sampleChanges)/float64(sampled-1)) + 1
	}
	ddcBytes := int64(-1)
	if card <= MaxDictSize {
		codeBytes := int64(1)
		if card > 256 {
			codeBytes = 2
		}
		ddcBytes = int64(rows)*codeBytes + int64(card)*12 // dict (8) + counts (4)
	}
	rleBytes := int64(runs) * 16 // value (8) + start (4) + len (4)
	uncBytes := int64(rows) * 8

	cp := ColPlan{Enc: EncUncompressed, EstCard: card, EstRuns: runs, EstBytes: uncBytes}
	if rleBytes < cp.EstBytes {
		cp.Enc, cp.EstBytes = EncRLE, rleBytes
	}
	if ddcBytes >= 0 && ddcBytes < cp.EstBytes {
		cp.Enc, cp.EstBytes = EncDDC, ddcBytes
	}
	return cp
}
