package compress

import (
	"fmt"
	"math"
	"sort"

	"github.com/systemds/systemds-go/internal/matrix"
)

// Planner knobs. The sample-based estimates are deliberately deterministic
// (systematic row sampling, no RNG), so the same input always produces the
// same plan and compressed runs are bitwise reproducible.
const (
	// DefaultSampleRows is the number of rows the planner inspects per column.
	DefaultSampleRows = 2048
	// DefaultMinRatio is the estimated compression ratio below which
	// compression is rejected: the encoded form would not pay for the encode
	// pass and the per-group overheads.
	DefaultMinRatio = 1.2
	// MaxDictSize is the largest dictionary a DDC group can address (two-byte
	// codes); columns with more distinct values fall back to the uncompressed
	// group.
	MaxDictSize = 65536
	// groupOverheadBytes is the fixed per-group bookkeeping charge used by the
	// size estimates (headers, slices, the interface value).
	groupOverheadBytes = 64
	// cocodeMaxWidth caps how many columns one co-coded group may span.
	cocodeMaxWidth = 8
	// cocodeCandCard is the per-column estimated-cardinality ceiling for
	// co-coding candidates: only clearly low-cardinality DDC columns are worth
	// testing for joint structure.
	cocodeCandCard = 256
)

// PlannerConfig parameterizes the sample-based compression planner.
type PlannerConfig struct {
	// SampleRows is the number of rows sampled per column (systematic
	// sampling with a fixed stride); <= 0 uses DefaultSampleRows.
	SampleRows int
	// MinRatio is the estimated-ratio acceptance threshold; <= 0 uses
	// DefaultMinRatio.
	MinRatio float64
}

func (c PlannerConfig) sampleRows() int {
	if c.SampleRows <= 0 {
		return DefaultSampleRows
	}
	return c.SampleRows
}

func (c PlannerConfig) minRatio() float64 {
	if c.MinRatio <= 0 {
		return DefaultMinRatio
	}
	return c.MinRatio
}

// ColPlan is the planner's per-column estimate and encoding choice.
type ColPlan struct {
	Col int
	// Enc is the chosen encoding (cheapest estimated size). EncCoCoded means
	// the column was merged into one of Plan.CoCoded's groups.
	Enc Encoding
	// EstCard is the estimated number of distinct values (Haas–Stokes),
	// EstRuns the estimated number of value runs.
	EstCard, EstRuns int
	// Default is the most frequent sampled value — the default value an SDC
	// encoding of this column would use.
	Default float64
	// EstBytes is the estimated encoded size under Enc (for co-coded members,
	// the pre-merge DDC estimate; the merged size lives on the CoCodePlan).
	EstBytes int64
}

// CoCodePlan is one planned co-coded group: a set of adjacent low-cardinality
// columns whose estimated joint dictionary is smaller than their separate
// dictionaries.
type CoCodePlan struct {
	Cols     []int // ascending, contiguous
	EstCard  int   // estimated joint cardinality (Haas–Stokes on joint tuples)
	EstBytes int64
}

// Plan is the output of the sample-based compression planner: per-column
// encoding choices, the estimated total size, and the accept/reject decision
// against the minimum-ratio threshold.
type Plan struct {
	Cols []ColPlan
	// CoCoded lists the planned co-coded column groups (greedy adjacent
	// merges priced by the Haas–Stokes joint-cardinality estimate).
	CoCoded []CoCodePlan
	// UncompressedBytes is the actual in-memory size of the input block (CSR
	// for sparse inputs — the representation compression must beat, so a
	// sparse matrix is never "compressed" into something larger than its CSR
	// form); EstCompressedBytes is the estimated size of the chosen
	// encodings.
	UncompressedBytes  int64
	EstCompressedBytes int64
	// EstRatio is UncompressedBytes / EstCompressedBytes.
	EstRatio float64
	// ActualCompressedBytes is the exact encoded size (set by Compress after
	// encoding; 0 when the plan was rejected before encoding). Compress
	// re-checks the achieved ratio against it and rejects encodings that did
	// not actually shrink the data.
	ActualCompressedBytes int64
	// Accepted reports whether the estimated ratio clears the threshold.
	Accepted bool
	// SampledRows is the number of rows the estimates were derived from.
	SampledRows int
}

// String renders the plan decision for explain output and tests.
func (p *Plan) String() string {
	return fmt.Sprintf("compress plan: ratio=%.2f (est %dB of %dB) accepted=%v",
		p.EstRatio, p.EstCompressedBytes, p.UncompressedBytes, p.Accepted)
}

// EstimatePlan runs the sample-based planner over a matrix block: a
// systematic row sample is scanned once per column to estimate cardinality
// (Haas–Stokes) and run structure, each column is priced under DDC, RLE, SDC
// and the uncompressed fallback, the cheapest encoding wins, and a greedy
// pass merges adjacent low-cardinality columns into co-coded groups when the
// estimated joint dictionary is smaller. Compression is accepted only when
// the estimated overall ratio clears cfg.MinRatio.
func EstimatePlan(m *matrix.MatrixBlock, cfg PlannerConfig) *Plan {
	rows, cols := m.Rows(), m.Cols()
	plan := &Plan{UncompressedBytes: m.InMemorySize()}
	if rows == 0 || cols == 0 {
		return plan
	}
	step := 1
	if s := cfg.sampleRows(); rows > s {
		step = rows / s
	}
	sampleIdx := make([]int, 0, rows/step+1)
	for r := 0; r < rows; r += step {
		sampleIdx = append(sampleIdx, r)
	}
	n := len(sampleIdx)
	plan.SampledRows = n
	plan.Cols = make([]ColPlan, cols)
	for c := 0; c < cols; c++ {
		freq := map[float64]int{}
		changes := 0
		prev := 0.0
		for i, r := range sampleIdx {
			v := m.Get(r, c)
			freq[v]++
			if i > 0 && v != prev {
				changes++
			}
			prev = v
		}
		// collect-then-sort so the frequency statistics never depend on map
		// iteration order
		vals := make([]float64, 0, len(freq))
		for v := range freq {
			vals = append(vals, v)
		}
		sort.Float64s(vals)
		maxFreq := 0
		defaultVal := 0.0
		cnts := make([]int, 0, len(vals))
		for _, v := range vals {
			cnt := freq[v]
			cnts = append(cnts, cnt)
			if cnt > maxFreq {
				maxFreq, defaultVal = cnt, v
			}
		}
		cp := estimateColumn(rows, n, haasStokes(rows, n, cnts), changes, maxFreq)
		cp.Col = c
		cp.Default = defaultVal
		plan.Cols[c] = cp
	}
	cocodePlan(m, sampleIdx, plan, rows)
	// total the plan: co-coded groups once, every other column separately
	var total int64
	for _, cc := range plan.CoCoded {
		total += cc.EstBytes + groupOverheadBytes
	}
	for c := 0; c < cols; c++ {
		if plan.Cols[c].Enc == EncCoCoded {
			continue
		}
		total += plan.Cols[c].EstBytes + groupOverheadBytes
	}
	plan.EstCompressedBytes = total
	if total > 0 {
		plan.EstRatio = float64(plan.UncompressedBytes) / float64(total)
	}
	plan.Accepted = plan.EstRatio >= cfg.minRatio()
	return plan
}

// haasStokesHeavyCut is the sample count above which a value is treated as a
// certain population member and excluded from the jackknife extrapolation.
// Without this split the squared-CV term explodes under heavy skew (one value
// covering most rows) and the estimator grossly overestimates the tail.
const haasStokesHeavyCut = 16

// haasStokes estimates the column cardinality from the per-value sample
// counts using the Haas–Stokes smoothed-jackknife estimator (Haas et al.,
// "Sampling-based estimation of the number of distinct values of an
// attribute", VLDB 1995 — the estimator SystemDS uses for its compression
// planner), with frequency smoothing: values frequent in the sample are
// certainly distinct in the population and contribute no extrapolation
// uncertainty, so the jackknife runs only over the rare-value portion of the
// sample against its proportional share of the population. The naive
// scale-up rows*d/n badly overestimates skewed distributions (a heavy hitter
// plus a thin tail); the jackknife corrects with the singleton fraction and
// a squared-CV term. counts only feeds symmetric statistics, so its order
// does not matter.
func haasStokes(rows, sampled int, counts []int) int {
	d := len(counts)
	if d == 0 || sampled == 0 {
		return d
	}
	if sampled >= rows {
		return d // exact scan
	}
	heavy, light, f1 := 0, 0, 0
	var dupSum float64
	for _, cnt := range counts {
		if cnt > haasStokesHeavyCut {
			heavy++
			continue
		}
		light += cnt
		if cnt == 1 {
			f1++
		}
		dupSum += float64(float64(cnt) * float64(cnt-1))
	}
	dl := d - heavy
	if dl == 0 || light == 0 {
		return d // the sample saw only heavy values: the scan was exhaustive
	}
	// the light values' share of the population, by sample proportion
	n := float64(light)
	N := float64(rows) * n / float64(sampled)
	if N < n {
		N = n
	}
	q := n / N
	if q >= 1 {
		return d
	}
	denom := 1 - (1-q)*float64(f1)/n
	if denom < 1/N {
		denom = 1 / N // all-singleton sample: extrapolate to at most N
	}
	duj1 := float64(dl) / denom
	gamma2 := float64(duj1/(n*n)*dupSum) + duj1/N - 1
	if gamma2 < 0 {
		gamma2 = 0
	}
	est := (float64(dl) - float64(f1)*(1-q)*math.Log(1-q)*gamma2/q) / denom
	if est < float64(dl) {
		est = float64(dl)
	}
	if est > N {
		est = N
	}
	return heavy + int(est+0.5)
}

// estimateColumn prices one column under each encoding from its sample
// statistics and picks the cheapest. card is the Haas–Stokes cardinality
// estimate, maxFreq the sample count of the most frequent value (the SDC
// default candidate).
func estimateColumn(rows, sampled, card, sampleChanges, maxFreq int) ColPlan {
	// Runs: the fraction of adjacent sampled pairs that differ, scaled to all
	// row adjacencies (a change between two sampled rows implies at least one
	// change in the gap; for stride 1 the count is exact).
	runs := 1
	if sampled > 1 {
		runs = int(float64(rows-1)*float64(sampleChanges)/float64(sampled-1)) + 1
	}
	ddcBytes := int64(-1)
	if card <= MaxDictSize {
		codeBytes := int64(1)
		if card > 256 {
			codeBytes = 2
		}
		ddcBytes = int64(rows)*codeBytes + int64(card)*12 // dict (8) + counts (4)
	}
	rleBytes := int64(runs) * 16 // value (8) + start (4) + len (4)
	uncBytes := int64(rows) * 8
	// SDC: only the non-default rows pay per-row storage (position 4 + code
	// 2), plus the exception dictionary
	sdcBytes := int64(-1)
	if sampled > 0 {
		excCard := card - 1
		if excCard < 0 {
			excCard = 0
		}
		if excCard <= MaxDictSize {
			excRows := int64(float64(rows) * float64(sampled-maxFreq) / float64(sampled))
			sdcBytes = 16 + excRows*6 + int64(excCard)*12
		}
	}

	cp := ColPlan{Enc: EncUncompressed, EstCard: card, EstRuns: runs, EstBytes: uncBytes}
	if rleBytes < cp.EstBytes {
		cp.Enc, cp.EstBytes = EncRLE, rleBytes
	}
	if ddcBytes >= 0 && ddcBytes < cp.EstBytes {
		cp.Enc, cp.EstBytes = EncDDC, ddcBytes
	}
	if sdcBytes >= 0 && sdcBytes < cp.EstBytes {
		cp.Enc, cp.EstBytes = EncSDC, sdcBytes
	}
	return cp
}

// cocodeKey identifies a (current joint code, next column value) pair during
// the greedy joint-cardinality scan.
type cocodeKey struct {
	code int32
	bits uint64
}

// cocodePlan greedily merges runs of adjacent DDC-planned low-cardinality
// columns into co-coded groups: a candidate column joins the current set when
// the estimated bytes of the merged group (joint codes plus a tuple
// dictionary sized by the Haas–Stokes estimate of the joint cardinality)
// undercut the current set and the candidate encoded separately. One joint
// sample scan per tested merge keeps the pass O(cols * sampleRows).
func cocodePlan(m *matrix.MatrixBlock, sampleIdx []int, plan *Plan, rows int) {
	n := len(sampleIdx)
	if n == 0 {
		return
	}
	var cur []int        // columns of the current candidate set
	var curCodes []int32 // joint code per sampled row for cur
	var curCard int      // Haas–Stokes joint-cardinality estimate for cur
	var curBytes int64   // estimated merged bytes for cur
	flush := func() {
		if len(cur) >= 2 {
			plan.CoCoded = append(plan.CoCoded, CoCodePlan{Cols: cur, EstCard: curCard, EstBytes: curBytes})
			for _, cc := range cur {
				plan.Cols[cc].Enc = EncCoCoded
			}
		}
		cur, curCodes = nil, nil
	}
	for c := 0; c < len(plan.Cols); c++ {
		cp := plan.Cols[c]
		if cp.Enc != EncDDC || cp.EstCard > cocodeCandCard {
			flush()
			continue
		}
		if cur == nil {
			cur = []int{c}
			curCodes = make([]int32, n)
			ids := map[uint64]int32{}
			for i, r := range sampleIdx {
				b := math.Float64bits(m.Get(r, c))
				id, ok := ids[b]
				if !ok {
					id = int32(len(ids))
					ids[b] = id
				}
				curCodes[i] = id
			}
			curCard, curBytes = cp.EstCard, cp.EstBytes
			continue
		}
		if len(cur) >= cocodeMaxWidth {
			flush()
			c-- // re-test this column as the start of a fresh set
			continue
		}
		// joint scan: extend the current per-row codes with this column's
		// values and estimate the joint cardinality of the merged set
		ids := map[cocodeKey]int32{}
		newCodes := make([]int32, n)
		var counts []int
		for i, r := range sampleIdx {
			k := cocodeKey{code: curCodes[i], bits: math.Float64bits(m.Get(r, c))}
			id, ok := ids[k]
			if !ok {
				id = int32(len(ids))
				ids[k] = id
				counts = append(counts, 0)
			}
			counts[id]++
			newCodes[i] = id
		}
		jointCard := haasStokes(rows, n, counts)
		w := len(cur) + 1
		mergedBytes := int64(-1)
		if jointCard <= MaxDictSize {
			codeBytes := int64(1)
			if jointCard > 256 {
				codeBytes = 2
			}
			mergedBytes = int64(rows)*codeBytes + int64(jointCard)*int64(8*w+4)
		}
		// merging must beat the current set and the candidate as separate
		// groups (their bytes plus one saved per-group overhead)
		if mergedBytes >= 0 && mergedBytes < curBytes+cp.EstBytes+groupOverheadBytes {
			cur = append(cur, c)
			curCodes = newCodes
			curCard, curBytes = jointCard, mergedBytes
			continue
		}
		flush()
		c-- // re-test this column as the start of a fresh set
	}
	flush()
}
