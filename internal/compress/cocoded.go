package compress

import "math"

// --- Co-coded: joint dictionary coding of correlated columns -----------------

// CoCodedGroup encodes several correlated columns jointly: each row stores one
// code indexing a dictionary of value *tuples* (one value per member column).
// When columns are correlated, the joint cardinality is far below the product
// of the per-column cardinalities, so one code per row replaces len(Cols)
// codes — the co-coding of CLA (Elgohary et al., PVLDB 2016, §4.2). The greedy
// sample planner decides which adjacent columns to merge (see cocodePlan).
type CoCodedGroup struct {
	Cols   []int     // ascending global column indexes
	Dict   []float64 // tuple-major: tuple k occupies Dict[k*len(Cols) : (k+1)*len(Cols)]
	Counts []int32   // occurrences per tuple (len == len(Dict)/len(Cols))
	// exactly one of Codes8/Codes16 is non-nil, with one code per row
	Codes8  []uint8
	Codes16 []uint16
}

// Columns implements ColGroup.
func (g *CoCodedGroup) Columns() []int { return g.Cols }

// Encoding implements ColGroup.
func (g *CoCodedGroup) Encoding() Encoding { return EncCoCoded }

// NumRows returns the number of encoded rows.
func (g *CoCodedGroup) NumRows() int {
	if g.Codes8 != nil {
		return len(g.Codes8)
	}
	return len(g.Codes16)
}

// numVals returns the number of dictionary tuples.
func (g *CoCodedGroup) numVals() int { return len(g.Counts) }

// code returns the dictionary code of row r.
func (g *CoCodedGroup) code(r int) int {
	if g.Codes8 != nil {
		return int(g.Codes8[r])
	}
	return int(g.Codes16[r])
}

// InMemorySize implements ColGroup.
func (g *CoCodedGroup) InMemorySize() int64 {
	s := int64(len(g.Dict))*8 + int64(len(g.Counts))*4 + int64(len(g.Cols))*8 + 64
	if g.Codes8 != nil {
		s += int64(len(g.Codes8))
	} else {
		s += int64(len(g.Codes16)) * 2
	}
	return s
}

// NNZ implements ColGroup.
func (g *CoCodedGroup) NNZ() int64 {
	w := len(g.Cols)
	var nnz int64
	for k, cnt := range g.Counts {
		for j := 0; j < w; j++ {
			if g.Dict[k*w+j] != 0 {
				nnz += int64(cnt)
			}
		}
	}
	return nnz
}

// DecompressInto implements ColGroup.
func (g *CoCodedGroup) DecompressInto(out []float64, nCols, r0, r1 int) {
	w := len(g.Cols)
	for r := r0; r < r1; r++ {
		k := g.code(r)
		for j, c := range g.Cols {
			out[(r-r0)*nCols+c] = g.Dict[k*w+j]
		}
	}
}

// MatVecAccum implements ColGroup: each dictionary tuple is reduced against
// the vector entries of the member columns once (the pre-scaling of CLA, here
// a tuple dot product), then rows gather by code.
func (g *CoCodedGroup) MatVecAccum(out, v []float64, r0, r1 int, scratch []float64) {
	w := len(g.Cols)
	nv := g.numVals()
	pre := scratch
	if len(pre) < nv {
		pre = make([]float64, nv)
	} else {
		pre = pre[:nv]
	}
	for k := 0; k < nv; k++ {
		var s float64
		for j, c := range g.Cols {
			s += float64(g.Dict[k*w+j] * v[c])
		}
		pre[k] = s
	}
	if g.Codes8 != nil {
		for r := r0; r < r1; r++ {
			out[r-r0] += pre[g.Codes8[r]]
		}
		return
	}
	for r := r0; r < r1; r++ {
		out[r-r0] += pre[g.Codes16[r]]
	}
}

// VecMatAccum implements ColGroup: vector entries are aggregated per tuple
// code first, then combined with each member column's dictionary values once.
func (g *CoCodedGroup) VecMatAccum(out, v []float64) {
	w := len(g.Cols)
	nv := g.numVals()
	agg := make([]float64, nv)
	if g.Codes8 != nil {
		for r, c := range g.Codes8 {
			agg[c] += v[r]
		}
	} else {
		for r, c := range g.Codes16 {
			agg[c] += v[r]
		}
	}
	for j, col := range g.Cols {
		var s float64
		for k := 0; k < nv; k++ {
			s += float64(agg[k] * g.Dict[k*w+j])
		}
		out[col] += s
	}
}

// MapValues implements ColGroup: codes and counts are shared, only the tuple
// dictionary is rewritten.
func (g *CoCodedGroup) MapValues(fn func(float64) float64) ColGroup {
	dict := make([]float64, len(g.Dict))
	for k, d := range g.Dict {
		dict[k] = fn(d)
	}
	return &CoCodedGroup{Cols: g.Cols, Dict: dict, Counts: g.Counts, Codes8: g.Codes8, Codes16: g.Codes16}
}

// Sum implements ColGroup.
func (g *CoCodedGroup) Sum() float64 {
	w := len(g.Cols)
	var s float64
	for k, cnt := range g.Counts {
		var ts float64
		for j := 0; j < w; j++ {
			ts += g.Dict[k*w+j]
		}
		s += float64(float64(cnt) * ts)
	}
	return s
}

// SumSq implements ColGroup.
func (g *CoCodedGroup) SumSq() float64 {
	w := len(g.Cols)
	var s float64
	for k, cnt := range g.Counts {
		var ts float64
		for j := 0; j < w; j++ {
			d := g.Dict[k*w+j]
			ts += float64(d * d)
		}
		s += float64(float64(cnt) * ts)
	}
	return s
}

// MinMax implements ColGroup. Every dictionary tuple occurs at least once, so
// scanning the dictionary is exact.
func (g *CoCodedGroup) MinMax() (float64, float64) {
	mn, mx := math.Inf(1), math.Inf(-1)
	for _, d := range g.Dict {
		mn = math.Min(mn, d)
		mx = math.Max(mx, d)
	}
	return mn, mx
}

// ColSumsInto implements ColGroup.
func (g *CoCodedGroup) ColSumsInto(out []float64) {
	w := len(g.Cols)
	for j, col := range g.Cols {
		var s float64
		for k, cnt := range g.Counts {
			s += float64(float64(cnt) * g.Dict[k*w+j])
		}
		out[col] += s
	}
}

// RowSumsAccum implements ColGroup: tuple row-sums are precomputed once, then
// rows gather by code.
func (g *CoCodedGroup) RowSumsAccum(out []float64, r0, r1 int) {
	w := len(g.Cols)
	nv := g.numVals()
	pre := make([]float64, nv)
	for k := 0; k < nv; k++ {
		var s float64
		for j := 0; j < w; j++ {
			s += g.Dict[k*w+j]
		}
		pre[k] = s
	}
	if g.Codes8 != nil {
		for r := r0; r < r1; r++ {
			out[r-r0] += pre[g.Codes8[r]]
		}
		return
	}
	for r := r0; r < r1; r++ {
		out[r-r0] += pre[g.Codes16[r]]
	}
}
