package compress

import (
	"fmt"
	"math"
	"sync"

	"github.com/systemds/systemds-go/internal/matrix"
)

// CompressedMatrix is a matrix stored as a set of compressed column groups.
// Every column of the matrix belongs to exactly one group and every group
// covers all rows, so kernels iterate groups independently and combine by
// global row/column index. The representation is immutable, like
// matrix.MatrixBlock results: kernels always build new objects.
type CompressedMatrix struct {
	NumRows, NumCols int
	Groups           []ColGroup
}

// Rows returns the number of rows.
func (c *CompressedMatrix) Rows() int { return c.NumRows }

// Cols returns the number of columns.
func (c *CompressedMatrix) Cols() int { return c.NumCols }

// NNZ returns the exact number of non-zero cells.
func (c *CompressedMatrix) NNZ() int64 {
	var nnz int64
	for _, g := range c.Groups {
		nnz += g.NNZ()
	}
	return nnz
}

// InMemorySize estimates the in-memory footprint in bytes.
func (c *CompressedMatrix) InMemorySize() int64 {
	s := int64(64)
	for _, g := range c.Groups {
		s += g.InMemorySize()
	}
	return s
}

// String renders the compressed matrix for debugging.
func (c *CompressedMatrix) String() string {
	return fmt.Sprintf("CompressedMatrix[%dx%d, %d groups, %dB]",
		c.NumRows, c.NumCols, len(c.Groups), c.InMemorySize())
}

// EncodingSummary renders the per-encoding group counts
// ("ddc=3,rle=1,sdc=0,cc=0,unc=1") — the group-type histogram used in plan
// records and tests.
func (c *CompressedMatrix) EncodingSummary() string {
	var ddc, rle, sdc, cc, unc int
	for _, g := range c.Groups {
		switch g.Encoding() {
		case EncDDC:
			ddc++
		case EncRLE:
			rle++
		case EncSDC:
			sdc++
		case EncCoCoded:
			cc++
		default:
			unc++
		}
	}
	return fmt.Sprintf("ddc=%d,rle=%d,sdc=%d,cc=%d,unc=%d", ddc, rle, sdc, cc, unc)
}

// Decompress materializes the compressed matrix into a plain matrix block
// (the transparent fallback for operators without a compressed kernel).
func (c *CompressedMatrix) Decompress() *matrix.MatrixBlock {
	out := matrix.NewDense(c.NumRows, c.NumCols)
	dst := out.DenseValues()
	for _, g := range c.Groups {
		g.DecompressInto(dst, c.NumCols, 0, c.NumRows)
	}
	out.RecomputeNNZ()
	return out.ExamineAndApplySparsity()
}

// --- deterministic fixed-chunk row partitioning ------------------------------

const (
	// compressedChunkRows is the target rows per parallel chunk. Boundaries
	// depend only on the row count, and every output row is written by exactly
	// one chunk, so results are bitwise identical across thread counts.
	compressedChunkRows = 1024
)

// rowChunks derives the fixed chunking of the row range: chunk size and count
// are functions of the row count alone, never of the thread count.
func rowChunks(rows int) (nChunks, chunkSize int) {
	if rows <= compressedChunkRows {
		return 1, rows
	}
	nChunks = (rows + compressedChunkRows - 1) / compressedChunkRows
	return nChunks, compressedChunkRows
}

// forEachRowChunk runs fn over the fixed row chunks on up to `threads`
// workers. Chunks own disjoint row ranges, so no synchronization of the
// output is needed.
func forEachRowChunk(rows, threads int, fn func(r0, r1 int)) {
	nChunks, chunkSize := rowChunks(rows)
	if threads <= 1 || nChunks == 1 {
		for ci := 0; ci < nChunks; ci++ {
			r0 := ci * chunkSize
			r1 := min(r0+chunkSize, rows)
			fn(r0, r1)
		}
		return
	}
	if threads > nChunks {
		threads = nChunks
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				ci := next
				next++
				mu.Unlock()
				if ci >= nChunks {
					return
				}
				r0 := ci * chunkSize
				r1 := min(r0+chunkSize, rows)
				fn(r0, r1)
			}
		}()
	}
	wg.Wait()
}

// forEachIndex runs fn over indexes [0, n) on up to `threads` workers. Work
// items must write disjoint outputs; the index set (and therefore the work
// decomposition) depends only on n, never on the thread count.
func forEachIndex(n, threads int, fn func(i int)) {
	if threads <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if threads > n {
		threads = n
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// forEachGroup runs fn over the column groups on up to `threads` workers.
// Groups cover disjoint columns, so group-indexed outputs need no locking.
func forEachGroup(groups []ColGroup, threads int, fn func(i int, g ColGroup)) {
	forEachIndex(len(groups), threads, func(i int) { fn(i, groups[i]) })
}

// MatVec computes the matrix-vector product c %*% v directly on the
// compressed representation: per group, the dictionary (or run values) is
// pre-scaled by the vector entry once, then rows gather by code — the CLA
// pre-aggregation that touches the small encoded data instead of the dense
// cells. The result is an m x 1 dense block.
func (c *CompressedMatrix) MatVec(v *matrix.MatrixBlock, threads int) (*matrix.MatrixBlock, error) {
	if v.Rows() != c.NumCols || v.Cols() != 1 {
		return nil, fmt.Errorf("compress: matvec vector is %dx%d, want %dx1", v.Rows(), v.Cols(), c.NumCols)
	}
	vd := denseVector(v)
	out := matrix.NewDense(c.NumRows, 1)
	dst := out.DenseValues()
	// the largest dictionary bounds the pre-scaling scratch one chunk needs,
	// so each chunk allocates one buffer for all of its groups
	maxDict := c.maxPreScaleSlots()
	// rows are partitioned into fixed chunks; within a chunk, groups are
	// accumulated in group order, so the summation order per output row is
	// independent of the thread count
	forEachRowChunk(c.NumRows, threads, func(r0, r1 int) {
		seg := dst[r0:r1]
		scratch := make([]float64, maxDict)
		for _, g := range c.Groups {
			g.MatVecAccum(seg, vd, r0, r1, scratch)
		}
	})
	out.RecomputeNNZ()
	return out, nil
}

// VecMat computes the vector-matrix product v %*% c directly on the
// compressed representation: per group, the vector entries are aggregated by
// dictionary code (or run) first, then combined with the values once. The
// result is a 1 x n dense block. Groups cover disjoint output columns, so the
// group-parallel execution is deterministic.
func (c *CompressedMatrix) VecMat(v *matrix.MatrixBlock, threads int) (*matrix.MatrixBlock, error) {
	if v.Rows() != 1 || v.Cols() != c.NumRows {
		return nil, fmt.Errorf("compress: vecmat vector is %dx%d, want 1x%d", v.Rows(), v.Cols(), c.NumRows)
	}
	vd := denseVector(v)
	out := matrix.NewDense(1, c.NumCols)
	dst := out.DenseValues()
	forEachGroup(c.Groups, threads, func(_ int, g ColGroup) {
		g.VecMatAccum(dst, vd)
	})
	out.RecomputeNNZ()
	return out, nil
}

// MMChain computes t(X) %*% (X %*% v), optionally weighted as
// t(X) %*% (w * (X %*% v)), entirely on the compressed representation: one
// MatVec pass, a cheap dense scaling of the m x 1 intermediate, and one
// VecMat pass. The n x 1 result matches the uncompressed fused mmchain.
func (c *CompressedMatrix) MMChain(v, w *matrix.MatrixBlock, threads int) (*matrix.MatrixBlock, error) {
	t, err := c.MatVec(v, threads)
	if err != nil {
		return nil, err
	}
	td := t.DenseValues()
	if w != nil {
		if w.Rows() != c.NumRows || w.Cols() != 1 {
			return nil, fmt.Errorf("compress: mmchain weights are %dx%d, want %dx1", w.Rows(), w.Cols(), c.NumRows)
		}
		wd := denseVector(w)
		for i := range td {
			td[i] *= wd[i]
		}
	}
	// reshape the m x 1 intermediate as the 1 x m left operand of VecMat
	tr, err := t.Reshape(1, c.NumRows, true)
	if err != nil {
		return nil, err
	}
	res, err := c.VecMat(tr, threads)
	if err != nil {
		return nil, err
	}
	return res.Reshape(c.NumCols, 1, true)
}

// MapValues applies fn to every cell and returns a new compressed matrix.
// Encoding structure (codes, run positions) is shared with the receiver; only
// the value dictionaries are rewritten — scalar operations and cellwise
// unaries on compressed data are dictionary-only updates.
func (c *CompressedMatrix) MapValues(fn func(float64) float64, threads int) *CompressedMatrix {
	out := &CompressedMatrix{NumRows: c.NumRows, NumCols: c.NumCols, Groups: make([]ColGroup, len(c.Groups))}
	forEachGroup(c.Groups, threads, func(i int, g ColGroup) {
		out.Groups[i] = g.MapValues(fn)
	})
	return out
}

// Sum returns the sum of all cells (dictionary-weighted counts; no cell scan).
func (c *CompressedMatrix) Sum() float64 {
	var s float64
	for _, g := range c.Groups {
		s += g.Sum()
	}
	return s
}

// SumSq returns the sum of squared cells.
func (c *CompressedMatrix) SumSq() float64 {
	var s float64
	for _, g := range c.Groups {
		s += g.SumSq()
	}
	return s
}

// Mean returns the mean cell value.
func (c *CompressedMatrix) Mean() float64 {
	cells := float64(c.NumRows) * float64(c.NumCols)
	if cells == 0 {
		return 0
	}
	return c.Sum() / cells
}

// Min returns the smallest cell value.
func (c *CompressedMatrix) Min() float64 {
	mn := math.Inf(1)
	for _, g := range c.Groups {
		m, _ := g.MinMax()
		mn = math.Min(mn, m)
	}
	return mn
}

// Max returns the largest cell value.
func (c *CompressedMatrix) Max() float64 {
	mx := math.Inf(-1)
	for _, g := range c.Groups {
		_, m := g.MinMax()
		mx = math.Max(mx, m)
	}
	return mx
}

// ColSums returns the per-column sums as a 1 x n block.
func (c *CompressedMatrix) ColSums() *matrix.MatrixBlock {
	out := matrix.NewDense(1, c.NumCols)
	dst := out.DenseValues()
	for _, g := range c.Groups {
		g.ColSumsInto(dst)
	}
	out.RecomputeNNZ()
	return out
}

// RowSums returns the per-row sums as an m x 1 block.
func (c *CompressedMatrix) RowSums(threads int) *matrix.MatrixBlock {
	out := matrix.NewDense(c.NumRows, 1)
	dst := out.DenseValues()
	forEachRowChunk(c.NumRows, threads, func(r0, r1 int) {
		seg := dst[r0:r1]
		for _, g := range c.Groups {
			g.RowSumsAccum(seg, r0, r1)
		}
	})
	out.RecomputeNNZ()
	return out
}

// preScaleSlots returns the number of pre-scaled-dictionary scratch slots a
// group's MatVecAccum needs (0 for groups that take no scratch).
func preScaleSlots(g ColGroup) int {
	switch t := g.(type) {
	case *DDCGroup:
		return len(t.Dict)
	case *CoCodedGroup:
		return len(t.Counts)
	case *SDCGroup:
		return len(t.Dict)
	}
	return 0
}

// maxPreScaleSlots returns the largest pre-scaling scratch any group needs,
// so per-chunk workers can size one buffer for all groups.
func (c *CompressedMatrix) maxPreScaleSlots() int {
	m := 0
	for _, g := range c.Groups {
		if s := preScaleSlots(g); s > m {
			m = s
		}
	}
	return m
}

// denseVector returns the dense values of a vector block without mutating the
// caller's representation.
func denseVector(v *matrix.MatrixBlock) []float64 {
	if !v.IsSparse() {
		return v.DenseValues()
	}
	return v.Copy().DenseValues()
}
