package compress

import (
	"github.com/systemds/systemds-go/internal/matrix"
)

// SliceRows returns a compressed view of rows [r0, r1): dictionaries are
// shared with the receiver, codes/runs/positions are re-based to the slice,
// and per-dictionary counts are recomputed for the slice so count-weighted
// kernels (MatVec pre-scaling, TSMM cross products, sums) stay exact. This is
// the row-range partitioning used by the dist backend: a compressed matrix
// splits into per-partition compressed slices instead of decompressing at the
// boundary.
//
// Sliced groups may carry dictionary entries whose slice count is zero;
// MinMax over a slice can therefore over-approximate (it scans the shared
// dictionary). The dist executors only use count-weighted and code-gathering
// kernels, which are exact.
func (c *CompressedMatrix) SliceRows(r0, r1 int) *CompressedMatrix {
	out := &CompressedMatrix{NumRows: r1 - r0, NumCols: c.NumCols, Groups: make([]ColGroup, len(c.Groups))}
	for i, g := range c.Groups {
		out.Groups[i] = sliceRowsGroup(g, r0, r1)
	}
	return out
}

func sliceRowsGroup(g ColGroup, r0, r1 int) ColGroup {
	switch t := g.(type) {
	case *DDCGroup:
		s := &DDCGroup{Col: t.Col, Dict: t.Dict, Counts: make([]int32, len(t.Dict))}
		if t.Codes8 != nil {
			s.Codes8 = t.Codes8[r0:r1]
			for _, k := range s.Codes8 {
				s.Counts[k]++
			}
		} else {
			s.Codes16 = t.Codes16[r0:r1]
			for _, k := range s.Codes16 {
				s.Counts[k]++
			}
		}
		return s
	case *CoCodedGroup:
		s := &CoCodedGroup{Cols: t.Cols, Dict: t.Dict, Counts: make([]int32, len(t.Counts))}
		if t.Codes8 != nil {
			s.Codes8 = t.Codes8[r0:r1]
			for _, k := range s.Codes8 {
				s.Counts[k]++
			}
		} else {
			s.Codes16 = t.Codes16[r0:r1]
			for _, k := range s.Codes16 {
				s.Counts[k]++
			}
		}
		return s
	case *RLEGroup:
		s := &RLEGroup{Col: t.Col}
		for i, v := range t.Values {
			lo, hi := t.runRange(i, r0, r1)
			if lo >= hi {
				continue
			}
			s.Values = append(s.Values, v)
			s.Starts = append(s.Starts, int32(lo-r0))
			s.Lens = append(s.Lens, int32(hi-lo))
		}
		return s
	case *SDCGroup:
		lo, hi := t.posRange(r0, r1)
		s := &SDCGroup{Col: t.Col, N: r1 - r0, Default: t.Default,
			Dict: t.Dict, Counts: make([]int32, len(t.Dict)),
			Pos: make([]int32, hi-lo), Codes: t.Codes[lo:hi]}
		for i := lo; i < hi; i++ {
			s.Pos[i-lo] = t.Pos[i] - int32(r0)
			s.Counts[t.Codes[i]]++
		}
		return s
	case *UncompressedGroup:
		blk, err := matrix.Slice(t.Data, r0, r1, 0, t.Data.Cols())
		if err != nil {
			// bounds derive from the receiver's own shape; stay total anyway
			blk = matrix.NewDense(r1-r0, t.Data.Cols())
			for r := r0; r < r1; r++ {
				for j := 0; j < t.Data.Cols(); j++ {
					blk.Set(r-r0, j, t.Data.Get(r, j))
				}
			}
			blk = blk.ExamineAndApplySparsity()
		}
		return &UncompressedGroup{ColIdx: t.ColIdx, Data: blk}
	}
	return g
}
