package compiler

import (
	"strings"
	"testing"

	"github.com/systemds/systemds-go/internal/builtins"
	"github.com/systemds/systemds-go/internal/instructions"
	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/runtime"
	"github.com/systemds/systemds-go/internal/types"
)

func newCompiler(cfg *runtime.Config) *Compiler {
	if cfg == nil {
		cfg = runtime.DefaultConfig()
	}
	return New(cfg, builtins.NewRegistry())
}

func compileAndRun(t *testing.T, script string, inputs map[string]*matrix.MatrixBlock, outputs []string) map[string]runtime.Data {
	t.Helper()
	c := newCompiler(nil)
	prog, err := c.Compile(script, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	ctx := runtime.NewContext(runtime.DefaultConfig())
	ctx.Prog = prog
	for name, m := range inputs {
		ctx.SetMatrix(name, m)
	}
	if err := prog.Execute(ctx); err != nil {
		t.Fatalf("execute: %v", err)
	}
	res := map[string]runtime.Data{}
	for _, o := range outputs {
		d, err := ctx.Get(o)
		if err != nil {
			t.Fatalf("output %s: %v", o, err)
		}
		res[o] = d
	}
	return res
}

func TestCompileSimpleProgramStructure(t *testing.T) {
	c := newCompiler(nil)
	prog, err := c.Compile(`
x = 1 + 2
if (x > 2) { y = 10 } else { y = 20 }
for (i in 1:3) { x = x + i }
while (x < 100) { x = x * 2 }
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(prog.Blocks))
	}
	if _, ok := prog.Blocks[0].(*runtime.BasicBlock); !ok {
		t.Errorf("block 0 = %T", prog.Blocks[0])
	}
	if _, ok := prog.Blocks[1].(*runtime.IfBlock); !ok {
		t.Errorf("block 1 = %T", prog.Blocks[1])
	}
	if _, ok := prog.Blocks[2].(*runtime.ForBlock); !ok {
		t.Errorf("block 2 = %T", prog.Blocks[2])
	}
	if _, ok := prog.Blocks[3].(*runtime.WhileBlock); !ok {
		t.Errorf("block 3 = %T", prog.Blocks[3])
	}
}

func TestCompileParforResultVars(t *testing.T) {
	c := newCompiler(nil)
	prog, err := c.Compile(`
R = matrix(0, 1, 5)
parfor (i in 1:5) {
  R[1, i] = i * i
}
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	fb, ok := prog.Blocks[1].(*runtime.ForBlock)
	if !ok || !fb.Parallel {
		t.Fatalf("expected parallel for block, got %T", prog.Blocks[1])
	}
	found := false
	for _, rv := range fb.ResultVars {
		if rv == "R" {
			found = true
		}
	}
	if !found {
		t.Errorf("result vars = %v, expected R", fb.ResultVars)
	}
}

func TestCompileUnknownFunctionRejected(t *testing.T) {
	c := newCompiler(nil)
	if _, err := c.Compile(`x = mysteryFn(1)`, nil); err == nil {
		t.Error("expected unknown function error")
	}
	if _, err := c.Compile(`x = `, nil); err == nil {
		t.Error("expected parse error")
	}
}

func TestCompileDMLBuiltinResolution(t *testing.T) {
	c := newCompiler(nil)
	prog, err := c.Compile(`B = lm(X, y)`, nil)
	if err != nil {
		t.Fatal(err)
	}
	// lm and its transitive dependencies lmDS and lmCG are compiled into the
	// function table on demand
	for _, fn := range []string{"lm", "lmDS", "lmCG"} {
		if _, ok := prog.Functions[fn]; !ok {
			t.Errorf("function %s not compiled", fn)
		}
	}
}

func TestIsCallablePredicate(t *testing.T) {
	c := newCompiler(nil)
	pred := c.IsCallable(nil)
	if !pred("sum") || !pred("lmDS") {
		t.Error("native and DML builtins should be callable")
	}
	if pred("definitelyNotAFunction") {
		t.Error("unknown names must not be callable")
	}
}

func TestCompiledScalarExecution(t *testing.T) {
	res := compileAndRun(t, `
a = 3
b = a ^ 2 + 1
c = min(b, 5)
`, nil, []string{"b", "c"})
	if res["b"].(*runtime.Scalar).Float64() != 10 {
		t.Errorf("b = %v", res["b"])
	}
	if res["c"].(*runtime.Scalar).Float64() != 5 {
		t.Errorf("c = %v", res["c"])
	}
}

func TestCompiledMatrixPipeline(t *testing.T) {
	x := matrix.FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	res := compileAndRun(t, `
G = t(X) %*% X
s = sum(G)
cs = colSums(X)
sub = X[2:3, ]
`, map[string]*matrix.MatrixBlock{"X": x}, []string{"G", "s", "cs", "sub"})
	g := res["G"].(*runtime.MatrixObject)
	blk, _ := g.Acquire()
	if !blk.Equals(matrix.TSMM(x, 1), 1e-12) {
		t.Error("G wrong")
	}
	if res["s"].(*runtime.Scalar).Float64() != matrix.Sum(blk, 1) {
		t.Error("s wrong")
	}
	sub, _ := res["sub"].(*runtime.MatrixObject).Acquire()
	if sub.Rows() != 2 || sub.Get(0, 0) != 3 {
		t.Errorf("sub = %v", sub)
	}
}

func TestTSMMFusionInCompiledCode(t *testing.T) {
	// verify that t(X) %*% X compiles to a tsmm instruction (not transpose +
	// matmult) by inspecting the lowered basic block
	c := newCompiler(nil)
	prog, err := c.Compile(`G = t(X) %*% X`, map[string]types.DataCharacteristics{
		"X": types.NewDataCharacteristics(100, 10, 1024, 1000),
	})
	if err != nil {
		t.Fatal(err)
	}
	bb := prog.Blocks[0].(*runtime.BasicBlock)
	opcodes := make([]string, 0, len(bb.Instructions))
	for _, inst := range bb.Instructions {
		opcodes = append(opcodes, inst.Opcode())
	}
	joined := strings.Join(opcodes, ",")
	if !strings.Contains(joined, "tsmm") {
		t.Errorf("expected tsmm in lowered instructions, got %v", opcodes)
	}
	if strings.Contains(joined, "ba+*") {
		t.Errorf("unexpected generic matmult in %v", opcodes)
	}
}

func TestExecTypeSelectionWithKnownSizes(t *testing.T) {
	cfg := runtime.DefaultConfig()
	cfg.DistEnabled = true
	cfg.OperatorMemBudget = 1 << 10 // 1 KB: everything large goes DIST
	c := New(cfg, builtins.NewRegistry())
	prog, err := c.Compile(`G = t(X) %*% X`, map[string]types.DataCharacteristics{
		"X": types.NewDataCharacteristics(2000, 200, 1024, 400000),
	})
	if err != nil {
		t.Fatal(err)
	}
	bb := prog.Blocks[0].(*runtime.BasicBlock)
	foundDist := false
	for _, inst := range bb.Instructions {
		if ts, ok := inst.(*instructions.TSMMInst); ok && ts.ExecType == types.ExecDist {
			foundDist = true
		}
	}
	if !foundDist {
		t.Error("expected the tsmm to be selected for the distributed backend")
	}
}

func TestDynamicRecompilationCallback(t *testing.T) {
	cfg := runtime.DefaultConfig()
	cfg.DistEnabled = true
	c := New(cfg, builtins.NewRegistry())
	// without known input sizes the block must be flagged for recompilation
	prog, err := c.Compile(`G = t(X) %*% X
s = sum(G)`, nil)
	if err != nil {
		t.Fatal(err)
	}
	bb := prog.Blocks[0].(*runtime.BasicBlock)
	if !bb.RequiresRecompile || bb.Recompile == nil {
		t.Fatal("expected recompilation callback for unknown sizes")
	}
	// executing still produces correct results (recompile path)
	ctx := runtime.NewContext(cfg)
	ctx.Prog = prog
	x := matrix.RandUniform(50, 5, -1, 1, 1.0, 3)
	ctx.SetMatrix("X", x)
	if err := prog.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	s, err := ctx.GetScalar("s")
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.Sum(matrix.TSMM(x, 1), 1)
	if diff := s.Float64() - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("recompiled result = %v, want %v", s.Float64(), want)
	}
}

func TestCompileFunctionDefaults(t *testing.T) {
	res := compileAndRun(t, `
f = function(Double a, Double b = 4, Boolean flag = TRUE) return (Double out) {
  out = a + b
  if (!flag) {
    out = 0 - out
  }
}
x = f(1)
y = f(1, 2)
z = f(1, 2, flag=FALSE)
`, nil, []string{"x", "y", "z"})
	if res["x"].(*runtime.Scalar).Float64() != 5 {
		t.Errorf("x = %v", res["x"])
	}
	if res["y"].(*runtime.Scalar).Float64() != 3 {
		t.Errorf("y = %v", res["y"])
	}
	if res["z"].(*runtime.Scalar).Float64() != -3 {
		t.Errorf("z = %v", res["z"])
	}
}

func TestCompileNonLiteralDefaultRejected(t *testing.T) {
	c := newCompiler(nil)
	if _, err := c.Compile(`
f = function(Double a = sum(1)) return (Double y) { y = a }
x = f()
`, nil); err == nil {
		t.Error("expected error for non-literal default")
	}
}

func TestCompileNestedFunctionCallRejected(t *testing.T) {
	c := newCompiler(nil)
	if _, err := c.Compile(`x = sum(lmDS(X, y))`, nil); err == nil {
		t.Error("expected error for nested function call in expression")
	}
}

func TestCompileReadWritePrint(t *testing.T) {
	c := newCompiler(nil)
	prog, err := c.Compile(`
X = read("data.csv", format="csv")
print("rows: " + nrow(X))
write(X, "out.csv", format="csv")
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	bb := prog.Blocks[0].(*runtime.BasicBlock)
	var haveRead, havePrint, haveWrite bool
	for _, inst := range bb.Instructions {
		switch inst.Opcode() {
		case "read":
			haveRead = true
		case "print":
			havePrint = true
		case "write":
			haveWrite = true
		}
	}
	if !haveRead || !havePrint || !haveWrite {
		t.Errorf("missing instructions read=%v print=%v write=%v", haveRead, havePrint, haveWrite)
	}
}

func TestEstimateMemoryBudget(t *testing.T) {
	cfg := runtime.DefaultConfig()
	if EstimateMemoryBudget(cfg) != cfg.OperatorMemBudget {
		t.Error("explicit budget should be returned")
	}
	cfg.OperatorMemBudget = 0
	if EstimateMemoryBudget(cfg) <= 0 {
		t.Error("derived budget should be positive")
	}
}

func TestCompilerAttachesSchedulerDeps(t *testing.T) {
	c := newCompiler(nil)
	prog, err := c.Compile(`
A = X + 1
B = X * 2
C = A %*% B
print(sum(C))
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	bb, ok := prog.Blocks[0].(*runtime.BasicBlock)
	if !ok {
		t.Fatalf("block 0 is %T, want *runtime.BasicBlock", prog.Blocks[0])
	}
	if len(bb.Deps) != len(bb.Instructions) {
		t.Fatalf("Deps length %d != instruction count %d", len(bb.Deps), len(bb.Instructions))
	}
	// the compiler's exact edges must be consistent with (at least as strict
	// as required by) name-based analysis: scheduled execution must equal
	// sequential execution
	for i, ds := range bb.Deps {
		for _, d := range ds {
			if d < 0 || d >= i {
				t.Errorf("instruction %d has non-topological dep %d", i, d)
			}
		}
	}
	// the final print must be a barrier: it depends (transitively) on the
	// matmult producing C; verify a direct or indirect path exists
	last := len(bb.Instructions) - 1
	if bb.Instructions[last].Opcode() != "print" {
		t.Fatalf("last instruction is %s, want print", bb.Instructions[last].Opcode())
	}
	if len(bb.Deps[last]) == 0 {
		t.Errorf("print barrier has no dependencies")
	}
}

func TestCompilerMarksPredicateBlocksSequential(t *testing.T) {
	c := newCompiler(nil)
	prog, err := c.Compile(`
x = 5
if (x > 2) { y = 1 } else { y = 0 }
while (x > 10) { x = x - 1 }
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	var checked int
	for _, blk := range prog.Blocks {
		switch v := blk.(type) {
		case *runtime.IfBlock:
			if !v.Predicate.Sequential {
				t.Error("if predicate block must be sequential")
			}
			checked++
		case *runtime.WhileBlock:
			if !v.Predicate.Sequential {
				t.Error("while predicate block must be sequential")
			}
			checked++
		case *runtime.BasicBlock:
			if v.Sequential {
				t.Error("straight-line block must not be forced sequential")
			}
		}
	}
	if checked != 2 {
		t.Fatalf("checked %d control blocks, want 2", checked)
	}
}

func TestScheduledExecutionMatchesSequentialOnCompiledScript(t *testing.T) {
	script := `
A = X %*% t(X)
B = t(X) %*% X
C = X * 2
D = X + 1
E = C + D
s = sum(A) + sum(B) + sum(E)
`
	x := matrix.RandUniform(40, 8, -1, 1, 1.0, 11)
	run := func(interOp int) (*matrix.MatrixBlock, float64) {
		cfg := runtime.DefaultConfig()
		cfg.InterOpParallelism = interOp
		c := newCompiler(cfg)
		prog, err := c.Compile(script, nil)
		if err != nil {
			t.Fatal(err)
		}
		ctx := runtime.NewContext(cfg)
		ctx.Prog = prog
		ctx.SetMatrix("X", x)
		if err := prog.Execute(ctx); err != nil {
			t.Fatal(err)
		}
		e, err := ctx.GetMatrixBlock("E")
		if err != nil {
			t.Fatal(err)
		}
		s, err := ctx.GetScalar("s")
		if err != nil {
			t.Fatal(err)
		}
		return e, s.Float64()
	}
	eSeq, sSeq := run(1)
	ePar, sPar := run(4)
	if sSeq != sPar {
		t.Errorf("scalar result differs: sequential %v, scheduled %v", sSeq, sPar)
	}
	if !eSeq.Equals(ePar, 0) {
		t.Error("matrix result differs between sequential and scheduled execution")
	}
}
