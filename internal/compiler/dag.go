package compiler

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/systemds/systemds-go/internal/hops"
	"github.com/systemds/systemds-go/internal/instructions"
	"github.com/systemds/systemds-go/internal/lang"
	"github.com/systemds/systemds-go/internal/runtime"
	"github.com/systemds/systemds-go/internal/types"
)

// blockBuilder builds the HOP DAGs and instruction sequence of one basic
// block.
type blockBuilder struct {
	c      *Compiler
	dag    *hops.DAG
	varMap map[string]*hops.Hop
	instrs []runtime.Instruction
	// tracker accumulates per-instruction dependency lists (exact HOP
	// producer/consumer edges plus variable-level hazards) for the
	// inter-operator scheduler.
	tracker *runtime.DepTracker
	known   map[string]types.DataCharacteristics
	// unknownSizes records whether any lowered operator had an unknown memory
	// estimate (triggers dynamic recompilation when the distributed backend
	// is enabled).
	unknownSizes bool
	seedSeq      int64
}

// compileBasicBlock compiles straight-line statements into a basic block and
// attaches a dynamic-recompilation callback.
func (c *Compiler) compileBasicBlock(stmts []lang.Statement, known map[string]types.DataCharacteristics) (*runtime.BasicBlock, error) {
	bb, err := c.buildBlock(stmts, known)
	if err != nil {
		return nil, err
	}
	block := &runtime.BasicBlock{Instructions: bb.instrs, Deps: bb.tracker.Deps(), CleanupTemps: true}
	// dynamic recompilation against live sizes drives both exec-type
	// selection (distributed backend) and operator fusion: loop and function
	// bodies compile with unknown sizes, so without recompilation the fusion
	// matcher could never prove shapes inside the hottest blocks
	if (c.cfg.DistEnabled || !c.cfg.FusionDisabled || c.cfg.CompressionEnabled) && bb.unknownSizes {
		stmtsCopy := stmts
		block.RequiresRecompile = true
		// loop bodies recompile on every execution; memoize the lowered
		// instructions by the live size signature so stable-size iterations
		// (the common case) pay the HOP pipeline once, not per iteration.
		// The mutex guards the memo against concurrent parfor workers; the
		// cached instruction objects are immutable during execution, exactly
		// like a block's statically compiled instruction list.
		var mu sync.Mutex
		var memoKey string
		var memoInstrs []runtime.Instruction
		block.Recompile = func(ctx *runtime.Context) ([]runtime.Instruction, error) {
			liveKnown := map[string]types.DataCharacteristics{}
			names := ctx.Variables()
			sort.Strings(names)
			var key strings.Builder
			for _, name := range names {
				d, err := ctx.Get(name)
				if err != nil {
					continue
				}
				// local, blocked and federated matrix objects all expose
				// their characteristics without touching the data; blocked
				// variables in particular must keep known sizes here, or the
				// recompiled block falls back to eager per-op collects
				if mc, ok := d.(interface {
					DataCharacteristics() types.DataCharacteristics
				}); ok {
					dc := mc.DataCharacteristics()
					liveKnown[name] = dc
					fmt.Fprintf(&key, "%s=%s;", name, dc)
				}
			}
			mu.Lock()
			defer mu.Unlock()
			if memoInstrs != nil && memoKey == key.String() {
				return memoInstrs, nil
			}
			rebuilt, err := c.buildBlock(stmtsCopy, liveKnown)
			if err != nil {
				return nil, err
			}
			memoKey = key.String()
			memoInstrs = rebuilt.instrs
			return memoInstrs, nil
		}
	}
	return block, nil
}

// buildBlock runs the statement-to-DAG-to-instruction pipeline.
func (c *Compiler) buildBlock(stmts []lang.Statement, known map[string]types.DataCharacteristics) (*blockBuilder, error) {
	bb := &blockBuilder{
		c:       c,
		dag:     &hops.DAG{},
		varMap:  map[string]*hops.Hop{},
		tracker: runtime.NewDepTracker(),
		known:   known,
	}
	for _, s := range stmts {
		if err := bb.processStatement(s); err != nil {
			return nil, err
		}
	}
	if err := bb.flush(); err != nil {
		return nil, err
	}
	return bb, nil
}

func (bb *blockBuilder) processStatement(s lang.Statement) error {
	switch v := s.(type) {
	case *lang.AssignStmt:
		return bb.processAssign(v)
	case *lang.ExprStmt:
		return bb.processExprStmt(v)
	default:
		return fmt.Errorf("compiler: statement %T is not straight-line code", s)
	}
}

// processAssign handles plain, indexed and multi-assignments.
func (bb *blockBuilder) processAssign(s *lang.AssignStmt) error {
	if call, ok := s.Value.(*lang.CallExpr); ok {
		switch {
		case call.Name == "read":
			return bb.emitRead(s, call)
		case call.Name == "eigen":
			return bb.emitEigen(s, call)
		case call.Name == "transformencode":
			return bb.emitTransformEncode(s, call)
		case call.Name == "transformapply":
			return bb.emitTransformApply(s, call)
		case bb.c.isUserOrDMLFunction(call.Name):
			return bb.emitFCall(s, call)
		}
	}
	if len(s.Targets) > 1 {
		return fmt.Errorf("compiler: line %d: multi-assignment requires a function call", s.Line)
	}
	valueHop, err := bb.buildExpr(s.Value)
	if err != nil {
		return err
	}
	target := s.Targets[0]
	if !target.Indexed {
		bb.varMap[target.Name] = valueHop
		return nil
	}
	// left indexing: target[rl:ru, cl:cu] = value
	targetHop := bb.readVar(target.Name)
	rl, ru, cl, cu, err := bb.buildIndexBoundHops(target.Rows, target.Cols)
	if err != nil {
		return err
	}
	li := hops.NewHop(hops.KindLeftIndex, "leftIndex", targetHop, valueHop, rl, ru, cl, cu)
	li.DataType = types.Matrix
	bb.varMap[target.Name] = li
	return nil
}

// processExprStmt handles side-effecting statements (print, write, stop,
// assert) and bare expressions.
func (bb *blockBuilder) processExprStmt(s *lang.ExprStmt) error {
	call, ok := s.Value.(*lang.CallExpr)
	if !ok {
		// bare expression: evaluate into a throwaway temporary for effect-free
		// validation
		h, err := bb.buildExpr(s.Value)
		if err != nil {
			return err
		}
		bb.dag.Roots = append(bb.dag.Roots, hops.NewWrite(fmt.Sprintf("%sdiscard%d", runtime.TempPrefix, h.ID), h))
		return nil
	}
	switch call.Name {
	case "print":
		if len(call.Args) != 1 {
			return fmt.Errorf("compiler: line %d: print takes exactly one argument", s.Line)
		}
		op, err := bb.exprToOperand(call.Args[0].Value)
		if err != nil {
			return err
		}
		if err := bb.flush(); err != nil {
			return err
		}
		bb.emit(instructions.NewPrint(op))
		return nil
	case "stop":
		op := instructions.LitString("stop")
		if len(call.Args) > 0 {
			var err error
			op, err = bb.exprToOperand(call.Args[0].Value)
			if err != nil {
				return err
			}
		}
		if err := bb.flush(); err != nil {
			return err
		}
		bb.emit(instructions.NewStop(op))
		return nil
	case "assert":
		if len(call.Args) != 1 {
			return fmt.Errorf("compiler: line %d: assert takes exactly one argument", s.Line)
		}
		op, err := bb.exprToOperand(call.Args[0].Value)
		if err != nil {
			return err
		}
		if err := bb.flush(); err != nil {
			return err
		}
		bb.emit(instructions.NewAssert(op))
		return nil
	case "write":
		if len(call.Args) < 2 {
			return fmt.Errorf("compiler: line %d: write requires data and file arguments", s.Line)
		}
		dataOp, err := bb.exprToOperand(call.Args[0].Value)
		if err != nil {
			return err
		}
		pathOp, err := bb.exprToOperand(call.Args[1].Value)
		if err != nil {
			return err
		}
		formatOp := instructions.LitString("")
		for _, a := range call.Args[2:] {
			if a.Name == "format" {
				formatOp, err = bb.exprToOperand(a.Value)
				if err != nil {
					return err
				}
			}
		}
		if err := bb.flush(); err != nil {
			return err
		}
		bb.emit(instructions.NewWrite(dataOp, pathOp, formatOp))
		return nil
	default:
		if bb.c.isUserOrDMLFunction(call.Name) {
			// function call whose results are discarded
			return bb.emitFCall(&lang.AssignStmt{Targets: nil, Value: call, Line: s.Line}, call)
		}
		h, err := bb.buildExpr(call)
		if err != nil {
			return err
		}
		bb.dag.Roots = append(bb.dag.Roots, hops.NewWrite(fmt.Sprintf("%sdiscard%d", runtime.TempPrefix, h.ID), h))
		return nil
	}
}

// readVar returns the current in-block definition of a variable or a
// transient read.
func (bb *blockBuilder) readVar(name string) *hops.Hop {
	if h, ok := bb.varMap[name]; ok {
		return h
	}
	h := hops.NewRead(name, types.UnknownData)
	if dc, ok := bb.known[name]; ok {
		h.DC = dc
		h.DataType = types.Matrix
	}
	return h
}

// exprToOperand converts an expression to an instruction operand, creating a
// temporary DAG output for non-trivial expressions.
func (bb *blockBuilder) exprToOperand(e lang.Expr) (instructions.Operand, error) {
	switch v := e.(type) {
	case *lang.NumLit:
		if v.IsInt {
			return instructions.LitInt(int64(v.Value)), nil
		}
		return instructions.LitDouble(v.Value), nil
	case *lang.StrLit:
		return instructions.LitString(v.Value), nil
	case *lang.BoolLit:
		return instructions.LitBool(v.Value), nil
	case *lang.Ident:
		return instructions.Var(v.Name), nil
	default:
		h, err := bb.buildExpr(e)
		if err != nil {
			return instructions.Operand{}, err
		}
		tempName := fmt.Sprintf("%sf%d", runtime.TempPrefix, h.ID)
		bb.dag.Roots = append(bb.dag.Roots, hops.NewWrite(tempName, h))
		return instructions.Var(tempName), nil
	}
}

// buildIndexBoundHops converts index ranges to bound hops using 1-based
// inclusive bounds with 0 meaning "unbounded".
func (bb *blockBuilder) buildIndexBoundHops(rows, cols *lang.IndexRange) (rl, ru, cl, cu *hops.Hop, err error) {
	build := func(r *lang.IndexRange) (*hops.Hop, *hops.Hop, error) {
		if r == nil || r.All {
			return hops.NewLiteralNumber(0), hops.NewLiteralNumber(0), nil
		}
		lo, err := bb.buildExpr(r.Lower)
		if err != nil {
			return nil, nil, err
		}
		if r.Upper == nil {
			return lo, lo, nil
		}
		hi, err := bb.buildExpr(r.Upper)
		if err != nil {
			return nil, nil, err
		}
		return lo, hi, nil
	}
	rl, ru, err = build(rows)
	if err != nil {
		return
	}
	cl, cu, err = build(cols)
	return
}

// buildExpr converts an expression into a HOP.
func (bb *blockBuilder) buildExpr(e lang.Expr) (*hops.Hop, error) {
	switch v := e.(type) {
	case *lang.NumLit:
		return hops.NewLiteralNumber(v.Value), nil
	case *lang.StrLit:
		return hops.NewLiteralString(v.Value), nil
	case *lang.BoolLit:
		return hops.NewLiteralBool(v.Value), nil
	case *lang.Ident:
		return bb.readVar(v.Name), nil
	case *lang.UnaryExpr:
		in, err := bb.buildExpr(v.Operand)
		if err != nil {
			return nil, err
		}
		op := "uminus"
		if v.Op == "!" {
			op = "!"
		}
		h := hops.NewHop(hops.KindUnary, op, in)
		h.DataType = in.DataType
		h.ValueType = in.ValueType
		return h, nil
	case *lang.RangeExpr:
		from, err := bb.buildExpr(v.From)
		if err != nil {
			return nil, err
		}
		to, err := bb.buildExpr(v.To)
		if err != nil {
			return nil, err
		}
		h := hops.NewHop(hops.KindDataGen, "seq")
		h.DataType = types.Matrix
		h.Params = map[string]*hops.Hop{"from": from, "to": to, "incr": hops.NewLiteralNumber(1)}
		return h, nil
	case *lang.BinaryExpr:
		left, err := bb.buildExpr(v.Left)
		if err != nil {
			return nil, err
		}
		right, err := bb.buildExpr(v.Right)
		if err != nil {
			return nil, err
		}
		if v.Op == "%*%" {
			h := hops.NewHop(hops.KindMatMult, "ba+*", left, right)
			h.DataType = types.Matrix
			return h, nil
		}
		h := hops.NewHop(hops.KindBinary, v.Op, left, right)
		if left.DataType == types.Matrix || right.DataType == types.Matrix {
			h.DataType = types.Matrix
		} else {
			h.DataType = types.Scalar
		}
		return h, nil
	case *lang.IndexExpr:
		target, err := bb.buildExpr(v.Target)
		if err != nil {
			return nil, err
		}
		rl, ru, cl, cu, err := bb.buildIndexBoundHops(v.Rows, v.Cols)
		if err != nil {
			return nil, err
		}
		h := hops.NewHop(hops.KindIndexing, "rightIndex", target, rl, ru, cl, cu)
		h.DataType = types.Matrix
		return h, nil
	case *lang.CallExpr:
		return bb.buildCall(v)
	default:
		return nil, fmt.Errorf("compiler: unsupported expression %T", e)
	}
}
