package compiler

import (
	"fmt"
	"sync/atomic"

	"github.com/systemds/systemds-go/internal/hops"
	"github.com/systemds/systemds-go/internal/instructions"
	"github.com/systemds/systemds-go/internal/lang"
	"github.com/systemds/systemds-go/internal/runtime"
	"github.com/systemds/systemds-go/internal/types"
)

// nativeBuiltins lists built-in functions implemented directly as HOPs or
// dedicated instructions (as opposed to DML-bodied builtins).
var nativeBuiltins = map[string]bool{
	"t": true, "diag": true, "rev": true,
	"sum": true, "mean": true, "min": true, "max": true, "var": true, "sd": true,
	"trace": true, "nrow": true, "ncol": true, "length": true, "median": true,
	"colSums": true, "colMeans": true, "colMaxs": true, "colMins": true, "colVars": true, "colSds": true,
	"rowSums": true, "rowMeans": true, "rowMaxs": true, "rowMins": true, "rowIndexMax": true, "cumsum": true,
	"exp": true, "log": true, "sqrt": true, "abs": true, "round": true, "floor": true, "ceil": true,
	"sign": true, "sigmoid": true, "sin": true, "cos": true, "tan": true, "is.nan": true,
	"solve": true, "inv": true, "cholesky": true, "eigen": true,
	"cbind": true, "rbind": true,
	"rand": true, "matrix": true, "seq": true, "sample": true,
	"ifelse":    true,
	"as.scalar": true, "as.matrix": true, "as.double": true, "as.integer": true, "as.logical": true,
	"removeEmpty": true, "replace": true, "order": true, "table": true, "quantile": true,
	"print": true, "stop": true, "assert": true, "write": true, "read": true,
	"transformencode": true, "transformapply": true,
	"nnz": true, "compress": true,
}

// isNativeBuiltin reports whether the function name is a native builtin.
func isNativeBuiltin(name string) bool { return nativeBuiltins[name] }

var scalarAggBuiltins = map[string]bool{
	"sum": true, "mean": true, "var": true, "sd": true, "trace": true,
	"nrow": true, "ncol": true, "length": true, "median": true, "nnz": true,
}

var vectorAggBuiltins = map[string]bool{
	"colSums": true, "colMeans": true, "colMaxs": true, "colMins": true, "colVars": true, "colSds": true,
	"rowSums": true, "rowMeans": true, "rowMaxs": true, "rowMins": true, "rowIndexMax": true, "cumsum": true,
}

var unaryMathBuiltins = map[string]bool{
	"exp": true, "log": true, "sqrt": true, "abs": true, "round": true, "floor": true, "ceil": true,
	"sign": true, "sigmoid": true, "sin": true, "cos": true, "tan": true, "is.nan": true,
}

var seedCounter int64

// buildCall converts a native builtin function call into a HOP.
func (bb *blockBuilder) buildCall(call *lang.CallExpr) (*hops.Hop, error) {
	name := call.Name
	positional, named, err := bb.splitArgs(call)
	if err != nil {
		return nil, err
	}
	argHop := func(i int) (*hops.Hop, error) {
		if i >= len(positional) {
			return nil, fmt.Errorf("compiler: line %d: %s: missing argument %d", call.Line, name, i+1)
		}
		return positional[i], nil
	}
	switch {
	case name == "compress":
		// a compression decision site: planted by the compiler before loops
		// that re-read large operands, or called explicitly. The optional
		// second argument is the compiler's reuse estimate; whether the site
		// fires is decided by the planner (hops.ShouldCompress), and whether
		// the data actually compresses by the runtime's sample-based planner.
		in, err := argHop(0)
		if err != nil {
			return nil, err
		}
		h := hops.NewHop(hops.KindCompress, "compress", in)
		h.DataType = types.Matrix
		// an explicit compress(X) without a reuse estimate asserts the data
		// will be re-read: default to the assumed loop reuse so the site can
		// fire (the runtime sample planner still rejects incompressible data)
		h.CompressReuse = hops.CompressAssumedLoopTrips
		if len(positional) >= 2 && positional[1].IsLiteralNumber() {
			h.CompressReuse = int(positional[1].LitValue)
		}
		return h, nil
	case name == "t" || name == "diag" || name == "rev":
		in, err := argHop(0)
		if err != nil {
			return nil, err
		}
		op := name
		h := hops.NewHop(hops.KindReorg, op, in)
		h.DataType = types.Matrix
		return h, nil
	case scalarAggBuiltins[name] || vectorAggBuiltins[name]:
		in, err := argHop(0)
		if err != nil {
			return nil, err
		}
		h := hops.NewHop(hops.KindAggUnary, name, in)
		if scalarAggBuiltins[name] {
			h.DataType = types.Scalar
			h.ValueType = types.FP64
		} else {
			h.DataType = types.Matrix
		}
		return h, nil
	case (name == "min" || name == "max") && len(positional) == 1:
		in, err := argHop(0)
		if err != nil {
			return nil, err
		}
		h := hops.NewHop(hops.KindAggUnary, name, in)
		h.DataType = types.Scalar
		return h, nil
	case (name == "min" || name == "max") && len(positional) >= 2:
		h := hops.NewHop(hops.KindBinary, name, positional[0], positional[1])
		if positional[0].DataType == types.Matrix || positional[1].DataType == types.Matrix {
			h.DataType = types.Matrix
		} else {
			h.DataType = types.Scalar
		}
		return h, nil
	case unaryMathBuiltins[name]:
		in, err := argHop(0)
		if err != nil {
			return nil, err
		}
		h := hops.NewHop(hops.KindUnary, name, in)
		h.DataType = in.DataType
		if h.DataType == types.UnknownData {
			h.DataType = types.Matrix
		}
		return h, nil
	case name == "solve":
		a, err := argHop(0)
		if err != nil {
			return nil, err
		}
		b, err := argHop(1)
		if err != nil {
			return nil, err
		}
		h := hops.NewHop(hops.KindParamBuiltin, "solve", a, b)
		h.DataType = types.Matrix
		return h, nil
	case name == "inv" || name == "cholesky":
		a, err := argHop(0)
		if err != nil {
			return nil, err
		}
		h := hops.NewHop(hops.KindParamBuiltin, name, a)
		h.DataType = types.Matrix
		return h, nil
	case name == "cbind" || name == "rbind":
		if len(positional) == 0 {
			return nil, fmt.Errorf("compiler: line %d: %s requires arguments", call.Line, name)
		}
		h := hops.NewHop(hops.KindNary, name, positional...)
		h.DataType = types.Matrix
		return h, nil
	case name == "ifelse":
		if len(positional) != 3 {
			return nil, fmt.Errorf("compiler: line %d: ifelse requires three arguments", call.Line)
		}
		h := hops.NewHop(hops.KindTernary, "ifelse", positional...)
		h.DataType = types.Matrix
		if positional[0].DataType == types.Scalar && positional[1].DataType == types.Scalar && positional[2].DataType == types.Scalar {
			h.DataType = types.Scalar
		}
		return h, nil
	case name == "as.scalar":
		in, err := argHop(0)
		if err != nil {
			return nil, err
		}
		h := hops.NewHop(hops.KindCast, "castdts", in)
		h.DataType = types.Scalar
		return h, nil
	case name == "as.matrix":
		in, err := argHop(0)
		if err != nil {
			return nil, err
		}
		h := hops.NewHop(hops.KindCast, "castsdm", in)
		h.DataType = types.Matrix
		return h, nil
	case name == "as.double" || name == "as.integer" || name == "as.logical":
		in, err := argHop(0)
		if err != nil {
			return nil, err
		}
		h := hops.NewHop(hops.KindCast, name, in)
		h.DataType = types.Scalar
		return h, nil
	case name == "rand":
		return bb.buildRand(call, named)
	case name == "matrix":
		return bb.buildMatrixCtor(call, positional, named)
	case name == "seq":
		if len(positional) < 2 {
			return nil, fmt.Errorf("compiler: line %d: seq requires at least from and to", call.Line)
		}
		incr := hops.NewLiteralNumber(1)
		if len(positional) >= 3 {
			incr = positional[2]
		}
		h := hops.NewHop(hops.KindDataGen, "seq")
		h.DataType = types.Matrix
		h.Params = map[string]*hops.Hop{"from": positional[0], "to": positional[1], "incr": incr}
		return h, nil
	case name == "sample":
		if len(positional) < 2 {
			return nil, fmt.Errorf("compiler: line %d: sample requires population and size", call.Line)
		}
		replace := hops.NewLiteralBool(false)
		if len(positional) >= 3 {
			replace = positional[2]
		}
		h := hops.NewHop(hops.KindDataGen, "sample")
		h.DataType = types.Matrix
		h.Params = map[string]*hops.Hop{
			"population": positional[0], "size": positional[1], "replace": replace,
			"seed": hops.NewLiteralNumber(float64(atomic.AddInt64(&seedCounter, 1) + 1000)),
		}
		return h, nil
	case name == "removeEmpty" || name == "replace" || name == "order":
		h := hops.NewHop(hops.KindParamBuiltin, name)
		h.DataType = types.Matrix
		h.Params = map[string]*hops.Hop{}
		for k, v := range named {
			h.Params[k] = v
		}
		if len(positional) > 0 {
			h.Params["target"] = positional[0]
		}
		return h, nil
	case name == "table":
		if len(positional) < 2 {
			return nil, fmt.Errorf("compiler: line %d: table requires two vectors", call.Line)
		}
		h := hops.NewHop(hops.KindParamBuiltin, "table")
		h.DataType = types.Matrix
		h.Params = map[string]*hops.Hop{"a": positional[0], "b": positional[1]}
		return h, nil
	case name == "quantile":
		if len(positional) < 2 {
			return nil, fmt.Errorf("compiler: line %d: quantile requires data and p", call.Line)
		}
		h := hops.NewHop(hops.KindParamBuiltin, "quantile")
		h.DataType = types.Scalar
		h.Params = map[string]*hops.Hop{"target": positional[0], "p": positional[1]}
		return h, nil
	case name == "read" || name == "eigen" || name == "transformencode" || name == "transformapply":
		return nil, fmt.Errorf("compiler: line %d: %s must be used in a direct assignment", call.Line, name)
	case bb.c.isUserOrDMLFunction(name):
		return nil, fmt.Errorf("compiler: line %d: call to function %q must be assigned directly to variables (nested function calls are not supported)", call.Line, name)
	default:
		return nil, fmt.Errorf("compiler: line %d: unknown function %q", call.Line, name)
	}
}

// splitArgs builds hops for positional and named call arguments.
func (bb *blockBuilder) splitArgs(call *lang.CallExpr) ([]*hops.Hop, map[string]*hops.Hop, error) {
	var positional []*hops.Hop
	named := map[string]*hops.Hop{}
	for _, a := range call.Args {
		h, err := bb.buildExpr(a.Value)
		if err != nil {
			return nil, nil, err
		}
		if a.Name == "" {
			positional = append(positional, h)
		} else {
			named[a.Name] = h
		}
	}
	return positional, named, nil
}

// buildRand builds a rand() datagen HOP, assigning a deterministic seed when
// none is given so lineage fully determines the generated data.
func (bb *blockBuilder) buildRand(call *lang.CallExpr, named map[string]*hops.Hop) (*hops.Hop, error) {
	h := hops.NewHop(hops.KindDataGen, "rand")
	h.DataType = types.Matrix
	h.Params = map[string]*hops.Hop{
		"min": hops.NewLiteralNumber(0), "max": hops.NewLiteralNumber(1),
		"sparsity": hops.NewLiteralNumber(1), "pdf": hops.NewLiteralString("uniform"),
	}
	for k, v := range named {
		h.Params[k] = v
	}
	if _, ok := h.Params["rows"]; !ok {
		return nil, fmt.Errorf("compiler: line %d: rand requires rows and cols", call.Line)
	}
	if _, ok := h.Params["cols"]; !ok {
		return nil, fmt.Errorf("compiler: line %d: rand requires rows and cols", call.Line)
	}
	if _, ok := h.Params["seed"]; !ok {
		h.Params["seed"] = hops.NewLiteralNumber(float64(atomic.AddInt64(&seedCounter, 1)))
	}
	return h, nil
}

// buildMatrixCtor builds the matrix(value, rows, cols) constructor.
func (bb *blockBuilder) buildMatrixCtor(call *lang.CallExpr, positional []*hops.Hop, named map[string]*hops.Hop) (*hops.Hop, error) {
	h := hops.NewHop(hops.KindDataGen, "fill")
	h.DataType = types.Matrix
	h.Params = map[string]*hops.Hop{}
	if len(positional) > 0 {
		h.Params["value"] = positional[0]
	}
	if len(positional) > 1 {
		h.Params["rows"] = positional[1]
	}
	if len(positional) > 2 {
		h.Params["cols"] = positional[2]
	}
	for k, v := range named {
		h.Params[k] = v
	}
	for _, req := range []string{"value", "rows", "cols"} {
		if _, ok := h.Params[req]; !ok {
			return nil, fmt.Errorf("compiler: line %d: matrix() requires value, rows and cols", call.Line)
		}
	}
	return h, nil
}

// splitOperandArgs converts call arguments into instruction operands
// (used by direct-instruction emission for fcall, read, eigen, transform).
func (bb *blockBuilder) splitOperandArgs(call *lang.CallExpr) ([]instructions.Operand, map[string]instructions.Operand, error) {
	var positional []instructions.Operand
	named := map[string]instructions.Operand{}
	for _, a := range call.Args {
		op, err := bb.exprToOperand(a.Value)
		if err != nil {
			return nil, nil, err
		}
		if a.Name == "" {
			positional = append(positional, op)
		} else {
			named[a.Name] = op
		}
	}
	return positional, named, nil
}

// emitFCall compiles a call to a user-defined or DML-bodied function into an
// fcall instruction (flushing the current DAG first).
func (bb *blockBuilder) emitFCall(s *lang.AssignStmt, call *lang.CallExpr) error {
	if err := bb.c.ensureBuiltinCompiled(call.Name); err != nil {
		// user functions of the current script are compiled separately
		if _, ok := bb.c.prog.Functions[call.Name]; !ok {
			if _, isUser := bb.c.source.Functions[call.Name]; !isUser {
				return err
			}
		}
	}
	positional, named, err := bb.splitOperandArgs(call)
	if err != nil {
		return err
	}
	// indexed targets write through a temporary
	type indexedTarget struct {
		target         lang.AssignTarget
		temp           string
		rl, ru, cl, cu instructions.Operand
	}
	var targets []string
	var indexed []indexedTarget
	for ti, t := range s.Targets {
		if !t.Indexed {
			targets = append(targets, t.Name)
			continue
		}
		temp := fmt.Sprintf("%scall%d_%d", runtime.TempPrefix, call.Line, ti)
		rl, ru, cl, cu, err := bb.indexBoundOperands(t.Rows, t.Cols)
		if err != nil {
			return err
		}
		targets = append(targets, temp)
		indexed = append(indexed, indexedTarget{target: t, temp: temp, rl: rl, ru: ru, cl: cl, cu: cu})
	}
	if err := bb.flush(); err != nil {
		return err
	}
	bb.emit(instructions.NewFCall(call.Name, positional, named, targets))
	for _, it := range indexed {
		bb.emit(instructions.NewLeftIndex(
			it.target.Name, instructions.Var(it.target.Name), instructions.Var(it.temp),
			it.rl, it.ru, it.cl, it.cu))
	}
	for _, t := range s.Targets {
		delete(bb.varMap, t.Name)
	}
	return nil
}

// indexBoundOperands converts index ranges into instruction operands with the
// 1-based/0-unbounded convention.
func (bb *blockBuilder) indexBoundOperands(rows, cols *lang.IndexRange) (rl, ru, cl, cu instructions.Operand, err error) {
	build := func(r *lang.IndexRange) (instructions.Operand, instructions.Operand, error) {
		if r == nil || r.All {
			return instructions.LitInt(0), instructions.LitInt(0), nil
		}
		lo, err := bb.exprToOperand(r.Lower)
		if err != nil {
			return instructions.Operand{}, instructions.Operand{}, err
		}
		if r.Upper == nil {
			return lo, lo, nil
		}
		hi, err := bb.exprToOperand(r.Upper)
		if err != nil {
			return instructions.Operand{}, instructions.Operand{}, err
		}
		return lo, hi, nil
	}
	rl, ru, err = build(rows)
	if err != nil {
		return
	}
	cl, cu, err = build(cols)
	return
}

// emitRead compiles X = read("file", format="csv", header=FALSE,
// data_type="matrix").
func (bb *blockBuilder) emitRead(s *lang.AssignStmt, call *lang.CallExpr) error {
	if len(s.Targets) != 1 || s.Targets[0].Indexed {
		return fmt.Errorf("compiler: line %d: read must be assigned to a single variable", s.Line)
	}
	positional, named, err := bb.splitOperandArgs(call)
	if err != nil {
		return err
	}
	if len(positional) == 0 {
		return fmt.Errorf("compiler: line %d: read requires a file path", s.Line)
	}
	format := instructions.LitString("")
	dataKind := instructions.LitString("matrix")
	header := instructions.LitBool(false)
	if op, ok := named["format"]; ok {
		format = op
	}
	if op, ok := named["data_type"]; ok {
		dataKind = op
	}
	if op, ok := named["header"]; ok {
		header = op
	}
	if err := bb.flush(); err != nil {
		return err
	}
	bb.emit(instructions.NewRead(s.Targets[0].Name, positional[0], format, dataKind, header))
	delete(bb.varMap, s.Targets[0].Name)
	return nil
}

// emitEigen compiles [values, vectors] = eigen(A).
func (bb *blockBuilder) emitEigen(s *lang.AssignStmt, call *lang.CallExpr) error {
	if len(s.Targets) != 2 {
		return fmt.Errorf("compiler: line %d: eigen returns two values ([values, vectors])", s.Line)
	}
	positional, _, err := bb.splitOperandArgs(call)
	if err != nil {
		return err
	}
	if len(positional) != 1 {
		return fmt.Errorf("compiler: line %d: eigen takes one matrix argument", s.Line)
	}
	if err := bb.flush(); err != nil {
		return err
	}
	bb.emit(instructions.NewEigen(s.Targets[0].Name, s.Targets[1].Name, positional[0]))
	delete(bb.varMap, s.Targets[0].Name)
	delete(bb.varMap, s.Targets[1].Name)
	return nil
}

// emitTransformEncode compiles [X, M] = transformencode(target=F, spec=s).
func (bb *blockBuilder) emitTransformEncode(s *lang.AssignStmt, call *lang.CallExpr) error {
	if len(s.Targets) != 2 {
		return fmt.Errorf("compiler: line %d: transformencode returns [X, Meta]", s.Line)
	}
	positional, named, err := bb.splitOperandArgs(call)
	if err != nil {
		return err
	}
	target, ok := named["target"]
	if !ok && len(positional) > 0 {
		target = positional[0]
	} else if !ok {
		return fmt.Errorf("compiler: line %d: transformencode requires target", s.Line)
	}
	spec, ok := named["spec"]
	if !ok && len(positional) > 1 {
		spec = positional[1]
	} else if !ok {
		return fmt.Errorf("compiler: line %d: transformencode requires spec", s.Line)
	}
	if err := bb.flush(); err != nil {
		return err
	}
	bb.emit(instructions.NewTransformEncode(s.Targets[0].Name, s.Targets[1].Name, target, spec))
	delete(bb.varMap, s.Targets[0].Name)
	delete(bb.varMap, s.Targets[1].Name)
	return nil
}

// emitTransformApply compiles X = transformapply(target=F, meta=M).
func (bb *blockBuilder) emitTransformApply(s *lang.AssignStmt, call *lang.CallExpr) error {
	if len(s.Targets) != 1 {
		return fmt.Errorf("compiler: line %d: transformapply returns a single matrix", s.Line)
	}
	positional, named, err := bb.splitOperandArgs(call)
	if err != nil {
		return err
	}
	target, ok := named["target"]
	if !ok && len(positional) > 0 {
		target = positional[0]
	} else if !ok {
		return fmt.Errorf("compiler: line %d: transformapply requires target", s.Line)
	}
	meta, ok := named["meta"]
	if !ok && len(positional) > 1 {
		meta = positional[1]
	} else if !ok {
		return fmt.Errorf("compiler: line %d: transformapply requires meta", s.Line)
	}
	if err := bb.flush(); err != nil {
		return err
	}
	bb.emit(instructions.NewTransformApply(s.Targets[0].Name, target, meta))
	delete(bb.varMap, s.Targets[0].Name)
	return nil
}
