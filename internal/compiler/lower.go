package compiler

import (
	"fmt"
	"sort"

	"github.com/systemds/systemds-go/internal/hops"
	"github.com/systemds/systemds-go/internal/instructions"
	"github.com/systemds/systemds-go/internal/runtime"
	"github.com/systemds/systemds-go/internal/types"
)

// flush finalizes the current HOP DAG: transient writes are added for all
// in-block variable definitions, the static rewrites run, sizes and memory
// estimates are propagated, execution types are selected, and the DAG is
// lowered into runtime instructions. The variable map and DAG are then reset
// for the next DAG of the block.
func (bb *blockBuilder) flush() error {
	// add transient writes for assigned variables (sorted for determinism)
	names := make([]string, 0, len(bb.varMap))
	for name := range bb.varMap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := bb.varMap[name]
		// skip self-assignments of unchanged transient reads
		if h.Kind == hops.KindRead && h.Name == name {
			continue
		}
		bb.dag.Roots = append(bb.dag.Roots, hops.NewWrite(name, h))
	}
	if len(bb.dag.Roots) == 0 {
		bb.varMap = map[string]*hops.Hop{}
		bb.dag = &hops.DAG{}
		return nil
	}
	hops.Rewrite(bb.dag)
	hops.PropagateSizes(bb.dag, bb.known)
	params := hops.PlannerParams{
		MemBudget:          bb.c.cfg.OperatorMemBudget,
		DistEnabled:        bb.c.cfg.DistEnabled,
		Blocksize:          bb.c.cfg.DistBlocksize,
		CompressionEnabled: bb.c.cfg.CompressionEnabled,
		Calib:              bb.c.cfg.Calib,
		Profile:            bb.c.cfg.Profile,
	}
	// the fusion pattern matcher runs after rewrites/CSE (so shared
	// subexpressions are single hops and consumer counts are exact) and
	// before exec-type selection (fusion is gated on the planner's own
	// predicate over the same params, so it never steals work from the
	// blocked backend); sizes are re-propagated because fusion rewrites
	// producer/consumer edges
	if !bb.c.cfg.FusionDisabled {
		hops.FuseOperators(bb.dag, params)
		hops.PropagateSizes(bb.dag, bb.known)
	}
	// mark transient reads of variables compressed by an earlier DAG, so the
	// planner prices their compressed bytes and EXPLAIN tags the CLA kernels
	for _, h := range bb.dag.Nodes() {
		if h.Kind == hops.KindRead && bb.c.compressedVars[h.Name] {
			h.CompressedRead = true
		}
	}
	// the physical planner: one cost-based pass assigns execution types and
	// matmult strategies from the same estimates the fusion gate consumed
	hops.Plan(bb.dag, params)
	hops.PropagateBlockedOutputs(bb.dag)
	// update the cross-DAG compressed-variable tracking from this DAG's
	// writes: a fired compression site marks its variable, any other producer
	// clears it (unwritten variables keep their prior state)
	for _, r := range bb.dag.Roots {
		if r.Kind == hops.KindWrite && len(r.Inputs) == 1 {
			if hops.CompressedOutput(r.Inputs[0]) {
				bb.c.compressedVars[r.Name] = true
			} else {
				delete(bb.c.compressedVars, r.Name)
			}
		}
	}
	if bb.c.explain != nil {
		bb.c.explain.WriteString(bb.dag.ExplainPlanWith(bb.c.annotate))
		bb.c.explain.WriteByte('\n')
	}
	instrs, hopDeps, unknown, err := lowerDAG(bb.dag)
	if err != nil {
		return err
	}
	if unknown {
		bb.unknownSizes = true
	}
	// record each instruction with its exact producer/consumer edges from the
	// HOP DAG (shifted to block-global indices); the tracker adds the
	// variable-level hazards crossing DAG boundaries
	base := len(bb.instrs)
	for k, inst := range instrs {
		exact := make([]int, len(hopDeps[k]))
		for j, d := range hopDeps[k] {
			exact[j] = base + d
		}
		bb.tracker.Add(inst, exact, false)
	}
	bb.instrs = append(bb.instrs, instrs...)
	bb.varMap = map[string]*hops.Hop{}
	bb.dag = &hops.DAG{}
	return nil
}

// emit appends a directly-emitted (non-DAG) instruction, recording it in the
// dependency tracker. Whether the instruction is an ordering barrier comes
// from the shared runtime.SchedulerBarrierOpcodes set, so compiler-built
// blocks and the name-based recompile fallback order side effects
// identically — with one deliberate exception: `read` is pure from the
// block's perspective (its ordering against file `write`s is preserved by
// write being a barrier), so it is ordered by variable dependencies alone.
func (bb *blockBuilder) emit(inst runtime.Instruction) {
	op := inst.Opcode()
	bb.tracker.Add(inst, nil, runtime.SchedulerBarrierOpcodes[op] && op != "read")
	bb.instrs = append(bb.instrs, inst)
}

// tempNameOf returns the runtime temporary variable name of an intermediate
// HOP output.
func tempNameOf(h *hops.Hop) string {
	return fmt.Sprintf("%s%d", runtime.TempPrefix, h.ID)
}

// operandOf converts a HOP into the instruction operand referencing its
// runtime value.
func operandOf(h *hops.Hop) instructions.Operand {
	switch h.Kind {
	case hops.KindLiteral:
		switch {
		case h.LitIsStr:
			return instructions.LitString(h.LitString)
		case h.LitIsBool:
			return instructions.LitBool(h.LitBool)
		default:
			return instructions.LitDouble(h.LitValue)
		}
	case hops.KindRead:
		return instructions.Var(h.Name)
	default:
		return instructions.Var(tempNameOf(h))
	}
}

// lowerDAG lowers a rewritten, size-annotated DAG into instructions in
// topological order. It returns, per instruction, the indices of the
// instructions producing its HOP inputs (the DAG's producer/consumer edges,
// preserved for the inter-operator scheduler) and reports whether any
// operator had an unknown memory estimate (input for the
// dynamic-recompilation decision).
//
// Instruction order: all compute instructions first (they read the values the
// variables had at block entry), then the transient writes. Writes whose
// source is a plain variable reference (alias assignments) are emitted before
// writes of computed values, so an assignment like "y = x" observes the old
// value of x even when x is redefined in the same DAG.
func lowerDAG(dag *hops.DAG) ([]runtime.Instruction, [][]int, bool, error) {
	type emitted struct {
		inst runtime.Instruction
		hop  *hops.Hop
	}
	var computes, aliasWrites, valueWrites []emitted
	unknown := false
	for _, h := range dag.Nodes() {
		// recompile exactly when a size the planner's decisions depend on is
		// still unknown (cost.go's predicate)
		if hops.PlanRelevantUnknown(h) {
			unknown = true
		}
		inst, err := lowerHop(h)
		if err != nil {
			return nil, nil, false, err
		}
		if inst == nil {
			continue
		}
		switch {
		case h.Kind != hops.KindWrite:
			computes = append(computes, emitted{inst, h})
		case len(h.Inputs) == 1 && h.Inputs[0].Kind == hops.KindRead:
			aliasWrites = append(aliasWrites, emitted{inst, h})
		default:
			valueWrites = append(valueWrites, emitted{inst, h})
		}
	}
	all := append(computes, aliasWrites...)
	all = append(all, valueWrites...)
	// producer index per hop id (only non-write hops produce values consumed
	// by other instructions; named-variable flow across writes is tracked by
	// the dependency tracker)
	producer := map[int64]int{}
	for i, e := range all {
		if e.hop.Kind != hops.KindWrite {
			producer[e.hop.ID] = i
		}
	}
	instrs := make([]runtime.Instruction, len(all))
	deps := make([][]int, len(all))
	for i, e := range all {
		instrs[i] = e.inst
		var ds []int
		for _, in := range e.hop.Inputs {
			if j, ok := producer[in.ID]; ok && j != i {
				ds = append(ds, j)
			}
		}
		for _, p := range e.hop.Params {
			if j, ok := producer[p.ID]; ok && j != i {
				ds = append(ds, j)
			}
		}
		sort.Ints(ds)
		deps[i] = ds
	}
	return instrs, deps, unknown, nil
}

// estBytesOf returns the planner's estimated output bytes of a HOP, or -1
// when the estimate was unknown at compile time; instructions surface it next
// to the actual output bytes in the plan records.
func estBytesOf(h *hops.Hop) int64 {
	if h.CostEst.Known {
		return h.CostEst.OutputBytes
	}
	return -1
}

// lowerHop lowers one HOP into an instruction (or nil for reads/literals).
func lowerHop(h *hops.Hop) (runtime.Instruction, error) {
	out := tempNameOf(h)
	in := func(i int) instructions.Operand { return operandOf(h.Inputs[i]) }
	switch h.Kind {
	case hops.KindRead, hops.KindLiteral:
		return nil, nil
	case hops.KindWrite:
		src := operandOf(h.Inputs[0])
		return instructions.NewAssign(h.Name, src), nil
	case hops.KindBinary:
		inst := instructions.NewBinary(h.Op, out, in(0), in(1))
		inst.ExecType = h.ExecType
		inst.BlockedOut = h.BlockedOutput
		inst.EstBytes = estBytesOf(h)
		return inst, nil
	case hops.KindUnary:
		inst := instructions.NewUnary(h.Op, out, in(0))
		inst.ExecType = h.ExecType
		inst.BlockedOut = h.BlockedOutput
		inst.EstBytes = estBytesOf(h)
		return inst, nil
	case hops.KindAggUnary:
		op := h.Op
		if op == "nnz" {
			op = "sum" // nnz lowered as sum over (X != 0) is handled upstream; direct fallback
		}
		inst := instructions.NewAgg(op, out, in(0))
		inst.ExecType = h.ExecType
		inst.BlockedOut = h.BlockedOutput
		inst.EstBytes = estBytesOf(h)
		return inst, nil
	case hops.KindMatMult:
		inst := instructions.NewMatMult(out, in(0), in(1))
		inst.ExecType = h.ExecType
		inst.BlockedOut = h.BlockedOutput
		inst.Method = h.MMPlan
		inst.EstBytes = estBytesOf(h)
		return inst, nil
	case hops.KindCompress:
		if !h.CompressFire {
			// the planner declined the site: lower to a no-op alias so the
			// variable flow stays intact at zero runtime cost
			return instructions.NewAssign(out, operandOf(h.Inputs[0])), nil
		}
		inst := instructions.NewCompress(out, operandOf(h.Inputs[0]))
		inst.EstBytes = estBytesOf(h)
		return inst, nil
	case hops.KindTSMM:
		inst := instructions.NewTSMM(out, in(0))
		inst.ExecType = h.ExecType
		inst.EstBytes = estBytesOf(h)
		return inst, nil
	case hops.KindMMChain:
		if len(h.Inputs) == 3 {
			return instructions.NewMMChain(out, in(0), in(1), in(2), true), nil
		}
		return instructions.NewMMChain(out, in(0), in(1), instructions.Operand{}, false), nil
	case hops.KindFusedAgg:
		if h.FusedAgg == nil {
			return nil, fmt.Errorf("compiler: fused aggregate %s without a plan", h.Op)
		}
		args := make([]instructions.Operand, len(h.Inputs))
		for i := range h.Inputs {
			args[i] = operandOf(h.Inputs[i])
		}
		return instructions.NewFusedAgg(h.FusedAgg.Kind, out, h.FusedAgg.Prog, args), nil
	case hops.KindReorg:
		var opcode string
		switch h.Op {
		case "t":
			opcode = "r'"
		case "diag":
			opcode = "rdiag"
		case "rev":
			opcode = "rev"
		default:
			return nil, fmt.Errorf("compiler: unknown reorg op %q", h.Op)
		}
		inst := instructions.NewReorg(opcode, out, in(0))
		inst.ExecType = h.ExecType
		inst.BlockedOut = h.BlockedOutput
		inst.EstBytes = estBytesOf(h)
		return inst, nil
	case hops.KindIndexing:
		return instructions.NewRightIndex(out, in(0), in(1), in(2), in(3), in(4)), nil
	case hops.KindLeftIndex:
		return instructions.NewLeftIndex(out, in(0), in(1), in(2), in(3), in(4), in(5)), nil
	case hops.KindNary:
		ops := make([]instructions.Operand, len(h.Inputs))
		for i := range h.Inputs {
			ops[i] = operandOf(h.Inputs[i])
		}
		inst := instructions.NewNary(h.Op, out, ops...)
		inst.ExecType = h.ExecType
		inst.BlockedOut = h.BlockedOutput
		inst.EstBytes = estBytesOf(h)
		return inst, nil
	case hops.KindTernary:
		return instructions.NewTernary(out, in(0), in(1), in(2)), nil
	case hops.KindCast:
		return instructions.NewCast(h.Op, out, in(0)), nil
	case hops.KindDataGen:
		return lowerDataGen(h, out)
	case hops.KindParamBuiltin:
		return lowerParamBuiltin(h, out)
	default:
		return nil, fmt.Errorf("compiler: cannot lower HOP kind %s (op %s)", h.Kind, h.Op)
	}
}

func lowerDataGen(h *hops.Hop, out string) (runtime.Instruction, error) {
	p := func(key string, def instructions.Operand) instructions.Operand {
		if v, ok := h.Params[key]; ok {
			return operandOf(v)
		}
		return def
	}
	switch h.Op {
	case "rand":
		inst := instructions.NewRand(out,
			p("rows", instructions.LitInt(1)), p("cols", instructions.LitInt(1)),
			p("min", instructions.LitDouble(0)), p("max", instructions.LitDouble(1)),
			p("sparsity", instructions.LitDouble(1)), p("pdf", instructions.LitString("uniform")),
			p("seed", instructions.LitInt(42)))
		inst.ExecType = h.ExecType
		inst.BlockedOut = h.BlockedOutput
		inst.EstBytes = estBytesOf(h)
		return inst, nil
	case "seq":
		inst := instructions.NewSeq(out,
			p("from", instructions.LitDouble(1)), p("to", instructions.LitDouble(1)),
			p("incr", instructions.LitDouble(1)))
		inst.ExecType = h.ExecType
		inst.BlockedOut = h.BlockedOutput
		inst.EstBytes = estBytesOf(h)
		return inst, nil
	case "fill":
		return instructions.NewFill(out,
			p("value", instructions.LitDouble(0)),
			p("rows", instructions.LitInt(1)), p("cols", instructions.LitInt(1))), nil
	case "sample":
		return instructions.NewSample(out,
			p("population", instructions.LitInt(1)), p("size", instructions.LitInt(1)),
			p("replace", instructions.LitBool(false)), p("seed", instructions.LitInt(7))), nil
	default:
		return nil, fmt.Errorf("compiler: unknown datagen op %q", h.Op)
	}
}

func lowerParamBuiltin(h *hops.Hop, out string) (runtime.Instruction, error) {
	switch h.Op {
	case "solve":
		return instructions.NewSolve(out, operandOf(h.Inputs[0]), operandOf(h.Inputs[1])), nil
	case "inv":
		return instructions.NewInverse(out, operandOf(h.Inputs[0])), nil
	case "cholesky":
		return instructions.NewCholesky(out, operandOf(h.Inputs[0])), nil
	default:
		params := map[string]instructions.Operand{}
		for k, v := range h.Params {
			params[k] = operandOf(v)
		}
		return instructions.NewParamBuiltin(h.Op, out, params), nil
	}
}

// EstimateMemoryBudget derives a default per-operator memory budget from the
// configured buffer pool budget (placeholder for resource-aware compilation).
func EstimateMemoryBudget(cfg *runtime.Config) int64 {
	if cfg.OperatorMemBudget > 0 {
		return cfg.OperatorMemBudget
	}
	return int64(types.DefaultBlocksize) * int64(types.DefaultBlocksize) * 8 * 4
}
