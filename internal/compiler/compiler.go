// Package compiler translates parsed DML programs into executable runtime
// programs (Section 2.3 of the paper): statements are grouped into statement
// blocks delineated by control flow, each basic block is compiled into a DAG
// of high-level operators, rewritten (CSE, constant folding, fused
// operators), annotated with size propagation and memory estimates, and
// lowered into runtime instructions with execution-type selection
// (CP vs. the blocked distributed backend). Control-flow statements become
// if/while/for/parfor program blocks with compiled predicates, user-defined
// and DML-bodied builtin functions become function blocks, and blocks with
// unknown sizes receive dynamic-recompilation callbacks.
package compiler

import (
	"fmt"
	"sort"
	"strings"

	"github.com/systemds/systemds-go/internal/hops"
	"github.com/systemds/systemds-go/internal/lang"
	"github.com/systemds/systemds-go/internal/obs"
	"github.com/systemds/systemds-go/internal/runtime"
	"github.com/systemds/systemds-go/internal/types"
)

// BuiltinRegistry resolves DML-bodied builtin functions by name to their DML
// source (the registration mechanism of Section 2.2).
type BuiltinRegistry interface {
	Source(name string) (string, bool)
	Names() []string
}

// Compiler compiles DML programs against a configuration and a builtin
// registry.
type Compiler struct {
	cfg      *runtime.Config
	registry BuiltinRegistry
	prog     *runtime.Program
	source   *lang.Program
	// compiling guards against recursive builtin compilation cycles
	compiling map[string]bool
	tempSeq   int
	predSeq   int
	// explain, when non-nil, accumulates the planner's annotated DAG listing
	// for every compiled basic block (the EXPLAIN hops-with-costs output).
	explain *strings.Builder
	// annotate, when non-nil, appends extra per-HOP text to each EXPLAIN line
	// (measured runtime metrics in ExplainPlanAnnotated).
	annotate func(*hops.Hop) string
	// compressedVars tracks, across DAG and block boundaries, which variables
	// hold a compressed matrix at runtime: set when a fired compression site
	// (or a transpose view of one) writes the variable, cleared on any other
	// reassignment. Transient reads of tracked variables are marked
	// CompressedRead so pricing and EXPLAIN see the representation.
	compressedVars map[string]bool
}

// New creates a compiler.
func New(cfg *runtime.Config, registry BuiltinRegistry) *Compiler {
	if cfg == nil {
		cfg = runtime.DefaultConfig()
	}
	return &Compiler{cfg: cfg, registry: registry, compiling: map[string]bool{},
		compressedVars: map[string]bool{}}
}

// Compile compiles a DML script into a runtime program. knownInputs provides
// the data characteristics of script inputs bound through the API, enabling
// size propagation from the start.
func (c *Compiler) Compile(src string, knownInputs map[string]types.DataCharacteristics) (*runtime.Program, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := lang.Validate(prog, c.IsCallable(prog)); err != nil {
		return nil, err
	}
	return c.CompileProgram(prog, knownInputs)
}

// ExplainPlan compiles a DML script and returns the cost-annotated physical
// plan of every basic block: per HOP the dimensions, memory estimate, the
// plan chosen by the cost-based planner (CP, DIST, or DIST:<strategy> for
// matmults), and the modeled compute/shuffle costs. Blocks compiled with
// unknown sizes show their initial conservative plan; dynamic recompilation
// re-plans them at runtime against live sizes.
func (c *Compiler) ExplainPlan(src string, knownInputs map[string]types.DataCharacteristics) (string, error) {
	c.explain = &strings.Builder{}
	defer func() { c.explain = nil }()
	if _, err := c.Compile(src, knownInputs); err != nil {
		return "", err
	}
	return c.explain.String(), nil
}

// ExplainPlanAnnotated renders the plan like ExplainPlan and joins measured
// per-opcode runtime metrics from a traced run (keyed by instruction opcode)
// onto each operator line: execution count, wall time, self time, and bytes
// produced. Operators whose opcode never executed print unannotated — e.g.
// blocks the planner compiled but control flow skipped.
func (c *Compiler) ExplainPlanAnnotated(src string, knownInputs map[string]types.DataCharacteristics,
	measured map[string]obs.OpMetric) (string, error) {
	c.annotate = func(h *hops.Hop) string {
		op := measuredOpcode(h)
		if op == "" {
			return ""
		}
		m, ok := measured[op]
		if !ok {
			return ""
		}
		return fmt.Sprintf(" measured: n=%d wall=%.3fms self=%.3fms bytes=%d",
			m.Count, float64(m.WallNs)/1e6, float64(m.SelfNs)/1e6, m.Bytes)
	}
	defer func() { c.annotate = nil }()
	return c.ExplainPlan(src, knownInputs)
}

// measuredOpcode maps a HOP to the opcode of the instruction lowerHop emits
// for it, which is the key instruction spans are recorded under. Returns ""
// for HOPs that lower to no instruction.
func measuredOpcode(h *hops.Hop) string {
	switch h.Kind {
	case hops.KindRead, hops.KindLiteral:
		return ""
	case hops.KindWrite:
		return "assignvar"
	case hops.KindMatMult:
		return "ba+*"
	case hops.KindTSMM:
		return "tsmm"
	case hops.KindCompress:
		if !h.CompressFire {
			return "assignvar" // declined site lowers to a no-op alias
		}
		return "compress"
	case hops.KindMMChain:
		return "mmchain"
	case hops.KindFusedAgg:
		if h.FusedAgg == nil {
			return ""
		}
		return "fagg_" + h.FusedAgg.Kind.String()
	case hops.KindReorg:
		switch h.Op {
		case "t":
			return "r'"
		case "diag":
			return "rdiag"
		}
		return h.Op
	case hops.KindIndexing:
		return "rightIndex"
	case hops.KindLeftIndex:
		return "leftIndex"
	case hops.KindAggUnary:
		if h.Op == "nnz" {
			return "sum"
		}
		return h.Op
	default:
		// binary, unary, nary, ternary, cast, datagen, and parameterized
		// builtins all carry the HOP op name through as the opcode
		return h.Op
	}
}

// IsCallable returns a predicate that reports whether a function name can be
// resolved: a user function of the program, a native builtin, or a DML-bodied
// builtin from the registry.
func (c *Compiler) IsCallable(prog *lang.Program) func(string) bool {
	return func(name string) bool {
		if prog != nil {
			if _, ok := prog.Functions[name]; ok {
				return true
			}
		}
		if isNativeBuiltin(name) {
			return true
		}
		if c.registry != nil {
			if _, ok := c.registry.Source(name); ok {
				return true
			}
		}
		return false
	}
}

// CompileProgram compiles a parsed program.
func (c *Compiler) CompileProgram(prog *lang.Program, knownInputs map[string]types.DataCharacteristics) (*runtime.Program, error) {
	c.prog = &runtime.Program{Functions: map[string]*runtime.FunctionBlock{}}
	c.source = prog
	// compile user-defined functions
	names := make([]string, 0, len(prog.Functions))
	for name := range prog.Functions {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fb, err := c.compileFunction(prog.Functions[name])
		if err != nil {
			return nil, err
		}
		c.prog.Functions[name] = fb
	}
	blocks, err := c.compileStatements(prog.Body, knownInputs)
	if err != nil {
		return nil, err
	}
	c.prog.Blocks = blocks
	return c.prog, nil
}

// compileFunction compiles one function definition into a function block.
func (c *Compiler) compileFunction(fn *lang.FunctionDef) (*runtime.FunctionBlock, error) {
	fb := &runtime.FunctionBlock{Name: fn.Name}
	for _, p := range fn.Params {
		fp := runtime.FunctionParam{Name: p.Name}
		if p.Default != nil {
			d, err := literalToData(p.Default)
			if err != nil {
				return nil, fmt.Errorf("compiler: function %s: default for %s: %w", fn.Name, p.Name, err)
			}
			fp.Default = d
		}
		fb.Params = append(fb.Params, fp)
	}
	for _, r := range fn.Returns {
		fb.Returns = append(fb.Returns, r.Name)
	}
	body, err := c.compileStatements(fn.Body, nil)
	if err != nil {
		return nil, fmt.Errorf("compiler: function %s: %w", fn.Name, err)
	}
	fb.Body = body
	return fb, nil
}

// literalToData converts a literal default-value expression to runtime data.
func literalToData(e lang.Expr) (runtime.Data, error) {
	switch v := e.(type) {
	case *lang.NumLit:
		if v.IsInt {
			return runtime.NewInt(int64(v.Value)), nil
		}
		return runtime.NewDouble(v.Value), nil
	case *lang.StrLit:
		return runtime.NewString(v.Value), nil
	case *lang.BoolLit:
		return runtime.NewBool(v.Value), nil
	case *lang.UnaryExpr:
		if inner, ok := v.Operand.(*lang.NumLit); ok && v.Op == "-" {
			return runtime.NewDouble(-inner.Value), nil
		}
	}
	return nil, fmt.Errorf("default values must be literals, got %T", e)
}

// ensureBuiltinCompiled resolves a DML-bodied builtin: its script is parsed
// and its function definitions are added to the program's function table.
func (c *Compiler) ensureBuiltinCompiled(name string) error {
	if _, ok := c.prog.Functions[name]; ok {
		return nil
	}
	if c.registry == nil {
		return fmt.Errorf("compiler: unknown function %q", name)
	}
	src, ok := c.registry.Source(name)
	if !ok {
		return fmt.Errorf("compiler: unknown function %q", name)
	}
	if c.compiling[name] {
		return nil // already being compiled higher up the stack
	}
	c.compiling[name] = true
	defer delete(c.compiling, name)
	parsed, err := lang.Parse(src)
	if err != nil {
		return fmt.Errorf("compiler: builtin %s: %w", name, err)
	}
	fnNames := make([]string, 0, len(parsed.Functions))
	for fnName := range parsed.Functions {
		fnNames = append(fnNames, fnName)
	}
	sort.Strings(fnNames)
	for _, fnName := range fnNames {
		if _, exists := c.prog.Functions[fnName]; exists {
			continue
		}
		// reserve slot first to allow mutual recursion
		fb, err := c.compileFunction(parsed.Functions[fnName])
		if err != nil {
			return err
		}
		c.prog.Functions[fnName] = fb
	}
	if _, ok := c.prog.Functions[name]; !ok {
		return fmt.Errorf("compiler: builtin script for %s does not define function %s", name, name)
	}
	return nil
}

// isUserOrDMLFunction reports whether a call target resolves to a function
// block (compiling the DML-bodied builtin on demand).
func (c *Compiler) isUserOrDMLFunction(name string) bool {
	if c.source != nil {
		if _, ok := c.source.Functions[name]; ok {
			return true
		}
	}
	if _, ok := c.prog.Functions[name]; ok {
		return true
	}
	if c.registry != nil {
		if _, ok := c.registry.Source(name); ok {
			return true
		}
	}
	return false
}

// compileStatements groups statements into basic blocks and control-flow
// blocks.
func (c *Compiler) compileStatements(stmts []lang.Statement, knownInputs map[string]types.DataCharacteristics) ([]runtime.ProgramBlock, error) {
	var out []runtime.ProgramBlock
	var straight []lang.Statement
	// available tracks variables certainly bound when control reaches the
	// current statement: script inputs with known characteristics plus
	// unconditional assignments at this nesting level. Compression decision
	// sites are only planted for such variables, so a planted site can never
	// fail on an unbound name (e.g. ahead of a zero-trip loop).
	available := map[string]bool{}
	for name := range knownInputs {
		available[name] = true
	}
	// reassigned tracks variables redefined at this level: their knownInputs
	// characteristics (if any) are stale, so compression sites for them must
	// compile size-unknown and re-decide at recompile time against live sizes
	reassigned := map[string]bool{}
	flush := func() error {
		if len(straight) == 0 {
			return nil
		}
		bb, err := c.compileBasicBlock(straight, knownInputs)
		if err != nil {
			return err
		}
		out = append(out, bb)
		straight = nil
		return nil
	}
	emitCompressionSites := func(body []lang.Statement, loopVar string) error {
		blk, err := c.compressionSites(body, loopVar, available, reassigned, knownInputs)
		if err != nil {
			return err
		}
		if blk != nil {
			out = append(out, blk)
		}
		return nil
	}
	for _, s := range stmts {
		switch v := s.(type) {
		case *lang.AssignStmt, *lang.ExprStmt:
			straight = append(straight, s)
			if a, ok := s.(*lang.AssignStmt); ok {
				for name := range lang.StatementWrites(a) {
					available[name] = true
					reassigned[name] = true
				}
			}
		case *lang.IfStmt:
			if err := flush(); err != nil {
				return nil, err
			}
			blk, err := c.compileIf(v)
			if err != nil {
				return nil, err
			}
			out = append(out, blk)
			markReassigned(reassigned, s)
		case *lang.WhileStmt:
			if err := flush(); err != nil {
				return nil, err
			}
			if err := emitCompressionSites(v.Body, ""); err != nil {
				return nil, err
			}
			blk, err := c.compileWhile(v)
			if err != nil {
				return nil, err
			}
			out = append(out, blk)
			markReassigned(reassigned, s)
		case *lang.ForStmt:
			if err := flush(); err != nil {
				return nil, err
			}
			if err := emitCompressionSites(v.Body, v.Var); err != nil {
				return nil, err
			}
			blk, err := c.compileFor(v)
			if err != nil {
				return nil, err
			}
			out = append(out, blk)
			markReassigned(reassigned, s)
		default:
			return nil, fmt.Errorf("compiler: unsupported statement type %T", s)
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return out, nil
}

// markReassigned records every variable a statement may write (including
// writes nested in control-flow bodies): their compile-time characteristics
// are stale for any later compression site, which must therefore compile
// size-unknown and re-decide against live sizes. Conditional writes do NOT
// mark a variable `available` — only unconditional same-level assignments
// and known script inputs do.
func markReassigned(reassigned map[string]bool, s lang.Statement) {
	for name := range lang.StatementWrites(s) {
		reassigned[name] = true
	}
}

// compressionSites synthesizes the pre-loop compression decision block: for
// every matrix-candidate variable the loop body re-reads but never redefines,
// a "X = compress(X, reuse)" statement is compiled through the regular HOP
// pipeline. The planner (hops.ShouldCompress) decides per site whether it
// lowers to a compress instruction or a no-op alias; sites whose operand
// sizes are unknown at compile time recompile against live sizes like any
// other plan-relevant block. Loops are the reuse scope compression exists
// for: the one-time encode amortizes over every iteration's re-read.
func (c *Compiler) compressionSites(body []lang.Statement, loopVar string,
	available, reassigned map[string]bool, known map[string]types.DataCharacteristics) (*runtime.BasicBlock, error) {
	if !c.cfg.CompressionEnabled {
		return nil, nil
	}
	written := map[string]bool{}
	for _, w := range lang.BlockWrites(body) {
		written[w] = true
	}
	// characteristics of variables redefined before the loop are stale (or
	// absent): compile their sites size-unknown so the block recompiles and
	// the fire decision uses the live symbol-table sizes
	siteKnown := known
	var stmts []lang.Statement
	for _, name := range lang.BlockReads(body) {
		if name == loopVar || written[name] || !available[name] {
			continue
		}
		if reassigned[name] {
			if _, stale := siteKnown[name]; stale {
				pruned := make(map[string]types.DataCharacteristics, len(known))
				for k, v := range siteKnown {
					pruned[k] = v
				}
				delete(pruned, name)
				siteKnown = pruned
			}
		}
		// reuse estimate: statements reading the variable per iteration times
		// the assumed trip count (loop bounds are rarely compile-time known)
		reads := 0
		for _, s := range body {
			if lang.StatementReads(s)[name] {
				reads++
			}
		}
		stmts = append(stmts, &lang.AssignStmt{
			Targets: []lang.AssignTarget{{Name: name}},
			Value: &lang.CallExpr{Name: "compress", Args: []lang.Arg{
				{Value: &lang.Ident{Name: name}},
				{Value: &lang.NumLit{Value: float64(reads * hops.CompressAssumedLoopTrips), IsInt: true}},
			}},
		})
	}
	if len(stmts) == 0 {
		return nil, nil
	}
	return c.compileBasicBlock(stmts, siteKnown)
}

// compileIf compiles an if statement.
func (c *Compiler) compileIf(s *lang.IfStmt) (*runtime.IfBlock, error) {
	predBlock, predVar, err := c.compilePredicate(s.Cond)
	if err != nil {
		return nil, err
	}
	thenBlocks, err := c.compileStatements(s.Then, nil)
	if err != nil {
		return nil, err
	}
	elseBlocks, err := c.compileStatements(s.Else, nil)
	if err != nil {
		return nil, err
	}
	return &runtime.IfBlock{Predicate: predBlock, PredVar: predVar, Then: thenBlocks, Else: elseBlocks}, nil
}

// compileWhile compiles a while loop.
func (c *Compiler) compileWhile(s *lang.WhileStmt) (*runtime.WhileBlock, error) {
	predBlock, predVar, err := c.compilePredicate(s.Cond)
	if err != nil {
		return nil, err
	}
	body, err := c.compileStatements(s.Body, nil)
	if err != nil {
		return nil, err
	}
	return &runtime.WhileBlock{Predicate: predBlock, PredVar: predVar, Body: body}, nil
}

// compileFor compiles a for or parfor loop.
func (c *Compiler) compileFor(s *lang.ForStmt) (*runtime.ForBlock, error) {
	iterExpr := s.Iterable
	// rewrite "from:to" ranges into seq(from, to, 1)
	if r, ok := iterExpr.(*lang.RangeExpr); ok {
		iterExpr = &lang.CallExpr{Name: "seq", Args: []lang.Arg{{Value: r.From}, {Value: r.To}, {Value: &lang.NumLit{Value: 1, IsInt: true}}}, Line: r.Line}
	}
	iterBlock, iterVar, err := c.compilePredicate(iterExpr)
	if err != nil {
		return nil, err
	}
	body, err := c.compileStatements(s.Body, nil)
	if err != nil {
		return nil, err
	}
	writes := lang.BlockWrites(s.Body)
	resultVars := make([]string, 0, len(writes))
	for _, w := range writes {
		if w != s.Var {
			resultVars = append(resultVars, w)
		}
	}
	return &runtime.ForBlock{
		Var:        s.Var,
		Iterable:   iterBlock,
		IterVar:    iterVar,
		Body:       body,
		Parallel:   s.Parallel,
		ResultVars: resultVars,
	}, nil
}

// compilePredicate compiles an expression into a basic block writing a fresh
// predicate variable.
func (c *Compiler) compilePredicate(cond lang.Expr) (*runtime.BasicBlock, string, error) {
	c.predSeq++
	predVar := fmt.Sprintf("_pred%d", c.predSeq)
	stmt := &lang.AssignStmt{Targets: []lang.AssignTarget{{Name: predVar}}, Value: cond}
	bb, err := c.compileBasicBlock([]lang.Statement{stmt}, nil)
	if err != nil {
		return nil, "", err
	}
	// predicate blocks always execute sequentially so control-flow decisions
	// and print ordering stay deterministic under the inter-operator scheduler
	bb.Sequential = true
	return bb, predVar, nil
}
