package analysis

import (
	"go/ast"
	"go/types"
)

// MapOrderAnalyzer flags `for … range` over a map in the deterministic
// packages whenever the loop body is order-sensitive: it accumulates
// floating-point values, produces ordered output (append, channel sends,
// writes, printing), dispatches goroutines, returns a value selected by
// iteration order, or assigns an iteration-dependent value to a variable
// outside the loop. Go randomizes map iteration order per run, so any such
// loop breaks the bitwise-reproducibility and stable-plan contracts; the fix
// is to iterate over sorted keys. One idiom is exempt: a loop whose only
// order-sensitive effect is collecting keys/values into slices that are
// subsequently sorted in the same function — that is the sanctioned
// sorted-iteration prologue.
var MapOrderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc: "flags order-sensitive iteration over maps in deterministic packages " +
		"(matrix, compress, dist, hops, runtime, lineage); iterate over sorted keys instead",
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) error {
	if !deterministicPkgs[internalName(pass.PkgPath)] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				checkFuncMapRanges(pass, body)
			}
			return true
		})
	}
	return nil
}

// checkFuncMapRanges analyzes the map-range loops that belong directly to
// one function body (nested function literals are analyzed as their own
// functions by the caller's walk).
func checkFuncMapRanges(pass *Pass, funcBody *ast.BlockStmt) {
	walkSameFunc(funcBody, func(n ast.Node) {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !isMapRange(pass, rng) {
			return
		}
		checkMapRange(pass, funcBody, rng)
	})
}

// walkSameFunc walks the subtree without descending into nested function
// literals.
func walkSameFunc(root ast.Node, fn func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit && n != root {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

func isMapRange(pass *Pass, rng *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// mapRangeTrigger is one order-sensitive effect found in a loop body.
type mapRangeTrigger struct {
	node   ast.Node
	reason string
	// appendTarget is the object a key/value append writes to, when the
	// trigger is the collect-into-slice pattern (candidate for the
	// collect-then-sort exemption); nil for every other trigger kind.
	appendTarget types.Object
}

func checkMapRange(pass *Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt) {
	loopVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				loopVars[obj] = true
			}
		}
	}
	triggers := collectMapRangeTriggers(pass, rng, loopVars)
	if len(triggers) == 0 {
		return
	}
	// Collect-then-sort exemption: every trigger is an append whose target
	// slice is later passed to a sort/slices call in the same function.
	allSorted := true
	for _, t := range triggers {
		if t.appendTarget == nil || !sortedAfter(pass, funcBody, rng, t.appendTarget) {
			allSorted = false
			break
		}
	}
	if allSorted {
		return
	}
	t := triggers[0]
	pass.Reportf(rng.For, "iteration over map %s is nondeterministic and the loop body %s; iterate over sorted keys instead",
		exprString(pass, rng.X), t.reason)
}

func collectMapRangeTriggers(pass *Pass, rng *ast.RangeStmt, loopVars map[types.Object]bool) []mapRangeTrigger {
	var triggers []mapRangeTrigger
	add := func(n ast.Node, reason string, target types.Object) {
		triggers = append(triggers, mapRangeTrigger{node: n, reason: reason, appendTarget: target})
	}
	walkSameFunc(rng.Body, func(n ast.Node) {
		switch s := n.(type) {
		case *ast.GoStmt:
			add(s, "dispatches goroutines in map order", nil)
		case *ast.SendStmt:
			add(s, "sends on a channel in map order", nil)
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if referencesAny(pass, res, loopVars) {
					add(s, "returns a value selected by iteration order", nil)
					return
				}
			}
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, rng, s, loopVars, add)
		case *ast.CallExpr:
			checkMapRangeCall(pass, s, add)
		}
	})
	// A goroutine spawned from the body is order-sensitive dispatch even
	// though walkSameFunc does not look inside it; the GoStmt case above
	// already catches it because the statement itself is in the body.
	return triggers
}

func checkMapRangeAssign(pass *Pass, rng *ast.RangeStmt, s *ast.AssignStmt, loopVars map[types.Object]bool, add func(ast.Node, string, types.Object)) {
	// append collection: x = append(x, …) / x := append(x, …)
	if len(s.Rhs) == 1 {
		if call, ok := s.Rhs[0].(*ast.CallExpr); ok && isBuiltinAppend(pass, call) {
			var target types.Object
			if id, ok := s.Lhs[0].(*ast.Ident); ok {
				target = pass.TypesInfo.ObjectOf(id)
			}
			add(s, "appends to a slice in map order", target)
			return
		}
	}
	switch s.Tok.String() {
	case "+=", "-=", "*=", "/=":
		if isFloat(pass.TypesInfo.TypeOf(s.Lhs[0])) && declaredOutside(pass, s.Lhs[0], rng.Body) {
			add(s, "accumulates floating-point values whose rounding depends on iteration order", nil)
		}
	case "=":
		// last-writer-wins: an iteration-dependent value escaping to a
		// variable that outlives the loop (map/slice element writes keyed by
		// the loop variable are order-insensitive and stay exempt).
		for i, lhs := range s.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			if i < len(s.Rhs) && referencesAny(pass, s.Rhs[i], loopVars) &&
				declaredOutside(pass, lhs, rng.Body) && !loopVars[pass.TypesInfo.ObjectOf(id)] {
				add(s, "assigns an iteration-dependent value to a variable outside the loop (last writer wins)", nil)
				return
			}
		}
	}
}

func checkMapRangeCall(pass *Pass, call *ast.CallExpr, add func(ast.Node, string, types.Object)) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	if pkg := pkgNameOf(pass, sel.X); pkg == "fmt" {
		if hasAnyPrefix(name, "Print", "Fprint", "Sprint", "Append") {
			add(call, "produces formatted output in map order", nil)
		}
		return
	}
	if hasAnyPrefix(name, "Write") {
		add(call, "writes output in map order", nil)
	}
}

// sortedAfter reports whether target is passed to a sort.* or slices.* call
// after the range statement in the same function body.
func sortedAfter(pass *Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt, target types.Object) bool {
	found := false
	walkSameFunc(funcBody, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || found {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		if pkg := pkgNameOf(pass, sel.X); pkg != "sort" && pkg != "slices" {
			return
		}
		for _, arg := range call.Args {
			if referencesObject(pass, arg, target) {
				found = true
				return
			}
		}
	})
	return found
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := pass.TypesInfo.ObjectOf(id).(*types.Builtin)
	return isBuiltin && id.Name == "append"
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// declaredOutside reports whether the root object of an lvalue is declared
// outside the given block (selector and index expressions are resolved to
// their base; unknown shapes are conservatively treated as external).
func declaredOutside(pass *Pass, lhs ast.Expr, block *ast.BlockStmt) bool {
	for {
		switch e := lhs.(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.ObjectOf(e)
			if obj == nil {
				return true
			}
			return obj.Pos() < block.Pos() || obj.Pos() > block.End()
		case *ast.SelectorExpr:
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.ParenExpr:
			lhs = e.X
		default:
			return true
		}
	}
}

func referencesAny(pass *Pass, e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objs[pass.TypesInfo.ObjectOf(id)] {
			found = true
		}
		return !found
	})
	return found
}

func referencesObject(pass *Pass, e ast.Expr, obj types.Object) bool {
	return referencesAny(pass, e, map[types.Object]bool{obj: true})
}

// pkgNameOf returns the imported package path when e is a package qualifier
// ident, or "".
func pkgNameOf(pass *Pass, e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := pass.TypesInfo.ObjectOf(id).(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

func hasAnyPrefix(s string, prefixes ...string) bool {
	for _, p := range prefixes {
		if len(s) >= len(p) && s[:len(p)] == p {
			return true
		}
	}
	return false
}

func exprString(pass *Pass, e ast.Expr) string {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	if sel, ok := e.(*ast.SelectorExpr); ok {
		return exprString(pass, sel.X) + "." + sel.Sel.Name
	}
	return "expression"
}
