// Package analysis implements sysdslint, a suite of custom static-analysis
// passes that machine-check the runtime's determinism, layering, and
// concurrency contracts (DESIGN.md "Enforced invariants").
//
// The package mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic) but is implemented entirely on the standard
// library: this repository builds in hermetic environments without a module
// proxy, so x/tools cannot be a dependency. Packages under analysis are
// loaded with `go list -export` and type-checked from source with go/types,
// resolving imports through the build cache's export data (see load.go).
//
// Findings can be suppressed with a written justification:
//
//	//sysds:ok(<analyzer>): <reason>
//
// either trailing the offending line or on the line directly above it. A
// suppression without a reason, or naming an unknown analyzer, is itself a
// diagnostic (see suppress.go).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named static-analysis pass.
type Analyzer struct {
	// Name is the analyzer identifier used in diagnostics and in
	// //sysds:ok(<name>) suppression directives.
	Name string
	// Doc is a one-paragraph description of the contract the analyzer
	// enforces.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries the per-package inputs of one analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the parsed non-test Go files of the package, with comments.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// PkgPath is the declared import path of the package under analysis. For
	// repository packages it equals Pkg.Path(); the test harness loads
	// testdata packages under synthetic paths.
	PkgPath string
	// TypesInfo holds the type-checking results for Files.
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records one diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Analyzers returns the full sysdslint suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapOrderAnalyzer,
		NoFMAAnalyzer,
		ThreadPlumbAnalyzer,
		LayeringAnalyzer,
		GoroutineErrAnalyzer,
		SpanEndAnalyzer,
	}
}

// AnalyzerNames returns the set of valid analyzer names, including the
// pseudo-analyzer that validates suppression directives themselves.
func AnalyzerNames() map[string]bool {
	names := map[string]bool{SuppressAnalyzerName: true}
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	return names
}

// RunAnalyzers runs the given analyzers over one loaded package, applies
// //sysds:ok suppressions, validates the suppression directives, and returns
// the surviving diagnostics sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			PkgPath:   pkg.Path,
			TypesInfo: pkg.Info,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	sups := collectSuppressions(pkg.Fset, pkg.Files)
	diags = applySuppressions(diags, sups)
	diags = append(diags, validateSuppressions(sups, AnalyzerNames())...)
	sortDiagnostics(diags)
	return diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
