package analysis

// This file is the stdlib-only equivalent of x/tools' analysistest: each
// testdata/src/<suite> tree holds Go packages whose directory path below the
// suite root is their import path (e.g. testdata/src/maporder/example.com/
// internal/runtime declares import path "example.com/internal/runtime", which
// internalName maps onto the real "runtime" layer). Expected findings are
// written as trailing comments of the form
//
//	// want "regexp"
//
// on the exact line a diagnostic is reported at; a test fails on any
// diagnostic without a matching want and on any want without a matching
// diagnostic. Packages may import each other — the harness type-checks them
// recursively from source — and stdlib imports resolve through the same lazy
// `go list -export` lookup the production loader uses.

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// testdataPkg is one package parsed out of a testdata suite.
type testdataPkg struct {
	path  string
	files []*ast.File
}

// parseTestdata parses every Go file under root into packages keyed by their
// synthetic import path (the slash-form path relative to root).
func parseTestdata(t *testing.T, fset *token.FileSet, root string) map[string]*testdataPkg {
	t.Helper()
	pkgs := map[string]*testdataPkg{}
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(p, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, filepath.Dir(p))
		if err != nil {
			return err
		}
		path := filepath.ToSlash(rel)
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		pkg := pkgs[path]
		if pkg == nil {
			pkg = &testdataPkg{path: path}
			pkgs[path] = pkg
		}
		pkg.files = append(pkg.files, f)
		return nil
	})
	if err != nil {
		t.Fatalf("parse testdata %s: %v", root, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no testdata packages under %s", root)
	}
	return pkgs
}

// testdataImporter type-checks testdata packages recursively from source and
// defers every other path (stdlib) to the build cache's export data.
type testdataImporter struct {
	fset    *token.FileSet
	srcs    map[string]*testdataPkg
	checked map[string]*types.Package
	infos   map[string]*types.Info
	std     types.Importer
}

func newTestdataImporter(fset *token.FileSet, srcs map[string]*testdataPkg) *testdataImporter {
	table := &exportTable{exports: map[string]string{}}
	return &testdataImporter{
		fset:    fset,
		srcs:    srcs,
		checked: map[string]*types.Package{},
		infos:   map[string]*types.Info{},
		std:     importer.ForCompiler(fset, "gc", table.lookup),
	}
}

func (ti *testdataImporter) Import(path string) (*types.Package, error) {
	if p, ok := ti.checked[path]; ok {
		return p, nil
	}
	src, ok := ti.srcs[path]
	if !ok {
		return ti.std.Import(path)
	}
	info := newTypesInfo()
	conf := &types.Config{Importer: ti}
	tpkg, err := conf.Check(path, ti.fset, src.files, info)
	if err != nil {
		return nil, err
	}
	ti.checked[path] = tpkg
	ti.infos[path] = info
	return tpkg, nil
}

// lintTestdata type-checks every testdata package and runs the analyzers
// (including the suppression pipeline) over each, in sorted package order.
func lintTestdata(t *testing.T, fset *token.FileSet, srcs map[string]*testdataPkg, analyzers []*Analyzer) []Diagnostic {
	t.Helper()
	ti := newTestdataImporter(fset, srcs)
	paths := make([]string, 0, len(srcs))
	for p := range srcs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var diags []Diagnostic
	for _, path := range paths {
		tpkg, err := ti.Import(path)
		if err != nil {
			t.Fatalf("typecheck testdata package %s: %v", path, err)
		}
		pkg := &Package{Path: path, Fset: fset, Files: srcs[path].files, Types: tpkg, Info: ti.infos[path]}
		ds, err := RunAnalyzers(pkg, analyzers)
		if err != nil {
			t.Fatalf("run analyzers on %s: %v", path, err)
		}
		diags = append(diags, ds...)
	}
	return diags
}

// want is one expected diagnostic: a message pattern anchored to a file line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var (
	wantLineRe = regexp.MustCompile(`^//\s*want\s+(.*)$`)
	wantArgRe  = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

func collectWants(t *testing.T, fset *token.FileSet, srcs map[string]*testdataPkg) []*want {
	t.Helper()
	var wants []*want
	for _, pkg := range srcs {
		for _, f := range pkg.files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantLineRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					args := wantArgRe.FindAllString(m[1], -1)
					if len(args) == 0 {
						t.Errorf("%s: want comment has no quoted pattern", pos)
						continue
					}
					for _, q := range args {
						s, err := strconv.Unquote(q)
						if err != nil {
							t.Errorf("%s: bad want pattern %s: %v", pos, q, err)
							continue
						}
						re, err := regexp.Compile(s)
						if err != nil {
							t.Errorf("%s: bad want regexp %q: %v", pos, s, err)
							continue
						}
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return wants
}

// runTestdata lints one testdata suite with the given analyzers and checks
// the diagnostics against the suite's want comments, both ways.
func runTestdata(t *testing.T, analyzers []*Analyzer, root string) {
	t.Helper()
	fset := token.NewFileSet()
	srcs := parseTestdata(t, fset, root)
	diags := lintTestdata(t, fset, srcs, analyzers)
	wants := collectWants(t, fset, srcs)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}
