package analysis

import "strings"

// internalName extracts the repository-internal package name from an import
// path: the path element following the last "internal/" segment, joined with
// any sub-packages ("…/internal/matrix" -> "matrix"). It returns "" for
// paths outside an internal tree. Matching on the suffix (rather than the
// full module path) lets the test harness exercise analyzers on testdata
// packages declared under synthetic module prefixes.
func internalName(pkgPath string) string {
	const marker = "internal/"
	idx := strings.LastIndex(pkgPath, "/"+marker)
	switch {
	case idx >= 0:
		return pkgPath[idx+1+len(marker):]
	case strings.HasPrefix(pkgPath, marker):
		return pkgPath[len(marker):]
	default:
		return ""
	}
}

// deterministicPkgs are the packages whose outputs must be bitwise
// reproducible across runs and thread counts: kernels, the blocked backend,
// the planner, instruction execution, and lineage tracing. maporder polices
// map-iteration order on these paths.
var deterministicPkgs = map[string]bool{
	"matrix":   true,
	"compress": true,
	"dist":     true,
	"hops":     true,
	"runtime":  true,
	"lineage":  true,
}

// kernelPkgs are the packages holding floating-point kernels bound by the
// round-product/round-sum bitwise contract (DESIGN.md, dense GEMM engine):
// every multiply and every add must round separately, so fused multiply-add
// is forbidden. dist is included because its stripe accumulations must
// reproduce the one-shot kernels bitwise.
var kernelPkgs = map[string]bool{
	"matrix":   true,
	"compress": true,
	"dist":     true,
}

// threadPlumbPkgs are the packages on the configuration path from the
// planner to the kernels: call sites here must pass the context's resolved
// thread count to kernel entry points, never a hard-coded literal.
// dist and paramserv may pass the literal 1 — their operators already run
// inside their own worker pools, and nested kernel parallelism would
// oversubscribe cores (the documented inner-pool contract).
var threadPlumbPkgs = map[string]bool{
	"instructions": true,
	"runtime":      true,
	"compress":     true,
	"dist":         true,
	"paramserv":    true,
}

// innerPoolPkgs may pass threads=1 to kernels without annotation.
var innerPoolPkgs = map[string]bool{
	"dist":      true,
	"paramserv": true,
}

// layerRank encodes the import DAG of DESIGN.md:
//
//	types → matrix/compress → dist/hops → instructions/runtime → compiler → core
//
// A ranked package may import only strictly lower-ranked packages, which in
// particular keeps kernels (matrix, compress) from ever importing the
// planner (hops) or the runtime. Support packages are ranked where their
// role places them; internal/analysis is ranked above everything so no
// runtime package can grow a dependency on the linter.
var layerRank = map[string]int{
	"types":        0,
	"obs":          0,
	"lang":         1,
	"bufferpool":   1,
	"lineage":      0,
	"builtins":     0,
	"matrix":       1,
	"tensor":       1,
	"compress":     2,
	"frame":        2,
	"paramserv":    2,
	"io":           3,
	"hops":         3,
	"dist":         3,
	"fed":          4,
	"runtime":      5,
	"instructions": 6,
	"compiler":     7,
	"core":         8,
	"baselines":    9,
	"experiments":  10,
	"analysis":     99,
}
