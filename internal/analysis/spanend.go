package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SpanEndAnalyzer enforces the tracer's pairing contract: every span opened
// with an obs Begin call must be ended with End or EndBytes on every path, or
// a leaked span skews the heavy-hitter table and breaks trace nesting. Three
// shapes are flagged:
//
//   - the Begin result is discarded (an expression statement or a blank
//     assignment): the span can never be ended;
//   - a span variable with no End/EndBytes call anywhere in its function
//     (deferred closures included);
//   - a return statement between the Begin and the span's first End with no
//     deferred End in force: that path leaks the open span.
//
// The sanctioned patterns all avoid these shapes: `defer sp.End()` right
// after Begin, or an explicit `sp.End()` on the error path textually before
// its return. Spans that escape the function (returned, passed as arguments,
// stored in fields) are the callee's or owner's responsibility and are not
// tracked.
var SpanEndAnalyzer = &Analyzer{
	Name: "spanend",
	Doc: "flags obs spans that are never ended: discarded Begin results, span " +
		"variables without End/EndBytes, and returns that leak an open span",
	Run: runSpanEnd,
}

func runSpanEnd(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkSpanScope(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkSpanScope(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// spanVar is one span-typed local bound from a Begin call in the scope under
// analysis.
type spanVar struct {
	obj  types.Object
	name string
	call *ast.CallExpr
}

// checkSpanScope checks one function body. Begin calls and returns belong to
// the body's own statements — nested function literals are separate scopes
// visited by the outer walk — but End calls are searched through nested
// literals too, so the `defer func() { sp.End() }()` pattern counts.
func checkSpanScope(pass *Pass, body *ast.BlockStmt) {
	var vars []*spanVar
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a nested scope, checked separately
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSpanBegin(pass, call) {
			return true
		}
		if v := classifyBegin(pass, call, stack); v != nil {
			vars = append(vars, v)
		}
		return true
	})
	if len(vars) == 0 {
		return
	}
	ends := collectSpanEnds(pass, body)
	rets := collectScopeReturns(body)
	for _, v := range vars {
		checkSpanVar(pass, v, ends[v.obj], rets)
	}
}

// classifyBegin inspects the syntactic context of one Begin call: discarded
// results are reported immediately, simple local bindings are returned for
// path checking, and everything else (returned, passed on, stored away)
// escapes the scope's responsibility.
func classifyBegin(pass *Pass, call *ast.CallExpr, stack []ast.Node) *spanVar {
	if len(stack) < 2 {
		return nil
	}
	switch parent := stack[len(stack)-2].(type) {
	case *ast.ExprStmt:
		pass.Reportf(call.Pos(), "result of %s is discarded: the span can never be ended", calleeName(call))
		return nil
	case *ast.AssignStmt:
		return classifyAssigned(pass, call, parent.Lhs, parent.Rhs)
	case *ast.ValueSpec:
		lhs := make([]ast.Expr, len(parent.Names))
		for i, id := range parent.Names {
			lhs[i] = id
		}
		return classifyAssigned(pass, call, lhs, parent.Values)
	default:
		return nil
	}
}

// classifyAssigned resolves which binding target receives the Begin result.
func classifyAssigned(pass *Pass, call *ast.CallExpr, lhs, rhs []ast.Expr) *spanVar {
	if len(lhs) != len(rhs) {
		return nil // Begin returns one value, so positions must align
	}
	for i, r := range rhs {
		if r != ast.Expr(call) {
			continue
		}
		id, ok := lhs[i].(*ast.Ident)
		if !ok {
			return nil // a field or index target owns the span now
		}
		if id.Name == "_" {
			pass.Reportf(call.Pos(), "result of %s is discarded: the span can never be ended", calleeName(call))
			return nil
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			return nil
		}
		return &spanVar{obj: obj, name: id.Name, call: call}
	}
	return nil
}

// spanEnd is one End/EndBytes call on a tracked span variable. Deferred ends
// (directly or through a deferred closure) cover every return after their
// defer statement; plain ends cover returns they textually precede.
type spanEnd struct {
	pos      token.Pos
	deferred bool
}

// collectSpanEnds finds every End/EndBytes method call on a local identifier
// in the body, nested function literals included, keyed by the receiver's
// object. Calls under a defer statement — `defer sp.End()` or ends inside a
// deferred closure — are marked deferred at the defer's position.
func collectSpanEnds(pass *Pass, body *ast.BlockStmt) map[types.Object][]spanEnd {
	ends := map[types.Object][]spanEnd{}
	record := func(n ast.Node, deferred bool, at token.Pos) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "End" && sel.Sel.Name != "EndBytes") {
			return false
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return false
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return false
		}
		ends[obj] = append(ends[obj], spanEnd{pos: at, deferred: deferred})
		return true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if d, ok := n.(*ast.DeferStmt); ok {
			if record(d.Call, true, d.Pos()) {
				return false
			}
			if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if m != nil {
						record(m, true, d.Pos())
					}
					return true
				})
				return false
			}
			return true
		}
		record(n, false, n.Pos())
		return true
	})
	return ends
}

// collectScopeReturns gathers the return statements of the body's own scope,
// skipping nested function literals (their returns leave the literal, not the
// function holding the span).
func collectScopeReturns(body *ast.BlockStmt) []*ast.ReturnStmt {
	var rets []*ast.ReturnStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if r, ok := n.(*ast.ReturnStmt); ok {
			rets = append(rets, r)
		}
		return true
	})
	return rets
}

// checkSpanVar applies the never-ended and return-leak rules to one tracked
// span variable.
func checkSpanVar(pass *Pass, v *spanVar, ends []spanEnd, rets []*ast.ReturnStmt) {
	if len(ends) == 0 {
		pass.Reportf(v.call.Pos(),
			"span %s is never ended: call %s.End or %s.EndBytes on every path (usually `defer %s.End()`)",
			v.name, v.name, v.name, v.name)
		return
	}
	begin := v.call.Pos()
	for _, r := range rets {
		if r.Pos() <= begin {
			continue
		}
		covered := false
		for _, e := range ends {
			if e.deferred && e.pos < r.Pos() {
				covered = true
				break
			}
			if !e.deferred && e.pos > begin && e.pos < r.Pos() {
				covered = true
				break
			}
		}
		if !covered {
			pass.Reportf(r.Pos(),
				"return leaks span %s: no End/EndBytes between the Begin and this return and no deferred End in force",
				v.name)
		}
	}
}

// isSpanBegin reports whether a call opens an obs span: the callee name
// starts with "Begin" and the result is the obs package's Span type. The name
// prefix keeps accessors that merely return a stored Span out of scope.
func isSpanBegin(pass *Pass, call *ast.CallExpr) bool {
	if !strings.HasPrefix(calleeMethod(call), "Begin") {
		return false
	}
	named, ok := pass.TypesInfo.TypeOf(call).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Span" && obj.Pkg() != nil && internalName(obj.Pkg().Path()) == "obs"
}

// calleeMethod returns the bare function or method name of a call.
func calleeMethod(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
