package analysis

import (
	"go/ast"
	"go/types"
)

// ThreadPlumbAnalyzer checks that kernel entry points taking a `threads`
// parameter receive the context's resolved thread count at call sites on the
// configuration path (instructions, runtime, compress, dist, paramserv), not
// a hard-coded integer literal: a literal silently pins the kernel to a
// fixed parallelism no matter what the user configured. Two packages are
// allowlisted for the literal 1 — dist and paramserv run kernels inside
// their own worker pools, where nested parallelism would oversubscribe cores
// (the documented inner-pool contract). Any other literal needs a
// //sysds:ok(threadplumb) justification.
var ThreadPlumbAnalyzer = &Analyzer{
	Name: "threadplumb",
	Doc: "kernel calls must plumb the context's thread count into `threads` " +
		"parameters instead of hard-coding a literal (literal 1 allowed in the dist/paramserv inner pools)",
	Run: runThreadPlumb,
}

func runThreadPlumb(pass *Pass) error {
	pkg := internalName(pass.PkgPath)
	if !threadPlumbPkgs[pkg] {
		return nil
	}
	innerPool := innerPoolPkgs[pkg]
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sig := calleeSignature(pass, call)
			if sig == nil || sig.Variadic() {
				return true
			}
			params := sig.Params()
			for i := 0; i < params.Len() && i < len(call.Args); i++ {
				if params.At(i).Name() != "threads" {
					continue
				}
				lit, isLit := literalInt(call.Args[i])
				if !isLit {
					continue
				}
				if innerPool && lit == "1" {
					continue
				}
				pass.Reportf(call.Args[i].Pos(), "hard-coded threads=%s passed to %s: plumb the context's thread count (ctx.Config.Threads()) instead",
					lit, calleeName(call))
			}
			return true
		})
	}
	return nil
}

// calleeSignature resolves the static callee's signature for direct function
// and method calls; calls through function values return nil.
func calleeSignature(pass *Pass, call *ast.CallExpr) *types.Signature {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.ObjectOf(fun)
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.ObjectOf(fun.Sel)
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	sig, _ := fn.Type().(*types.Signature)
	return sig
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}

// literalInt reports whether e is an integer literal (possibly negated),
// returning its source text.
func literalInt(e ast.Expr) (string, bool) {
	for {
		if p, ok := e.(*ast.ParenExpr); ok {
			e = p.X
			continue
		}
		break
	}
	if u, ok := e.(*ast.UnaryExpr); ok {
		if s, isLit := literalInt(u.X); isLit {
			return u.Op.String() + s, true
		}
		return "", false
	}
	if l, ok := e.(*ast.BasicLit); ok && l.Kind.String() == "INT" {
		return l.Value, true
	}
	return "", false
}
