// Package compiler is outside the deterministic set: the same risky loop
// shapes must not fire here.
package compiler

func SumValues(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}

func UnsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
