// Package runtime exercises maporder in a deterministic package: every
// order-sensitive map-range shape fires, every sanctioned idiom stays quiet.
package runtime

import (
	"fmt"
	"sort"
	"strings"
)

// fire: floating-point accumulation is rounding-order sensitive.
func SumValues(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want "accumulates floating-point values"
		total += v
	}
	return total
}

// fire: collecting into a slice without a subsequent sort.
func UnsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want "appends to a slice in map order"
		keys = append(keys, k)
	}
	return keys
}

// fire: goroutine dispatch order is observable (work stealing, pool warmup).
func Dispatch(m map[string]int, fn func(string)) {
	for k := range m { // want "dispatches goroutines in map order"
		go fn(k)
	}
}

// fire: channel sends publish elements in iteration order.
func Stream(m map[string]int, ch chan string) {
	for k := range m { // want "sends on a channel in map order"
		ch <- k
	}
}

// fire: returning from inside the loop selects a random element.
func AnyKey(m map[string]int) string {
	for k := range m { // want "returns a value selected by iteration order"
		return k
	}
	return ""
}

// fire: last writer wins, so the surviving value is random.
func LastName(m map[string]int) string {
	name := ""
	for k := range m { // want "last writer wins"
		name = k
	}
	return name
}

// fire: formatted output inherits map order.
func Dump(m map[string]int) {
	for k, v := range m { // want "produces formatted output in map order"
		fmt.Printf("%s=%d\n", k, v)
	}
}

// fire: writer methods emit bytes in map order.
func Render(m map[string]int, sb *strings.Builder) {
	for k := range m { // want "writes output in map order"
		sb.WriteString(k)
	}
}

// no fire: collect-then-sort is the sanctioned sorted-iteration prologue.
func SortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// no fire: keyed writes into another map are order-insensitive.
func Clone(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// no fire: integer accumulation is exact, any order gives the same sum.
func SumInts(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// no fire: counting does not observe order at all.
func Count(m map[string]bool) int {
	n := 0
	for range m {
		n++
	}
	return n
}
