// Package obs is a minimal stub of the tracer API for spanend testdata: the
// analyzer keys on Begin-prefixed callees returning this package's Span type.
package obs

// Tracer is a stub of the span tracer.
type Tracer struct{}

// Span is a stub of an open span handle.
type Span struct{ id uint64 }

// Begin opens a span on the default tracer.
func Begin(cat, name string) Span { return Span{id: 1} }

// BeginChild opens a span under an explicit parent.
func BeginChild(parent Span, cat, name string) Span { return Span{id: 2} }

// Begin opens a span on this tracer.
func (t *Tracer) Begin(cat, name string) Span { return Span{id: 3} }

// End closes the span.
func (s Span) End() {}

// EndBytes closes the span recording bytes moved.
func (s Span) EndBytes(n int64) {}
