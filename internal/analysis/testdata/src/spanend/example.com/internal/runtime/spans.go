// Package runtime exercises spanend: leaked spans fire, every sanctioned
// Begin/End pairing stays quiet.
package runtime

import (
	"errors"

	"example.com/internal/obs"
)

var errBoom = errors.New("boom")

func fail() bool { return true }

func work() {}

// fire: the expression statement discards the span outright.
func Discarded() {
	obs.Begin("instr", "ba+*") // want "result of obs.Begin is discarded"
	work()
}

// fire: a blank assignment is the same discard, written out.
func BlankAssigned() {
	_ = obs.Begin("instr", "ba+*") // want "result of obs.Begin is discarded"
	work()
}

// fire: the span variable is bound but never ended anywhere.
func NeverEnded() {
	sp := obs.Begin("pool", "spill") // want "span sp is never ended"
	work()
	_ = sp
}

// fire: the error path returns with the span still open.
func LeakOnError() error {
	sp := obs.Begin("pool", "restore")
	if fail() {
		return errBoom // want "return leaks span sp"
	}
	sp.End()
	return nil
}

// fire: a span opened inside a goroutine body is its own scope.
func LeakInGoroutine(done chan struct{}) {
	go func() {
		sp := obs.Begin("dist", "task") // want "span sp is never ended"
		work()
		_ = sp
		done <- struct{}{}
	}()
}

// no fire: the deferred End covers every return.
func DeferredEnd() error {
	sp := obs.Begin("compress", "encode")
	defer sp.End()
	if fail() {
		return errBoom
	}
	return nil
}

// no fire: a deferred closure ending the span counts the same.
func DeferredClosureEnd(bytes *int64) error {
	sp := obs.Begin("compress", "encode")
	defer func() { sp.EndBytes(*bytes) }()
	if fail() {
		return errBoom
	}
	return nil
}

// no fire: the error path ends the span before returning, the success path
// ends it with the byte count.
func EndBothPaths() error {
	sp := obs.Begin("lineage", "put")
	if fail() {
		sp.End()
		return errBoom
	}
	sp.EndBytes(64)
	return nil
}

// no fire: a returned span escapes to the caller, which owns ending it.
func OpenSpan() obs.Span {
	return obs.Begin("rpc", "call")
}

// no fire: chaining End onto Begin never binds an unended span.
func ChainedEnd() {
	obs.Begin("instr", "noop").End()
}

// no fire: tracer-method Begins follow the same contract.
func TracerMethod(tr *obs.Tracer) {
	sp := tr.Begin("fed", "worker:exec")
	work()
	sp.End()
}

// no fire: a child span with an explicit parent, ended on both paths.
func ChildSpan(parent obs.Span) error {
	sp := obs.BeginChild(parent, "instr", "tsmm")
	if fail() {
		sp.End()
		return errBoom
	}
	sp.EndBytes(128)
	return nil
}
