// Package dist runs kernels inside its own worker pool: the literal 1 is the
// documented inner-pool contract and passes, any other literal still fires.
package dist

import "example.com/internal/matrix"

func Worker(a, b []float64) []float64 {
	return matrix.Multiply(a, b, 1)
}

func Oversubscribed(a, b []float64) []float64 {
	return matrix.Multiply(a, b, 4) // want "hard-coded threads=4 passed to matrix.Multiply"
}
