// Package instructions is on the configuration path: kernel calls must plumb
// the context's resolved thread count, never a literal.
package instructions

import "example.com/internal/matrix"

type config struct{ threads int }

func (c config) Threads() int { return c.threads }

func Run(a, b []float64, cfg config) []float64 {
	matrix.Multiply(a, b, 4) // want "hard-coded threads=4 passed to matrix.Multiply"
	matrix.Multiply(a, b, 1) // want "hard-coded threads=1 passed to matrix.Multiply"
	return matrix.Multiply(a, b, cfg.Threads())
}

func RunBlock(bl *matrix.Block, cfg config) float64 {
	_ = bl.Sum(8) // want "hard-coded threads=8 passed to bl.Sum"
	return bl.Sum(cfg.Threads())
}

// no fire: variadic callees are exempt.
func RunTrace() {
	matrix.Trace(2, 1.0, 2.0)
}
