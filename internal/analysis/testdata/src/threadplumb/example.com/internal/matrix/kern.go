// Package matrix declares kernel entry points with `threads` parameters.
// matrix itself is not on the configuration path, so call sites here are not
// checked — the suites below call in from instructions and dist.
package matrix

func Multiply(a, b []float64, threads int) []float64 {
	_ = threads
	return a
}

type Block struct{}

func (bl *Block) Sum(threads int) float64 {
	_ = threads
	return 0
}

// Variadic helpers are skipped by the analyzer even if a parameter is named
// threads (argument-to-parameter mapping is ambiguous).
func Trace(threads int, vals ...float64) {}
