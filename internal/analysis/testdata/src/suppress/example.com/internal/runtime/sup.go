// Package runtime exercises the //sysds:ok suppression pipeline (checked
// programmatically by TestSuppressDirectives, not by want comments: a want
// trailing a directive line would be parsed as the directive's reason).
package runtime

// sumJustified: a directive with a written reason suppresses the maporder
// finding on the next line and produces no diagnostic of its own.
func sumJustified(m map[string]float64) float64 {
	s := 0.0
	//sysds:ok(maporder): test fixture, summation declared order-insensitive
	for _, v := range m {
		s += v
	}
	return s
}

// sumTrailing: a trailing directive on the offending line itself.
func sumTrailing(m map[string]float64) float64 {
	s := 0.0
	for _, v := range m { //sysds:ok(maporder): test fixture, trailing form
		s += v
	}
	return s
}

// sumNoReason: the directive still suppresses, but the missing justification
// surfaces as a sysdsok diagnostic at the directive.
func sumNoReason(m map[string]float64) float64 {
	s := 0.0
	//sysds:ok(maporder)
	for _, v := range m {
		s += v
	}
	return s
}

// sumUnknown: naming an unknown analyzer yields a sysdsok diagnostic and
// does not suppress the maporder finding.
func sumUnknown(m map[string]float64) float64 {
	s := 0.0
	//sysds:ok(bogus): this analyzer does not exist
	for _, v := range m {
		s += v
	}
	return s
}
