// Package dist exercises goroutineerr: goroutines that drop errors fire,
// every sanctioned error-capture pattern stays quiet.
package dist

import "errors"

func work() error { return errors.New("boom") }

func helper() {}

type Worker struct{}

func (w *Worker) Run() error { return nil }

// fire: the go statement discards every result by construction.
func SpawnDirect() {
	go work() // want "goroutine drops the error returned by work"
}

// fire: method value with an error result.
func SpawnMethod(w *Worker) {
	go w.Run() // want "goroutine drops the error returned by w.Run"
}

// fire: expression-statement call inside the goroutine body implicitly
// discards the error.
func SpawnLit() {
	go func() {
		work() // want "goroutine drops the error returned by work"
	}()
}

// fire: a goroutine nested inside another goroutine is checked once, by the
// outer walk.
func SpawnNested() {
	go func() {
		go work() // want "goroutine drops the error returned by work"
	}()
}

// no fire: void functions have nothing to drop.
func SpawnVoid() {
	go helper()
}

// no fire: the error is published on a channel.
func SpawnCaptured(ch chan error) {
	go func() {
		ch <- work()
	}()
}

// no fire: the error is checked and forwarded.
func SpawnChecked(errCh chan error) {
	go func() {
		if err := work(); err != nil {
			errCh <- err
		}
	}()
}

// no fire: the error is stored in a captured variable for the joiner to read.
func SpawnStored(done chan struct{}) {
	var err error
	go func() {
		err = work()
		close(done)
	}()
	<-done
	_ = err
}

// no fire: an explicit blank assignment is a deliberate, visible discard.
func SpawnExplicitDiscard() {
	go func() {
		_ = work()
	}()
}
