// Commands sit above the DAG: unranked packages outside internal/ may import
// anything.
package main

import (
	_ "example.com/internal/matrix"
	_ "example.com/internal/runtime"
)

func main() {}
