// Package unmapped has no layer rank; it is itself unconstrained (the
// violation is reported at the ranked importer), so nothing fires here.
package unmapped

import _ "example.com/internal/types"
