// Package compiler (layer 7) may import the runtime, but importing an
// internal package missing from the layer map fires: new packages must be
// placed in a layer before anything can depend on them.
package compiler

import (
	_ "example.com/internal/runtime"
	_ "example.com/internal/unmapped" // want "no layer rank"
)
