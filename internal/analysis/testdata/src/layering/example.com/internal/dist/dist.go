// Package dist (layer 3) importing hops (also layer 3) fires: ranks must be
// strictly decreasing along imports, equal ranks are siblings, not a DAG edge.
package dist

import _ "example.com/internal/hops" // want "layering violation: dist .* must not import hops"
