// Package runtime (layer 5) may import lower layers.
package runtime

import _ "example.com/internal/types"
