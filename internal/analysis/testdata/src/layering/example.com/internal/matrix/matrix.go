// Package matrix is a kernel (layer 1): importing the runtime inverts the
// DAG and fires; importing types (layer 0) is the legal direction.
package matrix

import (
	_ "example.com/internal/runtime" // want "layering violation: matrix .* must not import runtime"
	_ "example.com/internal/types"
)
