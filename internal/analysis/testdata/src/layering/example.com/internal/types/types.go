// Package types sits at the bottom of the DAG (layer 0).
package types

type ID int
