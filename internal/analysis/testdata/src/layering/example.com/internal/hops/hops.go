// Package hops (layer 3) imports nothing; it exists so dist can try to
// import a same-rank sibling.
package hops

type Plan struct{}
