// Package hops is outside the kernel set: cost-model arithmetic may use any
// expression shape, so nothing here fires.
package hops

func EstimateFlops(rows, cols, inner float64) float64 {
	return rows*cols*inner*2 + rows*cols
}
