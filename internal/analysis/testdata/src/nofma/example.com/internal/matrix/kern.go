// Package matrix exercises nofma inside a kernel package: every shape the
// compiler may contract into a fused multiply-add fires, and the sanctioned
// float64(…) rounding idiom stays quiet.
package matrix

import "math"

// fire: explicit fusion.
func FMACall(a, b, c float64) float64 {
	return math.FMA(a, b, c) // want "math.FMA is forbidden in kernel packages"
}

// fire: product feeding an add within one expression.
func MulAdd(a, b, c float64) float64 {
	return a*b + c // want "fusible multiply-add"
}

// fire: parentheses are not a rounding point.
func ParenMulAdd(a, b, c float64) float64 {
	return (a * b) + c // want "fusible multiply-add"
}

// fire: product feeding a subtraction.
func SubProduct(c, a, b float64) float64 {
	return c - a*b // want "fusible multiply-add"
}

// fire: compound assignment accumulating a product.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i] // want "fusible multiply-add"
	}
	return s
}

// fire: compound subtraction of a product.
func AxpyNeg(y []float64, alpha float64, x []float64) {
	for i := range y {
		y[i] -= alpha * x[i] // want "fusible multiply-add"
	}
}

// no fire: the explicit conversion is a rounding point, fusion is forbidden.
func MulAddRounded(a, b, c float64) float64 {
	return float64(a*b) + c
}

// no fire: rounded compound accumulation, the sanctioned kernel idiom.
func DotRounded(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += float64(a[i] * b[i])
	}
	return s
}

// no fire: integer arithmetic is exact.
func IndexOf(row, cols, col int) int {
	return row*cols + col
}

// no fire: constant expressions fold exactly at compile time.
const scale = 2.0*3.0 + 1.0

// no fire: addition without a product cannot fuse.
func Sum3(a, b, c float64) float64 {
	return a + b + c
}
