package analysis

import "strconv"

// LayeringAnalyzer enforces the package import DAG documented in DESIGN.md:
//
//	types → matrix/compress → dist/hops → instructions/runtime → compiler → core
//
// Each internal package carries a layer rank (pkgs.go); an import is legal
// only when the importer's rank is strictly greater than the importee's.
// This keeps kernels (matrix, compress) from ever importing the planner
// (hops) or runtime packages, and keeps the DAG acyclic by construction. A
// ranked package importing an internal package missing from the layer map is
// also flagged, so new packages must be placed in a layer before anything
// can depend on them.
var LayeringAnalyzer = &Analyzer{
	Name: "layering",
	Doc: "enforces the import DAG types → matrix/compress → dist/hops → " +
		"instructions/runtime → compiler → core; kernels never import planner or runtime packages",
	Run: runLayering,
}

func runLayering(pass *Pass) error {
	self := internalName(pass.PkgPath)
	selfRank, ranked := layerRank[self]
	if !ranked {
		return nil // cmd/, examples/, and the root package sit above the DAG
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			dep := internalName(path)
			if dep == "" || dep == self {
				continue // stdlib or external imports are not layered
			}
			depRank, ok := layerRank[dep]
			if !ok {
				pass.Reportf(imp.Pos(), "package %s imports internal package %s which has no layer rank: add it to the layer map in internal/analysis/pkgs.go", self, dep)
				continue
			}
			if depRank >= selfRank {
				pass.Reportf(imp.Pos(), "layering violation: %s (layer %d) must not import %s (layer %d); the import DAG is types → matrix/compress → dist/hops → instructions/runtime → compiler → core",
					self, selfRank, dep, depRank)
			}
		}
	}
	return nil
}
