package analysis

import (
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

func suite(name string) string { return filepath.Join("testdata", "src", name) }

func TestMapOrder(t *testing.T) {
	runTestdata(t, []*Analyzer{MapOrderAnalyzer}, suite("maporder"))
}

func TestNoFMA(t *testing.T) {
	runTestdata(t, []*Analyzer{NoFMAAnalyzer}, suite("nofma"))
}

func TestThreadPlumb(t *testing.T) {
	runTestdata(t, []*Analyzer{ThreadPlumbAnalyzer}, suite("threadplumb"))
}

func TestLayering(t *testing.T) {
	runTestdata(t, []*Analyzer{LayeringAnalyzer}, suite("layering"))
}

func TestGoroutineErr(t *testing.T) {
	runTestdata(t, []*Analyzer{GoroutineErrAnalyzer}, suite("goroutineerr"))
}

func TestSpanEnd(t *testing.T) {
	runTestdata(t, []*Analyzer{SpanEndAnalyzer}, suite("spanend"))
}

// TestSuppressDirectives checks the //sysds:ok pipeline programmatically: a
// want comment cannot share a line with a directive (it would be parsed as
// the directive's reason), so the expectations live here instead.
func TestSuppressDirectives(t *testing.T) {
	fset := token.NewFileSet()
	srcs := parseTestdata(t, fset, suite("suppress"))
	diags := lintTestdata(t, fset, srcs, []*Analyzer{MapOrderAnalyzer})

	expect := []struct{ analyzer, substr string }{
		{SuppressAnalyzerName, "requires a written justification"},
		{SuppressAnalyzerName, `unknown analyzer "bogus"`},
		{MapOrderAnalyzer.Name, "accumulates floating-point"},
	}
	if len(diags) != len(expect) {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
		t.Fatalf("got %d diagnostics, want %d", len(diags), len(expect))
	}
	for _, e := range expect {
		found := false
		for _, d := range diags {
			if d.Analyzer == e.analyzer && strings.Contains(d.Message, e.substr) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %s diagnostic containing %q", e.analyzer, e.substr)
		}
	}
	// The surviving maporder finding must be the one under the bogus
	// directive (sumUnknown); the justified and reason-less directives both
	// suppress theirs.
	for _, d := range diags {
		if d.Analyzer == MapOrderAnalyzer.Name && d.Pos.Line < 40 {
			t.Errorf("maporder finding escaped a valid suppression: %s", d)
		}
	}
}
