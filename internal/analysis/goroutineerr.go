package analysis

import (
	"go/ast"
	"go/types"
)

// GoroutineErrAnalyzer flags goroutines in non-test code that drop errors.
// A goroutine has no caller to return to, so an error result silently
// discarded inside one vanishes without trace — the spawning code keeps
// going as if the work succeeded. Two shapes are flagged:
//
//   - `go f(…)` where f returns an error: the go statement discards every
//     result by construction;
//   - inside `go func() { … }()`, a call whose error result is implicitly
//     discarded (an expression statement).
//
// The sanctioned patterns all avoid both shapes: send the error on a
// channel, store it in a captured variable, or use an errgroup-style pool.
// An explicit blank assignment (`_ = f()`) is treated as a deliberate,
// visible discard and is not flagged.
var GoroutineErrAnalyzer = &Analyzer{
	Name: "goroutineerr",
	Doc: "flags goroutines that drop errors: `go f()` where f returns error, or " +
		"implicitly discarded error-returning calls inside goroutine bodies",
	Run: runGoroutineErr,
}

func runGoroutineErr(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				checkGoroutineBody(pass, lit.Body)
				return true
			}
			if returnsError(pass.TypesInfo.TypeOf(g.Call.Fun)) {
				pass.Reportf(g.Pos(), "goroutine drops the error returned by %s: capture it (channel, errgroup, or captured variable)", calleeName(g.Call))
			}
			return true
		})
	}
	return nil
}

// checkGoroutineBody flags implicitly discarded error results in a goroutine
// body, including bodies of function literals nested within it (they run on
// the same goroutine unless they are themselves go statements, which the
// outer walk visits separately).
func checkGoroutineBody(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			return false // nested goroutines are checked by the outer walk
		}
		stmt, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := stmt.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		if returnsError(pass.TypesInfo.TypeOf(call.Fun)) {
			pass.Reportf(call.Pos(), "goroutine drops the error returned by %s: capture it (channel, errgroup, or captured variable) or discard explicitly with _ =", calleeName(call))
		}
		return true
	})
}

// returnsError reports whether a callee type has an error among its results.
func returnsError(t types.Type) bool {
	if t == nil {
		return false
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			return true
		}
	}
	return false
}
