package analysis

import (
	"os/exec"
	"strings"
	"testing"
)

// TestRepoLintClean is the standing acceptance gate: the full sysdslint
// suite over the whole repository must report nothing. Any new violation —
// or an invalid //sysds:ok directive — fails the build here as well as in
// `make lint`.
func TestRepoLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks every package in the repository")
	}
	diags, err := Lint("../..", Analyzers(), "./...")
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestLayerMapCoversRepo keeps the layering analyzer honest: every internal
// package that exists must carry a layer rank, so a new package cannot slip
// into the tree unranked (imports of it would only be flagged at the
// importer, and only if the importer is itself ranked).
func TestLayerMapCoversRepo(t *testing.T) {
	cmd := exec.Command("go", "list", "./internal/...")
	cmd.Dir = "../.."
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("go list: %v", err)
	}
	for _, path := range strings.Fields(string(out)) {
		name := internalName(path)
		if name == "" {
			t.Errorf("package %s is under internal/ but internalName is empty", path)
			continue
		}
		if _, ok := layerRank[name]; !ok {
			t.Errorf("internal package %q has no layer rank: add it to layerRank in pkgs.go", name)
		}
	}
}
