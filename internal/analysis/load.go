package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	ImportMap  map[string]string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// exportTable resolves import paths to build-cache export data, shared by
// every type-check of one Load call so cross-package type identities agree.
type exportTable struct {
	mu      sync.Mutex
	exports map[string]string // import path -> export file
}

func (t *exportTable) lookup(path string) (io.ReadCloser, error) {
	t.mu.Lock()
	file, ok := t.exports[path]
	t.mu.Unlock()
	if !ok {
		// Lazy fallback for paths outside the eager -deps listing (the test
		// harness type-checks testdata packages whose stdlib imports are not
		// deps of the repository).
		out, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path).Output()
		if err != nil {
			return nil, fmt.Errorf("no export data for %q: %v", path, err)
		}
		file = strings.TrimSpace(string(out))
		if file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		t.mu.Lock()
		t.exports[path] = file
		t.mu.Unlock()
	}
	return os.Open(file)
}

// Load lists the packages matching the patterns (relative to dir, "" = cwd),
// parses their non-test Go files, and type-checks them. Imports — including
// sibling packages under analysis — are resolved through the build cache's
// export data produced by `go list -export`, so no package is type-checked
// more than once from source.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	table := &exportTable{exports: map[string]string{}}
	var targets []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list decode: %v", err)
		}
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			table.exports[p.ImportPath] = p.Export
		}
		for src, mapped := range p.ImportMap {
			if _, seen := table.exports[src]; !seen {
				if exp, ok := table.exports[mapped]; ok {
					table.exports[src] = exp
				}
			}
		}
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", table.lookup)
	var pkgs []*Package
	for _, t := range targets {
		pkg, err := checkPackage(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// checkPackage parses and type-checks one package from source.
func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		files = append(files, f)
	}
	info := newTypesInfo()
	conf := &types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Lint loads the packages matching the patterns and runs the analyzers over
// each, returning all surviving diagnostics.
func Lint(dir string, analyzers []*Analyzer, patterns ...string) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ds, err := RunAnalyzers(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	return diags, nil
}
