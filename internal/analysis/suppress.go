package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// SuppressAnalyzerName is the pseudo-analyzer that diagnostics about the
// suppression directives themselves are attributed to.
const SuppressAnalyzerName = "sysdsok"

// suppression is one parsed //sysds:ok(<analyzers>): <reason> directive.
type suppression struct {
	pos       token.Position
	analyzers []string // named analyzers, comma-separated in the directive
	reason    string
	// lines are the source lines (same file) the directive covers: its own
	// line for a trailing comment, plus the following line for a comment that
	// stands alone so it can annotate the statement beneath it.
	lines []int
}

var suppressRe = regexp.MustCompile(`^//sysds:ok\(([^)]*)\)\s*:?\s*(.*?)\s*$`)

// collectSuppressions parses all //sysds:ok directives of a package.
func collectSuppressions(fset *token.FileSet, files []*ast.File) []suppression {
	var sups []suppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := suppressRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				var names []string
				for _, n := range strings.Split(m[1], ",") {
					if n = strings.TrimSpace(n); n != "" {
						names = append(names, n)
					}
				}
				sups = append(sups, suppression{
					pos:       pos,
					analyzers: names,
					reason:    m[2],
					lines:     []int{pos.Line, pos.Line + 1},
				})
			}
		}
	}
	return sups
}

// applySuppressions drops diagnostics covered by a directive naming their
// analyzer. Directives with an empty reason still suppress — the missing
// justification surfaces as its own diagnostic via validateSuppressions, so
// the finding is not double-reported while the author writes the reason.
func (s *suppression) covers(d Diagnostic) bool {
	if s.pos.Filename != d.Pos.Filename {
		return false
	}
	lineOK := false
	for _, l := range s.lines {
		if l == d.Pos.Line {
			lineOK = true
		}
	}
	if !lineOK {
		return false
	}
	for _, a := range s.analyzers {
		if a == d.Analyzer {
			return true
		}
	}
	return false
}

func applySuppressions(diags []Diagnostic, sups []suppression) []Diagnostic {
	if len(sups) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		covered := false
		for i := range sups {
			if sups[i].covers(d) {
				covered = true
				break
			}
		}
		if !covered {
			kept = append(kept, d)
		}
	}
	return kept
}

// validateSuppressions reports directives that are not valid justifications:
// an empty reason, or an analyzer name the suite does not know.
func validateSuppressions(sups []suppression, known map[string]bool) []Diagnostic {
	var diags []Diagnostic
	for _, s := range sups {
		if len(s.analyzers) == 0 {
			diags = append(diags, Diagnostic{
				Pos:      s.pos,
				Analyzer: SuppressAnalyzerName,
				Message:  "sysds:ok directive names no analyzer",
			})
		}
		for _, a := range s.analyzers {
			if !known[a] {
				diags = append(diags, Diagnostic{
					Pos:      s.pos,
					Analyzer: SuppressAnalyzerName,
					Message:  "sysds:ok directive names unknown analyzer " + quote(a),
				})
			}
		}
		if s.reason == "" {
			diags = append(diags, Diagnostic{
				Pos:      s.pos,
				Analyzer: SuppressAnalyzerName,
				Message:  "sysds:ok suppression requires a written justification: //sysds:ok(<analyzer>): <reason>",
			})
		}
	}
	return diags
}

func quote(s string) string { return `"` + s + `"` }
