package analysis

import (
	"go/ast"
	"go/token"
)

// NoFMAAnalyzer forbids fused multiply-add in the kernel packages. The dense
// GEMM engine's bitwise contract (DESIGN.md) requires every product and
// every sum to round separately — the AVX2 micro-kernel deliberately emits
// VMULPD-then-VADDPD — so the scalar Go paths must not give the compiler
// license to fuse. The Go spec allows an implementation to fuse a
// floating-point multiply feeding an add/sub within one expression (and gc
// does on arm64/ppc64), which would make scalar results diverge from the
// assembly kernel and from amd64. Flagged shapes:
//
//   - calls to math.FMA (explicit fusion);
//   - x*y + z, z - x*y, and compound forms s += x*y / s -= x*y where the
//     product is not explicitly rounded.
//
// The sanctioned fix wraps the product in an explicit conversion —
// s += float64(x*y) — which the spec defines as a rounding point, forbidding
// fusion while compiling to nothing on targets without FMA.
var NoFMAAnalyzer = &Analyzer{
	Name: "nofma",
	Doc: "forbids math.FMA and fusible multiply-add expression shapes in kernel " +
		"packages (matrix, compress, dist); wrap products in float64(…) to force rounding",
	Run: runNoFMA,
}

func runNoFMA(pass *Pass) error {
	if !kernelPkgs[internalName(pass.PkgPath)] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				if sel, ok := e.Fun.(*ast.SelectorExpr); ok &&
					pkgNameOf(pass, sel.X) == "math" && sel.Sel.Name == "FMA" {
					pass.Reportf(e.Pos(), "math.FMA is forbidden in kernel packages: products and sums must round separately (bitwise kernel contract)")
				}
			case *ast.BinaryExpr:
				checkFusibleAdd(pass, e)
			case *ast.AssignStmt:
				if e.Tok == token.ADD_ASSIGN || e.Tok == token.SUB_ASSIGN {
					if isFloat(pass.TypesInfo.TypeOf(e.Lhs[0])) && isUnroundedProduct(pass, e.Rhs[0]) {
						pass.Reportf(e.Pos(), "fusible multiply-add: the compiler may contract %s into an FMA, breaking the bitwise kernel contract; write %s float64(…) to force rounding of the product",
							e.Tok.String(), e.Tok.String())
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkFusibleAdd flags float additions/subtractions with an unrounded
// product operand.
func checkFusibleAdd(pass *Pass, e *ast.BinaryExpr) {
	if e.Op != token.ADD && e.Op != token.SUB {
		return
	}
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || !isFloat(tv.Type) || tv.Value != nil { // constants fold exactly
		return
	}
	if isUnroundedProduct(pass, e.X) || isUnroundedProduct(pass, e.Y) {
		pass.Reportf(e.Pos(), "fusible multiply-add: the compiler may contract this expression into an FMA, breaking the bitwise kernel contract; wrap the product in float64(…) to force rounding")
	}
}

// isUnroundedProduct reports whether e is a floating-point multiplication
// whose result feeds the enclosing expression without an explicit rounding
// point (parentheses do not round; conversions do).
func isUnroundedProduct(pass *Pass, e ast.Expr) bool {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = p.X
	}
	mul, ok := e.(*ast.BinaryExpr)
	if !ok || mul.Op != token.MUL {
		return false
	}
	tv, ok := pass.TypesInfo.Types[mul]
	if !ok || !isFloat(tv.Type) || tv.Value != nil {
		return false
	}
	return true
}
