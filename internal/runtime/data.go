// Package runtime implements the control program of SystemDS-Go
// (Section 2.3 of the paper): runtime data objects (scalars, matrices backed
// by the buffer pool, frames, lists, federated matrices), the execution
// context with its symbol table, program blocks for control flow including
// the parfor backend, dynamic recompilation hooks, and the integration of
// lineage tracing and the lineage-based reuse cache into instruction
// execution.
package runtime

import (
	"fmt"
	"strconv"
	"sync"

	"github.com/systemds/systemds-go/internal/bufferpool"
	"github.com/systemds/systemds-go/internal/dist"
	"github.com/systemds/systemds-go/internal/fed"
	"github.com/systemds/systemds-go/internal/frame"
	sdsio "github.com/systemds/systemds-go/internal/io"
	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/obs"
	"github.com/systemds/systemds-go/internal/types"
)

// Data is the common interface of all runtime values held in the symbol
// table. Runtime values are treated as immutable: instructions always create
// new objects for their outputs, which keeps parfor workers, the lineage
// cache and the buffer pool safe without fine-grained locking.
type Data interface {
	DataType() types.DataType
	String() string
}

// Scalar is a scalar runtime value of one of the supported value types.
type Scalar struct {
	VT types.ValueType
	F  float64
	S  string
	B  bool
}

// NewDouble creates an FP64 scalar.
func NewDouble(v float64) *Scalar { return &Scalar{VT: types.FP64, F: v} }

// NewInt creates an INT64 scalar.
func NewInt(v int64) *Scalar { return &Scalar{VT: types.INT64, F: float64(v)} }

// NewBool creates a boolean scalar.
func NewBool(v bool) *Scalar {
	f := 0.0
	if v {
		f = 1
	}
	return &Scalar{VT: types.Boolean, B: v, F: f}
}

// NewString creates a string scalar.
func NewString(s string) *Scalar { return &Scalar{VT: types.String, S: s} }

// DataType returns types.Scalar.
func (s *Scalar) DataType() types.DataType { return types.Scalar }

// Float64 returns the numeric value of the scalar (parsing strings if
// necessary).
func (s *Scalar) Float64() float64 {
	if s.VT == types.String {
		v, err := strconv.ParseFloat(s.S, 64)
		if err != nil {
			return 0
		}
		return v
	}
	return s.F
}

// Int64 returns the value truncated to an integer.
func (s *Scalar) Int64() int64 { return int64(s.Float64()) }

// Bool returns the boolean interpretation of the scalar.
func (s *Scalar) Bool() bool {
	if s.VT == types.Boolean {
		return s.B
	}
	if s.VT == types.String {
		return s.S == "TRUE" || s.S == "true"
	}
	return s.F != 0
}

// StringValue returns the string rendering of the scalar value.
func (s *Scalar) StringValue() string {
	switch s.VT {
	case types.String:
		return s.S
	case types.Boolean:
		if s.B {
			return "TRUE"
		}
		return "FALSE"
	case types.INT64, types.INT32:
		return strconv.FormatInt(int64(s.F), 10)
	default:
		return strconv.FormatFloat(s.F, 'g', -1, 64)
	}
}

// String implements Data.
func (s *Scalar) String() string { return s.StringValue() }

// MatrixObject is the buffer-pool-backed handle of a matrix: it carries the
// data characteristics and either holds the block in memory or a reference to
// its spill file.
type MatrixObject struct {
	id        int64
	mu        sync.Mutex
	dc        types.DataCharacteristics
	block     *matrix.MatrixBlock
	spillPath string
	pool      *bufferpool.Pool
	// blocked memoizes the partitioned form of this object so named inputs
	// consumed by distributed operators in several DAGs partition once, not
	// once per DAG. Data objects are immutable — rebinding a variable creates
	// a new object — so the object identity IS the symbol-table entry's
	// version and the cache can never serve stale data. The memo is counted
	// in MemorySize (the pool is notified of the growth when it is stored)
	// and eviction drops it, so budget enforcement stays honest.
	blocked   *dist.BlockedMatrix
	blockedBS int
}

// NewMatrixObject wraps a matrix block into a managed matrix object and
// registers it with the pool (which may trigger evictions).
func NewMatrixObject(block *matrix.MatrixBlock, pool *bufferpool.Pool) *MatrixObject {
	mo := &MatrixObject{
		dc:    types.DataCharacteristics{Rows: int64(block.Rows()), Cols: int64(block.Cols()), Blocksize: types.DefaultBlocksize, NNZ: block.NNZ()},
		block: block,
		pool:  pool,
	}
	if pool != nil {
		mo.id = pool.NextID()
		pool.Register(mo)
	}
	return mo
}

// DataType returns types.Matrix.
func (m *MatrixObject) DataType() types.DataType { return types.Matrix }

// DataCharacteristics returns the matrix metadata without touching the data.
func (m *MatrixObject) DataCharacteristics() types.DataCharacteristics {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dc
}

// Acquire returns the in-memory matrix block, restoring it from the spill
// file if it was evicted by the buffer pool.
func (m *MatrixObject) Acquire() (*matrix.MatrixBlock, error) {
	m.mu.Lock()
	restored := false
	if m.block == nil {
		if m.spillPath == "" {
			m.mu.Unlock()
			return nil, fmt.Errorf("runtime: matrix object %d has neither data nor spill file", m.id)
		}
		sp := obs.Begin(obs.CatPool, "restore")
		blk, err := sdsio.ReadMatrixBinary(m.spillPath)
		if err != nil {
			sp.End()
			m.mu.Unlock()
			return nil, fmt.Errorf("runtime: restore evicted matrix: %w", err)
		}
		sp.EndBytes(blk.InMemorySize())
		m.block = blk
		restored = true
	}
	blk := m.block
	m.mu.Unlock()
	if m.pool != nil {
		m.pool.NotifyAccess(m, restored)
	}
	return blk, nil
}

// PoolID implements bufferpool.Entry.
func (m *MatrixObject) PoolID() int64 { return m.id }

// MemorySize implements bufferpool.Entry: the local block plus the memoized
// blocked form, if one is stored.
func (m *MatrixObject) MemorySize() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.block == nil {
		return 0
	}
	size := m.block.InMemorySize()
	if m.blocked != nil {
		size += m.blocked.InMemorySize()
	}
	return size
}

// Evict implements bufferpool.Entry: the block is written to the spill file
// and dropped from memory.
func (m *MatrixObject) Evict(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.block == nil {
		return nil
	}
	if err := sdsio.WriteMatrixBinary(path, m.block, types.DefaultBlocksize); err != nil {
		return err
	}
	m.spillPath = path
	m.block = nil
	m.blocked = nil
	return nil
}

// CachedBlocked returns the memoized partitioned form of the matrix for the
// given block size, if one was stored since the last eviction.
func (m *MatrixObject) CachedBlocked(blocksize int) (*dist.BlockedMatrix, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.blocked != nil && m.blockedBS == blocksize {
		return m.blocked, true
	}
	return nil, false
}

// StoreBlocked memoizes the partitioned form of the matrix so later
// distributed consumers of the same symbol-table entry reuse it, and reports
// the growth to the buffer pool so budget enforcement sees the copy. The
// first store wins: concurrent instructions racing to memoize the same input
// must notify the pool exactly once, and storing on an object the pool has
// already spilled is a no-op (the memo never outlives an eviction).
func (m *MatrixObject) StoreBlocked(bm *dist.BlockedMatrix, blocksize int) {
	m.mu.Lock()
	stored := false
	if m.block != nil && m.blocked == nil {
		m.blocked, m.blockedBS = bm, blocksize
		stored = true
	}
	m.mu.Unlock()
	if stored && m.pool != nil {
		m.pool.NotifyResize(m, bm.InMemorySize())
	}
}

// IsPinned implements bufferpool.Entry. Matrix data is immutable, so in-flight
// readers keep their own reference and eviction is always safe.
func (m *MatrixObject) IsPinned() bool { return false }

// IsInMemory implements bufferpool.Entry.
func (m *MatrixObject) IsInMemory() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.block != nil
}

// String implements Data.
func (m *MatrixObject) String() string {
	return fmt.Sprintf("Matrix%s", m.DataCharacteristics())
}

// FrameObject wraps a frame block.
type FrameObject struct {
	Frame *frame.FrameBlock
}

// NewFrameObject wraps a frame block.
func NewFrameObject(f *frame.FrameBlock) *FrameObject { return &FrameObject{Frame: f} }

// DataType returns types.Frame.
func (f *FrameObject) DataType() types.DataType { return types.Frame }

// String implements Data.
func (f *FrameObject) String() string { return f.Frame.String() }

// ListObject is an ordered, optionally named collection of runtime values
// (the DML list type used to pass around models and hyper-parameters).
type ListObject struct {
	Values []Data
	Names  []string
}

// NewListObject creates a list.
func NewListObject(values []Data, names []string) *ListObject {
	return &ListObject{Values: values, Names: names}
}

// DataType returns types.List.
func (l *ListObject) DataType() types.DataType { return types.List }

// String implements Data.
func (l *ListObject) String() string { return fmt.Sprintf("List[%d]", len(l.Values)) }

// Lookup returns the named element of the list.
func (l *ListObject) Lookup(name string) (Data, bool) {
	for i, n := range l.Names {
		if n == name && i < len(l.Values) {
			return l.Values[i], true
		}
	}
	return nil, false
}

// FederatedObject wraps a federated matrix so it can live in the symbol table
// like any other data object; federated instructions dispatch on it.
type FederatedObject struct {
	Fed *fed.FederatedMatrix
}

// NewFederatedObject wraps a federated matrix.
func NewFederatedObject(fm *fed.FederatedMatrix) *FederatedObject { return &FederatedObject{Fed: fm} }

// DataType returns types.Matrix (a federated matrix is a matrix to the
// compiler; only the runtime placement differs).
func (f *FederatedObject) DataType() types.DataType { return types.Matrix }

// DataCharacteristics returns the federated matrix metadata.
func (f *FederatedObject) DataCharacteristics() types.DataCharacteristics {
	return f.Fed.DataCharacteristics()
}

// String implements Data.
func (f *FederatedObject) String() string {
	return fmt.Sprintf("FederatedMatrix[%dx%d, %d ranges]", f.Fed.Rows, f.Fed.Cols, len(f.Fed.Ranges))
}

// SizeOf estimates the in-memory size of a runtime value in bytes (used by
// the reuse cache accounting).
func SizeOf(d Data) int64 {
	switch v := d.(type) {
	case *Scalar:
		return 64
	case *MatrixObject:
		return types.EstimateSize(v.DataCharacteristics())
	case *BlockedMatrixObject:
		return types.EstimateSize(v.DataCharacteristics())
	case *CompressedMatrixObject:
		return v.MemorySize()
	case *TransposedCompressedObject:
		return 64
	case *FrameObject:
		return int64(v.Frame.NumRows()*v.Frame.NumCols()) * 16
	case *ListObject:
		var s int64
		for _, e := range v.Values {
			s += SizeOf(e)
		}
		return s
	default:
		return 1024
	}
}
