package runtime

import (
	"os"
	"testing"

	"github.com/systemds/systemds-go/internal/dist"
	"github.com/systemds/systemds-go/internal/matrix"
)

func blockedTestMatrix(rows, cols int) *matrix.MatrixBlock {
	m := matrix.NewDense(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.Set(r, c, float64(r*cols+c))
		}
	}
	return m
}

func TestBlockedObjectSpillAndRestore(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.BufferPoolBudget = 40_000 // one 70x70 matrix (~39KB + overhead) at a time
	cfg.TempDir = dir
	ctx := NewContext(cfg)

	m := blockedTestMatrix(70, 70)
	bm, err := dist.FromMatrixBlock(m, 32)
	if err != nil {
		t.Fatal(err)
	}
	ctx.SetBlocked("B", bm)
	d, _ := ctx.Get("B")
	bo := d.(*BlockedMatrixObject)
	if !bo.IsInMemory() {
		t.Fatal("fresh blocked object should be in memory")
	}

	// registering another large object pushes the blocked object over budget
	ctx.SetMatrix("C", blockedTestMatrix(70, 70))
	if bo.IsInMemory() {
		t.Fatal("blocked object should have been evicted (per-block spill)")
	}
	files, _ := os.ReadDir(dir)
	if len(files) < 2 {
		t.Fatalf("expected one spill file per block, found %d files", len(files))
	}

	// lazy collect restores from the per-block spill files
	got, err := ctx.GetMatrixBlock("B")
	if err != nil {
		t.Fatalf("collect after spill: %v", err)
	}
	if !m.Equals(got, 0) {
		t.Error("restored blocked matrix differs from original")
	}
	if ctx.DistStats().Collects != 1 {
		t.Errorf("collects = %d, want 1", ctx.DistStats().Collects)
	}
	if ctx.Pool.Stats().Restores == 0 {
		t.Error("expected a recorded restore")
	}
}

func TestBlockedObjectDiscardRemovesSpillFiles(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.BufferPoolBudget = 40_000
	cfg.TempDir = dir
	ctx := NewContext(cfg)

	bm, err := dist.FromMatrixBlock(blockedTestMatrix(70, 70), 32)
	if err != nil {
		t.Fatal(err)
	}
	ctx.SetBlocked("B", bm)
	ctx.SetMatrix("C", blockedTestMatrix(70, 70)) // evicts B to disk
	files, _ := os.ReadDir(dir)
	if len(files) == 0 {
		t.Fatal("expected spill files before Remove")
	}
	ctx.Remove("B")
	files, _ = os.ReadDir(dir)
	if len(files) != 0 {
		t.Errorf("spill files leaked after Remove: %d left", len(files))
	}
}

func TestMergeResultsHandlesBlockedValues(t *testing.T) {
	ctx := NewContext(DefaultConfig())
	orig := blockedTestMatrix(6, 6)
	obm, err := dist.FromMatrixBlock(orig, 4)
	if err != nil {
		t.Fatal(err)
	}
	origData := NewBlockedMatrixObject(obm, ctx.Pool, nil)

	m1 := orig.Copy()
	m1.Set(0, 0, 999)
	bm1, _ := dist.FromMatrixBlock(m1, 4)
	w1 := workerResult{lastIter: 1, vars: map[string]Data{"R": NewBlockedMatrixObject(bm1, ctx.Pool, nil)}}
	m2 := orig.Copy()
	m2.Set(5, 5, -7)
	w2 := workerResult{lastIter: 2, vars: map[string]Data{"R": NewMatrixObject(m2, ctx.Pool)}}

	merged, err := mergeResults(ctx, "R", origData, []workerResult{w1, w2})
	if err != nil {
		t.Fatal(err)
	}
	if merged == nil {
		t.Fatal("blocked worker results were dropped by the merge")
	}
	blk, err := merged.(*MatrixObject).Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if blk.Get(0, 0) != 999 || blk.Get(5, 5) != -7 {
		t.Errorf("merged cells = %g, %g; want 999, -7", blk.Get(0, 0), blk.Get(5, 5))
	}
	if blk.Get(2, 3) != orig.Get(2, 3) {
		t.Error("unchanged cell modified by merge")
	}
}

func TestCollectMemoizesAndCountsOnce(t *testing.T) {
	ctx := NewContext(DefaultConfig())
	m := blockedTestMatrix(10, 10)
	bm, err := dist.FromMatrixBlock(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx.SetBlocked("B", bm)
	a, err := ctx.GetMatrixBlock("B")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx.GetMatrixBlock("B")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("repeated collects should return the memoized block")
	}
	if got := ctx.DistStats().Collects; got != 1 {
		t.Errorf("collects = %d, want 1 (memoized)", got)
	}
}

func TestBlockedObjectFlowsThroughSymbolTable(t *testing.T) {
	ctx := NewContext(DefaultConfig())
	bm, err := dist.FromMatrixBlock(blockedTestMatrix(10, 10), 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx.SetBlocked("B", bm)
	d, err := ctx.Get("B")
	if err != nil {
		t.Fatal(err)
	}
	bo, ok := d.(*BlockedMatrixObject)
	if !ok {
		t.Fatalf("symbol table holds %T, want *BlockedMatrixObject", d)
	}
	dc := bo.DataCharacteristics()
	if dc.Rows != 10 || dc.Cols != 10 || dc.Blocksize != 4 {
		t.Errorf("metadata = %+v", dc)
	}
	got, err := bo.Blocked()
	if err != nil {
		t.Fatal(err)
	}
	if got != bm {
		t.Error("Blocked() should hand back the partitioned representation without copying")
	}
	if SizeOf(bo) <= 0 {
		t.Error("SizeOf must account blocked objects")
	}
}

// TestRegionPartialRestore verifies that a region read of a spilled blocked
// object restores only the covering blocks from their per-block spill files,
// leaves the object spilled, and accounts restored-vs-skipped blocks on the
// buffer pool.
func TestRegionPartialRestore(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.BufferPoolBudget = 40_000
	cfg.TempDir = dir
	ctx := NewContext(cfg)

	m := blockedTestMatrix(70, 70) // 3x3 grid at blocksize 32 => 9 spill blocks
	bm, err := dist.FromMatrixBlock(m, 32)
	if err != nil {
		t.Fatal(err)
	}
	ctx.SetBlocked("B", bm)
	d, _ := ctx.Get("B")
	bo := d.(*BlockedMatrixObject)

	// the in-memory path needs no restore bookkeeping
	got, err := bo.Region(0, 10, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s := ctx.Pool.Stats(); s.BlocksRestored != 0 || s.BlocksSkipped != 0 {
		t.Errorf("in-memory region recorded restores: %+v", s)
	}

	ctx.SetMatrix("C", blockedTestMatrix(70, 70)) // evicts B to per-block spill
	if bo.IsInMemory() {
		t.Fatal("blocked object should have been evicted")
	}

	// a region inside the top-left block touches exactly one of nine blocks
	got, err = bo.Region(0, 10, 0, 10)
	if err != nil {
		t.Fatalf("partial restore: %v", err)
	}
	for r := 0; r < 10; r++ {
		for c := 0; c < 10; c++ {
			if got.Get(r, c) != m.Get(r, c) {
				t.Fatalf("restored region differs at (%d,%d)", r, c)
			}
		}
	}
	if bo.IsInMemory() {
		t.Error("partial restore must not promote the object back into memory")
	}
	s := ctx.Pool.Stats()
	if s.BlocksRestored != 1 || s.BlocksSkipped != 8 {
		t.Errorf("restored/skipped = %d/%d, want 1/8", s.BlocksRestored, s.BlocksSkipped)
	}

	// a region spanning the bottom-right boundary touches four blocks
	if _, err := bo.Region(40, 70, 40, 70); err != nil {
		t.Fatalf("boundary region: %v", err)
	}
	s = ctx.Pool.Stats()
	if s.BlocksRestored != 1+4 || s.BlocksSkipped != 8+5 {
		t.Errorf("restored/skipped = %d/%d, want 5/13", s.BlocksRestored, s.BlocksSkipped)
	}
}
