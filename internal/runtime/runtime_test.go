package runtime

import (
	"fmt"
	"sync/atomic"
	"testing"

	"github.com/systemds/systemds-go/internal/lineage"
	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/types"
)

func TestScalarValues(t *testing.T) {
	d := NewDouble(2.5)
	if d.Float64() != 2.5 || d.DataType() != types.Scalar || d.StringValue() != "2.5" {
		t.Error("double scalar wrong")
	}
	i := NewInt(7)
	if i.Int64() != 7 || i.StringValue() != "7" {
		t.Error("int scalar wrong")
	}
	b := NewBool(true)
	if !b.Bool() || b.Float64() != 1 || b.StringValue() != "TRUE" {
		t.Error("bool scalar wrong")
	}
	s := NewString("3.5")
	if s.Float64() != 3.5 || s.StringValue() != "3.5" {
		t.Error("string scalar wrong")
	}
	if NewString("true").Bool() != true || NewString("abc").Float64() != 0 {
		t.Error("string coercions wrong")
	}
}

func TestMatrixObjectAcquireAndEvict(t *testing.T) {
	ctx := NewContext(DefaultConfig())
	m := matrix.RandUniform(20, 10, -1, 1, 1.0, 1)
	mo := NewMatrixObject(m, ctx.Pool)
	blk, err := mo.Acquire()
	if err != nil || !blk.Equals(m, 0) {
		t.Fatalf("acquire: %v", err)
	}
	dc := mo.DataCharacteristics()
	if dc.Rows != 20 || dc.Cols != 10 {
		t.Errorf("dc = %v", dc)
	}
	// evict to a temp file and restore
	spill := t.TempDir() + "/spill.bin"
	if err := mo.Evict(spill); err != nil {
		t.Fatal(err)
	}
	if mo.IsInMemory() || mo.MemorySize() != 0 {
		t.Error("eviction did not drop in-memory data")
	}
	restored, err := mo.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if !restored.Equals(m, 0) {
		t.Error("restored block differs")
	}
	if !mo.IsInMemory() {
		t.Error("block should be back in memory")
	}
}

func TestContextSymbolTable(t *testing.T) {
	ctx := NewContext(DefaultConfig())
	ctx.Set("a", NewDouble(1))
	ctx.SetMatrix("M", matrix.NewDense(2, 2))
	if !ctx.Has("a") || !ctx.Has("M") || ctx.Has("z") {
		t.Error("Has wrong")
	}
	if _, err := ctx.GetScalar("a"); err != nil {
		t.Error(err)
	}
	if _, err := ctx.GetScalar("M"); err == nil {
		t.Error("expected type error")
	}
	if _, err := ctx.GetMatrixObject("M"); err != nil {
		t.Error(err)
	}
	if _, err := ctx.GetMatrixObject("a"); err == nil {
		t.Error("expected type error")
	}
	if _, err := ctx.GetMatrixBlock("a"); err != nil {
		t.Error("scalars should promote to 1x1 matrices")
	}
	if _, err := ctx.Get("zz"); err == nil {
		t.Error("expected missing variable error")
	}
	ctx.Remove("a")
	if ctx.Has("a") {
		t.Error("Remove failed")
	}
	if name := ctx.VariableByValue(NewDouble(99)); name != "" {
		t.Error("VariableByValue should miss")
	}
	d, _ := ctx.Get("M")
	if name := ctx.VariableByValue(d); name != "M" {
		t.Errorf("VariableByValue = %q", name)
	}
}

func TestContextChildSemantics(t *testing.T) {
	ctx := NewContext(DefaultConfig())
	ctx.Set("x", NewDouble(1))
	empty := ctx.ChildEmpty()
	if empty.Has("x") {
		t.Error("ChildEmpty should not inherit variables")
	}
	cp := ctx.ChildCopy()
	if !cp.Has("x") {
		t.Error("ChildCopy should inherit variables")
	}
	cp.Set("x", NewDouble(2))
	if v, _ := ctx.GetScalar("x"); v.Float64() != 1 {
		t.Error("child write leaked into parent")
	}
}

func TestCleanupTemporaries(t *testing.T) {
	ctx := NewContext(DefaultConfig())
	ctx.Set(TempPrefix+"1", NewDouble(1))
	ctx.Set("keep", NewDouble(2))
	ctx.CleanupTemporaries(TempPrefix)
	if ctx.Has(TempPrefix+"1") || !ctx.Has("keep") {
		t.Error("cleanup removed the wrong variables")
	}
}

// fakeInst is a scriptable instruction for runtime tests.
type fakeInst struct {
	opcode  string
	inputs  []string
	outputs []string
	data    string
	execute func(ctx *Context) error
	runs    atomic.Int64
}

func (f *fakeInst) Opcode() string      { return f.opcode }
func (f *fakeInst) Inputs() []string    { return f.inputs }
func (f *fakeInst) Outputs() []string   { return f.outputs }
func (f *fakeInst) LineageData() string { return f.data }
func (f *fakeInst) Execute(ctx *Context) error {
	f.runs.Add(1)
	return f.execute(ctx)
}

func TestExecuteInstructionLineageAndReuse(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReuseEnabled = true
	ctx := NewContext(cfg)
	ctx.SetMatrix("X", matrix.RandUniform(10, 4, -1, 1, 1.0, 2))
	inst := &fakeInst{
		opcode: "expensive", inputs: []string{"X"}, outputs: []string{"G"},
		execute: func(ctx *Context) error {
			blk, err := ctx.GetMatrixBlock("X")
			if err != nil {
				return err
			}
			ctx.SetMatrix("G", matrix.TSMM(blk, 1))
			return nil
		},
	}
	if err := ExecuteInstruction(ctx, inst); err != nil {
		t.Fatal(err)
	}
	if !ctx.Lineage.Has("G") {
		t.Error("output lineage not traced")
	}
	// identical re-execution is answered from the cache
	if err := ExecuteInstruction(ctx, inst); err != nil {
		t.Fatal(err)
	}
	if inst.runs.Load() != 1 {
		t.Errorf("instruction ran %d times, want 1 (second run reused)", inst.runs.Load())
	}
	if ctx.Cache.Stats().Hits != 1 {
		t.Errorf("cache stats = %+v", ctx.Cache.Stats())
	}
}

func TestExecuteInstructionNonCacheableOpcodes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReuseEnabled = true
	ctx := NewContext(cfg)
	inst := &fakeInst{
		opcode: "rand", outputs: []string{"R"},
		execute: func(ctx *Context) error {
			ctx.SetMatrix("R", matrix.RandUniform(2, 2, 0, 1, 1.0, 3))
			return nil
		},
	}
	_ = ExecuteInstruction(ctx, inst)
	_ = ExecuteInstruction(ctx, inst)
	if inst.runs.Load() != 2 {
		t.Errorf("rand should never be reused, ran %d times", inst.runs.Load())
	}
}

func TestBasicBlockExecutionAndCleanup(t *testing.T) {
	ctx := NewContext(DefaultConfig())
	bb := &BasicBlock{CleanupTemps: true, Instructions: []Instruction{
		&fakeInst{opcode: "a", outputs: []string{TempPrefix + "t1"}, execute: func(c *Context) error {
			c.Set(TempPrefix+"t1", NewDouble(5))
			return nil
		}},
		&fakeInst{opcode: "b", inputs: []string{TempPrefix + "t1"}, outputs: []string{"out"}, execute: func(c *Context) error {
			v, err := c.GetScalar(TempPrefix + "t1")
			if err != nil {
				return err
			}
			c.Set("out", NewDouble(v.Float64()*2))
			return nil
		}},
	}}
	if err := bb.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if v, _ := ctx.GetScalar("out"); v.Float64() != 10 {
		t.Errorf("out = %v", v)
	}
	if ctx.Has(TempPrefix + "t1") {
		t.Error("temporaries not cleaned up")
	}
}

func TestBasicBlockRecompile(t *testing.T) {
	ctx := NewContext(DefaultConfig())
	recompiled := false
	bb := &BasicBlock{
		RequiresRecompile: true,
		Recompile: func(c *Context) ([]Instruction, error) {
			recompiled = true
			return []Instruction{&fakeInst{opcode: "x", outputs: []string{"v"}, execute: func(c *Context) error {
				c.Set("v", NewDouble(42))
				return nil
			}}}, nil
		},
	}
	if err := bb.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if !recompiled {
		t.Error("recompile callback not invoked")
	}
	if v, _ := ctx.GetScalar("v"); v.Float64() != 42 {
		t.Error("recompiled instructions did not run")
	}
}

func TestIfWhileForBlocks(t *testing.T) {
	ctx := NewContext(DefaultConfig())
	setPred := func(name string, val bool) *BasicBlock {
		return &BasicBlock{Instructions: []Instruction{
			&fakeInst{opcode: "p", outputs: []string{name}, execute: func(c *Context) error {
				c.Set(name, NewBool(val))
				return nil
			}},
		}}
	}
	marker := func(name string, v float64) ProgramBlock {
		return &BasicBlock{Instructions: []Instruction{
			&fakeInst{opcode: "m", outputs: []string{name}, execute: func(c *Context) error {
				c.Set(name, NewDouble(v))
				return nil
			}},
		}}
	}
	ifb := &IfBlock{Predicate: setPred("_p1", true), PredVar: "_p1",
		Then: []ProgramBlock{marker("branch", 1)}, Else: []ProgramBlock{marker("branch", 2)}}
	if err := ifb.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if v, _ := ctx.GetScalar("branch"); v.Float64() != 1 {
		t.Error("then branch not taken")
	}
	ifb2 := &IfBlock{Predicate: setPred("_p2", false), PredVar: "_p2",
		Then: []ProgramBlock{marker("branch2", 1)}, Else: []ProgramBlock{marker("branch2", 2)}}
	_ = ifb2.Execute(ctx)
	if v, _ := ctx.GetScalar("branch2"); v.Float64() != 2 {
		t.Error("else branch not taken")
	}

	// for block over a generated sequence
	iter := &BasicBlock{Instructions: []Instruction{
		&fakeInst{opcode: "seq", outputs: []string{"_iter"}, execute: func(c *Context) error {
			c.SetMatrix("_iter", matrix.Seq(1, 4, 1))
			return nil
		}},
	}}
	ctx.Set("acc", NewDouble(0))
	body := &BasicBlock{Instructions: []Instruction{
		&fakeInst{opcode: "add", inputs: []string{"acc", "i"}, outputs: []string{"acc"}, execute: func(c *Context) error {
			a, _ := c.GetScalar("acc")
			i, _ := c.GetScalar("i")
			c.Set("acc", NewDouble(a.Float64()+i.Float64()))
			return nil
		}},
	}}
	fb := &ForBlock{Var: "i", Iterable: iter, IterVar: "_iter", Body: []ProgramBlock{body}}
	if err := fb.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if v, _ := ctx.GetScalar("acc"); v.Float64() != 10 {
		t.Errorf("for sum = %v", v)
	}

	// while block: count down from 3
	ctx.Set("n", NewDouble(3))
	pred := &BasicBlock{Instructions: []Instruction{
		&fakeInst{opcode: "gt", inputs: []string{"n"}, outputs: []string{"_w"}, execute: func(c *Context) error {
			n, _ := c.GetScalar("n")
			c.Set("_w", NewBool(n.Float64() > 0))
			return nil
		}},
	}}
	dec := &BasicBlock{Instructions: []Instruction{
		&fakeInst{opcode: "dec", inputs: []string{"n"}, outputs: []string{"n"}, execute: func(c *Context) error {
			n, _ := c.GetScalar("n")
			c.Set("n", NewDouble(n.Float64()-1))
			return nil
		}},
	}}
	wb := &WhileBlock{Predicate: pred, PredVar: "_w", Body: []ProgramBlock{dec}}
	if err := wb.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if v, _ := ctx.GetScalar("n"); v.Float64() != 0 {
		t.Errorf("while end value = %v", v)
	}
}

func TestWhileBlockIterationGuard(t *testing.T) {
	ctx := NewContext(DefaultConfig())
	pred := &BasicBlock{Instructions: []Instruction{
		&fakeInst{opcode: "true", outputs: []string{"_w"}, execute: func(c *Context) error {
			c.Set("_w", NewBool(true))
			return nil
		}},
	}}
	wb := &WhileBlock{Predicate: pred, PredVar: "_w", MaxIterations: 5}
	if err := wb.Execute(ctx); err == nil {
		t.Error("expected iteration guard error")
	}
}

func TestParForMergeMatrixResults(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Parallelism = 4
	ctx := NewContext(cfg)
	ctx.SetMatrix("R", matrix.NewDense(1, 6))
	iter := &BasicBlock{Instructions: []Instruction{
		&fakeInst{opcode: "seq", outputs: []string{"_it"}, execute: func(c *Context) error {
			c.SetMatrix("_it", matrix.Seq(1, 6, 1))
			return nil
		}},
	}}
	body := &BasicBlock{Instructions: []Instruction{
		&fakeInst{opcode: "set", inputs: []string{"R", "i"}, outputs: []string{"R"}, execute: func(c *Context) error {
			i, _ := c.GetScalar("i")
			blk, err := c.GetMatrixBlock("R")
			if err != nil {
				return err
			}
			updated := blk.Copy()
			updated.Set(0, int(i.Float64())-1, i.Float64()*i.Float64())
			c.SetMatrix("R", updated)
			return nil
		}},
	}}
	pf := &ForBlock{Var: "i", Iterable: iter, IterVar: "_it", Body: []ProgramBlock{body},
		Parallel: true, ResultVars: []string{"R"}}
	if err := pf.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	blk, _ := ctx.GetMatrixBlock("R")
	for i := 0; i < 6; i++ {
		want := float64((i + 1) * (i + 1))
		if blk.Get(0, i) != want {
			t.Errorf("R[0,%d] = %v, want %v", i, blk.Get(0, i), want)
		}
	}
}

func TestParForWorkerErrorPropagates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Parallelism = 2
	ctx := NewContext(cfg)
	iter := &BasicBlock{Instructions: []Instruction{
		&fakeInst{opcode: "seq", outputs: []string{"_it"}, execute: func(c *Context) error {
			c.SetMatrix("_it", matrix.Seq(1, 4, 1))
			return nil
		}},
	}}
	body := &BasicBlock{Instructions: []Instruction{
		&fakeInst{opcode: "boom", inputs: []string{"i"}, execute: func(c *Context) error {
			i, _ := c.GetScalar("i")
			if i.Float64() == 3 {
				return fmt.Errorf("worker failure at 3")
			}
			return nil
		}},
	}}
	pf := &ForBlock{Var: "i", Iterable: iter, IterVar: "_it", Body: []ProgramBlock{body}, Parallel: true}
	if err := pf.Execute(ctx); err == nil {
		t.Error("expected worker error to propagate")
	}
}

func TestFunctionBlockCall(t *testing.T) {
	ctx := NewContext(DefaultConfig())
	fb := &FunctionBlock{
		Name:    "addScaled",
		Params:  []FunctionParam{{Name: "a"}, {Name: "b"}, {Name: "f", Default: NewDouble(2)}},
		Returns: []string{"out"},
		Body: []ProgramBlock{&BasicBlock{Instructions: []Instruction{
			&fakeInst{opcode: "calc", inputs: []string{"a", "b", "f"}, outputs: []string{"out"}, execute: func(c *Context) error {
				a, _ := c.GetScalar("a")
				b, _ := c.GetScalar("b")
				f, _ := c.GetScalar("f")
				c.Set("out", NewDouble((a.Float64()+b.Float64())*f.Float64()))
				return nil
			}},
		}}},
	}
	outs, lins, err := fb.Call(ctx, []Data{NewDouble(1), NewDouble(2)}, nil,
		[]*lineage.Item{lineage.NewLiteral("1"), lineage.NewLiteral("2")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].(*Scalar).Float64() != 6 {
		t.Errorf("call result = %v", outs[0])
	}
	if lins[0] == nil {
		t.Error("missing output lineage")
	}
	// named arguments and overriding the default
	outs, _, err = fb.Call(ctx, []Data{NewDouble(1)}, map[string]Data{"b": NewDouble(3), "f": NewDouble(10)}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].(*Scalar).Float64() != 40 {
		t.Errorf("named call result = %v", outs[0])
	}
	// missing required argument
	if _, _, err := fb.Call(ctx, nil, nil, nil, nil); err == nil {
		t.Error("expected missing argument error")
	}
	// unknown named argument
	if _, _, err := fb.Call(ctx, []Data{NewDouble(1), NewDouble(2)}, map[string]Data{"zz": NewDouble(0)}, nil, nil); err == nil {
		t.Error("expected unknown parameter error")
	}
	// too many positional arguments
	if _, _, err := fb.Call(ctx, []Data{NewDouble(1), NewDouble(2), NewDouble(3), NewDouble(4)}, nil, nil, nil); err == nil {
		t.Error("expected too-many-arguments error")
	}
}

func TestListObjectAndSizeOf(t *testing.T) {
	lo := NewListObject([]Data{NewDouble(1), NewString("x")}, []string{"a", "b"})
	if lo.DataType() != types.List {
		t.Error("list data type wrong")
	}
	if v, ok := lo.Lookup("b"); !ok || v.(*Scalar).S != "x" {
		t.Error("lookup failed")
	}
	if _, ok := lo.Lookup("zzz"); ok {
		t.Error("lookup should miss")
	}
	if SizeOf(NewDouble(1)) != 64 {
		t.Error("scalar size wrong")
	}
	mo := NewMatrixObject(matrix.NewDense(10, 10), nil)
	if SizeOf(mo) <= 0 {
		t.Error("matrix size estimate wrong")
	}
	if SizeOf(lo) <= 0 {
		t.Error("list size estimate wrong")
	}
}
