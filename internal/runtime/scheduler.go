package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/systemds/systemds-go/internal/obs"
)

// This file implements the inter-operator DAG scheduler: instead of executing
// a basic block's instructions strictly in emission order, the block is
// treated as a dependency DAG over its instructions and independent
// instructions execute concurrently on a bounded worker pool (sized by
// Config.InterOpParallelism). Dependencies come from the compiler when it
// preserved the HOP DAG's producer/consumer edges (BasicBlock.Deps), or are
// re-derived from instruction variable names (RAW, WAR, WAW hazards plus
// ordering barriers for side-effecting opcodes) for recompiled blocks.

// SchedulerBarrierOpcodes are opcodes that act as full ordering barriers in
// the instruction dependency graph: side effects (console output, file I/O,
// variable removal) and function calls, whose bodies may contain arbitrary
// side effects, must observe every prior instruction and be observed by every
// later one, so sequential semantics (e.g. print ordering) are preserved.
var SchedulerBarrierOpcodes = map[string]bool{
	"print": true, "write": true, "read": true, "stop": true, "assert": true,
	"rmvar": true, "fcall": true,
}

// BuildDependencies derives the dependency lists of a straight-line
// instruction sequence from variable names: an instruction depends on the
// last writer of each variable it reads (RAW), a writer depends on all
// readers since the previous write (WAR) and on the previous writer (WAW),
// and barrier opcodes order against everything around them. The result has
// one deduplicated dependency list per instruction; executing instructions
// in any order consistent with these edges produces the same symbol-table
// state as sequential execution.
func BuildDependencies(instrs []Instruction) [][]int {
	t := NewDepTracker()
	for _, inst := range instrs {
		t.Add(inst, nil, SchedulerBarrierOpcodes[inst.Opcode()])
	}
	return t.Deps()
}

// DepTracker incrementally builds the dependency lists of an instruction
// sequence. The compiler feeds it during lowering, passing the exact
// producer/consumer edges preserved from the HOP DAG for each instruction;
// the tracker adds the variable-level hazards (RAW/WAR/WAW on named
// variables crossing DAG boundaries) and barrier ordering that the HOP DAG
// does not capture. BuildDependencies uses it with no exact edges as the
// name-only fallback.
type DepTracker struct {
	deps         [][]int
	lastWrite    map[string]int   // variable -> last instruction writing it
	readers      map[string][]int // variable -> readers since last write
	lastBarrier  int              // index of the last barrier instruction
	sinceBarrier []int            // instructions since the last barrier
}

// NewDepTracker creates an empty tracker.
func NewDepTracker() *DepTracker {
	return &DepTracker{lastWrite: map[string]int{}, readers: map[string][]int{}, lastBarrier: -1}
}

// Add records the next instruction of the sequence with optional exact
// dependency indices and whether it is an ordering barrier. Exact indices
// must be earlier positions in the same sequence; a forward or out-of-range
// index is a compiler bug and panics here rather than being dropped, which
// would silently under-constrain scheduled execution.
func (t *DepTracker) Add(inst Instruction, exact []int, barrier bool) {
	i := len(t.deps)
	set := newDepSet()
	for _, d := range exact {
		if d < 0 || d >= i {
			panic(fmt.Sprintf("runtime: instruction %d (%s) has non-topological exact dependency %d", i, inst.Opcode(), d))
		}
		set.add(d)
	}
	if t.lastBarrier >= 0 {
		set.add(t.lastBarrier)
	}
	for _, in := range inst.Inputs() {
		if w, ok := t.lastWrite[in]; ok {
			set.add(w)
		}
		t.readers[in] = append(t.readers[in], i)
	}
	for _, out := range inst.Outputs() {
		for _, r := range t.readers[out] {
			if r != i {
				set.add(r)
			}
		}
		if w, ok := t.lastWrite[out]; ok {
			set.add(w)
		}
		t.lastWrite[out] = i
		t.readers[out] = nil
	}
	if barrier {
		for _, j := range t.sinceBarrier {
			set.add(j)
		}
		t.lastBarrier = i
		t.sinceBarrier = t.sinceBarrier[:0]
	} else {
		t.sinceBarrier = append(t.sinceBarrier, i)
	}
	t.deps = append(t.deps, set.list)
}

// Deps returns the accumulated per-instruction dependency lists.
func (t *DepTracker) Deps() [][]int { return t.deps }

// depSet accumulates dependency indices without duplicates.
type depSet struct {
	seen map[int]bool
	list []int
}

func newDepSet() *depSet { return &depSet{seen: map[int]bool{}} }

func (s *depSet) add(i int) {
	if !s.seen[i] {
		s.seen[i] = true
		s.list = append(s.list, i)
	}
}

// ExecuteScheduled runs the instructions respecting the dependency lists,
// executing ready instructions concurrently on at most `workers` goroutines.
// Each instruction still goes through ExecuteInstruction, so lineage tracing
// and lineage-based reuse apply unchanged; instruction spans emitted by the
// workers are parented under the given block span (pass the zero Span when
// no block span is in scope). On error, no new instructions start executing,
// in-flight instructions finish, and the first error is returned.
func ExecuteScheduled(ctx *Context, instrs []Instruction, deps [][]int, workers int, blockSp obs.Span) error {
	n := len(instrs)
	if n == 0 {
		return nil
	}
	if len(deps) != n {
		return fmt.Errorf("runtime: scheduler called with %d instructions but %d dependency lists", n, len(deps))
	}
	if workers > n {
		workers = n
	}
	dependents := make([][]int, n)
	indeg := make([]int32, n)
	for i, ds := range deps {
		for _, d := range ds {
			if d < 0 || d >= n {
				return fmt.Errorf("runtime: instruction %d has out-of-range dependency %d", i, d)
			}
			if d >= i {
				return fmt.Errorf("runtime: instruction %d has non-topological dependency %d", i, d)
			}
			dependents[d] = append(dependents[d], i)
		}
		indeg[i] = int32(len(ds))
	}
	// every instruction passes through the ready channel exactly once, so a
	// buffer of n never blocks senders
	ready := make(chan int, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready <- i
		}
	}
	var (
		pending  int64 = int64(n)
		aborted  atomic.Bool
		errMu    sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	finish := func(i int) {
		for _, d := range dependents[i] {
			if atomic.AddInt32(&indeg[d], -1) == 0 {
				ready <- d
			}
		}
		if atomic.AddInt64(&pending, -1) == 0 {
			close(ready)
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ready {
				if !aborted.Load() {
					if err := executeInstructionSpanned(ctx, instrs[i], blockSp); err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						aborted.Store(true)
					}
				}
				// completed (or skipped after abort): release dependents so
				// the pipeline drains and the channel closes
				finish(i)
			}
		}()
	}
	wg.Wait()
	return firstErr
}
