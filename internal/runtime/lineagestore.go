package runtime

import (
	"bytes"
	"encoding/binary"
	"hash/fnv"
	"math"

	"github.com/systemds/systemds-go/internal/bufferpool"
	"github.com/systemds/systemds-go/internal/io"
	"github.com/systemds/systemds-go/internal/lineage"
	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/obs"
	"github.com/systemds/systemds-go/internal/types"
)

// PersistentLineageStore adapts a bufferpool.FileStore to the
// lineage.BackingStore interface: it owns the value codec (matrix blocks in
// the SDSB binary format, scalars in a small fixed encoding) while the file
// store owns budgets, eviction and corruption handling. This is the cross-run
// half of Section 3.1's lineage-based reuse — a second process pointed at the
// same directory reloads intermediates instead of recomputing them.
type PersistentLineageStore struct {
	files *bufferpool.FileStore
}

// payload kind tags, first byte of every encoded value.
const (
	payloadKindMatrix byte = 'M'
	payloadKindScalar byte = 'S'
)

// OpenPersistentLineage opens (creating if needed) a persistent lineage store
// rooted at dir under the given payload byte budget.
func OpenPersistentLineage(dir string, budgetBytes int64) (*PersistentLineageStore, error) {
	fs, err := bufferpool.OpenFileStore(dir, budgetBytes)
	if err != nil {
		return nil, err
	}
	return &PersistentLineageStore{files: fs}, nil
}

// Stats returns the underlying file-store statistics.
func (s *PersistentLineageStore) Stats() bufferpool.FileStoreStats {
	if s == nil {
		return bufferpool.FileStoreStats{}
	}
	return s.files.Stats()
}

// Lookup implements lineage.BackingStore: it decodes the persisted payload
// into a runtime data object. Undecodable payloads are dropped and reported
// as misses, mirroring the file store's corruption policy.
func (s *PersistentLineageStore) Lookup(hash uint64, key string) (any, int64, int64, bool) {
	sp := obs.Begin(obs.CatLineage, "get")
	value, size, computeNs, ok := s.lookup(hash, key)
	sp.EndBytes(size)
	return value, size, computeNs, ok
}

func (s *PersistentLineageStore) lookup(hash uint64, key string) (any, int64, int64, bool) {
	payload, computeNs, ok := s.files.Get(hash, key)
	if !ok {
		return nil, 0, 0, false
	}
	value, ok := decodeLineagePayload(payload)
	if !ok {
		s.files.Remove(hash)
		return nil, 0, 0, false
	}
	return value, int64(len(payload)), computeNs, true
}

// Persist implements lineage.BackingStore: encodable values are written
// through to the spill directory. Unsupported value kinds (frames, lists,
// compressed blocks) are skipped without error — they stay memory-only.
func (s *PersistentLineageStore) Persist(hash uint64, key string, value any, sizeBytes, computeNs int64) bool {
	payload, ok := encodeLineagePayload(value)
	if !ok {
		return false
	}
	sp := obs.Begin(obs.CatLineage, "put")
	err := s.files.Put(hash, key, payload, computeNs)
	sp.EndBytes(int64(len(payload)))
	return err == nil
}

// encodeLineagePayload serializes a runtime value. Matrix objects use the
// SDSB binary blocked format (bitwise-preserving float64 round trips, the
// property the reuse-on-vs-off acceptance test depends on); scalars use a
// one-byte value-type tag plus the value bits.
func encodeLineagePayload(value any) ([]byte, bool) {
	switch v := value.(type) {
	case *MatrixObject:
		blk, err := v.Acquire()
		if err != nil || blk == nil {
			return nil, false
		}
		var buf bytes.Buffer
		buf.WriteByte(payloadKindMatrix)
		if err := io.WriteMatrixBinaryTo(&buf, blk, 1024); err != nil {
			return nil, false
		}
		return buf.Bytes(), true
	case *Scalar:
		buf := make([]byte, 0, 16+len(v.S))
		buf = append(buf, payloadKindScalar, byte(v.VT))
		var bits [8]byte
		binary.LittleEndian.PutUint64(bits[:], math.Float64bits(v.F))
		buf = append(buf, bits[:]...)
		if v.B {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = append(buf, []byte(v.S)...)
		return buf, true
	default:
		return nil, false
	}
}

// decodeLineagePayload is the inverse of encodeLineagePayload.
func decodeLineagePayload(payload []byte) (any, bool) {
	if len(payload) == 0 {
		return nil, false
	}
	switch payload[0] {
	case payloadKindMatrix:
		blk, err := io.ReadMatrixBinaryFrom(bytes.NewReader(payload[1:]), "lineage-store")
		if err != nil {
			return nil, false
		}
		return NewMatrixObject(blk, nil), true
	case payloadKindScalar:
		if len(payload) < 11 {
			return nil, false
		}
		return &Scalar{
			VT: types.ValueType(payload[1]),
			F:  math.Float64frombits(binary.LittleEndian.Uint64(payload[2:10])),
			B:  payload[10] == 1,
			S:  string(payload[11:]),
		}, true
	default:
		return nil, false
	}
}

// Fingerprint returns a content hash of a runtime input value, used to key
// lineage leaves when persistence is on: a leaf named by content instead of
// by variable name cannot falsely match across processes when the caller
// rebinds the name to different data. Values without a cheap stable
// fingerprint report ok=false and must be keyed by a per-run nonce instead.
func Fingerprint(d Data) (uint64, bool) {
	switch v := d.(type) {
	case *MatrixObject:
		blk, err := v.Acquire()
		if err != nil || blk == nil {
			return 0, false
		}
		return fingerprintBlock(blk), true
	case *Scalar:
		h := fnv.New64a()
		var bits [8]byte
		binary.LittleEndian.PutUint64(bits[:], math.Float64bits(v.F))
		h.Write([]byte{byte(v.VT)})
		h.Write(bits[:])
		if v.B {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
		h.Write([]byte(v.S))
		return h.Sum64(), true
	default:
		return 0, false
	}
}

// fingerprintBlock hashes dimensions plus every cell's float bits in
// row-major order. Sparse blocks are read through Get so the block is not
// densified as a side effect (DenseValues converts in place).
func fingerprintBlock(blk *matrix.MatrixBlock) uint64 {
	h := fnv.New64a()
	var bits [8]byte
	binary.LittleEndian.PutUint64(bits[:], uint64(blk.Rows()))
	h.Write(bits[:])
	binary.LittleEndian.PutUint64(bits[:], uint64(blk.Cols()))
	h.Write(bits[:])
	if blk.IsSparse() {
		for r := 0; r < blk.Rows(); r++ {
			for c := 0; c < blk.Cols(); c++ {
				binary.LittleEndian.PutUint64(bits[:], math.Float64bits(blk.Get(r, c)))
				h.Write(bits[:])
			}
		}
		return h.Sum64()
	}
	for _, v := range blk.DenseValues() {
		binary.LittleEndian.PutUint64(bits[:], math.Float64bits(v))
		h.Write(bits[:])
	}
	return h.Sum64()
}

// compile-time interface check
var _ lineage.BackingStore = (*PersistentLineageStore)(nil)
