package runtime

import (
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"github.com/systemds/systemds-go/internal/bufferpool"
	"github.com/systemds/systemds-go/internal/compress"
	"github.com/systemds/systemds-go/internal/dist"
	"github.com/systemds/systemds-go/internal/hops"
	"github.com/systemds/systemds-go/internal/lineage"
	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/types"
)

// Config collects the runtime and compiler configuration of one SystemDS-Go
// session.
type Config struct {
	// Parallelism is the number of threads used by multi-threaded kernels and
	// parfor workers (0 = number of CPUs).
	Parallelism int
	// InterOpParallelism is the worker-pool size of the inter-operator DAG
	// scheduler: with a value > 1, independent instructions of a basic block
	// execute concurrently; values <= 1 keep the strictly sequential
	// instruction-list execution (the default). Predicate blocks always
	// execute sequentially regardless of this setting.
	InterOpParallelism int
	// OperatorMemBudget is the per-operator memory budget in bytes used for
	// CP-vs-distributed execution-type selection.
	OperatorMemBudget int64
	// BufferPoolBudget is the in-memory budget of the buffer pool in bytes
	// (0 disables eviction).
	BufferPoolBudget int64
	// LineageEnabled turns on lineage tracing.
	LineageEnabled bool
	// ReuseEnabled turns on lineage-based reuse of intermediates (requires
	// lineage tracing).
	ReuseEnabled bool
	// CacheBudget is the reuse-cache budget in bytes.
	CacheBudget int64
	// DistEnabled allows the compiler to select the blocked distributed
	// backend for large operations.
	DistEnabled bool
	// FusionDisabled turns off the HOP-level operator fusion pass (mmchain
	// and cellwise-aggregate pipelines). Fusion is on by default.
	FusionDisabled bool
	// CompressionEnabled turns on compressed linear algebra: the compiler
	// plants compression decision sites before loops that re-read large
	// operands, the runtime's sample-based planner picks per-column encodings
	// (or rejects), and supported operators execute directly on the
	// compressed representation.
	CompressionEnabled bool
	// DistBlocksize is the block size of the distributed backend.
	DistBlocksize int
	// UseBLAS selects the register-blocked "native BLAS" dense kernel for
	// matrix multiplications (SysDS-B in Figure 5(a)).
	UseBLAS bool
	// TempDir is the spill directory of the buffer pool.
	TempDir string
	// PersistentLineageDir, when non-empty, roots the cross-run persistent
	// lineage store: reuse-cache entries are written through to spill files
	// there and later processes reload them instead of recomputing. Implies
	// lineage tracing and reuse.
	PersistentLineageDir string
	// PersistentLineageBudget is the payload byte budget of the persistent
	// lineage store (0 = default).
	PersistentLineageBudget int64
	// Calib holds the per-opcode cost corrections learned from the
	// estimated-vs-actual plan history; consulted by the compiler's planner
	// and the runtime's late-bound strategy selection. Nil = uncalibrated.
	Calib *hops.Calibration
	// Profile is the measured machine profile used to price strategies in
	// seconds; the zero value keeps byte-count scoring.
	Profile hops.MachineProfile
	// TraceEnabled turns on the hierarchical span tracer (internal/obs) for
	// engine runs: instruction and kernel sub-phase spans are recorded and
	// surfaced as per-opcode heavy-hitter metrics, Chrome-trace export and
	// annotated EXPLAIN. Off by default; the disabled emit path is a single
	// atomic flag check with zero allocations.
	TraceEnabled bool
}

// DefaultConfig returns a local-execution configuration with lineage tracing
// enabled and reuse disabled.
func DefaultConfig() *Config {
	return &Config{
		Parallelism:        0,
		InterOpParallelism: 1,
		OperatorMemBudget:  2 << 30, // 2 GB
		BufferPoolBudget:   0,
		LineageEnabled:     true,
		ReuseEnabled:       false,
		CacheBudget:        1 << 30,
		DistEnabled:        false,
		DistBlocksize:      types.DefaultBlocksize,
		UseBLAS:            false,
		TempDir:            os.TempDir(),
	}
}

// Threads resolves the configured parallelism.
func (c *Config) Threads() int {
	if c.Parallelism <= 0 {
		return matrix.DefaultParallelism()
	}
	return c.Parallelism
}

// InterOpWorkers resolves the inter-operator scheduler pool size; any value
// <= 1 means sequential execution.
func (c *Config) InterOpWorkers() int {
	if c.InterOpParallelism <= 1 {
		return 1
	}
	return c.InterOpParallelism
}

// Context is the execution context of a control program: the symbol table of
// live variables, configuration, lineage tracer, reuse cache, buffer pool and
// the program being executed (for function call resolution).
type Context struct {
	Config  *Config
	Lineage *lineage.Tracer
	Cache   *lineage.Cache
	Pool    *bufferpool.Pool
	Prog    *Program
	Out     io.Writer

	mu   sync.RWMutex
	vars map[string]Data

	// dist holds the distributed-backend counters, shared across child
	// contexts (partition/collect/blocked-op accounting for one execution).
	dist *distCounters
	// fused holds the fused-operator hit counters, shared across child
	// contexts.
	fused *fusedCounters
	// plans records the executed physical-plan decisions, shared across child
	// contexts.
	plans *planRecorder
	// compressed holds the compressed-linear-algebra counters, shared across
	// child contexts.
	compressed *compressCounters
}

// NewContext creates a root execution context.
func NewContext(cfg *Config) *Context {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	ctx := &Context{
		Config:     cfg,
		Lineage:    lineage.NewTracer(),
		Pool:       bufferpool.New(cfg.BufferPoolBudget, cfg.TempDir),
		Out:        os.Stdout,
		vars:       map[string]Data{},
		dist:       &distCounters{},
		fused:      &fusedCounters{},
		plans:      &planRecorder{},
		compressed: &compressCounters{},
	}
	if cfg.ReuseEnabled || cfg.PersistentLineageDir != "" {
		ctx.Cache = lineage.NewCache(cfg.CacheBudget)
	} else {
		ctx.Cache = lineage.NewCache(0)
	}
	return ctx
}

// ChildEmpty creates a child context with an empty symbol table (function
// scopes); configuration, cache, pool, program and output are shared.
func (ctx *Context) ChildEmpty() *Context {
	return &Context{
		Config:     ctx.Config,
		Lineage:    lineage.NewTracer(),
		Cache:      ctx.Cache,
		Pool:       ctx.Pool,
		Prog:       ctx.Prog,
		Out:        ctx.Out,
		vars:       map[string]Data{},
		dist:       ctx.dist,
		fused:      ctx.fused,
		plans:      ctx.plans,
		compressed: ctx.compressed,
	}
}

// ChildCopy creates a child context with a copied symbol table (parfor
// workers); values are shared because they are immutable.
func (ctx *Context) ChildCopy() *Context {
	ctx.mu.RLock()
	vars := make(map[string]Data, len(ctx.vars))
	for k, v := range ctx.vars {
		vars[k] = v
	}
	ctx.mu.RUnlock()
	return &Context{
		Config:     ctx.Config,
		Lineage:    ctx.Lineage.Copy(),
		Cache:      ctx.Cache,
		Pool:       ctx.Pool,
		Prog:       ctx.Prog,
		Out:        ctx.Out,
		vars:       vars,
		dist:       ctx.dist,
		fused:      ctx.fused,
		plans:      ctx.plans,
		compressed: ctx.compressed,
	}
}

// DistStats returns a snapshot of the distributed-backend counters.
func (ctx *Context) DistStats() DistStats { return ctx.dist.snapshot() }

// CountDistPartition records a local-to-blocked repartition.
func (ctx *Context) CountDistPartition() {
	if ctx.dist != nil {
		ctx.dist.partitions.Add(1)
	}
}

// CountDistCollect records an eager blocked-to-local collect performed
// outside a BlockedMatrixObject (lazy collects count themselves).
func (ctx *Context) CountDistCollect() {
	if ctx.dist != nil {
		ctx.dist.collects.Add(1)
	}
}

// CountBlockedOp records one operator executed on the blocked backend.
func (ctx *Context) CountBlockedOp() {
	if ctx.dist != nil {
		ctx.dist.blockedOps.Add(1)
	}
}

// PlanStats returns the executed physical-plan records of this context tree,
// plus how many records were dropped once the recorder's cap was reached (so
// a missing record is distinguishable from an operator that never ran).
func (ctx *Context) PlanStats() ([]PlanRecord, int64) { return ctx.plans.snapshot() }

// RecordPlan records one executed physical-plan decision (opcode, plan
// string, compiler-estimated vs actual output bytes).
func (ctx *Context) RecordPlan(op, plan string, estBytes, actualBytes int64) {
	ctx.plans.add(PlanRecord{Op: op, Plan: plan, EstBytes: estBytes, ActualBytes: actualBytes})
}

// CompressStats returns a snapshot of the compressed-linear-algebra counters.
func (ctx *Context) CompressStats() CompressStats { return ctx.compressed.snapshot() }

// CountCompression records one accepted compression with its before/after
// byte sizes.
func (ctx *Context) CountCompression(uncompressedBytes, compressedBytes int64) {
	if ctx.compressed != nil {
		ctx.compressed.compressions.Add(1)
		ctx.compressed.bytesUncomp.Add(uncompressedBytes)
		ctx.compressed.bytesComp.Add(compressedBytes)
	}
}

// CountCompressionRejected records a compression attempt the sample-based
// planner rejected (estimated ratio below threshold).
func (ctx *Context) CountCompressionRejected() {
	if ctx.compressed != nil {
		ctx.compressed.rejected.Add(1)
	}
}

// CountCompressedOp records one operator executed directly on a compressed
// representation.
func (ctx *Context) CountCompressedOp() {
	if ctx.compressed != nil {
		ctx.compressed.compressedOps.Add(1)
	}
}

// FusedStats returns a snapshot of the fused-operator hit counters.
func (ctx *Context) FusedStats() FusedStats { return ctx.fused.snapshot() }

// CountMMChain records one executed fused mmchain instruction.
func (ctx *Context) CountMMChain() {
	if ctx.fused != nil {
		ctx.fused.mmchain.Add(1)
	}
}

// CountFusedAgg records one executed fused cellwise-aggregate instruction.
func (ctx *Context) CountFusedAgg() {
	if ctx.fused != nil {
		ctx.fused.fusedAgg.Add(1)
	}
}

// Set binds a variable to a value.
func (ctx *Context) Set(name string, d Data) {
	ctx.mu.Lock()
	ctx.vars[name] = d
	ctx.mu.Unlock()
}

// Get returns the value of a variable.
func (ctx *Context) Get(name string) (Data, error) {
	ctx.mu.RLock()
	d, ok := ctx.vars[name]
	ctx.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("runtime: variable %q is not defined", name)
	}
	return d, nil
}

// Has reports whether a variable is bound.
func (ctx *Context) Has(name string) bool {
	ctx.mu.RLock()
	_, ok := ctx.vars[name]
	ctx.mu.RUnlock()
	return ok
}

// Remove unbinds a variable.
func (ctx *Context) Remove(name string) {
	ctx.mu.Lock()
	d, ok := ctx.vars[name]
	delete(ctx.vars, name)
	ctx.mu.Unlock()
	if ok {
		if entry, pooled := d.(bufferpool.Entry); pooled && ctx.Pool != nil {
			// only unregister if no other variable references the object
			ctx.mu.RLock()
			shared := false
			for _, v := range ctx.vars {
				if v == d {
					shared = true
					break
				}
			}
			ctx.mu.RUnlock()
			if !shared {
				ctx.Pool.Unregister(entry.PoolID())
			}
		}
	}
}

// Variables returns the names of all bound variables in sorted order, so
// callers that print or walk the symbol table behave identically across runs.
func (ctx *Context) Variables() []string {
	ctx.mu.RLock()
	defer ctx.mu.RUnlock()
	names := make([]string, 0, len(ctx.vars))
	for k := range ctx.vars {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// VariableByValue returns the name of a variable bound to exactly this data
// object (used by partial-reuse compensation plans), or "" if none. When
// several variables alias the same object, the lexicographically smallest
// name wins, keeping compensation plans stable across runs.
func (ctx *Context) VariableByValue(d Data) string {
	ctx.mu.RLock()
	defer ctx.mu.RUnlock()
	names := make([]string, 0, len(ctx.vars))
	for k := range ctx.vars {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if ctx.vars[k] == d {
			return k
		}
	}
	return ""
}

// GetScalar returns a variable as a scalar.
func (ctx *Context) GetScalar(name string) (*Scalar, error) {
	d, err := ctx.Get(name)
	if err != nil {
		return nil, err
	}
	s, ok := d.(*Scalar)
	if !ok {
		return nil, fmt.Errorf("runtime: variable %q is a %s, expected a scalar", name, d.DataType())
	}
	return s, nil
}

// GetMatrixObject returns a variable as a (local) matrix object.
func (ctx *Context) GetMatrixObject(name string) (*MatrixObject, error) {
	d, err := ctx.Get(name)
	if err != nil {
		return nil, err
	}
	mo, ok := d.(*MatrixObject)
	if !ok {
		return nil, fmt.Errorf("runtime: variable %q is a %s, expected a matrix", name, d.DataType())
	}
	return mo, nil
}

// GetMatrixBlock returns a variable's matrix block, acquiring it through the
// buffer pool. Scalars are auto-promoted to 1x1 matrices, mirroring DML's
// implicit casting in matrix contexts.
func (ctx *Context) GetMatrixBlock(name string) (*matrix.MatrixBlock, error) {
	return ctx.GetMatrixBlockFor(name, "other")
}

// GetMatrixBlockFor is GetMatrixBlock with the consuming opcode recorded when
// the read forces a fallback decompression of a compressed variable.
func (ctx *Context) GetMatrixBlockFor(name, op string) (*matrix.MatrixBlock, error) {
	d, err := ctx.Get(name)
	if err != nil {
		return nil, err
	}
	switch v := d.(type) {
	case *MatrixObject:
		return v.Acquire()
	case *BlockedMatrixObject:
		// lazy collect: a CP consumer or sink actually needs the local block
		return v.Collect()
	case *CompressedMatrixObject:
		// transparent decompress fallback: a consumer without a compressed
		// kernel gets the local block; the (memoized) decompression is counted
		// per-opcode so the fallback is observable, and nothing breaks
		return v.DecompressFor(op)
	case *TransposedCompressedObject:
		return v.MaterializeFor(op)
	case *Scalar:
		m := matrix.NewDense(1, 1)
		m.Set(0, 0, v.Float64())
		return m, nil
	case *FederatedObject:
		return nil, fmt.Errorf("runtime: variable %q is federated; operation requires a local matrix", name)
	default:
		return nil, fmt.Errorf("runtime: variable %q is a %s, expected a matrix", name, d.DataType())
	}
}

// GetFrame returns a variable as a frame.
func (ctx *Context) GetFrame(name string) (*FrameObject, error) {
	d, err := ctx.Get(name)
	if err != nil {
		return nil, err
	}
	f, ok := d.(*FrameObject)
	if !ok {
		return nil, fmt.Errorf("runtime: variable %q is a %s, expected a frame", name, d.DataType())
	}
	return f, nil
}

// SetMatrix wraps a block into a matrix object and binds it.
func (ctx *Context) SetMatrix(name string, block *matrix.MatrixBlock) {
	ctx.Set(name, NewMatrixObject(block, ctx.Pool))
}

// SetBlocked wraps a blocked matrix into a first-class blocked object and
// binds it; downstream blocked operators consume it without re-partitioning.
func (ctx *Context) SetBlocked(name string, bm *dist.BlockedMatrix) {
	ctx.Set(name, NewBlockedMatrixObject(bm, ctx.Pool, ctx.dist))
}

// SetCompressed wraps a compressed matrix into a first-class compressed
// object and binds it; downstream compressed kernels consume it directly.
func (ctx *Context) SetCompressed(name string, cm *compress.CompressedMatrix) {
	ctx.Set(name, NewCompressedMatrixObject(cm, ctx.Pool, ctx.compressed))
}

// CleanupTemporaries removes temporary variables created by DAG lowering
// (names with the compiler's temporary prefix). Victims are removed in
// sorted order so buffer-pool unregistration and any cleanup-driven stats
// are identical across runs.
func (ctx *Context) CleanupTemporaries(prefix string) {
	ctx.mu.Lock()
	var victims []string
	for k := range ctx.vars {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			victims = append(victims, k)
		}
	}
	ctx.mu.Unlock()
	sort.Strings(victims)
	for _, v := range victims {
		ctx.Remove(v)
	}
}
