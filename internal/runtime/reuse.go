package runtime

import (
	"github.com/systemds/systemds-go/internal/lineage"
	"github.com/systemds/systemds-go/internal/matrix"
)

// tryPartialReuse attempts to answer an instruction from the reuse cache via
// a compensation plan over cached sub-results (Section 3.1: partial reuse).
// Two patterns cover the stepwise-linear-regression workload of Example 1,
// where each iteration trains on cbind(Xg, x_new):
//
//	tsmm(cbind(A, B))     = [[tsmm(A), t(A)%*%B], [t(B)%*%A, tsmm(B)]]
//	t(cbind(A, B)) %*% y  = rbind(t(A)%*%y, t(B)%*%y)
//
// When the result for the A-part is cached, only the (much cheaper) parts
// involving the newly added columns are computed.
func tryPartialReuse(ctx *Context, inst Instruction, inputItems []*lineage.Item, outItem *lineage.Item) (Data, bool) {
	switch inst.Opcode() {
	case "tsmm":
		return tryPartialTSMM(ctx, inst, inputItems)
	case "ba+*":
		return tryPartialMatMultOverCBind(ctx, inst, inputItems)
	default:
		return nil, false
	}
}

// tryPartialTSMM handles tsmm(X) where X was produced by cbind(A, B) and
// tsmm(A) is cached.
func tryPartialTSMM(ctx *Context, inst Instruction, inputItems []*lineage.Item) (Data, bool) {
	if len(inputItems) != 1 {
		return nil, false
	}
	cbindItem := inputItems[0]
	if cbindItem.Opcode != "cbind" || len(cbindItem.Inputs) != 2 {
		return nil, false
	}
	cachedAny, ok := ctx.Cache.Get(lineage.NewInstruction("tsmm", "", cbindItem.Inputs[0]))
	if !ok {
		return nil, false
	}
	cachedMO, ok := cachedAny.(*MatrixObject)
	if !ok {
		return nil, false
	}
	gramA, err := cachedMO.Acquire()
	if err != nil {
		return nil, false
	}
	// the full input X = cbind(A, B) is available as the instruction input
	x, err := ctx.GetMatrixBlockFor(inst.Inputs()[0], "reuse")
	if err != nil {
		return nil, false
	}
	k1 := gramA.Rows()
	if x.Cols() <= k1 {
		return nil, false
	}
	// Only the newly added columns B are materialized; the cross term
	// t(A) %*% B and the new block t(B) %*% B are both read off
	// t(B) %*% X = [t(B)%*%A, t(B)%*%B], avoiding any copy of the (large)
	// prefix A.
	b, err := matrix.Slice(x, 0, x.Rows(), k1, x.Cols())
	if err != nil {
		return nil, false
	}
	threads := ctx.Config.Threads()
	tbx, err := matrix.Multiply(matrix.Transpose(b), x, threads)
	if err != nil {
		return nil, false
	}
	bta, err := matrix.Slice(tbx, 0, tbx.Rows(), 0, k1)
	if err != nil {
		return nil, false
	}
	btb, err := matrix.Slice(tbx, 0, tbx.Rows(), k1, x.Cols())
	if err != nil {
		return nil, false
	}
	// assemble [[gramA, t(bta)], [bta, btb]]
	n := x.Cols()
	out := matrix.NewDense(n, n)
	out, err = matrix.LeftIndex(out, gramA, 0, k1, 0, k1)
	if err != nil {
		return nil, false
	}
	out, err = matrix.LeftIndex(out, matrix.Transpose(bta), 0, k1, k1, n)
	if err != nil {
		return nil, false
	}
	out, err = matrix.LeftIndex(out, bta, k1, n, 0, k1)
	if err != nil {
		return nil, false
	}
	out, err = matrix.LeftIndex(out, btb, k1, n, k1, n)
	if err != nil {
		return nil, false
	}
	return NewMatrixObject(out, ctx.Pool), true
}

// tryPartialMatMultOverCBind handles t(cbind(A, B)) %*% y when
// t(A) %*% y is cached: the missing rows are t(B) %*% y.
func tryPartialMatMultOverCBind(ctx *Context, inst Instruction, inputItems []*lineage.Item) (Data, bool) {
	if len(inputItems) != 2 {
		return nil, false
	}
	left, yItem := inputItems[0], inputItems[1]
	if left.Opcode != "r'" || len(left.Inputs) != 1 {
		return nil, false
	}
	cbindItem := left.Inputs[0]
	if cbindItem.Opcode != "cbind" || len(cbindItem.Inputs) != 2 {
		return nil, false
	}
	cachedItem := lineage.NewInstruction("ba+*", "",
		lineage.NewInstruction("r'", "", cbindItem.Inputs[0]), yItem)
	cachedAny, ok := ctx.Cache.Get(cachedItem)
	if !ok {
		return nil, false
	}
	cachedMO, ok := cachedAny.(*MatrixObject)
	if !ok {
		return nil, false
	}
	aty, err := cachedMO.Acquire()
	if err != nil {
		return nil, false
	}
	// inputs: t(cbind(A,B)) and y are instruction input variables
	ins := inst.Inputs()
	if len(ins) != 2 {
		return nil, false
	}
	tx, err := ctx.GetMatrixBlockFor(ins[0], "reuse")
	if err != nil {
		return nil, false
	}
	y, err := ctx.GetMatrixBlockFor(ins[1], "reuse")
	if err != nil {
		return nil, false
	}
	k1 := aty.Rows()
	if tx.Rows() <= k1 {
		return nil, false
	}
	// rows k1..end of t(X) are t(B)
	tb, err := matrix.Slice(tx, k1, tx.Rows(), 0, tx.Cols())
	if err != nil {
		return nil, false
	}
	bty, err := matrix.Multiply(tb, y, ctx.Config.Threads())
	if err != nil {
		return nil, false
	}
	out, err := matrix.RBind(aty, bty)
	if err != nil {
		return nil, false
	}
	return NewMatrixObject(out, ctx.Pool), true
}
