package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/systemds/systemds-go/internal/bufferpool"
	"github.com/systemds/systemds-go/internal/compress"
	"github.com/systemds/systemds-go/internal/dist"
	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/obs"
	"github.com/systemds/systemds-go/internal/types"
)

// CompressStats is a snapshot of the compressed-linear-algebra counters of
// one context tree: how many matrices were compressed (and how many the
// sample-based planner rejected), how many operators executed directly on the
// compressed representation, and how often an unsupported operator fell back
// to transparent decompression. An iterative workload on the compressed hot
// path should show compressions and compressed ops but zero decompressions.
type CompressStats struct {
	Compressions      int64
	Rejected          int64
	CompressedOps     int64
	Decompressions    int64
	BytesUncompressed int64
	BytesCompressed   int64
	// DecompressionsByOp attributes each fallback decompression to the opcode
	// (or runtime site label, e.g. "output") that triggered it, so a workload
	// that is NOT fully on the compressed path shows exactly which operators
	// forced materialization.
	DecompressionsByOp map[string]int64
}

// compressCounters is the shared mutable counter state behind CompressStats;
// child contexts share their parent's counters.
type compressCounters struct {
	compressions   atomic.Int64
	rejected       atomic.Int64
	compressedOps  atomic.Int64
	decompressions atomic.Int64
	bytesUncomp    atomic.Int64
	bytesComp      atomic.Int64

	mu         sync.Mutex
	decompByOp map[string]int64
}

// countDecompression records one fallback decompression attributed to op.
func (c *compressCounters) countDecompression(op string) {
	if c == nil {
		return
	}
	if op == "" {
		op = "other"
	}
	c.decompressions.Add(1)
	c.mu.Lock()
	if c.decompByOp == nil {
		c.decompByOp = map[string]int64{}
	}
	c.decompByOp[op]++
	c.mu.Unlock()
}

func (c *compressCounters) snapshot() CompressStats {
	if c == nil {
		return CompressStats{}
	}
	s := CompressStats{
		Compressions:      c.compressions.Load(),
		Rejected:          c.rejected.Load(),
		CompressedOps:     c.compressedOps.Load(),
		Decompressions:    c.decompressions.Load(),
		BytesUncompressed: c.bytesUncomp.Load(),
		BytesCompressed:   c.bytesComp.Load(),
	}
	c.mu.Lock()
	if len(c.decompByOp) > 0 {
		s.DecompressionsByOp = make(map[string]int64, len(c.decompByOp))
		for op, n := range c.decompByOp {
			s.DecompressionsByOp[op] = n
		}
	}
	c.mu.Unlock()
	return s
}

// CompressedMatrixObject is the first-class runtime handle of a column-group
// compressed matrix: it flows through the symbol table like any other matrix
// value, supported operators execute directly on the compressed groups, and
// unsupported consumers decompress transparently (counted, memoized). The
// object participates in the buffer pool; eviction spills the *compressed*
// bytes, never a decompressed cell image.
type CompressedMatrixObject struct {
	id        int64
	mu        sync.Mutex
	dc        types.DataCharacteristics
	cm        *compress.CompressedMatrix // nil when spilled
	spillPath string
	// local memoizes the decompressed form so repeated fallback consumers of
	// the same compressed variable pay (and count) the decompression once. It
	// is a reader-held view like BlockedMatrixObject's collect memo: not part
	// of MemorySize, dropped on eviction.
	local *matrix.MatrixBlock
	// part memoizes the row-range compressed partitioning used by the dist
	// executors (dictionaries shared with cm), keyed by partition size;
	// dropped on eviction together with cm.
	part     *dist.CompressedBlocked
	partSize int
	pool     *bufferpool.Pool
	ctr      *compressCounters
}

// NewCompressedMatrixObject wraps a compressed matrix into a managed object
// and registers it with the buffer pool. The counters may be nil.
func NewCompressedMatrixObject(cm *compress.CompressedMatrix, pool *bufferpool.Pool, ctr *compressCounters) *CompressedMatrixObject {
	co := &CompressedMatrixObject{
		dc: types.DataCharacteristics{
			Rows: int64(cm.Rows()), Cols: int64(cm.Cols()),
			Blocksize: types.DefaultBlocksize, NNZ: cm.NNZ(),
		},
		cm:   cm,
		pool: pool,
		ctr:  ctr,
	}
	if pool != nil {
		co.id = pool.NextID()
		pool.Register(co)
	}
	return co
}

// DataType returns types.Matrix: a compressed matrix is a matrix to the
// compiler; only the runtime representation differs.
func (c *CompressedMatrixObject) DataType() types.DataType { return types.Matrix }

// DataCharacteristics returns the matrix metadata without touching the data.
func (c *CompressedMatrixObject) DataCharacteristics() types.DataCharacteristics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dc
}

// String implements Data.
func (c *CompressedMatrixObject) String() string {
	dc := c.DataCharacteristics()
	return fmt.Sprintf("CompressedMatrix[%dx%d]", dc.Rows, dc.Cols)
}

// Compressed returns the in-memory compressed matrix, restoring it from the
// spill file if the object was evicted.
func (c *CompressedMatrixObject) Compressed() (*compress.CompressedMatrix, error) {
	c.mu.Lock()
	restored := false
	if c.cm == nil {
		if c.spillPath == "" {
			c.mu.Unlock()
			return nil, fmt.Errorf("runtime: compressed matrix object %d has neither data nor spill file", c.id)
		}
		cm, err := compress.ReadFile(c.spillPath)
		if err != nil {
			c.mu.Unlock()
			return nil, fmt.Errorf("runtime: restore evicted compressed matrix: %w", err)
		}
		c.cm = cm
		restored = true
	}
	cm := c.cm
	c.mu.Unlock()
	if c.pool != nil {
		c.pool.NotifyAccess(c, restored)
	}
	return cm, nil
}

// Decompress materializes the local block — the transparent fallback for
// consumers without a compressed kernel. The block is memoized so only the
// first consumer pays (and counts) the decompression.
func (c *CompressedMatrixObject) Decompress() (*matrix.MatrixBlock, error) {
	return c.DecompressFor("other")
}

// DecompressFor is Decompress with the triggering opcode (or site label)
// recorded in the per-opcode decompression counters. Only the consumer that
// wins the memoization race is charged — repeated fallback reads of the same
// variable count once, against the first opcode that needed the block.
func (c *CompressedMatrixObject) DecompressFor(op string) (*matrix.MatrixBlock, error) {
	c.mu.Lock()
	if c.local != nil {
		blk := c.local
		c.mu.Unlock()
		return blk, nil
	}
	c.mu.Unlock()
	cm, err := c.Compressed()
	if err != nil {
		return nil, err
	}
	sp := obs.Begin(obs.CatCompress, "decompress")
	blk := cm.Decompress()
	sp.EndBytes(blk.InMemorySize())
	won := false
	c.mu.Lock()
	if c.local == nil {
		c.local = blk
		won = true
	}
	blk = c.local
	c.mu.Unlock()
	if won {
		c.ctr.countDecompression(op)
	}
	return blk, nil
}

// Partitioned returns the row-range compressed partitioning of this object
// for the dist executors, memoized per partition size. The compressed matrix
// never decompresses: every partition shares the source dictionaries and
// re-bases only codes, runs and positions.
func (c *CompressedMatrixObject) Partitioned(rowsPerPart int) (*dist.CompressedBlocked, error) {
	c.mu.Lock()
	if c.part != nil && c.partSize == rowsPerPart {
		p := c.part
		c.mu.Unlock()
		return p, nil
	}
	c.mu.Unlock()
	cm, err := c.Compressed()
	if err != nil {
		return nil, err
	}
	p, err := dist.PartitionCompressed(cm, rowsPerPart)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.part == nil || c.partSize != rowsPerPart {
		c.part, c.partSize = p, rowsPerPart
	}
	p = c.part
	c.mu.Unlock()
	return p, nil
}

// CountCompressedOp records one operator executed directly on the compressed
// representation of this object.
func (c *CompressedMatrixObject) CountCompressedOp() {
	if c.ctr != nil {
		c.ctr.compressedOps.Add(1)
	}
}

// PoolID implements bufferpool.Entry.
func (c *CompressedMatrixObject) PoolID() int64 { return c.id }

// MemorySize implements bufferpool.Entry.
func (c *CompressedMatrixObject) MemorySize() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cm == nil {
		return 0
	}
	return c.cm.InMemorySize()
}

// Evict implements bufferpool.Entry: the compressed bytes are written to the
// spill file — the compressed form is what hits disk — and both the
// compressed matrix and any decompression memo are dropped from memory.
func (c *CompressedMatrixObject) Evict(path string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cm == nil {
		return nil
	}
	if err := c.cm.WriteFile(path); err != nil {
		return err
	}
	c.spillPath = path
	c.cm = nil
	c.local = nil
	c.part = nil
	return nil
}

// IsPinned implements bufferpool.Entry. Compressed matrices are immutable, so
// in-flight readers keep their own reference and eviction is always safe.
func (c *CompressedMatrixObject) IsPinned() bool { return false }

// IsInMemory implements bufferpool.Entry.
func (c *CompressedMatrixObject) IsInMemory() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cm != nil
}

// TransposedCompressedObject marks the transpose of a compressed matrix in
// the symbol table without materializing it: t(X) %*% v on compressed X is
// the vector-matrix kernel over X itself (the hot gradient step of iterative
// algorithms), so the transpose stays a zero-cost view on the compressed
// groups. Consumers without a compressed kernel decompress the source and
// transpose, via GetMatrixBlock's fallback.
type TransposedCompressedObject struct {
	Source *CompressedMatrixObject

	mu sync.Mutex
	// local memoizes the materialized transpose so repeated fallback
	// consumers of the same view pay the O(m*n) transpose once (the
	// decompression of the source is memoized there separately).
	local *matrix.MatrixBlock
}

// Materialize returns the transposed local block — the fallback for
// consumers without a compressed kernel — memoized on the view.
func (t *TransposedCompressedObject) Materialize() (*matrix.MatrixBlock, error) {
	return t.MaterializeFor("other")
}

// MaterializeFor is Materialize with the triggering opcode recorded in the
// per-opcode decompression counters (attribution happens on the source's
// memoized decompression).
func (t *TransposedCompressedObject) MaterializeFor(op string) (*matrix.MatrixBlock, error) {
	t.mu.Lock()
	if t.local != nil {
		blk := t.local
		t.mu.Unlock()
		return blk, nil
	}
	t.mu.Unlock()
	blk, err := t.Source.DecompressFor(op)
	if err != nil {
		return nil, err
	}
	tr := matrix.Transpose(blk)
	t.mu.Lock()
	if t.local == nil {
		t.local = tr
	}
	tr = t.local
	t.mu.Unlock()
	return tr, nil
}

// DataType implements Data.
func (t *TransposedCompressedObject) DataType() types.DataType { return types.Matrix }

// DataCharacteristics returns the transposed metadata.
func (t *TransposedCompressedObject) DataCharacteristics() types.DataCharacteristics {
	dc := t.Source.DataCharacteristics()
	return types.DataCharacteristics{Rows: dc.Cols, Cols: dc.Rows, Blocksize: dc.Blocksize, NNZ: dc.NNZ}
}

// String implements Data.
func (t *TransposedCompressedObject) String() string {
	return fmt.Sprintf("t(%s)", t.Source.String())
}
