package runtime

import "sync"

// PlanRecord reports one executed physical-plan decision of the cost-based
// planner: the instruction opcode, the plan string chosen at compile time
// (e.g. "br", "gj", "sh" for matmult strategies), the compiler's estimated
// output bytes (-1 when the sizes were unknown at compile time) and the bytes
// the operator actually produced. The records let tests and users audit that
// the plan named by ExplainPlan is the plan that executed, and how far the
// estimates were off.
type PlanRecord struct {
	Op          string
	Plan        string
	EstBytes    int64
	ActualBytes int64
}

// planRecordCap bounds the recorder: the records are an audit sample, not an
// event log, so iterative workloads executing thousands of distributed
// operators keep O(1)-bounded memory. Records past the cap are counted but
// not stored.
const planRecordCap = 4096

// planRecorder is the shared mutable state behind PlanStats; child contexts
// share their parent's recorder (like the dist and fused counters).
type planRecorder struct {
	mu      sync.Mutex
	records []PlanRecord
	dropped int64
}

func (p *planRecorder) add(r PlanRecord) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if len(p.records) < planRecordCap {
		p.records = append(p.records, r)
	} else {
		p.dropped++
	}
	p.mu.Unlock()
}

func (p *planRecorder) snapshot() ([]PlanRecord, int64) {
	if p == nil {
		return nil, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]PlanRecord, len(p.records))
	copy(out, p.records)
	return out, p.dropped
}
