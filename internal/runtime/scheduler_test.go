package runtime

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/obs"
)

func depsOf(t *testing.T, deps [][]int, i int) map[int]bool {
	t.Helper()
	set := map[int]bool{}
	for _, d := range deps[i] {
		set[d] = true
	}
	return set
}

func TestBuildDependenciesRAW(t *testing.T) {
	instrs := []Instruction{
		&fakeInst{opcode: "rand", outputs: []string{"A"}},
		&fakeInst{opcode: "rand", outputs: []string{"B"}},
		&fakeInst{opcode: "ba+*", inputs: []string{"A", "B"}, outputs: []string{"C"}},
	}
	deps := BuildDependencies(instrs)
	if len(deps[0]) != 0 || len(deps[1]) != 0 {
		t.Errorf("independent producers must have no deps, got %v %v", deps[0], deps[1])
	}
	got := depsOf(t, deps, 2)
	if !got[0] || !got[1] {
		t.Errorf("consumer must depend on both producers, got %v", deps[2])
	}
}

func TestBuildDependenciesWARAndWAW(t *testing.T) {
	instrs := []Instruction{
		&fakeInst{opcode: "rand", outputs: []string{"X"}},                        // 0: write X
		&fakeInst{opcode: "uak+", inputs: []string{"X"}, outputs: []string{"s"}}, // 1: read X
		&fakeInst{opcode: "rand", outputs: []string{"X"}},                        // 2: overwrite X
	}
	deps := BuildDependencies(instrs)
	got := depsOf(t, deps, 2)
	if !got[1] {
		t.Errorf("WAR: overwrite of X must wait for its reader, got %v", deps[2])
	}
	if !got[0] {
		t.Errorf("WAW: overwrite of X must wait for the previous writer, got %v", deps[2])
	}
}

func TestBuildDependenciesBarriers(t *testing.T) {
	instrs := []Instruction{
		&fakeInst{opcode: "rand", outputs: []string{"A"}},
		&fakeInst{opcode: "print", inputs: []string{"A"}},
		&fakeInst{opcode: "rand", outputs: []string{"B"}},
		&fakeInst{opcode: "print", inputs: []string{"B"}},
	}
	deps := BuildDependencies(instrs)
	if !depsOf(t, deps, 1)[0] {
		t.Errorf("barrier must wait for prior instructions, got %v", deps[1])
	}
	if !depsOf(t, deps, 2)[1] {
		t.Errorf("instruction after barrier must wait for it, got %v", deps[2])
	}
	if !depsOf(t, deps, 3)[2] || !depsOf(t, deps, 3)[1] {
		t.Errorf("second barrier must order after first barrier and later work, got %v", deps[3])
	}
}

// TestExecuteScheduledMatchesSequential runs the same block sequentially and
// scheduled and requires identical symbol tables.
func TestExecuteScheduledMatchesSequential(t *testing.T) {
	mkBlock := func() []Instruction {
		var instrs []Instruction
		// 8 independent chains, each: init -> square -> add-one
		for k := 0; k < 8; k++ {
			base := fmt.Sprintf("v%d", k)
			seed := float64(k + 1)
			instrs = append(instrs,
				&fakeInst{opcode: "init", outputs: []string{base}, data: fmt.Sprintf("%g", seed),
					execute: func(c *Context) error { c.Set(base, NewDouble(seed)); return nil }},
				&fakeInst{opcode: "sq", inputs: []string{base}, outputs: []string{base + "sq"},
					execute: func(c *Context) error {
						s, err := c.GetScalar(base)
						if err != nil {
							return err
						}
						c.Set(base+"sq", NewDouble(s.Float64()*s.Float64()))
						return nil
					}},
				&fakeInst{opcode: "inc", inputs: []string{base + "sq"}, outputs: []string{base + "r"},
					execute: func(c *Context) error {
						s, err := c.GetScalar(base + "sq")
						if err != nil {
							return err
						}
						c.Set(base+"r", NewDouble(s.Float64()+1))
						return nil
					}},
			)
		}
		// final reduction over all chains
		var ins []string
		for k := 0; k < 8; k++ {
			ins = append(ins, fmt.Sprintf("v%dr", k))
		}
		instrs = append(instrs, &fakeInst{opcode: "sumall", inputs: ins, outputs: []string{"total"},
			execute: func(c *Context) error {
				total := 0.0
				for _, in := range ins {
					s, err := c.GetScalar(in)
					if err != nil {
						return err
					}
					total += s.Float64()
				}
				c.Set("total", NewDouble(total))
				return nil
			}})
		return instrs
	}

	run := func(interOp int) map[string]float64 {
		cfg := DefaultConfig()
		cfg.InterOpParallelism = interOp
		ctx := NewContext(cfg)
		bb := &BasicBlock{Instructions: mkBlock()}
		if err := bb.Execute(ctx); err != nil {
			t.Fatal(err)
		}
		out := map[string]float64{}
		for _, name := range ctx.Variables() {
			s, err := ctx.GetScalar(name)
			if err != nil {
				t.Fatal(err)
			}
			out[name] = s.Float64()
		}
		return out
	}

	seq := run(1)
	par := run(4)
	if len(seq) != len(par) {
		t.Fatalf("symbol table sizes differ: %d vs %d", len(seq), len(par))
	}
	for k, v := range seq {
		if par[k] != v {
			t.Errorf("variable %s: scheduled %v != sequential %v", k, par[k], v)
		}
	}
}

// TestExecuteScheduledRunsConcurrently verifies that independent instructions
// overlap under the scheduler.
func TestExecuteScheduledRunsConcurrently(t *testing.T) {
	var cur, peak atomic.Int64
	var gate sync.WaitGroup
	gate.Add(4)
	var instrs []Instruction
	for k := 0; k < 4; k++ {
		out := fmt.Sprintf("w%d", k)
		instrs = append(instrs, &fakeInst{opcode: "wait", outputs: []string{out},
			execute: func(c *Context) error {
				if n := cur.Add(1); n > peak.Load() {
					peak.Store(n)
				}
				// wait until all four instructions are in flight; this
				// deadlocks (and fails via test timeout) if the scheduler
				// does not overlap independent instructions
				gate.Done()
				gate.Wait()
				cur.Add(-1)
				c.Set(out, NewDouble(1))
				return nil
			}})
	}
	cfg := DefaultConfig()
	cfg.InterOpParallelism = 4
	ctx := NewContext(cfg)
	bb := &BasicBlock{Instructions: instrs}
	if err := bb.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if peak.Load() < 4 {
		t.Errorf("peak concurrency %d, want 4", peak.Load())
	}
}

func TestExecuteScheduledPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	var after atomic.Int64
	instrs := []Instruction{
		&fakeInst{opcode: "ok", outputs: []string{"a"},
			execute: func(c *Context) error { c.Set("a", NewDouble(1)); return nil }},
		&fakeInst{opcode: "fail", inputs: []string{"a"}, outputs: []string{"b"},
			execute: func(c *Context) error { return boom }},
		&fakeInst{opcode: "after", inputs: []string{"b"}, outputs: []string{"c"},
			execute: func(c *Context) error { after.Add(1); return nil }},
	}
	cfg := DefaultConfig()
	cfg.InterOpParallelism = 4
	ctx := NewContext(cfg)
	bb := &BasicBlock{Instructions: instrs}
	err := bb.Execute(ctx)
	if !errors.Is(err, boom) {
		t.Fatalf("expected boom, got %v", err)
	}
	if after.Load() != 0 {
		t.Errorf("dependent of failed instruction must not execute")
	}
}

// TestSchedulerHonorsCompilerDeps checks that explicit Deps are used as-is.
func TestSchedulerHonorsCompilerDeps(t *testing.T) {
	var order []string
	var mu sync.Mutex
	record := func(name string) func(*Context) error {
		return func(c *Context) error {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			c.Set(name, NewDouble(1))
			return nil
		}
	}
	instrs := []Instruction{
		&fakeInst{opcode: "a", outputs: []string{"a"}, execute: record("a")},
		&fakeInst{opcode: "b", outputs: []string{"b"}, execute: record("b")},
	}
	// artificial edge b->a even though names are independent
	deps := [][]int{nil, {0}}
	cfg := DefaultConfig()
	cfg.InterOpParallelism = 2
	ctx := NewContext(cfg)
	bb := &BasicBlock{Instructions: instrs, Deps: deps}
	if err := bb.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Errorf("explicit dependency not honored, order %v", order)
	}
}

// TestSchedulerLineageAndReuseConcurrent runs a wide block with lineage-based
// reuse enabled under the scheduler, twice, and expects the second run to be
// answered from the cache with identical results.
func TestSchedulerLineageAndReuseConcurrent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InterOpParallelism = 4
	cfg.ReuseEnabled = true
	ctx := NewContext(cfg)
	X := matrix.RandUniform(50, 8, -1, 1, 1.0, 7)
	ctx.SetMatrix("X", X)

	var instrs []Instruction
	for k := 0; k < 6; k++ {
		out := fmt.Sprintf("g%d", k)
		scale := float64(k + 1)
		instrs = append(instrs, &fakeInst{opcode: "scale", inputs: []string{"X"},
			outputs: []string{out}, data: fmt.Sprintf("%g", scale),
			execute: func(c *Context) error {
				blk, err := c.GetMatrixBlock("X")
				if err != nil {
					return err
				}
				c.SetMatrix(out, matrix.ScalarOp(blk, scale, matrix.OpMul, false, 1))
				return nil
			}})
	}
	bb := &BasicBlock{Instructions: instrs}
	if err := bb.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	first := map[string]*matrix.MatrixBlock{}
	for k := 0; k < 6; k++ {
		blk, err := ctx.GetMatrixBlock(fmt.Sprintf("g%d", k))
		if err != nil {
			t.Fatal(err)
		}
		first[fmt.Sprintf("g%d", k)] = blk
	}
	hitsBefore := ctx.Cache.Stats().Hits
	if err := bb.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if got := ctx.Cache.Stats().Hits - hitsBefore; got != 6 {
		t.Errorf("expected 6 cache hits on re-execution, got %d", got)
	}
	for name, want := range first {
		blk, err := ctx.GetMatrixBlock(name)
		if err != nil {
			t.Fatal(err)
		}
		if !blk.Equals(want, 0) {
			t.Errorf("%s differs between runs", name)
		}
	}
}

func TestExecuteScheduledRejectsBadDeps(t *testing.T) {
	instrs := []Instruction{
		&fakeInst{opcode: "a", outputs: []string{"a"}, execute: func(c *Context) error { return nil }},
	}
	ctx := NewContext(DefaultConfig())
	if err := ExecuteScheduled(ctx, instrs, [][]int{{0}}, 2, obs.Span{}); err == nil {
		t.Error("self-dependency must be rejected")
	}
	if err := ExecuteScheduled(ctx, instrs, [][]int{{5}}, 2, obs.Span{}); err == nil {
		t.Error("out-of-range dependency must be rejected")
	}
	if err := ExecuteScheduled(ctx, instrs, [][]int{}, 2, obs.Span{}); err == nil {
		t.Error("dependency-list length mismatch must be rejected")
	}
}
