package runtime

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"github.com/systemds/systemds-go/internal/bufferpool"
	"github.com/systemds/systemds-go/internal/dist"
	sdsio "github.com/systemds/systemds-go/internal/io"
	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/obs"
	"github.com/systemds/systemds-go/internal/types"
)

// DistStats is a snapshot of the distributed-backend counters of one context
// tree: how often a local matrix was partitioned into blocked form, how often
// a blocked matrix was collected back into a local block, and how many
// operators executed on the blocked backend. A chain of N blocked operators
// should cost one partition and at most one collect, not N of each.
type DistStats struct {
	Partitions int64
	Collects   int64
	BlockedOps int64
}

// distCounters is the shared mutable counter state behind DistStats; child
// contexts share their parent's counters.
type distCounters struct {
	partitions atomic.Int64
	collects   atomic.Int64
	blockedOps atomic.Int64
}

func (c *distCounters) snapshot() DistStats {
	if c == nil {
		return DistStats{}
	}
	return DistStats{
		Partitions: c.partitions.Load(),
		Collects:   c.collects.Load(),
		BlockedOps: c.blockedOps.Load(),
	}
}

// FusedStats is a snapshot of the fused-operator hit counters of one context
// tree: how many fused mmchain and fused cellwise-aggregate instructions
// executed (the fusion analogue of DistStats, surfaced through core.Stats).
type FusedStats struct {
	MMChainOps  int64
	FusedAggOps int64
}

// fusedCounters is the shared mutable counter state behind FusedStats; child
// contexts share their parent's counters.
type fusedCounters struct {
	mmchain  atomic.Int64
	fusedAgg atomic.Int64
}

func (c *fusedCounters) snapshot() FusedStats {
	if c == nil {
		return FusedStats{}
	}
	return FusedStats{
		MMChainOps:  c.mmchain.Load(),
		FusedAggOps: c.fusedAgg.Load(),
	}
}

// BlockedMatrixObject is the first-class runtime handle of a blocked
// ("distributed") matrix: it flows through the symbol table like any other
// data object, so consecutive blocked operators hand the partitioned
// representation to each other without collecting and re-partitioning. Only a
// CP consumer or a sink (print, write, API output) triggers a collect, via
// Collect. The object participates in the buffer pool with per-block spill
// files.
type BlockedMatrixObject struct {
	id   int64
	mu   sync.Mutex
	dc   types.DataCharacteristics
	bm   *dist.BlockedMatrix // nil when spilled
	meta dist.BlockedMatrix  // shape metadata retained for restore (Blocks nil)
	// spillBase is the base path of the per-block spill files; block i lives
	// at spillBase.b<i>.
	spillBase string
	nblocks   int
	// local memoizes the collected form so repeated CP consumers of the same
	// blocked variable pay the O(rows*cols) assembly once. It is a
	// reader-held view (like a block handed out by MatrixObject.Acquire) and
	// deliberately not part of MemorySize; eviction drops it.
	local *matrix.MatrixBlock
	pool  *bufferpool.Pool
	ctr   *distCounters
}

// NewBlockedMatrixObject wraps a blocked matrix into a managed object and
// registers it with the buffer pool. The counters may be nil.
func NewBlockedMatrixObject(bm *dist.BlockedMatrix, pool *bufferpool.Pool, ctr *distCounters) *BlockedMatrixObject {
	bo := &BlockedMatrixObject{
		dc:   types.DataCharacteristics{Rows: int64(bm.Rows), Cols: int64(bm.Cols), Blocksize: bm.Blocksize, NNZ: -1},
		bm:   bm,
		meta: dist.BlockedMatrix{Rows: bm.Rows, Cols: bm.Cols, Blocksize: bm.Blocksize},
		pool: pool,
		ctr:  ctr,
	}
	if pool != nil {
		bo.id = pool.NextID()
		pool.Register(bo)
	}
	return bo
}

// DataType returns types.Matrix: a blocked matrix is a matrix to the
// compiler; only the runtime representation differs.
func (b *BlockedMatrixObject) DataType() types.DataType { return types.Matrix }

// DataCharacteristics returns the matrix metadata without touching the data.
func (b *BlockedMatrixObject) DataCharacteristics() types.DataCharacteristics {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dc
}

// String implements Data.
func (b *BlockedMatrixObject) String() string {
	dc := b.DataCharacteristics()
	return fmt.Sprintf("BlockedMatrix[%dx%d, blocksize %d]", dc.Rows, dc.Cols, dc.Blocksize)
}

// Blocked returns the in-memory blocked matrix, restoring the blocks from
// their spill files if the object was evicted.
func (b *BlockedMatrixObject) Blocked() (*dist.BlockedMatrix, error) {
	b.mu.Lock()
	restored := false
	if b.bm == nil {
		if b.spillBase == "" {
			b.mu.Unlock()
			return nil, fmt.Errorf("runtime: blocked matrix object %d has neither data nor spill files", b.id)
		}
		bm := b.meta
		bm.Blocks = make([]*matrix.MatrixBlock, b.nblocks)
		for i := range bm.Blocks {
			blk, err := sdsio.ReadMatrixBinary(blockSpillPath(b.spillBase, i))
			if err != nil {
				b.mu.Unlock()
				return nil, fmt.Errorf("runtime: restore evicted blocked matrix: %w", err)
			}
			bm.Blocks[i] = blk
		}
		b.bm = &bm
		restored = true
	}
	bm := b.bm
	b.mu.Unlock()
	if b.pool != nil {
		b.pool.NotifyAccess(b, restored)
	}
	return bm, nil
}

// Region assembles the sub-matrix covering rows [rl, ru) and columns
// [cl, cu). When the object lives in memory this delegates to the blocked
// matrix directly; when it was evicted, only the spill files of the blocks
// the region touches are read back (partial restore) — the object itself
// stays spilled and the skipped blocks never leave disk. Restored-vs-skipped
// block counts are recorded on the buffer pool.
func (b *BlockedMatrixObject) Region(rl, ru, cl, cu int) (*matrix.MatrixBlock, error) {
	b.mu.Lock()
	if b.bm != nil {
		bm := b.bm
		b.mu.Unlock()
		if b.pool != nil {
			b.pool.NotifyAccess(b, false)
		}
		res, err := bm.Region(rl, ru, cl, cu)
		if err != nil {
			return nil, err
		}
		// Region assembles densely; sparse sources get their representation back
		return res.ExamineAndApplySparsity(), nil
	}
	if b.spillBase == "" {
		b.mu.Unlock()
		return nil, fmt.Errorf("runtime: blocked matrix object %d has neither data nor spill files", b.id)
	}
	bm := b.meta
	base, nblocks := b.spillBase, b.nblocks
	b.mu.Unlock()
	if rl < 0 || ru > bm.Rows || cl < 0 || cu > bm.Cols || rl >= ru || cl >= cu {
		return nil, fmt.Errorf("runtime: region [%d:%d,%d:%d] out of bounds for %dx%d", rl, ru, cl, cu, bm.Rows, bm.Cols)
	}
	// restore only the covering blocks into a sparse grid copy; Region walks
	// exactly these coordinates
	bm.Blocks = make([]*matrix.MatrixBlock, nblocks)
	gc := bm.GridCols()
	var restored int64
	for bi := rl / bm.Blocksize; bi <= (ru-1)/bm.Blocksize; bi++ {
		for bj := cl / bm.Blocksize; bj <= (cu-1)/bm.Blocksize; bj++ {
			idx := bi*gc + bj
			blk, err := sdsio.ReadMatrixBinary(blockSpillPath(base, idx))
			if err != nil {
				return nil, fmt.Errorf("runtime: partial restore of block (%d,%d): %w", bi, bj, err)
			}
			bm.Blocks[idx] = blk
			restored++
		}
	}
	if b.pool != nil {
		b.pool.RecordPartialRestore(restored, int64(nblocks)-restored)
	}
	res, err := bm.Region(rl, ru, cl, cu)
	if err != nil {
		return nil, err
	}
	return res.ExamineAndApplySparsity(), nil
}

// Collect assembles the blocked matrix into one local matrix block — the
// lazy collect performed only when a CP consumer or sink needs local data.
// The assembled block is memoized, so only the first consumer pays (and
// counts) the collect.
func (b *BlockedMatrixObject) Collect() (*matrix.MatrixBlock, error) {
	b.mu.Lock()
	if b.local != nil {
		blk := b.local
		b.mu.Unlock()
		return blk, nil
	}
	b.mu.Unlock()
	sp := obs.Begin(obs.CatDist, "collect")
	blk, err := b.collectBlocks()
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.EndBytes(blk.InMemorySize())
	won := false
	b.mu.Lock()
	if b.local == nil {
		b.local = blk
		won = true
	}
	blk = b.local
	b.mu.Unlock()
	if won && b.ctr != nil {
		b.ctr.collects.Add(1)
	}
	return blk, nil
}

// collectBlocks assembles the local block from the blocked form (the
// non-memoized part of Collect, spanned as a dist "collect" sub-phase).
func (b *BlockedMatrixObject) collectBlocks() (*matrix.MatrixBlock, error) {
	bm, err := b.Blocked()
	if err != nil {
		return nil, err
	}
	return bm.ToMatrixBlock()
}

// PoolID implements bufferpool.Entry.
func (b *BlockedMatrixObject) PoolID() int64 { return b.id }

// MemorySize implements bufferpool.Entry.
func (b *BlockedMatrixObject) MemorySize() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.bm == nil {
		return 0
	}
	return b.bm.InMemorySize()
}

// Evict implements bufferpool.Entry: every block is written to its own spill
// file (path.b<i>) and the blocked matrix is dropped from memory.
func (b *BlockedMatrixObject) Evict(path string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.bm == nil {
		return nil
	}
	for i, blk := range b.bm.Blocks {
		if err := sdsio.WriteMatrixBinary(blockSpillPath(path, i), blk, b.bm.Blocksize); err != nil {
			// clean up the partial spill so the object stays in memory
			for j := 0; j <= i; j++ {
				_ = os.Remove(blockSpillPath(path, j))
			}
			return err
		}
	}
	b.spillBase = path
	b.nblocks = len(b.bm.Blocks)
	b.bm = nil
	b.local = nil
	return nil
}

// IsPinned implements bufferpool.Entry. Blocked matrices are immutable, so
// in-flight readers keep their own reference and eviction is always safe.
func (b *BlockedMatrixObject) IsPinned() bool { return false }

// IsInMemory implements bufferpool.Entry.
func (b *BlockedMatrixObject) IsInMemory() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.bm != nil
}

// Discard implements bufferpool.Discarder: per-block spill files are removed
// when the entry is unregistered.
func (b *BlockedMatrixObject) Discard() {
	b.mu.Lock()
	base, n := b.spillBase, b.nblocks
	b.mu.Unlock()
	if base == "" {
		return
	}
	for i := 0; i < n; i++ {
		_ = os.Remove(blockSpillPath(base, i))
	}
}

func blockSpillPath(base string, i int) string { return fmt.Sprintf("%s.b%d", base, i) }
