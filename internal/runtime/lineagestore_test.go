package runtime

import (
	"math"
	"testing"

	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/types"
)

func TestLineagePayloadMatrixRoundTrip(t *testing.T) {
	dense := matrix.RandUniform(17, 9, -1, 1, 1.0, 7)
	dense.Set(0, 0, math.Pi)
	dense.Set(16, 8, -0.0)
	sparse := matrix.RandUniform(40, 30, -5, 5, 0.05, 8)
	sparse.ExamineAndApplySparsity()
	for _, blk := range []*matrix.MatrixBlock{dense, sparse} {
		payload, ok := encodeLineagePayload(NewMatrixObject(blk, nil))
		if !ok {
			t.Fatal("matrix object must encode")
		}
		v, ok := decodeLineagePayload(payload)
		if !ok {
			t.Fatal("payload must decode")
		}
		got, err := v.(*MatrixObject).Acquire()
		if err != nil {
			t.Fatal(err)
		}
		// bitwise equality, the property warm-run reuse depends on
		if !blk.Equals(got, 0) {
			t.Error("decoded matrix differs bitwise from the original")
		}
	}
}

func TestLineagePayloadScalarRoundTrip(t *testing.T) {
	for _, s := range []*Scalar{
		NewDouble(math.Pi), NewInt(-42), NewBool(true), NewString("hello world"),
	} {
		payload, ok := encodeLineagePayload(s)
		if !ok {
			t.Fatalf("scalar %v must encode", s)
		}
		v, ok := decodeLineagePayload(payload)
		if !ok {
			t.Fatal("payload must decode")
		}
		got := v.(*Scalar)
		if got.VT != s.VT || got.F != s.F || got.B != s.B || got.S != s.S {
			t.Errorf("round trip %+v -> %+v", s, got)
		}
	}
}

func TestLineagePayloadUnsupportedKinds(t *testing.T) {
	if _, ok := encodeLineagePayload("a plain string"); ok {
		t.Error("unsupported values must not encode")
	}
	if _, ok := decodeLineagePayload(nil); ok {
		t.Error("empty payload must not decode")
	}
	if _, ok := decodeLineagePayload([]byte{'?', 1, 2}); ok {
		t.Error("unknown kind tag must not decode")
	}
	if _, ok := decodeLineagePayload([]byte{'S', 1}); ok {
		t.Error("truncated scalar must not decode")
	}
	if _, ok := decodeLineagePayload([]byte{'M', 0, 1, 2}); ok {
		t.Error("corrupt matrix payload must not decode")
	}
}

func TestFingerprintDistinguishesContent(t *testing.T) {
	a := matrix.RandUniform(6, 6, -1, 1, 1.0, 1)
	same := a.Copy()
	b := a.Copy()
	b.Set(3, 3, b.Get(3, 3)+1e-12)

	fa, ok := Fingerprint(NewMatrixObject(a, nil))
	if !ok {
		t.Fatal("matrix must fingerprint")
	}
	fSame, _ := Fingerprint(NewMatrixObject(same, nil))
	fb, _ := Fingerprint(NewMatrixObject(b, nil))
	if fa != fSame {
		t.Error("identical content must fingerprint identically")
	}
	if fa == fb {
		t.Error("a one-cell change must change the fingerprint")
	}

	// scalars fingerprint by value and type
	f1, _ := Fingerprint(NewDouble(2))
	f2, _ := Fingerprint(NewInt(2))
	if f1 == f2 {
		t.Error("2.0 and 2L must fingerprint differently")
	}
}

// TestFingerprintSparseDoesNotDensify guards the side-effect hazard: reading
// a sparse block through DenseValues would convert it in place; the
// fingerprint must leave the representation untouched and agree with the
// dense fingerprint of equal content.
func TestFingerprintSparseDoesNotDensify(t *testing.T) {
	sparse := matrix.RandUniform(50, 40, -1, 1, 0.04, 9)
	sparse.ExamineAndApplySparsity()
	if !sparse.IsSparse() {
		t.Skip("block did not convert to sparse at this density")
	}
	dense := sparse.Copy()
	dense.ToDense()

	fs, _ := Fingerprint(NewMatrixObject(sparse, nil))
	fd, _ := Fingerprint(NewMatrixObject(dense, nil))
	if fs != fd {
		t.Error("sparse and dense fingerprints of equal content differ")
	}
	if !sparse.IsSparse() {
		t.Error("fingerprinting densified the sparse block")
	}
}

func TestFingerprintIncludesShape(t *testing.T) {
	// same cell bits, different shape: 2x3 of zeros vs 3x2 of zeros
	a := matrix.NewDense(2, 3)
	b := matrix.NewDense(3, 2)
	fa, _ := Fingerprint(NewMatrixObject(a, nil))
	fb, _ := Fingerprint(NewMatrixObject(b, nil))
	if fa == fb {
		t.Error("shape must be part of the fingerprint")
	}
}

// TestPersistentLineageStoreEndToEnd drives the adapter through the
// lineage.BackingStore interface.
func TestPersistentLineageStoreEndToEnd(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenPersistentLineage(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	blk := matrix.RandUniform(12, 12, -1, 1, 1.0, 3)
	if !store.Persist(99, "tsmm(input·X)", NewMatrixObject(blk, nil), blk.InMemorySize(), 12345) {
		t.Fatal("matrix must persist")
	}
	// unsupported values are skipped, not errors
	if store.Persist(100, "k", &ListObject{}, 10, 1) {
		t.Error("list objects must not persist")
	}

	// a second store over the same directory simulates the next process
	store2, err := OpenPersistentLineage(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	v, size, computeNs, ok := store2.Lookup(99, "tsmm(input·X)")
	if !ok || computeNs != 12345 || size <= 0 {
		t.Fatalf("Lookup = (_, %d, %d, %v)", size, computeNs, ok)
	}
	got, err := v.(*MatrixObject).Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if !blk.Equals(got, 0) {
		t.Error("cross-open matrix not bitwise-equal")
	}
	if _, _, _, ok := store2.Lookup(99, "different lineage"); ok {
		t.Error("key mismatch must miss")
	}
}

func TestConfigValueType(t *testing.T) {
	// Scalar VT must survive the one-byte encoding used by the codec
	for _, vt := range []types.ValueType{types.FP64, types.INT64, types.Boolean, types.String} {
		if types.ValueType(byte(vt)) != vt {
			t.Fatalf("value type %v does not fit one byte", vt)
		}
	}
}
