package runtime

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/systemds/systemds-go/internal/lineage"
	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/obs"
)

// TempPrefix is the name prefix of temporary variables created by DAG
// lowering; they are cleaned up at the end of each basic block.
const TempPrefix = "_mVar"

// Instruction is one runtime instruction produced by the compiler. All
// instruction implementations live in the instructions package; the runtime
// only depends on this interface.
type Instruction interface {
	// Opcode returns the instruction opcode (e.g. "ba+*", "tsmm", "rand").
	Opcode() string
	// Inputs returns the input variable names (excluding literals).
	Inputs() []string
	// Outputs returns the output variable names.
	Outputs() []string
	// LineageData returns extra data included in the lineage item (literal
	// operands, seeds, file names) so the lineage fully determines the
	// result.
	LineageData() string
	// Execute runs the instruction against the execution context.
	Execute(ctx *Context) error
}

// ProgramBlock is a node of the runtime program tree.
type ProgramBlock interface {
	Execute(ctx *Context) error
}

// Program is a compiled runtime program: a function table plus the main body
// blocks.
type Program struct {
	Functions map[string]*FunctionBlock
	Blocks    []ProgramBlock
}

// Execute runs the main body of the program.
func (p *Program) Execute(ctx *Context) error {
	prev := ctx.Prog
	ctx.Prog = p
	defer func() { ctx.Prog = prev }()
	for _, b := range p.Blocks {
		if err := b.Execute(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Function returns a function block by name.
func (p *Program) Function(name string) (*FunctionBlock, bool) {
	fb, ok := p.Functions[name]
	return fb, ok
}

// BasicBlock is a straight-line sequence of instructions compiled from one
// last-level statement block (one or more HOP DAGs plus function-call and
// side-effect instructions).
type BasicBlock struct {
	Instructions []Instruction
	// Deps holds the exact per-instruction dependency lists preserved from
	// the HOP DAG's producer/consumer edges by the compiler (one list of
	// earlier-instruction indices per instruction). When nil or out of sync
	// with Instructions (e.g. after dynamic recompilation), the scheduler
	// falls back to name-based dependency analysis.
	Deps [][]int
	// Sequential forces strictly ordered execution even when the
	// inter-operator scheduler is enabled (predicate blocks, whose results
	// feed control-flow decisions, always run sequentially).
	Sequential bool
	// RequiresRecompile marks blocks compiled with unknown sizes; when set and
	// a Recompile callback is present, the block is re-lowered against the
	// current symbol table before execution (dynamic recompilation).
	RequiresRecompile bool
	Recompile         func(ctx *Context) ([]Instruction, error)
	// CleanupTemps removes DAG temporaries after the block (disabled inside
	// predicate blocks whose result is a temporary).
	CleanupTemps bool
}

// Execute runs the block's instructions with lineage tracing and reuse:
// sequentially by default, or dependency-scheduled on a worker pool when
// Config.InterOpParallelism > 1 (see scheduler.go).
func (b *BasicBlock) Execute(ctx *Context) error {
	sp := obs.Begin(obs.CatBlock, "block")
	err := b.execute(ctx, sp)
	sp.End()
	return err
}

func (b *BasicBlock) execute(ctx *Context, blockSp obs.Span) error {
	instrs := b.Instructions
	deps := b.Deps
	if b.RequiresRecompile && b.Recompile != nil {
		recompiled, err := b.Recompile(ctx)
		if err != nil {
			return fmt.Errorf("runtime: dynamic recompilation failed: %w", err)
		}
		instrs = recompiled
		deps = nil // compiler edges no longer match the recompiled list
	}
	workers := ctx.Config.InterOpWorkers()
	if b.Sequential || workers <= 1 || len(instrs) < 2 {
		for _, inst := range instrs {
			if err := executeInstructionSpanned(ctx, inst, blockSp); err != nil {
				return err
			}
		}
	} else {
		if len(deps) != len(instrs) {
			deps = BuildDependencies(instrs)
		}
		if err := ExecuteScheduled(ctx, instrs, deps, workers, blockSp); err != nil {
			return err
		}
	}
	if b.CleanupTemps {
		ctx.CleanupTemporaries(TempPrefix)
	}
	return nil
}

// nonCacheableOpcodes are never reused from the cache: side effects,
// non-determinism that must re-execute, and function calls (their inner
// instructions are cached instead).
var nonCacheableOpcodes = map[string]bool{
	"print": true, "write": true, "read": true, "stop": true, "assert": true,
	"fcall": true, "rand": true, "sample": true, "rmvar": true,
}

// ExecuteInstruction executes one instruction with lineage tracing and
// lineage-based reuse (Section 3.1): the output lineage is computed before
// execution, the reuse cache is probed for full or partial reuse, and
// qualifying results are cached afterwards.
func ExecuteInstruction(ctx *Context, inst Instruction) error {
	return executeInstructionSpanned(ctx, inst, obs.Span{})
}

// executeInstructionSpanned wraps instruction execution in an "instr" span
// named by the opcode and parented under the enclosing block span. The
// tracing-off path falls straight through to the untraced body so the
// output-size probe below never runs (and never allocates) there.
func executeInstructionSpanned(ctx *Context, inst Instruction, parent obs.Span) error {
	if !obs.Enabled() {
		return executeInstruction(ctx, inst)
	}
	sp := obs.BeginChild(parent, obs.CatInstr, inst.Opcode())
	err := executeInstruction(ctx, inst)
	sp.EndBytes(outputBytes(ctx, inst))
	return err
}

// outputBytes estimates the bytes an instruction materialized by sizing its
// bound outputs (only called while tracing).
func outputBytes(ctx *Context, inst Instruction) int64 {
	var n int64
	for _, out := range inst.Outputs() {
		if d, err := ctx.Get(out); err == nil {
			n += SizeOf(d)
		}
	}
	return n
}

func executeInstruction(ctx *Context, inst Instruction) error {
	if !ctx.Config.LineageEnabled {
		return inst.Execute(ctx)
	}
	inputs := inst.Inputs()
	items := make([]*lineage.Item, len(inputs))
	for i, in := range inputs {
		items[i] = ctx.Lineage.Get(in)
	}
	var outItem *lineage.Item
	if inst.Opcode() == "assignvar" && len(items) == 1 && inst.LineageData() == "" {
		// plain variable copies are lineage-transparent: the output IS the
		// input value, so downstream consumers and the reuse cache see the
		// producing operation directly
		outItem = items[0]
	} else {
		outItem = lineage.NewInstruction(inst.Opcode(), inst.LineageData(), items...)
	}
	outs := inst.Outputs()
	cacheable := ctx.Config.ReuseEnabled && ctx.Cache.Enabled() &&
		len(outs) == 1 && !nonCacheableOpcodes[inst.Opcode()]
	if cacheable {
		if v, ok := ctx.Cache.Get(outItem); ok {
			if d, isData := v.(Data); isData {
				ctx.Set(outs[0], d)
				ctx.Lineage.Set(outs[0], outItem)
				return nil
			}
		}
		if d, ok := tryPartialReuse(ctx, inst, items, outItem); ok {
			ctx.Set(outs[0], d)
			ctx.Lineage.Set(outs[0], outItem)
			ctx.Cache.RecordPartialHit()
			// cache the assembled result so later iterations can build on it
			ctx.Cache.Put(outItem, d, SizeOf(d), 0)
			return nil
		}
	}
	start := time.Now()
	if err := inst.Execute(ctx); err != nil {
		return err
	}
	elapsed := time.Since(start)
	// Record output lineage. Function calls and reads maintain their own
	// (per-output) lineage during execution; multi-output instructions get
	// one distinct item per output so different outputs never alias.
	if inst.Opcode() != "fcall" && inst.Opcode() != "read" {
		if len(outs) == 1 {
			ctx.Lineage.Set(outs[0], outItem)
		} else {
			for idx, o := range outs {
				ctx.Lineage.Set(o, lineage.NewInstruction(inst.Opcode(),
					fmt.Sprintf("%s#out%d", inst.LineageData(), idx), items...))
			}
		}
	}
	if cacheable {
		if d, err := ctx.Get(outs[0]); err == nil {
			if _, isMat := d.(*MatrixObject); isMat || elapsed > 100*time.Microsecond {
				ctx.Cache.Put(outItem, d, SizeOf(d), elapsed.Nanoseconds())
			}
		}
	}
	return nil
}

// IfBlock executes the then-branch or else-branch depending on a scalar
// predicate computed by the predicate block.
type IfBlock struct {
	Predicate *BasicBlock
	PredVar   string
	Then      []ProgramBlock
	Else      []ProgramBlock
}

// Execute evaluates the predicate and runs the matching branch.
func (b *IfBlock) Execute(ctx *Context) error {
	if err := b.Predicate.Execute(ctx); err != nil {
		return err
	}
	pred, err := ctx.Get(b.PredVar)
	if err != nil {
		return err
	}
	cond := false
	switch v := pred.(type) {
	case *Scalar:
		cond = v.Bool()
	case *MatrixObject:
		blk, err := v.Acquire()
		if err != nil {
			return err
		}
		cond = blk.Get(0, 0) != 0
	default:
		return fmt.Errorf("runtime: if predicate %q has unsupported type %s", b.PredVar, pred.DataType())
	}
	ctx.Remove(b.PredVar)
	ctx.CleanupTemporaries(TempPrefix)
	branch := b.Then
	if !cond {
		branch = b.Else
	}
	for _, blk := range branch {
		if err := blk.Execute(ctx); err != nil {
			return err
		}
	}
	return nil
}

// WhileBlock repeatedly executes its body while the predicate evaluates to
// true.
type WhileBlock struct {
	Predicate *BasicBlock
	PredVar   string
	Body      []ProgramBlock
	// MaxIterations guards against runaway loops; 0 means no limit.
	MaxIterations int
}

// Execute runs the while loop.
func (b *WhileBlock) Execute(ctx *Context) error {
	iter := 0
	for {
		if err := b.Predicate.Execute(ctx); err != nil {
			return err
		}
		pred, err := ctx.GetScalar(b.PredVar)
		if err != nil {
			return err
		}
		ctx.Remove(b.PredVar)
		ctx.CleanupTemporaries(TempPrefix)
		if !pred.Bool() {
			return nil
		}
		for _, blk := range b.Body {
			if err := blk.Execute(ctx); err != nil {
				return err
			}
		}
		iter++
		if b.MaxIterations > 0 && iter >= b.MaxIterations {
			return fmt.Errorf("runtime: while loop exceeded %d iterations", b.MaxIterations)
		}
	}
}

// ForBlock executes its body for every value of the iteration variable. When
// Parallel is set it acts as the parfor backend (Section 2.3): iterations are
// distributed over local workers, each with an isolated context, and written
// results are merged back into the parent context.
type ForBlock struct {
	Var        string
	Iterable   *BasicBlock
	IterVar    string
	Body       []ProgramBlock
	Parallel   bool
	ResultVars []string // variables written by the body (computed at compile time)
}

// Execute runs the for or parfor loop.
func (b *ForBlock) Execute(ctx *Context) error {
	if err := b.Iterable.Execute(ctx); err != nil {
		return err
	}
	values, err := b.iterationValues(ctx)
	if err != nil {
		return err
	}
	ctx.Remove(b.IterVar)
	ctx.CleanupTemporaries(TempPrefix)
	if !b.Parallel || len(values) <= 1 {
		for _, v := range values {
			ctx.Set(b.Var, NewDouble(v))
			ctx.Lineage.Set(b.Var, lineage.NewLiteral(fmt.Sprintf("%g", v)))
			for _, blk := range b.Body {
				if err := blk.Execute(ctx); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return b.executeParallel(ctx, values)
}

func (b *ForBlock) iterationValues(ctx *Context) ([]float64, error) {
	d, err := ctx.Get(b.IterVar)
	if err != nil {
		return nil, err
	}
	switch v := d.(type) {
	case *Scalar:
		return []float64{v.Float64()}, nil
	case *MatrixObject:
		blk, err := v.Acquire()
		if err != nil {
			return nil, err
		}
		vals := make([]float64, 0, blk.Rows()*blk.Cols())
		for r := 0; r < blk.Rows(); r++ {
			for c := 0; c < blk.Cols(); c++ {
				vals = append(vals, blk.Get(r, c))
			}
		}
		return vals, nil
	default:
		return nil, fmt.Errorf("runtime: for iterable has unsupported type %s", d.DataType())
	}
}

// executeParallel is the local parfor backend: iterations are assigned to
// workers round-robin, every worker runs on a copy-on-write child context,
// and results are merged with compare-and-set against the pre-loop state.
func (b *ForBlock) executeParallel(ctx *Context, values []float64) error {
	workers := ctx.Config.Threads()
	if workers > len(values) {
		workers = len(values)
	}
	// snapshot the original values of result variables for the merge
	originals := map[string]Data{}
	for _, rv := range b.ResultVars {
		if d, err := ctx.Get(rv); err == nil {
			originals[rv] = d
		}
	}
	results := make([]workerResult, workers)
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			child := ctx.ChildCopy()
			last := -1
			for i := w; i < len(values); i += workers {
				child.Set(b.Var, NewDouble(values[i]))
				child.Lineage.Set(b.Var, lineage.NewLiteral(fmt.Sprintf("%g", values[i])))
				for _, blk := range b.Body {
					if err := blk.Execute(child); err != nil {
						errCh <- fmt.Errorf("parfor worker %d (iteration %v): %w", w, values[i], err)
						return
					}
				}
				last = i
			}
			vars := map[string]Data{}
			for _, rv := range b.ResultVars {
				if d, err := child.Get(rv); err == nil {
					vars[rv] = d
				}
			}
			results[w] = workerResult{lastIter: last, vars: vars}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
	}
	// result merge; merged variables get a fresh lineage leaf (unique per
	// merge) so downstream consumers are never answered from stale cache
	// entries of a previous loop execution
	for _, rv := range b.ResultVars {
		merged, err := mergeResults(ctx, rv, originals[rv], results)
		if err != nil {
			return err
		}
		if merged != nil {
			ctx.Set(rv, merged)
			mergeID := atomic.AddInt64(&parforMergeCounter, 1)
			ctx.Lineage.Set(rv, lineage.NewCreation("parfor-merge", fmt.Sprintf("%s#%d", rv, mergeID)))
		}
	}
	return nil
}

var parforMergeCounter int64

// localMatrixOf returns the local block behind a matrix-typed runtime value,
// acquiring through the buffer pool or collecting a blocked matrix; the bool
// reports whether the value was matrix-backed at all.
func localMatrixOf(d Data) (*matrix.MatrixBlock, bool, error) {
	switch v := d.(type) {
	case *MatrixObject:
		blk, err := v.Acquire()
		return blk, true, err
	case *BlockedMatrixObject:
		blk, err := v.Collect()
		return blk, true, err
	case *CompressedMatrixObject:
		blk, err := v.DecompressFor("parfor-merge")
		return blk, true, err
	case *TransposedCompressedObject:
		blk, err := v.MaterializeFor("parfor-merge")
		return blk, true, err
	}
	return nil, false, nil
}

// workerResult holds the result-variable bindings produced by one parfor
// worker together with the highest iteration index it executed.
type workerResult struct {
	lastIter int
	vars     map[string]Data
}

// mergeResults merges one result variable across workers. Matrix variables
// that existed before the loop are merged cell-wise by taking cells that
// changed relative to the original (SystemDS' result merge with compare);
// for everything else the value of the worker that ran the highest iteration
// wins (last-iteration semantics).
func mergeResults(ctx *Context, name string, original Data, sources []workerResult) (Data, error) {
	origBlock, isMat, err := localMatrixOf(original)
	if err != nil {
		return nil, err
	}
	if isMat {
		merged := origBlock.Copy()
		changed := false
		for _, src := range sources {
			d, ok := src.vars[name]
			if !ok || d == original {
				continue
			}
			blk, isM, err := localMatrixOf(d)
			if err != nil {
				return nil, err
			}
			if !isM {
				continue
			}
			if blk.Rows() != origBlock.Rows() || blk.Cols() != origBlock.Cols() {
				// dimension change: last iteration wins
				merged = blk.Copy()
				changed = true
				continue
			}
			for r := 0; r < blk.Rows(); r++ {
				for c := 0; c < blk.Cols(); c++ {
					if v := blk.Get(r, c); v != origBlock.Get(r, c) {
						merged.Set(r, c, v)
						changed = true
					}
				}
			}
		}
		if !changed {
			return nil, nil
		}
		return NewMatrixObject(merged, ctx.Pool), nil
	}
	// non-matrix or previously undefined: highest iteration wins
	best := -1
	var bestVal Data
	for _, src := range sources {
		if d, ok := src.vars[name]; ok && src.lastIter > best {
			best = src.lastIter
			bestVal = d
		}
	}
	return bestVal, nil
}

// FunctionBlock is a compiled user-defined or DML-bodied builtin function.
type FunctionBlock struct {
	Name    string
	Params  []FunctionParam
	Returns []string
	Body    []ProgramBlock
}

// FunctionParam describes one function parameter with an optional default.
type FunctionParam struct {
	Name    string
	Default Data // nil when the parameter is required
}

// Call executes the function with the given positional and named arguments in
// a fresh child context and returns the values of the declared return
// variables. Lineage items of the arguments are carried into the child
// context so intermediates inside the function can be reused across calls.
func (f *FunctionBlock) Call(ctx *Context, positional []Data, named map[string]Data,
	positionalLineage []*lineage.Item, namedLineage map[string]*lineage.Item) ([]Data, []*lineage.Item, error) {
	child := ctx.ChildEmpty()
	// bind defaults first
	for _, p := range f.Params {
		if p.Default != nil {
			child.Set(p.Name, p.Default)
		}
	}
	// bind positional
	if len(positional) > len(f.Params) {
		return nil, nil, fmt.Errorf("runtime: function %s takes %d parameters, got %d arguments", f.Name, len(f.Params), len(positional))
	}
	for i, d := range positional {
		child.Set(f.Params[i].Name, d)
		if positionalLineage != nil && i < len(positionalLineage) && positionalLineage[i] != nil {
			child.Lineage.Set(f.Params[i].Name, positionalLineage[i])
		}
	}
	// bind named, in sorted order so the binding sequence (and which
	// unknown-parameter error surfaces first) is identical across runs
	namedOrder := make([]string, 0, len(named))
	for name := range named {
		namedOrder = append(namedOrder, name)
	}
	sort.Strings(namedOrder)
	for _, name := range namedOrder {
		d := named[name]
		found := false
		for _, p := range f.Params {
			if p.Name == name {
				found = true
				break
			}
		}
		if !found {
			return nil, nil, fmt.Errorf("runtime: function %s has no parameter %q", f.Name, name)
		}
		child.Set(name, d)
		if namedLineage != nil {
			if it, ok := namedLineage[name]; ok && it != nil {
				child.Lineage.Set(name, it)
			}
		}
	}
	// verify all required parameters are bound
	for _, p := range f.Params {
		if !child.Has(p.Name) {
			return nil, nil, fmt.Errorf("runtime: function %s: missing required argument %q", f.Name, p.Name)
		}
	}
	for _, blk := range f.Body {
		if err := blk.Execute(child); err != nil {
			return nil, nil, fmt.Errorf("in function %s: %w", f.Name, err)
		}
	}
	outs := make([]Data, len(f.Returns))
	lins := make([]*lineage.Item, len(f.Returns))
	for i, r := range f.Returns {
		d, err := child.Get(r)
		if err != nil {
			return nil, nil, fmt.Errorf("runtime: function %s did not assign return variable %q", f.Name, r)
		}
		outs[i] = d
		lins[i] = child.Lineage.Get(r)
	}
	return outs, lins, nil
}
