package runtime

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/systemds/systemds-go/internal/bufferpool"
	"github.com/systemds/systemds-go/internal/compress"
	"github.com/systemds/systemds-go/internal/matrix"
)

// compressedFixture builds a compressed 1024 x 32 low-cardinality matrix.
func compressedFixture(t *testing.T) (*matrix.MatrixBlock, *compress.CompressedMatrix) {
	t.Helper()
	noise := matrix.RandUniform(1024, 32, 0, 1, 1.0, 9)
	m := matrix.NewDense(1024, 32)
	for r := 0; r < 1024; r++ {
		for c := 0; c < 32; c++ {
			m.Set(r, c, math.Floor(noise.Get(r, c)*4))
		}
	}
	m.RecomputeNNZ()
	cm, plan, ok := compress.Compress(m, compress.PlannerConfig{}, 1)
	if !ok {
		t.Fatalf("fixture did not compress: %v", plan)
	}
	return m, cm
}

// TestCompressedObjectSpillsCompressedBytes asserts the buffer-pool contract
// of the compressed object: eviction writes the compressed serialization
// (file smaller than the dense image), restore reproduces the data, and the
// decompression memo is dropped across the spill.
func TestCompressedObjectSpillsCompressedBytes(t *testing.T) {
	dir := t.TempDir()
	pool := bufferpool.New(0, dir) // no auto-eviction; we drive Evict directly
	m, cm := compressedFixture(t)
	co := NewCompressedMatrixObject(cm, pool, nil)

	path := filepath.Join(dir, "spill.sdsc")
	if err := co.Evict(path); err != nil {
		t.Fatalf("evict failed: %v", err)
	}
	if co.IsInMemory() {
		t.Fatalf("object still in memory after eviction")
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("spill file missing: %v", err)
	}
	if dense := m.InMemorySize(); info.Size() >= dense {
		t.Errorf("spill file is %d bytes, want < dense image %d (compressed bytes must hit disk)", info.Size(), dense)
	}

	restored, err := co.Compressed()
	if err != nil {
		t.Fatalf("restore failed: %v", err)
	}
	back := restored.Decompress()
	if !back.Equals(m, 0) {
		t.Errorf("restored compressed matrix differs from the original")
	}
	dc := co.DataCharacteristics()
	if dc.Rows != 1024 || dc.Cols != 32 || dc.NNZ != m.NNZ() {
		t.Errorf("characteristics after restore = %s", dc)
	}
}

// TestCompressedObjectDecompressMemoizedAndCounted asserts the transparent
// fallback counts exactly one decompression per materialization, not one per
// consumer.
func TestCompressedObjectDecompressMemoizedAndCounted(t *testing.T) {
	_, cm := compressedFixture(t)
	ctr := &compressCounters{}
	co := NewCompressedMatrixObject(cm, nil, ctr)
	b1, err := co.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := co.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 {
		t.Errorf("repeated decompression did not reuse the memo")
	}
	if got := ctr.decompressions.Load(); got != 1 {
		t.Errorf("decompressions = %d, want 1", got)
	}
}
