package dist

import (
	"fmt"

	"github.com/systemds/systemds-go/internal/matrix"
)

// MatMultBL multiplies a local (broadcast) left operand with a blocked right
// operand: every block-column strip of the right input is multiplied with the
// matching column slice of the left operand independently — the mirror image
// of the broadcast-right join in MatMult, chosen by the planner when only the
// left operand fits the broadcast budget.
func MatMultBL(a *matrix.MatrixBlock, b *BlockedMatrix, threads int) (*BlockedMatrix, error) {
	if a.Cols() != b.Rows {
		return nil, fmt.Errorf("dist: matmult dimension mismatch %dx%d %%*%% %dx%d",
			a.Rows(), a.Cols(), b.Rows, b.Cols)
	}
	out := &BlockedMatrix{Rows: a.Rows(), Cols: b.Cols, Blocksize: b.Blocksize}
	grOut, gcOut := out.GridRows(), out.GridCols()
	bgr, bgc := b.GridRows(), b.GridCols()
	out.Blocks = make([]*matrix.MatrixBlock, grOut*gcOut)
	// the k-stripe slices of the broadcast operand are shared by every output
	// block column; slice them once instead of once per (bj, bk) pair
	aSlices := make([]*matrix.MatrixBlock, bgr)
	for bk := 0; bk < bgr; bk++ {
		cl := bk * b.Blocksize
		cu := min(cl+b.Blocksize, b.Rows)
		s, err := matrix.Slice(a, 0, a.Rows(), cl, cu)
		if err != nil {
			return nil, err
		}
		aSlices[bk] = s
	}
	// one dense strip per output block-column, accumulated in place across
	// the k-stripes; narrow outputs (few block columns) hand the spare
	// parallelism to the accumulate kernel instead
	if threads <= 0 {
		threads = matrix.DefaultParallelism()
	}
	inner := threads / gcOut
	if inner < 1 {
		inner = 1
	}
	err := forEachBlock("mm-broadcast-left", 1, gcOut, threads, func(_, bj int) error {
		width := min(out.Blocksize, out.Cols-bj*out.Blocksize)
		strip := matrix.NewDense(a.Rows(), width)
		for bk := 0; bk < bgr; bk++ {
			if err := matrix.MultiplyAcc(strip, aSlices[bk], b.Blocks[bk*bgc+bj], inner); err != nil {
				return err
			}
		}
		// split the strip into output blocks
		for bi := 0; bi < grOut; bi++ {
			rl, ru := bi*out.Blocksize, min(bi*out.Blocksize+out.Blocksize, out.Rows)
			blk, err := matrix.Slice(strip, rl, ru, 0, strip.Cols())
			if err != nil {
				return err
			}
			out.Blocks[bi*gcOut+bj] = blk
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MatMultShuffle multiplies two blocked operands with a shuffle-style split
// over the common dimension: the k-stripes are processed one stage at a time,
// each stage joining the co-partitioned block column k of the left input with
// block row k of the right input and accumulating the partial products into
// the output blocks — the cross-product (cpmm-style) join the planner picks
// when both operands exceed the broadcast budget and the output is small
// relative to the replicated grid-join reads. Stages run in ascending stripe
// order and accumulate with matrix.MultiplyAcc, so the result is bitwise
// identical to the local dense multiplication.
func MatMultShuffle(a, b *BlockedMatrix, threads int) (*BlockedMatrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("dist: matmult dimension mismatch %dx%d %%*%% %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if a.Blocksize != b.Blocksize {
		return nil, fmt.Errorf("dist: matmult blocksize mismatch %d vs %d", a.Blocksize, b.Blocksize)
	}
	out := &BlockedMatrix{Rows: a.Rows, Cols: b.Cols, Blocksize: a.Blocksize}
	gr, gc := out.GridRows(), out.GridCols()
	agc, bgc := a.GridCols(), b.GridCols()
	out.Blocks = make([]*matrix.MatrixBlock, gr*gc)
	err := forEachBlock("mm-shuffle", gr, gc, threads, func(bi, bj int) error {
		rows := min(out.Blocksize, out.Rows-bi*out.Blocksize)
		cols := min(out.Blocksize, out.Cols-bj*out.Blocksize)
		out.Blocks[bi*gc+bj] = matrix.NewDense(rows, cols)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for bk := 0; bk < agc; bk++ {
		err := forEachBlock("mm-shuffle", gr, gc, threads, func(bi, bj int) error {
			return matrix.MultiplyAcc(out.Blocks[bi*gc+bj], a.Blocks[bi*agc+bk], b.Blocks[bk*bgc+bj], 1)
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// InMemorySize returns the total in-memory bytes of all blocks (the "actual
// bytes" side of the planner's estimated-vs-actual plan statistics).
func (b *BlockedMatrix) InMemorySize() int64 {
	var total int64
	for _, blk := range b.Blocks {
		if blk != nil {
			total += blk.InMemorySize()
		}
	}
	return total
}
