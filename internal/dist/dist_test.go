package dist

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"github.com/systemds/systemds-go/internal/matrix"
)

// testMatrix generates a deterministic dense matrix with distinct values.
func testMatrix(rows, cols int) *matrix.MatrixBlock {
	m := matrix.NewDense(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.Set(r, c, float64(r*cols+c%17)-float64(c))
		}
	}
	return m
}

// boundary shapes: rows/cols % blocksize != 0 exercises partial edge blocks.
var shapes = []struct{ rows, cols, bs int }{
	{64, 64, 32},  // aligned
	{70, 50, 32},  // boundary blocks on both dims
	{33, 97, 32},  // single block row + many partial columns
	{10, 10, 32},  // smaller than one block
	{100, 1, 32},  // column vector
	{1, 100, 32},  // row vector
	{96, 64, 100}, // blocksize larger than the matrix in one dim
}

func TestFromToMatrixBlockRoundTrip(t *testing.T) {
	for _, s := range shapes {
		m := testMatrix(s.rows, s.cols)
		bm, err := FromMatrixBlock(m, s.bs)
		if err != nil {
			t.Fatalf("%dx%d/%d: partition: %v", s.rows, s.cols, s.bs, err)
		}
		back, err := bm.ToMatrixBlock()
		if err != nil {
			t.Fatalf("%dx%d/%d: collect: %v", s.rows, s.cols, s.bs, err)
		}
		if !m.Equals(back, 0) {
			t.Errorf("%dx%d/%d: round trip differs", s.rows, s.cols, s.bs)
		}
	}
}

func TestRegion(t *testing.T) {
	m := testMatrix(70, 50)
	bm, err := FromMatrixBlock(m, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][4]int{{0, 70, 0, 50}, {10, 40, 20, 45}, {31, 33, 31, 33}, {64, 70, 32, 50}} {
		want, err := matrix.Slice(m, r[0], r[1], r[2], r[3])
		if err != nil {
			t.Fatal(err)
		}
		got, err := bm.Region(r[0], r[1], r[2], r[3])
		if err != nil {
			t.Fatalf("region %v: %v", r, err)
		}
		if !want.Equals(got, 0) {
			t.Errorf("region %v differs from local slice", r)
		}
	}
	if _, err := bm.Region(0, 71, 0, 50); err == nil {
		t.Error("out-of-bounds region should error")
	}
}

func TestCellwiseMatchesLocal(t *testing.T) {
	for _, s := range shapes {
		a, b := testMatrix(s.rows, s.cols), testMatrix(s.rows, s.cols)
		ba, _ := FromMatrixBlock(a, s.bs)
		bb, _ := FromMatrixBlock(b, s.bs)
		res, err := Cellwise(ba, bb, matrix.OpMul)
		if err != nil {
			t.Fatal(err)
		}
		got, err := res.ToMatrixBlock()
		if err != nil {
			t.Fatal(err)
		}
		want, _ := matrix.CellwiseOp(a, b, matrix.OpMul, 1)
		if !want.Equals(got, 0) {
			t.Errorf("%dx%d/%d: cellwise differs", s.rows, s.cols, s.bs)
		}
	}
}

func TestScalarAndUnaryMatchLocal(t *testing.T) {
	for _, s := range shapes {
		a := testMatrix(s.rows, s.cols)
		ba, _ := FromMatrixBlock(a, s.bs)
		sres, err := Scalar(ba, 2.5, matrix.OpMul, false)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := sres.ToMatrixBlock()
		if !matrix.ScalarOp(a, 2.5, matrix.OpMul, false, 1).Equals(got, 0) {
			t.Errorf("%dx%d/%d: scalar op differs", s.rows, s.cols, s.bs)
		}
		ures, err := Unary(ba, matrix.OpAbs)
		if err != nil {
			t.Fatal(err)
		}
		got, _ = ures.ToMatrixBlock()
		if !matrix.UnaryApply(a, matrix.OpAbs, 1).Equals(got, 0) {
			t.Errorf("%dx%d/%d: unary differs", s.rows, s.cols, s.bs)
		}
	}
}

func TestMatMultBroadcastMatchesLocal(t *testing.T) {
	a := testMatrix(70, 50)
	b := testMatrix(50, 33)
	ba, _ := FromMatrixBlock(a, 32)
	res, err := MatMult(ba, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := res.ToMatrixBlock()
	want, _ := matrix.Multiply(a, b, 1)
	if !want.Equals(got, 1e-9) {
		t.Error("broadcast matmult differs from local")
	}
}

func TestMatMultBBMatchesLocal(t *testing.T) {
	for _, s := range []struct{ m, k, n, bs int }{
		{64, 64, 64, 32}, {70, 50, 33, 32}, {33, 97, 41, 32}, {20, 20, 20, 32},
	} {
		a := testMatrix(s.m, s.k)
		b := testMatrix(s.k, s.n)
		ba, _ := FromMatrixBlock(a, s.bs)
		bb, _ := FromMatrixBlock(b, s.bs)
		res, err := MatMultBB(ba, bb, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := res.ToMatrixBlock()
		if err != nil {
			t.Fatal(err)
		}
		want, _ := matrix.Multiply(a, b, 1)
		if !want.Equals(got, 1e-9) {
			t.Errorf("%v: blocked x blocked matmult differs", s)
		}
	}
	// dimension mismatch
	ba, _ := FromMatrixBlock(testMatrix(10, 10), 32)
	bb, _ := FromMatrixBlock(testMatrix(11, 10), 32)
	if _, err := MatMultBB(ba, bb, 0); err == nil {
		t.Error("dimension mismatch should error")
	}
}

func TestTransposeMatchesLocal(t *testing.T) {
	for _, s := range shapes {
		a := testMatrix(s.rows, s.cols)
		ba, _ := FromMatrixBlock(a, s.bs)
		res, err := Transpose(ba)
		if err != nil {
			t.Fatal(err)
		}
		got, err := res.ToMatrixBlock()
		if err != nil {
			t.Fatal(err)
		}
		if !matrix.Transpose(a).Equals(got, 0) {
			t.Errorf("%dx%d/%d: transpose differs", s.rows, s.cols, s.bs)
		}
	}
}

func TestRBindCBindMatchLocal(t *testing.T) {
	for _, s := range []struct{ r1, r2, c, bs int }{
		{64, 32, 50, 32}, // aligned fast path
		{70, 33, 50, 32}, // boundary re-assembly
		{5, 7, 3, 32},
	} {
		a, b := testMatrix(s.r1, s.c), testMatrix(s.r2, s.c)
		ba, _ := FromMatrixBlock(a, s.bs)
		bb, _ := FromMatrixBlock(b, s.bs)
		res, err := RBind(ba, bb)
		if err != nil {
			t.Fatal(err)
		}
		got, err := res.ToMatrixBlock()
		if err != nil {
			t.Fatal(err)
		}
		want, _ := matrix.RBind(a, b)
		if !want.Equals(got, 0) {
			t.Errorf("%v: rbind differs", s)
		}
	}
	for _, s := range []struct{ r, c1, c2, bs int }{
		{50, 64, 32, 32}, // aligned fast path
		{50, 70, 33, 32}, // boundary re-assembly
		{3, 5, 7, 32},
	} {
		a, b := testMatrix(s.r, s.c1), testMatrix(s.r, s.c2)
		ba, _ := FromMatrixBlock(a, s.bs)
		bb, _ := FromMatrixBlock(b, s.bs)
		res, err := CBind(ba, bb)
		if err != nil {
			t.Fatal(err)
		}
		got, err := res.ToMatrixBlock()
		if err != nil {
			t.Fatal(err)
		}
		want, _ := matrix.CBind(a, b)
		if !want.Equals(got, 0) {
			t.Errorf("%v: cbind differs", s)
		}
	}
	if _, err := RBind(&BlockedMatrix{Cols: 3, Blocksize: 32}, &BlockedMatrix{Cols: 4, Blocksize: 32}); err == nil {
		t.Error("rbind column mismatch should error")
	}
}

func TestAggregationsMatchLocal(t *testing.T) {
	for _, s := range shapes {
		a := testMatrix(s.rows, s.cols)
		ba, _ := FromMatrixBlock(a, s.bs)
		fulls := map[string]float64{
			"sum": matrix.Sum(a, 1), "sumsq": matrix.SumSq(a, 1), "mean": matrix.Mean(a, 1),
			"min": matrix.Min(a, 1), "max": matrix.Max(a, 1),
		}
		for op, want := range fulls {
			got, err := FullAgg(ba, op)
			if err != nil {
				t.Fatal(err)
			}
			if diff := got - want; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("%dx%d/%d: %s = %g, want %g", s.rows, s.cols, s.bs, op, got, want)
			}
		}
		rows := map[string]*matrix.MatrixBlock{
			"rowSums": matrix.RowSums(a, 1), "rowMeans": matrix.RowMeans(a, 1),
			"rowMaxs": matrix.RowMaxs(a), "rowMins": matrix.RowMins(a),
		}
		for op, want := range rows {
			res, err := RowAgg(ba, op)
			if err != nil {
				t.Fatal(err)
			}
			got, _ := res.ToMatrixBlock()
			if !want.Equals(got, 1e-9) {
				t.Errorf("%dx%d/%d: %s differs", s.rows, s.cols, s.bs, op)
			}
		}
		cols := map[string]*matrix.MatrixBlock{
			"colSums": matrix.ColSums(a, 1), "colMeans": matrix.ColMeans(a, 1),
			"colMaxs": matrix.ColMaxs(a), "colMins": matrix.ColMins(a),
		}
		for op, want := range cols {
			res, err := ColAgg(ba, op)
			if err != nil {
				t.Fatal(err)
			}
			got, _ := res.ToMatrixBlock()
			if !want.Equals(got, 1e-9) {
				t.Errorf("%dx%d/%d: %s differs", s.rows, s.cols, s.bs, op)
			}
		}
	}
	ba, _ := FromMatrixBlock(testMatrix(10, 10), 4)
	if _, err := FullAgg(ba, "median"); err == nil {
		t.Error("unsupported full aggregate should error")
	}
}

func TestTSMMMatchesLocal(t *testing.T) {
	a := testMatrix(70, 12)
	ba, _ := FromMatrixBlock(a, 32)
	got, err := TSMM(ba, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.TSMM(a, 1).Equals(got, 1e-9) {
		t.Error("blocked TSMM differs from local")
	}
}

func TestForEachBlockStopsAfterError(t *testing.T) {
	boom := errors.New("boom")
	var executed atomic.Int64
	// single worker: the first block fails, so no further block may execute
	err := forEachBlock("test", 10, 10, 1, func(bi, bj int) error {
		executed.Add(1)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := executed.Load(); n != 1 {
		t.Errorf("executed %d blocks after error, want 1", n)
	}
	// multiple workers: at most one in-flight block per worker can still run
	executed.Store(0)
	err = forEachBlock("test", 20, 20, 4, func(bi, bj int) error {
		executed.Add(1)
		return fmt.Errorf("fail (%d,%d)", bi, bj)
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := executed.Load(); n > 8 {
		t.Errorf("executed %d blocks after first error, want a small bound (<= 8)", n)
	}
}

func TestCellwiseErrorPropagates(t *testing.T) {
	a, _ := FromMatrixBlock(testMatrix(10, 10), 4)
	b, _ := FromMatrixBlock(testMatrix(10, 11), 4)
	if _, err := Cellwise(a, b, matrix.OpAdd); err == nil {
		t.Error("dimension mismatch should error")
	}
}
