package dist

import (
	"fmt"

	"github.com/systemds/systemds-go/internal/compress"
	"github.com/systemds/systemds-go/internal/matrix"
)

// Compressed blocked execution: a compressed matrix is partitioned by ROW
// RANGES OF THE COLUMN GROUPS instead of decompressing at the CP/dist
// boundary — each partition is itself a compressed matrix whose groups share
// the source dictionaries and re-base only codes, runs and positions
// (compress.SliceRows). The broadcast-right executors below then run the
// compressed kernels per partition, so the bytes that move between the
// "workers" stay compressed end to end.

// CompressedBlocked is a compressed matrix partitioned into row-range slices.
type CompressedBlocked struct {
	Rows, Cols  int
	RowsPerPart int
	// Parts[i] covers rows [i*RowsPerPart, min((i+1)*RowsPerPart, Rows)).
	Parts []*compress.CompressedMatrix
}

// NumParts returns the number of row partitions.
func (c *CompressedBlocked) NumParts() int { return len(c.Parts) }

// partRange returns the global row range of partition i.
func (c *CompressedBlocked) partRange(i int) (int, int) {
	r0 := i * c.RowsPerPart
	return r0, min(r0+c.RowsPerPart, c.Rows)
}

// InMemorySize sums the partition sizes (dictionaries shared with the source
// are charged per partition, matching what independent workers would hold).
func (c *CompressedBlocked) InMemorySize() int64 {
	var total int64
	for _, p := range c.Parts {
		total += p.InMemorySize()
	}
	return total
}

// PartitionCompressed splits a compressed matrix into row-range partitions of
// rowsPerPart rows without decompressing: every partition shares the source
// dictionaries and slices only the per-row state.
func PartitionCompressed(cm *compress.CompressedMatrix, rowsPerPart int) (*CompressedBlocked, error) {
	if rowsPerPart <= 0 {
		return nil, fmt.Errorf("dist: invalid compressed partition size %d", rowsPerPart)
	}
	out := &CompressedBlocked{Rows: cm.Rows(), Cols: cm.Cols(), RowsPerPart: rowsPerPart}
	n := ceilDiv(cm.Rows(), rowsPerPart)
	if n == 0 {
		n = 1
	}
	out.Parts = make([]*compress.CompressedMatrix, n)
	for i := 0; i < n; i++ {
		r0, r1 := out.partRange(i)
		if r1 < r0 {
			r1 = r0
		}
		out.Parts[i] = cm.SliceRows(r0, r1)
	}
	return out, nil
}

// CompressedMatVec computes X %*% v with a broadcast vector: each partition
// runs the compressed matrix-vector kernel over its own row range and owns
// the matching slice of the output, so partition-parallel execution needs no
// synchronization and results are bitwise identical across worker counts.
func CompressedMatVec(x *CompressedBlocked, v *matrix.MatrixBlock, workers int) (*matrix.MatrixBlock, error) {
	if v.Rows() != x.Cols {
		return nil, fmt.Errorf("dist: compressed matvec vector is %dx%d, want %dx1", v.Rows(), v.Cols(), x.Cols)
	}
	out := matrix.NewDense(x.Rows, 1)
	// Partitions own disjoint ranges of the dense backing slice; writing
	// through Set would race on the shared nnz counter.
	dv := out.DenseValues()
	err := forEachBlock("cmv-part", x.NumParts(), 1, workers, func(pi, _ int) error {
		res, err := x.Parts[pi].MatVec(v, 1)
		if err != nil {
			return err
		}
		r0, _ := x.partRange(pi)
		for r := 0; r < res.Rows(); r++ {
			dv[r0+r] = res.Get(r, 0)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out.RecomputeNNZ()
	return out, nil
}

// CompressedMatMult computes X %*% B with a broadcast dense right-hand side:
// each partition runs the compressed matrix right-hand-side kernel over its
// own row range and writes its disjoint slice of the output.
func CompressedMatMult(x *CompressedBlocked, b *matrix.MatrixBlock, workers int) (*matrix.MatrixBlock, error) {
	if b.Rows() != x.Cols {
		return nil, fmt.Errorf("dist: compressed matmult rhs is %dx%d, want %dx*", b.Rows(), b.Cols(), x.Cols)
	}
	k := b.Cols()
	out := matrix.NewDense(x.Rows, k)
	// Partitions own disjoint ranges of the dense backing slice; writing
	// through Set would race on the shared nnz counter.
	dv := out.DenseValues()
	err := forEachBlock("cmm-part", x.NumParts(), 1, workers, func(pi, _ int) error {
		res, err := x.Parts[pi].MatMultDense(b, 1)
		if err != nil {
			return err
		}
		r0, _ := x.partRange(pi)
		for r := 0; r < res.Rows(); r++ {
			for c := 0; c < k; c++ {
				dv[(r0+r)*k+c] = res.Get(r, c)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out.RecomputeNNZ()
	return out, nil
}

// CompressedTSMM computes t(X) %*% X over the partitioned compressed matrix:
// per-partition Gram matrices come straight off the (shared) dictionaries via
// the compressed TSMM kernel and are summed in ascending partition order, so
// the result is bitwise identical across worker counts.
func CompressedTSMM(x *CompressedBlocked, workers int) (*matrix.MatrixBlock, error) {
	partials := make([]*matrix.MatrixBlock, x.NumParts())
	err := forEachBlock("ctsmm-part", x.NumParts(), 1, workers, func(pi, _ int) error {
		partials[pi] = x.Parts[pi].TSMM(1)
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := partials[0]
	for i := 1; i < len(partials); i++ {
		out, err = matrix.CellwiseOp(out, partials[i], matrix.OpAdd, 1)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
