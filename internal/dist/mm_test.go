package dist

import (
	"testing"

	"github.com/systemds/systemds-go/internal/matrix"
)

// seqMatrix builds a deterministic dense matrix with non-trivial FP values.
func seqMatrix(rows, cols int, seed int64) *matrix.MatrixBlock {
	return matrix.RandUniform(rows, cols, -1, 1, 1.0, seed)
}

func TestMatMultBLMatchesLocal(t *testing.T) {
	for _, tc := range []struct{ m, k, n, bs int }{
		{8, 96, 64, 32},  // boundary blocks in every dimension
		{40, 64, 30, 32}, // non-aligned output grid
		{5, 33, 7, 16},
	} {
		a := seqMatrix(tc.m, tc.k, 11)
		b := seqMatrix(tc.k, tc.n, 12)
		bb, err := FromMatrixBlock(b, tc.bs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := MatMultBL(a, bb, 0)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		gotLocal, err := got.ToMatrixBlock()
		if err != nil {
			t.Fatal(err)
		}
		want, err := matrix.Multiply(a, b, 1)
		if err != nil {
			t.Fatal(err)
		}
		// BL accumulates k-stripes in place in ascending order, so it shares
		// the shuffle split's bitwise-equality guarantee
		if !want.Equals(gotLocal, 0) {
			t.Errorf("%+v: broadcast-left result differs from local multiply", tc)
		}
	}
}

// TestMatMultShuffleBitwiseEqualsLocal asserts the shuffle split's defining
// property: accumulating co-partitioned k-stripes in ascending order with the
// multiply-accumulate kernel reproduces the local dense multiplication
// bitwise, for aligned and boundary grids alike.
func TestMatMultShuffleBitwiseEqualsLocal(t *testing.T) {
	for _, tc := range []struct{ m, k, n, bs int }{
		{64, 128, 64, 32}, // aligned, 4 k-stripes
		{40, 100, 24, 32}, // boundary blocks, k not a stripe multiple
		{8, 256, 8, 32},   // long common dimension
	} {
		a := seqMatrix(tc.m, tc.k, 21)
		b := seqMatrix(tc.k, tc.n, 22)
		ba, err := FromMatrixBlock(a, tc.bs)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := FromMatrixBlock(b, tc.bs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := MatMultShuffle(ba, bb, 0)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		gotLocal, err := got.ToMatrixBlock()
		if err != nil {
			t.Fatal(err)
		}
		want, err := matrix.Multiply(a, b, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !want.Equals(gotLocal, 0) {
			t.Errorf("%+v: shuffle result is not bitwise-equal to the local multiply", tc)
		}
	}
}

// TestMatMultShuffleBitwiseAboveTiledCrossover re-runs the shuffle-split
// acceptance at shapes where the local one-shot multiply selects the tiled
// GEMM engine: with bs=64 each k-stripe product stays below the crossover
// (simple-kernel stripes accumulate onto a tiled-sized reference), while
// bs=256 pushes the stripe products themselves onto the tiled kernel. Both
// mixes must stay bitwise-equal to CP, which is exactly the
// accumulation-order contract the tiled engine preserves.
func TestMatMultShuffleBitwiseAboveTiledCrossover(t *testing.T) {
	const m, k, n = 160, 1024, 144
	if 2*m*k*n < matrix.TiledGEMMCrossoverFLOPs {
		t.Fatal("test shape no longer exceeds the tiled-kernel crossover")
	}
	a := seqMatrix(m, k, 31)
	b := seqMatrix(k, n, 32)
	want, err := matrix.Multiply(a, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, bs := range []int{64, 256} {
		ba, err := FromMatrixBlock(a, bs)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := FromMatrixBlock(b, bs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := MatMultShuffle(ba, bb, 0)
		if err != nil {
			t.Fatalf("bs=%d: %v", bs, err)
		}
		gotLocal, err := got.ToMatrixBlock()
		if err != nil {
			t.Fatal(err)
		}
		if !want.Equals(gotLocal, 0) {
			t.Errorf("bs=%d: shuffle result is not bitwise-equal to the tiled local multiply", bs)
		}
	}
}

func TestMatMultShuffleDimensionErrors(t *testing.T) {
	a, _ := FromMatrixBlock(seqMatrix(8, 8, 1), 4)
	b, _ := FromMatrixBlock(seqMatrix(9, 8, 2), 4)
	if _, err := MatMultShuffle(a, b, 0); err == nil {
		t.Error("dimension mismatch not rejected")
	}
	c, _ := FromMatrixBlock(seqMatrix(8, 8, 3), 8)
	if _, err := MatMultShuffle(a, c, 0); err == nil {
		t.Error("blocksize mismatch not rejected")
	}
}

func TestCellwiseVector(t *testing.T) {
	x := seqMatrix(40, 24, 31)
	col := seqMatrix(40, 1, 32)
	row := seqMatrix(1, 24, 33)
	bx, err := FromMatrixBlock(x, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		v    *matrix.MatrixBlock
		op   matrix.BinaryOp
		swap bool
	}{
		{"col-add", col, matrix.OpAdd, false},
		{"row-sub", row, matrix.OpSub, false},
		{"col-sub-swapped", col, matrix.OpSub, true},
		{"row-div-swapped", row, matrix.OpDiv, true},
	} {
		got, err := CellwiseVector(bx, tc.v, tc.op, tc.swap)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		gotLocal, err := got.ToMatrixBlock()
		if err != nil {
			t.Fatal(err)
		}
		var want *matrix.MatrixBlock
		if tc.swap {
			want, err = matrix.CellwiseOp(tc.v, x, tc.op, 1)
		} else {
			want, err = matrix.CellwiseOp(x, tc.v, tc.op, 1)
		}
		if err != nil {
			t.Fatal(err)
		}
		if !want.Equals(gotLocal, 0) {
			t.Errorf("%s: blocked broadcast differs from local kernel", tc.name)
		}
	}
	if _, err := CellwiseVector(bx, seqMatrix(7, 1, 9), matrix.OpAdd, false); err == nil {
		t.Error("non-broadcastable vector not rejected")
	}
}
