package dist

import (
	"math"
	"testing"

	"github.com/systemds/systemds-go/internal/compress"
	"github.com/systemds/systemds-go/internal/matrix"
)

// lowCardTestMatrix generates a deterministic compressible matrix: low
// cardinality in most columns, one run-heavy column, one noise column.
func lowCardTestMatrix(rows, cols int, seed int64) *matrix.MatrixBlock {
	noise := matrix.RandUniform(rows, cols, 0, 1, 1.0, seed)
	out := matrix.NewDense(rows, cols)
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			switch c % 3 {
			case 0:
				out.Set(r, c, math.Floor(noise.Get(r, c)*5))
			case 1:
				out.Set(r, c, float64((r/64)%7))
			default:
				out.Set(r, c, noise.Get(r, c))
			}
		}
	}
	out.RecomputeNNZ()
	return out
}

func compressForDist(t *testing.T, m *matrix.MatrixBlock) *compress.CompressedMatrix {
	t.Helper()
	cm, plan, ok := compress.Compress(m, compress.PlannerConfig{}, 1)
	if !ok {
		t.Fatalf("compression rejected: %+v", plan)
	}
	return cm
}

func assertClose(t *testing.T, name string, want, got *matrix.MatrixBlock) {
	t.Helper()
	if want.Rows() != got.Rows() || want.Cols() != got.Cols() {
		t.Fatalf("%s: got %dx%d, want %dx%d", name, got.Rows(), got.Cols(), want.Rows(), want.Cols())
	}
	for r := 0; r < want.Rows(); r++ {
		for c := 0; c < want.Cols(); c++ {
			w, g := want.Get(r, c), got.Get(r, c)
			diff := math.Abs(w - g)
			if diff > 1e-9 && diff > 1e-9*math.Abs(w) {
				t.Fatalf("%s: (%d,%d) got %v, want %v", name, r, c, g, w)
			}
		}
	}
}

func TestPartitionCompressedCoversRows(t *testing.T) {
	m := lowCardTestMatrix(700, 6, 1)
	cm := compressForDist(t, m)
	for _, rpp := range []int{64, 256, 700, 1000} {
		p, err := PartitionCompressed(cm, rpp)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for i := 0; i < p.NumParts(); i++ {
			r0, r1 := p.partRange(i)
			total += r1 - r0
		}
		if total != m.Rows() {
			t.Fatalf("rpp=%d: partitions cover %d rows, want %d", rpp, total, m.Rows())
		}
		// partitions decompress to exactly the matching row slices
		for i := 0; i < p.NumParts(); i++ {
			r0, r1 := p.partRange(i)
			want, err := matrix.Slice(m, r0, r1, 0, m.Cols())
			if err != nil {
				t.Fatal(err)
			}
			assertClose(t, "partition", want, p.Parts[i].Decompress())
		}
	}
}

func TestPartitionCompressedRejectsBadSize(t *testing.T) {
	cm := compressForDist(t, lowCardTestMatrix(100, 3, 2))
	if _, err := PartitionCompressed(cm, 0); err == nil {
		t.Fatal("expected error for rowsPerPart=0")
	}
}

func TestCompressedMatVecMatchesDense(t *testing.T) {
	m := lowCardTestMatrix(600, 6, 3)
	cm := compressForDist(t, m)
	v := matrix.RandUniform(m.Cols(), 1, -1, 1, 1.0, 7)
	want, err := matrix.Multiply(m, v, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PartitionCompressed(cm, 128)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		got, err := CompressedMatVec(p, v, workers)
		if err != nil {
			t.Fatal(err)
		}
		assertClose(t, "matvec", want, got)
	}
}

func TestCompressedMatMultMatchesDense(t *testing.T) {
	m := lowCardTestMatrix(500, 6, 4)
	cm := compressForDist(t, m)
	b := matrix.RandUniform(m.Cols(), 9, -1, 1, 1.0, 11)
	want, err := matrix.Multiply(m, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PartitionCompressed(cm, 96)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		got, err := CompressedMatMult(p, b, workers)
		if err != nil {
			t.Fatal(err)
		}
		assertClose(t, "matmult", want, got)
	}
}

func TestCompressedTSMMMatchesDense(t *testing.T) {
	m := lowCardTestMatrix(640, 7, 5)
	cm := compressForDist(t, m)
	want := matrix.TSMM(m, 1)
	p, err := PartitionCompressed(cm, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		got, err := CompressedTSMM(p, workers)
		if err != nil {
			t.Fatal(err)
		}
		assertClose(t, "tsmm", want, got)
	}
}

// TestCompressedDistBitwiseStable asserts the executors are bitwise identical
// across worker counts: partition-owned output rows (MV/MM) and ascending
// partial sums (TSMM) make thread count invisible to the result.
func TestCompressedDistBitwiseStable(t *testing.T) {
	m := lowCardTestMatrix(512, 6, 6)
	cm := compressForDist(t, m)
	v := matrix.RandUniform(m.Cols(), 1, -1, 1, 1.0, 13)
	b := matrix.RandUniform(m.Cols(), 5, -1, 1, 1.0, 17)
	p, err := PartitionCompressed(cm, 64)
	if err != nil {
		t.Fatal(err)
	}
	refMV, err := CompressedMatVec(p, v, 1)
	if err != nil {
		t.Fatal(err)
	}
	refMM, err := CompressedMatMult(p, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	refTS, err := CompressedTSMM(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		gotMV, err := CompressedMatVec(p, v, workers)
		if err != nil {
			t.Fatal(err)
		}
		gotMM, err := CompressedMatMult(p, b, workers)
		if err != nil {
			t.Fatal(err)
		}
		gotTS, err := CompressedTSMM(p, workers)
		if err != nil {
			t.Fatal(err)
		}
		for name, pair := range map[string][2]*matrix.MatrixBlock{
			"matvec": {refMV, gotMV}, "matmult": {refMM, gotMM}, "tsmm": {refTS, gotTS},
		} {
			ref, got := pair[0], pair[1]
			for r := 0; r < ref.Rows(); r++ {
				for c := 0; c < ref.Cols(); c++ {
					if math.Float64bits(ref.Get(r, c)) != math.Float64bits(got.Get(r, c)) {
						t.Fatalf("%s workers=%d: (%d,%d) not bitwise equal", name, workers, r, c)
					}
				}
			}
		}
	}
}
