package dist

import (
	"fmt"
	"math"

	"github.com/systemds/systemds-go/internal/matrix"
)

// Unary applies an element-wise unary operation block by block.
func Unary(a *BlockedMatrix, op matrix.UnaryOp) (*BlockedMatrix, error) {
	out := &BlockedMatrix{Rows: a.Rows, Cols: a.Cols, Blocksize: a.Blocksize,
		Blocks: make([]*matrix.MatrixBlock, len(a.Blocks))}
	gc := a.GridCols()
	err := forEachBlock("unary", a.GridRows(), gc, 0, func(bi, bj int) error {
		out.Blocks[bi*gc+bj] = matrix.UnaryApply(a.Blocks[bi*gc+bj], op, 1)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Scalar applies a matrix-scalar binary operation block by block; swap places
// the scalar on the left-hand side.
func Scalar(a *BlockedMatrix, s float64, op matrix.BinaryOp, swap bool) (*BlockedMatrix, error) {
	out := &BlockedMatrix{Rows: a.Rows, Cols: a.Cols, Blocksize: a.Blocksize,
		Blocks: make([]*matrix.MatrixBlock, len(a.Blocks))}
	gc := a.GridCols()
	err := forEachBlock("scalar", a.GridRows(), gc, 0, func(bi, bj int) error {
		out.Blocks[bi*gc+bj] = matrix.ScalarOp(a.Blocks[bi*gc+bj], s, op, swap, 1)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MatMultBB multiplies two blocked operands with a grid join: every output
// cell (i,j) joins the block row i of the left input with the block column j
// of the right input and accumulates the per-cell partial products — the
// replication-based join of the paper's data-parallel backend, used when both
// operands exceed the broadcast budget.
func MatMultBB(a, b *BlockedMatrix, threads int) (*BlockedMatrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("dist: matmult dimension mismatch %dx%d %%*%% %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if a.Blocksize != b.Blocksize {
		return nil, fmt.Errorf("dist: matmult blocksize mismatch %d vs %d", a.Blocksize, b.Blocksize)
	}
	out := &BlockedMatrix{Rows: a.Rows, Cols: b.Cols, Blocksize: a.Blocksize}
	gr, gc := out.GridRows(), out.GridCols()
	agc, bgc := a.GridCols(), b.GridCols()
	out.Blocks = make([]*matrix.MatrixBlock, gr*gc)
	err := forEachBlock("mm-grid", gr, gc, threads, func(bi, bj int) error {
		var acc *matrix.MatrixBlock
		for bk := 0; bk < agc; bk++ {
			part, err := matrix.Multiply(a.Blocks[bi*agc+bk], b.Blocks[bk*bgc+bj], 1)
			if err != nil {
				return err
			}
			if acc == nil {
				acc = part
			} else if acc, err = matrix.CellwiseOp(acc, part, matrix.OpAdd, 1); err != nil {
				return err
			}
		}
		out.Blocks[bi*gc+bj] = acc
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Transpose transposes a blocked matrix: each block is transposed locally and
// moved to the mirrored grid coordinate.
func Transpose(a *BlockedMatrix) (*BlockedMatrix, error) {
	out := &BlockedMatrix{Rows: a.Cols, Cols: a.Rows, Blocksize: a.Blocksize}
	gr, gc := a.GridRows(), a.GridCols()
	out.Blocks = make([]*matrix.MatrixBlock, gr*gc)
	err := forEachBlock("transpose", gr, gc, 0, func(bi, bj int) error {
		out.Blocks[bj*gr+bi] = matrix.Transpose(a.Blocks[bi*gc+bj])
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RBind stacks two blocked matrices vertically. When the first operand's rows
// are block-aligned the grids are concatenated by reference; otherwise the
// output blocks are re-assembled from the covering regions of both inputs.
func RBind(a, b *BlockedMatrix) (*BlockedMatrix, error) {
	if a.Cols != b.Cols || a.Blocksize != b.Blocksize {
		return nil, fmt.Errorf("dist: rbind mismatch %dx%d/%d vs %dx%d/%d",
			a.Rows, a.Cols, a.Blocksize, b.Rows, b.Cols, b.Blocksize)
	}
	out := &BlockedMatrix{Rows: a.Rows + b.Rows, Cols: a.Cols, Blocksize: a.Blocksize}
	if a.Rows%a.Blocksize == 0 {
		// blocks are immutable, so sharing them between inputs and output is safe
		out.Blocks = make([]*matrix.MatrixBlock, 0, len(a.Blocks)+len(b.Blocks))
		out.Blocks = append(append(out.Blocks, a.Blocks...), b.Blocks...)
		return out, nil
	}
	gr, gc := out.GridRows(), out.GridCols()
	out.Blocks = make([]*matrix.MatrixBlock, gr*gc)
	err := forEachBlock("rbind", gr, gc, 0, func(bi, bj int) error {
		rl, ru := bi*out.Blocksize, min(bi*out.Blocksize+out.Blocksize, out.Rows)
		cl, cu := bj*out.Blocksize, min(bj*out.Blocksize+out.Blocksize, out.Cols)
		var parts []*matrix.MatrixBlock
		if rl < a.Rows {
			top, err := a.Region(rl, min(ru, a.Rows), cl, cu)
			if err != nil {
				return err
			}
			parts = append(parts, top)
		}
		if ru > a.Rows {
			bot, err := b.Region(max(rl-a.Rows, 0), ru-a.Rows, cl, cu)
			if err != nil {
				return err
			}
			parts = append(parts, bot)
		}
		blk, err := matrix.RBind(parts...)
		if err != nil {
			return err
		}
		out.Blocks[bi*gc+bj] = blk
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CBind concatenates two blocked matrices horizontally, re-assembling
// boundary-spanning output blocks from the covering regions of both inputs.
func CBind(a, b *BlockedMatrix) (*BlockedMatrix, error) {
	if a.Rows != b.Rows || a.Blocksize != b.Blocksize {
		return nil, fmt.Errorf("dist: cbind mismatch %dx%d/%d vs %dx%d/%d",
			a.Rows, a.Cols, a.Blocksize, b.Rows, b.Cols, b.Blocksize)
	}
	out := &BlockedMatrix{Rows: a.Rows, Cols: a.Cols + b.Cols, Blocksize: a.Blocksize}
	gr, gc := out.GridRows(), out.GridCols()
	out.Blocks = make([]*matrix.MatrixBlock, gr*gc)
	if a.Cols%a.Blocksize == 0 {
		agc, bgc := a.GridCols(), b.GridCols()
		for bi := 0; bi < gr; bi++ {
			copy(out.Blocks[bi*gc:], a.Blocks[bi*agc:(bi+1)*agc])
			copy(out.Blocks[bi*gc+agc:], b.Blocks[bi*bgc:(bi+1)*bgc])
		}
		return out, nil
	}
	err := forEachBlock("cbind", gr, gc, 0, func(bi, bj int) error {
		rl, ru := bi*out.Blocksize, min(bi*out.Blocksize+out.Blocksize, out.Rows)
		cl, cu := bj*out.Blocksize, min(bj*out.Blocksize+out.Blocksize, out.Cols)
		var parts []*matrix.MatrixBlock
		if cl < a.Cols {
			left, err := a.Region(rl, ru, cl, min(cu, a.Cols))
			if err != nil {
				return err
			}
			parts = append(parts, left)
		}
		if cu > a.Cols {
			right, err := b.Region(rl, ru, max(cl-a.Cols, 0), cu-a.Cols)
			if err != nil {
				return err
			}
			parts = append(parts, right)
		}
		blk, err := matrix.CBind(parts...)
		if err != nil {
			return err
		}
		out.Blocks[bi*gc+bj] = blk
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FullAgg computes a full aggregate (sum, sumsq, mean, min, max) over a
// blocked matrix: per-block partials computed in parallel, combined locally
// (the aggregation tree of the distributed backend).
func FullAgg(a *BlockedMatrix, op string) (float64, error) {
	partials := make([]float64, len(a.Blocks))
	gc := a.GridCols()
	var perBlock func(b *matrix.MatrixBlock) float64
	combine := func(x, y float64) float64 { return x + y }
	switch op {
	case "sum", "mean":
		perBlock = func(b *matrix.MatrixBlock) float64 { return matrix.Sum(b, 1) }
	case "sumsq":
		perBlock = func(b *matrix.MatrixBlock) float64 { return matrix.SumSq(b, 1) }
	case "min":
		perBlock = func(b *matrix.MatrixBlock) float64 { return matrix.Min(b, 1) }
		combine = math.Min
	case "max":
		perBlock = func(b *matrix.MatrixBlock) float64 { return matrix.Max(b, 1) }
		combine = math.Max
	default:
		return 0, fmt.Errorf("dist: unsupported full aggregate %q", op)
	}
	err := forEachBlock("full-agg", a.GridRows(), gc, 0, func(bi, bj int) error {
		partials[bi*gc+bj] = perBlock(a.Blocks[bi*gc+bj])
		return nil
	})
	if err != nil {
		return 0, err
	}
	res := partials[0]
	for _, p := range partials[1:] {
		res = combine(res, p)
	}
	if op == "mean" {
		res /= float64(a.Rows) * float64(a.Cols)
	}
	return res, nil
}

// RowAgg computes a row-wise aggregate (rowSums, rowMeans, rowMaxs, rowMins)
// returning a blocked Rows x 1 column vector: each block-row strip combines
// its per-block row aggregates without leaving the blocked representation.
func RowAgg(a *BlockedMatrix, op string) (*BlockedMatrix, error) {
	var perBlock func(b *matrix.MatrixBlock) *matrix.MatrixBlock
	combine := matrix.OpAdd
	switch op {
	case "rowSums", "rowMeans":
		perBlock = func(b *matrix.MatrixBlock) *matrix.MatrixBlock { return matrix.RowSums(b, 1) }
	case "rowMaxs":
		perBlock = matrix.RowMaxs
		combine = matrix.OpMax
	case "rowMins":
		perBlock = matrix.RowMins
		combine = matrix.OpMin
	default:
		return nil, fmt.Errorf("dist: unsupported row aggregate %q", op)
	}
	out := &BlockedMatrix{Rows: a.Rows, Cols: 1, Blocksize: a.Blocksize}
	gr, gc := a.GridRows(), a.GridCols()
	out.Blocks = make([]*matrix.MatrixBlock, gr)
	err := forEachBlock("row-agg", gr, 1, 0, func(bi, _ int) error {
		acc := perBlock(a.Blocks[bi*gc])
		var err error
		for bj := 1; bj < gc; bj++ {
			if acc, err = matrix.CellwiseOp(acc, perBlock(a.Blocks[bi*gc+bj]), combine, 1); err != nil {
				return err
			}
		}
		if op == "rowMeans" {
			acc = matrix.ScalarOp(acc, float64(a.Cols), matrix.OpDiv, false, 1)
		}
		out.Blocks[bi] = acc
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ColAgg computes a column-wise aggregate (colSums, colMeans, colMaxs,
// colMins) returning a blocked 1 x Cols row vector.
func ColAgg(a *BlockedMatrix, op string) (*BlockedMatrix, error) {
	var perBlock func(b *matrix.MatrixBlock) *matrix.MatrixBlock
	combine := matrix.OpAdd
	switch op {
	case "colSums", "colMeans":
		perBlock = func(b *matrix.MatrixBlock) *matrix.MatrixBlock { return matrix.ColSums(b, 1) }
	case "colMaxs":
		perBlock = matrix.ColMaxs
		combine = matrix.OpMax
	case "colMins":
		perBlock = matrix.ColMins
		combine = matrix.OpMin
	default:
		return nil, fmt.Errorf("dist: unsupported column aggregate %q", op)
	}
	out := &BlockedMatrix{Rows: 1, Cols: a.Cols, Blocksize: a.Blocksize}
	gr, gc := a.GridRows(), a.GridCols()
	out.Blocks = make([]*matrix.MatrixBlock, gc)
	err := forEachBlock("col-agg", 1, gc, 0, func(_, bj int) error {
		acc := perBlock(a.Blocks[bj])
		var err error
		for bi := 1; bi < gr; bi++ {
			if acc, err = matrix.CellwiseOp(acc, perBlock(a.Blocks[bi*gc+bj]), combine, 1); err != nil {
				return err
			}
		}
		if op == "colMeans" {
			acc = matrix.ScalarOp(acc, float64(a.Rows), matrix.OpDiv, false, 1)
		}
		out.Blocks[bj] = acc
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
