// Package dist implements the blocked "distributed" matrix backend of
// SystemDS-Go (Section 2.3): large matrices are partitioned into a grid of
// squared blocks and operations are executed block-wise over a local worker
// pool, mirroring the data-parallel Spark backend of SystemDS at the level of
// one machine. The compiler selects this backend for operators whose memory
// estimate exceeds the per-operator budget.
package dist

import (
	"fmt"
	"sync"

	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/obs"
)

// BlockedMatrix is a matrix partitioned into a grid of blocks of size
// Blocksize x Blocksize (boundary blocks are smaller). Blocks are stored
// row-major by grid coordinate.
type BlockedMatrix struct {
	Rows, Cols int
	Blocksize  int
	// Blocks[bi*GridCols()+bj] holds the block covering rows
	// [bi*Blocksize, min((bi+1)*Blocksize, Rows)) and the analogous columns.
	Blocks []*matrix.MatrixBlock
}

// GridRows returns the number of block rows.
func (b *BlockedMatrix) GridRows() int { return ceilDiv(b.Rows, b.Blocksize) }

// GridCols returns the number of block columns.
func (b *BlockedMatrix) GridCols() int { return ceilDiv(b.Cols, b.Blocksize) }

// Block returns the block at grid coordinate (bi, bj).
func (b *BlockedMatrix) Block(bi, bj int) *matrix.MatrixBlock {
	return b.Blocks[bi*b.GridCols()+bj]
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// FromMatrixBlock partitions a local matrix into a blocked matrix.
func FromMatrixBlock(m *matrix.MatrixBlock, blocksize int) (*BlockedMatrix, error) {
	sp := obs.Begin(obs.CatDist, "partition")
	bm, err := fromMatrixBlock(m, blocksize)
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.EndBytes(bm.InMemorySize())
	return bm, nil
}

func fromMatrixBlock(m *matrix.MatrixBlock, blocksize int) (*BlockedMatrix, error) {
	if blocksize <= 0 {
		return nil, fmt.Errorf("dist: invalid blocksize %d", blocksize)
	}
	bm := &BlockedMatrix{Rows: m.Rows(), Cols: m.Cols(), Blocksize: blocksize}
	gr, gc := bm.GridRows(), bm.GridCols()
	bm.Blocks = make([]*matrix.MatrixBlock, gr*gc)
	for bi := 0; bi < gr; bi++ {
		for bj := 0; bj < gc; bj++ {
			rl, ru := bi*blocksize, min(bi*blocksize+blocksize, m.Rows())
			cl, cu := bj*blocksize, min(bj*blocksize+blocksize, m.Cols())
			blk, err := matrix.Slice(m, rl, ru, cl, cu)
			if err != nil {
				return nil, fmt.Errorf("dist: partition block (%d,%d): %w", bi, bj, err)
			}
			bm.Blocks[bi*gc+bj] = blk
		}
	}
	return bm, nil
}

// ToMatrixBlock collects the blocked matrix into one local matrix.
func (b *BlockedMatrix) ToMatrixBlock() (*matrix.MatrixBlock, error) {
	out := matrix.NewDense(b.Rows, b.Cols)
	gc := b.GridCols()
	var err error
	for bi := 0; bi < b.GridRows(); bi++ {
		for bj := 0; bj < gc; bj++ {
			blk := b.Blocks[bi*gc+bj]
			if blk == nil {
				return nil, fmt.Errorf("dist: missing block (%d,%d)", bi, bj)
			}
			rl, cl := bi*b.Blocksize, bj*b.Blocksize
			out, err = matrix.LeftIndex(out, blk, rl, rl+blk.Rows(), cl, cl+blk.Cols())
			if err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Region assembles the sub-matrix covering rows [rl, ru) and columns
// [cl, cu) by stitching together the slices of the covering blocks, without
// collecting the whole matrix.
func (b *BlockedMatrix) Region(rl, ru, cl, cu int) (*matrix.MatrixBlock, error) {
	if rl < 0 || ru > b.Rows || cl < 0 || cu > b.Cols || rl >= ru || cl >= cu {
		return nil, fmt.Errorf("dist: region [%d:%d,%d:%d] out of bounds for %dx%d", rl, ru, cl, cu, b.Rows, b.Cols)
	}
	out := matrix.NewDense(ru-rl, cu-cl)
	gc := b.GridCols()
	for bi := rl / b.Blocksize; bi <= (ru-1)/b.Blocksize; bi++ {
		for bj := cl / b.Blocksize; bj <= (cu-1)/b.Blocksize; bj++ {
			blk := b.Blocks[bi*gc+bj]
			if blk == nil {
				return nil, fmt.Errorf("dist: missing block (%d,%d)", bi, bj)
			}
			// overlap of the block with the requested region, in global
			// coords; cells are written straight into the dense output
			r0, r1 := max(rl, bi*b.Blocksize), min(ru, bi*b.Blocksize+blk.Rows())
			c0, c1 := max(cl, bj*b.Blocksize), min(cu, bj*b.Blocksize+blk.Cols())
			for r := r0; r < r1; r++ {
				for c := c0; c < c1; c++ {
					out.Set(r-rl, c-cl, blk.Get(r-bi*b.Blocksize, c-bj*b.Blocksize))
				}
			}
		}
	}
	return out, nil
}

// forEachBlock runs fn for every grid coordinate on a bounded worker pool,
// recording each block task as a "dist" span named by op. After the first
// error, the feed loop stops and workers drain the remaining queued
// coordinates without executing them. workers is the pool width —
// deliberately not a kernel thread count: the blocked backend parallelizes
// across blocks (workers <= 0 means one worker per CPU) while the kernels it
// invokes run single-threaded under the inner-pool contract.
func forEachBlock(op string, gridRows, gridCols, workers int, fn func(bi, bj int) error) error {
	if workers <= 0 {
		workers = matrix.DefaultParallelism()
	}
	type coord struct{ bi, bj int }
	work := make(chan coord)
	done := make(chan struct{})
	errOnce := sync.Once{}
	var firstErr error
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range work {
				select {
				case <-done:
					continue
				default:
				}
				sp := obs.Begin(obs.CatDist, op)
				err := fn(c.bi, c.bj)
				sp.End()
				if err != nil {
					errOnce.Do(func() {
						firstErr = err
						close(done)
					})
				}
			}
		}()
	}
feed:
	for bi := 0; bi < gridRows; bi++ {
		for bj := 0; bj < gridCols; bj++ {
			select {
			case work <- coord{bi, bj}:
			case <-done:
				break feed
			}
		}
	}
	close(work)
	wg.Wait()
	return firstErr
}

// Cellwise applies an element-wise binary operation over two aligned blocked
// matrices block by block.
func Cellwise(a, b *BlockedMatrix, op matrix.BinaryOp) (*BlockedMatrix, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols || a.Blocksize != b.Blocksize {
		return nil, fmt.Errorf("dist: cellwise dimension mismatch %dx%d/%d vs %dx%d/%d",
			a.Rows, a.Cols, a.Blocksize, b.Rows, b.Cols, b.Blocksize)
	}
	out := &BlockedMatrix{Rows: a.Rows, Cols: a.Cols, Blocksize: a.Blocksize,
		Blocks: make([]*matrix.MatrixBlock, len(a.Blocks))}
	gc := a.GridCols()
	err := forEachBlock("cellwise", a.GridRows(), gc, 0, func(bi, bj int) error {
		res, err := matrix.CellwiseOp(a.Blocks[bi*gc+bj], b.Blocks[bi*gc+bj], op, 1)
		if err != nil {
			return err
		}
		out.Blocks[bi*gc+bj] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CellwiseVector applies an element-wise binary operation between a blocked
// matrix and a broadcast row or column vector: each block combines with the
// matching slice of the vector, so cellwise pipelines with vector leaves stay
// blocked instead of collecting the blocked operand. swap places the vector
// on the left-hand side of the operator.
func CellwiseVector(a *BlockedMatrix, v *matrix.MatrixBlock, op matrix.BinaryOp, swap bool) (*BlockedMatrix, error) {
	colVec := v.Cols() == 1 && v.Rows() == a.Rows
	rowVec := v.Rows() == 1 && v.Cols() == a.Cols
	if !colVec && !rowVec {
		return nil, fmt.Errorf("dist: cellwise vector %dx%d does not broadcast against %dx%d",
			v.Rows(), v.Cols(), a.Rows, a.Cols)
	}
	out := &BlockedMatrix{Rows: a.Rows, Cols: a.Cols, Blocksize: a.Blocksize,
		Blocks: make([]*matrix.MatrixBlock, len(a.Blocks))}
	gr, gc := a.GridRows(), a.GridCols()
	// the vector segment is shared by every block of a strip; slice once per
	// block row (column vector) or block column (row vector), not per block
	nseg := gr
	if rowVec {
		nseg = gc
	}
	segs := make([]*matrix.MatrixBlock, nseg)
	for i := range segs {
		lo := i * a.Blocksize
		var err error
		if colVec {
			segs[i], err = matrix.Slice(v, lo, min(lo+a.Blocksize, a.Rows), 0, 1)
		} else {
			segs[i], err = matrix.Slice(v, 0, 1, lo, min(lo+a.Blocksize, a.Cols))
		}
		if err != nil {
			return nil, err
		}
	}
	err := forEachBlock("cellwise-vector", gr, gc, 0, func(bi, bj int) error {
		blk := a.Blocks[bi*gc+bj]
		var seg *matrix.MatrixBlock
		if rowVec {
			seg = segs[bj]
		} else {
			seg = segs[bi]
		}
		var res *matrix.MatrixBlock
		var err error
		if swap {
			res, err = matrix.CellwiseOp(seg, blk, op, 1)
		} else {
			res, err = matrix.CellwiseOp(blk, seg, op, 1)
		}
		if err != nil {
			return err
		}
		out.Blocks[bi*gc+bj] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MatMult multiplies a blocked left operand with a local (broadcast) right
// operand: every block-row strip of the left input is multiplied with the
// matching row slice of the right operand independently — the map-side
// broadcast join of the paper's data-parallel backend.
func MatMult(a *BlockedMatrix, b *matrix.MatrixBlock, threads int) (*BlockedMatrix, error) {
	if a.Cols != b.Rows() {
		return nil, fmt.Errorf("dist: matmult dimension mismatch %dx%d %%*%% %dx%d",
			a.Rows, a.Cols, b.Rows(), b.Cols())
	}
	out := &BlockedMatrix{Rows: a.Rows, Cols: b.Cols(), Blocksize: a.Blocksize}
	gr, agc, ogc := a.GridRows(), a.GridCols(), out.GridCols()
	out.Blocks = make([]*matrix.MatrixBlock, gr*ogc)
	err := forEachBlock("mm-broadcast", gr, 1, threads, func(bi, _ int) error {
		// accumulate the full output strip for block-row bi
		var strip *matrix.MatrixBlock
		for bk := 0; bk < agc; bk++ {
			left := a.Blocks[bi*agc+bk]
			bSlice, err := matrix.Slice(b, bk*a.Blocksize, bk*a.Blocksize+left.Cols(), 0, b.Cols())
			if err != nil {
				return err
			}
			part, err := matrix.Multiply(left, bSlice, 1)
			if err != nil {
				return err
			}
			if strip == nil {
				strip = part
			} else if strip, err = matrix.CellwiseOp(strip, part, matrix.OpAdd, 1); err != nil {
				return err
			}
		}
		// split the strip into output blocks
		for bj := 0; bj < ogc; bj++ {
			cl, cu := bj*out.Blocksize, min(bj*out.Blocksize+out.Blocksize, out.Cols)
			blk, err := matrix.Slice(strip, 0, strip.Rows(), cl, cu)
			if err != nil {
				return err
			}
			out.Blocks[bi*ogc+bj] = blk
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// TSMM computes t(X) %*% X over a blocked input: per-strip partial Gram
// matrices t(X_i) %*% X_i are computed in parallel and summed (the
// aggregation tree of the distributed backend), returning a local result
// because the output is only cols x cols.
func TSMM(x *BlockedMatrix, threads int) (*matrix.MatrixBlock, error) {
	if threads <= 0 {
		threads = matrix.DefaultParallelism()
	}
	gr, gc := x.GridRows(), x.GridCols()
	partials := make([]*matrix.MatrixBlock, gr)
	err := forEachBlock("tsmm", gr, 1, threads, func(bi, _ int) error {
		// reassemble the block-row strip (cheap: gc is small for tall-skinny
		// inputs, the common TSMM shape)
		strip := x.Blocks[bi*gc]
		var err error
		if gc > 1 {
			row := make([]*matrix.MatrixBlock, gc)
			copy(row, x.Blocks[bi*gc:(bi+1)*gc])
			strip, err = matrix.CBind(row...)
			if err != nil {
				return err
			}
		}
		partials[bi] = matrix.TSMM(strip, 1)
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := partials[0]
	for i := 1; i < gr; i++ {
		out, err = matrix.CellwiseOp(out, partials[i], matrix.OpAdd, 1)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
