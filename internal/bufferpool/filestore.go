package bufferpool

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// FileStore is a budgeted directory of spill files keyed by a 64-bit hash,
// used by the persistent lineage store to keep reuse-cache entries alive
// across processes (the cross-run half of Section 3.1's lineage-based reuse).
// Each entry is one self-describing file carrying a verification key (the
// rendered lineage DAG), the compute time the payload saved, and a payload
// checksum. The store tolerates corruption: a file that fails any structural
// check is deleted and reported as a miss, never an error — the caller simply
// recomputes.
//
// Eviction under the byte budget is cost-benefit, not LRU: the entry with the
// lowest computeNs-saved-per-byte-retained score is dropped first, so a large
// cheap intermediate never crowds out a small expensive one.
type FileStore struct {
	dir    string
	budget int64

	mu      sync.Mutex
	entries map[uint64]*fileEntry
	total   int64
	stats   FileStoreStats
}

// fileEntry is the in-memory index record of one store file.
type fileEntry struct {
	key       string
	size      int64 // payload bytes (the budget-relevant quantity)
	computeNs int64
}

// FileStoreStats reports persistent-store activity.
type FileStoreStats struct {
	// Files and Bytes describe the current store contents (payload bytes).
	Files int
	Bytes int64
	// Hits/Misses/Puts count Get and Put outcomes; Skipped counts Puts of
	// already-present entries.
	Hits    int64
	Misses  int64
	Puts    int64
	Skipped int64
	// Evictions counts budget evictions, CorruptDropped files deleted because
	// a structural check failed (bad magic, truncation, checksum mismatch).
	Evictions      int64
	CorruptDropped int64
	// BytesWritten and BytesRead count payload traffic.
	BytesWritten int64
	BytesRead    int64
}

const (
	// fileStoreMagic identifies lineage store files ("SDSL").
	fileStoreMagic   uint32 = 0x5344534C
	fileStoreVersion uint32 = 1
	// fileStoreHeaderLen is the fixed-length prefix before key and payload:
	// magic(4) version(4) hash(8) computeNs(8) keyLen(4) payloadLen(8)
	// checksum(8).
	fileStoreHeaderLen = 44
	filePrefix         = "lin_"
	fileSuffix         = ".bin"
)

// OpenFileStore opens (creating if needed) a store directory and indexes the
// entries already present. Files failing the structural checks are deleted
// and counted, not reported as errors.
func OpenFileStore(dir string, budgetBytes int64) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("bufferpool: filestore dir %s: %w", dir, err)
	}
	s := &FileStore{dir: dir, budget: budgetBytes, entries: map[uint64]*fileEntry{}}
	listing, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("bufferpool: filestore scan %s: %w", dir, err)
	}
	for _, de := range listing {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		if strings.HasSuffix(name, ".tmp") {
			// leftover from an interrupted atomic write
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if !strings.HasPrefix(name, filePrefix) || !strings.HasSuffix(name, fileSuffix) {
			continue
		}
		path := filepath.Join(dir, name)
		hash, e, ok := readIndexEntry(path)
		if !ok {
			os.Remove(path)
			s.stats.CorruptDropped++
			continue
		}
		s.entries[hash] = e
		s.total += e.size
	}
	return s, nil
}

// readIndexEntry validates a store file's header and returns its index
// record without reading the payload.
func readIndexEntry(path string) (uint64, *fileEntry, bool) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, false
	}
	defer f.Close()
	var header [fileStoreHeaderLen]byte
	if _, err := f.Read(header[:]); err != nil {
		return 0, nil, false
	}
	magic := binary.LittleEndian.Uint32(header[0:])
	version := binary.LittleEndian.Uint32(header[4:])
	hash := binary.LittleEndian.Uint64(header[8:])
	computeNs := int64(binary.LittleEndian.Uint64(header[16:]))
	keyLen := int64(binary.LittleEndian.Uint32(header[24:]))
	payloadLen := int64(binary.LittleEndian.Uint64(header[28:]))
	if magic != fileStoreMagic || version != fileStoreVersion || keyLen < 0 || payloadLen < 0 {
		return 0, nil, false
	}
	info, err := f.Stat()
	if err != nil || info.Size() != fileStoreHeaderLen+keyLen+payloadLen {
		return 0, nil, false
	}
	keyBytes := make([]byte, keyLen)
	if _, err := readFull(f, keyBytes); err != nil {
		return 0, nil, false
	}
	return hash, &fileEntry{key: string(keyBytes), size: payloadLen, computeNs: computeNs}, true
}

func readFull(f *os.File, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := f.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

func (s *FileStore) path(hash uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%016x%s", filePrefix, hash, fileSuffix))
}

func payloadChecksum(payload []byte) uint64 {
	h := fnv.New64a()
	h.Write(payload)
	return h.Sum64()
}

// Put stores a payload under (hash, key). A Put whose hash is already present
// with the same key is skipped (the entry is immutable); a different key on
// the same hash (a hash collision or stale file) is overwritten. Payloads
// larger than the whole budget are rejected. Writes are atomic
// (tmp + rename), so a crash never leaves a half-written entry visible.
func (s *FileStore) Put(hash uint64, key string, payload []byte, computeNs int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.budget > 0 && int64(len(payload)) > s.budget {
		return fmt.Errorf("bufferpool: filestore payload of %d bytes exceeds budget %d", len(payload), s.budget)
	}
	if e, ok := s.entries[hash]; ok {
		if e.key == key {
			s.stats.Skipped++
			return nil
		}
		s.removeLocked(hash)
	}
	for s.budget > 0 && s.total+int64(len(payload)) > s.budget && len(s.entries) > 0 {
		s.evictMinBenefitLocked()
	}
	path := s.path(hash)
	tmp := path + ".tmp"
	if err := s.writeFile(tmp, hash, key, payload, computeNs); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("bufferpool: filestore rename: %w", err)
	}
	s.entries[hash] = &fileEntry{key: key, size: int64(len(payload)), computeNs: computeNs}
	s.total += int64(len(payload))
	s.stats.Puts++
	s.stats.BytesWritten += int64(len(payload))
	return nil
}

func (s *FileStore) writeFile(path string, hash uint64, key string, payload []byte, computeNs int64) error {
	var header [fileStoreHeaderLen]byte
	binary.LittleEndian.PutUint32(header[0:], fileStoreMagic)
	binary.LittleEndian.PutUint32(header[4:], fileStoreVersion)
	binary.LittleEndian.PutUint64(header[8:], hash)
	binary.LittleEndian.PutUint64(header[16:], uint64(computeNs))
	binary.LittleEndian.PutUint32(header[24:], uint32(len(key)))
	binary.LittleEndian.PutUint64(header[28:], uint64(len(payload)))
	binary.LittleEndian.PutUint64(header[36:], payloadChecksum(payload))
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("bufferpool: filestore create: %w", err)
	}
	for _, chunk := range [][]byte{header[:], []byte(key), payload} {
		if _, err := f.Write(chunk); err != nil {
			f.Close()
			return fmt.Errorf("bufferpool: filestore write: %w", err)
		}
	}
	return f.Close()
}

// Get returns the payload stored under (hash, key). A mismatched key, a
// failed checksum or any truncation drops the file and reports a miss.
func (s *FileStore) Get(hash uint64, key string) (payload []byte, computeNs int64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, present := s.entries[hash]
	if !present || e.key != key {
		s.stats.Misses++
		return nil, 0, false
	}
	data, err := os.ReadFile(s.path(hash))
	if err == nil && int64(len(data)) == fileStoreHeaderLen+int64(len(e.key))+e.size {
		stored := binary.LittleEndian.Uint64(data[36:])
		payload = data[fileStoreHeaderLen+len(e.key):]
		if payloadChecksum(payload) == stored {
			s.stats.Hits++
			s.stats.BytesRead += int64(len(payload))
			return payload, e.computeNs, true
		}
	}
	// the file changed or rotted underneath the index: drop it and recompute
	s.removeLocked(hash)
	s.stats.CorruptDropped++
	s.stats.Misses++
	return nil, 0, false
}

// Remove deletes the entry stored under hash, if any.
func (s *FileStore) Remove(hash uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.removeLocked(hash)
}

func (s *FileStore) removeLocked(hash uint64) {
	e, ok := s.entries[hash]
	if !ok {
		return
	}
	delete(s.entries, hash)
	s.total -= e.size
	os.Remove(s.path(hash))
}

// evictMinBenefitLocked drops the entry with the lowest cost-benefit score
// (computeNs saved per payload byte retained). Ties break towards the lower
// hash so eviction order is deterministic regardless of map iteration.
func (s *FileStore) evictMinBenefitLocked() {
	hashes := make([]uint64, 0, len(s.entries))
	for h := range s.entries {
		hashes = append(hashes, h)
	}
	sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
	victim, found := uint64(0), false
	var victimScore float64
	for _, h := range hashes {
		e := s.entries[h]
		size := e.size
		if size < 1 {
			size = 1
		}
		score := float64(e.computeNs) / float64(size)
		if !found || score < victimScore {
			victim, victimScore, found = h, score, true
		}
	}
	if !found {
		return
	}
	s.removeLocked(victim)
	s.stats.Evictions++
}

// Len returns the number of indexed entries.
func (s *FileStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Stats returns a snapshot of the store statistics.
func (s *FileStore) Stats() FileStoreStats {
	if s == nil {
		return FileStoreStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Files = len(s.entries)
	st.Bytes = s.total
	return st
}
