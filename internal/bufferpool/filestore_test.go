package bufferpool

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestFileStoreRoundTrip(t *testing.T) {
	s, err := OpenFileStore(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("intermediate-bytes")
	if err := s.Put(42, "tsmm(X)", payload, 5_000_000); err != nil {
		t.Fatal(err)
	}
	got, computeNs, ok := s.Get(42, "tsmm(X)")
	if !ok || !bytes.Equal(got, payload) || computeNs != 5_000_000 {
		t.Fatalf("Get = (%q, %d, %v), want (%q, 5000000, true)", got, computeNs, ok, payload)
	}
	// wrong key on the right hash (a hash collision) is a miss, but the
	// entry survives for its rightful owner
	if _, _, ok := s.Get(42, "tsmm(Y)"); ok {
		t.Fatal("mismatched key must miss")
	}
	if _, _, ok := s.Get(42, "tsmm(X)"); !ok {
		t.Fatal("colliding probe must not destroy the entry")
	}
}

func TestFileStorePersistsAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenFileStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(7, "k", []byte("payload"), 99); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFileStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	got, computeNs, ok := s2.Get(7, "k")
	if !ok || string(got) != "payload" || computeNs != 99 {
		t.Fatalf("reopened store Get = (%q, %d, %v)", got, computeNs, ok)
	}
}

func TestFileStoreDuplicatePutSkipped(t *testing.T) {
	s, err := OpenFileStore(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put(1, "k", []byte("v"), 10); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Puts != 1 || st.Skipped != 2 {
		t.Fatalf("puts=%d skipped=%d, want 1 and 2", st.Puts, st.Skipped)
	}
}

// TestFileStoreCostBenefitEviction checks the eviction order under budget
// pressure: the entry with the lowest computeNs-per-byte score goes first,
// regardless of insertion order.
func TestFileStoreCostBenefitEviction(t *testing.T) {
	payload := make([]byte, 400)
	s, err := OpenFileStore(t.TempDir(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	// cheap entry first (score 1000/400), then expensive (1e9/400)
	if err := s.Put(1, "cheap", payload, 1_000); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(2, "expensive", payload, 1_000_000_000); err != nil {
		t.Fatal(err)
	}
	// a third 400-byte entry exceeds the 1000-byte budget: the cheap one
	// must be the victim even though the expensive one is equally old
	if err := s.Put(3, "mid", payload, 500_000); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Get(1, "cheap"); ok {
		t.Fatal("cheap entry should have been evicted first")
	}
	if _, _, ok := s.Get(2, "expensive"); !ok {
		t.Fatal("expensive entry must survive eviction")
	}
	if _, _, ok := s.Get(3, "mid"); !ok {
		t.Fatal("new entry must be present")
	}
	if ev := s.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

func TestFileStoreOversizedPayloadRejected(t *testing.T) {
	s, err := OpenFileStore(t.TempDir(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(1, "big", make([]byte, 200), 1); err == nil {
		t.Fatal("payload larger than the whole budget must be rejected")
	}
}

// TestFileStoreCorruptFileRecovery covers the recovery paths: truncated and
// bit-flipped files are dropped (at scan time or Get time) and reported as
// misses, never as errors.
func TestFileStoreCorruptFileRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for h, v := range map[uint64]string{1: "aaa", 2: "bbb", 3: "ccc"} {
		if err := s.Put(h, "k", []byte(v), 10); err != nil {
			t.Fatal(err)
		}
	}
	// truncate entry 1, flip a payload bit of entry 2
	p1 := filepath.Join(dir, "lin_0000000000000001.bin")
	data, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p1, data[:len(data)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	p2 := filepath.Join(dir, "lin_0000000000000002.bin")
	data2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	data2[len(data2)-1] ^= 0xFF
	if err := os.WriteFile(p2, data2, 0o644); err != nil {
		t.Fatal(err)
	}

	// a fresh open drops the truncated file during the scan
	s2, err := OpenFileStore(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s2.Get(1, "k"); ok {
		t.Fatal("truncated entry must miss")
	}
	// the checksum mismatch is only detectable at Get time
	if _, _, ok := s2.Get(2, "k"); ok {
		t.Fatal("bit-flipped entry must miss")
	}
	if _, _, ok := s2.Get(3, "k"); !ok {
		t.Fatal("intact entry must still hit")
	}
	if cd := s2.Stats().CorruptDropped; cd < 2 {
		t.Fatalf("corrupt-dropped = %d, want >= 2", cd)
	}
	// dropped files are gone from disk
	if _, err := os.Stat(p1); !os.IsNotExist(err) {
		t.Error("truncated file not deleted")
	}
	if _, err := os.Stat(p2); !os.IsNotExist(err) {
		t.Error("bit-flipped file not deleted")
	}
}

func TestFileStoreCleansTmpLeftovers(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, "lin_00ff.bin.tmp")
	if err := os.WriteFile(tmp, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(dir, 1<<20); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("interrupted tmp file not cleaned up")
	}
}
