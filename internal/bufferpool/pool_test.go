package bufferpool

import (
	"os"
	"sync"
	"testing"
)

// fakeEntry is a test implementation of Entry backed by an in-memory byte
// count; Evict writes a marker file and drops the bytes.
type fakeEntry struct {
	mu     sync.Mutex
	id     int64
	size   int64
	inMem  bool
	pinned bool
	path   string
}

func (f *fakeEntry) PoolID() int64 { return f.id }

func (f *fakeEntry) MemorySize() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.inMem {
		return 0
	}
	return f.size
}

func (f *fakeEntry) Evict(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := os.WriteFile(path, make([]byte, 8), 0o644); err != nil {
		return err
	}
	f.path = path
	f.inMem = false
	return nil
}

func (f *fakeEntry) IsPinned() bool { return f.pinned }

func (f *fakeEntry) IsInMemory() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.inMem
}

func newFake(p *Pool, size int64) *fakeEntry {
	return &fakeEntry{id: p.NextID(), size: size, inMem: true}
}

func TestPoolEvictsOverBudget(t *testing.T) {
	dir := t.TempDir()
	p := New(1000, dir)
	entries := make([]*fakeEntry, 4)
	for i := range entries {
		entries[i] = newFake(p, 400)
		p.Register(entries[i])
	}
	if p.InMemoryBytes() > 1000 {
		t.Errorf("in-memory bytes %d exceed budget", p.InMemoryBytes())
	}
	if p.Stats().Evictions == 0 {
		t.Error("expected evictions")
	}
	// least recently used (the first registered) should be evicted first
	if entries[0].IsInMemory() {
		t.Error("expected the coldest entry to be evicted")
	}
	if !entries[3].IsInMemory() {
		t.Error("most recent entry should stay in memory")
	}
}

func TestPoolPinnedEntriesAreNotEvicted(t *testing.T) {
	dir := t.TempDir()
	p := New(500, dir)
	pinned := newFake(p, 400)
	pinned.pinned = true
	p.Register(pinned)
	other := newFake(p, 400)
	p.Register(other)
	if !pinned.IsInMemory() {
		t.Error("pinned entry was evicted")
	}
}

func TestPoolNotifyAccessMovesToFront(t *testing.T) {
	dir := t.TempDir()
	p := New(900, dir)
	a := newFake(p, 400)
	b := newFake(p, 400)
	p.Register(a)
	p.Register(b)
	// touch a so that b becomes the eviction candidate
	p.NotifyAccess(a, false)
	c := newFake(p, 400)
	p.Register(c)
	if !a.IsInMemory() {
		t.Error("recently accessed entry evicted")
	}
	if b.IsInMemory() {
		t.Error("cold entry should have been evicted")
	}
}

func TestPoolRestoreCounting(t *testing.T) {
	p := New(0, t.TempDir()) // no budget: no evictions
	a := newFake(p, 100)
	p.Register(a)
	p.NotifyAccess(a, true)
	if p.Stats().Restores != 1 {
		t.Errorf("restores = %d", p.Stats().Restores)
	}
}

func TestPoolUnregisterRemovesSpillFile(t *testing.T) {
	dir := t.TempDir()
	p := New(100, dir)
	a := newFake(p, 400)
	p.Register(a) // immediately over budget -> evicted to file
	if a.IsInMemory() {
		t.Fatal("expected eviction")
	}
	spill := p.SpillPath(a.PoolID())
	if _, err := os.Stat(spill); err != nil {
		t.Fatalf("spill file missing: %v", err)
	}
	p.Unregister(a.PoolID())
	if _, err := os.Stat(spill); !os.IsNotExist(err) {
		t.Error("spill file not removed on unregister")
	}
	if p.Len() != 0 {
		t.Errorf("Len = %d", p.Len())
	}
}

// scanBytes recomputes the in-memory total the slow way, to cross-check the
// running counter.
func scanBytes(p *Pool) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := int64(0)
	for el := p.lru.Front(); el != nil; el = el.Next() {
		total += el.Value.(Entry).MemorySize()
	}
	return total
}

func TestPoolRunningCounterStaysConsistent(t *testing.T) {
	dir := t.TempDir()
	p := New(1000, dir)
	check := func(step string) {
		t.Helper()
		if got, want := p.InMemoryBytes(), scanBytes(p); got != want {
			t.Fatalf("%s: running counter %d != scanned total %d", step, got, want)
		}
	}
	entries := make([]*fakeEntry, 5)
	for i := range entries {
		entries[i] = newFake(p, 300)
		p.Register(entries[i])
		check("register")
	}
	// restore an evicted entry the way MatrixObject.Acquire does
	if entries[0].IsInMemory() {
		t.Fatal("expected entries[0] evicted")
	}
	entries[0].mu.Lock()
	entries[0].inMem = true
	entries[0].mu.Unlock()
	p.NotifyAccess(entries[0], true)
	check("restore")
	for _, e := range entries {
		p.Unregister(e.PoolID())
		check("unregister")
	}
	if p.InMemoryBytes() != 0 {
		t.Errorf("counter = %d after unregistering everything", p.InMemoryBytes())
	}
}

type discardingEntry struct {
	fakeEntry
	discarded bool
}

func (d *discardingEntry) Discard() { d.discarded = true }

func TestPoolUnregisterCallsDiscard(t *testing.T) {
	p := New(0, t.TempDir())
	e := &discardingEntry{fakeEntry: fakeEntry{id: p.NextID(), size: 10, inMem: true}}
	p.Register(e)
	p.Unregister(e.PoolID())
	if !e.discarded {
		t.Error("Unregister did not invoke Discard on the entry")
	}
}

func TestPoolZeroBudgetNeverEvicts(t *testing.T) {
	p := New(0, t.TempDir())
	for i := 0; i < 5; i++ {
		p.Register(newFake(p, 1<<20))
	}
	if p.Stats().Evictions != 0 {
		t.Error("zero-budget pool must not evict")
	}
}

func TestPoolNilSafety(t *testing.T) {
	var p *Pool
	p.Register(nil)
	p.Unregister(1)
	p.NotifyAccess(nil, false)
	if p.InMemoryBytes() != 0 || p.Len() != 0 {
		t.Error("nil pool accessors should return zero values")
	}
	_ = p.Stats()
}
