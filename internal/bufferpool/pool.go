// Package bufferpool implements the multi-level buffer pool of the SystemDS
// control program (Section 2.3): live matrix intermediates are kept in memory
// up to a configurable budget; when the budget is exceeded, cold unpinned
// objects are evicted to temporary files and restored transparently on the
// next access.
package bufferpool

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"github.com/systemds/systemds-go/internal/obs"
)

// Entry is the interface buffer-pool-managed objects implement. MatrixObject
// in the runtime package is the primary implementation.
type Entry interface {
	// PoolID returns a stable unique id for the entry.
	PoolID() int64
	// MemorySize returns the in-memory size in bytes (0 when evicted).
	MemorySize() int64
	// Evict writes the in-memory data to the given file and drops it.
	Evict(path string) error
	// IsPinned reports whether the entry is currently in use and must not be
	// evicted.
	IsPinned() bool
	// IsInMemory reports whether the entry currently holds in-memory data.
	IsInMemory() bool
}

// Stats reports buffer pool activity.
type Stats struct {
	Evictions  int64
	Restores   int64
	BytesSpilt int64
	// BlocksRestored / BlocksSkipped account partial restores of per-block
	// spilled entries: how many spill blocks an operator actually read back
	// versus how many the partial access let it skip.
	BlocksRestored int64
	BlocksSkipped  int64
}

// Discarder is an optional Entry extension: entries that manage their own
// spill files (e.g. per-block spills) are asked to remove them when they are
// unregistered from the pool.
type Discarder interface {
	Discard()
}

// Pool tracks registered entries and enforces the memory budget with LRU
// eviction of unpinned entries.
type Pool struct {
	mu      sync.Mutex
	budget  int64
	dir     string
	entries map[int64]*list.Element
	lru     *list.List // of Entry, front = most recently used
	// inMem is the running total of in-memory bytes across registered
	// entries, maintained on register/restore/evict/unregister so budget
	// enforcement does not rescan the LRU list on every access.
	inMem   int64
	stats   Stats
	counter int64
}

// New creates a buffer pool with the given byte budget and spill directory.
// A budget <= 0 disables eviction (everything stays in memory).
func New(budgetBytes int64, dir string) *Pool {
	if dir == "" {
		dir = os.TempDir()
	}
	return &Pool{budget: budgetBytes, dir: dir, entries: map[int64]*list.Element{}, lru: list.New()}
}

// NextID returns a fresh id for a new entry.
func (p *Pool) NextID() int64 { return atomic.AddInt64(&p.counter, 1) }

// SpillPath returns the spill file path for an entry id.
func (p *Pool) SpillPath(id int64) string {
	return filepath.Join(p.dir, fmt.Sprintf("sysds_spill_%d.bin", id))
}

// Register adds an entry to the pool (most recently used position) and
// enforces the budget.
func (p *Pool) Register(e Entry) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if _, ok := p.entries[e.PoolID()]; !ok {
		el := p.lru.PushFront(e)
		p.entries[e.PoolID()] = el
		if e.IsInMemory() {
			p.inMem += e.MemorySize()
		}
	}
	p.mu.Unlock()
	p.enforceBudget()
}

// Unregister removes an entry (e.g. when a variable goes out of scope).
func (p *Pool) Unregister(id int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	var discard Discarder
	if el, ok := p.entries[id]; ok {
		e := el.Value.(Entry)
		if e.IsInMemory() {
			p.inMem -= e.MemorySize()
		}
		discard, _ = e.(Discarder)
		p.lru.Remove(el)
		delete(p.entries, id)
	}
	p.mu.Unlock()
	// best effort clean up of the spill file(s)
	_ = os.Remove(p.SpillPath(id))
	if discard != nil {
		discard.Discard()
	}
}

// NotifyAccess moves the entry to the most-recently-used position and records
// a restore if the entry had to be brought back to memory by the caller.
// restored must only be true when the caller actually restored an evicted
// entry, so the running in-memory counter stays consistent.
func (p *Pool) NotifyAccess(e Entry, restored bool) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if el, ok := p.entries[e.PoolID()]; ok {
		p.lru.MoveToFront(el)
		if restored {
			p.inMem += e.MemorySize()
		}
	} else {
		p.entries[e.PoolID()] = p.lru.PushFront(e)
		if e.IsInMemory() {
			p.inMem += e.MemorySize()
		}
	}
	if restored {
		p.stats.Restores++
	}
	p.mu.Unlock()
	p.enforceBudget()
}

// enforceBudget evicts cold unpinned entries until the running in-memory
// total fits the budget.
func (p *Pool) enforceBudget() {
	if p == nil || p.budget <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for el := p.lru.Back(); el != nil && p.inMem > p.budget; {
		prev := el.Prev()
		e := el.Value.(Entry)
		if e.IsInMemory() && !e.IsPinned() {
			size := e.MemorySize()
			sp := obs.Begin(obs.CatPool, "spill")
			err := e.Evict(p.SpillPath(e.PoolID()))
			sp.EndBytes(size)
			if err == nil {
				p.inMem -= size
				p.stats.Evictions++
				p.stats.BytesSpilt += size
			}
		}
		el = prev
	}
}

// NotifyResize adjusts the running in-memory total after a registered
// entry's resident size changed (e.g. a derived representation was memoized
// on it), then re-enforces the budget. The caller reports the delta it is
// responsible for; pairing every grow with the entry's MemorySize including
// the grown bytes keeps the counter balanced regardless of how the resize
// interleaves with an eviction.
func (p *Pool) NotifyResize(e Entry, delta int64) {
	if p == nil || delta == 0 {
		return
	}
	p.mu.Lock()
	if _, ok := p.entries[e.PoolID()]; ok {
		p.inMem += delta
	}
	p.mu.Unlock()
	p.enforceBudget()
}

// RecordPartialRestore accounts a partial restore of a per-block spilled
// entry: restored blocks were read back from their spill files, skipped
// blocks stayed on disk because the operator did not touch them.
func (p *Pool) RecordPartialRestore(restored, skipped int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.stats.BlocksRestored += restored
	p.stats.BlocksSkipped += skipped
	p.mu.Unlock()
}

// InMemoryBytes returns the total bytes currently held in memory by
// registered entries (the running counter maintained on
// register/restore/evict/unregister).
func (p *Pool) InMemoryBytes() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inMem
}

// Stats returns a snapshot of eviction/restore statistics.
func (p *Pool) Stats() Stats {
	if p == nil {
		return Stats{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Len returns the number of registered entries.
func (p *Pool) Len() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lru.Len()
}
