// Package builtins ships the DML-bodied builtin functions of SystemDS-Go:
// the stack of declarative abstractions for data-science lifecycle tasks
// (Figure 1 of the paper) implemented in the same DML that users write
// (Section 2.2's registration mechanism for DML-bodied builtins). The
// compiler resolves calls to these functions by name and compiles their
// scripts on demand.
package builtins

import "sort"

// Registry resolves builtin names to DML sources.
type Registry struct {
	scripts map[string]string
}

// NewRegistry returns the default registry with all shipped builtins.
func NewRegistry() *Registry {
	return &Registry{scripts: defaultScripts()}
}

// Source returns the DML source that defines the named builtin.
func (r *Registry) Source(name string) (string, bool) {
	s, ok := r.scripts[name]
	return s, ok
}

// Names returns the sorted names of all registered builtins.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.scripts))
	for n := range r.scripts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Register adds or overrides a DML-bodied builtin (the user-facing
// registration mechanism).
func (r *Registry) Register(name, source string) {
	r.scripts[name] = source
}

func defaultScripts() map[string]string {
	return map[string]string{
		"lmDS":            scriptLmDS,
		"lmCG":            scriptLmCG,
		"lm":              scriptLm,
		"steplm":          scriptSteplm,
		"gridSearchLM":    scriptGridSearchLM,
		"crossValLM":      scriptCrossValLM,
		"pca":             scriptPCA,
		"kmeans":          scriptKmeans,
		"l2svm":           scriptL2SVM,
		"logRegGD":        scriptLogRegGD,
		"scale":           scriptScale,
		"normalize":       scriptNormalize,
		"imputeByMean":    scriptImputeByMean,
		"outlierByIQR":    scriptOutlierByIQR,
		"winsorize":       scriptWinsorize,
		"splitTrainTest":  scriptSplitTrainTest,
		"mse":             scriptMSE,
		"rmse":            scriptRMSE,
		"r2":              scriptR2,
		"accuracy":        scriptAccuracy,
		"confusionMatrix": scriptConfusionMatrix,
		"lmPredict":       scriptPredictLM,
	}
}
