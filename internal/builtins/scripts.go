package builtins

// The DML sources of the shipped builtins. Each script defines a function of
// the same name as the registry key (plus local helper functions); the
// compiler adds these functions to the program's function table on first use.

// scriptLmDS is the direct-solve linear regression of Figure 2 of the paper:
// the normal equations t(X)%*%X + lambda*I are assembled and solved.
const scriptLmDS = `
lmDS = function(Matrix[Double] X, Matrix[Double] y, Double reg = 0.0000001,
                Integer icpt = 0, Boolean verbose = FALSE)
  return (Matrix[Double] B) {
  if (icpt > 0) {
    ones = matrix(1, nrow(X), 1)
    X = cbind(X, ones)
  }
  l = matrix(reg, ncol(X), 1)
  A = t(X) %*% X + diag(l)
  b = t(X) %*% y
  B = solve(A, b)
  if (verbose) {
    print("lmDS: trained " + ncol(X) + " coefficients")
  }
}
`

// scriptLmCG is the iterative conjugate-gradient linear regression used for
// wide inputs (ncol(X) > 1024), mirroring SystemDS' lmCG.
const scriptLmCG = `
lmCG = function(Matrix[Double] X, Matrix[Double] y, Double reg = 0.0000001,
                Integer icpt = 0, Integer maxi = 0, Double tol = 0.0000001,
                Boolean verbose = FALSE)
  return (Matrix[Double] B) {
  if (icpt > 0) {
    ones = matrix(1, nrow(X), 1)
    X = cbind(X, ones)
  }
  maxiter = maxi
  if (maxiter == 0) {
    maxiter = ncol(X)
  }
  B = matrix(0, ncol(X), 1)
  r = -(t(X) %*% y)
  p = -r
  norm_r2 = sum(r * r)
  iter = 0
  continue = norm_r2 > tol
  while (continue & iter < maxiter) {
    q = t(X) %*% (X %*% p) + reg * p
    alpha = norm_r2 / sum(p * q)
    B = B + alpha * p
    r = r + alpha * q
    old_norm_r2 = norm_r2
    norm_r2 = sum(r * r)
    beta = norm_r2 / old_norm_r2
    p = -r + beta * p
    iter = iter + 1
    continue = norm_r2 > tol
  }
  if (verbose) {
    print("lmCG: converged after " + iter + " iterations")
  }
}
`

// scriptLm is the dispatcher of Figure 2: direct solve for narrow inputs,
// conjugate gradient for wide inputs.
const scriptLm = `
lm = function(Matrix[Double] X, Matrix[Double] y, Double reg = 0.0000001,
              Integer icpt = 0, Double tol = 0.0000001, Integer maxi = 0,
              Boolean verbose = FALSE)
  return (Matrix[Double] B) {
  if (ncol(X) <= 1024) {
    B = lmDS(X, y, reg, icpt, verbose)
  } else {
    B = lmCG(X, y, reg, icpt, maxi, tol, verbose)
  }
}
`

// scriptPredictLM scores a linear model.
const scriptPredictLM = `
lmPredict = function(Matrix[Double] X, Matrix[Double] B, Integer icpt = 0)
  return (Matrix[Double] yhat) {
  if (icpt > 0) {
    ones = matrix(1, nrow(X), 1)
    X = cbind(X, ones)
  }
  yhat = X %*% B
}
`

// scriptSteplm is the stepwise linear regression of Example 1: greedy forward
// feature selection driven by the Akaike information criterion, evaluating
// candidate features in a parfor loop.
const scriptSteplm = `
steplm = function(Matrix[Double] X, Matrix[Double] y, Double reg = 0.000001,
                  Double threshold = 0.001, Boolean verbose = FALSE)
  return (Matrix[Double] B, Matrix[Double] S) {
  n = nrow(X)
  m = ncol(X)
  fixed = matrix(0, 1, m)
  S = matrix(0, 1, m)
  Xg = matrix(1, n, 1)
  ym = mean(y)
  res = y - ym
  rss = sum(res * res)
  best_aic = n * log(rss / n) + 2
  continue = TRUE
  nselected = 0
  while (continue & nselected < m) {
    aics = matrix(999999999, 1, m)
    parfor (i in 1:m) {
      fi = as.scalar(fixed[1, i])
      if (fi == 0) {
        xi = X[, i]
        Xi = cbind(Xg, xi)
        beta = lmDS(Xi, y, reg)
        pred = Xi %*% beta
        resi = y - pred
        rssi = sum(resi * resi)
        ki = ncol(Xi)
        aics[1, i] = n * log(rssi / n) + 2 * ki
      }
    }
    new_aic = min(aics)
    if (new_aic < best_aic - threshold) {
      best_i = as.scalar(rowIndexMax(-aics))
      best_aic = new_aic
      xbest = X[, best_i]
      Xg = cbind(Xg, xbest)
      fixed[1, best_i] = 1
      S[1, best_i] = 1
      nselected = nselected + 1
      if (verbose) {
        print("steplm: selected feature " + best_i + " (AIC " + new_aic + ")")
      }
    } else {
      continue = FALSE
    }
  }
  B = lmDS(Xg, y, reg)
}
`

// scriptGridSearchLM is the hyper-parameter optimization workload of the
// paper's evaluation (Section 4.1): k regression models trained with
// different regularization values; the main computation t(X)%*%X and
// t(X)%*%y is independent of lambda and therefore reusable.
const scriptGridSearchLM = `
gridSearchLM = function(Matrix[Double] X, Matrix[Double] y, Matrix[Double] lambdas,
                        Boolean verbose = FALSE)
  return (Matrix[Double] B, Matrix[Double] losses) {
  k = nrow(lambdas)
  m = ncol(X)
  B = matrix(0, m, k)
  losses = matrix(0, k, 1)
  for (i in 1:k) {
    lam = as.scalar(lambdas[i, 1])
    beta = lmDS(X, y, lam)
    pred = X %*% beta
    res = y - pred
    losses[i, 1] = sum(res * res)
    B[, i] = beta
    if (verbose) {
      print("gridSearchLM: lambda " + lam)
    }
  }
}
`

// scriptCrossValLM is k-fold cross validation for linear regression; folds
// are evaluated in a parfor loop (a second use of the parfor backend).
const scriptCrossValLM = `
crossValLM = function(Matrix[Double] X, Matrix[Double] y, Integer folds = 5,
                      Double reg = 0.0000001)
  return (Matrix[Double] cvErrors, Double meanError) {
  n = nrow(X)
  foldSize = floor(n / folds)
  cvErrors = matrix(0, folds, 1)
  parfor (f in 1:folds) {
    lo = (f - 1) * foldSize + 1
    hi = f * foldSize
    Xtest = X[lo:hi, ]
    ytest = y[lo:hi, ]
    if (lo == 1) {
      Xtrain = X[(hi + 1):n, ]
      ytrain = y[(hi + 1):n, ]
    } else {
      if (hi < n) {
        X1 = X[1:(lo - 1), ]
        y1 = y[1:(lo - 1), ]
        X2 = X[(hi + 1):n, ]
        y2 = y[(hi + 1):n, ]
        Xtrain = rbind(X1, X2)
        ytrain = rbind(y1, y2)
      } else {
        Xtrain = X[1:(lo - 1), ]
        ytrain = y[1:(lo - 1), ]
      }
    }
    beta = lmDS(Xtrain, ytrain, reg)
    pred = Xtest %*% beta
    diff = pred - ytest
    cvErrors[f, 1] = sum(diff * diff) / nrow(ytest)
  }
  meanError = mean(cvErrors)
}
`

// scriptPCA computes a principal component analysis via the eigen
// decomposition of the covariance matrix.
const scriptPCA = `
pca = function(Matrix[Double] X, Integer K = 2)
  return (Matrix[Double] Xreduced, Matrix[Double] PC, Matrix[Double] evalues) {
  N = nrow(X)
  mu = colMeans(X)
  Xc = X - mu
  C = (t(Xc) %*% Xc) / (N - 1)
  [evals, evecs] = eigen(C)
  PC = evecs[, 1:K]
  evalues = evals[1:K, ]
  Xreduced = Xc %*% PC
}
`

// scriptKmeans is Lloyd's algorithm with k-means initialization by sampling.
const scriptKmeans = `
kmeans = function(Matrix[Double] X, Integer k = 3, Integer max_iter = 20)
  return (Matrix[Double] C, Matrix[Double] assignments) {
  n = nrow(X)
  m = ncol(X)
  idx = sample(n, k, FALSE)
  C = matrix(0, k, m)
  for (j in 1:k) {
    ji = as.scalar(idx[j, 1])
    C[j, ] = X[ji, ]
  }
  assignments = matrix(0, n, 1)
  iter = 0
  while (iter < max_iter) {
    XC = X %*% t(C)
    xsq = rowSums(X * X)
    csq = rowSums(C * C)
    D = xsq - 2 * XC + t(csq)
    assignments = rowIndexMax(-D)
    for (j in 1:k) {
      mask = assignments == j
      cnt = sum(mask)
      if (cnt > 0) {
        Xj = X * mask
        C[j, ] = colSums(Xj) / cnt
      }
    }
    iter = iter + 1
  }
}
`

// scriptL2SVM trains a binary linear SVM (labels in {-1, +1}) with squared
// hinge loss via gradient descent.
const scriptL2SVM = `
l2svm = function(Matrix[Double] X, Matrix[Double] y, Double reg = 0.001,
                 Double step = 0.1, Integer maxiter = 100)
  return (Matrix[Double] w) {
  m = ncol(X)
  n = nrow(X)
  w = matrix(0, m, 1)
  iter = 0
  while (iter < maxiter) {
    margin = 1 - y * (X %*% w)
    active = margin > 0
    hinge = y * margin * active
    grad = reg * w - (t(X) %*% hinge) / n
    w = w - step * grad
    iter = iter + 1
    step = step * 0.99
  }
}
`

// scriptLogRegGD trains a binary logistic regression (labels in {0, 1}) via
// gradient descent.
const scriptLogRegGD = `
logRegGD = function(Matrix[Double] X, Matrix[Double] y, Double reg = 0.001,
                    Double step = 0.5, Integer maxiter = 200)
  return (Matrix[Double] w) {
  m = ncol(X)
  n = nrow(X)
  w = matrix(0, m, 1)
  iter = 0
  while (iter < maxiter) {
    p = sigmoid(X %*% w)
    grad = (t(X) %*% (p - y)) / n + reg * w
    w = w - step * grad
    iter = iter + 1
  }
}
`

// scriptScale standardizes columns to zero mean and unit variance.
const scriptScale = `
scale = function(Matrix[Double] X, Boolean center = TRUE, Boolean scaleVar = TRUE)
  return (Matrix[Double] Y) {
  Y = X
  if (center) {
    cm = colMeans(X)
    Y = Y - cm
  }
  if (scaleVar) {
    csd = colSds(X)
    csd = csd + (csd == 0)
    Y = Y / csd
  }
}
`

// scriptNormalize rescales columns to the [0, 1] range.
const scriptNormalize = `
normalize = function(Matrix[Double] X) return (Matrix[Double] Y) {
  cmin = colMins(X)
  cmax = colMaxs(X)
  diff = cmax - cmin
  diff = diff + (diff == 0)
  Y = (X - cmin) / diff
}
`

// scriptImputeByMean replaces NaN cells by their column means.
const scriptImputeByMean = `
imputeByMean = function(Matrix[Double] X) return (Matrix[Double] Y) {
  nanmask = is.nan(X)
  X2 = replace(target=X, pattern=0/0, replacement=0)
  cnt = colSums(1 - nanmask)
  cnt = cnt + (cnt == 0)
  colmeans = colSums(X2) / cnt
  Y = X2 + nanmask * colmeans
}
`

// scriptOutlierByIQR clips values outside k interquartile ranges around the
// quartiles (a robust outlier repair).
const scriptOutlierByIQR = `
outlierByIQR = function(Matrix[Double] X, Double k = 1.5) return (Matrix[Double] Y) {
  m = ncol(X)
  Y = X
  for (j in 1:m) {
    col = X[, j]
    q1 = quantile(col, 0.25)
    q3 = quantile(col, 0.75)
    iqr = q3 - q1
    lower = q1 - k * iqr
    upper = q3 + k * iqr
    clippedLow = max(col, lower)
    clipped = min(clippedLow, upper)
    Y[, j] = clipped
  }
}
`

// scriptWinsorize clips each column to its [ql, qu] quantile range.
const scriptWinsorize = `
winsorize = function(Matrix[Double] X, Double ql = 0.05, Double qu = 0.95)
  return (Matrix[Double] Y) {
  m = ncol(X)
  Y = X
  for (j in 1:m) {
    col = X[, j]
    lo = quantile(col, ql)
    hi = quantile(col, qu)
    clippedLow = max(col, lo)
    Y[, j] = min(clippedLow, hi)
  }
}
`

// scriptSplitTrainTest splits a dataset into a leading training part and a
// trailing test part.
const scriptSplitTrainTest = `
splitTrainTest = function(Matrix[Double] X, Matrix[Double] y, Double ratio = 0.7)
  return (Matrix[Double] Xtrain, Matrix[Double] ytrain, Matrix[Double] Xtest, Matrix[Double] ytest) {
  n = nrow(X)
  ntrain = floor(n * ratio)
  Xtrain = X[1:ntrain, ]
  ytrain = y[1:ntrain, ]
  Xtest = X[(ntrain + 1):n, ]
  ytest = y[(ntrain + 1):n, ]
}
`

// scriptMSE computes the mean squared error of predictions.
const scriptMSE = `
mse = function(Matrix[Double] yhat, Matrix[Double] y) return (Double err) {
  diff = yhat - y
  err = sum(diff * diff) / nrow(y)
}
`

// scriptRMSE computes the root mean squared error of predictions.
const scriptRMSE = `
rmse = function(Matrix[Double] yhat, Matrix[Double] y) return (Double err) {
  diff = yhat - y
  m = sum(diff * diff) / nrow(y)
  err = sqrt(m)
}
`

// scriptR2 computes the coefficient of determination.
const scriptR2 = `
r2 = function(Matrix[Double] yhat, Matrix[Double] y) return (Double R2) {
  diff = yhat - y
  ssres = sum(diff * diff)
  ym = mean(y)
  dtot = y - ym
  sstot = sum(dtot * dtot)
  R2 = 1 - ssres / sstot
}
`

// scriptAccuracy computes classification accuracy.
const scriptAccuracy = `
accuracy = function(Matrix[Double] yhat, Matrix[Double] y) return (Double acc) {
  correct = sum(yhat == y)
  acc = correct / nrow(y)
}
`

// scriptConfusionMatrix computes a contingency table of 1-based class labels.
const scriptConfusionMatrix = `
confusionMatrix = function(Matrix[Double] yhat, Matrix[Double] y) return (Matrix[Double] CM) {
  CM = table(y, yhat)
}
`
