package builtins

import (
	"testing"

	"github.com/systemds/systemds-go/internal/lang"
)

func TestRegistryResolvesAllShippedBuiltins(t *testing.T) {
	r := NewRegistry()
	names := r.Names()
	if len(names) < 20 {
		t.Fatalf("expected at least 20 builtins, got %d", len(names))
	}
	for _, name := range names {
		src, ok := r.Source(name)
		if !ok || src == "" {
			t.Errorf("builtin %s has no source", name)
		}
	}
	if _, ok := r.Source("definitelyMissing"); ok {
		t.Error("unknown builtin should not resolve")
	}
}

func TestAllBuiltinScriptsParseAndDefineTheirFunction(t *testing.T) {
	r := NewRegistry()
	for _, name := range r.Names() {
		src, _ := r.Source(name)
		prog, err := lang.Parse(src)
		if err != nil {
			t.Errorf("builtin %s does not parse: %v", name, err)
			continue
		}
		if _, ok := prog.Functions[name]; !ok {
			t.Errorf("builtin script %s does not define a function named %s", name, name)
		}
		// every function must declare at least one return variable and assign it
		for fnName, fn := range prog.Functions {
			if len(fn.Returns) == 0 {
				t.Errorf("builtin %s: function %s has no return variables", name, fnName)
				continue
			}
			writes := map[string]bool{}
			for _, s := range fn.Body {
				for w := range lang.StatementWrites(s) {
					writes[w] = true
				}
			}
			for _, ret := range fn.Returns {
				if !writes[ret.Name] {
					t.Errorf("builtin %s: function %s never assigns return variable %s", name, fnName, ret.Name)
				}
			}
		}
	}
}

func TestRegisterOverridesAndAdds(t *testing.T) {
	r := NewRegistry()
	r.Register("custom", "custom = function() return (Double x) { x = 1 }")
	if _, ok := r.Source("custom"); !ok {
		t.Error("registered builtin not resolvable")
	}
	before, _ := r.Source("lm")
	r.Register("lm", "lm = function() return (Double x) { x = 2 }")
	after, _ := r.Source("lm")
	if before == after {
		t.Error("override did not take effect")
	}
}

func TestExpectedCoreBuiltinsPresent(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{
		"lm", "lmDS", "lmCG", "lmPredict", "steplm", "gridSearchLM", "crossValLM",
		"pca", "kmeans", "l2svm", "logRegGD",
		"scale", "normalize", "imputeByMean", "outlierByIQR", "winsorize",
		"splitTrainTest", "mse", "rmse", "r2", "accuracy", "confusionMatrix",
	} {
		if _, ok := r.Source(name); !ok {
			t.Errorf("expected builtin %s to be registered", name)
		}
	}
}
