package lang

import (
	"strings"
	"testing"

	"github.com/systemds/systemds-go/internal/types"
)

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return prog
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("x = 1 + 2.5e1 # comment\ny = \"hi\\n\"")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	if texts[0] != "x" || texts[1] != "=" || texts[2] != "1" || texts[3] != "+" || texts[4] != "2.5e1" {
		t.Errorf("tokens = %v", texts)
	}
	// string escape
	found := false
	for i, k := range kinds {
		if k == TokenString {
			if texts[i] != "hi\n" {
				t.Errorf("string token = %q", texts[i])
			}
			found = true
		}
	}
	if !found {
		t.Error("string token not found")
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := Lex("a %*% b %% c %/% d <= e != f & g | h")
	if err != nil {
		t.Fatal(err)
	}
	var ops []string
	for _, tok := range toks {
		if tok.Kind == TokenOperator {
			ops = append(ops, tok.Text)
		}
	}
	want := []string{"%*%", "%%", "%/%", "<=", "!=", "&", "|"}
	if strings.Join(ops, " ") != strings.Join(want, " ") {
		t.Errorf("ops = %v, want %v", ops, want)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex(`x = "unterminated`); err == nil {
		t.Error("expected unterminated string error")
	}
	if _, err := Lex("x = 1 @ 2"); err == nil {
		t.Error("expected unexpected character error")
	}
	if _, err := Lex("x %^ 2"); err == nil {
		t.Error("expected bad percent operator error")
	}
}

func TestParseSimpleAssignments(t *testing.T) {
	prog := mustParse(t, "x = 1\ny = x + 2\nz = \"hello\"\nb = TRUE\n")
	if len(prog.Body) != 4 {
		t.Fatalf("statements = %d", len(prog.Body))
	}
	a0 := prog.Body[0].(*AssignStmt)
	if a0.Targets[0].Name != "x" {
		t.Errorf("target = %v", a0.Targets[0])
	}
	if _, ok := a0.Value.(*NumLit); !ok {
		t.Errorf("value type = %T", a0.Value)
	}
	a1 := prog.Body[1].(*AssignStmt)
	bin, ok := a1.Value.(*BinaryExpr)
	if !ok || bin.Op != "+" {
		t.Errorf("value = %v", a1.Value)
	}
	if _, ok := prog.Body[2].(*AssignStmt).Value.(*StrLit); !ok {
		t.Error("expected string literal")
	}
	if _, ok := prog.Body[3].(*AssignStmt).Value.(*BoolLit); !ok {
		t.Error("expected bool literal")
	}
}

func TestParsePrecedence(t *testing.T) {
	prog := mustParse(t, "x = 1 + 2 * 3")
	bin := prog.Body[0].(*AssignStmt).Value.(*BinaryExpr)
	if bin.Op != "+" {
		t.Fatalf("top op = %s", bin.Op)
	}
	right := bin.Right.(*BinaryExpr)
	if right.Op != "*" {
		t.Errorf("right op = %s", right.Op)
	}

	prog = mustParse(t, "y = a + b %*% c")
	bin = prog.Body[0].(*AssignStmt).Value.(*BinaryExpr)
	if bin.Op != "+" {
		t.Fatalf("top op = %s", bin.Op)
	}
	if bin.Right.(*BinaryExpr).Op != "%*%" {
		t.Error("matmult should bind tighter than +")
	}

	prog = mustParse(t, "z = a < b + 1 & c > 2")
	bin = prog.Body[0].(*AssignStmt).Value.(*BinaryExpr)
	if bin.Op != "&" {
		t.Errorf("top op = %s, want &", bin.Op)
	}

	prog = mustParse(t, "w = 2 ^ 3 ^ 2")
	pw := prog.Body[0].(*AssignStmt).Value.(*BinaryExpr)
	if pw.Op != "^" {
		t.Fatal("expected power")
	}
	if _, ok := pw.Right.(*BinaryExpr); !ok {
		t.Error("power should be right-associative")
	}

	prog = mustParse(t, "v = -x ^ 2")
	if _, ok := prog.Body[0].(*AssignStmt).Value.(*UnaryExpr); !ok {
		t.Error("unary minus should wrap the power expression")
	}
}

func TestParseCallsAndNamedArgs(t *testing.T) {
	prog := mustParse(t, `B = lm(X=X, y=y, reg=0.001, verbose=FALSE)`)
	call := prog.Body[0].(*AssignStmt).Value.(*CallExpr)
	if call.Name != "lm" || len(call.Args) != 4 {
		t.Fatalf("call = %v", call)
	}
	if call.Args[0].Name != "X" || call.Args[2].Name != "reg" {
		t.Errorf("named args = %v", call.Args)
	}
	prog = mustParse(t, "s = sum(X * Y)")
	call = prog.Body[0].(*AssignStmt).Value.(*CallExpr)
	if call.Args[0].Name != "" {
		t.Error("positional arg should have empty name")
	}
}

func TestParseIndexing(t *testing.T) {
	prog := mustParse(t, "a = X[1:3, 2]\nb = X[, i]\nc = X[i, ]\nd = X[1, 1]")
	a := prog.Body[0].(*AssignStmt).Value.(*IndexExpr)
	if a.Rows.Lower == nil || a.Rows.Upper == nil {
		t.Error("expected row range")
	}
	if a.Cols.Lower == nil || a.Cols.Upper != nil {
		t.Error("expected single column index")
	}
	b := prog.Body[1].(*AssignStmt).Value.(*IndexExpr)
	if !b.Rows.All {
		t.Error("expected all-rows range")
	}
	c := prog.Body[2].(*AssignStmt).Value.(*IndexExpr)
	if !c.Cols.All {
		t.Error("expected all-cols range")
	}
}

func TestParseIndexedAssignment(t *testing.T) {
	prog := mustParse(t, "B[, i] = lm(Xi, y)\nA[1, 2] = 5")
	s0 := prog.Body[0].(*AssignStmt)
	if !s0.Targets[0].Indexed || !s0.Targets[0].Rows.All {
		t.Errorf("target = %+v", s0.Targets[0])
	}
	s1 := prog.Body[1].(*AssignStmt)
	if !s1.Targets[0].Indexed || s1.Targets[0].Rows.Lower == nil {
		t.Errorf("target = %+v", s1.Targets[0])
	}
}

func TestParseMultiAssignment(t *testing.T) {
	prog := mustParse(t, "[B, S] = steplm(X, y, icpt=0)")
	s := prog.Body[0].(*AssignStmt)
	if len(s.Targets) != 2 || s.Targets[0].Name != "B" || s.Targets[1].Name != "S" {
		t.Errorf("targets = %v", s.Targets)
	}
	if _, ok := s.Value.(*CallExpr); !ok {
		t.Error("expected call value")
	}
}

func TestParseControlFlow(t *testing.T) {
	src := `
if (ncol(X) > 1024) {
  B = lmCG(X, y)
} else {
  B = lmDS(X, y)
}
for (i in 1:10) {
  s = s + i
}
parfor (i in 1:n, check=0) {
  B[, i] = i
}
while (continue & iter < maxi) {
  iter = iter + 1
}
`
	prog := mustParse(t, src)
	if len(prog.Body) != 4 {
		t.Fatalf("statements = %d", len(prog.Body))
	}
	ifs := prog.Body[0].(*IfStmt)
	if len(ifs.Then) != 1 || len(ifs.Else) != 1 {
		t.Errorf("if branches = %d/%d", len(ifs.Then), len(ifs.Else))
	}
	fs := prog.Body[1].(*ForStmt)
	if fs.Parallel || fs.Var != "i" {
		t.Errorf("for = %+v", fs)
	}
	if _, ok := fs.Iterable.(*RangeExpr); !ok {
		t.Errorf("iterable = %T", fs.Iterable)
	}
	pf := prog.Body[2].(*ForStmt)
	if !pf.Parallel {
		t.Error("expected parfor")
	}
	ws := prog.Body[3].(*WhileStmt)
	if len(ws.Body) != 1 {
		t.Errorf("while body = %d", len(ws.Body))
	}
}

func TestParseElseIf(t *testing.T) {
	src := `
if (a > 1) {
  x = 1
} else if (a > 0) {
  x = 2
} else {
  x = 3
}
`
	prog := mustParse(t, src)
	ifs := prog.Body[0].(*IfStmt)
	if len(ifs.Else) != 1 {
		t.Fatalf("else = %d statements", len(ifs.Else))
	}
	nested, ok := ifs.Else[0].(*IfStmt)
	if !ok || len(nested.Else) != 1 {
		t.Error("expected nested else-if")
	}
}

func TestParseFunctionDef(t *testing.T) {
	src := `
m_lmDS = function(Matrix[Double] X, Matrix[Double] y, Double reg = 0.001, Boolean verbose = FALSE)
  return (Matrix[Double] B) {
  l = matrix(reg, ncol(X), 1)
  A = t(X) %*% X + diag(l)
  b = t(X) %*% y
  B = solve(A, b)
}
X = rand(rows=10, cols=3)
`
	prog := mustParse(t, src)
	fn, ok := prog.Functions["m_lmDS"]
	if !ok {
		t.Fatal("function not registered")
	}
	if len(fn.Params) != 4 {
		t.Fatalf("params = %d", len(fn.Params))
	}
	if fn.Params[0].DataType != types.Matrix || fn.Params[0].Name != "X" {
		t.Errorf("param0 = %+v", fn.Params[0])
	}
	if fn.Params[2].DataType != types.Scalar || fn.Params[2].ValueType != types.FP64 || fn.Params[2].Default == nil {
		t.Errorf("param2 = %+v", fn.Params[2])
	}
	if fn.Params[3].ValueType != types.Boolean {
		t.Errorf("param3 = %+v", fn.Params[3])
	}
	if len(fn.Returns) != 1 || fn.Returns[0].Name != "B" {
		t.Errorf("returns = %v", fn.Returns)
	}
	if len(fn.Body) != 4 {
		t.Errorf("body statements = %d", len(fn.Body))
	}
	if len(prog.Body) != 1 {
		t.Errorf("main body = %d", len(prog.Body))
	}
}

func TestParseExprStatements(t *testing.T) {
	prog := mustParse(t, `print("result: " + sum(X))`+"\n"+`write(B, "model.csv", format="csv")`)
	if len(prog.Body) != 2 {
		t.Fatalf("statements = %d", len(prog.Body))
	}
	for _, s := range prog.Body {
		if _, ok := s.(*ExprStmt); !ok {
			t.Errorf("expected expression statement, got %T", s)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"x = ",
		"if (x > 1 { y = 2 }",
		"for i in 1:10) { }",
		"f = function( { }",
		"x = (1 + 2",
		"[a, 1] = f(x)",
		"x = 1 +* 2",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseDuplicateFunction(t *testing.T) {
	src := "f = function() return (Double x) { x = 1 }\nf = function() return (Double x) { x = 2 }"
	if _, err := Parse(src); err == nil {
		t.Error("expected duplicate function error")
	}
}

func TestParseExpressionHelper(t *testing.T) {
	e, err := ParseExpression("1 + 2 * x")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*BinaryExpr); !ok {
		t.Errorf("type = %T", e)
	}
	if _, err := ParseExpression("1 + "); err == nil {
		t.Error("expected error")
	}
	if _, err := ParseExpression("1 2"); err == nil {
		t.Error("expected trailing token error")
	}
}

func TestParseMultilineExpressionsInParens(t *testing.T) {
	src := "x = sum(\n  A,\n  B\n)\n"
	prog := mustParse(t, src)
	call := prog.Body[0].(*AssignStmt).Value.(*CallExpr)
	if len(call.Args) != 2 {
		t.Errorf("args = %d", len(call.Args))
	}
}

func TestStringRendering(t *testing.T) {
	prog := mustParse(t, "x = t(X) %*% X\nif (a > 1) { b = 1 }\nfor (i in 1:3) { c = i }")
	s := prog.String()
	if !strings.Contains(s, "%*%") || !strings.Contains(s, "if (") || !strings.Contains(s, "for (") {
		t.Errorf("program rendering missing pieces: %s", s)
	}
}
