package lang

import (
	"fmt"
	"strings"

	"github.com/systemds/systemds-go/internal/types"
)

// Node is implemented by every AST node.
type Node interface {
	node()
	String() string
}

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

// Statement is a statement node.
type Statement interface {
	Node
	stmtNode()
}

// Program is a parsed DML script: top-level function definitions plus the
// main body statements.
type Program struct {
	Functions map[string]*FunctionDef
	Body      []Statement
}

func (p *Program) node() {}

// String renders the program (mainly for debugging and EXPLAIN output).
func (p *Program) String() string {
	var sb strings.Builder
	for _, f := range p.Functions {
		sb.WriteString(f.String())
		sb.WriteString("\n")
	}
	for _, s := range p.Body {
		sb.WriteString(s.String())
		sb.WriteString("\n")
	}
	return sb.String()
}

// Param is a function parameter or return declaration, optionally typed and
// with a default value.
type Param struct {
	Name      string
	DataType  types.DataType
	ValueType types.ValueType
	Default   Expr
}

func (p Param) String() string {
	s := p.Name
	if p.Default != nil {
		s += " = " + p.Default.String()
	}
	return s
}

// FunctionDef is a user-defined (or DML-bodied builtin) function.
type FunctionDef struct {
	Name    string
	Params  []Param
	Returns []Param
	Body    []Statement
}

func (f *FunctionDef) node() {}

func (f *FunctionDef) String() string {
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		params[i] = p.String()
	}
	rets := make([]string, len(f.Returns))
	for i, r := range f.Returns {
		rets[i] = r.Name
	}
	return fmt.Sprintf("%s = function(%s) return (%s) { ... %d statements }",
		f.Name, strings.Join(params, ", "), strings.Join(rets, ", "), len(f.Body))
}

// AssignTarget is the left-hand side of an assignment: either a plain
// variable or an indexed range of a matrix (left indexing).
type AssignTarget struct {
	Name    string
	Indexed bool
	Rows    *IndexRange
	Cols    *IndexRange
}

func (t AssignTarget) String() string {
	if !t.Indexed {
		return t.Name
	}
	return fmt.Sprintf("%s[%s, %s]", t.Name, t.Rows, t.Cols)
}

// IndexRange is one dimension of an index expression: a single position, a
// from:to range, or all (nil bounds).
type IndexRange struct {
	Lower Expr // nil means from the start
	Upper Expr // nil means single position (Lower only) when Lower != nil, or to the end
	All   bool // true when the dimension is unconstrained (X[, i])
}

func (r *IndexRange) String() string {
	if r == nil || r.All {
		return ""
	}
	if r.Upper == nil {
		return r.Lower.String()
	}
	lo, hi := "", ""
	if r.Lower != nil {
		lo = r.Lower.String()
	}
	if r.Upper != nil {
		hi = r.Upper.String()
	}
	return lo + ":" + hi
}

// AssignStmt assigns the result of an expression to one or more targets
// (multi-assignment covers [a, b] = f(...)).
type AssignStmt struct {
	Targets []AssignTarget
	Value   Expr
	Line    int
}

func (s *AssignStmt) node()     {}
func (s *AssignStmt) stmtNode() {}
func (s *AssignStmt) String() string {
	targets := make([]string, len(s.Targets))
	for i, t := range s.Targets {
		targets[i] = t.String()
	}
	prefix := strings.Join(targets, ", ")
	if len(s.Targets) > 1 {
		prefix = "[" + prefix + "]"
	}
	return prefix + " = " + s.Value.String()
}

// ExprStmt is an expression evaluated for its side effects (print, write).
type ExprStmt struct {
	Value Expr
	Line  int
}

func (s *ExprStmt) node()          {}
func (s *ExprStmt) stmtNode()      {}
func (s *ExprStmt) String() string { return s.Value.String() }

// IfStmt is a conditional with optional else branch.
type IfStmt struct {
	Cond Expr
	Then []Statement
	Else []Statement
	Line int
}

func (s *IfStmt) node()     {}
func (s *IfStmt) stmtNode() {}
func (s *IfStmt) String() string {
	return fmt.Sprintf("if (%s) { %d stmts } else { %d stmts }", s.Cond, len(s.Then), len(s.Else))
}

// ForStmt is a for or parfor loop over an iterable expression (typically a
// from:to range or seq()).
type ForStmt struct {
	Var      string
	Iterable Expr
	Body     []Statement
	Parallel bool // parfor
	Line     int
}

func (s *ForStmt) node()     {}
func (s *ForStmt) stmtNode() {}
func (s *ForStmt) String() string {
	kw := "for"
	if s.Parallel {
		kw = "parfor"
	}
	return fmt.Sprintf("%s (%s in %s) { %d stmts }", kw, s.Var, s.Iterable, len(s.Body))
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body []Statement
	Line int
}

func (s *WhileStmt) node()     {}
func (s *WhileStmt) stmtNode() {}
func (s *WhileStmt) String() string {
	return fmt.Sprintf("while (%s) { %d stmts }", s.Cond, len(s.Body))
}

// Ident is a variable reference.
type Ident struct {
	Name string
	Line int
}

func (e *Ident) node()          {}
func (e *Ident) exprNode()      {}
func (e *Ident) String() string { return e.Name }

// NumLit is a numeric literal.
type NumLit struct {
	Value float64
	IsInt bool
	Line  int
}

func (e *NumLit) node()     {}
func (e *NumLit) exprNode() {}
func (e *NumLit) String() string {
	if e.IsInt {
		return fmt.Sprintf("%d", int64(e.Value))
	}
	return fmt.Sprintf("%g", e.Value)
}

// StrLit is a string literal.
type StrLit struct {
	Value string
	Line  int
}

func (e *StrLit) node()          {}
func (e *StrLit) exprNode()      {}
func (e *StrLit) String() string { return fmt.Sprintf("%q", e.Value) }

// BoolLit is a boolean literal (TRUE/FALSE).
type BoolLit struct {
	Value bool
	Line  int
}

func (e *BoolLit) node()     {}
func (e *BoolLit) exprNode() {}
func (e *BoolLit) String() string {
	if e.Value {
		return "TRUE"
	}
	return "FALSE"
}

// BinaryExpr is a binary operation, including matrix multiplication (%*%).
type BinaryExpr struct {
	Op          string
	Left, Right Expr
	Line        int
}

func (e *BinaryExpr) node()          {}
func (e *BinaryExpr) exprNode()      {}
func (e *BinaryExpr) String() string { return fmt.Sprintf("(%s %s %s)", e.Left, e.Op, e.Right) }

// UnaryExpr is a unary operation (- or !).
type UnaryExpr struct {
	Op      string
	Operand Expr
	Line    int
}

func (e *UnaryExpr) node()          {}
func (e *UnaryExpr) exprNode()      {}
func (e *UnaryExpr) String() string { return fmt.Sprintf("(%s%s)", e.Op, e.Operand) }

// RangeExpr is a from:to sequence used in loops and indexing.
type RangeExpr struct {
	From, To Expr
	Line     int
}

func (e *RangeExpr) node()          {}
func (e *RangeExpr) exprNode()      {}
func (e *RangeExpr) String() string { return fmt.Sprintf("%s:%s", e.From, e.To) }

// Arg is a (possibly named) call argument.
type Arg struct {
	Name  string // empty for positional arguments
	Value Expr
}

func (a Arg) String() string {
	if a.Name == "" {
		return a.Value.String()
	}
	return a.Name + "=" + a.Value.String()
}

// CallExpr is a builtin or user function call.
type CallExpr struct {
	Name string
	Args []Arg
	Line int
}

func (e *CallExpr) node()     {}
func (e *CallExpr) exprNode() {}
func (e *CallExpr) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", e.Name, strings.Join(args, ", "))
}

// IndexExpr is right-hand side indexing X[rows, cols].
type IndexExpr struct {
	Target Expr
	Rows   *IndexRange
	Cols   *IndexRange
	Line   int
}

func (e *IndexExpr) node()     {}
func (e *IndexExpr) exprNode() {}
func (e *IndexExpr) String() string {
	return fmt.Sprintf("%s[%s, %s]", e.Target, e.Rows, e.Cols)
}
