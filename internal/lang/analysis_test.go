package lang

import (
	"reflect"
	"testing"
)

func TestCollectReadsWrites(t *testing.T) {
	prog := mustParse(t, `
B[, i] = lm(Xi, y)
s = sum(X[1:k, j]) + b
if (a > 0) { c = d } else { e = f }
for (i in 1:n) { acc = acc + w[i, 1] }
while (cond) { cond = cond - 1 }
`)
	// statement 0: indexed assignment reads B (partial update), Xi, y, i
	reads := StatementReads(prog.Body[0])
	for _, want := range []string{"B", "Xi", "y", "i"} {
		if !reads[want] {
			t.Errorf("statement 0 should read %q, got %v", want, reads)
		}
	}
	writes := StatementWrites(prog.Body[0])
	if !writes["B"] || len(writes) != 1 {
		t.Errorf("statement 0 writes = %v", writes)
	}
	// statement 1 reads X, k, j, b
	reads = StatementReads(prog.Body[1])
	for _, want := range []string{"X", "k", "j", "b"} {
		if !reads[want] {
			t.Errorf("statement 1 should read %q", want)
		}
	}
	// if statement reads and writes from both branches
	reads = StatementReads(prog.Body[2])
	writes = StatementWrites(prog.Body[2])
	if !reads["a"] || !reads["d"] || !reads["f"] {
		t.Errorf("if reads = %v", reads)
	}
	if !writes["c"] || !writes["e"] {
		t.Errorf("if writes = %v", writes)
	}
	// for loop writes loop variable and accumulator
	writes = StatementWrites(prog.Body[3])
	if !writes["i"] || !writes["acc"] {
		t.Errorf("for writes = %v", writes)
	}
	reads = StatementReads(prog.Body[3])
	if !reads["n"] || !reads["w"] || !reads["acc"] {
		t.Errorf("for reads = %v", reads)
	}
	// while
	reads = StatementReads(prog.Body[4])
	if !reads["cond"] {
		t.Errorf("while reads = %v", reads)
	}
}

func TestBlockReadsWrites(t *testing.T) {
	prog := mustParse(t, "a = x + 1\nb = a * y\n")
	if got := BlockReads(prog.Body); !reflect.DeepEqual(got, []string{"a", "x", "y"}) {
		t.Errorf("BlockReads = %v", got)
	}
	if got := BlockWrites(prog.Body); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("BlockWrites = %v", got)
	}
}

func TestValidate(t *testing.T) {
	builtins := func(name string) bool {
		switch name {
		case "sum", "print", "t", "solve", "lm":
			return true
		}
		return false
	}
	prog := mustParse(t, `
helper = function(Matrix[Double] X) return (Double s) { s = sum(X) }
a = helper(X)
b = lm(X, y)
print(a + b)
`)
	if err := Validate(prog, builtins); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
	// unknown function
	prog = mustParse(t, "a = unknownFn(x)")
	if err := Validate(prog, builtins); err == nil {
		t.Error("expected undefined function error")
	}
	// multi-assign from non-call
	prog = mustParse(t, "[a, b] = x")
	if err := Validate(prog, builtins); err == nil {
		t.Error("expected multi-assignment error")
	}
	// duplicate parameter
	prog = mustParse(t, "f = function(Double a, Double a) return (Double b) { b = a }")
	if err := Validate(prog, builtins); err == nil {
		t.Error("expected duplicate parameter error")
	}
	// nested call inside control flow
	prog = mustParse(t, "if (x > 1) { y = mystery(x) }")
	if err := Validate(prog, builtins); err == nil {
		t.Error("expected undefined function error inside if")
	}
}
