package lang

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/systemds/systemds-go/internal/types"
)

// Parse lexes and parses a DML script into a Program.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	toks = normalizeNewlines(toks)
	p := &parser{toks: toks}
	prog := &Program{Functions: map[string]*FunctionDef{}}
	for !p.atEOF() {
		p.skipSeparators()
		if p.atEOF() {
			break
		}
		// function definition: ident = function(...)
		if p.peek().Kind == TokenIdent && p.peekAt(1).Kind == TokenOperator && p.peekAt(1).Text == "=" &&
			p.peekAt(2).Kind == TokenKeyword && p.peekAt(2).Text == "function" {
			fn, err := p.parseFunctionDef()
			if err != nil {
				return nil, err
			}
			if _, exists := prog.Functions[fn.Name]; exists {
				return nil, fmt.Errorf("lang: function %q defined twice", fn.Name)
			}
			prog.Functions[fn.Name] = fn
			continue
		}
		stmt, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		prog.Body = append(prog.Body, stmt)
	}
	return prog, nil
}

// ParseExpression parses a single DML expression (used by tests and the
// compiler for default parameter values).
func ParseExpression(src string) (Expr, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	toks = normalizeNewlines(toks)
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	p.skipSeparators()
	if !p.atEOF() {
		return nil, fmt.Errorf("lang: unexpected trailing token %s", p.peek())
	}
	return e, nil
}

// normalizeNewlines removes newline tokens that appear inside parentheses or
// brackets (expressions may span lines there) and after commas or binary
// operators, keeping newlines that terminate statements.
func normalizeNewlines(toks []Token) []Token {
	out := make([]Token, 0, len(toks))
	depth := 0
	for _, t := range toks {
		switch t.Kind {
		case TokenLParen, TokenLBracket:
			depth++
		case TokenRParen, TokenRBracket:
			if depth > 0 {
				depth--
			}
		}
		if t.Kind == TokenNewline {
			if depth > 0 {
				continue
			}
			if len(out) > 0 {
				last := out[len(out)-1]
				if last.Kind == TokenOperator || last.Kind == TokenComma || last.Kind == TokenLBrace {
					continue
				}
			}
		}
		out = append(out, t)
	}
	return out
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) peekAt(n int) Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) atEOF() bool { return p.peek().Kind == TokenEOF }

func (p *parser) skipSeparators() {
	for p.peek().Kind == TokenNewline || p.peek().Kind == TokenSemicolon {
		p.next()
	}
}

func (p *parser) skipNewlines() {
	for p.peek().Kind == TokenNewline {
		p.next()
	}
}

func (p *parser) errorf(format string, args ...any) error {
	t := p.peek()
	return fmt.Errorf("lang: line %d: %s", t.Line, fmt.Sprintf(format, args...))
}

func (p *parser) expect(kind TokenKind, text string) (Token, error) {
	t := p.peek()
	if t.Kind != kind || (text != "" && t.Text != text) {
		want := text
		if want == "" {
			want = fmt.Sprintf("token kind %d", kind)
		}
		return t, p.errorf("expected %q, found %s", want, t)
	}
	return p.next(), nil
}

// parseFunctionDef parses: name = function(params) return (rets) { body }
func (p *parser) parseFunctionDef() (*FunctionDef, error) {
	nameTok, err := p.expect(TokenIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokenOperator, "="); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokenKeyword, "function"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokenLParen, ""); err != nil {
		return nil, err
	}
	params, err := p.parseParamList(TokenRParen)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokenRParen, ""); err != nil {
		return nil, err
	}
	p.skipNewlines()
	var returns []Param
	if p.peek().Kind == TokenKeyword && p.peek().Text == "return" {
		p.next()
		if _, err := p.expect(TokenLParen, ""); err != nil {
			return nil, err
		}
		returns, err = p.parseParamList(TokenRParen)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokenRParen, ""); err != nil {
			return nil, err
		}
	}
	p.skipNewlines()
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &FunctionDef{Name: nameTok.Text, Params: params, Returns: returns, Body: body}, nil
}

// parseParamList parses typed parameter declarations until the closing token.
func (p *parser) parseParamList(closing TokenKind) ([]Param, error) {
	var params []Param
	p.skipNewlines()
	for p.peek().Kind != closing && !p.atEOF() {
		param, err := p.parseParam()
		if err != nil {
			return nil, err
		}
		params = append(params, param)
		p.skipNewlines()
		if p.peek().Kind == TokenComma {
			p.next()
			p.skipNewlines()
		}
	}
	return params, nil
}

// parseParam parses "Matrix[Double] X", "Double reg = 0.001", "Integer k" or
// a bare name.
func (p *parser) parseParam() (Param, error) {
	param := Param{DataType: types.UnknownData, ValueType: types.Unknown}
	first, err := p.expect(TokenIdent, "")
	if err != nil {
		return param, err
	}
	name := first.Text
	// typed declaration?
	if dt, ok := parseDataTypeName(first.Text); ok {
		param.DataType = dt
		if dt == types.Scalar {
			param.ValueType = parseScalarValueType(first.Text)
		}
		// optional [ValueType]
		if p.peek().Kind == TokenLBracket {
			p.next()
			vtTok, err := p.expect(TokenIdent, "")
			if err != nil {
				return param, err
			}
			if vt, err := types.ParseValueType(strings.ToLower(vtTok.Text)); err == nil {
				param.ValueType = vt
			}
			if _, err := p.expect(TokenRBracket, ""); err != nil {
				return param, err
			}
		}
		nameTok, err := p.expect(TokenIdent, "")
		if err != nil {
			return param, err
		}
		name = nameTok.Text
	}
	param.Name = name
	if p.peek().Kind == TokenOperator && p.peek().Text == "=" {
		p.next()
		def, err := p.parseExpr()
		if err != nil {
			return param, err
		}
		param.Default = def
	}
	return param, nil
}

func parseDataTypeName(s string) (types.DataType, bool) {
	switch s {
	case "Matrix", "matrix":
		return types.Matrix, true
	case "Frame", "frame":
		return types.Frame, true
	case "Tensor", "tensor":
		return types.Tensor, true
	case "List", "list":
		return types.List, true
	case "Double", "double", "Integer", "integer", "Int", "Boolean", "boolean", "String", "string", "Scalar", "scalar":
		return types.Scalar, true
	default:
		return types.UnknownData, false
	}
}

func parseScalarValueType(s string) types.ValueType {
	switch s {
	case "Double", "double", "Scalar", "scalar":
		return types.FP64
	case "Integer", "integer", "Int":
		return types.INT64
	case "Boolean", "boolean":
		return types.Boolean
	case "String", "string":
		return types.String
	default:
		return types.FP64
	}
}

// parseBlock parses { statements }.
func (p *parser) parseBlock() ([]Statement, error) {
	if _, err := p.expect(TokenLBrace, ""); err != nil {
		return nil, err
	}
	var stmts []Statement
	for {
		p.skipSeparators()
		if p.peek().Kind == TokenRBrace {
			p.next()
			return stmts, nil
		}
		if p.atEOF() {
			return nil, p.errorf("unexpected end of script, expected }")
		}
		stmt, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, stmt)
	}
}

// parseStatement parses a single statement.
func (p *parser) parseStatement() (Statement, error) {
	p.skipSeparators()
	t := p.peek()
	switch {
	case t.Kind == TokenKeyword && t.Text == "if":
		return p.parseIf()
	case t.Kind == TokenKeyword && (t.Text == "for" || t.Text == "parfor"):
		return p.parseFor(t.Text == "parfor")
	case t.Kind == TokenKeyword && t.Text == "while":
		return p.parseWhile()
	case t.Kind == TokenLBracket:
		return p.parseMultiAssign()
	case t.Kind == TokenIdent:
		return p.parseAssignOrExpr()
	default:
		// bare expression statement (e.g. print("x"))
		expr, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &ExprStmt{Value: expr, Line: t.Line}, nil
	}
}

func (p *parser) parseIf() (Statement, error) {
	line := p.peek().Line
	p.next() // if
	if _, err := p.expect(TokenLParen, ""); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokenRParen, ""); err != nil {
		return nil, err
	}
	p.skipNewlines()
	thenStmts, err := p.parseBlockOrSingle()
	if err != nil {
		return nil, err
	}
	var elseStmts []Statement
	// look ahead past newlines for else
	save := p.pos
	p.skipSeparators()
	if p.peek().Kind == TokenKeyword && p.peek().Text == "else" {
		p.next()
		p.skipNewlines()
		if p.peek().Kind == TokenKeyword && p.peek().Text == "if" {
			nested, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			elseStmts = []Statement{nested}
		} else {
			elseStmts, err = p.parseBlockOrSingle()
			if err != nil {
				return nil, err
			}
		}
	} else {
		p.pos = save
	}
	return &IfStmt{Cond: cond, Then: thenStmts, Else: elseStmts, Line: line}, nil
}

func (p *parser) parseBlockOrSingle() ([]Statement, error) {
	if p.peek().Kind == TokenLBrace {
		return p.parseBlock()
	}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	return []Statement{stmt}, nil
}

func (p *parser) parseFor(parallel bool) (Statement, error) {
	line := p.peek().Line
	p.next() // for / parfor
	if _, err := p.expect(TokenLParen, ""); err != nil {
		return nil, err
	}
	varTok, err := p.expect(TokenIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokenKeyword, "in"); err != nil {
		return nil, err
	}
	iter, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	// optional parfor options like check=0, mode=LOCAL: skip them
	for p.peek().Kind == TokenComma {
		p.next()
		if _, err := p.expect(TokenIdent, ""); err != nil {
			return nil, err
		}
		if p.peek().Kind == TokenOperator && p.peek().Text == "=" {
			p.next()
			if _, err := p.parseExpr(); err != nil {
				return nil, err
			}
		}
	}
	if _, err := p.expect(TokenRParen, ""); err != nil {
		return nil, err
	}
	p.skipNewlines()
	body, err := p.parseBlockOrSingle()
	if err != nil {
		return nil, err
	}
	return &ForStmt{Var: varTok.Text, Iterable: iter, Body: body, Parallel: parallel, Line: line}, nil
}

func (p *parser) parseWhile() (Statement, error) {
	line := p.peek().Line
	p.next() // while
	if _, err := p.expect(TokenLParen, ""); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokenRParen, ""); err != nil {
		return nil, err
	}
	p.skipNewlines()
	body, err := p.parseBlockOrSingle()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, Line: line}, nil
}

// parseMultiAssign parses [a, b] = call(...)
func (p *parser) parseMultiAssign() (Statement, error) {
	line := p.peek().Line
	p.next() // [
	var targets []AssignTarget
	for {
		p.skipNewlines()
		tok, err := p.expect(TokenIdent, "")
		if err != nil {
			return nil, err
		}
		targets = append(targets, AssignTarget{Name: tok.Text})
		p.skipNewlines()
		if p.peek().Kind == TokenComma {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(TokenRBracket, ""); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokenOperator, "="); err != nil {
		return nil, err
	}
	value, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &AssignStmt{Targets: targets, Value: value, Line: line}, nil
}

// parseAssignOrExpr handles "x = expr", "X[i, j] = expr" and bare expression
// statements starting with an identifier (like print(...)).
func (p *parser) parseAssignOrExpr() (Statement, error) {
	line := p.peek().Line
	start := p.pos
	nameTok := p.next() // ident
	// indexed assignment target?
	if p.peek().Kind == TokenLBracket {
		// attempt to parse an index target followed by '='
		rows, cols, err := p.parseIndexRanges()
		if err == nil && p.peek().Kind == TokenOperator && p.peek().Text == "=" {
			p.next()
			value, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &AssignStmt{
				Targets: []AssignTarget{{Name: nameTok.Text, Indexed: true, Rows: rows, Cols: cols}},
				Value:   value,
				Line:    line,
			}, nil
		}
		// not an indexed assignment: rewind and parse as expression
		p.pos = start
		expr, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &ExprStmt{Value: expr, Line: line}, nil
	}
	if p.peek().Kind == TokenOperator && p.peek().Text == "=" {
		p.next()
		value, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Targets: []AssignTarget{{Name: nameTok.Text}}, Value: value, Line: line}, nil
	}
	// plain expression statement
	p.pos = start
	expr, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ExprStmt{Value: expr, Line: line}, nil
}

// parseIndexRanges parses "[rows, cols]" after the target name.
func (p *parser) parseIndexRanges() (*IndexRange, *IndexRange, error) {
	if _, err := p.expect(TokenLBracket, ""); err != nil {
		return nil, nil, err
	}
	rows, err := p.parseIndexRange(TokenComma)
	if err != nil {
		return nil, nil, err
	}
	var cols *IndexRange
	if p.peek().Kind == TokenComma {
		p.next()
		cols, err = p.parseIndexRange(TokenRBracket)
		if err != nil {
			return nil, nil, err
		}
	} else {
		cols = &IndexRange{All: true}
	}
	if _, err := p.expect(TokenRBracket, ""); err != nil {
		return nil, nil, err
	}
	return rows, cols, nil
}

// parseIndexRange parses one dimension of an index expression, stopping at
// the given terminator or the closing bracket.
func (p *parser) parseIndexRange(terminator TokenKind) (*IndexRange, error) {
	if p.peek().Kind == terminator || p.peek().Kind == TokenRBracket || p.peek().Kind == TokenComma {
		return &IndexRange{All: true}, nil
	}
	expr, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if r, ok := expr.(*RangeExpr); ok {
		return &IndexRange{Lower: r.From, Upper: r.To}, nil
	}
	return &IndexRange{Lower: expr}, nil
}

// Operator precedence levels, lowest first.
var precedenceLevels = [][]string{
	{"|"},
	{"&"},
	{"==", "!=", "<", "<=", ">", ">="},
	{"+", "-"},
	{"*", "/"},
	{"%*%", "%%", "%/%"},
}

// parseExpr parses an expression using precedence climbing.
func (p *parser) parseExpr() (Expr, error) {
	return p.parseBinary(0)
}

func (p *parser) parseBinary(level int) (Expr, error) {
	if level >= len(precedenceLevels) {
		return p.parseRange()
	}
	left, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokenOperator || !contains(precedenceLevels[level], t.Text) {
			return left, nil
		}
		op := p.next().Text
		p.skipNewlines()
		right, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right, Line: t.Line}
	}
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// parseRange parses from:to ranges (binds tighter than arithmetic per R).
func (p *parser) parseRange() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind == TokenColon {
		line := p.peek().Line
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &RangeExpr{From: left, To: right, Line: line}, nil
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	if t.Kind == TokenOperator && (t.Text == "-" || t.Text == "!" || t.Text == "+") {
		p.next()
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if t.Text == "+" {
			return operand, nil
		}
		return &UnaryExpr{Op: t.Text, Operand: operand, Line: t.Line}, nil
	}
	return p.parsePower()
}

func (p *parser) parsePower() (Expr, error) {
	base, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind == TokenOperator && p.peek().Text == "^" {
		line := p.peek().Line
		p.next()
		// right-associative
		exp, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: "^", Left: base, Right: exp, Line: line}, nil
	}
	return base, nil
}

// parsePostfix parses a primary expression followed by any number of
// indexing suffixes.
func (p *parser) parsePostfix() (Expr, error) {
	expr, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == TokenLBracket {
		line := p.peek().Line
		rows, cols, err := p.parseIndexRanges()
		if err != nil {
			return nil, err
		}
		expr = &IndexExpr{Target: expr, Rows: rows, Cols: cols, Line: line}
	}
	return expr, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokenNumber:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errorf("invalid number %q", t.Text)
		}
		isInt := !strings.ContainsAny(t.Text, ".eE")
		return &NumLit{Value: v, IsInt: isInt, Line: t.Line}, nil
	case TokenString:
		p.next()
		return &StrLit{Value: t.Text, Line: t.Line}, nil
	case TokenBool:
		p.next()
		return &BoolLit{Value: t.Text == "TRUE" || t.Text == "true", Line: t.Line}, nil
	case TokenIdent:
		p.next()
		if p.peek().Kind == TokenLParen {
			return p.parseCallArgs(t)
		}
		return &Ident{Name: t.Text, Line: t.Line}, nil
	case TokenLParen:
		p.next()
		p.skipNewlines()
		expr, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		p.skipNewlines()
		if _, err := p.expect(TokenRParen, ""); err != nil {
			return nil, err
		}
		return expr, nil
	default:
		return nil, p.errorf("unexpected token %s in expression", t)
	}
}

func (p *parser) parseCallArgs(nameTok Token) (Expr, error) {
	if _, err := p.expect(TokenLParen, ""); err != nil {
		return nil, err
	}
	var args []Arg
	p.skipNewlines()
	for p.peek().Kind != TokenRParen && !p.atEOF() {
		arg := Arg{}
		// named argument: ident = expr (but not ident == expr)
		if p.peek().Kind == TokenIdent && p.peekAt(1).Kind == TokenOperator && p.peekAt(1).Text == "=" {
			arg.Name = p.next().Text
			p.next() // =
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		arg.Value = val
		args = append(args, arg)
		p.skipNewlines()
		if p.peek().Kind == TokenComma {
			p.next()
			p.skipNewlines()
			continue
		}
		break
	}
	if _, err := p.expect(TokenRParen, ""); err != nil {
		return nil, err
	}
	return &CallExpr{Name: nameTok.Text, Args: args, Line: nameTok.Line}, nil
}
