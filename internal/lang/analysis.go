package lang

import (
	"fmt"
	"sort"
)

// CollectReads returns the names of variables read by an expression.
func CollectReads(e Expr, into map[string]bool) {
	switch v := e.(type) {
	case nil:
		return
	case *Ident:
		into[v.Name] = true
	case *BinaryExpr:
		CollectReads(v.Left, into)
		CollectReads(v.Right, into)
	case *UnaryExpr:
		CollectReads(v.Operand, into)
	case *RangeExpr:
		CollectReads(v.From, into)
		CollectReads(v.To, into)
	case *CallExpr:
		for _, a := range v.Args {
			CollectReads(a.Value, into)
		}
	case *IndexExpr:
		CollectReads(v.Target, into)
		collectRangeReads(v.Rows, into)
		collectRangeReads(v.Cols, into)
	}
}

func collectRangeReads(r *IndexRange, into map[string]bool) {
	if r == nil {
		return
	}
	if r.Lower != nil {
		CollectReads(r.Lower, into)
	}
	if r.Upper != nil {
		CollectReads(r.Upper, into)
	}
}

// StatementReads returns the variables read by a statement (including reads
// in nested blocks).
func StatementReads(s Statement) map[string]bool {
	reads := map[string]bool{}
	statementReads(s, reads)
	return reads
}

func statementReads(s Statement, reads map[string]bool) {
	switch v := s.(type) {
	case *AssignStmt:
		CollectReads(v.Value, reads)
		for _, t := range v.Targets {
			if t.Indexed {
				// left indexing reads the previous value of the target
				reads[t.Name] = true
				collectRangeReads(t.Rows, reads)
				collectRangeReads(t.Cols, reads)
			}
		}
	case *ExprStmt:
		CollectReads(v.Value, reads)
	case *IfStmt:
		CollectReads(v.Cond, reads)
		for _, st := range v.Then {
			statementReads(st, reads)
		}
		for _, st := range v.Else {
			statementReads(st, reads)
		}
	case *ForStmt:
		CollectReads(v.Iterable, reads)
		for _, st := range v.Body {
			statementReads(st, reads)
		}
	case *WhileStmt:
		CollectReads(v.Cond, reads)
		for _, st := range v.Body {
			statementReads(st, reads)
		}
	}
}

// StatementWrites returns the variables written by a statement (including
// writes in nested blocks).
func StatementWrites(s Statement) map[string]bool {
	writes := map[string]bool{}
	statementWrites(s, writes)
	return writes
}

func statementWrites(s Statement, writes map[string]bool) {
	switch v := s.(type) {
	case *AssignStmt:
		for _, t := range v.Targets {
			writes[t.Name] = true
		}
	case *IfStmt:
		for _, st := range v.Then {
			statementWrites(st, writes)
		}
		for _, st := range v.Else {
			statementWrites(st, writes)
		}
	case *ForStmt:
		writes[v.Var] = true
		for _, st := range v.Body {
			statementWrites(st, writes)
		}
	case *WhileStmt:
		for _, st := range v.Body {
			statementWrites(st, writes)
		}
	}
}

// BlockReads returns the sorted variables read by a block of statements.
func BlockReads(stmts []Statement) []string {
	reads := map[string]bool{}
	for _, s := range stmts {
		statementReads(s, reads)
	}
	return sortedKeys(reads)
}

// BlockWrites returns the sorted variables written by a block of statements.
func BlockWrites(stmts []Statement) []string {
	writes := map[string]bool{}
	for _, s := range stmts {
		statementWrites(s, writes)
	}
	return sortedKeys(writes)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Validate performs semantic checks on a parsed program: every called
// function must be either a user-defined function or a known builtin, and
// multi-assignments must take their values from function calls.
func Validate(prog *Program, isBuiltin func(string) bool) error {
	var errs []error
	checkCall := func(name string, line int) {
		if _, ok := prog.Functions[name]; ok {
			return
		}
		if isBuiltin != nil && isBuiltin(name) {
			return
		}
		errs = append(errs, fmt.Errorf("lang: line %d: call to undefined function %q", line, name))
	}
	var walkExpr func(e Expr)
	walkExpr = func(e Expr) {
		switch v := e.(type) {
		case *CallExpr:
			checkCall(v.Name, v.Line)
			for _, a := range v.Args {
				walkExpr(a.Value)
			}
		case *BinaryExpr:
			walkExpr(v.Left)
			walkExpr(v.Right)
		case *UnaryExpr:
			walkExpr(v.Operand)
		case *RangeExpr:
			walkExpr(v.From)
			walkExpr(v.To)
		case *IndexExpr:
			walkExpr(v.Target)
			if v.Rows != nil {
				if v.Rows.Lower != nil {
					walkExpr(v.Rows.Lower)
				}
				if v.Rows.Upper != nil {
					walkExpr(v.Rows.Upper)
				}
			}
			if v.Cols != nil {
				if v.Cols.Lower != nil {
					walkExpr(v.Cols.Lower)
				}
				if v.Cols.Upper != nil {
					walkExpr(v.Cols.Upper)
				}
			}
		}
	}
	var walkStmts func(stmts []Statement)
	walkStmts = func(stmts []Statement) {
		for _, s := range stmts {
			switch v := s.(type) {
			case *AssignStmt:
				if len(v.Targets) > 1 {
					if _, ok := v.Value.(*CallExpr); !ok {
						errs = append(errs, fmt.Errorf("lang: line %d: multi-assignment requires a function call on the right-hand side", v.Line))
					}
				}
				walkExpr(v.Value)
			case *ExprStmt:
				walkExpr(v.Value)
			case *IfStmt:
				walkExpr(v.Cond)
				walkStmts(v.Then)
				walkStmts(v.Else)
			case *ForStmt:
				walkExpr(v.Iterable)
				walkStmts(v.Body)
			case *WhileStmt:
				walkExpr(v.Cond)
				walkStmts(v.Body)
			}
		}
	}
	for _, fn := range prog.Functions {
		seen := map[string]bool{}
		for _, p := range fn.Params {
			if seen[p.Name] {
				errs = append(errs, fmt.Errorf("lang: function %q has duplicate parameter %q", fn.Name, p.Name))
			}
			seen[p.Name] = true
		}
		walkStmts(fn.Body)
	}
	walkStmts(prog.Body)
	if len(errs) > 0 {
		msg := ""
		for i, e := range errs {
			if i > 0 {
				msg += "; "
			}
			msg += e.Error()
		}
		return fmt.Errorf("%s", msg)
	}
	return nil
}
