// Package lang implements the DML scripting language of SystemDS-Go: an
// R-like syntax for linear algebra, element-wise and statistical operations,
// control flow (if/for/while/parfor) and user-defined functions
// (Section 2.2 of the paper). The package provides the lexer, parser, AST
// and semantic validation; compilation to HOP DAGs lives in internal/hops.
package lang

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind enumerates lexical token categories.
type TokenKind int

// Token kinds.
const (
	TokenEOF TokenKind = iota
	TokenIdent
	TokenNumber
	TokenString
	TokenBool
	TokenOperator  // + - * / ^ %*% %% %/% < <= > >= == != & | ! =
	TokenLParen    // (
	TokenRParen    // )
	TokenLBrace    // {
	TokenRBrace    // }
	TokenLBracket  // [
	TokenRBracket  // ]
	TokenComma     // ,
	TokenSemicolon // ;
	TokenColon     // :
	TokenKeyword   // if else for while parfor function return in source as
	TokenNewline
)

// Token is a lexical token with position information for error reporting.
type Token struct {
	Kind TokenKind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	return fmt.Sprintf("%q@%d:%d", t.Text, t.Line, t.Col)
}

var keywords = map[string]bool{
	"if": true, "else": true, "for": true, "while": true, "parfor": true,
	"function": true, "return": true, "in": true,
}

// Lex tokenizes a DML script. Comments (# to end of line) are skipped;
// newlines are preserved as statement separators.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	n := len(src)
	emit := func(kind TokenKind, text string) {
		toks = append(toks, Token{Kind: kind, Text: text, Line: line, Col: col})
	}
	for i < n {
		c := src[i]
		switch {
		case c == '#':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '\n':
			emit(TokenNewline, "\n")
			i++
			line++
			col = 1
			continue
		case c == ' ' || c == '\t' || c == '\r':
			i++
			col++
			continue
		case c == '"' || c == '\'':
			quote := c
			j := i + 1
			var sb strings.Builder
			for j < n && src[j] != quote {
				if src[j] == '\\' && j+1 < n {
					j++
					switch src[j] {
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					case '\\':
						sb.WriteByte('\\')
					case '"':
						sb.WriteByte('"')
					case '\'':
						sb.WriteByte('\'')
					default:
						sb.WriteByte(src[j])
					}
				} else {
					sb.WriteByte(src[j])
				}
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("lang: unterminated string literal at line %d", line)
			}
			emit(TokenString, sb.String())
			col += j - i + 1
			i = j + 1
			continue
		case unicode.IsDigit(rune(c)) || (c == '.' && i+1 < n && unicode.IsDigit(rune(src[i+1]))):
			j := i
			seenDot, seenExp := false, false
			for j < n {
				cj := src[j]
				if unicode.IsDigit(rune(cj)) {
					j++
				} else if cj == '.' && !seenDot && !seenExp {
					seenDot = true
					j++
				} else if (cj == 'e' || cj == 'E') && !seenExp && j > i {
					seenExp = true
					j++
					if j < n && (src[j] == '+' || src[j] == '-') {
						j++
					}
				} else {
					break
				}
			}
			emit(TokenNumber, src[i:j])
			col += j - i
			i = j
			continue
		case unicode.IsLetter(rune(c)) || c == '_' || c == '.':
			j := i
			for j < n && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_' || src[j] == '.') {
				j++
			}
			word := src[i:j]
			switch {
			case word == "TRUE" || word == "FALSE" || word == "true" || word == "false":
				emit(TokenBool, word)
			case keywords[word]:
				emit(TokenKeyword, word)
			default:
				emit(TokenIdent, word)
			}
			col += j - i
			i = j
			continue
		case c == '(':
			emit(TokenLParen, "(")
			i++
			col++
			continue
		case c == ')':
			emit(TokenRParen, ")")
			i++
			col++
			continue
		case c == '{':
			emit(TokenLBrace, "{")
			i++
			col++
			continue
		case c == '}':
			emit(TokenRBrace, "}")
			i++
			col++
			continue
		case c == '[':
			emit(TokenLBracket, "[")
			i++
			col++
			continue
		case c == ']':
			emit(TokenRBracket, "]")
			i++
			col++
			continue
		case c == ',':
			emit(TokenComma, ",")
			i++
			col++
			continue
		case c == ';':
			emit(TokenSemicolon, ";")
			i++
			col++
			continue
		case c == ':':
			emit(TokenColon, ":")
			i++
			col++
			continue
		case c == '%':
			// %*%, %%, %/%
			if i+2 < n && src[i+1] == '*' && src[i+2] == '%' {
				emit(TokenOperator, "%*%")
				i += 3
				col += 3
			} else if i+2 < n && src[i+1] == '/' && src[i+2] == '%' {
				emit(TokenOperator, "%/%")
				i += 3
				col += 3
			} else if i+1 < n && src[i+1] == '%' {
				emit(TokenOperator, "%%")
				i += 2
				col += 2
			} else {
				return nil, fmt.Errorf("lang: unexpected character %q at line %d", c, line)
			}
			continue
		case strings.ContainsRune("+-*/^<>=!&|", rune(c)):
			// multi-character operators
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case "<=", ">=", "==", "!=", "<-", "&&", "||":
				op := two
				if op == "<-" {
					op = "="
				}
				if op == "&&" {
					op = "&"
				}
				if op == "||" {
					op = "|"
				}
				emit(TokenOperator, op)
				i += 2
				col += 2
			default:
				emit(TokenOperator, string(c))
				i++
				col++
			}
			continue
		default:
			return nil, fmt.Errorf("lang: unexpected character %q at line %d column %d", c, line, col)
		}
	}
	toks = append(toks, Token{Kind: TokenEOF, Text: "", Line: line, Col: col})
	return toks, nil
}
