// Package obs is the runtime observability layer of SystemDS-Go: a
// low-overhead hierarchical span tracer plus a per-opcode metrics aggregator.
// Spans nest run → basic-block → instruction → kernel sub-phases (dist
// partition tasks, bufferpool spill/restore, compression encode/decompress,
// lineage-store get/put, federated RPCs). Completed spans are appended to
// per-worker buffers drawn from a sync.Pool — the hot path never contends on
// a shared lock — and merged into one sorted record list at flush time.
//
// The overhead contract: when tracing is disabled, Begin is a single atomic
// load returning the zero Span, and End on the zero Span is a nil check —
// zero allocations on the emit path (gated by testing.AllocsPerRun in
// obs_test.go). Deep layers (bufferpool, dist, compress) call the package
// level Begin/End on the process-global tracer directly, so no tracer handle
// needs to be plumbed through their APIs; the engine enables the global
// tracer per traced run (tracing is therefore process-wide, not per-session).
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span categories. Aggregation and the trace viewers group by these.
const (
	// CatRun is the root span of one engine run.
	CatRun = "run"
	// CatBlock is one basic-block (instruction DAG) execution.
	CatBlock = "block"
	// CatInstr is one instruction execution; the span name is the opcode.
	CatInstr = "instr"
	// CatDist covers blocked-backend sub-phases: partition, collect, and the
	// per-block tasks of the dist worker pool (named by operator).
	CatDist = "dist"
	// CatPool covers buffer-pool spill and restore I/O.
	CatPool = "pool"
	// CatCompress covers compression encode and transparent decompress.
	CatCompress = "compress"
	// CatLineage covers persistent lineage-store get/put I/O.
	CatLineage = "lineage"
	// CatRPC is a master-side federated RPC (one request/response exchange).
	CatRPC = "rpc"
	// CatFed is a federated-worker-side span, grafted into the master trace
	// under its issuing RPC span.
	CatFed = "fed"
)

// Record is one completed span. All fields are plain exported values so
// records travel over the federated gob wire protocol unchanged.
type Record struct {
	// ID is unique within one tracer; Parent is the enclosing span's ID, or 0
	// for spans re-parented later by time containment (see Resolve).
	ID     uint64
	Parent uint64
	Cat    string
	Name   string
	// Start is in nanoseconds since the tracer's epoch; Dur is the span's
	// wall-clock duration in nanoseconds.
	Start int64
	Dur   int64
	// Bytes is the number of payload bytes the spanned operation moved
	// (spilled, restored, shipped, encoded), 0 when not applicable.
	Bytes int64
}

// End returns the end time of the record (Start + Dur).
func (r Record) End() int64 { return r.Start + r.Dur }

// DefaultLimit bounds the number of records one tracer retains; emissions
// past the limit are counted in Dropped instead of growing memory without
// bound on pathological runs.
const DefaultLimit = 1 << 20

// Tracer records spans into per-worker append-only buffers. The zero value
// is not usable; use New.
type Tracer struct {
	enabled atomic.Bool
	nextID  atomic.Uint64
	count   atomic.Int64
	dropped atomic.Int64
	limit   int64
	epoch   time.Time

	// bufPool hands each emitting goroutine a private buffer for the duration
	// of one append (per-P caches make Get/Put contention-free in practice);
	// every buffer ever created is also registered under regMu so Snapshot
	// can merge them all even after the pool dropped its reference.
	bufPool sync.Pool
	regMu   sync.Mutex
	bufs    []*spanBuf
}

type spanBuf struct {
	mu   sync.Mutex
	recs []Record
}

// New creates a disabled tracer with the default record limit.
func New() *Tracer {
	t := &Tracer{limit: DefaultLimit, epoch: time.Now()}
	t.bufPool.New = func() any {
		b := &spanBuf{}
		t.regMu.Lock()
		t.bufs = append(t.bufs, b)
		t.regMu.Unlock()
		return b
	}
	return t
}

// SetEnabled switches span recording on or off.
func (t *Tracer) SetEnabled(v bool) { t.enabled.Store(v) }

// IsEnabled reports whether span recording is on.
func (t *Tracer) IsEnabled() bool { return t.enabled.Load() }

// now returns nanoseconds since the tracer epoch (monotonic).
func (t *Tracer) now() int64 { return int64(time.Since(t.epoch)) }

// Span is an in-flight span handle. The zero Span (returned by Begin when
// tracing is disabled) is valid to End and does nothing.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	cat    string
	name   string
	start  int64
}

// Valid reports whether the span is actually recording.
func (s Span) Valid() bool { return s.tr != nil }

// SpanID returns the span's record ID (0 for the zero Span).
func (s Span) SpanID() uint64 { return s.id }

// Begin starts a span with no explicit parent; Resolve later re-parents it
// under the innermost span that contains it in time. This is the entry point
// for deep layers (bufferpool, dist, compress, lineage store) that have no
// parent handle in scope.
func (t *Tracer) Begin(cat, name string) Span {
	if !t.enabled.Load() {
		return Span{}
	}
	return Span{tr: t, id: t.nextID.Add(1), cat: cat, name: name, start: t.now()}
}

// BeginChild starts a span explicitly parented under parent. A zero parent
// degrades to Begin semantics (containment re-parenting).
func (t *Tracer) BeginChild(parent Span, cat, name string) Span {
	if !t.enabled.Load() {
		return Span{}
	}
	return Span{tr: t, id: t.nextID.Add(1), parent: parent.id, cat: cat, name: name, start: t.now()}
}

// End completes the span with no byte annotation.
func (s Span) End() { s.EndBytes(0) }

// EndBytes completes the span, annotating the payload bytes the operation
// moved. No-op on the zero Span.
func (s Span) EndBytes(bytes int64) {
	if s.tr == nil {
		return
	}
	t := s.tr
	t.emit(Record{ID: s.id, Parent: s.parent, Cat: s.cat, Name: s.name,
		Start: s.start, Dur: t.now() - s.start, Bytes: bytes})
}

// emit appends one record to a pooled per-worker buffer.
func (t *Tracer) emit(r Record) {
	if t.count.Load() >= t.limit {
		t.dropped.Add(1)
		return
	}
	t.count.Add(1)
	b := t.bufPool.Get().(*spanBuf)
	b.mu.Lock()
	b.recs = append(b.recs, r)
	b.mu.Unlock()
	t.bufPool.Put(b)
}

// Graft appends externally recorded spans (e.g. shipped back from a
// federated worker) under the given parent span: IDs are re-allocated in this
// tracer's space, intra-batch parent links are preserved, parentless spans
// attach to the parent span, and start times are shifted so the earliest
// grafted span aligns with the parent's start (the two processes have
// unrelated epochs and clocks; alignment at the RPC start is the documented
// stitching convention).
func (t *Tracer) Graft(recs []Record, under Span) {
	if under.tr != t || len(recs) == 0 || !t.enabled.Load() {
		return
	}
	minStart := recs[0].Start
	for _, r := range recs {
		if r.Start < minStart {
			minStart = r.Start
		}
	}
	shift := under.start - minStart
	idMap := make(map[uint64]uint64, len(recs))
	for _, r := range recs {
		idMap[r.ID] = t.nextID.Add(1)
	}
	for _, r := range recs {
		nr := r
		nr.ID = idMap[r.ID]
		if p, ok := idMap[r.Parent]; ok {
			nr.Parent = p
		} else {
			nr.Parent = under.id
		}
		nr.Start += shift
		t.emit(nr)
	}
}

// Snapshot merges all per-worker buffers into one list sorted by start time
// (ID breaks ties). Buffers are locked one at a time; emitters keep running.
func (t *Tracer) Snapshot() []Record {
	t.regMu.Lock()
	bufs := make([]*spanBuf, len(t.bufs))
	copy(bufs, t.bufs)
	t.regMu.Unlock()
	var out []Record
	for _, b := range bufs {
		b.mu.Lock()
		out = append(out, b.recs...)
		b.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Reset drops all recorded spans and clears the drop counter. The epoch is
// kept; record IDs keep growing (uniqueness across resets is harmless).
func (t *Tracer) Reset() {
	t.regMu.Lock()
	bufs := make([]*spanBuf, len(t.bufs))
	copy(bufs, t.bufs)
	t.regMu.Unlock()
	for _, b := range bufs {
		b.mu.Lock()
		b.recs = b.recs[:0]
		b.mu.Unlock()
	}
	t.count.Store(0)
	t.dropped.Store(0)
}

// Dropped returns how many spans were discarded after the record limit.
func (t *Tracer) Dropped() int64 { return t.dropped.Load() }

// global is the process-wide tracer the engine and all runtime layers share.
var global = New()

// Default returns the process-global tracer.
func Default() *Tracer { return global }

// Enable turns on recording on the global tracer.
func Enable() { global.SetEnabled(true) }

// Disable turns off recording on the global tracer.
func Disable() { global.SetEnabled(false) }

// Enabled reports whether the global tracer is recording.
func Enabled() bool { return global.IsEnabled() }

// Begin starts a containment-parented span on the global tracer.
func Begin(cat, name string) Span { return global.Begin(cat, name) }

// BeginChild starts an explicitly parented span on the global tracer.
func BeginChild(parent Span, cat, name string) Span { return global.BeginChild(parent, cat, name) }

// Graft appends externally recorded spans under parent on the global tracer.
func Graft(recs []Record, under Span) { global.Graft(recs, under) }

// Snapshot returns the merged, sorted records of the global tracer.
func Snapshot() []Record { return global.Snapshot() }

// Reset clears the global tracer's records.
func Reset() { global.Reset() }

// Dropped returns the global tracer's drop count.
func Dropped() int64 { return global.Dropped() }
