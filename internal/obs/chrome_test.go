package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// parsedEvent covers both "X" and "M" events for validation.
type parsedEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Args struct {
		ID     uint64 `json:"id"`
		Parent uint64 `json:"parent"`
		Bytes  int64  `json:"bytes"`
	} `json:"args"`
}

type parsedTrace struct {
	TraceEvents     []parsedEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// TestChromeTraceWellFormed validates JSON well-formedness and that spans on
// each tid nest strictly (the trace-event contract Perfetto relies on),
// including overlapping spans from concurrent workers being split to lanes.
func TestChromeTraceWellFormed(t *testing.T) {
	recs := []Record{
		{ID: 1, Parent: 0, Cat: CatRun, Name: "run", Start: 0, Dur: 100_000},
		{ID: 2, Parent: 1, Cat: CatBlock, Name: "block", Start: 1_000, Dur: 98_000},
		// Two overlapping instruction spans (concurrent scheduler workers):
		// they cannot share a lane.
		{ID: 3, Parent: 2, Cat: CatInstr, Name: "ba+*", Start: 2_000, Dur: 50_000},
		{ID: 4, Parent: 2, Cat: CatInstr, Name: "uak+", Start: 30_000, Dur: 60_000},
		{ID: 5, Parent: 3, Cat: CatDist, Name: "mm", Start: 10_000, Dur: 10_000, Bytes: 4096},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, recs); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var tr parsedTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	ids := map[uint64]bool{}
	var spans []parsedEvent
	for _, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "M":
			continue
		case "X":
			spans = append(spans, ev)
			ids[ev.Args.ID] = true
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}
	if len(spans) != len(recs) {
		t.Fatalf("got %d span events, want %d", len(spans), len(recs))
	}
	for _, ev := range spans {
		if ev.Args.Parent != 0 && !ids[ev.Args.Parent] {
			t.Errorf("span %d references missing parent %d", ev.Args.ID, ev.Args.Parent)
		}
	}
	// Per-tid strict nesting: replay each lane with a stack.
	byTid := map[int][]parsedEvent{}
	tids := []int{}
	for _, ev := range spans {
		if _, ok := byTid[ev.Tid]; !ok {
			tids = append(tids, ev.Tid)
		}
		byTid[ev.Tid] = append(byTid[ev.Tid], ev)
	}
	if len(tids) < 2 {
		t.Fatalf("overlapping spans were not split to separate lanes (got %d lanes)", len(tids))
	}
	for _, tid := range tids {
		var stack []parsedEvent
		for _, ev := range byTid[tid] { // events are already sorted by start
			for len(stack) > 0 && stack[len(stack)-1].Ts+stack[len(stack)-1].Dur <= ev.Ts {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 && stack[len(stack)-1].Ts+stack[len(stack)-1].Dur < ev.Ts+ev.Dur {
				t.Fatalf("tid %d: span %q [%v,%v] overlaps open span %q without nesting",
					tid, ev.Name, ev.Ts, ev.Ts+ev.Dur, stack[len(stack)-1].Name)
			}
			stack = append(stack, ev)
		}
	}
}

// TestChromeTraceGolden pins the exact serialization of a tiny trace so
// format drift is caught deliberately.
func TestChromeTraceGolden(t *testing.T) {
	recs := []Record{
		{ID: 7, Parent: 0, Cat: CatRun, Name: "run", Start: 0, Dur: 2_000},
		{ID: 8, Parent: 7, Cat: CatInstr, Name: "ba+*", Start: 500, Dur: 1_000, Bytes: 64},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, recs); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	want := `{"traceEvents":[` +
		`{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"systemds-go"}},` +
		`{"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"main"}},` +
		`{"name":"run","cat":"run","ph":"X","ts":0,"dur":2,"pid":1,"tid":0,"args":{"id":7}},` +
		`{"name":"ba+*","cat":"instr","ph":"X","ts":0.5,"dur":1,"pid":1,"tid":0,"args":{"id":8,"parent":7,"bytes":64}}` +
		`],"displayTimeUnit":"ms"}` + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("golden mismatch:\ngot:  %s\nwant: %s", got, want)
	}
}
