package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestDisabledPathZeroAllocs gates the overhead contract: with tracing off,
// Begin/End must not allocate.
func TestDisabledPathZeroAllocs(t *testing.T) {
	tr := New()
	tr.SetEnabled(false)
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Begin(CatInstr, "ba+*")
		sp.EndBytes(128)
	})
	if allocs != 0 {
		t.Fatalf("disabled emit path allocated %v times per op, want 0", allocs)
	}
	// The package-level global entry points must be just as cheap.
	Disable()
	allocs = testing.AllocsPerRun(1000, func() {
		sp := Begin(CatDist, "mm")
		child := BeginChild(sp, CatDist, "task")
		child.End()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled global emit path allocated %v times per op, want 0", allocs)
	}
}

// TestConcurrentEmission hammers one tracer from many goroutines (the
// scheduler/dist worker shape); run under -race this validates the
// per-worker buffer scheme.
func TestConcurrentEmission(t *testing.T) {
	tr := New()
	tr.SetEnabled(true)
	const workers = 8
	const spansPer = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < spansPer; i++ {
				sp := tr.Begin(CatInstr, "op")
				child := tr.BeginChild(sp, CatDist, "task")
				child.EndBytes(8)
				sp.End()
			}
		}()
	}
	wg.Wait()
	recs := tr.Snapshot()
	if got, want := len(recs), workers*spansPer*2; got != want {
		t.Fatalf("got %d records, want %d", got, want)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("dropped %d records, want 0", tr.Dropped())
	}
	seen := make(map[uint64]bool, len(recs))
	for _, r := range recs {
		if seen[r.ID] {
			t.Fatalf("duplicate record ID %d", r.ID)
		}
		seen[r.ID] = true
	}
	tr.Reset()
	if got := len(tr.Snapshot()); got != 0 {
		t.Fatalf("after Reset: %d records, want 0", got)
	}
}

// TestRecordLimit verifies emissions past the limit are counted, not stored.
func TestRecordLimit(t *testing.T) {
	tr := New()
	tr.limit = 4
	tr.SetEnabled(true)
	for i := 0; i < 10; i++ {
		tr.Begin(CatInstr, "op").End()
	}
	if got := len(tr.Snapshot()); got != 4 {
		t.Fatalf("got %d records, want 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
}

// TestResolveReparenting checks the time-containment sweep: orphans land
// under the innermost containing span, explicit parents are preserved, and
// dangling parents are fixed up.
func TestResolveReparenting(t *testing.T) {
	recs := []Record{
		{ID: 1, Parent: 0, Cat: CatRun, Name: "run", Start: 0, Dur: 100},
		{ID: 2, Parent: 1, Cat: CatBlock, Name: "block", Start: 5, Dur: 90},
		{ID: 3, Parent: 0, Cat: CatInstr, Name: "ba+*", Start: 10, Dur: 40},
		{ID: 4, Parent: 0, Cat: CatDist, Name: "mm", Start: 15, Dur: 20},
		{ID: 5, Parent: 999, Cat: CatPool, Name: "spill", Start: 60, Dur: 10},
		{ID: 6, Parent: 3, Cat: CatCompress, Name: "decompress", Start: 12, Dur: 5},
	}
	parent := map[uint64]uint64{}
	for _, r := range Resolve(recs) {
		parent[r.ID] = r.Parent
	}
	want := map[uint64]uint64{1: 0, 2: 1, 3: 2, 4: 3, 5: 2, 6: 3}
	for id, p := range want {
		if parent[id] != p {
			t.Errorf("record %d: parent = %d, want %d", id, parent[id], p)
		}
	}
}

// TestAggregateSelfTime checks wall vs self accounting and ordering.
func TestAggregateSelfTime(t *testing.T) {
	recs := []Record{
		{ID: 1, Parent: 0, Cat: CatInstr, Name: "ba+*", Start: 0, Dur: 100, Bytes: 64},
		{ID: 2, Parent: 1, Cat: CatDist, Name: "mm", Start: 10, Dur: 30},
		{ID: 3, Parent: 1, Cat: CatDist, Name: "mm", Start: 50, Dur: 40},
		{ID: 4, Parent: 0, Cat: CatInstr, Name: "uak+", Start: 200, Dur: 10},
	}
	ms := Aggregate(recs)
	byName := map[string]OpMetric{}
	for _, m := range ms {
		byName[m.Cat+"/"+m.Name] = m
	}
	mm := byName["dist/mm"]
	if mm.Count != 2 || mm.WallNs != 70 || mm.SelfNs != 70 {
		t.Fatalf("dist/mm = %+v, want count=2 wall=70 self=70", mm)
	}
	ba := byName["instr/ba+*"]
	if ba.Count != 1 || ba.WallNs != 100 || ba.SelfNs != 30 || ba.Bytes != 64 {
		t.Fatalf("instr/ba+* = %+v, want count=1 wall=100 self=30 bytes=64", ba)
	}
	// Sorted by self time descending: dist/mm (70) first.
	if ms[0].Name != "mm" {
		t.Fatalf("top heavy hitter = %s/%s, want dist/mm", ms[0].Cat, ms[0].Name)
	}
}

// TestGraft verifies federated stitching: fresh IDs, preserved internal
// structure, orphans attached to the RPC span, and time alignment.
func TestGraft(t *testing.T) {
	tr := New()
	tr.SetEnabled(true)
	rpc := tr.Begin(CatRPC, "rpc:exec:tsmm")
	worker := []Record{
		{ID: 1, Parent: 0, Cat: CatFed, Name: "worker:exec:tsmm", Start: 5000, Dur: 300},
		{ID: 2, Parent: 1, Cat: CatFed, Name: "kernel", Start: 5100, Dur: 100},
	}
	tr.Graft(worker, rpc)
	rpc.End()
	recs := tr.Snapshot()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	var root, kernel, rpcRec Record
	for _, r := range recs {
		switch r.Name {
		case "worker:exec:tsmm":
			root = r
		case "kernel":
			kernel = r
		case "rpc:exec:tsmm":
			rpcRec = r
		}
	}
	if root.Parent != rpcRec.ID {
		t.Errorf("worker root parent = %d, want rpc span %d", root.Parent, rpcRec.ID)
	}
	if kernel.Parent != root.ID {
		t.Errorf("kernel parent = %d, want worker root %d", kernel.Parent, root.ID)
	}
	if root.Start != rpcRec.Start {
		t.Errorf("worker root start = %d, want aligned to rpc start %d", root.Start, rpcRec.Start)
	}
	if kernel.Start-root.Start != 100 {
		t.Errorf("kernel offset = %d, want 100", kernel.Start-root.Start)
	}
}

// TestFormatHeavyHitters checks the report shape and footer labels that
// cmd/tracecheck parses.
func TestFormatHeavyHitters(t *testing.T) {
	recs := []Record{
		{ID: 1, Parent: 0, Cat: CatRun, Name: "run", Start: 0, Dur: 1_000_000},
		{ID: 2, Parent: 1, Cat: CatInstr, Name: "ba+*", Start: 0, Dur: 950_000},
	}
	out := FormatHeavyHitters(recs, 5)
	for _, want := range []string{"Heavy hitter", "ba+*", "run wall time: 1.000 ms", "total instruction time: 0.950 ms (95.0% of run)"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
