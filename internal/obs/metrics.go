package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Resolve returns a copy of recs with orphan spans (Parent 0 or pointing at
// an ID not in the set) re-parented under the innermost span that contains
// them in time. Deep layers emit orphans by design (they have no parent
// handle in scope); a single sweep with an open-span stack fixes them up
// after the fact. Records are returned sorted by start time, with longer
// spans before shorter ones at equal starts so containers precede their
// contents.
func Resolve(recs []Record) []Record {
	out := make([]Record, len(recs))
	copy(out, recs)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].Dur != out[j].Dur {
			return out[i].Dur > out[j].Dur
		}
		return out[i].ID < out[j].ID
	})
	ids := make(map[uint64]bool, len(out))
	for _, r := range out {
		ids[r.ID] = true
	}
	// stack holds the currently open spans, innermost last. Because starts
	// are sorted ascending, a stack entry contains the candidate iff its end
	// does not precede the candidate's end. Spans from concurrent workers can
	// partially overlap; popping on end-time keeps the sweep deterministic
	// and only affects orphans (explicitly parented spans are left alone).
	var stack []Record
	for i := range out {
		r := &out[i]
		for len(stack) > 0 && stack[len(stack)-1].End() < r.End() {
			stack = stack[:len(stack)-1]
		}
		if r.Parent == 0 || !ids[r.Parent] {
			if len(stack) > 0 {
				r.Parent = stack[len(stack)-1].ID
			} else {
				r.Parent = 0
			}
		}
		stack = append(stack, *r)
	}
	return out
}

// OpMetric is one row of the per-opcode metrics table.
type OpMetric struct {
	// Cat and Name identify the span class (e.g. "instr"/"ba+*").
	Cat  string
	Name string
	// Count is the number of spans, WallNs their summed duration, SelfNs the
	// summed duration minus time attributed to direct children, Bytes the
	// summed payload bytes moved.
	Count  int64
	WallNs int64
	SelfNs int64
	Bytes  int64
}

// Aggregate folds resolved records into per-(cat, name) metrics, sorted by
// self time descending (category and name break ties, so the table is
// deterministic across runs of the same trace).
func Aggregate(recs []Record) []OpMetric {
	childNs := make(map[uint64]int64, len(recs))
	for _, r := range recs {
		if r.Parent != 0 {
			childNs[r.Parent] += r.Dur
		}
	}
	agg := make(map[string]*OpMetric, 32)
	var keys []string
	for _, r := range recs {
		k := r.Cat + "\x00" + r.Name
		m := agg[k]
		if m == nil {
			m = &OpMetric{Cat: r.Cat, Name: r.Name}
			agg[k] = m
			keys = append(keys, k)
		}
		m.Count++
		m.WallNs += r.Dur
		self := r.Dur - childNs[r.ID]
		if self < 0 {
			// Concurrent children (scheduler workers under one block span)
			// can sum past the parent's wall time; clamp instead of going
			// negative.
			self = 0
		}
		m.SelfNs += self
		m.Bytes += r.Bytes
	}
	out := make([]OpMetric, 0, len(keys))
	for _, k := range keys {
		out = append(out, *agg[k])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SelfNs != out[j].SelfNs {
			return out[i].SelfNs > out[j].SelfNs
		}
		if out[i].Cat != out[j].Cat {
			return out[i].Cat < out[j].Cat
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// TopK returns the first k metrics (they are already sorted by self time).
func TopK(ms []OpMetric, k int) []OpMetric {
	if k < len(ms) {
		return ms[:k]
	}
	return ms
}

// FormatHeavyHitters renders a SystemDS-style top-K heavy-hitter report from
// raw records: resolves parents, aggregates per opcode, and appends run
// wall-time and instruction-coverage footer lines (parsed by
// cmd/tracecheck's reconciliation check — keep the "run wall time" and
// "total instruction time" labels stable).
func FormatHeavyHitters(recs []Record, k int) string {
	resolved := Resolve(recs)
	ms := Aggregate(resolved)
	var sb strings.Builder
	sb.WriteString("Heavy hitter operations (top " + fmt.Sprint(k) + " by self time):\n")
	sb.WriteString(fmt.Sprintf("  %3s  %-9s %-24s %9s %12s %12s %14s\n",
		"#", "category", "operation", "count", "wall[ms]", "self[ms]", "bytes"))
	for i, m := range TopK(ms, k) {
		sb.WriteString(fmt.Sprintf("  %3d  %-9s %-24s %9d %12.3f %12.3f %14d\n",
			i+1, m.Cat, m.Name, m.Count, float64(m.WallNs)/1e6, float64(m.SelfNs)/1e6, m.Bytes))
	}
	var runNs, instrNs int64
	for _, r := range resolved {
		switch r.Cat {
		case CatRun:
			runNs += r.Dur
		case CatInstr:
			instrNs += r.Dur
		}
	}
	sb.WriteString(fmt.Sprintf("run wall time: %.3f ms\n", float64(runNs)/1e6))
	if runNs > 0 {
		sb.WriteString(fmt.Sprintf("total instruction time: %.3f ms (%.1f%% of run)\n",
			float64(instrNs)/1e6, 100*float64(instrNs)/float64(runNs)))
	} else {
		sb.WriteString(fmt.Sprintf("total instruction time: %.3f ms\n", float64(instrNs)/1e6))
	}
	return sb.String()
}
