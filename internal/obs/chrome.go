package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// chromeEvent is one Chrome-trace-event "X" (complete) event. Timestamps and
// durations are microseconds as floats, per the trace-event format consumed
// by Perfetto and chrome://tracing.
type chromeEvent struct {
	Name string     `json:"name"`
	Cat  string     `json:"cat"`
	Ph   string     `json:"ph"`
	Ts   float64    `json:"ts"`
	Dur  float64    `json:"dur"`
	Pid  int        `json:"pid"`
	Tid  int        `json:"tid"`
	Args chromeArgs `json:"args"`
}

type chromeArgs struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Bytes  int64  `json:"bytes,omitempty"`
}

type chromeMeta struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

type chromeTrace struct {
	TraceEvents     []any  `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// WriteChromeTrace writes records as Chrome trace-event JSON loadable in
// Perfetto. Spans recorded by concurrent workers interleave in time, and the
// trace-event format requires events on one tid to nest strictly; spans are
// therefore assigned to synthetic lanes greedily (first lane whose innermost
// open span still contains the candidate), which keeps the main execution
// flow in lane 0 and pushes overlapping worker spans to higher lanes.
// Records should already be Resolved if parent links matter to the consumer;
// the original parent/ID links are preserved in each event's args.
func WriteChromeTrace(w io.Writer, recs []Record) error {
	sorted := make([]Record, len(recs))
	copy(sorted, recs)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		if sorted[i].Dur != sorted[j].Dur {
			return sorted[i].Dur > sorted[j].Dur
		}
		return sorted[i].ID < sorted[j].ID
	})
	// lanes[i] is the stack of open end-times in lane i.
	var lanes [][]int64
	tidOf := make([]int, len(sorted))
	for i, r := range sorted {
		placed := -1
		for li := range lanes {
			open := lanes[li]
			for len(open) > 0 && open[len(open)-1] <= r.Start {
				open = open[:len(open)-1]
			}
			if len(open) == 0 || open[len(open)-1] >= r.End() {
				lanes[li] = append(open, r.End())
				placed = li
				break
			}
			lanes[li] = open
		}
		if placed < 0 {
			lanes = append(lanes, []int64{r.End()})
			placed = len(lanes) - 1
		}
		tidOf[i] = placed
	}
	events := make([]any, 0, len(sorted)+len(lanes)+1)
	events = append(events, chromeMeta{Name: "process_name", Ph: "M", Pid: 1, Tid: 0,
		Args: map[string]string{"name": "systemds-go"}})
	for li := range lanes {
		name := "main"
		if li > 0 {
			name = "worker lane " + strconv.Itoa(li)
		}
		events = append(events, chromeMeta{Name: "thread_name", Ph: "M", Pid: 1, Tid: li,
			Args: map[string]string{"name": name}})
	}
	for i, r := range sorted {
		events = append(events, chromeEvent{
			Name: r.Name, Cat: r.Cat, Ph: "X",
			Ts: float64(r.Start) / 1e3, Dur: float64(r.Dur) / 1e3,
			Pid: 1, Tid: tidOf[i],
			Args: chromeArgs{ID: r.ID, Parent: r.Parent, Bytes: r.Bytes},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}
