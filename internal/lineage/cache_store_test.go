package lineage

import (
	"sync"
	"testing"
)

// TestCacheCostBenefitEviction pins the eviction policy: under budget
// pressure the victim is the entry with the lowest compute-time-saved per
// byte, not the least recently used one. A cheap entry touched to the MRU
// position must still be evicted before an expensive LRU entry.
func TestCacheCostBenefitEviction(t *testing.T) {
	c := NewCache(200) // fits two 100-byte entries
	cheap := NewInstruction("op", "cheap", NewLiteral("a"))
	expensive := NewInstruction("op", "expensive", NewLiteral("b"))
	c.Put(cheap, 1, 100, 1_000)             // 10 ns/byte
	c.Put(expensive, 2, 100, 1_000_000_000) // 1e7 ns/byte
	// touch cheap so it is MRU and expensive is LRU; pure LRU would now
	// evict expensive
	if _, ok := c.Get(cheap); !ok {
		t.Fatal("cheap entry missing before eviction")
	}
	c.Put(NewInstruction("op", "new", NewLiteral("c")), 3, 100, 500_000)
	if _, ok := c.Get(expensive); !ok {
		t.Error("expensive entry evicted despite higher benefit score")
	}
	if _, ok := c.Get(cheap); ok {
		t.Error("cheap entry survived despite lowest benefit score")
	}
}

// TestCacheEvictionTiesDegradeToLRU checks the tie-break: with equal scores
// (all zero computeNs) the least recently used entry is the victim, matching
// the old pure-LRU behavior.
func TestCacheEvictionTiesDegradeToLRU(t *testing.T) {
	c := NewCache(200)
	x := NewInstruction("op", "x", NewLiteral("x"))
	y := NewInstruction("op", "y", NewLiteral("y"))
	c.Put(x, 1, 100, 0)
	c.Put(y, 2, 100, 0)
	if _, ok := c.Get(x); !ok { // x becomes MRU
		t.Fatal("x missing")
	}
	c.Put(NewInstruction("op", "z", NewLiteral("z")), 3, 100, 0)
	if _, ok := c.Get(x); !ok {
		t.Error("MRU entry evicted on a score tie")
	}
	if _, ok := c.Get(y); ok {
		t.Error("LRU entry survived a score tie")
	}
}

// memStore is an in-memory BackingStore double.
type memStore struct {
	mu      sync.Mutex
	entries map[uint64]memEntry
	lookups int
}

type memEntry struct {
	key       string
	value     any
	sizeBytes int64
	computeNs int64
}

func newMemStore() *memStore { return &memStore{entries: map[uint64]memEntry{}} }

func (m *memStore) Lookup(hash uint64, key string) (any, int64, int64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lookups++
	e, ok := m.entries[hash]
	if !ok || e.key != key {
		return nil, 0, 0, false
	}
	return e.value, e.sizeBytes, e.computeNs, true
}

func (m *memStore) Persist(hash uint64, key string, value any, sizeBytes, computeNs int64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries[hash] = memEntry{key: key, value: value, sizeBytes: sizeBytes, computeNs: computeNs}
	return true
}

// TestCacheStoreFallthrough checks the cross-run path at the cache level: a
// memory miss probes the backing store, a store hit re-populates the memory
// cache (so the second Get does not touch the store again), and inserts are
// written through.
func TestCacheStoreFallthrough(t *testing.T) {
	store := newMemStore()
	warm := NewInstruction("tsmm", "", NewCreation("input", "X#abc"))
	store.Persist(warm.Hash(), warm.String(), "persisted", 100, 777)

	c := NewCache(1 << 20)
	c.SetStore(store)
	v, ok := c.Get(warm)
	if !ok || v != "persisted" {
		t.Fatalf("store fallthrough Get = (%v, %v)", v, ok)
	}
	stats := c.Stats()
	if stats.StoreHits != 1 || stats.Hits != 1 {
		t.Errorf("stats after store hit = %+v", stats)
	}
	lookupsAfterFirst := store.lookups
	if _, ok := c.Get(warm); !ok {
		t.Fatal("second Get must hit memory")
	}
	if store.lookups != lookupsAfterFirst {
		t.Error("second Get went to the store instead of memory")
	}

	// write-through: a fresh Put lands in the store
	item := NewInstruction("ba+*", "", NewCreation("input", "Y#def"))
	c.Put(item, "computed", 50, 123)
	if _, _, _, ok := store.Lookup(item.Hash(), item.String()); !ok {
		t.Error("Put was not written through to the store")
	}
	if c.Stats().StorePuts != 1 {
		t.Errorf("StorePuts = %d, want 1", c.Stats().StorePuts)
	}
}

// TestCacheStoreMissCountsMiss checks that a miss in both memory and store is
// one miss, and that a disabled cache never probes the store.
func TestCacheStoreMissCountsMiss(t *testing.T) {
	store := newMemStore()
	c := NewCache(1 << 20)
	c.SetStore(store)
	if _, ok := c.Get(NewInstruction("op", "q", NewLiteral("q"))); ok {
		t.Fatal("unexpected hit")
	}
	if s := c.Stats(); s.Misses != 1 || s.StoreHits != 0 {
		t.Errorf("stats = %+v", s)
	}
	off := NewCache(0)
	off.SetStore(store)
	before := store.lookups
	if _, ok := off.Get(NewLiteral("x")); ok {
		t.Fatal("disabled cache must miss")
	}
	if store.lookups != before {
		t.Error("disabled cache probed the store")
	}
}
