package lineage

import (
	"container/list"
	"fmt"
	"os"
	"sync"
)

// CacheEntry is one cached intermediate: the value (a runtime data object,
// stored as any to keep the package dependency-free), its size in bytes and
// the compute time that was saved.
type CacheEntry struct {
	Item      *Item
	Value     any
	SizeBytes int64
	ComputeNs int64
}

// CacheStats reports reuse-cache effectiveness. StoreHits and StorePuts
// count traffic with the attached persistent backing store: a StoreHit is a
// full or partial reuse served from a previous run's spill files.
type CacheStats struct {
	Hits        int64
	Misses      int64
	Puts        int64
	Evictions   int64
	PartialHits int64
	BytesCached int64
	StoreHits   int64
	StorePuts   int64
}

// BackingStore persists cache entries across runs and processes. The cache
// probes it on a memory miss and writes qualifying entries through to it;
// implementations live above this package (the runtime provides the value
// codec, the buffer pool the spill files) so the lineage package stays
// dependency-free. key is the rendered lineage DAG, used to verify the hash.
type BackingStore interface {
	// Lookup returns the persisted value stored under the lineage hash, or
	// ok=false (a corrupt or missing entry is a miss, never an error).
	Lookup(hash uint64, key string) (value any, sizeBytes, computeNs int64, ok bool)
	// Persist stores a value under the lineage hash, returning whether the
	// value was persistable (encodable and within the store budget).
	Persist(hash uint64, key string, value any, sizeBytes, computeNs int64) bool
}

// Cache is the lineage-based reuse cache: intermediates are identified by the
// hash of their lineage DAG and evicted under a byte budget by a cost-benefit
// score — compute time saved per byte retained — with LRU order breaking ties
// (Section 3.1: reuse of intermediates inspired by recycling in MonetDB).
// With an attached BackingStore the cache spans runs: misses fall through to
// the store and inserts are written through to it.
type Cache struct {
	mu       sync.Mutex
	budget   int64
	used     int64
	entries  map[uint64]*list.Element
	lru      *list.List // of *CacheEntry, front = most recently used
	stats    CacheStats
	disabled bool
	store    BackingStore
}

// NewCache creates a reuse cache with the given byte budget. A budget of 0
// disables caching.
func NewCache(budgetBytes int64) *Cache {
	return &Cache{
		budget:   budgetBytes,
		entries:  map[uint64]*list.Element{},
		lru:      list.New(),
		disabled: budgetBytes <= 0,
	}
}

// Enabled reports whether the cache accepts entries.
func (c *Cache) Enabled() bool { return c != nil && !c.disabled }

// SetStore attaches a persistent backing store: subsequent misses probe it
// and subsequent inserts write through to it.
func (c *Cache) SetStore(s BackingStore) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.store = s
	c.mu.Unlock()
}

// Get probes the cache for an intermediate with the given lineage. It
// verifies full structural equality to guard against hash collisions. On a
// memory miss it falls through to the attached backing store, reloading the
// persisted value of a previous run lazily.
func (c *Cache) Get(item *Item) (any, bool) {
	if !c.Enabled() {
		return nil, false
	}
	c.mu.Lock()
	if el, ok := c.entries[item.Hash()]; ok {
		entry := el.Value.(*CacheEntry)
		if entry.Item.Equals(item) {
			c.lru.MoveToFront(el)
			c.stats.Hits++
			c.mu.Unlock()
			if os.Getenv("SYSDS_DEBUG_CACHE") != "" {
				fmt.Printf("CACHE HIT: %s\n", item.String())
			}
			return entry.Value, true
		}
	}
	store := c.store
	c.mu.Unlock()
	// disk probe outside the lock: concurrent operators of the inter-op
	// scheduler must not serialize on file reads
	if store != nil {
		if v, sizeBytes, computeNs, ok := store.Lookup(item.Hash(), item.String()); ok {
			c.insert(item, v, sizeBytes, computeNs, false)
			c.mu.Lock()
			c.stats.Hits++
			c.stats.StoreHits++
			c.mu.Unlock()
			if os.Getenv("SYSDS_DEBUG_CACHE") != "" {
				fmt.Printf("CACHE STORE HIT: %s\n", item.String())
			}
			return v, true
		}
	}
	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
	return nil, false
}

// Put inserts an intermediate, evicting the lowest-benefit entries if the
// budget would be exceeded, and writes the entry through to the backing
// store when one is attached. Values larger than the whole budget are not
// cached.
func (c *Cache) Put(item *Item, value any, sizeBytes, computeNs int64) {
	c.insert(item, value, sizeBytes, computeNs, true)
}

// insert is the shared insertion path of Put and store reloads; persist
// selects write-through (store reloads skip it — their file already exists).
func (c *Cache) insert(item *Item, value any, sizeBytes, computeNs int64, persist bool) {
	if !c.Enabled() || sizeBytes > c.budget {
		return
	}
	c.mu.Lock()
	if el, exists := c.entries[item.Hash()]; exists {
		entry := el.Value.(*CacheEntry)
		if entry.Item.Equals(item) {
			// same intermediate: refresh its LRU position
			c.lru.MoveToFront(el)
			c.mu.Unlock()
			return
		}
		// hash collision: replace the old entry, otherwise the colliding item
		// could never be cached (every Get would fail the Equals check)
		c.lru.Remove(el)
		delete(c.entries, entry.Item.Hash())
		c.used -= entry.SizeBytes
		c.stats.Evictions++
	}
	for c.used+sizeBytes > c.budget && c.lru.Len() > 0 {
		c.evictMinBenefitLocked()
	}
	entry := &CacheEntry{Item: item, Value: value, SizeBytes: sizeBytes, ComputeNs: computeNs}
	el := c.lru.PushFront(entry)
	c.entries[item.Hash()] = el
	c.used += sizeBytes
	c.stats.Puts++
	c.stats.BytesCached = c.used
	store := c.store
	c.mu.Unlock()
	// write-through outside the lock, for the same reason Get probes
	// outside it
	if persist && store != nil {
		if store.Persist(item.Hash(), item.String(), value, sizeBytes, computeNs) {
			c.mu.Lock()
			c.stats.StorePuts++
			c.mu.Unlock()
		}
	}
}

// evictMinBenefitLocked implements cost-benefit eviction: the victim is the
// entry with the lowest score of compute nanoseconds saved per byte retained,
// so an expensive small intermediate outlives a cheap large one regardless of
// recency. Walking the LRU list back-to-front with a strict less-than keeps
// the least recently used among equally-scored entries as the victim, which
// degrades to plain LRU when scores tie (e.g. all zero).
func (c *Cache) evictMinBenefitLocked() {
	var victim *list.Element
	var victimScore float64
	for el := c.lru.Back(); el != nil; el = el.Prev() {
		entry := el.Value.(*CacheEntry)
		size := entry.SizeBytes
		if size < 1 {
			size = 1
		}
		score := float64(entry.ComputeNs) / float64(size)
		if victim == nil || score < victimScore {
			victim, victimScore = el, score
		}
	}
	if victim == nil {
		return
	}
	entry := victim.Value.(*CacheEntry)
	c.lru.Remove(victim)
	delete(c.entries, entry.Item.Hash())
	c.used -= entry.SizeBytes
	c.stats.Evictions++
}

// RecordPartialHit increments the partial-reuse counter (compensation plans
// assembled from cached sub-results).
func (c *Cache) RecordPartialHit() {
	if !c.Enabled() {
		return
	}
	c.mu.Lock()
	c.stats.PartialHits++
	c.mu.Unlock()
}

// Stats returns a snapshot of the cache statistics.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.BytesCached = c.used
	return s
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Clear drops all cached entries.
func (c *Cache) Clear() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[uint64]*list.Element{}
	c.lru.Init()
	c.used = 0
}
