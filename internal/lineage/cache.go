package lineage

import (
	"container/list"
	"fmt"
	"os"
	"sync"
)

// CacheEntry is one cached intermediate: the value (a runtime data object,
// stored as any to keep the package dependency-free), its size in bytes and
// the compute time that was saved.
type CacheEntry struct {
	Item      *Item
	Value     any
	SizeBytes int64
	ComputeNs int64
}

// CacheStats reports reuse-cache effectiveness.
type CacheStats struct {
	Hits        int64
	Misses      int64
	Puts        int64
	Evictions   int64
	PartialHits int64
	BytesCached int64
}

// Cache is the lineage-based reuse cache: intermediates are identified by the
// hash of their lineage DAG and evicted in LRU order under a byte budget
// (Section 3.1: reuse of intermediates inspired by recycling in MonetDB).
type Cache struct {
	mu       sync.Mutex
	budget   int64
	used     int64
	entries  map[uint64]*list.Element
	lru      *list.List // of *CacheEntry, front = most recently used
	stats    CacheStats
	disabled bool
}

// NewCache creates a reuse cache with the given byte budget. A budget of 0
// disables caching.
func NewCache(budgetBytes int64) *Cache {
	return &Cache{
		budget:   budgetBytes,
		entries:  map[uint64]*list.Element{},
		lru:      list.New(),
		disabled: budgetBytes <= 0,
	}
}

// Enabled reports whether the cache accepts entries.
func (c *Cache) Enabled() bool { return c != nil && !c.disabled }

// Get probes the cache for an intermediate with the given lineage. It
// verifies full structural equality to guard against hash collisions.
func (c *Cache) Get(item *Item) (any, bool) {
	if !c.Enabled() {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[item.Hash()]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	entry := el.Value.(*CacheEntry)
	if !entry.Item.Equals(item) {
		c.stats.Misses++
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.stats.Hits++
	if os.Getenv("SYSDS_DEBUG_CACHE") != "" {
		fmt.Printf("CACHE HIT: %s\n", item.String())
	}
	return entry.Value, true
}

// Put inserts an intermediate, evicting least-recently-used entries if the
// budget would be exceeded. Values larger than the whole budget are not
// cached.
func (c *Cache) Put(item *Item, value any, sizeBytes, computeNs int64) {
	if !c.Enabled() || sizeBytes > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, exists := c.entries[item.Hash()]; exists {
		entry := el.Value.(*CacheEntry)
		if entry.Item.Equals(item) {
			// same intermediate: refresh its LRU position
			c.lru.MoveToFront(el)
			return
		}
		// hash collision: replace the old entry, otherwise the colliding item
		// could never be cached (every Get would fail the Equals check)
		c.lru.Remove(el)
		delete(c.entries, entry.Item.Hash())
		c.used -= entry.SizeBytes
		c.stats.Evictions++
	}
	for c.used+sizeBytes > c.budget && c.lru.Len() > 0 {
		c.evictLRULocked()
	}
	entry := &CacheEntry{Item: item, Value: value, SizeBytes: sizeBytes, ComputeNs: computeNs}
	el := c.lru.PushFront(entry)
	c.entries[item.Hash()] = el
	c.used += sizeBytes
	c.stats.Puts++
	c.stats.BytesCached = c.used
}

func (c *Cache) evictLRULocked() {
	el := c.lru.Back()
	if el == nil {
		return
	}
	entry := el.Value.(*CacheEntry)
	c.lru.Remove(el)
	delete(c.entries, entry.Item.Hash())
	c.used -= entry.SizeBytes
	c.stats.Evictions++
}

// RecordPartialHit increments the partial-reuse counter (compensation plans
// assembled from cached sub-results).
func (c *Cache) RecordPartialHit() {
	if !c.Enabled() {
		return
	}
	c.mu.Lock()
	c.stats.PartialHits++
	c.mu.Unlock()
}

// Stats returns a snapshot of the cache statistics.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.BytesCached = c.used
	return s
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Clear drops all cached entries.
func (c *Cache) Clear() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[uint64]*list.Element{}
	c.lru.Init()
	c.used = 0
}
