package lineage

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestItemHashDeterminismAndEquality(t *testing.T) {
	x := NewCreation("tread", "X")
	y := NewCreation("tread", "y")
	a1 := NewInstruction("tsmm", "", x)
	a2 := NewInstruction("tsmm", "", NewCreation("tread", "X"))
	if a1.Hash() != a2.Hash() {
		t.Error("structurally identical items must hash equally")
	}
	if !a1.Equals(a2) {
		t.Error("structurally identical items must be equal")
	}
	b := NewInstruction("tsmm", "", y)
	if a1.Equals(b) {
		t.Error("items over different inputs must differ")
	}
	c := NewInstruction("ba+*", "", x, y)
	d := NewInstruction("ba+*", "", y, x)
	if c.Equals(d) {
		t.Error("operand order must matter")
	}
	lit1 := NewLiteral("0.1")
	lit2 := NewLiteral("0.2")
	e1 := NewInstruction("+", "", a1, lit1)
	e2 := NewInstruction("+", "", a1, lit2)
	if e1.Equals(e2) || e1.Hash() == e2.Hash() {
		t.Error("different literals must produce different lineage")
	}
}

func TestItemStringRendering(t *testing.T) {
	x := NewCreation("tread", "X")
	item := NewInstruction("tsmm", "", NewInstruction("cbind", "", x, NewCreation("tread", "z")))
	s := item.String()
	if !strings.Contains(s, "tsmm(") || !strings.Contains(s, "cbind(") || !strings.Contains(s, "X") {
		t.Errorf("rendering = %q", s)
	}
}

func TestItemSize(t *testing.T) {
	x := NewCreation("tread", "X")
	shared := NewInstruction("t", "", x)
	top := NewInstruction("ba+*", "", shared, shared)
	if top.Size() != 3 {
		t.Errorf("Size = %d, want 3 (shared node counted once)", top.Size())
	}
}

func TestTracer(t *testing.T) {
	tr := NewTracer()
	if tr.Has("X") {
		t.Error("fresh tracer should not have X")
	}
	leaf := tr.Get("X") // lazily created creation item
	if !tr.Has("X") || leaf.Opcode != "tread" {
		t.Errorf("lazy leaf = %+v", leaf)
	}
	it := NewInstruction("tsmm", "", leaf)
	tr.Set("G", it)
	if tr.Get("G") != it {
		t.Error("Set/Get mismatch")
	}
	cp := tr.Copy()
	cp.Set("G", leaf)
	if tr.Get("G") != it {
		t.Error("copy is not independent")
	}
	vars := tr.Variables()
	if len(vars) != 2 || vars[0] != "G" || vars[1] != "X" {
		t.Errorf("variables = %v", vars)
	}
}

func TestTracerDedupPaths(t *testing.T) {
	tr := NewTracer()
	trace := NewInstruction("body", "", NewLiteral("1"))
	tr.RegisterDedupPath("loop1:path0", trace)
	got, ok := tr.DedupPath("loop1:path0")
	if !ok || got != trace {
		t.Error("dedup path not registered")
	}
	// duplicate registration keeps the first trace
	other := NewInstruction("body", "", NewLiteral("2"))
	tr.RegisterDedupPath("loop1:path0", other)
	got, _ = tr.DedupPath("loop1:path0")
	if got != trace {
		t.Error("duplicate registration overwrote the original trace")
	}
	if _, ok := tr.DedupPath("unknown"); ok {
		t.Error("unknown path should not resolve")
	}
	d := NewDedup("loop1:path0", NewLiteral("3"))
	if d.Kind != KindDedup || d.Opcode != "dedup" {
		t.Error("dedup item malformed")
	}
}

func TestCachePutGet(t *testing.T) {
	c := NewCache(1 << 20)
	x := NewCreation("tread", "X")
	item := NewInstruction("tsmm", "", x)
	if _, ok := c.Get(item); ok {
		t.Error("empty cache should miss")
	}
	c.Put(item, "value1", 100, 1000)
	v, ok := c.Get(NewInstruction("tsmm", "", NewCreation("tread", "X")))
	if !ok || v != "value1" {
		t.Errorf("Get = %v, %v", v, ok)
	}
	stats := c.Stats()
	if stats.Hits != 1 || stats.Misses != 1 || stats.Puts != 1 {
		t.Errorf("stats = %+v", stats)
	}
	// duplicate put is a no-op
	c.Put(item, "value2", 100, 1000)
	v, _ = c.Get(item)
	if v != "value1" {
		t.Error("duplicate Put overwrote entry")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
	c.Clear()
	if c.Len() != 0 {
		t.Error("Clear did not empty cache")
	}
}

func TestCacheEviction(t *testing.T) {
	c := NewCache(250)
	items := make([]*Item, 5)
	for i := range items {
		items[i] = NewInstruction("op", string(rune('a'+i)), NewLiteral(string(rune('a'+i))))
		c.Put(items[i], i, 100, 0)
	}
	if c.Len() > 2 {
		t.Errorf("cache exceeded budget: %d entries", c.Len())
	}
	if c.Stats().Evictions == 0 {
		t.Error("expected evictions")
	}
	// most recently inserted survives
	if _, ok := c.Get(items[4]); !ok {
		t.Error("most recent entry evicted")
	}
	// oversized values are rejected outright
	big := NewInstruction("op", "big", NewLiteral("big"))
	c.Put(big, "x", 10_000, 0)
	if _, ok := c.Get(big); ok {
		t.Error("oversized value should not be cached")
	}
}

// forceHash pins an item's memoized hash, simulating hash collisions between
// structurally different lineage DAGs.
func forceHash(it *Item, h uint64) *Item {
	it.hashOnce.Do(func() { it.hash = h })
	return it
}

func TestCachePutCollisionReplaces(t *testing.T) {
	c := NewCache(1 << 20)
	a := forceHash(NewInstruction("op", "a", NewLiteral("a")), 42)
	b := forceHash(NewInstruction("op", "b", NewLiteral("b")), 42)
	c.Put(a, "va", 100, 0)
	// colliding item must not be locked out forever: the new entry replaces
	// the old one
	c.Put(b, "vb", 100, 0)
	if v, ok := c.Get(b); !ok || v != "vb" {
		t.Errorf("colliding item not cached after Put: %v, %v", v, ok)
	}
	if _, ok := c.Get(a); ok {
		t.Error("replaced entry still returned")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
	if used := c.Stats().BytesCached; used != 100 {
		t.Errorf("BytesCached = %d, want 100", used)
	}
}

func TestCachePutRefreshesLRUPosition(t *testing.T) {
	c := NewCache(200) // fits two 100-byte entries
	x := NewInstruction("op", "x", NewLiteral("x"))
	y := NewInstruction("op", "y", NewLiteral("y"))
	z := NewInstruction("op", "z", NewLiteral("z"))
	c.Put(x, 1, 100, 0)
	c.Put(y, 2, 100, 0)
	// re-putting x must move it to the front so y is the eviction victim
	c.Put(x, 1, 100, 0)
	c.Put(z, 3, 100, 0)
	if _, ok := c.Get(x); !ok {
		t.Error("refreshed entry was evicted")
	}
	if _, ok := c.Get(y); ok {
		t.Error("least recently used entry survived eviction")
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0)
	if c.Enabled() {
		t.Error("zero-budget cache should be disabled")
	}
	c.Put(NewLiteral("x"), 1, 10, 0)
	if _, ok := c.Get(NewLiteral("x")); ok {
		t.Error("disabled cache should never hit")
	}
	var nilCache *Cache
	if nilCache.Enabled() {
		t.Error("nil cache should be disabled")
	}
	_ = nilCache.Stats()
	_ = nilCache.Len()
	nilCache.Clear()
	nilCache.RecordPartialHit()
}

func TestCachePartialHitCounter(t *testing.T) {
	c := NewCache(1 << 10)
	c.RecordPartialHit()
	c.RecordPartialHit()
	if c.Stats().PartialHits != 2 {
		t.Errorf("partial hits = %d", c.Stats().PartialHits)
	}
}

func TestPropertyHashStability(t *testing.T) {
	f := func(op, data string, nInputs uint8) bool {
		inputs := make([]*Item, int(nInputs%4))
		for i := range inputs {
			inputs[i] = NewLiteral(string(rune('a' + i)))
		}
		a := NewInstruction(op, data, inputs...)
		b := NewInstruction(op, data, inputs...)
		return a.Hash() == b.Hash() && a.Equals(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
