// Package lineage implements fine-grained lineage tracing and the
// lineage-based reuse cache of SystemDS (Section 3.1 of the paper). Every
// executed logical operation is recorded as a lineage item referencing the
// lineage of its inputs; the resulting DAGs identify intermediates, enable
// reproducibility, and serve as cache keys for full and partial reuse of
// redundantly computed intermediates.
package lineage

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// ItemKind distinguishes leaves (literals, input reads) from operation nodes
// and deduplicated sub-DAG references.
type ItemKind int

// Lineage item kinds.
const (
	KindLiteral ItemKind = iota
	KindCreation
	KindInstruction
	KindDedup
)

var itemIDCounter int64

// Item is a node of a lineage DAG. Items are immutable after creation and
// cache their hash.
type Item struct {
	ID     int64
	Kind   ItemKind
	Opcode string
	Data   string // literal value, variable/file name, or extra operands (e.g. seeds)
	Inputs []*Item

	hashOnce sync.Once
	hash     uint64
}

// NewLiteral creates a literal leaf item (constants, generated seeds).
func NewLiteral(data string) *Item {
	return &Item{ID: atomic.AddInt64(&itemIDCounter, 1), Kind: KindLiteral, Opcode: "lit", Data: data}
}

// NewCreation creates a leaf item for an external input (file read, named
// script input).
func NewCreation(op, data string) *Item {
	return &Item{ID: atomic.AddInt64(&itemIDCounter, 1), Kind: KindCreation, Opcode: op, Data: data}
}

// NewInstruction creates an operation item with the given inputs.
func NewInstruction(opcode, data string, inputs ...*Item) *Item {
	return &Item{ID: atomic.AddInt64(&itemIDCounter, 1), Kind: KindInstruction, Opcode: opcode, Data: data, Inputs: inputs}
}

// NewDedup creates a deduplication item that references a previously traced
// loop-body sub-DAG by name and path id, so loops with few distinct control
// flow paths store the per-path trace only once.
func NewDedup(pathName string, inputs ...*Item) *Item {
	return &Item{ID: atomic.AddInt64(&itemIDCounter, 1), Kind: KindDedup, Opcode: "dedup", Data: pathName, Inputs: inputs}
}

// Hash returns a structural hash over the item's opcode, data and transitive
// inputs. Identical computations produce identical hashes, which makes the
// hash usable as reuse-cache key.
func (it *Item) Hash() uint64 {
	it.hashOnce.Do(func() {
		h := fnv.New64a()
		var write func(i *Item)
		write = func(i *Item) {
			fmt.Fprintf(h, "(%d|%s|%s", i.Kind, i.Opcode, i.Data)
			for _, in := range i.Inputs {
				write(in)
			}
			fmt.Fprint(h, ")")
		}
		write(it)
		it.hash = h.Sum64()
	})
	return it.hash
}

// Equals reports whether two lineage DAGs are structurally identical.
func (it *Item) Equals(o *Item) bool {
	if it == o {
		return true
	}
	if it == nil || o == nil {
		return false
	}
	if it.Kind != o.Kind || it.Opcode != o.Opcode || it.Data != o.Data || len(it.Inputs) != len(o.Inputs) {
		return false
	}
	for i := range it.Inputs {
		if !it.Inputs[i].Equals(o.Inputs[i]) {
			return false
		}
	}
	return true
}

// String renders the lineage DAG in a compact nested form, e.g.
// "tsmm(cbind(tread(X),tread(Z)))".
func (it *Item) String() string {
	var sb strings.Builder
	it.render(&sb)
	return sb.String()
}

func (it *Item) render(sb *strings.Builder) {
	sb.WriteString(it.Opcode)
	if it.Data != "" {
		sb.WriteString("·")
		sb.WriteString(it.Data)
	}
	if len(it.Inputs) > 0 {
		sb.WriteString("(")
		for i, in := range it.Inputs {
			if i > 0 {
				sb.WriteString(",")
			}
			in.render(sb)
		}
		sb.WriteString(")")
	}
}

// Size returns the number of nodes in the lineage DAG (distinct nodes counted
// once).
func (it *Item) Size() int {
	seen := map[*Item]bool{}
	var count func(i *Item)
	count = func(i *Item) {
		if seen[i] {
			return
		}
		seen[i] = true
		for _, in := range i.Inputs {
			count(in)
		}
	}
	count(it)
	return len(seen)
}

// Tracer maintains the lineage items of the live variables of one execution
// context. Tracers are cheap to create; parfor workers and function calls get
// their own tracer seeded with the items of their inputs.
type Tracer struct {
	mu    sync.Mutex
	items map[string]*Item
	// dedup path traces per loop body (keyed by block id and path signature)
	dedupPaths map[string]*Item
}

// NewTracer creates an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{items: map[string]*Item{}, dedupPaths: map[string]*Item{}}
}

// Get returns the lineage item of a variable, creating a leaf item lazily for
// variables whose creation was not traced (e.g. external inputs bound via the
// API).
func (t *Tracer) Get(name string) *Item {
	t.mu.Lock()
	defer t.mu.Unlock()
	if it, ok := t.items[name]; ok {
		return it
	}
	it := NewCreation("tread", name)
	t.items[name] = it
	return it
}

// Set assigns the lineage item of a variable.
func (t *Tracer) Set(name string, it *Item) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.items[name] = it
}

// Has reports whether a variable has a traced lineage item.
func (t *Tracer) Has(name string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.items[name]
	return ok
}

// Copy returns a tracer with a copied variable map (items are shared, they
// are immutable).
func (t *Tracer) Copy() *Tracer {
	t.mu.Lock()
	defer t.mu.Unlock()
	cp := NewTracer()
	for k, v := range t.items {
		cp.items[k] = v
	}
	return cp
}

// Variables returns the sorted names of traced variables.
func (t *Tracer) Variables() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, 0, len(t.items))
	for k := range t.items {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// RegisterDedupPath stores the lineage trace of one loop-body control-flow
// path so subsequent iterations taking the same path reference it with a
// single dedup node instead of re-tracing every operation.
func (t *Tracer) RegisterDedupPath(key string, trace *Item) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.dedupPaths[key]; !ok {
		t.dedupPaths[key] = trace
	}
}

// DedupPath returns the registered trace for a loop-body path, if any.
func (t *Tracer) DedupPath(key string) (*Item, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	it, ok := t.dedupPaths[key]
	return it, ok
}
