// HOP-level operator fusion (the fusion subsystem of DESIGN.md): a pattern
// matcher that runs after the static rewrites/CSE and before execution-type
// selection, replacing matched subgraphs with fused HOP kinds that lower to
// single-pass multi-threaded kernels. Two pattern families are recognized:
//
//   - mmchain: t(X) %*% (X %*% v) and t(X) %*% (w * (X %*% v)) — the
//     linear-regression / logistic-regression inner loop — become KindMMChain,
//     avoiding the materialized transpose and the m x 1 intermediate.
//   - cellwise-aggregate pipelines: sum/min/max/colSums/rowSums over a tree
//     of cellwise binary/unary/scalar operations with single-consumer
//     intermediates (e.g. sum(X*Y), sum((X-P)^2)) become KindFusedAgg with a
//     matrix.CellProgram evaluated per cell directly into the aggregate.
//
// Legality: fusion never fires across multi-consumer intermediates (a shared
// intermediate is materialized anyway, so fusing would trade reuse for
// recomputation), only across operators with known, matching shapes, and —
// when the distributed backend is enabled — only when the root operator fits
// the per-operator memory budget (larger operators belong to the blocked
// backend, which has no fused kernels yet).
package hops

import (
	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/types"
)

// FusedAggPlan describes a fused cellwise-aggregate pipeline: the aggregate
// name and the cell program over the Hop's inputs (the pipeline's leaves, in
// first-use order).
type FusedAggPlan struct {
	Agg  string // "sum", "min", "max", "colSums", "rowSums"
	Kind matrix.AggKind
	Prog *matrix.CellProgram
}

// fusableAggs maps aggregation HOP ops to fused aggregate kinds.
var fusableAggs = map[string]matrix.AggKind{
	"sum": matrix.AggSum, "min": matrix.AggMin, "max": matrix.AggMax,
	"colSums": matrix.AggColSums, "rowSums": matrix.AggRowSums,
}

// FuseOperators runs the fusion pattern matcher over a rewritten,
// size-annotated DAG. The params gate fusion for operators that the physical
// planner would send to the distributed backend; the gate is the planner's
// own WouldRunDist predicate (cost.go) over the same params Plan receives,
// so fusion and execution-type selection can never disagree about where an
// operator runs.
func FuseOperators(d *DAG, p PlannerParams) {
	fuseMMChains(d, p)
	fuseAggPipelines(d, p)
}

// consumerCounts returns, per HOP id, the number of consuming edges in the
// DAG (a hop referenced twice by one consumer counts twice).
func consumerCounts(d *DAG) map[int64]int {
	counts := map[int64]int{}
	for _, h := range d.Nodes() {
		for _, in := range h.Inputs {
			counts[in.ID]++
		}
		for _, p := range h.Params {
			counts[p.ID]++
		}
	}
	return counts
}

// --- mmchain ----------------------------------------------------------------

// fuseMMChains rewrites t(X) %*% (X %*% v) and t(X) %*% (w * (X %*% v)) into
// KindMMChain hops with inputs [X, v] or [X, v, w].
func fuseMMChains(d *DAG, p PlannerParams) {
	consumers := consumerCounts(d)
	for _, h := range d.Nodes() {
		if h.Kind != KindMatMult || len(h.Inputs) != 2 {
			continue
		}
		t, rhs := h.Inputs[0], h.Inputs[1]
		// left operand: a transpose of X. Unlike the compute-bearing
		// intermediates below, t(X) may have other consumers: the fused
		// kernel reads X directly, so nothing is recomputed — a shared
		// transpose simply stays materialized for its other consumers.
		if t.Kind != KindReorg || t.Op != "t" || len(t.Inputs) != 1 {
			continue
		}
		x := t.Inputs[0]
		if !x.IsMatrix() || consumers[rhs.ID] != 1 {
			continue
		}
		var v, w *Hop
		switch {
		case rhs.Kind == KindMatMult && len(rhs.Inputs) == 2 && rhs.Inputs[0] == x:
			// t(X) %*% (X %*% v)
			v = rhs.Inputs[1]
		case rhs.Kind == KindBinary && rhs.Op == "*" && len(rhs.Inputs) == 2:
			// t(X) %*% (w * (X %*% v)), either operand order of the product
			for i := 0; i < 2; i++ {
				mm, cand := rhs.Inputs[i], rhs.Inputs[1-i]
				if mm.Kind == KindMatMult && len(mm.Inputs) == 2 && mm.Inputs[0] == x &&
					consumers[mm.ID] == 1 && isColVector(cand, x.DC.Rows) {
					v = mm.Inputs[1]
					w = cand
					break
				}
			}
		}
		if v == nil || !isColVector(v, x.DC.Cols) {
			continue
		}
		if WouldRunDist(h, p) {
			continue
		}
		h.Kind = KindMMChain
		h.Op = "mmchain"
		if w != nil {
			h.Inputs = []*Hop{x, v, w}
		} else {
			h.Inputs = []*Hop{x, v}
		}
		// interior nodes are now unreachable; refresh edge counts so later
		// matches see the rewritten graph
		consumers = consumerCounts(d)
	}
}

// isColVector reports whether a hop is statically known to be an n x 1
// matrix (rows must match n when n is known).
func isColVector(h *Hop, rows int64) bool {
	if !h.IsMatrix() || h.DC.Cols != 1 || h.DC.Rows < 0 {
		return false
	}
	return rows < 0 || h.DC.Rows == rows
}

// --- cellwise-aggregate pipelines -------------------------------------------

// fuseAggPipelines rewrites aggregates over single-consumer cellwise trees
// into KindFusedAgg hops carrying a cell program.
func fuseAggPipelines(d *DAG, p PlannerParams) {
	consumers := consumerCounts(d)
	for _, h := range d.Nodes() {
		aggKind, ok := fusableAggs[h.Op]
		if h.Kind != KindAggUnary || !ok || len(h.Inputs) != 1 {
			continue
		}
		root := h.Inputs[0]
		// the root must itself be a fusable cellwise operator: aggregating a
		// plain read or other materialized value is already a single pass
		if root.Kind != KindBinary && root.Kind != KindUnary {
			continue
		}
		if WouldRunDist(h, p) || WouldRunDist(root, p) {
			continue
		}
		b := &cellBuilder{consumers: consumers, dims: root.DC, argIdx: map[int64]int{}, firstMat: -1}
		if root.DC.Rows < 0 || root.DC.Cols < 0 {
			continue
		}
		if !b.build(root) || b.firstMat < 0 {
			continue
		}
		// a program that is a bare argument load means the root was not
		// eligible (multi-consumer or broadcast operands): nothing was fused,
		// keep the plain aggregate over the materialized value
		fusedOps := 0
		for _, ins := range b.instrs {
			if ins.Code != matrix.CellLoad {
				fusedOps++
			}
		}
		if fusedOps == 0 {
			continue
		}
		prog := &matrix.CellProgram{Instrs: b.instrs, NumArgs: len(b.args)}
		if prog.Validate() != nil {
			continue
		}
		prog.Annihilating = b.annihilates(root)
		h.Kind = KindFusedAgg
		h.FusedAgg = &FusedAggPlan{Agg: h.Op, Kind: aggKind, Prog: prog}
		h.Inputs = b.args
		consumers = consumerCounts(d)
	}
}

// cellBuilder linearizes a cellwise HOP tree into a stack program.
type cellBuilder struct {
	consumers map[int64]int
	dims      types.DataCharacteristics
	instrs    []matrix.CellInstr
	args      []*Hop
	argIdx    map[int64]int
	firstMat  int // index of the first matrix argument (the driver), -1 if none
	depth     int
	maxDepth  int
}

// eligible reports whether a hop may be fused as an interior node: a
// single-consumer cellwise binary/unary matrix operator of the root's shape
// whose operands are scalars or matrices of the same shape.
func (b *cellBuilder) eligible(h *Hop) bool {
	if !h.IsMatrix() || b.consumers[h.ID] != 1 {
		return false
	}
	if h.DC.Rows != b.dims.Rows || h.DC.Cols != b.dims.Cols {
		return false
	}
	switch h.Kind {
	case KindBinary:
		if len(h.Inputs) != 2 {
			return false
		}
		if _, ok := matrix.BinaryOpFromString(h.Op); !ok {
			return false
		}
		for _, in := range h.Inputs {
			if !b.operandOK(in) {
				return false
			}
		}
		return true
	case KindUnary:
		if len(h.Inputs) != 1 {
			return false
		}
		if _, ok := matrix.UnaryOpFromString(h.Op); !ok {
			return false
		}
		return b.operandOK(h.Inputs[0])
	}
	return false
}

// operandOK reports whether an operand can participate in the cell program:
// a scalar, or a matrix of the root's shape (broadcast vectors make the
// consuming operator a materialization boundary instead).
func (b *cellBuilder) operandOK(h *Hop) bool {
	if h.IsScalar() {
		return h.ValueType != types.String
	}
	return h.IsMatrix() && h.DC.Rows == b.dims.Rows && h.DC.Cols == b.dims.Cols
}

// build emits the post-order program for the subtree rooted at h; interior
// nodes recurse, everything else becomes an argument load.
func (b *cellBuilder) build(h *Hop) bool {
	if b.eligible(h) {
		switch h.Kind {
		case KindBinary:
			if !b.build(h.Inputs[0]) || !b.build(h.Inputs[1]) {
				return false
			}
			op, _ := matrix.BinaryOpFromString(h.Op)
			b.instrs = append(b.instrs, matrix.CellInstr{Code: matrix.CellBinary, Bin: op})
			b.depth--
		case KindUnary:
			if !b.build(h.Inputs[0]) {
				return false
			}
			op, _ := matrix.UnaryOpFromString(h.Op)
			b.instrs = append(b.instrs, matrix.CellInstr{Code: matrix.CellUnary, Un: op})
		}
		return len(b.instrs) <= matrix.CellMaxInstrs
	}
	// argument load (leaf)
	if !b.operandOK(h) {
		return false
	}
	idx, seen := b.argIdx[h.ID]
	if !seen {
		idx = len(b.args)
		b.argIdx[h.ID] = idx
		b.args = append(b.args, h)
		if h.IsMatrix() && b.firstMat < 0 {
			b.firstMat = idx
		}
	}
	b.instrs = append(b.instrs, matrix.CellInstr{Code: matrix.CellLoad, Arg: idx})
	b.depth++
	if b.depth > b.maxDepth {
		b.maxDepth = b.depth
	}
	return b.depth <= matrix.CellMaxStack && len(b.instrs) <= matrix.CellMaxInstrs
}

// annihilates reports the structural guarantee that the subtree evaluates to
// exactly 0 whenever the driver argument (first matrix argument) is 0,
// regardless of the other operands — the legality condition of the
// sparse-driver iteration. Division is excluded (0/0 would be NaN in the
// dense evaluation).
func (b *cellBuilder) annihilates(h *Hop) bool {
	if b.firstMat < 0 {
		return false
	}
	driver := b.args[b.firstMat]
	var ann func(h *Hop) bool
	ann = func(h *Hop) bool {
		if h == driver {
			return true
		}
		switch h.Kind {
		case KindUnary:
			if len(h.Inputs) != 1 || !ann(h.Inputs[0]) {
				return false
			}
			switch h.Op {
			case "uminus", "abs", "sqrt", "round", "floor", "ceil", "sign", "sin", "tan":
				return true
			}
			return false
		case KindBinary:
			if len(h.Inputs) != 2 {
				return false
			}
			a, c := h.Inputs[0], h.Inputs[1]
			switch h.Op {
			case "*":
				return ann(a) || ann(c)
			case "+", "-":
				return ann(a) && ann(c)
			case "min", "max":
				return ann(a) && ann(c)
			case "^":
				return ann(a) && c.IsLiteralNumber() && c.LitValue > 0
			}
			return false
		}
		return false
	}
	return ann(h)
}
