package hops

import (
	"strings"
	"testing"

	"github.com/systemds/systemds-go/internal/types"
)

// dc builds dense characteristics with unknown nnz.
func dc(rows, cols int64) types.DataCharacteristics {
	return types.NewDataCharacteristics(rows, cols, types.DefaultBlocksize, -1)
}

// matmultDAG builds A %*% B with known input characteristics.
func matmultDAG(a, b types.DataCharacteristics) (*DAG, *Hop) {
	ra := NewRead("A", types.Matrix)
	rb := NewRead("B", types.Matrix)
	mm := NewHop(KindMatMult, "ba+*", ra, rb)
	mm.DataType = types.Matrix
	d := &DAG{Roots: []*Hop{NewWrite("C", mm)}}
	PropagateSizes(d, map[string]types.DataCharacteristics{"A": a, "B": b})
	return d, mm
}

// TestExecTypeCrossoverAtBudget asserts that the CP->Dist decision flips
// exactly at the operator's memory estimate: one byte of budget above keeps
// CP, one byte below selects the blocked backend.
func TestExecTypeCrossoverAtBudget(t *testing.T) {
	d, mm := matmultDAG(dc(512, 256), dc(256, 64))
	if mm.MemEstimate <= 0 {
		t.Fatalf("matmult estimate unknown: %d", mm.MemEstimate)
	}
	Plan(d, PlannerParams{MemBudget: mm.MemEstimate, DistEnabled: true, Blocksize: 128})
	if mm.ExecType != types.ExecCP {
		t.Errorf("estimate == budget: exec = %s, want CP", mm.ExecType)
	}
	Plan(d, PlannerParams{MemBudget: mm.MemEstimate - 1, DistEnabled: true, Blocksize: 128})
	if mm.ExecType != types.ExecDist {
		t.Errorf("estimate > budget: exec = %s, want DIST", mm.ExecType)
	}
	// disabled backend never distributes
	Plan(d, PlannerParams{MemBudget: mm.MemEstimate - 1, DistEnabled: false, Blocksize: 128})
	if mm.ExecType != types.ExecCP {
		t.Errorf("dist disabled: exec = %s, want CP", mm.ExecType)
	}
}

// TestMatMultBroadcastSideSelection asserts the broadcast strategy follows
// the operand that fits the budget: a small right operand broadcasts right, a
// small left operand broadcasts left.
func TestMatMultBroadcastSideSelection(t *testing.T) {
	const bs = 128
	budget := int64(96 << 10)
	big := dc(1024, 512)  // 4 MB
	small := dc(512, 8)   // ~32 KB <= budget
	smallL := dc(8, 1024) // ~64 KB <= budget

	if m, _ := ChooseMatMultStrategy(big, small, bs, budget); m != types.MMBroadcastRight {
		t.Errorf("small right operand: strategy = %s, want br", m)
	}
	if m, _ := ChooseMatMultStrategy(smallL, dc(1024, 512), bs, budget); m != types.MMBroadcastLeft {
		t.Errorf("small left operand: strategy = %s, want bl", m)
	}
}

// TestMatMultGridVsShuffleCrossover pins the gj<->sh decision to its computed
// crossover. For A: 256 x k, B: k x 128 with blocksize 128 the modeled costs
// are gj = 2*sizeL + 3*sizeR and sh = 2*sizeL + 2*sizeR + 2*sizeOut, so the
// strategies cross where sizeR = 2*sizeOut, i.e. k = 512: the grid join wins
// below, the shuffle split above.
func TestMatMultGridVsShuffleCrossover(t *testing.T) {
	const bs = 128
	budget := int64(16 << 10) // both operands exceed it at every tested k
	for _, tc := range []struct {
		k    int64
		want types.MatMultMethod
	}{
		{384, types.MMGridJoin},
		{768, types.MMShuffle},
	} {
		left, right := dc(256, tc.k), dc(tc.k, 128)
		if types.EstimateSize(left) <= budget || types.EstimateSize(right) <= budget {
			t.Fatalf("k=%d: operands must exceed the broadcast budget", tc.k)
		}
		m, shuffleBytes := ChooseMatMultStrategy(left, right, bs, budget)
		if m != tc.want {
			t.Errorf("k=%d: strategy = %s, want %s", tc.k, m, tc.want)
		}
		if shuffleBytes <= 0 {
			t.Errorf("k=%d: shuffle bytes = %d, want > 0", tc.k, shuffleBytes)
		}
	}
}

// TestPlanAnnotatesMatMult checks that Plan writes the strategy and cost
// annotations onto the HOP and that ExplainPlan renders them.
func TestPlanAnnotatesMatMult(t *testing.T) {
	// both operands over budget, k large -> shuffle split
	d, mm := matmultDAG(dc(256, 768), dc(768, 128))
	Plan(d, PlannerParams{MemBudget: 16 << 10, DistEnabled: true, Blocksize: 128})
	if mm.ExecType != types.ExecDist || mm.MMPlan != types.MMShuffle {
		t.Fatalf("plan = %s, want DIST:sh", mm.PlanString())
	}
	if !mm.CostEst.Known || mm.CostEst.Compute <= 0 || mm.CostEst.OutputBytes <= 0 || mm.CostEst.ShuffleBytes <= 0 {
		t.Errorf("cost estimate not populated: %+v", mm.CostEst)
	}
	explain := d.ExplainPlan()
	if !strings.Contains(explain, "plan=DIST:sh") {
		t.Errorf("ExplainPlan misses the strategy:\n%s", explain)
	}
	if !strings.Contains(explain, "shuffle=") || !strings.Contains(explain, "flops=") {
		t.Errorf("ExplainPlan misses cost annotations:\n%s", explain)
	}
	// 2*256*768*128 flops is far above matrix.TiledGEMMCrossoverFLOPs, so the
	// listing must surface the tiled kernel class the runtime will pick
	if !strings.Contains(explain, "kernel=tiled") {
		t.Errorf("ExplainPlan misses the kernel class:\n%s", explain)
	}
}

// TestFusionGateMatchesPlanner asserts the fuse<->no-fuse decision flips at
// the same budget the execution-type selection uses: an aggregate just inside
// the budget fuses, one step below the estimate sends the pipeline to the
// blocked backend unfused.
func TestFusionGateMatchesPlanner(t *testing.T) {
	build := func() (*DAG, *Hop) {
		x := NewRead("X", types.Matrix)
		y := NewRead("Y", types.Matrix)
		mul := NewHop(KindBinary, "*", x, y)
		mul.DataType = types.Matrix
		sum := NewHop(KindAggUnary, "sum", mul)
		sum.DataType = types.Scalar
		d := &DAG{Roots: []*Hop{NewWrite("s", sum)}}
		PropagateSizes(d, map[string]types.DataCharacteristics{
			"X": dc(512, 256), "Y": dc(512, 256),
		})
		return d, sum
	}

	d, sum := build()
	root := sum.Inputs[0]
	budget := root.MemEstimate // the cellwise root dominates the pipeline
	FuseOperators(d, PlannerParams{MemBudget: budget, DistEnabled: true})
	if sum.Kind != KindFusedAgg {
		t.Errorf("estimate == budget: aggregate did not fuse")
	}

	d, sum = build()
	FuseOperators(d, PlannerParams{MemBudget: budget - 1, DistEnabled: true})
	if sum.Kind == KindFusedAgg {
		t.Errorf("estimate > budget: aggregate fused although the planner would distribute it")
	}
	Plan(d, PlannerParams{MemBudget: budget - 1, DistEnabled: true, Blocksize: types.DefaultBlocksize})
	if sum.Inputs[0].ExecType != types.ExecDist {
		t.Errorf("planner kept the over-budget cellwise root in CP")
	}
}

// TestPlanRelevantUnknown checks the refined recompilation trigger: unknown
// sizes on operators the planner decides about fire it, unknown sizes no
// decision consumes do not.
func TestPlanRelevantUnknown(t *testing.T) {
	x := NewRead("X", types.Matrix) // unknown characteristics
	add := NewHop(KindBinary, "+", x, NewLiteralNumber(1))
	add.DataType = types.Matrix
	d := &DAG{Roots: []*Hop{NewWrite("y", add)}}
	PropagateSizes(d, nil)
	if !PlanRelevantUnknown(add) {
		t.Errorf("unknown-size binary must trigger recompilation")
	}

	fc := NewHop(KindFunctionCall, "f", x)
	fc.DataType = types.Matrix
	d2 := &DAG{Roots: []*Hop{NewWrite("z", fc)}}
	PropagateSizes(d2, nil)
	if PlanRelevantUnknown(fc) {
		t.Errorf("bare function call has no physical-plan decision; must not trigger recompilation")
	}

	// known sizes never trigger
	d3, mm := matmultDAG(dc(64, 64), dc(64, 64))
	_ = d3
	if PlanRelevantUnknown(mm) {
		t.Errorf("known-size matmult must not trigger recompilation")
	}
}

// --- cellwise nnz bounds -----------------------------------------------------

func TestCellwiseNNZBounds(t *testing.T) {
	a := types.NewDataCharacteristics(100, 100, types.DefaultBlocksize, 500)
	b := types.NewDataCharacteristics(100, 100, types.DefaultBlocksize, 300)
	if got := CellwiseNNZBound("*", a, b); got != 300 {
		t.Errorf("* bound = %d, want min(nnz) = 300", got)
	}
	if got := CellwiseNNZBound("+", a, b); got != 800 {
		t.Errorf("+ bound = %d, want sum(nnz) = 800", got)
	}
	// the sum bound caps at the cell count
	dense := types.NewDataCharacteristics(10, 10, types.DefaultBlocksize, 90)
	if got := CellwiseNNZBound("+", dense, dense); got != 100 {
		t.Errorf("+ bound = %d, want capped at 100 cells", got)
	}
	// comparisons create non-zeros from zero pairs: no bound
	if got := CellwiseNNZBound("==", a, b); got != -1 {
		t.Errorf("== bound = %d, want -1", got)
	}
	// broadcasting shapes get no bound
	vec := types.NewDataCharacteristics(100, 1, types.DefaultBlocksize, 50)
	if got := CellwiseNNZBound("*", a, vec); got != -1 {
		t.Errorf("broadcast bound = %d, want -1", got)
	}
	// unknown input nnz gets no bound
	unk := types.NewDataCharacteristics(100, 100, types.DefaultBlocksize, -1)
	if got := CellwiseNNZBound("*", a, unk); got != -1 {
		t.Errorf("unknown-nnz bound = %d, want -1", got)
	}
}

func TestScalarNNZBounds(t *testing.T) {
	m := types.NewDataCharacteristics(100, 100, types.DefaultBlocksize, 500)
	if got := ScalarNNZBound("*", m, 2.5, true); got != 500 {
		t.Errorf("X*2.5 bound = %d, want 500", got)
	}
	if got := ScalarNNZBound("*", m, 0, true); got != 0 {
		t.Errorf("X*0 bound = %d, want 0", got)
	}
	if got := ScalarNNZBound("/", m, 2, true); got != 500 {
		t.Errorf("X/2 bound = %d, want 500", got)
	}
	// s/X turns zeros into Inf: no bound
	if got := ScalarNNZBound("/", m, 2, false); got != -1 {
		t.Errorf("2/X bound = %d, want -1", got)
	}
	// s^X: 2^0 = 1 is dense
	if got := ScalarNNZBound("^", m, 2, false); got != -1 {
		t.Errorf("2^X bound = %d, want -1", got)
	}
	if got := ScalarNNZBound("+", m, 0, true); got != 500 {
		t.Errorf("X+0 bound = %d, want 500", got)
	}
	if got := ScalarNNZBound("+", m, 1, true); got != -1 {
		t.Errorf("X+1 bound = %d, want -1 (dense)", got)
	}
}

func TestUnaryNNZBounds(t *testing.T) {
	m := types.NewDataCharacteristics(100, 100, types.DefaultBlocksize, 500)
	if got := UnaryNNZBound("abs", m); got != 500 {
		t.Errorf("abs bound = %d, want 500", got)
	}
	if got := UnaryNNZBound("exp", m); got != -1 {
		t.Errorf("exp bound = %d, want -1 (exp(0)=1 is dense)", got)
	}
}

// TestSparseChainMemEstimate asserts the satellite's goal end to end: a
// cellwise multiply of two sparse operands no longer carries a worst-case
// dense estimate, so a sparse chain stops over-provisioning the budget gate.
func TestSparseChainMemEstimate(t *testing.T) {
	sparse := types.NewDataCharacteristics(1000, 1000, types.DefaultBlocksize, 10000) // 1% nnz
	a, b := NewRead("a", types.Matrix), NewRead("b", types.Matrix)
	mul := NewHop(KindBinary, "*", a, b)
	mul.DataType = types.Matrix
	d := &DAG{Roots: []*Hop{NewWrite("y", mul)}}
	PropagateSizes(d, map[string]types.DataCharacteristics{"a": sparse, "b": sparse})
	if mul.DC.NNZ != 10000 {
		t.Errorf("output nnz bound = %d, want 10000", mul.DC.NNZ)
	}
	denseBytes := types.EstimateSizeDense(1000, 1000)
	if mul.MemEstimate >= 2*denseBytes {
		t.Errorf("sparse chain estimate %d not below worst-case dense %d", mul.MemEstimate, 2*denseBytes)
	}
}

// --- compression decision site ----------------------------------------------

func TestShouldCompressFireAndNoFire(t *testing.T) {
	params := PlannerParams{MemBudget: 2 << 30, CompressionEnabled: true}
	site := func(rows, cols int64, reuse int) *Hop {
		in := NewRead("X", types.Matrix)
		in.DC = types.NewDataCharacteristics(rows, cols, types.DefaultBlocksize, -1)
		h := NewHop(KindCompress, "compress", in)
		h.DataType = types.Matrix
		h.CompressReuse = reuse
		return h
	}
	// large operand, loop-scale reuse: fire
	if !ShouldCompress(site(2000, 200, 20), params) {
		t.Errorf("large re-read operand should fire")
	}
	// below the size floor: never fire regardless of reuse
	if ShouldCompress(site(100, 20, 100), params) {
		t.Errorf("operand below CompressMinBytes should not fire")
	}
	// single-read operand: the encode pass cannot amortize
	if ShouldCompress(site(2000, 200, 1), params) {
		t.Errorf("single-use operand should not fire")
	}
	// unknown size: stay armed, recompilation re-decides
	unk := site(-1, -1, 20)
	unk.Inputs[0].DC = types.UnknownCharacteristics()
	if !ShouldCompress(unk, params) {
		t.Errorf("unknown-size site should stay armed for recompilation")
	}
	if !PlanRelevantUnknown(&Hop{Kind: KindCompress, MemEstimate: -1}) {
		t.Errorf("unknown compress site must be recompile-relevant")
	}
	// compression disabled: never fire
	if ShouldCompress(site(2000, 200, 20), PlannerParams{MemBudget: 2 << 30}) {
		t.Errorf("disabled compression should not fire")
	}
}

// TestPlanSetsCompressFire asserts the planner pass annotates the decision on
// the HOP, mirroring the matmult-strategy annotation flow.
func TestPlanSetsCompressFire(t *testing.T) {
	in := NewRead("X", types.Matrix)
	in.DC = types.NewDataCharacteristics(2000, 200, types.DefaultBlocksize, -1)
	h := NewHop(KindCompress, "compress", in)
	h.DataType = types.Matrix
	h.CompressReuse = 20
	d := &DAG{Roots: []*Hop{NewWrite("X", h)}}
	PropagateSizes(d, nil)
	Plan(d, PlannerParams{MemBudget: 2 << 30, CompressionEnabled: true})
	if !h.CompressFire {
		t.Errorf("planner did not fire the compression site")
	}
	if h.ExecType != types.ExecCP {
		t.Errorf("compression site exec type = %s, want CP", h.ExecType)
	}
	Plan(d, PlannerParams{MemBudget: 2 << 30})
	if h.CompressFire {
		t.Errorf("planner fired with compression disabled")
	}
}
