package hops

import (
	"strings"
	"testing"

	"github.com/systemds/systemds-go/internal/types"
)

// dc builds dense characteristics with unknown nnz.
func dc(rows, cols int64) types.DataCharacteristics {
	return types.NewDataCharacteristics(rows, cols, types.DefaultBlocksize, -1)
}

// matmultDAG builds A %*% B with known input characteristics.
func matmultDAG(a, b types.DataCharacteristics) (*DAG, *Hop) {
	ra := NewRead("A", types.Matrix)
	rb := NewRead("B", types.Matrix)
	mm := NewHop(KindMatMult, "ba+*", ra, rb)
	mm.DataType = types.Matrix
	d := &DAG{Roots: []*Hop{NewWrite("C", mm)}}
	PropagateSizes(d, map[string]types.DataCharacteristics{"A": a, "B": b})
	return d, mm
}

// TestExecTypeCrossoverAtBudget asserts that the CP->Dist decision flips
// exactly at the operator's memory estimate: one byte of budget above keeps
// CP, one byte below selects the blocked backend.
func TestExecTypeCrossoverAtBudget(t *testing.T) {
	d, mm := matmultDAG(dc(512, 256), dc(256, 64))
	if mm.MemEstimate <= 0 {
		t.Fatalf("matmult estimate unknown: %d", mm.MemEstimate)
	}
	Plan(d, PlannerParams{MemBudget: mm.MemEstimate, DistEnabled: true, Blocksize: 128})
	if mm.ExecType != types.ExecCP {
		t.Errorf("estimate == budget: exec = %s, want CP", mm.ExecType)
	}
	Plan(d, PlannerParams{MemBudget: mm.MemEstimate - 1, DistEnabled: true, Blocksize: 128})
	if mm.ExecType != types.ExecDist {
		t.Errorf("estimate > budget: exec = %s, want DIST", mm.ExecType)
	}
	// disabled backend never distributes
	Plan(d, PlannerParams{MemBudget: mm.MemEstimate - 1, DistEnabled: false, Blocksize: 128})
	if mm.ExecType != types.ExecCP {
		t.Errorf("dist disabled: exec = %s, want CP", mm.ExecType)
	}
}

// TestMatMultBroadcastSideSelection asserts the broadcast strategy follows
// the operand that fits the budget: a small right operand broadcasts right, a
// small left operand broadcasts left.
func TestMatMultBroadcastSideSelection(t *testing.T) {
	const bs = 128
	budget := int64(96 << 10)
	big := dc(1024, 512)  // 4 MB
	small := dc(512, 8)   // ~32 KB <= budget
	smallL := dc(8, 1024) // ~64 KB <= budget

	if m, _ := ChooseMatMultStrategy(big, small, bs, budget); m != types.MMBroadcastRight {
		t.Errorf("small right operand: strategy = %s, want br", m)
	}
	if m, _ := ChooseMatMultStrategy(smallL, dc(1024, 512), bs, budget); m != types.MMBroadcastLeft {
		t.Errorf("small left operand: strategy = %s, want bl", m)
	}
}

// TestMatMultGridVsShuffleCrossover pins the gj<->sh decision to its computed
// crossover. For A: 256 x k, B: k x 128 with blocksize 128 the modeled costs
// are gj = 2*sizeL + 3*sizeR and sh = 2*sizeL + 2*sizeR + 2*sizeOut, so the
// strategies cross where sizeR = 2*sizeOut, i.e. k = 512: the grid join wins
// below, the shuffle split above.
func TestMatMultGridVsShuffleCrossover(t *testing.T) {
	const bs = 128
	budget := int64(16 << 10) // both operands exceed it at every tested k
	for _, tc := range []struct {
		k    int64
		want types.MatMultMethod
	}{
		{384, types.MMGridJoin},
		{768, types.MMShuffle},
	} {
		left, right := dc(256, tc.k), dc(tc.k, 128)
		if types.EstimateSize(left) <= budget || types.EstimateSize(right) <= budget {
			t.Fatalf("k=%d: operands must exceed the broadcast budget", tc.k)
		}
		m, shuffleBytes := ChooseMatMultStrategy(left, right, bs, budget)
		if m != tc.want {
			t.Errorf("k=%d: strategy = %s, want %s", tc.k, m, tc.want)
		}
		if shuffleBytes <= 0 {
			t.Errorf("k=%d: shuffle bytes = %d, want > 0", tc.k, shuffleBytes)
		}
	}
}

// TestPlanAnnotatesMatMult checks that Plan writes the strategy and cost
// annotations onto the HOP and that ExplainPlan renders them.
func TestPlanAnnotatesMatMult(t *testing.T) {
	// both operands over budget, k large -> shuffle split
	d, mm := matmultDAG(dc(256, 768), dc(768, 128))
	Plan(d, PlannerParams{MemBudget: 16 << 10, DistEnabled: true, Blocksize: 128})
	if mm.ExecType != types.ExecDist || mm.MMPlan != types.MMShuffle {
		t.Fatalf("plan = %s, want DIST:sh", mm.PlanString())
	}
	if !mm.CostEst.Known || mm.CostEst.Compute <= 0 || mm.CostEst.OutputBytes <= 0 || mm.CostEst.ShuffleBytes <= 0 {
		t.Errorf("cost estimate not populated: %+v", mm.CostEst)
	}
	explain := d.ExplainPlan()
	if !strings.Contains(explain, "plan=DIST:sh") {
		t.Errorf("ExplainPlan misses the strategy:\n%s", explain)
	}
	if !strings.Contains(explain, "shuffle=") || !strings.Contains(explain, "flops=") {
		t.Errorf("ExplainPlan misses cost annotations:\n%s", explain)
	}
}

// TestFusionGateMatchesPlanner asserts the fuse<->no-fuse decision flips at
// the same budget the execution-type selection uses: an aggregate just inside
// the budget fuses, one step below the estimate sends the pipeline to the
// blocked backend unfused.
func TestFusionGateMatchesPlanner(t *testing.T) {
	build := func() (*DAG, *Hop) {
		x := NewRead("X", types.Matrix)
		y := NewRead("Y", types.Matrix)
		mul := NewHop(KindBinary, "*", x, y)
		mul.DataType = types.Matrix
		sum := NewHop(KindAggUnary, "sum", mul)
		sum.DataType = types.Scalar
		d := &DAG{Roots: []*Hop{NewWrite("s", sum)}}
		PropagateSizes(d, map[string]types.DataCharacteristics{
			"X": dc(512, 256), "Y": dc(512, 256),
		})
		return d, sum
	}

	d, sum := build()
	root := sum.Inputs[0]
	budget := root.MemEstimate // the cellwise root dominates the pipeline
	FuseOperators(d, PlannerParams{MemBudget: budget, DistEnabled: true})
	if sum.Kind != KindFusedAgg {
		t.Errorf("estimate == budget: aggregate did not fuse")
	}

	d, sum = build()
	FuseOperators(d, PlannerParams{MemBudget: budget - 1, DistEnabled: true})
	if sum.Kind == KindFusedAgg {
		t.Errorf("estimate > budget: aggregate fused although the planner would distribute it")
	}
	Plan(d, PlannerParams{MemBudget: budget - 1, DistEnabled: true, Blocksize: types.DefaultBlocksize})
	if sum.Inputs[0].ExecType != types.ExecDist {
		t.Errorf("planner kept the over-budget cellwise root in CP")
	}
}

// TestPlanRelevantUnknown checks the refined recompilation trigger: unknown
// sizes on operators the planner decides about fire it, unknown sizes no
// decision consumes do not.
func TestPlanRelevantUnknown(t *testing.T) {
	x := NewRead("X", types.Matrix) // unknown characteristics
	add := NewHop(KindBinary, "+", x, NewLiteralNumber(1))
	add.DataType = types.Matrix
	d := &DAG{Roots: []*Hop{NewWrite("y", add)}}
	PropagateSizes(d, nil)
	if !PlanRelevantUnknown(add) {
		t.Errorf("unknown-size binary must trigger recompilation")
	}

	fc := NewHop(KindFunctionCall, "f", x)
	fc.DataType = types.Matrix
	d2 := &DAG{Roots: []*Hop{NewWrite("z", fc)}}
	PropagateSizes(d2, nil)
	if PlanRelevantUnknown(fc) {
		t.Errorf("bare function call has no physical-plan decision; must not trigger recompilation")
	}

	// known sizes never trigger
	d3, mm := matmultDAG(dc(64, 64), dc(64, 64))
	_ = d3
	if PlanRelevantUnknown(mm) {
		t.Errorf("known-size matmult must not trigger recompilation")
	}
}
