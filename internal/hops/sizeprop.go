package hops

import (
	"github.com/systemds/systemds-go/internal/types"
	"sort"
)

// PropagateSizes performs size propagation over the DAG: starting from the
// known characteristics of transient reads and literals, it derives output
// dimensions and sparsity for every operator, then computes worst-case memory
// estimates. knownVars supplies the characteristics of variables live at the
// block entry (from the symbol table during dynamic recompilation, or from
// read metadata at initial compile time).
func PropagateSizes(d *DAG, knownVars map[string]types.DataCharacteristics) {
	for _, h := range d.Nodes() {
		propagate(h, knownVars)
		h.MemEstimate = estimateMemory(h)
	}
}

func propagate(h *Hop, known map[string]types.DataCharacteristics) {
	switch h.Kind {
	case KindRead:
		if dc, ok := known[h.Name]; ok {
			h.DC = dc
			if dc.Rows >= 0 && h.DataType == types.UnknownData {
				h.DataType = types.Matrix
			}
		}
	case KindLiteral:
		h.DC = types.NewDataCharacteristics(0, 0, 0, 0)
	case KindWrite, KindCast:
		if len(h.Inputs) == 1 {
			h.DC = h.Inputs[0].DC
			if h.Kind == KindWrite {
				h.DataType = h.Inputs[0].DataType
				h.ValueType = h.Inputs[0].ValueType
			}
		}
	case KindBinary:
		if len(h.Inputs) == 2 {
			a, b := h.Inputs[0], h.Inputs[1]
			switch {
			case a.IsMatrix() && b.IsMatrix():
				h.DC = combineBinary(a.DC, b.DC)
				h.DC.NNZ = CellwiseNNZBound(h.Op, a.DC, b.DC)
			case a.IsMatrix():
				h.DC = a.DC
				h.DC.NNZ = scalarOperandNNZBound(h.Op, a.DC, b, true)
			case b.IsMatrix():
				h.DC = b.DC
				h.DC.NNZ = scalarOperandNNZBound(h.Op, b.DC, a, false)
			default:
				h.DC = types.NewDataCharacteristics(0, 0, 0, 0)
			}
		}
	case KindUnary:
		if len(h.Inputs) == 1 {
			h.DC = h.Inputs[0].DC
			if h.DataType == types.Matrix {
				h.DC.NNZ = UnaryNNZBound(h.Op, h.Inputs[0].DC)
			} else {
				h.DC = types.NewDataCharacteristics(0, 0, 0, 0)
			}
		}
	case KindCompress:
		// a compression site is representation-only: dimensions, sparsity and
		// values pass through untouched
		if len(h.Inputs) == 1 {
			h.DC = h.Inputs[0].DC
		}
	case KindAggUnary:
		if len(h.Inputs) == 1 {
			in := h.Inputs[0].DC
			switch h.Op {
			case "rowSums", "rowMeans", "rowMaxs", "rowMins", "rowIndexMax":
				h.DC = types.NewDataCharacteristics(in.Rows, 1, in.Blocksize, -1)
			case "colSums", "colMeans", "colMaxs", "colMins", "colVars", "colSds":
				h.DC = types.NewDataCharacteristics(1, in.Cols, in.Blocksize, -1)
			default: // full aggregates produce scalars
				h.DC = types.NewDataCharacteristics(0, 0, 0, 0)
			}
		}
	case KindMatMult:
		if len(h.Inputs) == 2 {
			a, b := h.Inputs[0].DC, h.Inputs[1].DC
			rows, cols := a.Rows, b.Cols
			h.DC = types.NewDataCharacteristics(rows, cols, a.Blocksize, MatMultNNZBound(a, b))
		}
	case KindTSMM:
		if len(h.Inputs) == 1 {
			in := h.Inputs[0].DC
			h.DC = types.NewDataCharacteristics(in.Cols, in.Cols, in.Blocksize, TSMMNNZBound(in))
		}
	case KindMMChain:
		if len(h.Inputs) >= 2 {
			in := h.Inputs[0].DC
			h.DC = types.NewDataCharacteristics(in.Cols, 1, in.Blocksize, -1)
		}
	case KindFusedAgg:
		if h.FusedAgg != nil {
			var in types.DataCharacteristics
			for _, arg := range h.Inputs {
				if arg.IsMatrix() {
					in = arg.DC
					break
				}
			}
			switch h.FusedAgg.Agg {
			case "colSums":
				h.DC = types.NewDataCharacteristics(1, in.Cols, in.Blocksize, -1)
			case "rowSums":
				h.DC = types.NewDataCharacteristics(in.Rows, 1, in.Blocksize, -1)
			default: // sum, min, max produce scalars
				h.DC = types.NewDataCharacteristics(0, 0, 0, 0)
			}
		}
	case KindReorg:
		if len(h.Inputs) == 1 {
			in := h.Inputs[0].DC
			switch h.Op {
			case "t":
				h.DC = types.NewDataCharacteristics(in.Cols, in.Rows, in.Blocksize, in.NNZ)
			case "diag":
				if in.Cols == 1 {
					h.DC = types.NewDataCharacteristics(in.Rows, in.Rows, in.Blocksize, in.Rows)
				} else {
					h.DC = types.NewDataCharacteristics(in.Rows, 1, in.Blocksize, -1)
				}
			default:
				h.DC = in
			}
		}
	case KindIndexing:
		// without literal bounds the result size is unknown; a literal range
		// yields exact sizes
		h.DC = types.UnknownCharacteristics()
		if len(h.Inputs) >= 5 {
			rl, ru := h.Inputs[1], h.Inputs[2]
			cl, cu := h.Inputs[3], h.Inputs[4]
			rows, cols := int64(-1), int64(-1)
			if rl.IsLiteralNumber() && ru.IsLiteralNumber() {
				rows = int64(ru.LitValue-rl.LitValue) + 1
			}
			if cl.IsLiteralNumber() && cu.IsLiteralNumber() {
				cols = int64(cu.LitValue-cl.LitValue) + 1
			}
			in := h.Inputs[0].DC
			if rows < 0 && in.Rows >= 0 && rl.IsLiteralNumber() && rl.LitValue == 1 && ru.Kind == KindRead {
				rows = -1
			}
			h.DC = types.NewDataCharacteristics(rows, cols, in.Blocksize, -1)
		}
	case KindLeftIndex:
		if len(h.Inputs) >= 1 {
			h.DC = h.Inputs[0].DC
			h.DC.NNZ = -1
		}
	case KindDataGen:
		rows, cols := int64(-1), int64(-1)
		if p, ok := h.Params["rows"]; ok && p.IsLiteralNumber() {
			rows = int64(p.LitValue)
		}
		if p, ok := h.Params["cols"]; ok && p.IsLiteralNumber() {
			cols = int64(p.LitValue)
		}
		if h.Op == "seq" {
			if from, ok1 := h.Params["from"]; ok1 && from.IsLiteralNumber() {
				if to, ok2 := h.Params["to"]; ok2 && to.IsLiteralNumber() {
					incr := 1.0
					if p, ok := h.Params["incr"]; ok && p.IsLiteralNumber() {
						incr = p.LitValue
					}
					if incr != 0 {
						rows = int64((to.LitValue-from.LitValue)/incr) + 1
					}
					cols = 1
				}
			}
		}
		nnz := int64(-1)
		if rows >= 0 && cols >= 0 {
			nnz = rows * cols
			if p, ok := h.Params["sparsity"]; ok && p.IsLiteralNumber() {
				nnz = int64(float64(rows*cols) * p.LitValue)
			}
		}
		h.DC = types.NewDataCharacteristics(rows, cols, types.DefaultBlocksize, nnz)
	case KindNary:
		switch h.Op {
		case "cbind":
			rows, cols := int64(-1), int64(0)
			ok := true
			for _, in := range h.Inputs {
				if in.DC.Rows >= 0 {
					rows = in.DC.Rows
				}
				if in.DC.Cols < 0 {
					ok = false
					break
				}
				cols += in.DC.Cols
			}
			if !ok {
				cols = -1
			}
			h.DC = types.NewDataCharacteristics(rows, cols, types.DefaultBlocksize, -1)
		case "rbind":
			rows, cols := int64(0), int64(-1)
			ok := true
			for _, in := range h.Inputs {
				if in.DC.Cols >= 0 {
					cols = in.DC.Cols
				}
				if in.DC.Rows < 0 {
					ok = false
					break
				}
				rows += in.DC.Rows
			}
			if !ok {
				rows = -1
			}
			h.DC = types.NewDataCharacteristics(rows, cols, types.DefaultBlocksize, -1)
		default:
			h.DC = types.UnknownCharacteristics()
		}
	case KindTernary:
		if len(h.Inputs) == 3 {
			h.DC = h.Inputs[0].DC
			h.DC.NNZ = -1
		}
	case KindParamBuiltin, KindFunctionCall:
		h.DC = types.UnknownCharacteristics()
	}
}

// scalarOperandNNZBound derives the matrix-scalar nnz bound when the scalar
// side is a compile-time numeric literal (the only case where the value, and
// therefore its zero-behavior, is known).
func scalarOperandNNZBound(op string, m types.DataCharacteristics, scalar *Hop, matrixLeft bool) int64 {
	if !scalar.IsLiteralNumber() {
		return -1
	}
	return ScalarNNZBound(op, m, scalar.LitValue, matrixLeft)
}

func combineBinary(a, b types.DataCharacteristics) types.DataCharacteristics {
	rows, cols := a.Rows, a.Cols
	if rows < 0 {
		rows = b.Rows
	}
	if cols < 0 {
		cols = b.Cols
	}
	// vector broadcasting keeps the larger operand's shape
	if b.Rows > rows {
		rows = b.Rows
	}
	if b.Cols > cols {
		cols = b.Cols
	}
	return types.NewDataCharacteristics(rows, cols, a.Blocksize, -1)
}

// estimateMemory computes a worst-case memory estimate in bytes of the HOP's
// output plus its largest input (the operands that must be pinned during
// execution), used for execution-type selection.
func estimateMemory(h *Hop) int64 {
	out := types.EstimateSize(h.DC)
	if h.DataType == types.Scalar {
		out = 64
	}
	var maxIn int64
	for _, in := range h.Inputs {
		s := types.EstimateSize(in.DC)
		if in.DataType == types.Scalar {
			s = 64
		}
		if s > maxIn {
			maxIn = s
		}
	}
	if out < 0 || maxIn < 0 {
		return -1
	}
	return out + maxIn
}

// SelectExecTypes assigns an execution type to every operator by running the
// cost-based physical planner (cost.go) with the default block size:
// operators whose estimate fits in the budget run in the local control
// program (CP), larger ones are compiled to the blocked distributed backend
// (the Spark substitute). Operators with unknown sizes conservatively run in
// CP and are subject to dynamic recompilation once sizes are known.
func SelectExecTypes(d *DAG, memBudget int64, distEnabled bool) {
	Plan(d, PlannerParams{MemBudget: memBudget, DistEnabled: distEnabled, Blocksize: types.DefaultBlocksize})
}

// rowColAggs are the aggregations with matrix (vector) outputs that the
// blocked backend can keep blocked; full aggregates produce scalars.
var rowColAggs = map[string]bool{
	"rowSums": true, "rowMeans": true, "rowMaxs": true, "rowMins": true,
	"colSums": true, "colMeans": true, "colMaxs": true, "colMins": true,
}

// keepsBlockedOutput reports whether a distributed operator's kind produces a
// blocked result at all — TSMM and full aggregates assemble small local
// outputs instead. Shared by PropagateBlockedOutputs and the planner's
// blocked-operand costing so the two can never disagree.
func keepsBlockedOutput(h *Hop) bool {
	return !(h.Kind == KindTSMM || (h.Kind == KindAggUnary && !rowColAggs[h.Op]))
}

// PropagateBlockedOutputs runs after SelectExecTypes and decides, per Dist
// operator, whether its result stays in the blocked representation. A result
// stays blocked unless every consumer is a CP compute operator (in which case
// the instruction collects eagerly and the blocked wrap would only add
// overhead). Transient writes keep values blocked: the object flows through
// the symbol table and later CP consumers or sinks collect lazily, so
// Dist->Dist chains across DAGs and statements never repartition.
func PropagateBlockedOutputs(d *DAG) {
	nodes := d.Nodes()
	consumers := map[int64][]*Hop{}
	for _, h := range nodes {
		for _, in := range h.Inputs {
			consumers[in.ID] = append(consumers[in.ID], h)
		}
		// visit params in sorted key order so every consumer list is built
		// identically across runs (nodes is already a deterministic post-order)
		pkeys := make([]string, 0, len(h.Params))
		for k := range h.Params {
			pkeys = append(pkeys, k)
		}
		sort.Strings(pkeys)
		for _, k := range pkeys {
			consumers[h.Params[k].ID] = append(consumers[h.Params[k].ID], h)
		}
	}
	for _, h := range nodes {
		if h.ExecType != types.ExecDist || h.DataType == types.Scalar {
			continue
		}
		// operators with small local outputs never stay blocked
		if !keepsBlockedOutput(h) {
			continue
		}
		cons := consumers[h.ID]
		allCP := len(cons) > 0
		for _, c := range cons {
			if c.Kind == KindWrite || c.ExecType == types.ExecDist {
				allCP = false
				break
			}
		}
		h.BlockedOutput = !allCP
	}
}
