package hops

import (
	"strings"
	"testing"

	"github.com/systemds/systemds-go/internal/types"
)

// buildLmDSDag constructs the HOP DAG of the lmDS core computation
// A = t(X) %*% X + diag(l); b = t(X) %*% y to exercise rewrites and size
// propagation the way the compiler does.
func buildLmDSDag() (*DAG, *Hop, *Hop) {
	x := NewRead("X", types.Matrix)
	y := NewRead("y", types.Matrix)
	l := NewRead("l", types.Matrix)
	tx1 := NewHop(KindReorg, "t", x)
	tx1.DataType = types.Matrix
	tx2 := NewHop(KindReorg, "t", x)
	tx2.DataType = types.Matrix
	gram := NewHop(KindMatMult, "ba+*", tx1, x)
	gram.DataType = types.Matrix
	diag := NewHop(KindReorg, "diag", l)
	diag.DataType = types.Matrix
	a := NewHop(KindBinary, "+", gram, diag)
	a.DataType = types.Matrix
	b := NewHop(KindMatMult, "ba+*", tx2, y)
	b.DataType = types.Matrix
	dag := &DAG{Roots: []*Hop{NewWrite("A", a), NewWrite("b", b)}}
	return dag, a, b
}

func TestRewriteFusesTSMM(t *testing.T) {
	dag, a, _ := buildLmDSDag()
	Rewrite(dag)
	// t(X) %*% X must become a TSMM node
	if dag.CountKind(KindTSMM) != 1 {
		t.Fatalf("TSMM nodes = %d, want 1\n%s", dag.CountKind(KindTSMM), dag.Explain())
	}
	// the A node's first input is now the tsmm
	if a.Inputs[0].Kind != KindTSMM {
		t.Errorf("A input kind = %s", a.Inputs[0].Kind)
	}
	// the duplicated transpose reads were merged by CSE: only one reorg (the
	// diag) plus the transpose feeding b remain
	if n := dag.CountKind(KindRead); n != 3 {
		t.Errorf("reads = %d, want 3 (X, y, l deduplicated)", n)
	}
}

func TestFoldConstants(t *testing.T) {
	two := NewLiteralNumber(2)
	three := NewLiteralNumber(3)
	sum := NewHop(KindBinary, "+", two, three)
	sum.DataType = types.Scalar
	neg := NewHop(KindUnary, "-", sum)
	neg.DataType = types.Scalar
	cmp := NewHop(KindBinary, ">", neg, NewLiteralNumber(0))
	cmp.DataType = types.Scalar
	dag := &DAG{Roots: []*Hop{NewWrite("x", neg), NewWrite("c", cmp)}}
	FoldConstants(dag)
	xRoot := dag.Roots[0]
	if xRoot.Inputs[0].Kind != KindLiteral || xRoot.Inputs[0].LitValue != -5 {
		t.Errorf("folded value = %+v", xRoot.Inputs[0])
	}
	cRoot := dag.Roots[1]
	if !cRoot.Inputs[0].LitIsBool || cRoot.Inputs[0].LitBool {
		t.Errorf("folded comparison = %+v", cRoot.Inputs[0])
	}
}

func TestSimplifyAlgebraic(t *testing.T) {
	x := NewRead("X", types.Matrix)
	tt := NewHop(KindReorg, "t", NewHop(KindReorg, "t", x))
	tt.DataType = types.Matrix
	tt.Inputs[0].DataType = types.Matrix
	mulOne := NewHop(KindBinary, "*", x, NewLiteralNumber(1))
	mulOne.DataType = types.Matrix
	addZero := NewHop(KindBinary, "+", x, NewLiteralNumber(0))
	addZero.DataType = types.Matrix
	dag := &DAG{Roots: []*Hop{NewWrite("a", tt), NewWrite("b", mulOne), NewWrite("c", addZero)}}
	SimplifyAlgebraic(dag)
	for i, root := range dag.Roots {
		if root.Inputs[0] != x {
			t.Errorf("root %d not simplified to X: %+v", i, root.Inputs[0])
		}
	}
}

func TestCSEKeepsNonDeterministicNodes(t *testing.T) {
	r1 := NewHop(KindDataGen, "rand")
	r1.DataType = types.Matrix
	r1.Params = map[string]*Hop{"rows": NewLiteralNumber(2), "cols": NewLiteralNumber(2), "seed": NewLiteralNumber(1)}
	r2 := NewHop(KindDataGen, "rand")
	r2.DataType = types.Matrix
	r2.Params = map[string]*Hop{"rows": NewLiteralNumber(2), "cols": NewLiteralNumber(2), "seed": NewLiteralNumber(1)}
	dag := &DAG{Roots: []*Hop{NewWrite("a", r1), NewWrite("b", r2)}}
	EliminateCommonSubexpressions(dag)
	if dag.Roots[0].Inputs[0] == dag.Roots[1].Inputs[0] {
		t.Error("datagen nodes must not be merged by CSE")
	}
}

func TestCSEMergesIdenticalSubtrees(t *testing.T) {
	x := NewRead("X", types.Matrix)
	s1 := NewHop(KindAggUnary, "sum", x)
	s1.DataType = types.Scalar
	x2 := NewRead("X", types.Matrix)
	s2 := NewHop(KindAggUnary, "sum", x2)
	s2.DataType = types.Scalar
	add := NewHop(KindBinary, "+", s1, s2)
	add.DataType = types.Scalar
	dag := &DAG{Roots: []*Hop{NewWrite("out", add)}}
	EliminateCommonSubexpressions(dag)
	if add.Inputs[0] != add.Inputs[1] {
		t.Error("identical aggregations should be merged")
	}
}

func TestPropagateSizesAndMemEstimates(t *testing.T) {
	dag, a, b := buildLmDSDag()
	Rewrite(dag)
	known := map[string]types.DataCharacteristics{
		"X": types.NewDataCharacteristics(1000, 50, 1024, 50000),
		"y": types.NewDataCharacteristics(1000, 1, 1024, 1000),
		"l": types.NewDataCharacteristics(50, 1, 1024, 50),
	}
	PropagateSizes(dag, known)
	if a.DC.Rows != 50 || a.DC.Cols != 50 {
		t.Errorf("A dims = %v", a.DC)
	}
	if b.DC.Rows != 50 || b.DC.Cols != 1 {
		t.Errorf("b dims = %v", b.DC)
	}
	for _, h := range dag.Nodes() {
		if h.Kind == KindRead || h.Kind == KindLiteral {
			continue
		}
		if h.MemEstimate < 0 {
			t.Errorf("node %s %s has unknown memory estimate", h.Kind, h.Op)
		}
	}
}

func TestPropagateSizesSpecificOps(t *testing.T) {
	x := NewRead("X", types.Matrix)
	known := map[string]types.DataCharacteristics{"X": types.NewDataCharacteristics(100, 20, 1024, 2000)}
	colsums := NewHop(KindAggUnary, "colSums", x)
	colsums.DataType = types.Matrix
	rowsums := NewHop(KindAggUnary, "rowSums", x)
	rowsums.DataType = types.Matrix
	total := NewHop(KindAggUnary, "sum", x)
	total.DataType = types.Scalar
	trans := NewHop(KindReorg, "t", x)
	trans.DataType = types.Matrix
	cb := NewHop(KindNary, "cbind", x, x)
	cb.DataType = types.Matrix
	gen := NewHop(KindDataGen, "rand")
	gen.DataType = types.Matrix
	gen.Params = map[string]*Hop{"rows": NewLiteralNumber(7), "cols": NewLiteralNumber(3), "sparsity": NewLiteralNumber(0.5)}
	seq := NewHop(KindDataGen, "seq")
	seq.DataType = types.Matrix
	seq.Params = map[string]*Hop{"from": NewLiteralNumber(1), "to": NewLiteralNumber(10), "incr": NewLiteralNumber(1)}
	dag := &DAG{Roots: []*Hop{
		NewWrite("a", colsums), NewWrite("b", rowsums), NewWrite("c", total),
		NewWrite("d", trans), NewWrite("e", cb), NewWrite("f", gen), NewWrite("g", seq),
	}}
	PropagateSizes(dag, known)
	if colsums.DC.Rows != 1 || colsums.DC.Cols != 20 {
		t.Errorf("colSums dc = %v", colsums.DC)
	}
	if rowsums.DC.Rows != 100 || rowsums.DC.Cols != 1 {
		t.Errorf("rowSums dc = %v", rowsums.DC)
	}
	if total.DC.Rows != 0 || total.DC.Cols != 0 {
		t.Errorf("sum dc = %v", total.DC)
	}
	if trans.DC.Rows != 20 || trans.DC.Cols != 100 || trans.DC.NNZ != 2000 {
		t.Errorf("transpose dc = %v", trans.DC)
	}
	if cb.DC.Cols != 40 {
		t.Errorf("cbind dc = %v", cb.DC)
	}
	if gen.DC.Rows != 7 || gen.DC.Cols != 3 || gen.DC.NNZ != 10 {
		t.Errorf("rand dc = %v", gen.DC)
	}
	if seq.DC.Rows != 10 || seq.DC.Cols != 1 {
		t.Errorf("seq dc = %v", seq.DC)
	}
}

func TestSelectExecTypes(t *testing.T) {
	x := NewRead("X", types.Matrix)
	z := NewRead("z", types.Matrix)
	big := NewHop(KindMatMult, "ba+*", x, x)
	big.DataType = types.Matrix
	small := NewHop(KindAggUnary, "sum", z)
	small.DataType = types.Scalar
	dag := &DAG{Roots: []*Hop{NewWrite("a", big), NewWrite("s", small)}}
	known := map[string]types.DataCharacteristics{
		"X": types.NewDataCharacteristics(5000, 5000, 1024, 25_000_000),
		"z": types.NewDataCharacteristics(10, 10, 1024, 100),
	}
	PropagateSizes(dag, known)
	SelectExecTypes(dag, 1<<20, true) // 1 MB budget forces DIST for the multiply
	if big.ExecType != types.ExecDist {
		t.Errorf("large matmult exec type = %s, want DIST", big.ExecType)
	}
	if small.ExecType != types.ExecCP {
		t.Errorf("small aggregate exec type = %s, want CP", small.ExecType)
	}
	// with the distributed backend disabled everything stays in CP
	SelectExecTypes(dag, 1<<20, false)
	if big.ExecType != types.ExecCP {
		t.Error("disabled backend must keep operators in CP")
	}
}

func TestPropagateBlockedOutputs(t *testing.T) {
	x := NewRead("X", types.Matrix)
	// add -> matmult -> sum, all Dist: add and matmult stay blocked, sum is a scalar
	add := NewHop(KindBinary, "+", x, x)
	add.DataType = types.Matrix
	w := NewRead("W", types.Matrix)
	mm := NewHop(KindMatMult, "ba+*", add, w)
	mm.DataType = types.Matrix
	sum := NewHop(KindAggUnary, "sum", mm)
	sum.DataType = types.Scalar
	dag := &DAG{Roots: []*Hop{NewWrite("Y", mm), NewWrite("s", sum)}}
	known := map[string]types.DataCharacteristics{
		"X": types.NewDataCharacteristics(5000, 5000, 1024, -1),
		"W": types.NewDataCharacteristics(5000, 100, 1024, -1),
	}
	PropagateSizes(dag, known)
	SelectExecTypes(dag, 1<<20, true)
	PropagateBlockedOutputs(dag)
	if !add.BlockedOutput {
		t.Error("add feeding a Dist matmult must stay blocked")
	}
	if !mm.BlockedOutput {
		t.Error("matmult feeding a Dist aggregate and a transient write must stay blocked")
	}
	if sum.BlockedOutput {
		t.Error("scalar aggregate output cannot stay blocked")
	}

	// a Dist operator consumed only by CP compute collects eagerly
	y := NewRead("Y", types.Matrix)
	t1 := NewHop(KindReorg, "t", y)
	t1.DataType = types.Matrix
	cpDiag := NewHop(KindReorg, "diag", t1)
	cpDiag.DataType = types.Matrix
	dag2 := &DAG{Roots: []*Hop{NewWrite("D", cpDiag)}}
	PropagateSizes(dag2, map[string]types.DataCharacteristics{
		"Y": types.NewDataCharacteristics(5000, 5000, 1024, -1),
	})
	SelectExecTypes(dag2, 1<<20, true)
	// force the consumer to CP to model a mixed chain
	cpDiag.ExecType = types.ExecCP
	PropagateBlockedOutputs(dag2)
	if t1.BlockedOutput {
		t.Error("Dist op with only CP compute consumers should collect eagerly")
	}
}

func TestSelectExecTypesNaryConcat(t *testing.T) {
	a := NewRead("A", types.Matrix)
	b := NewRead("B", types.Matrix)
	rb := NewHop(KindNary, "rbind", a, b)
	rb.DataType = types.Matrix
	dag := &DAG{Roots: []*Hop{NewWrite("C", rb)}}
	known := map[string]types.DataCharacteristics{
		"A": types.NewDataCharacteristics(5000, 5000, 1024, -1),
		"B": types.NewDataCharacteristics(5000, 5000, 1024, -1),
	}
	PropagateSizes(dag, known)
	SelectExecTypes(dag, 1<<20, true)
	if rb.ExecType != types.ExecDist {
		t.Errorf("large rbind exec type = %s, want DIST", rb.ExecType)
	}
	PropagateBlockedOutputs(dag)
	if !rb.BlockedOutput {
		t.Error("rbind feeding only a transient write should stay blocked")
	}
}

func TestExplainOutput(t *testing.T) {
	dag, _, _ := buildLmDSDag()
	Rewrite(dag)
	PropagateSizes(dag, nil)
	out := dag.Explain()
	if !strings.Contains(out, "TSMM") || !strings.Contains(out, "TWrite") {
		t.Errorf("explain output missing operators:\n%s", out)
	}
}

func TestLiteralConstructors(t *testing.T) {
	n := NewLiteralNumber(2.5)
	if !n.IsLiteralNumber() || n.LitValue != 2.5 || !n.IsScalar() {
		t.Error("number literal malformed")
	}
	s := NewLiteralString("csv")
	if s.IsLiteralNumber() || !s.LitIsStr || s.LitString != "csv" {
		t.Error("string literal malformed")
	}
	b := NewLiteralBool(true)
	if !b.LitIsBool || b.LitValue != 1 {
		t.Error("bool literal malformed")
	}
}
