// Cost-model-driven physical planning (the compiler-side operator selection
// of Section 2.3): a per-HOP cost estimate derived from the size/sparsity
// propagation in sizeprop.go, consumed by every physical decision the
// compiler makes — CP vs blocked-distributed execution, the physical matmult
// strategy (broadcast-left/right, grid join, shuffle-style split), the fusion
// budget gate, and the dynamic-recompilation trigger. The runtime executes
// the named plan; it never re-decides against ad-hoc size checks.
//
// Cost units are deliberately simple and deterministic: compute is counted in
// FLOPs, data movement in bytes. For the blocked backend, ShuffleBytes models
// the bytes a data-parallel engine would move for the chosen join strategy
// (replicated broadcast copies, replicated grid-join reads, or the one-pass
// shuffle plus output aggregation). Unknown shapes fall back to worst-case
// behavior: the operator stays in CP and the block is marked for dynamic
// recompilation, so the plan is re-derived the moment a cost-relevant size
// becomes known.
package hops

import (
	"fmt"
	"strings"

	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/types"
)

// PlannerParams collects the compiler-side knobs of the physical planner.
type PlannerParams struct {
	// MemBudget is the per-operator memory budget in bytes: the CP residency
	// limit and the broadcast budget of the blocked backend.
	MemBudget int64
	// DistEnabled allows the planner to place operators on the blocked
	// distributed backend at all.
	DistEnabled bool
	// Blocksize is the block side length of the blocked backend, needed to
	// derive grid dimensions for the matmult strategy costs.
	Blocksize int
	// CompressionEnabled allows the planner to fire compression decision
	// sites (KindCompress hops planted by the compiler before reuse scopes).
	CompressionEnabled bool
	// Calib supplies per-opcode correction factors learned from the
	// estimated-vs-actual PlanRecord history of earlier runs; nil plans with
	// the uncorrected static estimates.
	Calib *Calibration
	// Profile is the measured machine profile. When Measured, matmult
	// strategy selection compares modeled seconds (bytes over measured
	// bandwidth plus per-stage dispatch latency) instead of raw bytes, making
	// the br/bl/gj/sh crossovers machine-specific.
	Profile MachineProfile
}

// Cost is the estimated execution cost of one HOP under its chosen plan.
type Cost struct {
	// Compute is the floating-point operation count.
	Compute float64
	// InputBytes is the total size of all inputs, OutputBytes the size of the
	// result (worst-case dense unless sparsity is known).
	InputBytes  int64
	OutputBytes int64
	// ShuffleBytes models the partition/broadcast/replication bytes of the
	// chosen blocked-backend strategy; 0 for CP plans.
	ShuffleBytes int64
	// Known reports whether every size feeding the estimate was known; when
	// false the byte fields are worst-case placeholders (-1).
	Known bool
}

// EstimateCost derives the cost estimate of one size-annotated HOP. It only
// reads the data characteristics already produced by PropagateSizes.
func EstimateCost(h *Hop) Cost {
	c := Cost{Known: true}
	out := types.EstimateSize(h.DC)
	if h.DataType == types.Scalar {
		out = 64
	}
	var in int64
	for _, op := range h.Inputs {
		s := types.EstimateSize(op.DC)
		if op.DataType == types.Scalar {
			s = 64
		}
		if s < 0 {
			c.Known = false
		} else {
			in += s
		}
	}
	if out < 0 {
		c.Known = false
	}
	c.InputBytes, c.OutputBytes = in, out
	c.Compute = estimateFLOPs(h)
	if c.Compute < 0 {
		c.Known = false
	}
	if !c.Known {
		c.InputBytes, c.OutputBytes = -1, -1
	}
	return c
}

// estimateFLOPs counts floating-point operations per HOP kind, or -1 when the
// shapes are unknown.
func estimateFLOPs(h *Hop) float64 {
	cells := func(dc types.DataCharacteristics) float64 {
		n := dc.Cells()
		if n < 0 {
			return -1
		}
		return float64(n)
	}
	switch h.Kind {
	case KindRead, KindLiteral, KindWrite, KindCast:
		return 0
	case KindMatMult:
		if len(h.Inputs) != 2 {
			return -1
		}
		a, b := h.Inputs[0].DC, h.Inputs[1].DC
		if a.Rows < 0 || a.Cols < 0 || b.Cols < 0 {
			return -1
		}
		// 2*m*k*n scaled by the left operand's sparsity when known
		return 2 * float64(a.Rows) * float64(a.Cols) * float64(b.Cols) * a.Sparsity()
	case KindTSMM:
		if len(h.Inputs) != 1 {
			return -1
		}
		in := h.Inputs[0].DC
		if in.Rows < 0 || in.Cols < 0 {
			return -1
		}
		return float64(in.Rows) * float64(in.Cols) * float64(in.Cols)
	case KindMMChain:
		if len(h.Inputs) < 1 {
			return -1
		}
		n := cells(h.Inputs[0].DC)
		if n < 0 {
			return -1
		}
		// two passes over X (X%*%v and t(X)%*%·), plus the optional weighting
		f := 4 * n
		if len(h.Inputs) == 3 {
			f += n
		}
		return f
	case KindFusedAgg:
		if h.FusedAgg == nil {
			return -1
		}
		n := cells(h.DC)
		for _, in := range h.Inputs {
			if in.IsMatrix() {
				n = cells(in.DC)
				break
			}
		}
		if n < 0 {
			return -1
		}
		return n * float64(len(h.FusedAgg.Prog.Instrs))
	case KindBinary, KindUnary, KindAggUnary, KindTernary, KindReorg, KindDataGen:
		// one pass over the larger of the output and the inputs
		n := cells(h.DC)
		for _, in := range h.Inputs {
			if m := cells(in.DC); m > n {
				n = m
			}
		}
		return n
	default:
		return cells(h.DC)
	}
}

// Compression decision-site constants. The HOP-level site decides *where*
// compression is worth attempting (a loop or recompile scope re-reads a
// sufficiently large operand, so the one-time encode amortizes); whether the
// data actually compresses is decided at runtime by the sample-based planner
// in internal/compress (which rejects ratios below its threshold). Both
// halves are deliberately cheap to be wrong about: a fired site on
// incompressible data costs one rejected sampling pass, an unfired site on
// compressible data just keeps today's behavior.
const (
	// CompressMinBytes is the smallest operand worth a compression attempt;
	// below it the sampling pass costs more than the encoding can save.
	CompressMinBytes = int64(1) << 18 // 256 KB
	// compressEncodeFactor models the one-time encode cost in passes over the
	// input (sampling plus dictionary/run construction).
	compressEncodeFactor = 1.5
	// compressAssumedRatio is the conservative compression ratio assumed
	// before sampling, aligned with the runtime planner's acceptance
	// threshold (compress.DefaultMinRatio adds headroom above 1).
	compressAssumedRatio = 2.0
	// CompressAssumedLoopTrips is the trip count assumed for loops whose
	// bounds are unknown at compile time, multiplying the per-iteration read
	// count into the site's reuse estimate.
	CompressAssumedLoopTrips = 10
)

// ShouldCompress is the compile-time half of the compression decision: fire
// the site when the operand is known to be large enough and the modeled
// savings of the reuse scope (reuse re-reads at the assumed ratio) cover the
// one-time encode cost. Unknown sizes keep the site armed — the block is
// recompile-relevant, so the decision is re-derived against live sizes.
func ShouldCompress(h *Hop, p PlannerParams) bool {
	if !p.CompressionEnabled || h.Kind != KindCompress || len(h.Inputs) != 1 {
		return false
	}
	in := h.Inputs[0]
	if in.DataType == types.Scalar || in.DataType == types.Frame {
		return false
	}
	size := types.EstimateSize(in.DC)
	if size < 0 {
		return true
	}
	if size < CompressMinBytes {
		return false
	}
	reuse := h.CompressReuse
	if reuse < 1 {
		reuse = 1
	}
	encodeCost := float64(size) * compressEncodeFactor
	saved := float64(reuse) * float64(size) * (1 - 1/compressAssumedRatio)
	return saved >= encodeCost
}

// CompressedOutput reports whether a HOP's result lives in compressed
// representation at runtime: a fired compression site, a transient read of a
// variable compressed in an earlier DAG (CompressedRead, tracked by the
// compiler), or a transpose of either — the runtime keeps t(X) of compressed
// X as a zero-cost view on the column groups.
func CompressedOutput(h *Hop) bool {
	if h == nil {
		return false
	}
	if h.CompressedRead {
		return true
	}
	if h.Kind == KindCompress && h.CompressFire {
		return true
	}
	if h.Kind == KindReorg && h.Op == "t" && len(h.Inputs) == 1 {
		return CompressedOutput(h.Inputs[0])
	}
	return false
}

// hasCompressedInput reports whether any input of a HOP arrives compressed.
func hasCompressedInput(h *Hop) bool {
	for _, in := range h.Inputs {
		if CompressedOutput(in) {
			return true
		}
	}
	return false
}

// discountCompressedInputs re-prices the byte charges of an operator whose
// inputs arrive compressed: the bytes actually read (and, on the blocked
// backend, partitioned and moved) are the compressed bytes, modeled at the
// planner's assumed ratio. Pricing the compressed representation is what lets
// the planner prefer plans that keep data compressed over plans that
// decompress at an operator boundary.
func discountCompressedInputs(h *Hop) {
	if !h.CostEst.Known {
		return
	}
	for _, in := range h.Inputs {
		if !CompressedOutput(in) {
			continue
		}
		s := types.EstimateSize(in.DC)
		if in.DataType == types.Scalar {
			s = 64
		}
		if s > 0 {
			h.CostEst.InputBytes -= s - int64(float64(s)/compressAssumedRatio)
		}
	}
}

// distEligibleKinds are the operator kinds the blocked backend implements;
// everything else always runs in CP.
func distEligible(h *Hop) bool {
	switch h.Kind {
	case KindMatMult, KindTSMM, KindBinary, KindUnary, KindAggUnary, KindReorg:
		return true
	case KindNary:
		return h.Op == "rbind" || h.Op == "cbind"
	case KindDataGen:
		// rand/seq above the budget generate blocked partitions directly
		// instead of materializing a huge local matrix and repartitioning it
		return h.Op == "rand" || h.Op == "seq"
	}
	return false
}

// WouldRunDist reports whether the planner would place this operator on the
// blocked distributed backend. It is the single predicate shared by execution
// -type selection, the fusion budget gate and the recompilation trigger, so
// the three decision sites can never drift apart.
func WouldRunDist(h *Hop, p PlannerParams) bool {
	if !p.DistEnabled || p.MemBudget <= 0 || !distEligible(h) {
		return false
	}
	// unknown sizes stay in CP conservatively; dynamic recompilation re-plans
	// once the sizes are known
	return h.MemEstimate > p.MemBudget
}

// PlanRelevantUnknown reports whether a HOP with unknown sizes should trigger
// dynamic recompilation: only operators whose physical plan (exec type,
// matmult strategy, fusion eligibility) depends on the estimate qualify —
// an unknown size that no decision consumes cannot change the plan. The
// already-fused kinds are included so a fused operator whose shapes turn out
// unknown still re-plans against live sizes.
func PlanRelevantUnknown(h *Hop) bool {
	return h.MemEstimate < 0 &&
		(distEligible(h) || h.Kind == KindMMChain || h.Kind == KindFusedAgg ||
			h.Kind == KindCompress)
}

// --- cellwise nnz upper bounds ----------------------------------------------
//
// Worst-case dense output estimates over-provision sparse chains: a chain of
// cellwise operators over sparse operands was priced as if every intermediate
// were dense, inflating memory estimates and pushing operators over the
// budget gate for no reason. The bounds below propagate a simple nnz upper
// bound by operator class; they are deliberately conservative (an upper
// bound, never an exact count) so the budget gate errs on the safe side.

// zeroAnnihilating lists binary ops whose output cell is zero whenever either
// input cell is zero: nnz(out) <= min(nnz(a), nnz(b)).
var zeroAnnihilating = map[string]bool{"*": true, "&": true}

// zeroPreserving lists binary ops whose output cell is zero whenever both
// input cells are zero: nnz(out) <= nnz(a) + nnz(b). (Comparisons, division
// and power are excluded: 0==0, 0/0 and 0^0 produce non-zeros from zero
// pairs.)
var zeroPreserving = map[string]bool{"+": true, "-": true, "|": true, "min": true, "max": true}

// zeroPreservingUnary lists unary ops with f(0) == 0, which keep the input's
// nnz as an upper bound.
var zeroPreservingUnary = map[string]bool{
	"uminus": true, "abs": true, "sqrt": true, "round": true, "floor": true,
	"ceil": true, "sign": true, "sin": true, "tan": true,
}

// CellwiseNNZBound returns an nnz upper bound for a cell-wise binary operator
// over two matrices of identical shape, or -1 when no bound is known (unknown
// input nnz, broadcasting shapes, or an op that creates non-zeros from zero
// pairs).
func CellwiseNNZBound(op string, a, b types.DataCharacteristics) int64 {
	if !a.NNZKnown() || !b.NNZKnown() || a.Rows != b.Rows || a.Cols != b.Cols {
		return -1
	}
	switch {
	case zeroAnnihilating[op]:
		return min(a.NNZ, b.NNZ)
	case zeroPreserving[op]:
		return min(a.NNZ+b.NNZ, a.Cells())
	}
	return -1
}

// ScalarNNZBound returns an nnz upper bound for a matrix-scalar cellwise
// operator when the scalar value is a compile-time literal, or -1.
// matrixLeft reports the operand order: x/s and x^s preserve zeros, while
// s/x and s^x turn zero cells into non-zeros (Inf, NaN, 1) and get no bound.
func ScalarNNZBound(op string, m types.DataCharacteristics, scalar float64, matrixLeft bool) int64 {
	if !m.NNZKnown() {
		return -1
	}
	switch op {
	case "*":
		if scalar == 0 {
			return 0
		}
		return m.NNZ
	case "/":
		if matrixLeft && scalar != 0 {
			return m.NNZ
		}
	case "^":
		if matrixLeft && scalar > 0 {
			return m.NNZ
		}
	case "+", "-":
		if scalar == 0 {
			return m.NNZ
		}
	}
	return -1
}

// UnaryNNZBound returns an nnz upper bound for a cell-wise unary operator, or
// -1 when the op can turn zeros into non-zeros.
func UnaryNNZBound(op string, in types.DataCharacteristics) int64 {
	if !in.NNZKnown() || !zeroPreservingUnary[op] {
		return -1
	}
	return in.NNZ
}

// MatMultNNZBound returns an nnz upper bound for a matrix multiplication, or
// -1 when neither input's nnz is known. An output cell (i,j) is non-zero only
// if row i of A has a non-zero meeting a non-zero in column j of B, so the
// output nnz is bounded by nnz(A)*cols(B) (each non-zero of A contributes to
// at most one full output row's worth of cells) and symmetrically by
// rows(A)*nnz(B). Without this bound every matmult output was priced dense,
// over-provisioning the dist budget gate on sparse chains.
func MatMultNNZBound(a, b types.DataCharacteristics) int64 {
	if a.Rows < 0 || b.Cols < 0 {
		return -1
	}
	bound := a.Rows * b.Cols
	known := false
	if a.NNZKnown() && b.Cols >= 0 {
		bound = min(bound, a.NNZ*b.Cols)
		known = true
	}
	if b.NNZKnown() && a.Rows >= 0 {
		bound = min(bound, a.Rows*b.NNZ)
		known = true
	}
	if !known {
		return -1
	}
	return bound
}

// TSMMNNZBound returns an nnz upper bound for t(X) %*% X, or -1 when the
// input's nnz is unknown: each non-zero of X contributes to at most one
// output row (its column index), capping the n×n Gram matrix at nnz(X)*n.
func TSMMNNZBound(in types.DataCharacteristics) int64 {
	if !in.NNZKnown() || in.Cols < 0 {
		return -1
	}
	return min(in.Cols*in.Cols, in.NNZ*in.Cols)
}

// calibKey maps a HOP to the opcode its PlanRecords are recorded under, so
// the planner looks up corrections with the same key the runtime observed.
// Kinds that never record actuals return "" and stay uncorrected.
func calibKey(h *Hop) string {
	switch h.Kind {
	case KindMatMult:
		return "ba+*"
	case KindTSMM:
		return "tsmm"
	case KindCompress:
		return "compress"
	case KindBinary, KindUnary, KindAggUnary, KindReorg, KindNary, KindDataGen:
		return h.Op
	}
	return ""
}

// shuffleStageLatencyBytes is the per-stage charge of the sh strategy's k
// sequential common-dimension stages, expressed in the byte unit of the
// strategy costs: one stage's scheduling plus partial-output aggregation
// barrier, modeled as moving one extra 16x16 block (2 KB). Without it the sh
// strategy was priced as if its stages were free, biasing the gj↔sh crossover
// towards sh near the break-even point for long common dimensions.
const shuffleStageLatencyBytes = int64(2) << 10

// gridDim returns ceil(n/blocksize) for a known dimension.
func gridDim(n int64, blocksize int) int64 {
	if blocksize <= 0 {
		blocksize = types.DefaultBlocksize
	}
	return (n + int64(blocksize) - 1) / int64(blocksize)
}

// matMultStrategyCost returns the modeled shuffle bytes of one matmult
// strategy, or -1 when the strategy is infeasible for the given operands.
//
// The formulas model the data movement of the paper's data-parallel backend:
// each strategy pays a worst-case partition cost for the operands it needs in
// blocked form, plus the bytes its join moves:
//
//	br: partition left, broadcast the right operand to every block-row strip
//	                        -> sizeL + sizeR*gridRows(out)
//	bl: partition right, broadcast the left operand to every block-col strip
//	                        -> sizeR + sizeL*gridCols(out)
//	gj: partition both; the replication join re-reads every block row of the
//	    left per output column and every block column of the right per output
//	    row              -> (sizeL+sizeR) + sizeL*gridCols(out) + sizeR*gridRows(out)
//	sh: partition both, shuffle each input once by its common-dimension
//	    stripe, and aggregate the per-stripe partial outputs across kStages
//	    sequential stages, each paying a fixed latency charge
//	                        -> 2*(sizeL+sizeR) + 2*sizeOut + kStages*latency
//
// An operand that already arrives in blocked representation (produced by an
// upstream distributed operator) drops its partition charge; broadcasting
// such an operand instead pays a collect charge of its full size, which
// steers broadcast plans away from already-partitioned inputs. Broadcasts
// are only feasible when the broadcast side fits the per-operator memory
// budget.
func matMultStrategyCost(m types.MatMultMethod, sizeL, sizeR, sizeOut, grOut, gcOut, kStages, budget int64, leftBlocked, rightBlocked bool) int64 {
	partL, partR := sizeL, sizeR
	if leftBlocked {
		partL = 0
	}
	if rightBlocked {
		partR = 0
	}
	switch m {
	case types.MMBroadcastRight:
		if sizeR > budget {
			return -1
		}
		collect := int64(0)
		if rightBlocked {
			collect = sizeR
		}
		return partL + collect + sizeR*grOut
	case types.MMBroadcastLeft:
		if sizeL > budget {
			return -1
		}
		collect := int64(0)
		if leftBlocked {
			collect = sizeL
		}
		return partR + collect + sizeL*gcOut
	case types.MMGridJoin:
		return partL + partR + sizeL*gcOut + sizeR*grOut
	case types.MMShuffle:
		return partL + partR + (sizeL + sizeR) + 2*sizeOut + kStages*shuffleStageLatencyBytes
	}
	return -1
}

// ChooseMatMultStrategy picks the cheapest feasible physical strategy for a
// blocked matrix multiplication with the given operand characteristics
// (assuming both operands arrive as local matrices). It returns the strategy
// and its modeled shuffle bytes.
func ChooseMatMultStrategy(left, right types.DataCharacteristics, blocksize int, memBudget int64) (types.MatMultMethod, int64) {
	return chooseMatMultStrategy(left, right, blocksize, memBudget, false, false, nil, MachineProfile{})
}

// ChooseMatMultStrategyCalibrated is ChooseMatMultStrategy with the adaptive
// inputs: the "ba+*" correction factor scales both operand estimates (the
// history says how far static sizing runs from reality for this opcode) and a
// measured machine profile switches the ranking to modeled seconds. The
// runtime's late-bound strategy selection calls this with the context's
// calibration so re-decided plans and compile-time plans share one model.
func ChooseMatMultStrategyCalibrated(left, right types.DataCharacteristics, blocksize int, memBudget int64, calib *Calibration, prof MachineProfile) (types.MatMultMethod, int64) {
	return chooseMatMultStrategy(left, right, blocksize, memBudget, false, false, calib, prof)
}

// strategySeconds converts a strategy's byte cost into modeled seconds under
// a measured machine profile: movement at the measured memory bandwidth plus
// a dispatch latency per sequential stage.
func strategySeconds(prof MachineProfile, bytes, stages int64) float64 {
	return float64(bytes)/prof.MemBWBytes + float64(stages)*prof.DispatchNs*1e-9
}

// chooseMatMultStrategy is the blocked-representation-aware core of
// ChooseMatMultStrategy. Ties break towards the earlier candidate in
// (br, bl, gj, sh) order, so the decision is deterministic.
func chooseMatMultStrategy(left, right types.DataCharacteristics, blocksize int, memBudget int64, leftBlocked, rightBlocked bool, calib *Calibration, prof MachineProfile) (types.MatMultMethod, int64) {
	sizeL, sizeR := types.EstimateSize(left), types.EstimateSize(right)
	outDC := types.NewDataCharacteristics(left.Rows, right.Cols, blocksize, -1)
	sizeOut := types.EstimateSize(outDC)
	if sizeL < 0 || sizeR < 0 || sizeOut < 0 {
		// unknown shapes: defer the decision — the instruction re-invokes
		// this chooser at runtime with the operands' actual characteristics,
		// so the strategy is still decided here, just with late-bound sizes
		return types.MMAuto, -1
	}
	if calib != nil {
		// the per-opcode history scales how far static sizing runs from
		// reality; applying it to the operand estimates shifts every
		// strategy's movement charge coherently
		sizeL = calib.CorrectBytes("ba+*", sizeL)
		sizeR = calib.CorrectBytes("ba+*", sizeR)
		sizeOut = calib.CorrectBytes("ba+*", sizeOut)
	}
	grOut, gcOut := gridDim(left.Rows, blocksize), gridDim(right.Cols, blocksize)
	kStages := gridDim(left.Cols, blocksize)
	best, bestCost := types.MMAuto, int64(-1)
	var bestSec float64
	for _, m := range []types.MatMultMethod{
		types.MMBroadcastRight, types.MMBroadcastLeft, types.MMGridJoin, types.MMShuffle,
	} {
		c := matMultStrategyCost(m, sizeL, sizeR, sizeOut, grOut, gcOut, kStages, memBudget, leftBlocked, rightBlocked)
		if c < 0 {
			continue
		}
		if prof.Measured {
			// price in seconds: the sh strategy pays its k sequential stage
			// dispatches, the others a single dispatch
			stages := int64(1)
			if m == types.MMShuffle {
				stages = kStages
			}
			sec := strategySeconds(prof, c, stages)
			if bestCost < 0 || sec < bestSec {
				best, bestCost, bestSec = m, c, sec
			}
			continue
		}
		if bestCost < 0 || c < bestCost {
			best, bestCost = m, c
		}
	}
	return best, bestCost
}

// blockedProducer reports whether a HOP's result will arrive in blocked
// representation at runtime: a distributed matrix producer whose kind keeps
// blocked outputs (PropagateBlockedOutputs' keepsBlockedOutput). Because
// Plan visits inputs before consumers, the input's ExecType is final when a
// matmult consults it.
func blockedProducer(h *Hop) bool {
	return h.ExecType == types.ExecDist && h.DataType != types.Scalar && keepsBlockedOutput(h)
}

// Plan runs the physical planner over a rewritten, size-annotated DAG: it
// attaches cost estimates, selects execution types by comparing the modeled
// costs of the feasible placements, and chooses the physical matmult strategy
// for distributed multiplications. It replaces the former threshold-only
// SelectExecTypes as the single decision site.
func Plan(d *DAG, p PlannerParams) {
	for _, h := range d.Nodes() {
		h.ExecType = types.ExecCP
		h.MMPlan = types.MMAuto
		h.CostEst = EstimateCost(h)
		if p.Calib != nil && h.CostEst.Known && h.CostEst.OutputBytes > 0 {
			// fold the learned actual/estimated ratio into the output estimate
			// and the memory estimate the CP↔Dist gate reads, so an opcode the
			// static model chronically mis-prices drifts its crossovers. The
			// memory estimate is rebuilt from the propagated sizes rather than
			// adjusted in place, keeping Plan idempotent over the same DAG.
			if op := calibKey(h); op != "" {
				corrected := p.Calib.CorrectBytes(op, h.CostEst.OutputBytes)
				if corrected != h.CostEst.OutputBytes {
					if base := estimateMemory(h); base > 0 {
						h.MemEstimate = base + (corrected - h.CostEst.OutputBytes)
					}
					h.CostEst.OutputBytes = corrected
				}
			}
		}
		if h.Kind == KindCompress {
			// compression sites always execute in CP; the decision is whether
			// they lower to a compress instruction or to a no-op alias
			h.CompressFire = ShouldCompress(h, p)
			if h.CompressFire && h.CostEst.Known && h.CostEst.OutputBytes > 0 {
				// a fired site emits compressed bytes, priced at the assumed
				// ratio (the runtime sample planner enforces at least its
				// acceptance threshold, so this stays conservative)
				h.CostEst.OutputBytes = int64(float64(h.CostEst.OutputBytes) / compressAssumedRatio)
			}
			continue
		}
		// operators over compressed operands read (and move) compressed bytes;
		// the inputs precede their consumers in Nodes() order, so CompressFire
		// of an in-DAG site is already decided here
		discountCompressedInputs(h)
		if !WouldRunDist(h, p) {
			// CP is feasible (or forced by unknown sizes / disabled backend):
			// CP touches the operands exactly once with no partition or
			// shuffle cost, so it dominates every distributed plan whenever
			// the operator fits the memory budget.
			continue
		}
		h.ExecType = types.ExecDist
		if h.Kind == KindMatMult && len(h.Inputs) == 2 {
			l, r := h.Inputs[0], h.Inputs[1]
			m, shuffle := chooseMatMultStrategy(l.DC, r.DC, p.Blocksize, p.MemBudget,
				blockedProducer(l), blockedProducer(r), p.Calib, p.Profile)
			h.MMPlan = m
			h.CostEst.ShuffleBytes = shuffle
		} else if h.CostEst.Known {
			// non-matmult blocked operators partition unpartitioned inputs and
			// stream every block once
			h.CostEst.ShuffleBytes = h.CostEst.InputBytes
		}
	}
}

// PlanString renders the physical plan annotation of a HOP ("CP", "DIST", or
// "DIST:sh" for distributed matmults with a chosen strategy).
func (h *Hop) PlanString() string {
	if h.Kind == KindCompress {
		// surface the fire/no-fire decision so a user can audit why a loop
		// operand did or did not compress
		if h.CompressFire {
			return fmt.Sprintf("%s:compress", h.ExecType)
		}
		return fmt.Sprintf("%s:nocompress", h.ExecType)
	}
	if h.ExecType != types.ExecDist {
		return h.ExecType.String()
	}
	if h.Kind == KindMatMult && h.MMPlan != types.MMAuto {
		return fmt.Sprintf("%s:%s", h.ExecType, h.MMPlan)
	}
	return h.ExecType.String()
}

// ExplainPlan renders the planned DAG as an operator listing with the cost
// annotations the planner decided on: dimensions, memory estimate, plan
// string, and the modeled compute/shuffle costs (EXPLAIN hops with costs).
func (d *DAG) ExplainPlan() string {
	return d.ExplainPlanWith(nil)
}

// ExplainPlanWith renders the plan like ExplainPlan, additionally appending
// annotate(h) to each operator line when annotate is non-nil and returns a
// non-empty string. The compiler uses this to join measured per-opcode
// runtime metrics onto the printed plan (annotated EXPLAIN).
func (d *DAG) ExplainPlanWith(annotate func(*Hop) string) string {
	var sb strings.Builder
	nodes := d.Nodes()
	ids := explainIDs(nodes)
	for _, h := range nodes {
		ins := make([]string, len(h.Inputs))
		for i, in := range h.Inputs {
			ins[i] = fmt.Sprint(ids[in.ID])
		}
		fmt.Fprintf(&sb, "(%d) %s %s [%s] %s mem=%d plan=%s",
			ids[h.ID], h.Kind, h.Op, strings.Join(ins, ","), h.DC, h.MemEstimate, h.PlanString())
		if h.CostEst.Known {
			fmt.Fprintf(&sb, " flops=%.3g out=%dB", h.CostEst.Compute, h.CostEst.OutputBytes)
			if h.CostEst.ShuffleBytes > 0 {
				fmt.Fprintf(&sb, " shuffle=%dB", h.CostEst.ShuffleBytes)
			}
		} else {
			sb.WriteString(" cost=unknown")
		}
		// surface the kernel class so EXPLAIN reflects the physical execution
		// path: operators over compressed operands run the CLA kernels (Gram
		// matrices and matrix right-hand sides straight off the dictionaries)
		// — chosen by representation, so the tag prints even when sizes are
		// unknown; dense matmult-family operators above the runtime's shared
		// crossover run the tiled register-blocked kernel
		switch {
		case h.Kind == KindTSMM && hasCompressedInput(h):
			sb.WriteString(" kernel=ctsmm")
		case h.Kind == KindMatMult && len(h.Inputs) == 2 && hasCompressedInput(h):
			kernel := "cmm"
			if CompressedOutput(h.Inputs[0]) && h.Inputs[1].DC.Cols == 1 {
				kernel = "cmv" // X %*% v and t(X) %*% v pre-aggregate per group
			} else if !CompressedOutput(h.Inputs[0]) && h.Inputs[0].DC.Rows == 1 {
				kernel = "cvm" // u %*% X, the vector-matrix kernel
			}
			sb.WriteString(" kernel=" + kernel)
		case (h.Kind == KindMatMult || h.Kind == KindTSMM) && h.CostEst.Known &&
			h.CostEst.Compute >= matrix.TiledGEMMCrossoverFLOPs:
			sb.WriteString(" kernel=tiled")
		}
		if annotate != nil {
			if a := annotate(h); a != "" {
				sb.WriteString(a)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
