package hops

import (
	"math"

	"github.com/systemds/systemds-go/internal/types"
)

// Rewrite applies the static rewrite passes to the DAG in a fixed order:
// constant folding, algebraic simplification, fused-operator rewrites
// (t(X)%*%X -> tsmm) and common subexpression elimination. The passes mirror
// the HOP rewrites SystemDS applies before operator ordering and selection.
func Rewrite(d *DAG) {
	FoldConstants(d)
	SimplifyAlgebraic(d)
	// CSE must run before transpose fusion so that the two occurrences of X
	// in t(X) %*% X are represented by the same operator and the pattern is
	// recognized; a second CSE pass cleans up after the fusion.
	EliminateCommonSubexpressions(d)
	FuseTranspose(d)
	EliminateCommonSubexpressions(d)
}

// replaceEverywhere replaces old with new in all consumers (and roots).
func replaceEverywhere(d *DAG, old, new *Hop) {
	for _, h := range d.Nodes() {
		h.ReplaceInput(old, new)
	}
	for i, r := range d.Roots {
		if r == old {
			d.Roots[i] = new
		}
	}
}

// FoldConstants evaluates binary and unary operations whose inputs are all
// numeric literals.
func FoldConstants(d *DAG) {
	changed := true
	for changed {
		changed = false
		for _, h := range d.Nodes() {
			switch h.Kind {
			case KindBinary:
				if len(h.Inputs) == 2 && h.Inputs[0].IsLiteralNumber() && h.Inputs[1].IsLiteralNumber() {
					v, ok := evalBinary(h.Op, h.Inputs[0].LitValue, h.Inputs[1].LitValue)
					if ok {
						var lit *Hop
						if isBooleanOp(h.Op) {
							lit = NewLiteralBool(v != 0)
						} else {
							lit = NewLiteralNumber(v)
						}
						replaceEverywhere(d, h, lit)
						changed = true
					}
				}
			case KindUnary:
				if len(h.Inputs) == 1 && h.Inputs[0].IsLiteralNumber() && h.DataType == types.Scalar {
					v, ok := evalUnary(h.Op, h.Inputs[0].LitValue)
					if ok {
						lit := NewLiteralNumber(v)
						replaceEverywhere(d, h, lit)
						changed = true
					}
				}
			}
		}
	}
}

func evalBinary(op string, a, b float64) (float64, bool) {
	switch op {
	case "+":
		return a + b, true
	case "-":
		return a - b, true
	case "*":
		return a * b, true
	case "/":
		return a / b, true
	case "^":
		return math.Pow(a, b), true
	case "%%":
		return math.Mod(a, b), true
	case "%/%":
		return math.Floor(a / b), true
	case "==":
		return b2f(a == b), true
	case "!=":
		return b2f(a != b), true
	case "<":
		return b2f(a < b), true
	case "<=":
		return b2f(a <= b), true
	case ">":
		return b2f(a > b), true
	case ">=":
		return b2f(a >= b), true
	case "&":
		return b2f(a != 0 && b != 0), true
	case "|":
		return b2f(a != 0 || b != 0), true
	case "min":
		return math.Min(a, b), true
	case "max":
		return math.Max(a, b), true
	default:
		return 0, false
	}
}

func evalUnary(op string, a float64) (float64, bool) {
	switch op {
	case "-":
		return -a, true
	case "!":
		return b2f(a == 0), true
	case "abs":
		return math.Abs(a), true
	case "sqrt":
		return math.Sqrt(a), true
	case "exp":
		return math.Exp(a), true
	case "log":
		return math.Log(a), true
	case "round":
		return math.Round(a), true
	case "floor":
		return math.Floor(a), true
	case "ceil":
		return math.Ceil(a), true
	default:
		return 0, false
	}
}

// isBooleanOp reports whether a binary operator yields a boolean result.
func isBooleanOp(op string) bool {
	switch op {
	case "==", "!=", "<", "<=", ">", ">=", "&", "|":
		return true
	default:
		return false
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// SimplifyAlgebraic applies algebraic simplifications that remove unnecessary
// operators: t(t(X)) -> X, X*1 -> X, X+0 -> X, X^1 -> X, 1*X -> X,
// -(-X) -> X.
func SimplifyAlgebraic(d *DAG) {
	changed := true
	for changed {
		changed = false
		for _, h := range d.Nodes() {
			switch {
			// t(t(X)) -> X
			case h.Kind == KindReorg && h.Op == "t" &&
				len(h.Inputs) == 1 && h.Inputs[0].Kind == KindReorg && h.Inputs[0].Op == "t":
				replaceEverywhere(d, h, h.Inputs[0].Inputs[0])
				changed = true
			// -(-X) -> X
			case h.Kind == KindUnary && h.Op == "-" &&
				len(h.Inputs) == 1 && h.Inputs[0].Kind == KindUnary && h.Inputs[0].Op == "-":
				replaceEverywhere(d, h, h.Inputs[0].Inputs[0])
				changed = true
			// X*1, 1*X, X+0, 0+X, X-0, X/1, X^1
			case h.Kind == KindBinary && len(h.Inputs) == 2:
				a, b := h.Inputs[0], h.Inputs[1]
				switch {
				case h.Op == "*" && b.IsLiteralNumber() && b.LitValue == 1 && !a.IsScalar():
					replaceEverywhere(d, h, a)
					changed = true
				case h.Op == "*" && a.IsLiteralNumber() && a.LitValue == 1 && !b.IsScalar():
					replaceEverywhere(d, h, b)
					changed = true
				case (h.Op == "+" || h.Op == "-") && b.IsLiteralNumber() && b.LitValue == 0 && !a.IsScalar():
					replaceEverywhere(d, h, a)
					changed = true
				case h.Op == "+" && a.IsLiteralNumber() && a.LitValue == 0 && !b.IsScalar():
					replaceEverywhere(d, h, b)
					changed = true
				case (h.Op == "/" || h.Op == "^") && b.IsLiteralNumber() && b.LitValue == 1 && !a.IsScalar():
					replaceEverywhere(d, h, a)
					changed = true
				}
			}
		}
	}
}

// FuseTranspose rewrites t(X) %*% X into the fused TSMM operator and marks
// t(X) %*% Y patterns so lowering can use a transpose-fused multiply,
// avoiding the materialized transpose TensorFlow pays for in Figure 5.
func FuseTranspose(d *DAG) {
	for _, h := range d.Nodes() {
		if h.Kind != KindMatMult || len(h.Inputs) != 2 {
			continue
		}
		left, right := h.Inputs[0], h.Inputs[1]
		if left.Kind == KindReorg && left.Op == "t" && len(left.Inputs) == 1 && left.Inputs[0] == right {
			// t(X) %*% X  ->  tsmm(X)
			h.Kind = KindTSMM
			h.Op = "tsmm"
			h.Inputs = []*Hop{right}
		}
	}
}

// EliminateCommonSubexpressions merges structurally identical operations so
// they are computed once per DAG (the TF-G behaviour in Figure 5, applied to
// every DAG).
func EliminateCommonSubexpressions(d *DAG) {
	changed := true
	for changed {
		changed = false
		seen := map[string]*Hop{}
		for _, h := range d.Nodes() {
			if h.Kind == KindWrite || h.Kind == KindFunctionCall || h.Kind == KindDataGen ||
				h.Kind == KindParamBuiltin || h.Kind == KindLeftIndex {
				// side effects and non-determinism are never merged; datagen
				// nodes carry generated seeds (non-determinism, Section 3.1)
				continue
			}
			sig := h.signature()
			if prev, ok := seen[sig]; ok && prev != h {
				replaceEverywhere(d, h, prev)
				changed = true
				continue
			}
			seen[sig] = h
		}
	}
}

// CountKind returns the number of DAG nodes of the given kind (used by tests
// and by the reuse statistics).
func (d *DAG) CountKind(k Kind) int {
	n := 0
	for _, h := range d.Nodes() {
		if h.Kind == k {
			n++
		}
	}
	return n
}
