// Package hops implements the high-level operator (HOP) layer of the
// SystemDS-Go compiler (Section 2.3 of the paper): DAGs of logical operations
// per basic block, static rewrites (common subexpression elimination,
// constant folding, algebraic simplifications such as t(X)%*%X -> tsmm),
// size propagation of dimensions and sparsity, memory estimates, and
// execution-type selection hints consumed by the lowering step.
package hops

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"github.com/systemds/systemds-go/internal/types"
)

// Kind classifies high-level operators.
type Kind int

// HOP kinds.
const (
	KindRead         Kind = iota // transient read of a variable
	KindLiteral                  // scalar literal
	KindBinary                   // cell-wise or scalar binary operation
	KindUnary                    // cell-wise or scalar unary operation
	KindAggUnary                 // full or row/column aggregation
	KindMatMult                  // matrix multiplication
	KindTSMM                     // fused transpose-self matrix multiply t(X)%*%X
	KindReorg                    // transpose, diag, rev, order
	KindIndexing                 // right indexing X[a:b, c:d]
	KindLeftIndex                // left indexing target[a:b, c:d] = src
	KindDataGen                  // rand, seq, fill
	KindNary                     // cbind, rbind, n-ary min/max
	KindTernary                  // ifelse
	KindParamBuiltin             // parameterized builtins (transformencode, removeEmpty, ...)
	KindFunctionCall             // call to a user or DML-bodied function
	KindCast                     // as.scalar, as.matrix, as.double, ...
	KindWrite                    // transient write of a variable (DAG output)
	KindMMChain                  // fused t(X)%*%(X%*%v) / t(X)%*%(w*(X%*%v))
	KindFusedAgg                 // fused cellwise pipeline under an aggregate
	KindCompress                 // compression decision site before a reuse scope
)

var kindNames = map[Kind]string{
	KindRead: "TRead", KindLiteral: "Literal", KindBinary: "Binary", KindUnary: "Unary",
	KindAggUnary: "AggUnary", KindMatMult: "MatMult", KindTSMM: "TSMM", KindReorg: "Reorg",
	KindIndexing: "RightIndex", KindLeftIndex: "LeftIndex", KindDataGen: "DataGen",
	KindNary: "Nary", KindTernary: "Ternary", KindParamBuiltin: "ParamBuiltin",
	KindFunctionCall: "FCall", KindCast: "Cast", KindWrite: "TWrite",
	KindMMChain: "MMChain", KindFusedAgg: "FusedAgg", KindCompress: "Compress",
}

// String returns the kind name.
func (k Kind) String() string { return kindNames[k] }

var hopIDCounter int64

// Hop is one node of a high-level operator DAG.
type Hop struct {
	ID        int64
	Kind      Kind
	Op        string // concrete operation: "+", "t", "sum", "rand", function name, ...
	Name      string // variable name for TRead/TWrite
	Inputs    []*Hop
	DataType  types.DataType
	ValueType types.ValueType
	DC        types.DataCharacteristics

	// Literal payload (valid when Kind == KindLiteral)
	LitValue  float64
	LitString string
	LitBool   bool
	LitIsStr  bool
	LitIsBool bool

	// Named parameters (datagen and parameterized builtins)
	Params map[string]*Hop

	// Compiler annotations
	ExecType    types.ExecType
	MemEstimate int64
	// MMPlan is the physical matmult strategy chosen by the cost-based
	// planner (valid when Kind == KindMatMult and ExecType == ExecDist).
	MMPlan types.MatMultMethod
	// CostEst is the planner's cost estimate (set by Plan).
	CostEst Cost
	// BlockedOutput marks Dist operators whose result stays in the blocked
	// representation (a BlockedMatrixObject in the symbol table) instead of
	// being collected into a local block after execution; set by
	// PropagateBlockedOutputs along Dist->Dist edges.
	BlockedOutput bool

	// Outputs for multi-return function calls
	OutputNames []string

	// FusedAgg carries the cell program of a fused cellwise-aggregate
	// pipeline (valid when Kind == KindFusedAgg); set by FuseOperators.
	FusedAgg *FusedAggPlan

	// CompressReuse estimates how often the reuse scope behind a compression
	// decision site (Kind == KindCompress) re-reads the operand; set by the
	// compiler from the loop body's read count.
	CompressReuse int
	// CompressFire is the planner's decision for a compression site: lower to
	// a compress instruction (true) or to a no-op alias (false). Set by Plan.
	CompressFire bool
	// CompressedRead marks a transient read of a variable that holds a
	// compressed matrix at runtime (its producer was a fired compression site
	// in an earlier DAG); set by the compiler's cross-DAG tracking so pricing
	// and EXPLAIN see the compressed representation across block boundaries.
	CompressedRead bool
}

// NewHop creates a HOP with a fresh ID.
func NewHop(kind Kind, op string, inputs ...*Hop) *Hop {
	return &Hop{
		ID:     atomic.AddInt64(&hopIDCounter, 1),
		Kind:   kind,
		Op:     op,
		Inputs: inputs,
		DC:     types.UnknownCharacteristics(),
	}
}

// NewRead creates a transient read of a variable.
func NewRead(name string, dt types.DataType) *Hop {
	h := NewHop(KindRead, "tread")
	h.Name = name
	h.DataType = dt
	return h
}

// NewWrite creates a transient write of a variable fed by input.
func NewWrite(name string, input *Hop) *Hop {
	h := NewHop(KindWrite, "twrite", input)
	h.Name = name
	h.DataType = input.DataType
	h.ValueType = input.ValueType
	return h
}

// NewLiteralNumber creates a numeric scalar literal.
func NewLiteralNumber(v float64) *Hop {
	h := NewHop(KindLiteral, "lit")
	h.DataType = types.Scalar
	h.ValueType = types.FP64
	h.LitValue = v
	h.DC = types.NewDataCharacteristics(0, 0, 0, 0)
	return h
}

// NewLiteralString creates a string scalar literal.
func NewLiteralString(s string) *Hop {
	h := NewHop(KindLiteral, "lit")
	h.DataType = types.Scalar
	h.ValueType = types.String
	h.LitString = s
	h.LitIsStr = true
	return h
}

// NewLiteralBool creates a boolean scalar literal.
func NewLiteralBool(b bool) *Hop {
	h := NewHop(KindLiteral, "lit")
	h.DataType = types.Scalar
	h.ValueType = types.Boolean
	h.LitBool = b
	h.LitIsBool = true
	if b {
		h.LitValue = 1
	}
	return h
}

// IsScalar reports whether the HOP produces a scalar.
func (h *Hop) IsScalar() bool { return h.DataType == types.Scalar }

// IsMatrix reports whether the HOP produces a matrix.
func (h *Hop) IsMatrix() bool { return h.DataType == types.Matrix }

// IsLiteralNumber reports whether the HOP is a numeric literal.
func (h *Hop) IsLiteralNumber() bool {
	return h.Kind == KindLiteral && !h.LitIsStr && !h.LitIsBool
}

// signature produces a canonical string describing the operation and its
// input identities, used for common subexpression elimination.
func (h *Hop) signature() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s:%s:%s", h.Kind, h.Op, h.Name)
	if h.Kind == KindLiteral {
		fmt.Fprintf(&sb, ":%v:%q:%v", h.LitValue, h.LitString, h.LitBool)
	}
	for _, in := range h.Inputs {
		fmt.Fprintf(&sb, ":%d", in.ID)
	}
	if len(h.Params) > 0 {
		keys := make([]string, 0, len(h.Params))
		for k := range h.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&sb, ":%s=%d", k, h.Params[k].ID)
		}
	}
	if h.FusedAgg != nil {
		fmt.Fprintf(&sb, ":%s:%s", h.FusedAgg.Agg, h.FusedAgg.Prog.Signature())
	}
	return sb.String()
}

// DAG is the HOP DAG of one basic block: the roots are the transient writes
// (block outputs) plus side-effecting operations like print and write.
type DAG struct {
	Roots []*Hop
}

// Nodes returns all nodes of the DAG in a post-order (inputs before
// consumers), visiting shared subexpressions once.
func (d *DAG) Nodes() []*Hop {
	visited := map[int64]bool{}
	var order []*Hop
	var visit func(h *Hop)
	visit = func(h *Hop) {
		if h == nil || visited[h.ID] {
			return
		}
		visited[h.ID] = true
		for _, in := range h.Inputs {
			visit(in)
		}
		// visit params in sorted key order: the post-order returned here
		// decides EXPLAIN listings, consumer lists, and lowering order, all of
		// which must be identical across runs
		pkeys := make([]string, 0, len(h.Params))
		for k := range h.Params {
			pkeys = append(pkeys, k)
		}
		sort.Strings(pkeys)
		for _, k := range pkeys {
			visit(h.Params[k])
		}
		order = append(order, h)
	}
	for _, r := range d.Roots {
		visit(r)
	}
	return order
}

// explainIDs maps raw HOP IDs to DAG-local ordinals (post-order position,
// starting at 1). Raw IDs come from a process-global counter, so printing
// them would make EXPLAIN output depend on how many DAGs were built earlier
// in the process; the ordinals make the listing of a given plan identical
// across compilations and runs.
func explainIDs(nodes []*Hop) map[int64]int {
	ids := make(map[int64]int, len(nodes))
	for i, h := range nodes {
		ids[h.ID] = i + 1
	}
	return ids
}

// Explain renders the DAG as an indented operator listing (EXPLAIN hops).
func (d *DAG) Explain() string {
	var sb strings.Builder
	nodes := d.Nodes()
	ids := explainIDs(nodes)
	for _, h := range nodes {
		ins := make([]string, len(h.Inputs))
		for i, in := range h.Inputs {
			ins[i] = fmt.Sprint(ids[in.ID])
		}
		fmt.Fprintf(&sb, "(%d) %s %s [%s] %s mem=%d %s\n",
			ids[h.ID], h.Kind, h.Op, strings.Join(ins, ","), h.DC, h.MemEstimate, h.ExecType)
	}
	return sb.String()
}

// ReplaceInput swaps every occurrence of old with new in h's inputs and
// parameters.
func (h *Hop) ReplaceInput(old, new *Hop) {
	for i, in := range h.Inputs {
		if in == old {
			h.Inputs[i] = new
		}
	}
	for k, p := range h.Params {
		if p == old {
			h.Params[k] = new
		}
	}
}
