package hops

import (
	"testing"

	"github.com/systemds/systemds-go/internal/types"
)

// matRead builds a transient read with known matrix characteristics.
func matRead(name string, rows, cols int64) *Hop {
	h := NewRead(name, types.Matrix)
	h.DC = types.NewDataCharacteristics(rows, cols, types.DefaultBlocksize, -1)
	return h
}

func binary(op string, a, b *Hop) *Hop {
	h := NewHop(KindBinary, op, a, b)
	h.DataType = types.Matrix
	return h
}

func agg(op string, in *Hop) *Hop {
	h := NewHop(KindAggUnary, op, in)
	h.DataType = types.Scalar
	return h
}

func prepare(d *DAG) {
	PropagateSizes(d, nil)
	FuseOperators(d, PlannerParams{})
}

func TestFuseMMChainXtXv(t *testing.T) {
	x := matRead("X", 100, 20)
	v := matRead("v", 20, 1)
	tx := NewHop(KindReorg, "t", x)
	tx.DataType = types.Matrix
	xv := NewHop(KindMatMult, "ba+*", x, v)
	xv.DataType = types.Matrix
	root := NewHop(KindMatMult, "ba+*", tx, xv)
	root.DataType = types.Matrix
	d := &DAG{Roots: []*Hop{NewWrite("g", root)}}
	prepare(d)
	if root.Kind != KindMMChain || len(root.Inputs) != 2 {
		t.Fatalf("expected mmchain fusion, got %s with %d inputs", root.Kind, len(root.Inputs))
	}
	if root.Inputs[0] != x || root.Inputs[1] != v {
		t.Error("mmchain inputs should be [X, v]")
	}
	if d.CountKind(KindReorg) != 0 || d.CountKind(KindMatMult) != 0 {
		t.Error("interior transpose and matmult should be removed from the DAG")
	}
	if root.DC.Rows != 20 || root.DC.Cols != 1 {
		t.Errorf("mmchain output characteristics = %v, want 20x1", root.DC)
	}
}

func TestFuseMMChainWeighted(t *testing.T) {
	x := matRead("X", 100, 20)
	v := matRead("v", 20, 1)
	w := matRead("w", 100, 1)
	tx := NewHop(KindReorg, "t", x)
	tx.DataType = types.Matrix
	xv := NewHop(KindMatMult, "ba+*", x, v)
	xv.DataType = types.Matrix
	wxv := binary("*", w, xv)
	root := NewHop(KindMatMult, "ba+*", tx, wxv)
	root.DataType = types.Matrix
	d := &DAG{Roots: []*Hop{NewWrite("g", root)}}
	prepare(d)
	if root.Kind != KindMMChain || len(root.Inputs) != 3 {
		t.Fatalf("expected weighted mmchain fusion, got %s with %d inputs", root.Kind, len(root.Inputs))
	}
	if root.Inputs[0] != x || root.Inputs[1] != v || root.Inputs[2] != w {
		t.Error("mmchain inputs should be [X, v, w]")
	}
}

// TestNoFuseMMChainMultiConsumer: the X %*% v intermediate is also written to
// a variable, so the chain must not fuse across it.
func TestNoFuseMMChainMultiConsumer(t *testing.T) {
	x := matRead("X", 100, 20)
	v := matRead("v", 20, 1)
	tx := NewHop(KindReorg, "t", x)
	tx.DataType = types.Matrix
	xv := NewHop(KindMatMult, "ba+*", x, v)
	xv.DataType = types.Matrix
	root := NewHop(KindMatMult, "ba+*", tx, xv)
	root.DataType = types.Matrix
	d := &DAG{Roots: []*Hop{NewWrite("g", root), NewWrite("p", xv)}}
	prepare(d)
	if root.Kind != KindMatMult {
		t.Fatalf("chain with shared intermediate must not fuse, got %s", root.Kind)
	}
}

func TestFuseAggPipeline(t *testing.T) {
	x := matRead("X", 50, 30)
	y := matRead("Y", 50, 30)
	mul := binary("*", x, y)
	root := agg("sum", mul)
	d := &DAG{Roots: []*Hop{NewWrite("s", root)}}
	prepare(d)
	if root.Kind != KindFusedAgg || root.FusedAgg == nil {
		t.Fatalf("expected fused aggregate, got %s", root.Kind)
	}
	if got := root.FusedAgg.Prog.Signature(); got != "L0;L1;B*" {
		t.Errorf("program signature = %q, want L0;L1;B*", got)
	}
	if !root.FusedAgg.Prog.Annihilating {
		t.Error("X*Y should annihilate on the driver")
	}
	if len(root.Inputs) != 2 || root.Inputs[0] != x || root.Inputs[1] != y {
		t.Error("fused agg inputs should be the leaves [X, Y]")
	}
	if d.CountKind(KindBinary) != 0 {
		t.Error("interior cellwise operator should be removed from the DAG")
	}
}

// TestFuseAggSharedLeaf: sum(X*X) loads the shared leaf twice through one
// argument slot.
func TestFuseAggSharedLeaf(t *testing.T) {
	x := matRead("X", 50, 30)
	mul := binary("*", x, x)
	root := agg("sum", mul)
	d := &DAG{Roots: []*Hop{NewWrite("s", root)}}
	prepare(d)
	if root.Kind != KindFusedAgg {
		t.Fatalf("expected fused aggregate, got %s", root.Kind)
	}
	if len(root.Inputs) != 1 {
		t.Fatalf("shared leaf should deduplicate to one argument, got %d", len(root.Inputs))
	}
	if got := root.FusedAgg.Prog.Signature(); got != "L0;L0;B*" {
		t.Errorf("program signature = %q, want L0;L0;B*", got)
	}
}

// TestNoFuseAggMultiConsumer is the legality property: fusion never fires
// across multi-consumer intermediates.
func TestNoFuseAggMultiConsumer(t *testing.T) {
	x := matRead("X", 50, 30)
	y := matRead("Y", 50, 30)
	mul := binary("*", x, y)
	root := agg("sum", mul)
	// the product is also a DAG output in its own right
	d := &DAG{Roots: []*Hop{NewWrite("s", root), NewWrite("P", mul)}}
	prepare(d)
	if root.Kind != KindAggUnary {
		t.Fatalf("aggregate over shared intermediate must not fuse, got %s", root.Kind)
	}
	if d.CountKind(KindFusedAgg) != 0 {
		t.Error("no fused aggregate may exist in the DAG")
	}
}

// TestNoFuseAggBroadcast: a column-vector broadcast operand makes the binary
// a materialization boundary.
func TestNoFuseAggBroadcast(t *testing.T) {
	x := matRead("X", 50, 30)
	col := matRead("c", 50, 1)
	sub := binary("-", x, col)
	root := agg("sum", sub)
	d := &DAG{Roots: []*Hop{NewWrite("s", root)}}
	prepare(d)
	if root.Kind != KindAggUnary {
		t.Fatalf("broadcast operand must not fuse, got %s", root.Kind)
	}
}

// TestNoFuseAggUnknownShape: unknown sizes disable fusion.
func TestNoFuseAggUnknownShape(t *testing.T) {
	x := NewRead("X", types.Matrix) // unknown characteristics
	y := NewRead("Y", types.Matrix)
	mul := binary("*", x, y)
	root := agg("sum", mul)
	d := &DAG{Roots: []*Hop{NewWrite("s", root)}}
	prepare(d)
	if root.Kind != KindAggUnary {
		t.Fatalf("unknown shapes must not fuse, got %s", root.Kind)
	}
}

// TestNoFuseOverBudget: with the distributed backend enabled, operators whose
// memory estimate exceeds the budget stay unfused (they belong to the blocked
// backend).
func TestNoFuseOverBudget(t *testing.T) {
	x := matRead("X", 5000, 1000)
	y := matRead("Y", 5000, 1000)
	mul := binary("*", x, y)
	root := agg("sum", mul)
	d := &DAG{Roots: []*Hop{NewWrite("s", root)}}
	PropagateSizes(d, nil)
	FuseOperators(d, PlannerParams{MemBudget: 1024, DistEnabled: true}) // tiny budget, dist enabled
	if root.Kind != KindAggUnary {
		t.Fatalf("over-budget pipeline must not fuse, got %s", root.Kind)
	}
	// without the distributed backend the same pipeline fuses
	FuseOperators(d, PlannerParams{MemBudget: 1024})
	if root.Kind != KindFusedAgg {
		t.Fatalf("CP-only pipeline should fuse, got %s", root.Kind)
	}
}

// TestAnnihilationRules pins the structural sparse-safety analysis.
func TestAnnihilationRules(t *testing.T) {
	build := func(mk func(x, y *Hop) *Hop) *Hop {
		x := matRead("X", 40, 10)
		y := matRead("Y", 40, 10)
		root := agg("sum", mk(x, y))
		d := &DAG{Roots: []*Hop{NewWrite("s", root)}}
		prepare(d)
		if root.Kind != KindFusedAgg {
			t.Fatalf("pipeline did not fuse")
		}
		return root
	}
	cases := []struct {
		name string
		mk   func(x, y *Hop) *Hop
		want bool
	}{
		{"X*Y", func(x, y *Hop) *Hop { return binary("*", x, y) }, true},
		{"X+Y", func(x, y *Hop) *Hop { return binary("+", x, y) }, false},
		{"X-X? (abs(X)*Y)", func(x, y *Hop) *Hop {
			a := NewHop(KindUnary, "abs", x)
			a.DataType = types.Matrix
			return binary("*", a, y)
		}, true},
		// driver is X; exp(X) is 1 at X=0, and Y is not the driver, so the
		// product must NOT count as annihilating
		{"exp(X)*Y", func(x, y *Hop) *Hop {
			e := NewHop(KindUnary, "exp", x)
			e.DataType = types.Matrix
			return binary("*", e, y)
		}, false},
		{"X^2", func(x, y *Hop) *Hop { return binary("^", x, NewLiteralNumber(2)) }, true},
		{"X/Y", func(x, y *Hop) *Hop { return binary("/", x, y) }, false},
	}
	for _, tc := range cases {
		root := build(tc.mk)
		if got := root.FusedAgg.Prog.Annihilating; got != tc.want {
			t.Errorf("%s: annihilating = %v, want %v", tc.name, got, tc.want)
		}
	}
}
