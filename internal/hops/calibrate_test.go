package hops

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/systemds/systemds-go/internal/types"
)

func TestCalibrationFactorGating(t *testing.T) {
	c := NewCalibration()
	if f := c.Factor("ba+*"); f != 1.0 {
		t.Fatalf("factor of unknown opcode = %v, want 1", f)
	}
	// two observations stay below the gate
	c.Observe("ba+*", 100, 800)
	c.Observe("ba+*", 100, 800)
	if f := c.Factor("ba+*"); f != 1.0 {
		t.Fatalf("factor below minObservations = %v, want 1", f)
	}
	c.Observe("ba+*", 100, 800)
	if f := c.Factor("ba+*"); f <= 1.0 {
		t.Fatalf("factor after consistent 8x underestimates = %v, want > 1", f)
	}
	// degenerate pairs are ignored
	c.Observe("ba+*", -1, 800)
	c.Observe("ba+*", 100, 0)
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	// a nil calibration is inert
	var nilC *Calibration
	nilC.Observe("x", 1, 2)
	if nilC.Factor("x") != 1.0 || nilC.CorrectBytes("x", 10) != 10 {
		t.Error("nil calibration must be a no-op")
	}
}

func TestCalibrationClamps(t *testing.T) {
	c := NewCalibration()
	for i := 0; i < 50; i++ {
		c.Observe("op", 1, 1<<40) // absurd ratio, clamped at observation
	}
	if f := c.Factor("op"); f > calibFactorMax {
		t.Fatalf("factor = %v exceeds clamp %v", f, calibFactorMax)
	}
	c2 := NewCalibration()
	for i := 0; i < 50; i++ {
		c2.Observe("op", 1<<40, 1)
	}
	if f := c2.Factor("op"); f < calibFactorMin {
		t.Fatalf("factor = %v below clamp %v", f, calibFactorMin)
	}
}

func TestCalibrationSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "calibration.json")
	c := NewCalibration()
	for i := 0; i < 5; i++ {
		c.Observe("ba+*", 100, 400)
		c.Observe("tsmm", 100, 50)
	}
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	// deterministic serialization: saving identical state twice is
	// byte-identical
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	second, _ := os.ReadFile(path)
	if string(first) != string(second) {
		t.Error("repeated saves of identical state differ")
	}

	loaded := LoadCalibration(path)
	if got, want := loaded.Factor("ba+*"), c.Factor("ba+*"); got != want {
		t.Errorf("loaded ba+* factor = %v, want %v", got, want)
	}
	if got, want := loaded.Factor("tsmm"), c.Factor("tsmm"); got != want {
		t.Errorf("loaded tsmm factor = %v, want %v", got, want)
	}
	// missing and corrupt files degrade to an empty calibration
	if LoadCalibration(filepath.Join(dir, "missing.json")).Len() != 0 {
		t.Error("missing file must load empty")
	}
	os.WriteFile(path, []byte("{not json"), 0o644)
	if LoadCalibration(path).Len() != 0 {
		t.Error("corrupt file must load empty")
	}
}

// TestCalibrationShiftsCPDistCrossover is the acceptance test for the
// self-calibrating half of the adaptive runtime: synthetic PlanRecord history
// saying the static model underestimates matmult outputs 8x must flip an
// operator that statically fits the memory budget over the CP<->Dist gate.
func TestCalibrationShiftsCPDistCrossover(t *testing.T) {
	left, right := dc(256, 256), dc(256, 256)
	d, mm := matmultDAG(left, right)
	// budget sits just above the uncorrected estimate: CP without history
	budget := mm.MemEstimate + 1
	Plan(d, PlannerParams{MemBudget: budget, DistEnabled: true, Blocksize: 128})
	if mm.ExecType != types.ExecCP {
		t.Fatalf("uncalibrated plan = %s, want CP", mm.ExecType)
	}

	calib := NewCalibration()
	for i := 0; i < 5; i++ {
		calib.Observe("ba+*", 1000, 8000) // history: outputs 8x the estimate
	}
	d2, mm2 := matmultDAG(left, right)
	Plan(d2, PlannerParams{MemBudget: budget, DistEnabled: true, Blocksize: 128, Calib: calib})
	if mm2.ExecType != types.ExecDist {
		t.Fatalf("calibrated plan = %s, want DIST (crossover must shift)", mm2.ExecType)
	}
	if mm2.CostEst.OutputBytes <= mm.CostEst.OutputBytes {
		t.Errorf("corrected output estimate %d not above uncorrected %d",
			mm2.CostEst.OutputBytes, mm.CostEst.OutputBytes)
	}
}

// TestShuffleStageLatencyShiftsCrossover pins the satellite fix: near the
// gj<->sh break-even point, charging the sh strategy for its k sequential
// stages flips the decision to gj. At k=516 (blocksize 128) sh wins on pure
// movement bytes by ~4 KB, but its 5 stages cost 10 KB of latency.
func TestShuffleStageLatencyShiftsCrossover(t *testing.T) {
	const bs = 128
	budget := int64(16 << 10)
	left, right := dc(256, 516), dc(516, 128)
	sizeR := types.EstimateSize(right)
	outSize := types.EstimateSize(types.NewDataCharacteristics(256, 128, bs, -1))
	// preconditions of the scenario: sh beats gj on movement bytes alone
	// (sizeR < 2*sizeOut margin) but loses once stages are charged
	margin := sizeR - 2*outSize
	stages := gridDim(516, bs)
	if margin <= 0 || stages*shuffleStageLatencyBytes <= margin {
		t.Fatalf("scenario invalid: margin=%d stageCharge=%d", margin, stages*shuffleStageLatencyBytes)
	}
	if m, _ := ChooseMatMultStrategy(left, right, bs, budget); m != types.MMGridJoin {
		t.Errorf("strategy at k=516 = %s, want gj once stage latency is priced", m)
	}
	// far from the break-even point the latency term must not flip anything
	if m, _ := ChooseMatMultStrategy(dc(256, 768), dc(768, 128), bs, budget); m != types.MMShuffle {
		t.Errorf("strategy at k=768 = %s, want sh", m)
	}
}

// TestMachineProfileMeasureAndCache exercises the startup micro-benchmark and
// its disk cache.
func TestMachineProfileMeasureAndCache(t *testing.T) {
	if testing.Short() {
		t.Skip("micro-benchmark")
	}
	p := MeasureMachineProfile()
	if !p.Measured || p.GFLOPS <= 0 || p.MemBWBytes <= 0 || p.DispatchNs <= 0 {
		t.Fatalf("implausible profile: %+v", p)
	}
	path := filepath.Join(t.TempDir(), "profile.json")
	p1 := LoadOrMeasureProfile(path)
	if !p1.Measured {
		t.Fatal("first LoadOrMeasureProfile did not measure")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("profile not cached: %v", err)
	}
	p2 := LoadOrMeasureProfile(path)
	if p2 != p1 {
		t.Errorf("cached profile differs: %+v vs %+v", p2, p1)
	}
}

// TestProfileScoringPrefersFewerStages checks the seconds-based ranking: with
// a measured profile whose dispatch latency dominates, the chooser abandons
// the sh strategy for gj even where byte counts prefer sh.
func TestProfileScoringPrefersFewerStages(t *testing.T) {
	left, right := dc(256, 768), dc(768, 128)
	budget := int64(16 << 10)
	if m, _ := ChooseMatMultStrategy(left, right, 128, budget); m != types.MMShuffle {
		t.Fatal("precondition: byte scoring must pick sh at k=768")
	}
	slowDispatch := MachineProfile{Measured: true, GFLOPS: 10, MemBWBytes: 1e9, DispatchNs: 1e9}
	m, _ := ChooseMatMultStrategyCalibrated(left, right, 128, budget, nil, slowDispatch)
	if m != types.MMGridJoin {
		t.Errorf("strategy under second-based scoring with slow dispatch = %s, want gj", m)
	}
}
