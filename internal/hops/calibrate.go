package hops

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/systemds/systemds-go/internal/matrix"
)

// Calibration accumulates per-opcode correction factors from the
// estimated-vs-actual PlanRecord history: each observation is the ratio
// actual/estimated output bytes, folded into an exponentially weighted moving
// average. The planner multiplies its byte estimates by the factor, so an
// opcode the static model chronically under-prices (e.g. a sparse-input
// matmult that densifies) drifts its CP↔Dist and strategy crossovers toward
// reality. Because the corrected estimate is itself what later runs record
// against, the feedback is self-stabilizing: once corrected estimates match
// actuals the observed ratio returns to 1.
type Calibration struct {
	mu      sync.Mutex
	factors map[string]*opFactor
}

// opFactor is the persisted EWMA state for one opcode.
type opFactor struct {
	Ratio float64 `json:"ratio"`
	N     int64   `json:"n"`
}

const (
	// calibAlpha is the EWMA smoothing weight for new observations.
	calibAlpha = 0.25
	// calibMinObservations gates corrections: with fewer samples the factor
	// stays 1.0 so a single outlier cannot swing plans.
	calibMinObservations = 3
	// observation and factor clamps bound the damage of degenerate records
	// (zero estimates, empty outputs).
	calibObserveMin = 1.0 / 64
	calibObserveMax = 64.0
	calibFactorMin  = 1.0 / 16
	calibFactorMax  = 16.0
)

// NewCalibration returns an empty calibration.
func NewCalibration() *Calibration {
	return &Calibration{factors: map[string]*opFactor{}}
}

// Observe folds one estimated/actual byte pair for an opcode into the model.
// Non-positive pairs are ignored (nothing to learn from).
func (c *Calibration) Observe(op string, estBytes, actualBytes int64) {
	if c == nil || op == "" || estBytes <= 0 || actualBytes <= 0 {
		return
	}
	ratio := float64(actualBytes) / float64(estBytes)
	if ratio < calibObserveMin {
		ratio = calibObserveMin
	} else if ratio > calibObserveMax {
		ratio = calibObserveMax
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.factors[op]
	if !ok {
		c.factors[op] = &opFactor{Ratio: ratio, N: 1}
		return
	}
	f.Ratio = (1-calibAlpha)*f.Ratio + calibAlpha*ratio
	f.N++
}

// Factor returns the correction multiplier for an opcode: 1.0 until enough
// observations have accumulated, then the clamped EWMA ratio.
func (c *Calibration) Factor(op string) float64 {
	if c == nil {
		return 1.0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.factors[op]
	if !ok || f.N < calibMinObservations {
		return 1.0
	}
	r := f.Ratio
	if r < calibFactorMin {
		r = calibFactorMin
	} else if r > calibFactorMax {
		r = calibFactorMax
	}
	return r
}

// CorrectBytes applies the opcode's correction factor to a byte estimate.
func (c *Calibration) CorrectBytes(op string, est int64) int64 {
	if c == nil || est <= 0 {
		return est
	}
	f := c.Factor(op)
	if f == 1.0 {
		return est
	}
	corrected := int64(float64(est) * f)
	if corrected < 1 {
		corrected = 1
	}
	return corrected
}

// Len returns the number of opcodes with recorded history.
func (c *Calibration) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.factors)
}

// calibFile is the on-disk JSON shape: a sorted array, not a map, so the
// serialization is deterministic.
type calibFile struct {
	Version int          `json:"version"`
	Ops     []calibEntry `json:"ops"`
}

type calibEntry struct {
	Op    string  `json:"op"`
	Ratio float64 `json:"ratio"`
	N     int64   `json:"n"`
}

// Save writes the calibration state to path atomically (tmp + rename), with
// opcodes sorted so repeated saves of identical state are byte-identical.
func (c *Calibration) Save(path string) error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	ops := make([]string, 0, len(c.factors))
	for op := range c.factors {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	file := calibFile{Version: 1, Ops: make([]calibEntry, 0, len(ops))}
	for _, op := range ops {
		f := c.factors[op]
		file.Ops = append(file.Ops, calibEntry{Op: op, Ratio: f.Ratio, N: f.N})
	}
	c.mu.Unlock()
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("hops: calibration save: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("hops: calibration rename: %w", err)
	}
	return nil
}

// LoadCalibration reads calibration state from path. A missing or corrupt
// file yields a fresh empty calibration — adaptivity state is a cache, losing
// it only costs re-learning.
func LoadCalibration(path string) *Calibration {
	c := NewCalibration()
	data, err := os.ReadFile(path)
	if err != nil {
		return c
	}
	var file calibFile
	if json.Unmarshal(data, &file) != nil || file.Version != 1 {
		return c
	}
	for _, e := range file.Ops {
		if e.Op == "" || e.Ratio <= 0 || e.N <= 0 {
			continue
		}
		c.factors[e.Op] = &opFactor{Ratio: e.Ratio, N: e.N}
	}
	return c
}

// MachineProfile holds the measured hardware characteristics the cost model
// uses to price compute vs. data movement in comparable units of seconds.
// Measured=false means the profile is a placeholder and byte-count scoring
// should be used unchanged.
type MachineProfile struct {
	Measured   bool    `json:"measured"`
	GFLOPS     float64 `json:"gflops"`
	MemBWBytes float64 `json:"mem_bw_bytes_per_sec"`
	DispatchNs float64 `json:"dispatch_ns"`
}

// MeasureMachineProfile runs the one-time startup micro-benchmark: a small
// dense GEMM for sustained GFLOPs, a large memcpy for memory bandwidth, and a
// batch of tiny matmults for per-operation dispatch latency. It takes tens of
// milliseconds, which is why callers cache the result to disk with
// LoadOrMeasureProfile.
func MeasureMachineProfile() MachineProfile {
	const n = 256
	a := matrix.NewDense(n, n)
	b := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, float64(i+j%7)+0.5)
			b.Set(i, j, float64(i-j%5)+0.25)
		}
	}
	// best of three: the first iteration pays warm-up (page faults, frequency
	// ramp), later ones reflect sustained throughput
	bestGemm := time.Duration(1 << 62)
	for iter := 0; iter < 3; iter++ {
		start := time.Now()
		if _, err := matrix.Multiply(a, b, 1); err != nil {
			return MachineProfile{}
		}
		if d := time.Since(start); d < bestGemm {
			bestGemm = d
		}
	}
	flops := 2.0 * float64(n) * float64(n) * float64(n)
	gflops := flops / bestGemm.Seconds() / 1e9

	const bwBytes = 16 << 20
	src := make([]byte, bwBytes)
	dst := make([]byte, bwBytes)
	for i := range src {
		src[i] = byte(i)
	}
	bestCopy := time.Duration(1 << 62)
	for iter := 0; iter < 3; iter++ {
		start := time.Now()
		copy(dst, src)
		if d := time.Since(start); d < bestCopy {
			bestCopy = d
		}
	}
	// read + write traffic
	memBW := 2 * float64(bwBytes) / bestCopy.Seconds()

	tiny1 := matrix.NewDense(8, 8)
	tiny2 := matrix.NewDense(8, 8)
	const dispatchIters = 64
	start := time.Now()
	for iter := 0; iter < dispatchIters; iter++ {
		if _, err := matrix.Multiply(tiny1, tiny2, 1); err != nil {
			return MachineProfile{}
		}
	}
	dispatchNs := float64(time.Since(start).Nanoseconds()) / dispatchIters

	if gflops <= 0 || memBW <= 0 {
		return MachineProfile{}
	}
	return MachineProfile{Measured: true, GFLOPS: gflops, MemBWBytes: memBW, DispatchNs: dispatchNs}
}

// LoadOrMeasureProfile returns the cached machine profile at path, measuring
// and caching it on first use. Corrupt or unreadable caches are re-measured.
func LoadOrMeasureProfile(path string) MachineProfile {
	if data, err := os.ReadFile(path); err == nil {
		var p MachineProfile
		if json.Unmarshal(data, &p) == nil && p.Measured && p.GFLOPS > 0 && p.MemBWBytes > 0 {
			return p
		}
	}
	p := MeasureMachineProfile()
	if !p.Measured {
		return p
	}
	if data, err := json.MarshalIndent(p, "", "  "); err == nil {
		if dir := filepath.Dir(path); dir != "" {
			os.MkdirAll(dir, 0o755)
		}
		tmp := path + ".tmp"
		if os.WriteFile(tmp, data, 0o644) == nil {
			if os.Rename(tmp, path) != nil {
				os.Remove(tmp)
			}
		}
	}
	return p
}
