// Package tensor implements the TensorBlock operation library described in
// Section 2.4 of the SystemDS paper: linearized multi-dimensional arrays with
// a single value type (BasicTensorBlock) and heterogeneous data tensors with
// a schema on the second dimension (DataTensorBlock), together with the
// fixed-size blocking scheme used for distributed tensors.
package tensor

import (
	"fmt"
	"strconv"

	"github.com/systemds/systemds-go/internal/types"
)

// BasicTensorBlock is a homogeneous, linearized multi-dimensional array of a
// single value type. Numeric types are stored in a float64 backing array
// (with conversion on read for FP32/INT32/INT64/Boolean); strings are stored
// separately.
type BasicTensorBlock struct {
	vt      types.ValueType
	dims    []int
	data    []float64
	strings []string
	nnz     int64
}

// NewBasicTensor allocates a dense basic tensor of the given value type and
// dimensions, initialized to zeros (or empty strings).
func NewBasicTensor(vt types.ValueType, dims []int) *BasicTensorBlock {
	n := cells(dims)
	t := &BasicTensorBlock{vt: vt, dims: append([]int(nil), dims...)}
	if vt == types.String {
		t.strings = make([]string, n)
	} else {
		t.data = make([]float64, n)
	}
	return t
}

func cells(dims []int) int {
	n := 1
	for _, d := range dims {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d", d))
		}
		n *= d
	}
	return n
}

// ValueType returns the tensor's value type.
func (t *BasicTensorBlock) ValueType() types.ValueType { return t.vt }

// Dims returns a copy of the tensor's dimensions.
func (t *BasicTensorBlock) Dims() []int { return append([]int(nil), t.dims...) }

// NumDims returns the number of dimensions.
func (t *BasicTensorBlock) NumDims() int { return len(t.dims) }

// NumCells returns the total number of cells.
func (t *BasicTensorBlock) NumCells() int { return cells(t.dims) }

// NNZ returns the number of non-zero (or non-empty) cells.
func (t *BasicTensorBlock) NNZ() int64 { return t.nnz }

// offset converts an n-dimensional index into the linearized offset
// (row-major / last dimension fastest).
func (t *BasicTensorBlock) offset(ix []int) int {
	if len(ix) != len(t.dims) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(ix), len(t.dims)))
	}
	off := 0
	for i, d := range t.dims {
		if ix[i] < 0 || ix[i] >= d {
			panic(fmt.Sprintf("tensor: index %v out of bounds %v", ix, t.dims))
		}
		off = off*d + ix[i]
	}
	return off
}

// Get returns the numeric value at the given index. For string tensors it
// attempts to parse the string as a float and returns NaN-free 0 on failure.
func (t *BasicTensorBlock) Get(ix ...int) float64 {
	off := t.offset(ix)
	if t.vt == types.String {
		v, err := strconv.ParseFloat(t.strings[off], 64)
		if err != nil {
			return 0
		}
		return v
	}
	return t.data[off]
}

// GetString returns the cell value rendered as a string.
func (t *BasicTensorBlock) GetString(ix ...int) string {
	off := t.offset(ix)
	if t.vt == types.String {
		return t.strings[off]
	}
	return formatValue(t.data[off], t.vt)
}

// Set assigns a numeric value at the given index, applying value-type
// coercion (truncation for integer types, 0/1 for booleans).
func (t *BasicTensorBlock) Set(v float64, ix ...int) {
	off := t.offset(ix)
	v = coerce(v, t.vt)
	if t.vt == types.String {
		old := t.strings[off]
		t.strings[off] = formatValue(v, types.FP64)
		t.updateNNZString(old, t.strings[off])
		return
	}
	old := t.data[off]
	t.data[off] = v
	t.updateNNZ(old, v)
}

// SetString assigns a string value at the given index. Non-string tensors
// parse the value.
func (t *BasicTensorBlock) SetString(s string, ix ...int) error {
	off := t.offset(ix)
	if t.vt == types.String {
		old := t.strings[off]
		t.strings[off] = s
		t.updateNNZString(old, s)
		return nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return fmt.Errorf("tensor: cannot parse %q as %s: %w", s, t.vt, err)
	}
	old := t.data[off]
	t.data[off] = coerce(v, t.vt)
	t.updateNNZ(old, t.data[off])
	return nil
}

func (t *BasicTensorBlock) updateNNZ(old, new float64) {
	if old == 0 && new != 0 {
		t.nnz++
	} else if old != 0 && new == 0 {
		t.nnz--
	}
}

func (t *BasicTensorBlock) updateNNZString(old, new string) {
	if old == "" && new != "" {
		t.nnz++
	} else if old != "" && new == "" {
		t.nnz--
	}
}

func coerce(v float64, vt types.ValueType) float64 {
	switch vt {
	case types.INT64, types.INT32:
		return float64(int64(v))
	case types.Boolean:
		if v != 0 {
			return 1
		}
		return 0
	case types.FP32:
		return float64(float32(v))
	default:
		return v
	}
}

func formatValue(v float64, vt types.ValueType) string {
	switch vt {
	case types.INT64, types.INT32:
		return strconv.FormatInt(int64(v), 10)
	case types.Boolean:
		if v != 0 {
			return "true"
		}
		return "false"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// Copy returns a deep copy of the tensor.
func (t *BasicTensorBlock) Copy() *BasicTensorBlock {
	cp := &BasicTensorBlock{vt: t.vt, dims: append([]int(nil), t.dims...), nnz: t.nnz}
	if t.data != nil {
		cp.data = append([]float64(nil), t.data...)
	}
	if t.strings != nil {
		cp.strings = append([]string(nil), t.strings...)
	}
	return cp
}

// Reshape changes the dimensions of the tensor; the cell count must match.
func (t *BasicTensorBlock) Reshape(dims []int) error {
	if cells(dims) != t.NumCells() {
		return fmt.Errorf("tensor: reshape %v -> %v changes cell count", t.dims, dims)
	}
	t.dims = append([]int(nil), dims...)
	return nil
}

// Fill sets every cell to the given value.
func (t *BasicTensorBlock) Fill(v float64) {
	v = coerce(v, t.vt)
	if t.vt == types.String {
		s := formatValue(v, types.FP64)
		for i := range t.strings {
			t.strings[i] = s
		}
		if s == "" {
			t.nnz = 0
		} else {
			t.nnz = int64(len(t.strings))
		}
		return
	}
	for i := range t.data {
		t.data[i] = v
	}
	if v == 0 {
		t.nnz = 0
	} else {
		t.nnz = int64(len(t.data))
	}
}

// Equals reports whether two tensors have identical type, shape and cells.
func (t *BasicTensorBlock) Equals(o *BasicTensorBlock) bool {
	if t.vt != o.vt || len(t.dims) != len(o.dims) {
		return false
	}
	for i := range t.dims {
		if t.dims[i] != o.dims[i] {
			return false
		}
	}
	if t.vt == types.String {
		for i := range t.strings {
			if t.strings[i] != o.strings[i] {
				return false
			}
		}
		return true
	}
	for i := range t.data {
		if t.data[i] != o.data[i] {
			return false
		}
	}
	return true
}

// UnaryApply applies fn cell-wise and returns a new tensor of the same shape
// (numeric tensors only).
func (t *BasicTensorBlock) UnaryApply(fn func(float64) float64) (*BasicTensorBlock, error) {
	if t.vt == types.String {
		return nil, fmt.Errorf("tensor: unary op unsupported on string tensors")
	}
	out := NewBasicTensor(t.vt, t.dims)
	for i, v := range t.data {
		out.data[i] = coerce(fn(v), t.vt)
		if out.data[i] != 0 {
			out.nnz++
		}
	}
	return out, nil
}

// BinaryApply applies fn cell-wise between two tensors of identical shape.
func (t *BasicTensorBlock) BinaryApply(o *BasicTensorBlock, fn func(a, b float64) float64) (*BasicTensorBlock, error) {
	if t.vt == types.String || o.vt == types.String {
		return nil, fmt.Errorf("tensor: binary op unsupported on string tensors")
	}
	if len(t.dims) != len(o.dims) {
		return nil, fmt.Errorf("tensor: rank mismatch %v vs %v", t.dims, o.dims)
	}
	for i := range t.dims {
		if t.dims[i] != o.dims[i] {
			return nil, fmt.Errorf("tensor: shape mismatch %v vs %v", t.dims, o.dims)
		}
	}
	vt := t.vt
	if o.vt == types.FP64 || vt != types.FP64 && o.vt != vt {
		vt = types.FP64
	}
	out := NewBasicTensor(vt, t.dims)
	for i := range t.data {
		out.data[i] = coerce(fn(t.data[i], o.data[i]), vt)
		if out.data[i] != 0 {
			out.nnz++
		}
	}
	return out, nil
}

// Sum returns the sum of all numeric cells.
func (t *BasicTensorBlock) Sum() float64 {
	var s float64
	for _, v := range t.data {
		s += v
	}
	return s
}

// Slice returns the sub-tensor covering [lower[i], upper[i]) in every
// dimension.
func (t *BasicTensorBlock) Slice(lower, upper []int) (*BasicTensorBlock, error) {
	if len(lower) != len(t.dims) || len(upper) != len(t.dims) {
		return nil, fmt.Errorf("tensor: slice rank mismatch")
	}
	outDims := make([]int, len(t.dims))
	for i := range t.dims {
		if lower[i] < 0 || upper[i] > t.dims[i] || lower[i] > upper[i] {
			return nil, fmt.Errorf("tensor: slice range [%d,%d) out of bounds for dim %d of size %d", lower[i], upper[i], i, t.dims[i])
		}
		outDims[i] = upper[i] - lower[i]
	}
	out := NewBasicTensor(t.vt, outDims)
	// iterate over all output cells
	ix := make([]int, len(outDims))
	srcIx := make([]int, len(outDims))
	for {
		for i := range ix {
			srcIx[i] = ix[i] + lower[i]
		}
		if t.vt == types.String {
			_ = out.SetString(t.GetString(srcIx...), ix...)
		} else {
			out.Set(t.Get(srcIx...), ix...)
		}
		// advance multi-index
		d := len(ix) - 1
		for d >= 0 {
			ix[d]++
			if ix[d] < outDims[d] {
				break
			}
			ix[d] = 0
			d--
		}
		if d < 0 {
			break
		}
	}
	return out, nil
}

// ToMatrixData converts a 2D numeric tensor to a row-major float64 slice with
// its dimensions; used for interoperation with the matrix package.
func (t *BasicTensorBlock) ToMatrixData() (rows, cols int, data []float64, err error) {
	if len(t.dims) != 2 {
		return 0, 0, nil, fmt.Errorf("tensor: expected 2 dimensions, got %d", len(t.dims))
	}
	if t.vt == types.String {
		return 0, 0, nil, fmt.Errorf("tensor: cannot convert string tensor to matrix")
	}
	return t.dims[0], t.dims[1], append([]float64(nil), t.data...), nil
}

// FromMatrixData builds a 2D FP64 tensor from a row-major float64 slice.
func FromMatrixData(rows, cols int, data []float64) *BasicTensorBlock {
	t := NewBasicTensor(types.FP64, []int{rows, cols})
	copy(t.data, data)
	for _, v := range t.data {
		if v != 0 {
			t.nnz++
		}
	}
	return t
}

// String renders tensor metadata.
func (t *BasicTensorBlock) String() string {
	return fmt.Sprintf("BasicTensorBlock[%s, dims=%v, nnz=%d]", t.vt, t.dims, t.nnz)
}
