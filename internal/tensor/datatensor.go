package tensor

import (
	"fmt"

	"github.com/systemds/systemds-go/internal/types"
)

// DataTensorBlock is a heterogeneous tensor: a multi-dimensional array where
// the second dimension carries a schema (Figure 4(a) of the paper). It
// generalizes 2D datasets (frames) to n dimensions and is internally composed
// of one BasicTensorBlock per schema column, each covering the remaining
// dimensions.
type DataTensorBlock struct {
	schema types.Schema
	dims   []int // full dims; dims[1] == len(schema)
	cols   []*BasicTensorBlock
}

// NewDataTensor creates a data tensor with the given schema and dimensions.
// dims[1] must equal the schema length.
func NewDataTensor(schema types.Schema, dims []int) (*DataTensorBlock, error) {
	if len(dims) < 2 {
		return nil, fmt.Errorf("tensor: data tensor needs at least 2 dimensions, got %d", len(dims))
	}
	if dims[1] != len(schema) {
		return nil, fmt.Errorf("tensor: schema length %d does not match second dimension %d", len(schema), dims[1])
	}
	colDims := append([]int{dims[0]}, dims[2:]...)
	cols := make([]*BasicTensorBlock, len(schema))
	for i, vt := range schema {
		cols[i] = NewBasicTensor(vt, colDims)
	}
	return &DataTensorBlock{schema: append(types.Schema(nil), schema...), dims: append([]int(nil), dims...), cols: cols}, nil
}

// Schema returns the schema of the second dimension.
func (d *DataTensorBlock) Schema() types.Schema { return append(types.Schema(nil), d.schema...) }

// Dims returns the full dimensions of the data tensor.
func (d *DataTensorBlock) Dims() []int { return append([]int(nil), d.dims...) }

// NumCells returns the total number of cells.
func (d *DataTensorBlock) NumCells() int { return cells(d.dims) }

// column validates and returns the basic tensor backing schema column c.
func (d *DataTensorBlock) column(c int) (*BasicTensorBlock, error) {
	if c < 0 || c >= len(d.cols) {
		return nil, fmt.Errorf("tensor: schema column %d out of bounds (%d columns)", c, len(d.cols))
	}
	return d.cols[c], nil
}

// colIndex converts a full tensor index into (schema column, per-column
// index): the second dimension selects the column, all other dimensions index
// into the column tensor.
func (d *DataTensorBlock) colIndex(ix []int) (int, []int, error) {
	if len(ix) != len(d.dims) {
		return 0, nil, fmt.Errorf("tensor: index rank %d does not match tensor rank %d", len(ix), len(d.dims))
	}
	c := ix[1]
	sub := append([]int{ix[0]}, ix[2:]...)
	return c, sub, nil
}

// Get returns the numeric value at the given full index.
func (d *DataTensorBlock) Get(ix ...int) (float64, error) {
	c, sub, err := d.colIndex(ix)
	if err != nil {
		return 0, err
	}
	col, err := d.column(c)
	if err != nil {
		return 0, err
	}
	return col.Get(sub...), nil
}

// GetString returns the cell rendered as a string.
func (d *DataTensorBlock) GetString(ix ...int) (string, error) {
	c, sub, err := d.colIndex(ix)
	if err != nil {
		return "", err
	}
	col, err := d.column(c)
	if err != nil {
		return "", err
	}
	return col.GetString(sub...), nil
}

// Set assigns a numeric value at the given full index.
func (d *DataTensorBlock) Set(v float64, ix ...int) error {
	c, sub, err := d.colIndex(ix)
	if err != nil {
		return err
	}
	col, err := d.column(c)
	if err != nil {
		return err
	}
	col.Set(v, sub...)
	return nil
}

// SetString assigns a string value at the given full index.
func (d *DataTensorBlock) SetString(s string, ix ...int) error {
	c, sub, err := d.colIndex(ix)
	if err != nil {
		return err
	}
	col, err := d.column(c)
	if err != nil {
		return err
	}
	return col.SetString(s, sub...)
}

// Column returns the BasicTensorBlock backing schema column c.
func (d *DataTensorBlock) Column(c int) (*BasicTensorBlock, error) { return d.column(c) }

// NNZ returns the total number of non-zero / non-empty cells.
func (d *DataTensorBlock) NNZ() int64 {
	var n int64
	for _, c := range d.cols {
		n += c.NNZ()
	}
	return n
}

// Copy returns a deep copy of the data tensor.
func (d *DataTensorBlock) Copy() *DataTensorBlock {
	cols := make([]*BasicTensorBlock, len(d.cols))
	for i, c := range d.cols {
		cols[i] = c.Copy()
	}
	return &DataTensorBlock{schema: d.Schema(), dims: append([]int(nil), d.dims...), cols: cols}
}

// String renders metadata about the data tensor.
func (d *DataTensorBlock) String() string {
	return fmt.Sprintf("DataTensorBlock[dims=%v, schema=%s]", d.dims, d.schema)
}
