package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/systemds/systemds-go/internal/types"
)

func TestBasicTensorSetGet(t *testing.T) {
	bt := NewBasicTensor(types.FP64, []int{2, 3, 4})
	if bt.NumCells() != 24 || bt.NumDims() != 3 {
		t.Fatalf("cells=%d dims=%d", bt.NumCells(), bt.NumDims())
	}
	bt.Set(3.5, 1, 2, 3)
	if got := bt.Get(1, 2, 3); got != 3.5 {
		t.Errorf("Get = %v", got)
	}
	if bt.NNZ() != 1 {
		t.Errorf("NNZ = %d", bt.NNZ())
	}
	bt.Set(0, 1, 2, 3)
	if bt.NNZ() != 0 {
		t.Errorf("NNZ after clear = %d", bt.NNZ())
	}
}

func TestBasicTensorValueTypeCoercion(t *testing.T) {
	it := NewBasicTensor(types.INT64, []int{2, 2})
	it.Set(3.7, 0, 0)
	if got := it.Get(0, 0); got != 3 {
		t.Errorf("int tensor coercion = %v, want 3", got)
	}
	bt := NewBasicTensor(types.Boolean, []int{2, 2})
	bt.Set(5, 1, 1)
	if got := bt.Get(1, 1); got != 1 {
		t.Errorf("bool tensor coercion = %v, want 1", got)
	}
	ft := NewBasicTensor(types.FP32, []int{1, 1})
	ft.Set(1.00000000001, 0, 0)
	if got := ft.Get(0, 0); got != float64(float32(1.00000000001)) {
		t.Errorf("fp32 coercion = %v", got)
	}
}

func TestStringTensor(t *testing.T) {
	st := NewBasicTensor(types.String, []int{2, 2})
	if err := st.SetString("hello", 0, 1); err != nil {
		t.Fatal(err)
	}
	if got := st.GetString(0, 1); got != "hello" {
		t.Errorf("GetString = %q", got)
	}
	if st.NNZ() != 1 {
		t.Errorf("NNZ = %d", st.NNZ())
	}
	if err := st.SetString("2.5", 1, 1); err != nil {
		t.Fatal(err)
	}
	if got := st.Get(1, 1); got != 2.5 {
		t.Errorf("numeric read of string cell = %v", got)
	}
	// non-numeric read returns 0
	if got := st.Get(0, 1); got != 0 {
		t.Errorf("numeric read of non-numeric string = %v", got)
	}
	it := NewBasicTensor(types.INT64, []int{1, 1})
	if err := it.SetString("42", 0, 0); err != nil {
		t.Fatal(err)
	}
	if it.Get(0, 0) != 42 {
		t.Error("SetString on int tensor failed")
	}
	if err := it.SetString("abc", 0, 0); err == nil {
		t.Error("expected parse error")
	}
}

func TestTensorGetStringFormatting(t *testing.T) {
	it := NewBasicTensor(types.INT64, []int{1, 1})
	it.Set(7, 0, 0)
	if got := it.GetString(0, 0); got != "7" {
		t.Errorf("int GetString = %q", got)
	}
	bt := NewBasicTensor(types.Boolean, []int{1, 1})
	bt.Set(1, 0, 0)
	if got := bt.GetString(0, 0); got != "true" {
		t.Errorf("bool GetString = %q", got)
	}
}

func TestTensorCopyFillEquals(t *testing.T) {
	a := NewBasicTensor(types.FP64, []int{3, 3})
	a.Fill(2)
	if a.NNZ() != 9 || a.Sum() != 18 {
		t.Errorf("fill: nnz=%d sum=%v", a.NNZ(), a.Sum())
	}
	b := a.Copy()
	if !a.Equals(b) {
		t.Error("copy should equal original")
	}
	b.Set(5, 0, 0)
	if a.Equals(b) {
		t.Error("modified copy should differ")
	}
	if a.Get(0, 0) != 2 {
		t.Error("copy not independent")
	}
	a.Fill(0)
	if a.NNZ() != 0 {
		t.Error("fill(0) should reset nnz")
	}
}

func TestTensorReshape(t *testing.T) {
	a := NewBasicTensor(types.FP64, []int{2, 6})
	a.Set(1, 1, 5)
	if err := a.Reshape([]int{3, 4}); err != nil {
		t.Fatal(err)
	}
	if a.NumDims() != 2 || a.Dims()[0] != 3 {
		t.Error("reshape dims wrong")
	}
	if err := a.Reshape([]int{5, 5}); err == nil {
		t.Error("expected cell count mismatch error")
	}
}

func TestTensorUnaryBinary(t *testing.T) {
	a := NewBasicTensor(types.FP64, []int{2, 2})
	a.Fill(4)
	sq, err := a.UnaryApply(math.Sqrt)
	if err != nil {
		t.Fatal(err)
	}
	if sq.Get(0, 0) != 2 {
		t.Errorf("sqrt = %v", sq.Get(0, 0))
	}
	b := NewBasicTensor(types.FP64, []int{2, 2})
	b.Fill(3)
	sum, err := a.BinaryApply(b, func(x, y float64) float64 { return x + y })
	if err != nil {
		t.Fatal(err)
	}
	if sum.Get(1, 1) != 7 {
		t.Errorf("binary add = %v", sum.Get(1, 1))
	}
	if _, err := a.BinaryApply(NewBasicTensor(types.FP64, []int{3, 3}), func(x, y float64) float64 { return x }); err == nil {
		t.Error("expected shape mismatch error")
	}
	st := NewBasicTensor(types.String, []int{2, 2})
	if _, err := st.UnaryApply(math.Sqrt); err == nil {
		t.Error("expected error on string tensor")
	}
}

func TestTensorSlice(t *testing.T) {
	a := NewBasicTensor(types.FP64, []int{4, 4})
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			a.Set(float64(r*4+c), r, c)
		}
	}
	s, err := a.Slice([]int{1, 1}, []int{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Dims()[0] != 2 || s.Get(0, 0) != 5 || s.Get(1, 1) != 10 {
		t.Errorf("slice = %v get(0,0)=%v", s.Dims(), s.Get(0, 0))
	}
	if _, err := a.Slice([]int{0, 0}, []int{5, 5}); err == nil {
		t.Error("expected out of bounds error")
	}
	if _, err := a.Slice([]int{0}, []int{1}); err == nil {
		t.Error("expected rank mismatch error")
	}
}

func TestTensorMatrixInterop(t *testing.T) {
	a := FromMatrixData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	rows, cols, data, err := a.ToMatrixData()
	if err != nil {
		t.Fatal(err)
	}
	if rows != 2 || cols != 3 || data[5] != 6 {
		t.Errorf("roundtrip %dx%d %v", rows, cols, data)
	}
	nd := NewBasicTensor(types.FP64, []int{2, 2, 2})
	if _, _, _, err := nd.ToMatrixData(); err == nil {
		t.Error("expected error for 3d tensor")
	}
}

func TestDataTensor(t *testing.T) {
	schema := types.Schema{types.FP64, types.String, types.INT64}
	dt, err := NewDataTensor(schema, []int{4, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !dt.Schema().Equal(schema) {
		t.Error("schema mismatch")
	}
	if err := dt.Set(1.5, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := dt.SetString("abc", 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := dt.Set(7, 2, 2); err != nil {
		t.Fatal(err)
	}
	if v, _ := dt.Get(0, 0); v != 1.5 {
		t.Errorf("Get(0,0) = %v", v)
	}
	if s, _ := dt.GetString(1, 1); s != "abc" {
		t.Errorf("GetString(1,1) = %q", s)
	}
	if v, _ := dt.Get(2, 2); v != 7 {
		t.Errorf("Get(2,2) = %v", v)
	}
	if dt.NNZ() != 3 {
		t.Errorf("NNZ = %d", dt.NNZ())
	}
	cp := dt.Copy()
	_ = cp.Set(9, 0, 0)
	if v, _ := dt.Get(0, 0); v != 1.5 {
		t.Error("copy not independent")
	}
	col, err := dt.Column(2)
	if err != nil {
		t.Fatal(err)
	}
	if col.ValueType() != types.INT64 {
		t.Error("column value type wrong")
	}
	if _, err := dt.Get(0, 9); err == nil {
		t.Error("expected out of bounds column error")
	}
}

func TestDataTensor3D(t *testing.T) {
	// appliances x features x time (Figure 4(a))
	schema := types.Schema{types.FP64, types.Boolean}
	dt, err := NewDataTensor(schema, []int{3, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := dt.Set(2.5, 1, 0, 4); err != nil {
		t.Fatal(err)
	}
	if err := dt.Set(1, 2, 1, 0); err != nil {
		t.Fatal(err)
	}
	if v, _ := dt.Get(1, 0, 4); v != 2.5 {
		t.Errorf("Get = %v", v)
	}
	if v, _ := dt.Get(2, 1, 0); v != 1 {
		t.Errorf("bool column Get = %v", v)
	}
	if dt.NumCells() != 30 {
		t.Errorf("cells = %d", dt.NumCells())
	}
}

func TestDataTensorErrors(t *testing.T) {
	if _, err := NewDataTensor(types.Schema{types.FP64}, []int{4}); err == nil {
		t.Error("expected error for 1-d data tensor")
	}
	if _, err := NewDataTensor(types.Schema{types.FP64, types.FP64}, []int{4, 3}); err == nil {
		t.Error("expected schema length mismatch error")
	}
}

func TestBlockSizesScheme(t *testing.T) {
	want := map[int]int{1: 1024, 2: 1024, 3: 128, 4: 32, 5: 16, 6: 8, 7: 8}
	for nd, bs := range want {
		if got := BlockSizes(nd); got != bs {
			t.Errorf("BlockSizes(%d) = %d, want %d", nd, got, bs)
		}
	}
}

func TestBlockAndUnblockRoundTrip(t *testing.T) {
	a := NewBasicTensor(types.FP64, []int{5, 7})
	for r := 0; r < 5; r++ {
		for c := 0; c < 7; c++ {
			a.Set(float64(r*7+c+1), r, c)
		}
	}
	bt, err := BlockTensor(a)
	if err != nil {
		t.Fatal(err)
	}
	if bt.NumBlocks() != 1 { // 5x7 fits inside one 1024x1024 block
		t.Errorf("NumBlocks = %d, want 1", bt.NumBlocks())
	}
	back, err := bt.Unblock()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equals(a) {
		t.Error("unblock did not recover original tensor")
	}
}

func TestBlockTensor3D(t *testing.T) {
	a := NewBasicTensor(types.FP64, []int{130, 2, 3})
	a.Set(9, 129, 1, 2)
	a.Set(4, 0, 0, 0)
	bt, err := BlockTensor(a)
	if err != nil {
		t.Fatal(err)
	}
	// 3D blocking uses 128^3 blocks, so dimension 0 splits into 2 blocks
	if bt.Blocksize != 128 {
		t.Errorf("blocksize = %d, want 128", bt.Blocksize)
	}
	if bt.NumBlocks() != 2 {
		t.Errorf("NumBlocks = %d, want 2", bt.NumBlocks())
	}
	back, err := bt.Unblock()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equals(a) {
		t.Error("3d unblock did not recover original tensor")
	}
}

func TestReblockTo3D(t *testing.T) {
	a := NewBasicTensor(types.FP64, []int{200, 300})
	a.Set(5, 150, 250)
	a.Set(7, 0, 0)
	bt, err := BlockTensor(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := ReblockTo3D(bt)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Blocksize != 128 {
		t.Errorf("reblocked blocksize = %d", rb.Blocksize)
	}
	// 200x300 with 128-blocking -> 2x3 = 6 blocks
	if rb.NumBlocks() != 6 {
		t.Errorf("NumBlocks = %d, want 6", rb.NumBlocks())
	}
	back, err := rb.Unblock()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equals(a) {
		t.Error("reblocked unblock did not recover original tensor")
	}
}

func TestPropertyBlockUnblockIdentity(t *testing.T) {
	f := func(r, c uint8, seed int64) bool {
		rows := int(r%40) + 1
		cols := int(c%40) + 1
		a := NewBasicTensor(types.FP64, []int{rows, cols})
		s := seed
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				s = s*6364136223846793005 + 1442695040888963407
				a.Set(float64(s%17), i, j)
			}
		}
		bt, err := BlockTensor(a)
		if err != nil {
			return false
		}
		back, err := bt.Unblock()
		if err != nil {
			return false
		}
		return back.Equals(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
