package tensor

import (
	"fmt"
	"sort"

	"github.com/systemds/systemds-go/internal/types"
)

// BlockSizes returns the per-dimension block side length for an n-dimensional
// tensor following the paper's scheme of exponentially decreasing block sizes
// (1024^2, 128^3, 32^4, 16^5, 8^6, 8^7, ...), which bounds the block size to
// a few megabytes and allows local conversion between blockings.
func BlockSizes(ndims int) int {
	switch {
	case ndims <= 2:
		return 1024
	case ndims == 3:
		return 128
	case ndims == 4:
		return 32
	case ndims == 5:
		return 16
	default:
		return 8
	}
}

// BlockIndex identifies one block of a blocked (distributed) tensor by its
// per-dimension block coordinates.
type BlockIndex struct {
	Ix string // canonical "i,j,k" encoding so the index is usable as a map key
}

// NewBlockIndex builds a BlockIndex from per-dimension coordinates.
func NewBlockIndex(coords ...int) BlockIndex {
	s := ""
	for i, c := range coords {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprint(c)
	}
	return BlockIndex{Ix: s}
}

// BlockedTensor is the local stand-in for the paper's distributed tensor: a
// collection of fixed-size, independently encoded blocks keyed by their block
// index (PairRDD<TensorIndexes, TensorBlock> in SystemDS).
type BlockedTensor struct {
	Dims      []int
	Blocksize int
	Blocks    map[BlockIndex]*BasicTensorBlock
}

// BlockTensor splits a basic tensor into fixed-size blocks following the
// n-dimensional blocking scheme.
func BlockTensor(t *BasicTensorBlock) (*BlockedTensor, error) {
	dims := t.Dims()
	bs := BlockSizes(len(dims))
	bt := &BlockedTensor{Dims: dims, Blocksize: bs, Blocks: map[BlockIndex]*BasicTensorBlock{}}
	nblocks := make([]int, len(dims))
	for i, d := range dims {
		nblocks[i] = (d + bs - 1) / bs
		if nblocks[i] == 0 {
			nblocks[i] = 1
		}
	}
	coords := make([]int, len(dims))
	for {
		lower := make([]int, len(dims))
		upper := make([]int, len(dims))
		for i := range dims {
			lower[i] = coords[i] * bs
			upper[i] = lower[i] + bs
			if upper[i] > dims[i] {
				upper[i] = dims[i]
			}
		}
		blk, err := t.Slice(lower, upper)
		if err != nil {
			return nil, err
		}
		bt.Blocks[NewBlockIndex(coords...)] = blk
		// advance block coordinates
		d := len(coords) - 1
		for d >= 0 {
			coords[d]++
			if coords[d] < nblocks[d] {
				break
			}
			coords[d] = 0
			d--
		}
		if d < 0 {
			break
		}
	}
	return bt, nil
}

// NumBlocks returns the number of blocks.
func (bt *BlockedTensor) NumBlocks() int { return len(bt.Blocks) }

// Unblock reassembles the blocked tensor into a single basic tensor.
func (bt *BlockedTensor) Unblock() (*BasicTensorBlock, error) {
	out := NewBasicTensor(vtOf(bt), bt.Dims)
	keys := make([]BlockIndex, 0, len(bt.Blocks))
	for k := range bt.Blocks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Ix < keys[j].Ix })
	for _, k := range keys {
		blk := bt.Blocks[k]
		coords, err := parseCoords(k.Ix, len(bt.Dims))
		if err != nil {
			return nil, err
		}
		bdims := blk.Dims()
		ix := make([]int, len(bt.Dims))
		outIx := make([]int, len(bt.Dims))
		for {
			for i := range ix {
				outIx[i] = coords[i]*bt.Blocksize + ix[i]
			}
			out.Set(blk.Get(ix...), outIx...)
			d := len(ix) - 1
			for d >= 0 {
				ix[d]++
				if ix[d] < bdims[d] {
					break
				}
				ix[d] = 0
				d--
			}
			if d < 0 {
				break
			}
		}
	}
	return out, nil
}

func vtOf(bt *BlockedTensor) types.ValueType {
	for _, b := range bt.Blocks {
		return b.ValueType()
	}
	return types.FP64
}

func parseCoords(s string, n int) ([]int, error) {
	coords := make([]int, 0, n)
	cur := 0
	has := false
	for i := 0; i < len(s); i++ {
		if s[i] == ',' {
			coords = append(coords, cur)
			cur = 0
			has = false
			continue
		}
		if s[i] < '0' || s[i] > '9' {
			return nil, fmt.Errorf("tensor: invalid block index %q", s)
		}
		cur = cur*10 + int(s[i]-'0')
		has = true
	}
	if has || len(s) == 0 {
		coords = append(coords, cur)
	}
	if len(coords) != n {
		return nil, fmt.Errorf("tensor: block index %q has %d coords, want %d", s, len(coords), n)
	}
	return coords, nil
}

// ReblockTo3D converts a 2D blocked tensor (1024^2 blocks) into a 3D-aligned
// blocking (128^3): each 1024x1024 block is split into 8x8=64 sub-blocks of
// 128x128, matching the paper's example of local conversion between the
// exponentially decreasing blockings.
func ReblockTo3D(bt *BlockedTensor) (*BlockedTensor, error) {
	if len(bt.Dims) != 2 {
		return nil, fmt.Errorf("tensor: ReblockTo3D expects a 2D blocked tensor, got %d dims", len(bt.Dims))
	}
	newBS := BlockSizes(3)
	out := &BlockedTensor{Dims: bt.Dims, Blocksize: newBS, Blocks: map[BlockIndex]*BasicTensorBlock{}}
	for k, blk := range bt.Blocks {
		coords, err := parseCoords(k.Ix, 2)
		if err != nil {
			return nil, err
		}
		bdims := blk.Dims()
		for r0 := 0; r0 < bdims[0]; r0 += newBS {
			for c0 := 0; c0 < bdims[1]; c0 += newBS {
				r1 := r0 + newBS
				if r1 > bdims[0] {
					r1 = bdims[0]
				}
				c1 := c0 + newBS
				if c1 > bdims[1] {
					c1 = bdims[1]
				}
				sub, err := blk.Slice([]int{r0, c0}, []int{r1, c1})
				if err != nil {
					return nil, err
				}
				globalR := (coords[0]*bt.Blocksize + r0) / newBS
				globalC := (coords[1]*bt.Blocksize + c0) / newBS
				out.Blocks[NewBlockIndex(globalR, globalC)] = sub
			}
		}
	}
	return out, nil
}
