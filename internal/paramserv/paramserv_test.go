package paramserv

import (
	"errors"
	"testing"

	"github.com/systemds/systemds-go/internal/matrix"
)

func TestTrainBSPLinRegConverges(t *testing.T) {
	x, y := matrix.SyntheticRegression(1000, 10, 1.0, 1)
	init := matrix.NewDense(10, 1)
	initLoss, _ := SquaredLoss(init, x, y)
	model, stats, err := Train(x, y, init, LinRegGradient(), Config{
		Workers: 4, Epochs: 20, BatchSize: 64, LearnRate: 0.5, Mode: BSP,
	})
	if err != nil {
		t.Fatal(err)
	}
	loss, err := SquaredLoss(model, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if loss >= initLoss/10 {
		t.Errorf("BSP did not converge: initial %v, final %v", initLoss, loss)
	}
	if stats.Updates == 0 || stats.Epochs != 20 || stats.WorkerRuns == 0 {
		t.Errorf("stats = %+v", stats)
	}
	// initial model untouched (Train copies)
	if init.NNZ() != 0 {
		t.Error("initial model mutated")
	}
}

func TestTrainASPLinRegConverges(t *testing.T) {
	x, y := matrix.SyntheticRegression(1000, 10, 1.0, 2)
	init := matrix.NewDense(10, 1)
	initLoss, _ := SquaredLoss(init, x, y)
	model, stats, err := Train(x, y, init, LinRegGradient(), Config{
		Workers: 4, Epochs: 20, BatchSize: 64, LearnRate: 0.2, Mode: ASP,
	})
	if err != nil {
		t.Fatal(err)
	}
	loss, _ := SquaredLoss(model, x, y)
	if loss >= initLoss/10 {
		t.Errorf("ASP did not converge: initial %v, final %v", initLoss, loss)
	}
	if stats.WorkerRuns == 0 {
		t.Error("no worker runs recorded")
	}
}

func TestTrainLogReg(t *testing.T) {
	x, y := matrix.SyntheticClassification(800, 6, 1.0, 3)
	init := matrix.NewDense(6, 1)
	model, _, err := Train(x, y, init, LogRegGradient(), Config{
		Workers: 3, Epochs: 30, BatchSize: 32, LearnRate: 1.0, Mode: BSP,
	})
	if err != nil {
		t.Fatal(err)
	}
	// training accuracy should be well above chance
	z, _ := matrix.Multiply(x, model, 0)
	p := matrix.UnaryApply(z, matrix.OpSigmoid, 1)
	correct := 0
	for i := 0; i < x.Rows(); i++ {
		pred := 0.0
		if p.Get(i, 0) > 0.5 {
			pred = 1
		}
		if pred == y.Get(i, 0) {
			correct++
		}
	}
	acc := float64(correct) / float64(x.Rows())
	if acc < 0.85 {
		t.Errorf("logistic regression accuracy = %v", acc)
	}
}

func TestTrainDefaultsAndValidation(t *testing.T) {
	x, y := matrix.SyntheticRegression(50, 3, 1.0, 4)
	init := matrix.NewDense(3, 1)
	// zero-valued config falls back to defaults
	if _, _, err := Train(x, y, init, LinRegGradient(), Config{}); err != nil {
		t.Fatal(err)
	}
	// mismatched rows rejected
	if _, _, err := Train(x, matrix.NewDense(10, 1), init, LinRegGradient(), Config{}); err == nil {
		t.Error("expected row mismatch error")
	}
	// more workers than rows is clamped
	if _, _, err := Train(x, y, init, LinRegGradient(), Config{Workers: 500, Epochs: 1}); err != nil {
		t.Errorf("worker clamping failed: %v", err)
	}
	// invalid mode rejected
	if _, _, err := Train(x, y, init, LinRegGradient(), Config{Mode: UpdateMode(9)}); err == nil {
		t.Error("expected unknown mode error")
	}
}

func TestTrainGradientErrorPropagates(t *testing.T) {
	x, y := matrix.SyntheticRegression(50, 3, 1.0, 5)
	init := matrix.NewDense(3, 1)
	boom := func(model, xb, yb *matrix.MatrixBlock) (*matrix.MatrixBlock, error) {
		return nil, errors.New("gradient failure")
	}
	if _, _, err := Train(x, y, init, boom, Config{Workers: 2, Epochs: 1, Mode: BSP}); err == nil {
		t.Error("BSP should surface gradient errors")
	}
	if _, _, err := Train(x, y, init, boom, Config{Workers: 2, Epochs: 1, Mode: ASP}); err == nil {
		t.Error("ASP should surface gradient errors")
	}
}

func TestUpdateModeString(t *testing.T) {
	if BSP.String() != "BSP" || ASP.String() != "ASP" {
		t.Error("mode names wrong")
	}
}

func TestBSPandASPAgreeOnEasyProblem(t *testing.T) {
	// on a well-conditioned problem both modes should reach similar loss
	x, y := matrix.SyntheticRegression(600, 5, 1.0, 6)
	init := matrix.NewDense(5, 1)
	cfg := Config{Workers: 4, Epochs: 25, BatchSize: 50, LearnRate: 0.5}
	cfg.Mode = BSP
	mBSP, _, err := Train(x, y, init, LinRegGradient(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Mode = ASP
	cfg.LearnRate = 0.2
	mASP, _, err := Train(x, y, init, LinRegGradient(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	lossBSP, _ := SquaredLoss(mBSP, x, y)
	lossASP, _ := SquaredLoss(mASP, x, y)
	if lossBSP > 0.05 || lossASP > 0.05 {
		t.Errorf("losses too high: BSP=%v ASP=%v", lossBSP, lossASP)
	}
}
