// Package paramserv implements the local parameter server backend of
// SystemDS-Go (Section 2.3 of the paper): data-parallel mini-batch training
// with multiple workers computing gradients on disjoint batch partitions and
// a server aggregating updates either synchronously (BSP) or asynchronously
// (ASP).
package paramserv

import (
	"fmt"
	"sync"

	"github.com/systemds/systemds-go/internal/matrix"
)

// UpdateMode selects the aggregation protocol.
type UpdateMode int

// Update modes.
const (
	// BSP is bulk-synchronous: all workers finish an epoch batch before the
	// model is updated with the averaged gradient.
	BSP UpdateMode = iota
	// ASP is asynchronous: workers push gradients and pull models without
	// synchronization barriers.
	ASP
)

// String returns the mode name.
func (m UpdateMode) String() string {
	if m == ASP {
		return "ASP"
	}
	return "BSP"
}

// GradientFunc computes the gradient of the loss on one mini-batch given the
// current model.
type GradientFunc func(model, xBatch, yBatch *matrix.MatrixBlock) (*matrix.MatrixBlock, error)

// Config configures a parameter-server training run.
type Config struct {
	Workers   int
	Epochs    int
	BatchSize int
	LearnRate float64
	Mode      UpdateMode
}

// Stats reports training statistics.
type Stats struct {
	Updates    int64
	Epochs     int
	FinalLoss  float64
	WorkerRuns int64
}

// partition is one worker's row partition of the training data.
type partition struct{ x, y *matrix.MatrixBlock }

// server holds the shared model protected by a mutex (the "parameter
// server").
type server struct {
	mu      sync.Mutex
	model   *matrix.MatrixBlock
	lr      float64
	updates int64
}

func (s *server) pull() *matrix.MatrixBlock {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.model
}

func (s *server) push(grad *matrix.MatrixBlock) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	step := matrix.ScalarOp(grad, s.lr, matrix.OpMul, false, 1)
	updated, err := matrix.CellwiseOp(s.model, step, matrix.OpSub, 1)
	if err != nil {
		return err
	}
	s.model = updated
	s.updates++
	return nil
}

// Train runs data-parallel mini-batch training: X is split row-wise across
// workers, each worker iterates its mini-batches computing gradients with
// gradFn, and the server applies updates according to the configured mode.
// It returns the trained model.
func Train(x, y, initModel *matrix.MatrixBlock, gradFn GradientFunc, cfg Config) (*matrix.MatrixBlock, *Stats, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.LearnRate <= 0 {
		cfg.LearnRate = 0.1
	}
	if x.Rows() != y.Rows() {
		return nil, nil, fmt.Errorf("paramserv: X has %d rows, y has %d", x.Rows(), y.Rows())
	}
	n := x.Rows()
	if cfg.Workers > n {
		cfg.Workers = n
	}
	srv := &server{model: initModel.Copy(), lr: cfg.LearnRate}
	// partition rows across workers
	parts := make([]partition, cfg.Workers)
	chunk := (n + cfg.Workers - 1) / cfg.Workers
	for w := 0; w < cfg.Workers; w++ {
		r0 := w * chunk
		r1 := r0 + chunk
		if r1 > n {
			r1 = n
		}
		if r0 >= r1 {
			parts[w] = partition{matrix.NewDense(0, x.Cols()), matrix.NewDense(0, y.Cols())}
			continue
		}
		px, err := matrix.Slice(x, r0, r1, 0, x.Cols())
		if err != nil {
			return nil, nil, err
		}
		py, err := matrix.Slice(y, r0, r1, 0, y.Cols())
		if err != nil {
			return nil, nil, err
		}
		parts[w] = partition{px, py}
	}
	stats := &Stats{}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		switch cfg.Mode {
		case BSP:
			if err := runEpochBSP(srv, parts, gradFn, cfg, stats); err != nil {
				return nil, nil, err
			}
		case ASP:
			if err := runEpochASP(srv, parts, gradFn, cfg, stats); err != nil {
				return nil, nil, err
			}
		default:
			return nil, nil, fmt.Errorf("paramserv: unknown update mode %d", cfg.Mode)
		}
		stats.Epochs++
	}
	stats.Updates = srv.updates
	return srv.pull(), stats, nil
}

// runEpochBSP executes one epoch with a barrier per batch round: every worker
// computes its gradient on the current model, the gradients are averaged and
// applied once.
func runEpochBSP(srv *server, parts []partition, gradFn GradientFunc, cfg Config, stats *Stats) error {
	maxBatches := 0
	for _, p := range parts {
		b := numBatches(p.x.Rows(), cfg.BatchSize)
		if b > maxBatches {
			maxBatches = b
		}
	}
	for b := 0; b < maxBatches; b++ {
		model := srv.pull()
		grads := make([]*matrix.MatrixBlock, len(parts))
		errs := make([]error, len(parts))
		var wg sync.WaitGroup
		for w, p := range parts {
			xb, yb, ok := batch(p.x, p.y, b, cfg.BatchSize)
			if !ok {
				continue
			}
			wg.Add(1)
			go func(w int, xb, yb *matrix.MatrixBlock) {
				defer wg.Done()
				g, err := gradFn(model, xb, yb)
				grads[w], errs[w] = g, err
			}(w, xb, yb)
		}
		wg.Wait()
		var agg *matrix.MatrixBlock
		count := 0
		for w := range parts {
			if errs[w] != nil {
				return errs[w]
			}
			if grads[w] == nil {
				continue
			}
			stats.WorkerRuns++
			if agg == nil {
				agg = grads[w]
			} else {
				sum, err := matrix.CellwiseOp(agg, grads[w], matrix.OpAdd, 1)
				if err != nil {
					return err
				}
				agg = sum
			}
			count++
		}
		if agg == nil {
			continue
		}
		avg := matrix.ScalarOp(agg, float64(count), matrix.OpDiv, false, 1)
		if err := srv.push(avg); err != nil {
			return err
		}
	}
	return nil
}

// runEpochASP executes one epoch with workers running independently and
// pushing gradients as they complete batches.
func runEpochASP(srv *server, parts []partition, gradFn GradientFunc, cfg Config, stats *Stats) error {
	var wg sync.WaitGroup
	errCh := make(chan error, len(parts))
	var runs int64
	var runsMu sync.Mutex
	for _, p := range parts {
		wg.Add(1)
		go func(px, py *matrix.MatrixBlock) {
			defer wg.Done()
			nb := numBatches(px.Rows(), cfg.BatchSize)
			for b := 0; b < nb; b++ {
				xb, yb, ok := batch(px, py, b, cfg.BatchSize)
				if !ok {
					continue
				}
				model := srv.pull()
				g, err := gradFn(model, xb, yb)
				if err != nil {
					errCh <- err
					return
				}
				if err := srv.push(g); err != nil {
					errCh <- err
					return
				}
				runsMu.Lock()
				runs++
				runsMu.Unlock()
			}
		}(p.x, p.y)
	}
	wg.Wait()
	stats.WorkerRuns += runs
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

func numBatches(rows, batchSize int) int {
	if rows == 0 {
		return 0
	}
	return (rows + batchSize - 1) / batchSize
}

func batch(x, y *matrix.MatrixBlock, b, batchSize int) (*matrix.MatrixBlock, *matrix.MatrixBlock, bool) {
	r0 := b * batchSize
	if r0 >= x.Rows() {
		return nil, nil, false
	}
	r1 := r0 + batchSize
	if r1 > x.Rows() {
		r1 = x.Rows()
	}
	xb, err := matrix.Slice(x, r0, r1, 0, x.Cols())
	if err != nil {
		return nil, nil, false
	}
	yb, err := matrix.Slice(y, r0, r1, 0, y.Cols())
	if err != nil {
		return nil, nil, false
	}
	return xb, yb, true
}

// LinRegGradient returns the squared-loss gradient function
// t(X) %*% (X %*% w - y) / n for linear regression.
func LinRegGradient() GradientFunc {
	return func(model, xb, yb *matrix.MatrixBlock) (*matrix.MatrixBlock, error) {
		pred, err := matrix.Multiply(xb, model, 1)
		if err != nil {
			return nil, err
		}
		diff, err := matrix.CellwiseOp(pred, yb, matrix.OpSub, 1)
		if err != nil {
			return nil, err
		}
		grad, err := matrix.Multiply(matrix.Transpose(xb), diff, 1)
		if err != nil {
			return nil, err
		}
		return matrix.ScalarOp(grad, float64(xb.Rows()), matrix.OpDiv, false, 1), nil
	}
}

// LogRegGradient returns the logistic-loss gradient function for binary
// classification with labels in {0, 1}.
func LogRegGradient() GradientFunc {
	return func(model, xb, yb *matrix.MatrixBlock) (*matrix.MatrixBlock, error) {
		z, err := matrix.Multiply(xb, model, 1)
		if err != nil {
			return nil, err
		}
		p := matrix.UnaryApply(z, matrix.OpSigmoid, 1)
		diff, err := matrix.CellwiseOp(p, yb, matrix.OpSub, 1)
		if err != nil {
			return nil, err
		}
		grad, err := matrix.Multiply(matrix.Transpose(xb), diff, 1)
		if err != nil {
			return nil, err
		}
		return matrix.ScalarOp(grad, float64(xb.Rows()), matrix.OpDiv, false, 1), nil
	}
}

// SquaredLoss computes the mean squared error of a model on (x, y); used by
// tests and the benchmark harness to verify convergence.
func SquaredLoss(model, x, y *matrix.MatrixBlock) (float64, error) {
	pred, err := matrix.Multiply(x, model, 1)
	if err != nil {
		return 0, err
	}
	diff, err := matrix.CellwiseOp(pred, y, matrix.OpSub, 1)
	if err != nil {
		return 0, err
	}
	return matrix.SumSq(diff, 1) / float64(x.Rows()), nil
}
