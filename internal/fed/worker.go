package fed

import (
	"encoding/gob"
	"fmt"
	"log"
	"net"
	"sync"

	"github.com/systemds/systemds-go/internal/io"
	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/obs"
)

// Worker is a federated worker process: it owns local data (loaded from local
// files or received via put) and executes pushed-down instructions on it,
// returning only aggregates and model updates, never the raw data.
type Worker struct {
	mu       sync.Mutex
	vars     map[string]*matrix.MatrixBlock
	listener net.Listener
	quit     chan struct{}
	wg       sync.WaitGroup
	logger   *log.Logger
}

// NewWorker creates a federated worker with an empty variable store.
func NewWorker(logger *log.Logger) *Worker {
	if logger == nil {
		logger = log.New(logDiscard{}, "", 0)
	}
	return &Worker{vars: map[string]*matrix.MatrixBlock{}, quit: make(chan struct{}), logger: logger}
}

type logDiscard struct{}

func (logDiscard) Write(p []byte) (int, error) { return len(p), nil }

// PutLocal stores a matrix directly in the worker (used for in-process tests
// and examples that simulate pre-existing site data).
func (w *Worker) PutLocal(name string, m *matrix.MatrixBlock) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.vars[name] = m
}

// Serve starts listening on the given address (e.g. "127.0.0.1:0") and
// returns the bound address. Connections are handled concurrently until
// Shutdown is called.
func (w *Worker) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("fed: listen %s: %w", addr, err)
	}
	w.listener = ln
	w.wg.Add(1)
	go w.acceptLoop()
	return ln.Addr().String(), nil
}

func (w *Worker) acceptLoop() {
	defer w.wg.Done()
	for {
		conn, err := w.listener.Accept()
		if err != nil {
			select {
			case <-w.quit:
				return
			default:
				w.logger.Printf("fed worker accept error: %v", err)
				return
			}
		}
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			w.handleConn(conn)
		}()
	}
}

// Shutdown stops the listener and waits for in-flight connections.
func (w *Worker) Shutdown() {
	close(w.quit)
	if w.listener != nil {
		_ = w.listener.Close()
	}
	w.wg.Wait()
}

func (w *Worker) handleConn(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := w.Handle(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
		if req.Command == "shutdown" {
			return
		}
	}
}

// Handle executes one federated request and produces the response. It is
// exported so tests and in-process federations can bypass the network.
// When the master asked for tracing (Request.Trace) the request runs under a
// request-scoped tracer — not the process-global one, so in-process workers
// sharing the master's process never double-record — and the recorded spans
// are attached to the response for the client to graft.
func (w *Worker) Handle(req *Request) *Response {
	if !req.Trace {
		return w.handle(req)
	}
	tr := obs.New()
	tr.SetEnabled(true)
	sp := tr.Begin(obs.CatFed, workerSpanName(req))
	resp := w.handle(req)
	sp.End()
	resp.Spans = tr.Snapshot()
	return resp
}

func workerSpanName(req *Request) string {
	if req.Op != "" {
		return "worker:" + req.Command + ":" + req.Op
	}
	return "worker:" + req.Command
}

func (w *Worker) handle(req *Request) *Response {
	switch req.Command {
	case "ping":
		return &Response{OK: true}
	case "put":
		if req.Matrix == nil {
			return failf("put %s: missing matrix payload", req.Name)
		}
		w.PutLocal(req.Name, FromWire(req.Matrix))
		return &Response{OK: true}
	case "readcsv":
		m, err := io.ReadMatrixCSV(req.Path, io.DefaultCSVOptions())
		if err != nil {
			return failf("readcsv %s: %v", req.Path, err)
		}
		w.PutLocal(req.Name, m)
		return &Response{OK: true, Rows: int64(m.Rows()), Cols: int64(m.Cols())}
	case "get":
		m, err := w.get(req.Name)
		if err != nil {
			return failf("%v", err)
		}
		return &Response{OK: true, Matrix: ToWire(m), Rows: int64(m.Rows()), Cols: int64(m.Cols())}
	case "remove":
		w.mu.Lock()
		delete(w.vars, req.Name)
		w.mu.Unlock()
		return &Response{OK: true}
	case "exec":
		return w.exec(req)
	case "shutdown":
		return &Response{OK: true}
	default:
		return failf("unknown command %q", req.Command)
	}
}

func failf(format string, args ...any) *Response {
	return &Response{OK: false, Error: fmt.Sprintf(format, args...)}
}

func (w *Worker) get(name string) (*matrix.MatrixBlock, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	m, ok := w.vars[name]
	if !ok {
		return nil, fmt.Errorf("fed: worker variable %q not found", name)
	}
	return m, nil
}

// exec runs a pushed-down operation on worker-local data. Only aggregates or
// requested model pieces leave the worker.
func (w *Worker) exec(req *Request) *Response {
	if len(req.Operands) == 0 {
		return failf("exec %s: no operands", req.Op)
	}
	x, err := w.get(req.Operands[0])
	if err != nil {
		return failf("%v", err)
	}
	switch req.Op {
	case "tsmm":
		res := matrix.TSMM(x, 0)
		return w.finish(req, res)
	case "xty":
		if len(req.Operands) < 2 {
			return failf("xty needs two operands")
		}
		y, err := w.get(req.Operands[1])
		if err != nil {
			return failf("%v", err)
		}
		res, err := matrix.Multiply(matrix.Transpose(x), y, 0)
		if err != nil {
			return failf("xty: %v", err)
		}
		return w.finish(req, res)
	case "matvec":
		if req.Matrix == nil {
			return failf("matvec needs a broadcast vector")
		}
		v := FromWire(req.Matrix)
		res, err := matrix.Multiply(x, v, 0)
		if err != nil {
			return failf("matvec: %v", err)
		}
		return w.finish(req, res)
	case "colSums":
		return w.finish(req, matrix.ColSums(x, 0))
	case "colSq":
		sq := matrix.ScalarOp(x, 2, matrix.OpPow, false, 0)
		return w.finish(req, matrix.ColSums(sq, 0))
	case "sum":
		return &Response{OK: true, Scalar: matrix.Sum(x, 0)}
	case "sumsq":
		return &Response{OK: true, Scalar: matrix.SumSq(x, 0)}
	case "rowcount":
		return &Response{OK: true, Scalar: float64(x.Rows()), Rows: int64(x.Rows()), Cols: int64(x.Cols())}
	case "scalarmult":
		res := matrix.ScalarOp(x, req.Scalar, matrix.OpMul, false, 0)
		return w.finish(req, res)
	case "gradient_linreg":
		// local gradient of squared loss: t(X) %*% (X %*% w - y)
		if len(req.Operands) < 2 || req.Matrix == nil {
			return failf("gradient_linreg needs X, y operands and broadcast weights")
		}
		y, err := w.get(req.Operands[1])
		if err != nil {
			return failf("%v", err)
		}
		wts := FromWire(req.Matrix)
		pred, err := matrix.Multiply(x, wts, 0)
		if err != nil {
			return failf("gradient: %v", err)
		}
		diff, err := matrix.CellwiseOp(pred, y, matrix.OpSub, 0)
		if err != nil {
			return failf("gradient: %v", err)
		}
		grad, err := matrix.Multiply(matrix.Transpose(x), diff, 0)
		if err != nil {
			return failf("gradient: %v", err)
		}
		return w.finish(req, grad)
	default:
		return failf("unknown federated op %q", req.Op)
	}
}

// finish optionally stores the result under req.Output and returns it.
func (w *Worker) finish(req *Request, res *matrix.MatrixBlock) *Response {
	if req.Output != "" {
		w.PutLocal(req.Output, res)
	}
	return &Response{OK: true, Matrix: ToWire(res), Rows: int64(res.Rows()), Cols: int64(res.Cols())}
}
