package fed

import (
	"fmt"

	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/types"
)

// Range describes the index range of the federated matrix covered by one
// worker: rows [RowStart, RowEnd) and columns [ColStart, ColEnd) map to the
// worker-local variable VarName at Address.
type Range struct {
	RowStart, RowEnd int64
	ColStart, ColEnd int64
	Address          string
	VarName          string
}

// FederatedMatrix is the master-side metadata object of Section 2.4: it holds
// references to (potentially remote) sub-matrices covering disjoint index
// ranges; uncovered areas are zero. Federated instructions process it by
// pushing computation to the owning sites.
type FederatedMatrix struct {
	Rows, Cols int64
	Ranges     []Range
	clients    map[string]*Client
}

// NewFederatedMatrix builds a federated matrix from ranges and opens
// connections to the referenced workers.
func NewFederatedMatrix(rows, cols int64, ranges []Range) (*FederatedMatrix, error) {
	fm := &FederatedMatrix{Rows: rows, Cols: cols, Ranges: ranges, clients: map[string]*Client{}}
	for _, r := range ranges {
		if r.RowStart < 0 || r.RowEnd > rows || r.ColStart < 0 || r.ColEnd > cols || r.RowStart >= r.RowEnd || r.ColStart >= r.ColEnd {
			return nil, fmt.Errorf("fed: invalid range %+v for %dx%d federated matrix", r, rows, cols)
		}
		if _, ok := fm.clients[r.Address]; !ok {
			c, err := Dial(r.Address)
			if err != nil {
				fm.Close()
				return nil, err
			}
			fm.clients[r.Address] = c
		}
	}
	return fm, nil
}

// RowPartitioned reports whether the federation is a pure row partitioning
// covering all columns (the common case for federated learning over
// horizontally split data).
func (fm *FederatedMatrix) RowPartitioned() bool {
	for _, r := range fm.Ranges {
		if r.ColStart != 0 || r.ColEnd != fm.Cols {
			return false
		}
	}
	return len(fm.Ranges) > 0
}

// DataCharacteristics returns the size metadata of the federated matrix.
func (fm *FederatedMatrix) DataCharacteristics() types.DataCharacteristics {
	return types.DataCharacteristics{Rows: fm.Rows, Cols: fm.Cols, Blocksize: types.DefaultBlocksize, NNZ: -1}
}

// Close closes all worker connections.
func (fm *FederatedMatrix) Close() {
	for _, c := range fm.clients {
		_ = c.Close()
	}
	fm.clients = map[string]*Client{}
}

func (fm *FederatedMatrix) client(addr string) (*Client, error) {
	c, ok := fm.clients[addr]
	if !ok {
		var err error
		c, err = Dial(addr)
		if err != nil {
			return nil, err
		}
		fm.clients[addr] = c
	}
	return c, nil
}

// TSMM computes t(X) %*% X for a row-partitioned federated matrix by pushing
// the tsmm to every site and summing the partial Gram matrices at the master
// (only d x d aggregates cross site boundaries).
func (fm *FederatedMatrix) TSMM() (*matrix.MatrixBlock, error) {
	if !fm.RowPartitioned() {
		return nil, fmt.Errorf("fed: tsmm requires a row-partitioned federated matrix")
	}
	var acc *matrix.MatrixBlock
	for _, r := range fm.Ranges {
		c, err := fm.client(r.Address)
		if err != nil {
			return nil, err
		}
		resp, err := c.Call(&Request{Command: "exec", Op: "tsmm", Operands: []string{r.VarName}})
		if err != nil {
			return nil, err
		}
		part := FromWire(resp.Matrix)
		if acc == nil {
			acc = part
		} else {
			acc, err = matrix.CellwiseOp(acc, part, matrix.OpAdd, 1)
			if err != nil {
				return nil, err
			}
		}
	}
	if acc == nil {
		return nil, fmt.Errorf("fed: federated matrix has no ranges")
	}
	return acc, nil
}

// XtY computes t(X) %*% y where y is another federated matrix partitioned by
// the same row ranges (e.g. federated labels co-located with the features).
func (fm *FederatedMatrix) XtY(y *FederatedMatrix) (*matrix.MatrixBlock, error) {
	if !fm.RowPartitioned() || !y.RowPartitioned() {
		return nil, fmt.Errorf("fed: xty requires row-partitioned federated matrices")
	}
	if len(fm.Ranges) != len(y.Ranges) {
		return nil, fmt.Errorf("fed: xty requires aligned federations (%d vs %d ranges)", len(fm.Ranges), len(y.Ranges))
	}
	var acc *matrix.MatrixBlock
	for i, r := range fm.Ranges {
		ry := y.Ranges[i]
		if r.Address != ry.Address || r.RowStart != ry.RowStart || r.RowEnd != ry.RowEnd {
			return nil, fmt.Errorf("fed: xty range %d not co-located/aligned", i)
		}
		c, err := fm.client(r.Address)
		if err != nil {
			return nil, err
		}
		resp, err := c.Call(&Request{Command: "exec", Op: "xty", Operands: []string{r.VarName, ry.VarName}})
		if err != nil {
			return nil, err
		}
		part := FromWire(resp.Matrix)
		if acc == nil {
			acc = part
		} else {
			acc, err = matrix.CellwiseOp(acc, part, matrix.OpAdd, 1)
			if err != nil {
				return nil, err
			}
		}
	}
	return acc, nil
}

// XtLocalY computes t(X) %*% y for a row-partitioned federated X and a local
// master-side y: the matching row slice of y is shipped to every site, each
// site computes t(X_i) %*% y_i (via its transposed matvec), and the master
// sums the d x 1 partial results.
func (fm *FederatedMatrix) XtLocalY(y *matrix.MatrixBlock) (*matrix.MatrixBlock, error) {
	if !fm.RowPartitioned() {
		return nil, fmt.Errorf("fed: xty requires a row-partitioned federated matrix")
	}
	if int64(y.Rows()) != fm.Rows {
		return nil, fmt.Errorf("fed: xty rhs has %d rows, federated matrix has %d", y.Rows(), fm.Rows)
	}
	var acc *matrix.MatrixBlock
	for i, r := range fm.Ranges {
		c, err := fm.client(r.Address)
		if err != nil {
			return nil, err
		}
		ySlice, err := matrix.Slice(y, int(r.RowStart), int(r.RowEnd), 0, y.Cols())
		if err != nil {
			return nil, err
		}
		tmpName := fmt.Sprintf("__fed_y_slice_%d", i)
		if _, err := c.Call(&Request{Command: "put", Name: tmpName, Matrix: ToWire(ySlice)}); err != nil {
			return nil, err
		}
		resp, err := c.Call(&Request{Command: "exec", Op: "xty", Operands: []string{r.VarName, tmpName}})
		if err != nil {
			return nil, err
		}
		_, _ = c.Call(&Request{Command: "remove", Name: tmpName})
		part := FromWire(resp.Matrix)
		if acc == nil {
			acc = part
		} else {
			acc, err = matrix.CellwiseOp(acc, part, matrix.OpAdd, 1)
			if err != nil {
				return nil, err
			}
		}
	}
	if acc == nil {
		return nil, fmt.Errorf("fed: federated matrix has no ranges")
	}
	return acc, nil
}

// MatVec computes X %*% v for a row-partitioned federated matrix by
// broadcasting v, executing the multiply per site and stitching the result
// rows back together in range order.
func (fm *FederatedMatrix) MatVec(v *matrix.MatrixBlock) (*matrix.MatrixBlock, error) {
	if !fm.RowPartitioned() {
		return nil, fmt.Errorf("fed: matvec requires a row-partitioned federated matrix")
	}
	out := matrix.NewDense(int(fm.Rows), v.Cols())
	for _, r := range fm.Ranges {
		c, err := fm.client(r.Address)
		if err != nil {
			return nil, err
		}
		resp, err := c.Call(&Request{Command: "exec", Op: "matvec", Operands: []string{r.VarName}, Matrix: ToWire(v)})
		if err != nil {
			return nil, err
		}
		part := FromWire(resp.Matrix)
		out, err = matrix.LeftIndex(out, part, int(r.RowStart), int(r.RowEnd), 0, v.Cols())
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ColSums computes the per-column sums across all sites.
func (fm *FederatedMatrix) ColSums() (*matrix.MatrixBlock, error) {
	var acc *matrix.MatrixBlock
	for _, r := range fm.Ranges {
		c, err := fm.client(r.Address)
		if err != nil {
			return nil, err
		}
		resp, err := c.Call(&Request{Command: "exec", Op: "colSums", Operands: []string{r.VarName}})
		if err != nil {
			return nil, err
		}
		part := FromWire(resp.Matrix)
		if acc == nil {
			acc = part
		} else {
			acc, err = matrix.CellwiseOp(acc, part, matrix.OpAdd, 1)
			if err != nil {
				return nil, err
			}
		}
	}
	if acc == nil {
		return nil, fmt.Errorf("fed: federated matrix has no ranges")
	}
	return acc, nil
}

// Sum computes the global sum across all sites.
func (fm *FederatedMatrix) Sum() (float64, error) {
	total := 0.0
	for _, r := range fm.Ranges {
		c, err := fm.client(r.Address)
		if err != nil {
			return 0, err
		}
		resp, err := c.Call(&Request{Command: "exec", Op: "sum", Operands: []string{r.VarName}})
		if err != nil {
			return 0, err
		}
		total += resp.Scalar
	}
	return total, nil
}

// GradientLinReg computes the global squared-loss gradient
// t(X) %*% (X %*% w - y) by pushing the local gradient computation to every
// site and summing the d x 1 results (the federated parameter-server style
// update of Section 3.3).
func (fm *FederatedMatrix) GradientLinReg(y *FederatedMatrix, w *matrix.MatrixBlock) (*matrix.MatrixBlock, error) {
	if len(fm.Ranges) != len(y.Ranges) {
		return nil, fmt.Errorf("fed: gradient requires aligned federations")
	}
	var acc *matrix.MatrixBlock
	for i, r := range fm.Ranges {
		ry := y.Ranges[i]
		c, err := fm.client(r.Address)
		if err != nil {
			return nil, err
		}
		resp, err := c.Call(&Request{
			Command: "exec", Op: "gradient_linreg",
			Operands: []string{r.VarName, ry.VarName},
			Matrix:   ToWire(w),
		})
		if err != nil {
			return nil, err
		}
		part := FromWire(resp.Matrix)
		if acc == nil {
			acc = part
		} else {
			acc, err = matrix.CellwiseOp(acc, part, matrix.OpAdd, 1)
			if err != nil {
				return nil, err
			}
		}
	}
	return acc, nil
}

// Collect retrieves and assembles the full federated matrix at the master.
// It exists for debugging and tests; real federated workflows avoid it.
func (fm *FederatedMatrix) Collect() (*matrix.MatrixBlock, error) {
	out := matrix.NewDense(int(fm.Rows), int(fm.Cols))
	for _, r := range fm.Ranges {
		c, err := fm.client(r.Address)
		if err != nil {
			return nil, err
		}
		resp, err := c.Call(&Request{Command: "get", Name: r.VarName})
		if err != nil {
			return nil, err
		}
		part := FromWire(resp.Matrix)
		out, err = matrix.LeftIndex(out, part, int(r.RowStart), int(r.RowEnd), int(r.ColStart), int(r.ColEnd))
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
