package fed

import (
	"testing"

	"github.com/systemds/systemds-go/internal/matrix"
)

// startTwoSites starts two federated workers each holding half the rows of X
// and y, and returns the federated matrices (plus a cleanup function).
func startTwoSites(t *testing.T, x, y *matrix.MatrixBlock) (*FederatedMatrix, *FederatedMatrix, func()) {
	t.Helper()
	half := x.Rows() / 2
	x1, _ := matrix.Slice(x, 0, half, 0, x.Cols())
	x2, _ := matrix.Slice(x, half, x.Rows(), 0, x.Cols())
	y1, _ := matrix.Slice(y, 0, half, 0, 1)
	y2, _ := matrix.Slice(y, half, y.Rows(), 0, 1)

	w1 := NewWorker(nil)
	w1.PutLocal("X", x1)
	w1.PutLocal("y", y1)
	addr1, err := w1.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w2 := NewWorker(nil)
	w2.PutLocal("X", x2)
	w2.PutLocal("y", y2)
	addr2, err := w2.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fx, err := NewFederatedMatrix(int64(x.Rows()), int64(x.Cols()), []Range{
		{RowStart: 0, RowEnd: int64(half), ColStart: 0, ColEnd: int64(x.Cols()), Address: addr1, VarName: "X"},
		{RowStart: int64(half), RowEnd: int64(x.Rows()), ColStart: 0, ColEnd: int64(x.Cols()), Address: addr2, VarName: "X"},
	})
	if err != nil {
		t.Fatal(err)
	}
	fy, err := NewFederatedMatrix(int64(y.Rows()), 1, []Range{
		{RowStart: 0, RowEnd: int64(half), ColStart: 0, ColEnd: 1, Address: addr1, VarName: "y"},
		{RowStart: int64(half), RowEnd: int64(y.Rows()), ColStart: 0, ColEnd: 1, Address: addr2, VarName: "y"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cleanup := func() {
		fx.Close()
		fy.Close()
		w1.Shutdown()
		w2.Shutdown()
	}
	return fx, fy, cleanup
}

func TestWireRoundTrip(t *testing.T) {
	m := matrix.RandUniform(7, 5, -1, 1, 0.4, 1)
	back := FromWire(ToWire(m))
	if !back.Equals(m, 0) {
		t.Error("wire round trip changed values")
	}
	if ToWire(nil) != nil || FromWire(nil) != nil {
		t.Error("nil handling wrong")
	}
}

func TestWorkerHandleBasics(t *testing.T) {
	w := NewWorker(nil)
	if resp := w.Handle(&Request{Command: "ping"}); !resp.OK {
		t.Error("ping failed")
	}
	m := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	if resp := w.Handle(&Request{Command: "put", Name: "A", Matrix: ToWire(m)}); !resp.OK {
		t.Error("put failed")
	}
	resp := w.Handle(&Request{Command: "get", Name: "A"})
	if !resp.OK || !FromWire(resp.Matrix).Equals(m, 0) {
		t.Error("get returned wrong matrix")
	}
	if resp := w.Handle(&Request{Command: "get", Name: "missing"}); resp.OK {
		t.Error("expected missing variable error")
	}
	if resp := w.Handle(&Request{Command: "put", Name: "B"}); resp.OK {
		t.Error("expected missing payload error")
	}
	if resp := w.Handle(&Request{Command: "remove", Name: "A"}); !resp.OK {
		t.Error("remove failed")
	}
	if resp := w.Handle(&Request{Command: "get", Name: "A"}); resp.OK {
		t.Error("removed variable still resolvable")
	}
	if resp := w.Handle(&Request{Command: "explode"}); resp.OK {
		t.Error("expected unknown command error")
	}
	if resp := w.Handle(&Request{Command: "exec", Op: "tsmm"}); resp.OK {
		t.Error("expected missing operand error")
	}
	if resp := w.Handle(&Request{Command: "exec", Op: "warp", Operands: []string{"A"}}); resp.OK {
		t.Error("expected unknown op error")
	}
}

func TestWorkerExecOps(t *testing.T) {
	w := NewWorker(nil)
	x := matrix.RandUniform(20, 4, -1, 1, 1.0, 2)
	y := matrix.RandUniform(20, 1, -1, 1, 1.0, 3)
	w.PutLocal("X", x)
	w.PutLocal("y", y)
	resp := w.Handle(&Request{Command: "exec", Op: "tsmm", Operands: []string{"X"}})
	if !resp.OK || !FromWire(resp.Matrix).Equals(matrix.TSMM(x, 0), 1e-9) {
		t.Error("tsmm wrong")
	}
	resp = w.Handle(&Request{Command: "exec", Op: "xty", Operands: []string{"X", "y"}})
	want, _ := matrix.Multiply(matrix.Transpose(x), y, 0)
	if !resp.OK || !FromWire(resp.Matrix).Equals(want, 1e-9) {
		t.Error("xty wrong")
	}
	v := matrix.RandUniform(4, 1, -1, 1, 1.0, 4)
	resp = w.Handle(&Request{Command: "exec", Op: "matvec", Operands: []string{"X"}, Matrix: ToWire(v)})
	wantMV, _ := matrix.Multiply(x, v, 0)
	if !resp.OK || !FromWire(resp.Matrix).Equals(wantMV, 1e-9) {
		t.Error("matvec wrong")
	}
	resp = w.Handle(&Request{Command: "exec", Op: "colSums", Operands: []string{"X"}})
	if !resp.OK || !FromWire(resp.Matrix).Equals(matrix.ColSums(x, 1), 1e-9) {
		t.Error("colSums wrong")
	}
	resp = w.Handle(&Request{Command: "exec", Op: "sum", Operands: []string{"X"}})
	if !resp.OK || resp.Scalar != matrix.Sum(x, 1) {
		t.Error("sum wrong")
	}
	resp = w.Handle(&Request{Command: "exec", Op: "rowcount", Operands: []string{"X"}})
	if !resp.OK || resp.Scalar != 20 {
		t.Error("rowcount wrong")
	}
	// gradient op
	wts := matrix.NewDense(4, 1)
	resp = w.Handle(&Request{Command: "exec", Op: "gradient_linreg", Operands: []string{"X", "y"}, Matrix: ToWire(wts)})
	if !resp.OK || resp.Matrix.Rows != 4 {
		t.Error("gradient_linreg wrong")
	}
	// exec with output variable stores the result
	resp = w.Handle(&Request{Command: "exec", Op: "tsmm", Operands: []string{"X"}, Output: "G"})
	if !resp.OK {
		t.Fatal("tsmm with output failed")
	}
	if resp := w.Handle(&Request{Command: "get", Name: "G"}); !resp.OK {
		t.Error("stored output not retrievable")
	}
}

func TestFederatedOverNetwork(t *testing.T) {
	x, yv := matrix.SyntheticRegression(100, 6, 1.0, 5)
	fx, fy, cleanup := startTwoSites(t, x, yv)
	defer cleanup()

	if !fx.RowPartitioned() {
		t.Error("expected row-partitioned federation")
	}
	gram, err := fx.TSMM()
	if err != nil {
		t.Fatal(err)
	}
	if !gram.Equals(matrix.TSMM(x, 0), 1e-9) {
		t.Error("federated TSMM disagrees with local")
	}
	xty, err := fx.XtY(fy)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := matrix.Multiply(matrix.Transpose(x), yv, 0)
	if !xty.Equals(want, 1e-9) {
		t.Error("federated XtY disagrees with local")
	}
	xtyLocal, err := fx.XtLocalY(yv)
	if err != nil {
		t.Fatal(err)
	}
	if !xtyLocal.Equals(want, 1e-9) {
		t.Error("federated XtLocalY disagrees with local")
	}
	v := matrix.RandUniform(6, 1, -1, 1, 1.0, 6)
	mv, err := fx.MatVec(v)
	if err != nil {
		t.Fatal(err)
	}
	wantMV, _ := matrix.Multiply(x, v, 0)
	if !mv.Equals(wantMV, 1e-9) {
		t.Error("federated MatVec disagrees with local")
	}
	cs, err := fx.ColSums()
	if err != nil {
		t.Fatal(err)
	}
	if !cs.Equals(matrix.ColSums(x, 1), 1e-9) {
		t.Error("federated ColSums disagrees with local")
	}
	s, err := fx.Sum()
	if err != nil {
		t.Fatal(err)
	}
	if d := s - matrix.Sum(x, 1); d > 1e-9 || d < -1e-9 {
		t.Error("federated Sum disagrees with local")
	}
	grad, err := fx.GradientLinReg(fy, matrix.NewDense(6, 1))
	if err != nil {
		t.Fatal(err)
	}
	// gradient at w=0 is t(X) %*% (0 - y) = -t(X) y
	wantGrad := matrix.ScalarOp(want, -1, matrix.OpMul, false, 1)
	if !grad.Equals(wantGrad, 1e-9) {
		t.Error("federated gradient disagrees with local")
	}
	collected, err := fx.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !collected.Equals(x, 1e-12) {
		t.Error("Collect did not reassemble the federated matrix")
	}
	dc := fx.DataCharacteristics()
	if dc.Rows != 100 || dc.Cols != 6 {
		t.Errorf("characteristics = %v", dc)
	}
}

func TestFederatedValidation(t *testing.T) {
	// invalid range rejected
	if _, err := NewFederatedMatrix(10, 2, []Range{{RowStart: 5, RowEnd: 3, ColStart: 0, ColEnd: 2, Address: "127.0.0.1:1", VarName: "X"}}); err == nil {
		t.Error("expected invalid range error")
	}
	// unreachable worker
	if _, err := NewFederatedMatrix(10, 2, []Range{{RowStart: 0, RowEnd: 10, ColStart: 0, ColEnd: 2, Address: "127.0.0.1:1", VarName: "X"}}); err == nil {
		t.Error("expected connection error")
	}
}

func TestClientPingAndClose(t *testing.T) {
	w := NewWorker(nil)
	addr, err := w.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Shutdown()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if c.Addr() != addr {
		t.Error("Addr mismatch")
	}
	if err := c.Ping(); err != nil {
		t.Errorf("ping failed: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("close failed: %v", err)
	}
	if err := c.Ping(); err == nil {
		t.Error("ping on closed client should fail")
	}
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("expected dial error")
	}
}
