// Package fed implements federated ML support (Section 3.3 of the paper):
// federated workers that hold local data partitions and execute pushed-down
// instructions, a master-side federated matrix (a metadata object referencing
// remote in-memory tensors by index range), and federated operations that
// aggregate partial results while leaving raw data at the owning site.
package fed

import (
	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/obs"
)

// WireMatrix is the gob-serializable wire representation of a matrix block.
// Sparse blocks are shipped as dense values for simplicity; the federated
// protocol only ever ships small aggregates and broadcast vectors.
type WireMatrix struct {
	Rows, Cols int
	Values     []float64
}

// ToWire converts a matrix block to its wire representation.
func ToWire(m *matrix.MatrixBlock) *WireMatrix {
	if m == nil {
		return nil
	}
	d := m.Copy().ToDense()
	return &WireMatrix{Rows: d.Rows(), Cols: d.Cols(), Values: d.DenseValues()}
}

// FromWire converts a wire matrix back to a matrix block.
func FromWire(w *WireMatrix) *matrix.MatrixBlock {
	if w == nil {
		return nil
	}
	m := matrix.NewDenseFromSlice(w.Rows, w.Cols, append([]float64(nil), w.Values...))
	m.ExamineAndApplySparsity()
	return m
}

// Request is a message sent from the master control program to a federated
// worker.
type Request struct {
	// Command is one of "ping", "put", "readcsv", "exec", "get", "remove",
	// "shutdown".
	Command string
	// Name is the worker-local variable the command refers to.
	Name string
	// Path is the file to read for "readcsv".
	Path string
	// Op is the pushed-down operation for "exec": "tsmm", "xty", "matvec",
	// "colSums", "sum", "sumsq", "rowcount", "scalar*", "gradient_linreg".
	Op string
	// Operands are worker-local input variable names for "exec".
	Operands []string
	// Output is the worker-local variable the "exec" result is stored under.
	Output string
	// Matrix carries broadcast data for "put" and vector operands of "exec".
	Matrix *WireMatrix
	// Scalar carries scalar operands.
	Scalar float64
	// Trace asks the worker to record spans for this request and ship them
	// back in Response.Spans. Set by the client when master-side tracing is
	// enabled. (gob ignores unknown fields, so old workers interoperate.)
	Trace bool
}

// Response is a worker's reply.
type Response struct {
	OK     bool
	Error  string
	Matrix *WireMatrix
	Scalar float64
	Rows   int64
	Cols   int64
	// Spans carries the worker-side spans recorded for this request when
	// Request.Trace was set; the client grafts them under its RPC span so
	// federated work shows up re-parented in the master trace.
	Spans []obs.Record
}
