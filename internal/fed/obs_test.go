package fed

import (
	"testing"

	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/obs"
)

// TestFedSpansReparentedUnderRPC checks the federated trace stitching: with
// master-side tracing on, a federated call records an "rpc" span, the worker
// ships its request-scoped spans back, and the client grafts them so every
// worker span hangs (directly or transitively) under the RPC span with the
// worker's root aligned to the RPC start.
func TestFedSpansReparentedUnderRPC(t *testing.T) {
	x, yv := matrix.SyntheticRegression(100, 6, 1.0, 5)
	fx, _, cleanup := startTwoSites(t, x, yv)
	defer cleanup()

	obs.Reset()
	obs.Enable()
	defer func() {
		obs.Disable()
		obs.Reset()
	}()

	if _, err := fx.TSMM(); err != nil {
		t.Fatal(err)
	}

	recs := obs.Resolve(obs.Snapshot())
	byID := map[uint64]obs.Record{}
	for _, r := range recs {
		byID[r.ID] = r
	}
	var rpcs, feds int
	for _, r := range recs {
		switch r.Cat {
		case obs.CatRPC:
			rpcs++
		case obs.CatFed:
			feds++
			parent, ok := byID[r.Parent]
			if !ok {
				t.Fatalf("fed span %q has dangling parent %d", r.Name, r.Parent)
			}
			if parent.Cat != obs.CatRPC {
				t.Errorf("fed span %q parented under %s/%s, want an rpc span", r.Name, parent.Cat, parent.Name)
			}
			if r.Start < parent.Start {
				t.Errorf("fed span %q starts %dns before its rpc span", r.Name, parent.Start-r.Start)
			}
		}
	}
	// one RPC and one grafted worker root per site
	if rpcs < 2 {
		t.Errorf("rpc spans = %d, want >= 2 (one per site)", rpcs)
	}
	if feds < 2 {
		t.Errorf("fed worker spans = %d, want >= 2 (one per site)", feds)
	}
}

// TestFedTracingOffShipsNoSpans checks the negative: without master tracing
// the request does not ask for worker spans and responses carry none.
func TestFedTracingOffShipsNoSpans(t *testing.T) {
	w := NewWorker(nil)
	w.PutLocal("X", matrix.RandUniform(10, 3, 0, 1, 1.0, 7))
	resp := w.Handle(&Request{Command: "exec", Op: "tsmm", Operands: []string{"X"}})
	if !resp.OK {
		t.Fatalf("exec failed: %s", resp.Error)
	}
	if len(resp.Spans) != 0 {
		t.Errorf("untraced response carries %d spans, want 0", len(resp.Spans))
	}
}
