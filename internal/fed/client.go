package fed

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/systemds/systemds-go/internal/obs"
)

// Client is a connection from the master control program to one federated
// worker. Requests on a client are serialized; use one client per worker.
type Client struct {
	mu   sync.Mutex
	addr string
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Dial connects to a federated worker.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("fed: dial %s: %w", addr, err)
	}
	return &Client{addr: addr, conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

// Addr returns the worker address.
func (c *Client) Addr() string { return c.addr }

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// Call sends a request and waits for the response. When master-side tracing
// is on, the exchange is recorded as an "rpc" span, the worker is asked to
// trace too (Request.Trace), and any spans it ships back are grafted into
// the master trace under the RPC span.
func (c *Client) Call(req *Request) (*Response, error) {
	req.Trace = obs.Enabled()
	name := ""
	if req.Trace {
		name = rpcSpanName(req)
	}
	sp := obs.Begin(obs.CatRPC, name)
	resp, err := c.call(req)
	sp.End()
	if resp != nil && len(resp.Spans) > 0 {
		obs.Graft(resp.Spans, sp)
	}
	return resp, err
}

// rpcSpanName labels an RPC span; only called while tracing (it allocates).
func rpcSpanName(req *Request) string {
	if req.Op != "" {
		return "rpc:" + req.Command + ":" + req.Op
	}
	return "rpc:" + req.Command
}

func (c *Client) call(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil, fmt.Errorf("fed: connection to %s is closed", c.addr)
	}
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("fed: send to %s: %w", c.addr, err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("fed: receive from %s: %w", c.addr, err)
	}
	if !resp.OK {
		return &resp, fmt.Errorf("fed: worker %s: %s", c.addr, resp.Error)
	}
	return &resp, nil
}

// Ping checks worker liveness.
func (c *Client) Ping() error {
	_, err := c.Call(&Request{Command: "ping"})
	return err
}
