// Package types defines the common value types, data types, schemas and
// size metadata (data characteristics) shared by the SystemDS-Go compiler
// and runtime. It mirrors the data model described in Section 2.4 of the
// SystemDS paper: numeric matrices, heterogeneous tensors, frames with a
// schema, scalars and lists.
package types

import (
	"fmt"
	"strings"
)

// ValueType enumerates the cell value types supported by tensors, frames
// and scalars. FP64 is the default numeric type used by matrices.
type ValueType int

// Supported value types.
const (
	Unknown ValueType = iota
	FP64
	FP32
	INT64
	INT32
	Boolean
	String
)

// String returns the DML-facing name of the value type.
func (v ValueType) String() string {
	switch v {
	case FP64:
		return "FP64"
	case FP32:
		return "FP32"
	case INT64:
		return "INT64"
	case INT32:
		return "INT32"
	case Boolean:
		return "BOOLEAN"
	case String:
		return "STRING"
	default:
		return "UNKNOWN"
	}
}

// IsNumeric reports whether the value type is a numeric type.
func (v ValueType) IsNumeric() bool {
	switch v {
	case FP64, FP32, INT64, INT32, Boolean:
		return true
	default:
		return false
	}
}

// Size returns the in-memory size of a single cell of this value type in
// bytes. Strings are estimated with a constant average length.
func (v ValueType) Size() int64 {
	switch v {
	case FP64, INT64:
		return 8
	case FP32, INT32:
		return 4
	case Boolean:
		return 1
	case String:
		return 32
	default:
		return 8
	}
}

// ParseValueType parses a DML value type name ("double", "integer",
// "boolean", "string", or the tensor type names) into a ValueType.
func ParseValueType(s string) (ValueType, error) {
	switch strings.ToLower(s) {
	case "double", "fp64", "float64":
		return FP64, nil
	case "fp32", "float32", "float":
		return FP32, nil
	case "integer", "int", "int64":
		return INT64, nil
	case "int32":
		return INT32, nil
	case "boolean", "bool":
		return Boolean, nil
	case "string", "str":
		return String, nil
	default:
		return Unknown, fmt.Errorf("types: unknown value type %q", s)
	}
}

// DataType enumerates the kinds of data objects handled by the runtime.
type DataType int

// Supported data types.
const (
	UnknownData DataType = iota
	Scalar
	Matrix
	Tensor
	Frame
	List
)

// String returns the name of the data type.
func (d DataType) String() string {
	switch d {
	case Scalar:
		return "SCALAR"
	case Matrix:
		return "MATRIX"
	case Tensor:
		return "TENSOR"
	case Frame:
		return "FRAME"
	case List:
		return "LIST"
	default:
		return "UNKNOWN"
	}
}

// ParseDataType parses a DML data type name into a DataType.
func ParseDataType(s string) (DataType, error) {
	switch strings.ToLower(s) {
	case "scalar":
		return Scalar, nil
	case "matrix":
		return Matrix, nil
	case "tensor":
		return Tensor, nil
	case "frame":
		return Frame, nil
	case "list":
		return List, nil
	default:
		return UnknownData, fmt.Errorf("types: unknown data type %q", s)
	}
}

// Schema describes the per-column value types of a frame or the schema
// dimension of a heterogeneous data tensor.
type Schema []ValueType

// UniformSchema creates a schema of n columns all having value type vt.
func UniformSchema(vt ValueType, n int) Schema {
	s := make(Schema, n)
	for i := range s {
		s[i] = vt
	}
	return s
}

// String renders the schema as a comma separated list of type names.
func (s Schema) String() string {
	parts := make([]string, len(s))
	for i, vt := range s {
		parts[i] = vt.String()
	}
	return strings.Join(parts, ",")
}

// Equal reports whether two schemas are identical.
func (s Schema) Equal(o Schema) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// DataCharacteristics captures the size metadata of a matrix, tensor or
// frame: dimensions, block size and number of non-zero values. It is the
// unit of size propagation in the compiler (Section 2.3).
type DataCharacteristics struct {
	Rows      int64
	Cols      int64
	Dims      []int64 // set for tensors with more than two dimensions
	Blocksize int
	NNZ       int64 // -1 if unknown
}

// NewDataCharacteristics creates characteristics for a 2D object.
func NewDataCharacteristics(rows, cols int64, blocksize int, nnz int64) DataCharacteristics {
	return DataCharacteristics{Rows: rows, Cols: cols, Blocksize: blocksize, NNZ: nnz}
}

// UnknownCharacteristics returns characteristics with all sizes unknown.
func UnknownCharacteristics() DataCharacteristics {
	return DataCharacteristics{Rows: -1, Cols: -1, Blocksize: DefaultBlocksize, NNZ: -1}
}

// DefaultBlocksize is the default block side length for blocked (distributed)
// matrices, matching SystemDS' squared 1K x 1K blocks.
const DefaultBlocksize = 1024

// DimsKnown reports whether both row and column counts are known.
func (dc DataCharacteristics) DimsKnown() bool {
	return dc.Rows >= 0 && dc.Cols >= 0
}

// NNZKnown reports whether the number of non-zeros is known.
func (dc DataCharacteristics) NNZKnown() bool { return dc.NNZ >= 0 }

// Cells returns the total number of cells, or -1 if unknown.
func (dc DataCharacteristics) Cells() int64 {
	if !dc.DimsKnown() {
		return -1
	}
	if len(dc.Dims) > 0 {
		n := int64(1)
		for _, d := range dc.Dims {
			if d < 0 {
				return -1
			}
			n *= d
		}
		return n
	}
	return dc.Rows * dc.Cols
}

// Sparsity returns the fraction of non-zero cells, or 1.0 if unknown.
func (dc DataCharacteristics) Sparsity() float64 {
	cells := dc.Cells()
	if cells <= 0 || !dc.NNZKnown() {
		return 1.0
	}
	return float64(dc.NNZ) / float64(cells)
}

// String renders the characteristics for debugging and EXPLAIN output.
func (dc DataCharacteristics) String() string {
	return fmt.Sprintf("[%dx%d, blk=%d, nnz=%d]", dc.Rows, dc.Cols, dc.Blocksize, dc.NNZ)
}

// EstimateSizeDense estimates the in-memory size in bytes of a dense FP64
// matrix with the given dimensions.
func EstimateSizeDense(rows, cols int64) int64 {
	if rows < 0 || cols < 0 {
		return -1
	}
	return rows*cols*8 + 64
}

// EstimateSizeSparse estimates the in-memory size in bytes of a CSR sparse
// FP64 matrix with the given dimensions and sparsity.
func EstimateSizeSparse(rows, cols int64, sparsity float64) int64 {
	if rows < 0 || cols < 0 {
		return -1
	}
	nnz := int64(float64(rows*cols) * sparsity)
	// values (8) + column indexes (8, int) + row pointers
	return nnz*16 + (rows+1)*8 + 64
}

// EstimateSize estimates the in-memory size of a matrix given characteristics,
// choosing the sparse estimate when the sparsity is below the sparse
// threshold used by the runtime blocks.
func EstimateSize(dc DataCharacteristics) int64 {
	if !dc.DimsKnown() {
		return -1
	}
	sp := dc.Sparsity()
	if dc.NNZKnown() && sp < SparseThreshold {
		return EstimateSizeSparse(dc.Rows, dc.Cols, sp)
	}
	return EstimateSizeDense(dc.Rows, dc.Cols)
}

// SparseThreshold is the sparsity below which blocks are kept in sparse
// representation.
const SparseThreshold = 0.4

// MatMultMethod names the physical matrix-multiplication strategy chosen by
// the compiler's cost-based planner for operators on the blocked distributed
// backend (hops/cost.go). The runtime executes the named plan; it does not
// re-decide.
type MatMultMethod int

// Physical matmult strategies.
const (
	// MMAuto means no compile-time decision (CP operators, or plans compiled
	// before sizes were known); the instruction falls back to a
	// representation-driven default at runtime.
	MMAuto MatMultMethod = iota
	// MMBroadcastRight partitions the left operand and broadcasts the local
	// right operand to every block-row strip (the map-side broadcast join).
	MMBroadcastRight
	// MMBroadcastLeft partitions the right operand and broadcasts the local
	// left operand to every block-column strip.
	MMBroadcastLeft
	// MMGridJoin partitions both operands and joins block row i with block
	// column j per output cell (the replication-based join).
	MMGridJoin
	// MMShuffle partitions both operands and processes co-partitioned
	// k-stripes one at a time, accumulating partial products into the output
	// blocks (the shuffle/cross-product join for two large operands).
	MMShuffle
)

// String returns the short plan name used in EXPLAIN output and plan stats.
func (m MatMultMethod) String() string {
	switch m {
	case MMBroadcastRight:
		return "br"
	case MMBroadcastLeft:
		return "bl"
	case MMGridJoin:
		return "gj"
	case MMShuffle:
		return "sh"
	default:
		return "auto"
	}
}

// ExecType describes where an operation is executed: in the local control
// program (CP), on the blocked distributed backend (DIST, the Spark
// substitute), or on federated workers (FED).
type ExecType int

// Execution types.
const (
	ExecCP ExecType = iota
	ExecDist
	ExecFed
)

// String returns the name of the execution type.
func (e ExecType) String() string {
	switch e {
	case ExecCP:
		return "CP"
	case ExecDist:
		return "DIST"
	case ExecFed:
		return "FED"
	default:
		return "?"
	}
}
