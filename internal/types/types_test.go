package types

import (
	"testing"
	"testing/quick"
)

func TestValueTypeStringAndParse(t *testing.T) {
	cases := map[string]ValueType{
		"double": FP64, "FP64": FP64, "float64": FP64,
		"fp32": FP32, "integer": INT64, "int32": INT32,
		"boolean": Boolean, "string": String,
	}
	for in, want := range cases {
		got, err := ParseValueType(in)
		if err != nil {
			t.Fatalf("ParseValueType(%q): %v", in, err)
		}
		if got != want {
			t.Errorf("ParseValueType(%q) = %v, want %v", in, got, want)
		}
	}
	if _, err := ParseValueType("complex"); err == nil {
		t.Error("expected error for unknown type")
	}
	if FP64.String() != "FP64" || Boolean.String() != "BOOLEAN" {
		t.Error("unexpected String() output")
	}
}

func TestValueTypeNumericAndSize(t *testing.T) {
	if !FP64.IsNumeric() || !Boolean.IsNumeric() || String.IsNumeric() {
		t.Error("IsNumeric classification wrong")
	}
	if FP64.Size() != 8 || FP32.Size() != 4 || Boolean.Size() != 1 {
		t.Error("Size() wrong")
	}
}

func TestDataTypeParse(t *testing.T) {
	for in, want := range map[string]DataType{
		"matrix": Matrix, "frame": Frame, "scalar": Scalar, "tensor": Tensor, "list": List,
	} {
		got, err := ParseDataType(in)
		if err != nil || got != want {
			t.Errorf("ParseDataType(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseDataType("graph"); err == nil {
		t.Error("expected error")
	}
}

func TestSchema(t *testing.T) {
	s := UniformSchema(FP64, 3)
	if len(s) != 3 || s[2] != FP64 {
		t.Error("UniformSchema wrong")
	}
	o := Schema{FP64, FP64, FP64}
	if !s.Equal(o) {
		t.Error("schemas should be equal")
	}
	if s.Equal(Schema{FP64}) || s.Equal(Schema{FP64, FP64, String}) {
		t.Error("schemas should differ")
	}
	if s.String() != "FP64,FP64,FP64" {
		t.Errorf("schema string = %q", s.String())
	}
}

func TestDataCharacteristics(t *testing.T) {
	dc := NewDataCharacteristics(100, 50, 1024, 500)
	if !dc.DimsKnown() || !dc.NNZKnown() {
		t.Error("expected known dims and nnz")
	}
	if dc.Cells() != 5000 {
		t.Errorf("Cells = %d", dc.Cells())
	}
	if dc.Sparsity() != 0.1 {
		t.Errorf("Sparsity = %v", dc.Sparsity())
	}
	u := UnknownCharacteristics()
	if u.DimsKnown() || u.Cells() != -1 || u.Sparsity() != 1.0 {
		t.Error("unknown characteristics misreported")
	}
	nd := DataCharacteristics{Rows: 4, Cols: 4, Dims: []int64{4, 4, 4}, NNZ: -1}
	if nd.Cells() != 64 {
		t.Errorf("3d cells = %d", nd.Cells())
	}
}

func TestSizeEstimates(t *testing.T) {
	if EstimateSizeDense(1000, 1000) < 8_000_000 {
		t.Error("dense estimate too small")
	}
	sp := EstimateSizeSparse(1000, 1000, 0.01)
	if sp >= EstimateSizeDense(1000, 1000) {
		t.Error("sparse estimate should be below dense for 1% sparsity")
	}
	dc := NewDataCharacteristics(1000, 1000, 1024, 10_000)
	if EstimateSize(dc) != EstimateSizeSparse(1000, 1000, 0.01) {
		t.Error("EstimateSize should pick sparse path")
	}
	dcDense := NewDataCharacteristics(1000, 1000, 1024, 900_000)
	if EstimateSize(dcDense) != EstimateSizeDense(1000, 1000) {
		t.Error("EstimateSize should pick dense path")
	}
	if EstimateSize(UnknownCharacteristics()) != -1 {
		t.Error("unknown size should be -1")
	}
}

func TestExecTypeString(t *testing.T) {
	if ExecCP.String() != "CP" || ExecDist.String() != "DIST" || ExecFed.String() != "FED" {
		t.Error("ExecType strings wrong")
	}
}

func TestPropertySparsityBounds(t *testing.T) {
	f := func(rows, cols uint16, nnzRaw uint32) bool {
		r, c := int64(rows%1000)+1, int64(cols%1000)+1
		nnz := int64(nnzRaw) % (r * c)
		dc := NewDataCharacteristics(r, c, 1024, nnz)
		sp := dc.Sparsity()
		return sp >= 0 && sp <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyEstimateMonotonicInRows(t *testing.T) {
	f := func(rows uint16, cols uint16) bool {
		r, c := int64(rows%500)+1, int64(cols%500)+1
		return EstimateSizeDense(r, c) <= EstimateSizeDense(r+1, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
