package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"testing"

	"github.com/systemds/systemds-go/internal/matrix"
)

// determinismFingerprint survives across -count=N invocations of the test
// binary: the first invocation records the run's fingerprint, later ones must
// reproduce it exactly. (Fresh processes start empty again — cross-process
// stability is what the in-process double run plus Go's per-run map-order
// randomization make statistically meaningful: any surviving map iteration on
// the execution path draws a new seed per process and per run.)
var determinismFingerprint string

// TestCompressedLmLoopDeterminism is the determinism regression gate behind
// the maporder/nofma contracts: the compressed lm training loop (the PR 5
// acceptance workload) must produce bitwise-identical outputs and an
// identical ExplainPlan string when run twice in one process, and again when
// the test is repeated in the same process with -count=2 (the race target
// runs it that way).
func TestCompressedLmLoopDeterminism(t *testing.T) {
	x := lowCardFeatures(1500, 120, 81)
	y := matrix.RandUniform(1500, 1, -1, 1, 1.0, 82)
	inputs := map[string]any{"X": x, "y": y}

	run := func() string {
		t.Helper()
		eng := compressEngine(true)
		res, stats, err := eng.Execute(lmLoopScript, inputs, []string{"w", "s"})
		if err != nil {
			t.Fatalf("run failed: %v", err)
		}
		if stats.CompressStats.Compressions < 1 {
			t.Fatalf("compression did not fire (stats %+v)", stats.CompressStats)
		}
		explain, err := eng.ExplainPlan(lmLoopScript, inputs)
		if err != nil {
			t.Fatalf("explain failed: %v", err)
		}

		// the normal-equation solve exercises the compressed TSMM and
		// vector-matrix kernels; it must stay fully on the compressed path
		nres, nstats, err := eng.Execute(neLoopScript, inputs, []string{"w", "s"})
		if err != nil {
			t.Fatalf("normal-equation run failed: %v", err)
		}
		if nstats.CompressStats.Decompressions != 0 {
			t.Fatalf("normal-equation solve decompressed %d times (by op: %v), want 0",
				nstats.CompressStats.Decompressions, nstats.CompressStats.DecompressionsByOp)
		}

		// Fingerprint the exact bit patterns, not rounded values: the bitwise
		// kernel contract promises float-for-float reproducibility.
		h := sha256.New()
		var buf [8]byte
		hashVec := func(w *matrix.MatrixBlock) {
			for r := 0; r < w.Rows(); r++ {
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(w.Get(r, 0)))
				h.Write(buf[:])
			}
		}
		hashVec(res["w"].(*matrix.MatrixBlock))
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(res["s"].(float64)))
		h.Write(buf[:])
		hashVec(nres["w"].(*matrix.MatrixBlock))
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(nres["s"].(float64)))
		h.Write(buf[:])
		h.Write([]byte(explain))
		return hex.EncodeToString(h.Sum(nil))
	}

	first, second := run(), run()
	if first != second {
		t.Fatalf("two in-process runs diverged: %s vs %s", first, second)
	}
	if determinismFingerprint == "" {
		determinismFingerprint = first
	} else if determinismFingerprint != first {
		t.Fatalf("repeated run (-count) diverged from the first: %s vs %s", determinismFingerprint, first)
	}
}
