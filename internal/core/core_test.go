package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/runtime"
)

func newTestEngine() *Engine {
	cfg := runtime.DefaultConfig()
	cfg.Parallelism = 4
	return NewEngine(cfg)
}

func execScript(t *testing.T, e *Engine, script string, inputs map[string]any, outputs []string) map[string]any {
	t.Helper()
	res, _, err := e.Execute(script, inputs, outputs)
	if err != nil {
		t.Fatalf("Execute failed: %v\nscript:\n%s", err, script)
	}
	return res
}

func asMatrix(t *testing.T, v any) *matrix.MatrixBlock {
	t.Helper()
	m, ok := v.(*matrix.MatrixBlock)
	if !ok {
		t.Fatalf("expected matrix, got %T", v)
	}
	return m
}

func TestScalarArithmetic(t *testing.T) {
	e := newTestEngine()
	res := execScript(t, e, `
a = 2 + 3 * 4
b = (2 + 3) * 4
c = 2 ^ 3 ^ 2
d = 10 %% 3
e = 10 %/% 3
f = a > b
`, nil, []string{"a", "b", "c", "d", "e", "f"})
	if res["a"].(float64) != 14 || res["b"].(float64) != 20 {
		t.Errorf("a=%v b=%v", res["a"], res["b"])
	}
	if res["c"].(float64) != 512 {
		t.Errorf("c=%v", res["c"])
	}
	if res["d"].(float64) != 1 || res["e"].(float64) != 3 {
		t.Errorf("d=%v e=%v", res["d"], res["e"])
	}
	if res["f"].(bool) != false {
		t.Errorf("f=%v", res["f"])
	}
}

func TestMatrixOperations(t *testing.T) {
	e := newTestEngine()
	x := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	res := execScript(t, e, `
s = sum(X)
m = mean(X)
tX = t(X)
P = X %*% tX
cs = colSums(X)
r = nrow(X)
c = ncol(X)
e = X * 2 + 1
`, map[string]any{"X": x}, []string{"s", "m", "tX", "P", "cs", "r", "c", "e"})
	if res["s"].(float64) != 10 || res["m"].(float64) != 2.5 {
		t.Errorf("s=%v m=%v", res["s"], res["m"])
	}
	tx := asMatrix(t, res["tX"])
	if !tx.Equals(matrix.Transpose(x), 0) {
		t.Error("transpose wrong")
	}
	p := asMatrix(t, res["P"])
	want, _ := matrix.Multiply(x, matrix.Transpose(x), 1)
	if !p.Equals(want, 1e-12) {
		t.Error("X %*% t(X) wrong")
	}
	if res["r"].(float64) != 2 || res["c"].(float64) != 2 {
		t.Errorf("dims %v %v", res["r"], res["c"])
	}
	ee := asMatrix(t, res["e"])
	if ee.Get(1, 1) != 9 {
		t.Errorf("elementwise = %v", ee.Get(1, 1))
	}
}

func TestControlFlow(t *testing.T) {
	e := newTestEngine()
	res := execScript(t, e, `
x = 0
for (i in 1:10) {
  x = x + i
}
y = 0
i = 0
while (i < 5) {
  i = i + 1
  y = y + i * i
}
if (x > 50) {
  z = "big"
} else {
  z = "small"
}
`, nil, []string{"x", "y", "z"})
	if res["x"].(float64) != 55 {
		t.Errorf("x=%v", res["x"])
	}
	if res["y"].(float64) != 55 {
		t.Errorf("y=%v", res["y"])
	}
	if res["z"].(string) != "big" {
		t.Errorf("z=%v", res["z"])
	}
}

func TestIndexingAndLeftIndexing(t *testing.T) {
	e := newTestEngine()
	x := matrix.FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	res := execScript(t, e, `
a = X[1:2, 2:3]
b = X[, 1]
c = X[3, ]
v = as.scalar(X[2, 2])
Y = X
Y[1, 1] = 100
Y[, 3] = matrix(0, 3, 1)
`, map[string]any{"X": x}, []string{"a", "b", "c", "v", "Y"})
	a := asMatrix(t, res["a"])
	if !a.Equals(matrix.FromRows([][]float64{{2, 3}, {5, 6}}), 0) {
		t.Errorf("a = %v", a)
	}
	b := asMatrix(t, res["b"])
	if b.Rows() != 3 || b.Get(2, 0) != 7 {
		t.Errorf("b = %v", b)
	}
	c := asMatrix(t, res["c"])
	if c.Cols() != 3 || c.Get(0, 1) != 8 {
		t.Errorf("c = %v", c)
	}
	if res["v"].(float64) != 5 {
		t.Errorf("v = %v", res["v"])
	}
	y := asMatrix(t, res["Y"])
	if y.Get(0, 0) != 100 || y.Get(1, 2) != 0 || y.Get(2, 1) != 8 {
		t.Errorf("Y = %v", y)
	}
	// X unchanged (immutability)
	if x.Get(0, 0) != 1 {
		t.Error("input mutated")
	}
}

func TestUserDefinedFunctions(t *testing.T) {
	e := newTestEngine()
	res := execScript(t, e, `
square = function(Double x) return (Double y) {
  y = x * x
}
addmul = function(Double a, Double b, Double f = 2) return (Double s, Double p) {
  s = a + b
  p = a * b * f
}
q = square(7)
[s, p] = addmul(3, 4)
[s2, p2] = addmul(3, 4, f=10)
`, nil, []string{"q", "s", "p", "s2", "p2"})
	if res["q"].(float64) != 49 {
		t.Errorf("q=%v", res["q"])
	}
	if res["s"].(float64) != 7 || res["p"].(float64) != 24 {
		t.Errorf("s=%v p=%v", res["s"], res["p"])
	}
	if res["p2"].(float64) != 120 {
		t.Errorf("p2=%v", res["p2"])
	}
}

func TestBuiltinLmDSRecoversWeights(t *testing.T) {
	e := newTestEngine()
	x, y := matrix.SyntheticRegression(300, 10, 1.0, 3)
	res := execScript(t, e, `
B = lmDS(X, y, 0.0000001)
yhat = lmPredict(X, B)
err = mse(yhat, y)
`, map[string]any{"X": x, "y": y}, []string{"B", "err"})
	if res["err"].(float64) > 0.01 {
		t.Errorf("mse = %v, want near zero", res["err"])
	}
	b := asMatrix(t, res["B"])
	if b.Rows() != 10 || b.Cols() != 1 {
		t.Errorf("B dims %dx%d", b.Rows(), b.Cols())
	}
}

func TestBuiltinLmCGMatchesLmDS(t *testing.T) {
	e := newTestEngine()
	x, y := matrix.SyntheticRegression(200, 8, 1.0, 5)
	res := execScript(t, e, `
B1 = lmDS(X, y, 0.001)
B2 = lmCG(X, y, 0.001)
d = max(abs(B1 - B2))
`, map[string]any{"X": x, "y": y}, []string{"d"})
	if res["d"].(float64) > 1e-4 {
		t.Errorf("lmCG differs from lmDS by %v", res["d"])
	}
}

func TestBuiltinLmDispatch(t *testing.T) {
	e := newTestEngine()
	x, y := matrix.SyntheticRegression(100, 5, 1.0, 7)
	res := execScript(t, e, `
B = lm(X, y, reg=0.0001, verbose=FALSE)
`, map[string]any{"X": x, "y": y}, []string{"B"})
	if asMatrix(t, res["B"]).Rows() != 5 {
		t.Error("lm dispatch produced wrong dims")
	}
}

func TestGridSearchLMWorkload(t *testing.T) {
	e := newTestEngine()
	x, y := matrix.SyntheticRegression(200, 6, 1.0, 11)
	lambdas := matrix.FromRows([][]float64{{0.0001}, {0.01}, {1}, {100}})
	res := execScript(t, e, `
[B, losses] = gridSearchLM(X, y, lambdas)
`, map[string]any{"X": x, "y": y, "lambdas": lambdas}, []string{"B", "losses"})
	b := asMatrix(t, res["B"])
	losses := asMatrix(t, res["losses"])
	if b.Cols() != 4 || b.Rows() != 6 {
		t.Errorf("B dims %dx%d", b.Rows(), b.Cols())
	}
	if losses.Rows() != 4 {
		t.Errorf("losses dims %dx%d", losses.Rows(), losses.Cols())
	}
	// stronger regularization should not decrease the training loss
	if losses.Get(0, 0) > losses.Get(3, 0)+1e-9 {
		t.Errorf("losses not monotone: %v vs %v", losses.Get(0, 0), losses.Get(3, 0))
	}
}

func TestReuseAcrossModels(t *testing.T) {
	cfg := runtime.DefaultConfig()
	cfg.Parallelism = 4
	cfg.ReuseEnabled = true
	e := NewEngine(cfg)
	x, y := matrix.SyntheticRegression(400, 20, 1.0, 13)
	lambdas := matrix.FromRows([][]float64{{0.001}, {0.01}, {0.1}, {1}, {10}})
	script := `
[B, losses] = gridSearchLM(X, y, lambdas)
`
	res, stats, err := e.Execute(script, map[string]any{"X": x, "y": y, "lambdas": lambdas}, []string{"B"})
	if err != nil {
		t.Fatal(err)
	}
	if asMatrix(t, res["B"]).Cols() != 5 {
		t.Error("wrong number of models")
	}
	if stats.CacheStats.Hits == 0 {
		t.Errorf("expected reuse cache hits, stats = %+v", stats.CacheStats)
	}
	// correctness under reuse: compare against no-reuse engine
	e2 := newTestEngine()
	res2 := execScript(t, e2, script, map[string]any{"X": x, "y": y, "lambdas": lambdas}, []string{"B"})
	if !asMatrix(t, res["B"]).Equals(asMatrix(t, res2["B"]), 1e-9) {
		t.Error("reuse changed the computed models")
	}
}

func TestSteplmSelectsInformativeFeatures(t *testing.T) {
	e := newTestEngine()
	// y depends only on the first two of six features
	n := 120
	x := matrix.RandUniform(n, 6, -1, 1, 1.0, 21)
	y := matrix.NewDense(n, 1)
	for i := 0; i < n; i++ {
		y.Set(i, 0, 3*x.Get(i, 0)-2*x.Get(i, 1)+0.001*float64(i%3))
	}
	res := execScript(t, e, `
[B, S] = steplm(X, y, 0.000001, 0.001)
nsel = sum(S)
`, map[string]any{"X": x, "y": y}, []string{"S", "nsel"})
	s := asMatrix(t, res["S"])
	if s.Get(0, 0) != 1 || s.Get(0, 1) != 1 {
		t.Errorf("steplm did not select the informative features: %v", s)
	}
	if res["nsel"].(float64) > 4 {
		t.Errorf("steplm selected too many features: %v", res["nsel"])
	}
}

func TestPCA(t *testing.T) {
	e := newTestEngine()
	// data with variance concentrated in one direction
	n := 100
	x := matrix.NewDense(n, 3)
	base := matrix.RandNormal(n, 1, 1.0, 31)
	noise := matrix.RandNormal(n, 3, 1.0, 32)
	for i := 0; i < n; i++ {
		x.Set(i, 0, 10*base.Get(i, 0)+0.1*noise.Get(i, 0))
		x.Set(i, 1, 5*base.Get(i, 0)+0.1*noise.Get(i, 1))
		x.Set(i, 2, 0.1*noise.Get(i, 2))
	}
	res := execScript(t, e, `
[Xr, PC, ev] = pca(X, 2)
`, map[string]any{"X": x}, []string{"Xr", "PC", "ev"})
	xr := asMatrix(t, res["Xr"])
	ev := asMatrix(t, res["ev"])
	if xr.Rows() != n || xr.Cols() != 2 {
		t.Errorf("Xr dims %dx%d", xr.Rows(), xr.Cols())
	}
	if ev.Get(0, 0) < ev.Get(1, 0) {
		t.Error("eigenvalues not sorted descending")
	}
	if ev.Get(0, 0) < 50 {
		t.Errorf("first eigenvalue %v too small for dominant direction", ev.Get(0, 0))
	}
}

func TestKmeansSeparatesClusters(t *testing.T) {
	e := newTestEngine()
	// two well separated clusters
	n := 60
	x := matrix.NewDense(n, 2)
	for i := 0; i < n/2; i++ {
		x.Set(i, 0, 0+0.1*float64(i%5))
		x.Set(i, 1, 0+0.1*float64(i%3))
	}
	for i := n / 2; i < n; i++ {
		x.Set(i, 0, 10+0.1*float64(i%5))
		x.Set(i, 1, 10+0.1*float64(i%3))
	}
	res := execScript(t, e, `
[C, assign] = kmeans(X, 2, 20)
`, map[string]any{"X": x}, []string{"C", "assign"})
	assign := asMatrix(t, res["assign"])
	// all points in the first half must share a label, all in the second half
	// the other label
	first := assign.Get(0, 0)
	for i := 1; i < n/2; i++ {
		if assign.Get(i, 0) != first {
			t.Fatalf("cluster assignment not consistent in first cluster")
		}
	}
	second := assign.Get(n/2, 0)
	if second == first {
		t.Fatal("clusters collapsed")
	}
	for i := n / 2; i < n; i++ {
		if assign.Get(i, 0) != second {
			t.Fatalf("cluster assignment not consistent in second cluster")
		}
	}
}

func TestClassificationBuiltins(t *testing.T) {
	e := newTestEngine()
	x, y01 := matrix.SyntheticClassification(300, 5, 1.0, 41)
	// l2svm expects -1/+1 labels
	ypm := matrix.ScalarOp(matrix.ScalarOp(y01, 2, matrix.OpMul, false, 1), 1, matrix.OpSub, false, 1)
	res := execScript(t, e, `
w = l2svm(X, ypm, 0.0001, 0.1, 200)
scores = X %*% w
pred = (scores > 0) * 2 - 1
acc = accuracy(pred, ypm)

wl = logRegGD(X, y01, 0.0001, 0.5, 300)
probs = sigmoid(X %*% wl)
predl = probs > 0.5
accl = accuracy(predl, y01)
`, map[string]any{"X": x, "ypm": ypm, "y01": y01}, []string{"acc", "accl"})
	if res["acc"].(float64) < 0.9 {
		t.Errorf("l2svm training accuracy = %v", res["acc"])
	}
	if res["accl"].(float64) < 0.9 {
		t.Errorf("logRegGD training accuracy = %v", res["accl"])
	}
}

func TestDataPrepBuiltins(t *testing.T) {
	e := newTestEngine()
	x := matrix.FromRows([][]float64{{1, 100}, {2, 200}, {3, 300}, {4, 400}})
	withNaN := x.Copy()
	withNaN.Set(1, 0, math.NaN())
	res := execScript(t, e, `
S = scale(X)
N = normalize(X)
I = imputeByMean(Z)
W = winsorize(X, 0.25, 0.75)
O = outlierByIQR(X, 1.5)
`, map[string]any{"X": x, "Z": withNaN}, []string{"S", "N", "I", "W", "O"})
	s := asMatrix(t, res["S"])
	if math.Abs(matrix.Mean(s, 1)) > 1e-9 {
		t.Errorf("scaled mean = %v", matrix.Mean(s, 1))
	}
	n := asMatrix(t, res["N"])
	if matrix.Min(n, 1) != 0 || matrix.Max(n, 1) != 1 {
		t.Errorf("normalize range [%v, %v]", matrix.Min(n, 1), matrix.Max(n, 1))
	}
	i := asMatrix(t, res["I"])
	// NaN cell replaced by mean of remaining values (1+3+4)/3
	if math.Abs(i.Get(1, 0)-8.0/3.0) > 1e-9 {
		t.Errorf("imputed value = %v", i.Get(1, 0))
	}
	w := asMatrix(t, res["W"])
	if w.Get(0, 0) < 1 || w.Get(3, 0) > 4 {
		t.Error("winsorize out of range")
	}
	if asMatrix(t, res["O"]).Rows() != 4 {
		t.Error("outlierByIQR changed row count")
	}
}

func TestSplitCrossValAndMetrics(t *testing.T) {
	e := newTestEngine()
	x, y := matrix.SyntheticRegression(200, 4, 1.0, 51)
	res := execScript(t, e, `
[Xtr, ytr, Xte, yte] = splitTrainTest(X, y, 0.75)
B = lmDS(Xtr, ytr, 0.0000001)
yhat = lmPredict(Xte, B)
testR2 = r2(yhat, yte)
e1 = rmse(yhat, yte)
[cvErr, meanErr] = crossValLM(X, y, 4, 0.0000001)
`, map[string]any{"X": x, "y": y}, []string{"Xtr", "Xte", "testR2", "e1", "cvErr", "meanErr"})
	if asMatrix(t, res["Xtr"]).Rows() != 150 || asMatrix(t, res["Xte"]).Rows() != 50 {
		t.Error("split sizes wrong")
	}
	if res["testR2"].(float64) < 0.99 {
		t.Errorf("test R2 = %v", res["testR2"])
	}
	if res["e1"].(float64) > 0.1 {
		t.Errorf("rmse = %v", res["e1"])
	}
	cv := asMatrix(t, res["cvErr"])
	if cv.Rows() != 4 {
		t.Errorf("cv errors dims %dx%d", cv.Rows(), cv.Cols())
	}
	if res["meanErr"].(float64) > 0.1 {
		t.Errorf("cv mean error = %v", res["meanErr"])
	}
}

func TestConfusionMatrixAndAccuracy(t *testing.T) {
	e := newTestEngine()
	y := matrix.FromRows([][]float64{{1}, {2}, {1}, {2}})
	yhat := matrix.FromRows([][]float64{{1}, {2}, {2}, {2}})
	res := execScript(t, e, `
CM = confusionMatrix(yhat, y)
acc = accuracy(yhat, y)
`, map[string]any{"y": y, "yhat": yhat}, []string{"CM", "acc"})
	cm := asMatrix(t, res["CM"])
	if cm.Get(0, 0) != 1 || cm.Get(1, 1) != 2 || cm.Get(0, 1) != 1 {
		t.Errorf("confusion matrix = %v", cm)
	}
	if res["acc"].(float64) != 0.75 {
		t.Errorf("accuracy = %v", res["acc"])
	}
}

func TestPrintAndStringConcat(t *testing.T) {
	e := newTestEngine()
	var buf bytes.Buffer
	e.SetOutput(&buf)
	execScript(t, e, `
x = 42
print("the answer is " + x)
`, nil, nil)
	if !strings.Contains(buf.String(), "the answer is 42") {
		t.Errorf("print output = %q", buf.String())
	}
}

func TestStopAndErrors(t *testing.T) {
	e := newTestEngine()
	_, _, err := e.Execute(`stop("boom")`, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("expected stop error, got %v", err)
	}
	_, _, err = e.Execute(`x = undefinedFunction(1)`, nil, nil)
	if err == nil {
		t.Error("expected unknown function error")
	}
	_, _, err = e.Execute(`x = 1 +`, nil, nil)
	if err == nil {
		t.Error("expected parse error")
	}
	_, _, err = e.Execute(`y = X %*% Z`, map[string]any{"X": matrix.NewDense(2, 3), "Z": matrix.NewDense(2, 3)}, []string{"y"})
	if err == nil {
		t.Error("expected dimension mismatch error")
	}
	// missing output
	_, _, err = e.Execute(`x = 1`, nil, []string{"nothere"})
	if err == nil {
		t.Error("expected missing output error")
	}
}

func TestParforMatchesSequential(t *testing.T) {
	e := newTestEngine()
	x := matrix.RandUniform(50, 8, -1, 1, 1.0, 61)
	script := `
R = matrix(0, 1, ncol(X))
%s (j in 1:ncol(X)) {
  col = X[, j]
  R[1, j] = sum(col * col)
}
`
	seq := execScript(t, e, strings.Replace(script, "%s", "for", 1), map[string]any{"X": x}, []string{"R"})
	par := execScript(t, e, strings.Replace(script, "%s", "parfor", 1), map[string]any{"X": x}, []string{"R"})
	if !asMatrix(t, seq["R"]).Equals(asMatrix(t, par["R"]), 1e-12) {
		t.Error("parfor result differs from sequential for")
	}
}

func TestPreparedScriptRepeatedExecution(t *testing.T) {
	e := newTestEngine()
	prepared, err := e.Prepare(`
yhat = X %*% B
s = sum(yhat)
`, []string{"s"})
	if err != nil {
		t.Fatal(err)
	}
	b := matrix.FromRows([][]float64{{1}, {1}})
	for i := 1; i <= 3; i++ {
		x := matrix.Fill(2, 2, float64(i))
		out, err := prepared.Execute(map[string]any{"X": x, "B": b})
		if err != nil {
			t.Fatal(err)
		}
		if out["s"].(float64) != float64(4*i) {
			t.Errorf("run %d: s = %v", i, out["s"])
		}
	}
}

func TestEngineExecuteUnsupportedInput(t *testing.T) {
	e := newTestEngine()
	_, _, err := e.Execute(`x = 1`, map[string]any{"bad": struct{}{}}, nil)
	if err == nil {
		t.Error("expected unsupported input type error")
	}
}
