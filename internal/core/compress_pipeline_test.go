package core

import (
	"math"
	"strings"
	"testing"

	sdsio "github.com/systemds/systemds-go/internal/io"
	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/runtime"
)

// compressEngine builds an engine with compression toggled.
func compressEngine(compression bool) *Engine {
	cfg := runtime.DefaultConfig()
	cfg.CompressionEnabled = compression
	return NewEngine(cfg)
}

// lowCardFeatures builds a rows x cols low-cardinality feature matrix (5
// distinct values per column) — the regime compressed linear algebra exists
// for.
func lowCardFeatures(rows, cols int, seed int64) *matrix.MatrixBlock {
	noise := matrix.RandUniform(rows, cols, 0, 1, 1.0, seed)
	out := matrix.NewDense(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			out.Set(r, c, math.Floor(noise.Get(r, c)*5))
		}
	}
	out.RecomputeNNZ()
	return out
}

// lmLoopScript is a 10-epoch gradient-descent linear regression loop: the
// loop body re-reads X twice per iteration (X %*% w and t(X) %*% r), which is
// exactly the reuse scope the compression decision site fires for.
const lmLoopScript = `w = matrix(0, rows=ncol(X), cols=1)
for (i in 1:10) {
  q = X %*% w
  g = t(X) %*% (q - y)
  w = w - 0.0000001 * g
}
s = sum(w)`

// neLoopScript is a 10-epoch normal-equation linear regression loop: every
// epoch recomputes the Gram matrix t(X) %*% X (the tsmm rewrite catches the
// pattern) and t(X) %*% y, so on the compressed path both come straight off
// the column-group dictionaries and X never materializes.
const neLoopScript = `w = matrix(0, rows=ncol(X), cols=1)
for (i in 1:10) {
  G = t(X) %*% X
  b = t(X) %*% y
  R = G + diag(matrix(0.001, rows=ncol(X), cols=1))
  w = solve(R, b)
}
s = sum(w)`

// TestCompressedNormalEquationLm is the acceptance test of deep compressed
// execution: a 10-epoch normal-equation lm loop over a 2k x 200
// low-cardinality matrix runs with at least one compression and exactly zero
// decompressions — the Gram matrix comes from the compressed TSMM kernel
// (counts-weighted dictionary self and cross products), t(X) %*% y from the
// vector-matrix kernel over the lazy transpose view — and matches the
// uncompressed CP run within 1e-9.
func TestCompressedNormalEquationLm(t *testing.T) {
	x := lowCardFeatures(2000, 200, 101)
	y := matrix.RandUniform(2000, 1, -1, 1, 1.0, 102)
	inputs := map[string]any{"X": x, "y": y}
	outputs := []string{"w", "s"}

	comp, cstats, err := compressEngine(true).Execute(neLoopScript, inputs, outputs)
	if err != nil {
		t.Fatalf("compressed run failed: %v", err)
	}
	plain, _, err := compressEngine(false).Execute(neLoopScript, inputs, outputs)
	if err != nil {
		t.Fatalf("uncompressed run failed: %v", err)
	}

	if cstats.CompressStats.Compressions < 1 {
		t.Errorf("compressions = %d, want >= 1", cstats.CompressStats.Compressions)
	}
	if cstats.CompressStats.Decompressions != 0 {
		t.Errorf("decompressions = %d, want 0 on the normal-equation hot path (by op: %v)",
			cstats.CompressStats.Decompressions, cstats.CompressStats.DecompressionsByOp)
	}
	if len(cstats.CompressStats.DecompressionsByOp) != 0 {
		t.Errorf("per-opcode decompression map not empty: %v", cstats.CompressStats.DecompressionsByOp)
	}
	// the Gram matrix ran on the compressed TSMM kernel, recorded with its
	// group-type histogram
	foundCTSMM := false
	for _, pr := range cstats.PlanStats {
		if pr.Op == "tsmm" && strings.HasPrefix(pr.Plan, "ctsmm:") {
			foundCTSMM = true
		}
	}
	if !foundCTSMM {
		t.Errorf("no ctsmm plan record in PlanStats: %+v", cstats.PlanStats)
	}

	cw, pw := comp["w"].(*matrix.MatrixBlock), plain["w"].(*matrix.MatrixBlock)
	for r := 0; r < pw.Rows(); r++ {
		if re := relErr(cw.Get(r, 0), pw.Get(r, 0)); re > 1e-9 {
			t.Fatalf("compressed w row %d differs: %v vs %v (rel err %g)", r, cw.Get(r, 0), pw.Get(r, 0), re)
		}
	}
	if re := relErr(comp["s"].(float64), plain["s"].(float64)); re > 1e-9 {
		t.Errorf("sum differs: rel err %g", re)
	}
}

// TestDecompressionsAttributedPerOpcode drives a workload that is NOT fully
// on the compressed path (a cellwise add against an incompressible matrix has
// no compressed kernel) and asserts the fallback decompression is counted
// and attributed: the per-opcode map totals exactly the decompression count,
// and memoization keeps the charge at one despite repeated reads.
func TestDecompressionsAttributedPerOpcode(t *testing.T) {
	x := lowCardFeatures(2000, 200, 121)
	n := matrix.RandUniform(2000, 200, 0, 1, 1.0, 122)
	script := `acc = 0
for (i in 1:3) {
  Z = X + N
  acc = acc + sum(Z) + sum(X %*% matrix(1, rows=ncol(X), cols=1))
}`
	_, stats, err := compressEngine(true).Execute(script, map[string]any{"X": x, "N": n}, []string{"acc"})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if stats.CompressStats.Compressions < 1 {
		t.Fatalf("compression did not fire (stats %+v)", stats.CompressStats)
	}
	if stats.CompressStats.Decompressions != 1 {
		t.Errorf("decompressions = %d, want exactly 1 (memoized across 3 epochs), by op: %v",
			stats.CompressStats.Decompressions, stats.CompressStats.DecompressionsByOp)
	}
	var total int64
	for op, v := range stats.CompressStats.DecompressionsByOp {
		if op == "" {
			t.Errorf("empty opcode key in per-opcode map: %v", stats.CompressStats.DecompressionsByOp)
		}
		total += v
	}
	if total != stats.CompressStats.Decompressions {
		t.Errorf("per-opcode map totals %d, want %d: %v",
			total, stats.CompressStats.Decompressions, stats.CompressStats.DecompressionsByOp)
	}
}

// TestCompressedLoopAcceptance is the acceptance test of the compression
// subsystem: an iterative script over a low-cardinality matrix runs with
// compression auto-selected by the planner, the stats show at least one
// compression and zero decompressions on the loop hot path, and the results
// match the uncompressed run within 1e-9.
func TestCompressedLoopAcceptance(t *testing.T) {
	x := lowCardFeatures(2000, 200, 21)
	y := matrix.RandUniform(2000, 1, -1, 1, 1.0, 22)
	inputs := map[string]any{"X": x, "y": y}
	outputs := []string{"w", "s"}

	comp, cstats, err := compressEngine(true).Execute(lmLoopScript, inputs, outputs)
	if err != nil {
		t.Fatalf("compressed run failed: %v", err)
	}
	plain, pstats, err := compressEngine(false).Execute(lmLoopScript, inputs, outputs)
	if err != nil {
		t.Fatalf("uncompressed run failed: %v", err)
	}

	// the planner auto-selected compression for X and the loop ran on it
	if cstats.CompressStats.Compressions < 1 {
		t.Errorf("compressions = %d, want >= 1", cstats.CompressStats.Compressions)
	}
	if cstats.CompressStats.Decompressions != 0 {
		t.Errorf("decompressions = %d, want 0 on the loop hot path", cstats.CompressStats.Decompressions)
	}
	if cstats.CompressStats.CompressedOps < 20 {
		t.Errorf("compressed ops = %d, want >= 20 (MV and VM per epoch)", cstats.CompressStats.CompressedOps)
	}
	if cstats.CompressStats.BytesCompressed >= cstats.CompressStats.BytesUncompressed {
		t.Errorf("compressed bytes %d not smaller than uncompressed %d",
			cstats.CompressStats.BytesCompressed, cstats.CompressStats.BytesUncompressed)
	}
	// a compress plan record reports the achieved size next to the estimate
	foundRecord := false
	for _, pr := range cstats.PlanStats {
		if pr.Op == "compress" && pr.Plan != "reject" {
			foundRecord = true
			if pr.ActualBytes <= 0 {
				t.Errorf("compress plan record has actual bytes %d", pr.ActualBytes)
			}
		}
	}
	if !foundRecord {
		t.Errorf("no compress plan record in PlanStats")
	}
	// the uncompressed engine never compressed
	if pstats.CompressStats.Compressions != 0 || pstats.CompressStats.CompressedOps != 0 {
		t.Errorf("uncompressed run shows compression activity: %+v", pstats.CompressStats)
	}

	// results match within 1e-9 relative error per cell
	cw, pw := comp["w"].(*matrix.MatrixBlock), plain["w"].(*matrix.MatrixBlock)
	for r := 0; r < pw.Rows(); r++ {
		if re := relErr(cw.Get(r, 0), pw.Get(r, 0)); re > 1e-9 {
			t.Fatalf("compressed w row %d differs: %v vs %v (rel err %g)", r, cw.Get(r, 0), pw.Get(r, 0), re)
		}
	}
	if re := relErr(comp["s"].(float64), plain["s"].(float64)); re > 1e-9 {
		t.Errorf("sum differs: rel err %g", re)
	}
}

// TestCompressedLoopBitwiseStable asserts that two compressed runs of the
// same script produce bit-identical results: sampling, encoding and the
// compressed kernels are all deterministic.
func TestCompressedLoopBitwiseStable(t *testing.T) {
	x := lowCardFeatures(1500, 120, 31)
	y := matrix.RandUniform(1500, 1, -1, 1, 1.0, 32)
	inputs := map[string]any{"X": x, "y": y}

	run := func() *matrix.MatrixBlock {
		t.Helper()
		res, stats, err := compressEngine(true).Execute(lmLoopScript, inputs, []string{"w"})
		if err != nil {
			t.Fatalf("run failed: %v", err)
		}
		if stats.CompressStats.Compressions < 1 {
			t.Fatalf("compression did not fire (stats %+v)", stats.CompressStats)
		}
		return res["w"].(*matrix.MatrixBlock)
	}
	w1, w2 := run(), run()
	for r := 0; r < w1.Rows(); r++ {
		if w1.Get(r, 0) != w2.Get(r, 0) {
			t.Fatalf("row %d differs across runs: %v vs %v", r, w1.Get(r, 0), w2.Get(r, 0))
		}
	}
}

// TestCompressionRejectedForIncompressibleData drives the runtime planner's
// reject path: continuous noise has no low-cardinality or run structure, so
// the sample-based planner rejects and the loop runs uncompressed — with
// identical results.
func TestCompressionRejectedForIncompressibleData(t *testing.T) {
	x := matrix.RandUniform(2000, 200, 0, 1, 1.0, 41)
	y := matrix.RandUniform(2000, 1, -1, 1, 1.0, 42)
	inputs := map[string]any{"X": x, "y": y}

	comp, cstats, err := compressEngine(true).Execute(lmLoopScript, inputs, []string{"w"})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if cstats.CompressStats.Compressions != 0 {
		t.Errorf("compressions = %d, want 0 for incompressible data", cstats.CompressStats.Compressions)
	}
	if cstats.CompressStats.Rejected < 1 {
		t.Errorf("rejected = %d, want >= 1", cstats.CompressStats.Rejected)
	}
	plain, _, err := compressEngine(false).Execute(lmLoopScript, inputs, []string{"w"})
	if err != nil {
		t.Fatalf("uncompressed run failed: %v", err)
	}
	if !comp["w"].(*matrix.MatrixBlock).Equals(plain["w"].(*matrix.MatrixBlock), 0) {
		t.Errorf("rejected-compression run should be bitwise equal to the plain run")
	}
}

// TestCompressionSiteNoFireBelowThreshold asserts the compile-time half of
// the decision: operands below the size floor never reach the runtime
// planner (no compression, no rejection — the site lowered to an alias).
func TestCompressionSiteNoFireBelowThreshold(t *testing.T) {
	x := lowCardFeatures(100, 20, 51) // 16 KB << CompressMinBytes
	y := matrix.RandUniform(100, 1, -1, 1, 1.0, 52)
	_, stats, err := compressEngine(true).Execute(lmLoopScript, map[string]any{"X": x, "y": y}, []string{"w"})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if stats.CompressStats.Compressions != 0 || stats.CompressStats.Rejected != 0 {
		t.Errorf("small operand reached the runtime planner: %+v", stats.CompressStats)
	}
}

// TestExplainShowsCompressionSite asserts the decision site is visible in the
// compiled plan.
func TestExplainShowsCompressionSite(t *testing.T) {
	x := lowCardFeatures(2000, 200, 61)
	y := matrix.RandUniform(2000, 1, -1, 1, 1.0, 62)
	explain, err := compressEngine(true).ExplainPlan(lmLoopScript, map[string]any{"X": x, "y": y})
	if err != nil {
		t.Fatalf("explain failed: %v", err)
	}
	if !strings.Contains(explain, "Compress") {
		t.Errorf("explain output lacks the compression site:\n%s", explain)
	}
}

// TestExplainTagsCompressedKernels asserts EXPLAIN surfaces the compressed
// execution path per operator: the Gram matrix of the normal-equation loop is
// tagged with the compressed TSMM kernel (the compiler's cross-DAG tracking
// marks the loop-body read of X as compressed).
func TestExplainTagsCompressedKernels(t *testing.T) {
	x := lowCardFeatures(2000, 200, 131)
	y := matrix.RandUniform(2000, 1, -1, 1, 1.0, 132)
	explain, err := compressEngine(true).ExplainPlan(neLoopScript, map[string]any{"X": x, "y": y})
	if err != nil {
		t.Fatalf("explain failed: %v", err)
	}
	if !strings.Contains(explain, "kernel=ctsmm") {
		t.Errorf("explain output lacks the compressed TSMM kernel tag:\n%s", explain)
	}
}

// TestCompressedValueMapAndAggregates drives the dictionary-only update and
// direct-aggregate paths end to end: scalar ops and cellwise unaries on the
// compressed loop operand stay compressed, aggregates reduce over the
// dictionaries, and nothing on the path decompresses.
func TestCompressedValueMapAndAggregates(t *testing.T) {
	x := lowCardFeatures(2000, 200, 71)
	script := `acc = 0
for (i in 1:5) {
  Y = X * 2
  Z = abs(Y - 3)
  acc = acc + sum(Z) + max(X) + mean(Y)
  cs = colSums(Z)
  rs = rowSums(Y)
  acc = acc + sum(cs) + sum(rs)
}`
	inputs := map[string]any{"X": x}
	comp, cstats, err := compressEngine(true).Execute(script, inputs, []string{"acc"})
	if err != nil {
		t.Fatalf("compressed run failed: %v", err)
	}
	plain, _, err := compressEngine(false).Execute(script, inputs, []string{"acc"})
	if err != nil {
		t.Fatalf("plain run failed: %v", err)
	}
	if cstats.CompressStats.Compressions < 1 {
		t.Errorf("compressions = %d, want >= 1", cstats.CompressStats.Compressions)
	}
	if cstats.CompressStats.Decompressions != 0 {
		t.Errorf("decompressions = %d, want 0: scalar/unary/agg should stay compressed", cstats.CompressStats.Decompressions)
	}
	if re := relErr(comp["acc"].(float64), plain["acc"].(float64)); re > 1e-9 {
		t.Errorf("acc differs: %v vs %v (rel err %g)", comp["acc"], plain["acc"], re)
	}
}

// TestCompressedSinksDecompressTransparently asserts the "nothing breaks"
// half of the fallback policy at every sink: a compressed loop operand can be
// requested as a script output, printed, written to a file, and consumed
// through its lazy transpose by operators without a compressed kernel.
func TestCompressedSinksDecompressTransparently(t *testing.T) {
	x := lowCardFeatures(2000, 200, 81)
	dir := t.TempDir()
	out := dir + "/x.csv"
	script := `acc = 0
for (i in 1:3) {
  S = t(X)
  E = abs(S)
  acc = acc + sum(E) + sum(X %*% matrix(1, rows=ncol(X), cols=1))
}
print(nrow(X))
write(X, "` + out + `", format="csv")`
	res, stats, err := compressEngine(true).Execute(script, map[string]any{"X": x}, []string{"X", "acc"})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if stats.CompressStats.Compressions < 1 {
		t.Fatalf("compression did not fire (stats %+v)", stats.CompressStats)
	}
	// the compressed X came back as a plain matrix output, bit-identical
	got := res["X"].(*matrix.MatrixBlock)
	if !got.Equals(x, 0) {
		t.Errorf("compressed output decompressed incorrectly")
	}
	// the write sink produced the file
	back, err := sdsio.ReadMatrixCSV(out, sdsio.DefaultCSVOptions())
	if err != nil {
		t.Fatalf("written CSV unreadable: %v", err)
	}
	if back.Rows() != x.Rows() || back.Cols() != x.Cols() {
		t.Errorf("written CSV is %dx%d, want %dx%d", back.Rows(), back.Cols(), x.Rows(), x.Cols())
	}
	// the unary over t(X) matches the plain run
	plain, _, err := compressEngine(false).Execute(script, map[string]any{"X": x}, []string{"acc"})
	if err != nil {
		t.Fatalf("plain run failed: %v", err)
	}
	if re := relErr(res["acc"].(float64), plain["acc"].(float64)); re > 1e-9 {
		t.Errorf("acc differs: %v vs %v", res["acc"], plain["acc"])
	}
}

// TestCompressionSiteRecompilesAfterReassignment asserts stale compile-time
// characteristics do not pin the decision: an input below the size floor that
// grows above it before the loop still compresses, because the site for a
// reassigned variable compiles size-unknown and re-decides against live
// sizes.
func TestCompressionSiteRecompilesAfterReassignment(t *testing.T) {
	x := lowCardFeatures(100, 20, 91) // 16 KB input, below CompressMinBytes
	script := `X = rbind(X, X)
X = rbind(X, X)
X = rbind(X, X)
X = rbind(X, X)
X = rbind(X, X)
acc = 0
for (i in 1:3) {
  acc = acc + sum(X %*% matrix(1, rows=ncol(X), cols=1))
}`
	_, stats, err := compressEngine(true).Execute(script, map[string]any{"X": x}, []string{"acc"})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	// 100 -> 3200 rows x 20 cols = 512 KB: the site must fire on live sizes
	if stats.CompressStats.Compressions < 1 {
		t.Errorf("compression did not fire for the grown operand (stats %+v)", stats.CompressStats)
	}
}

// TestCompressionSiteHandlesConditionalReassignment asserts that a variable
// conditionally redefined before the loop is treated as stale: the site
// compiles size-unknown and fires against the live (grown) size.
func TestCompressionSiteHandlesConditionalReassignment(t *testing.T) {
	x := lowCardFeatures(100, 20, 95) // below the size floor at compile time
	script := `c = 1
if (c == 1) {
  X = rbind(X, X)
  X = rbind(X, X)
  X = rbind(X, X)
  X = rbind(X, X)
  X = rbind(X, X)
}
acc = 0
for (i in 1:3) {
  acc = acc + sum(X %*% matrix(1, rows=ncol(X), cols=1))
}`
	_, stats, err := compressEngine(true).Execute(script, map[string]any{"X": x}, []string{"acc"})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if stats.CompressStats.Compressions < 1 {
		t.Errorf("compression did not fire for the conditionally grown operand (stats %+v)", stats.CompressStats)
	}
}

// TestExplicitCompressCall asserts the user-facing form: compress(X) without
// a reuse argument fires on known-size data (the sample planner still guards
// against incompressible inputs).
func TestExplicitCompressCall(t *testing.T) {
	x := lowCardFeatures(2000, 200, 97)
	script := `X = compress(X)
s = sum(X)`
	res, stats, err := compressEngine(true).Execute(script, map[string]any{"X": x}, []string{"s"})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if stats.CompressStats.Compressions != 1 {
		t.Errorf("explicit compress(X) did not compress (stats %+v)", stats.CompressStats)
	}
	if re := relErr(res["s"].(float64), matrix.Sum(x, 1)); re > 1e-9 {
		t.Errorf("sum over explicitly compressed X differs: rel err %g", re)
	}
}
