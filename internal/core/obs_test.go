package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/obs"
	"github.com/systemds/systemds-go/internal/runtime"
)

// tracedEngine builds an engine with tracing plus the compressed and
// distributed backends enabled — the full span surface in one run.
func tracedEngine(memBudget int64) *Engine {
	cfg := runtime.DefaultConfig()
	cfg.TraceEnabled = true
	cfg.CompressionEnabled = true
	cfg.DistEnabled = true
	if memBudget > 0 {
		cfg.OperatorMemBudget = memBudget
	}
	return NewEngine(cfg)
}

// TestTracedCompressedLmRun is the acceptance scenario of the tracing layer:
// a compressed gradient-descent lm loop with the distributed backend enabled,
// traced end to end. The run span must exist, instruction spans must cover
// the bulk of it, the per-opcode table must agree with the plan records, and
// the Chrome trace export must be well-formed JSON.
func TestTracedCompressedLmRun(t *testing.T) {
	x := lowCardFeatures(2000, 200, 21)
	y := matrix.RandUniform(2000, 1, -1, 1, 1.0, 22)
	eng := tracedEngine(64 * 1024)

	_, stats, err := eng.Execute(lmLoopScript, map[string]any{"X": x, "y": y}, []string{"w", "s"})
	if err != nil {
		t.Fatalf("traced run failed: %v", err)
	}
	if len(stats.OpMetrics) == 0 {
		t.Fatal("traced run produced no op metrics")
	}

	recs := eng.TraceRecords()
	var run *obs.Record
	var instrNs int64
	instrOps := map[string]bool{}
	for i := range recs {
		r := recs[i]
		switch r.Cat {
		case obs.CatRun:
			if run != nil {
				t.Fatalf("multiple run spans in one traced run")
			}
			run = &recs[i]
		case obs.CatInstr:
			instrNs += r.Dur
			instrOps[r.Name] = true
		}
	}
	if run == nil {
		t.Fatal("no run span recorded")
	}
	if run.Dur <= 0 {
		t.Fatalf("run span has non-positive duration %d", run.Dur)
	}
	// instruction spans must cover >= 90% of the run wall time (they can sum
	// past 100% when the inter-op scheduler overlaps instructions)
	if coverage := float64(instrNs) / float64(run.Dur); coverage < 0.9 {
		t.Errorf("instruction spans cover %.1f%% of the run, want >= 90%%", coverage*100)
	}

	// the heavy-hitter table and the plan records describe the same run:
	// every recorded plan opcode executed as an instruction span
	for _, pr := range stats.PlanStats {
		if !instrOps[pr.Op] {
			t.Errorf("plan record op %q has no instruction span", pr.Op)
		}
	}
	// and the aggregated metrics carry the instruction opcodes
	metricOps := map[string]bool{}
	for _, m := range stats.OpMetrics {
		if m.Cat == obs.CatInstr {
			metricOps[m.Name] = true
		}
	}
	for op := range instrOps {
		if !metricOps[op] {
			t.Errorf("instruction opcode %q missing from OpMetrics", op)
		}
	}

	// the compressed loop leaves its kernel sub-phase fingerprints
	cats := map[string]bool{}
	for _, r := range recs {
		cats[r.Cat] = true
	}
	for _, want := range []string{obs.CatBlock, obs.CatCompress, obs.CatDist} {
		if !cats[want] {
			t.Errorf("no %q spans in the traced compressed+dist run", want)
		}
	}

	// the Chrome export is valid JSON with the expected envelope
	var buf bytes.Buffer
	if err := eng.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) < len(recs) {
		t.Errorf("trace export has %d events for %d records", len(parsed.TraceEvents), len(recs))
	}

	// annotated EXPLAIN joins the measured metrics onto the plan
	annotated, err := eng.ExplainPlanAnnotated(lmLoopScript, map[string]any{"X": x, "y": y})
	if err != nil {
		t.Fatalf("ExplainPlanAnnotated: %v", err)
	}
	if !bytes.Contains([]byte(annotated), []byte(" measured: n=")) {
		t.Errorf("annotated EXPLAIN carries no measured annotations:\n%s", annotated)
	}
}

// TestTracedSchedulerConcurrent runs a traced script under the inter-operator
// scheduler and the distributed backend so spans are emitted concurrently
// from the scheduler's worker pool and the dist task pool (the -race build of
// this test is the tracer's concurrency gate).
func TestTracedSchedulerConcurrent(t *testing.T) {
	cfg := runtime.DefaultConfig()
	cfg.TraceEnabled = true
	cfg.DistEnabled = true
	cfg.OperatorMemBudget = 8 * 1024
	cfg.InterOpParallelism = 4
	eng := NewEngine(cfg)

	x := matrix.RandUniform(400, 60, 0, 1, 1.0, 11)
	script := `A = X %*% t(X)
B = t(X) %*% X
s = sum(A) + sum(B)`
	_, stats, err := eng.Execute(script, map[string]any{"X": x}, []string{"s"})
	if err != nil {
		t.Fatalf("traced scheduled run failed: %v", err)
	}
	if len(stats.OpMetrics) == 0 {
		t.Fatal("no op metrics from scheduled traced run")
	}
	recs := eng.TraceRecords()
	var distSpans int
	for _, r := range recs {
		if r.Cat == obs.CatDist {
			distSpans++
		}
	}
	if distSpans == 0 {
		t.Error("no dist task spans despite the forced distributed backend")
	}
}

// TestTracingOffRecordsNothing pins the default: without TraceEnabled a run
// must leave the tracer empty and the stats without op metrics.
func TestTracingOffRecordsNothing(t *testing.T) {
	obs.Reset()
	cfg := runtime.DefaultConfig()
	eng := NewEngine(cfg)
	_, stats, err := eng.Execute(`s = sum(X)`, map[string]any{"X": matrix.RandUniform(50, 5, 0, 1, 1.0, 3)}, []string{"s"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.OpMetrics != nil {
		t.Errorf("untraced run produced op metrics: %v", stats.OpMetrics)
	}
	if recs := obs.Snapshot(); len(recs) != 0 {
		t.Errorf("untraced run recorded %d spans", len(recs))
	}
}
