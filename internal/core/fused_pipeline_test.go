package core

import (
	"math"
	"testing"

	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/runtime"
)

// fusedEngine builds an engine with fusion toggled.
func fusedEngine(fusion bool) *Engine {
	cfg := runtime.DefaultConfig()
	cfg.FusionDisabled = !fusion
	return NewEngine(cfg)
}

func relErr(a, b float64) float64 {
	d := math.Abs(a - b)
	return d / math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestFusedPipelineAcceptance is the acceptance test of the fusion subsystem:
// a DML script containing the mmchain pattern and cellwise-aggregate
// pipelines must execute the fused instructions (visible through the
// core.Stats fused counters) and produce results matching the unfused run
// within 1e-9 relative error.
func TestFusedPipelineAcceptance(t *testing.T) {
	x := matrix.RandUniform(300, 40, -1, 1, 1.0, 11)
	y := matrix.RandUniform(300, 40, -1, 1, 1.0, 12)
	v := matrix.RandUniform(40, 1, -1, 1, 1.0, 13)
	v2 := matrix.RandUniform(40, 1, -1, 1, 1.0, 15)
	w := matrix.RandUniform(300, 1, 0, 1, 1.0, 14)
	// g and h share t(X) after CSE — legal to fuse across (the fused kernel
	// reads X directly) — while the compute-bearing X %*% v intermediates are
	// distinct per chain
	script := `s = sum(X * Y)
q = sum((X - Y)^2)
g = t(X) %*% (X %*% v)
h = t(X) %*% (w * (X %*% v2))
r = rowSums(X * X)`
	inputs := map[string]any{"X": x, "Y": y, "v": v, "v2": v2, "w": w}
	outputs := []string{"s", "q", "g", "h", "r"}

	fused, fstats, err := fusedEngine(true).Execute(script, inputs, outputs)
	if err != nil {
		t.Fatalf("fused run failed: %v", err)
	}
	unfused, ustats, err := fusedEngine(false).Execute(script, inputs, outputs)
	if err != nil {
		t.Fatalf("unfused run failed: %v", err)
	}

	// the fused instructions actually fired
	if fstats.FusedStats.MMChainOps != 2 {
		t.Errorf("mmchain ops = %d, want 2 (xtxv and xtwxv)", fstats.FusedStats.MMChainOps)
	}
	if fstats.FusedStats.FusedAggOps != 3 {
		t.Errorf("fused agg ops = %d, want 3 (s, q, r)", fstats.FusedStats.FusedAggOps)
	}
	// the unfused run used none
	if ustats.FusedStats.MMChainOps != 0 || ustats.FusedStats.FusedAggOps != 0 {
		t.Errorf("unfused run executed fused instructions: %+v", ustats.FusedStats)
	}

	// results match within 1e-9 relative error
	for _, name := range []string{"s", "q"} {
		fv := fused[name].(float64)
		uv := unfused[name].(float64)
		if relErr(fv, uv) > 1e-9 {
			t.Errorf("%s: fused %v vs unfused %v", name, fv, uv)
		}
	}
	for _, name := range []string{"g", "h", "r"} {
		fm := fused[name].(*matrix.MatrixBlock)
		um := unfused[name].(*matrix.MatrixBlock)
		if fm.Rows() != um.Rows() || fm.Cols() != um.Cols() {
			t.Fatalf("%s: shape %dx%d vs %dx%d", name, fm.Rows(), fm.Cols(), um.Rows(), um.Cols())
		}
		for r := 0; r < fm.Rows(); r++ {
			for c := 0; c < fm.Cols(); c++ {
				if relErr(fm.Get(r, c), um.Get(r, c)) > 1e-9 {
					t.Fatalf("%s: cell (%d,%d) fused %v vs unfused %v", name, r, c, fm.Get(r, c), um.Get(r, c))
				}
			}
		}
	}
}

// TestFusedPipelineSparseInput drives the sparse-driver kernel through the
// full engine: a sparse X with an annihilating pipeline.
func TestFusedPipelineSparseInput(t *testing.T) {
	x := matrix.RandUniform(400, 50, -1, 1, 0.08, 21)
	x.ToSparse()
	y := matrix.RandUniform(400, 50, -1, 1, 1.0, 22)
	script := `s = sum(X * Y)`
	fused, fstats, err := fusedEngine(true).Execute(script, map[string]any{"X": x, "Y": y}, []string{"s"})
	if err != nil {
		t.Fatal(err)
	}
	unfused, _, err := fusedEngine(false).Execute(script, map[string]any{"X": x, "Y": y}, []string{"s"})
	if err != nil {
		t.Fatal(err)
	}
	if fstats.FusedStats.FusedAggOps != 1 {
		t.Errorf("fused agg ops = %d, want 1", fstats.FusedStats.FusedAggOps)
	}
	if relErr(fused["s"].(float64), unfused["s"].(float64)) > 1e-9 {
		t.Errorf("sparse fused s = %v, unfused %v", fused["s"], unfused["s"])
	}
}

// TestFusionMultiConsumerEndToEnd: when the cellwise intermediate is also a
// script output, fusion must not fire and the intermediate must be intact.
func TestFusionMultiConsumerEndToEnd(t *testing.T) {
	x := matrix.RandUniform(60, 20, -1, 1, 1.0, 31)
	y := matrix.RandUniform(60, 20, -1, 1, 1.0, 32)
	script := `P = X * Y
s = sum(P)`
	res, stats, err := fusedEngine(true).Execute(script, map[string]any{"X": x, "Y": y}, []string{"P", "s"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.FusedStats.FusedAggOps != 0 {
		t.Errorf("fused agg ops = %d, want 0 (P is multi-consumer)", stats.FusedStats.FusedAggOps)
	}
	p := res["P"].(*matrix.MatrixBlock)
	var want float64
	for r := 0; r < p.Rows(); r++ {
		for c := 0; c < p.Cols(); c++ {
			want += p.Get(r, c)
		}
	}
	if relErr(res["s"].(float64), want) > 1e-9 {
		t.Errorf("s = %v, sum(P) = %v", res["s"], want)
	}
}

// TestFusionInsideLoop exercises fusion through control flow and dynamic
// recompilation: the lmDS-style iteration accumulates fused mmchain hits per
// iteration.
func TestFusionInsideLoop(t *testing.T) {
	x := matrix.RandUniform(200, 30, -1, 1, 1.0, 41)
	v := matrix.RandUniform(30, 1, -1, 1, 1.0, 42)
	script := `acc = 0
for (i in 1:3) {
  g = t(X) %*% (X %*% v)
  acc = acc + sum(g)
}`
	_, stats, err := fusedEngine(true).Execute(script, map[string]any{"X": x, "v": v}, []string{"acc"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.FusedStats.MMChainOps != 3 {
		t.Errorf("mmchain ops = %d, want 3 (one per iteration)", stats.FusedStats.MMChainOps)
	}
}
