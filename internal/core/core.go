// Package core ties the SystemDS-Go components together into an engine: it
// compiles DML scripts against the builtin registry, binds in-memory inputs,
// executes the resulting runtime program in a control-program context, and
// returns the requested outputs together with execution statistics. It is the
// layer the public API (root package) and the command-line tools build on.
package core

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"github.com/systemds/systemds-go/internal/bufferpool"
	"github.com/systemds/systemds-go/internal/builtins"
	"github.com/systemds/systemds-go/internal/compiler"
	"github.com/systemds/systemds-go/internal/fed"
	"github.com/systemds/systemds-go/internal/frame"
	"github.com/systemds/systemds-go/internal/hops"
	"github.com/systemds/systemds-go/internal/lineage"
	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/obs"
	"github.com/systemds/systemds-go/internal/runtime"
	"github.com/systemds/systemds-go/internal/types"
)

// Engine is a SystemDS-Go session: configuration, builtin registry and the
// session-wide reuse cache shared by all executions (so intermediates can be
// reused across scripts in exploratory workflows). With a persistent lineage
// directory configured, the cache additionally spans processes: entries are
// written through to spill files and the cost-model calibration learned from
// each run's plan records is saved alongside them.
type Engine struct {
	cfg      *runtime.Config
	registry *builtins.Registry
	cache    *lineage.Cache
	out      io.Writer
	store    *runtime.PersistentLineageStore
	calib    *hops.Calibration
	calibPth string

	statsMu   sync.Mutex
	lastStats *Stats
}

// adaptivity state filenames inside the persistent lineage directory.
const (
	calibrationFile = "calibration.json"
	profileFile     = "machine_profile.json"
	// defaultPersistentBudget bounds the spill directory when the caller does
	// not set one.
	defaultPersistentBudget = int64(4) << 30
)

// runNonce distinguishes lineage leaves of non-fingerprintable inputs across
// runs and processes, so they can never falsely match a persisted entry.
var runNonce atomic.Int64

// Stats reports execution statistics of one script run.
type Stats struct {
	CacheStats lineage.CacheStats
	PoolStats  bufferpool.Stats
	DistStats  runtime.DistStats
	FusedStats runtime.FusedStats
	// PlanStats records, per executed distributed operator, the physical plan
	// the compiler chose and its estimated vs actual output bytes. The
	// recorder is capped; PlanRecordsDropped counts records past the cap.
	PlanStats          []runtime.PlanRecord
	PlanRecordsDropped int64
	// CompressStats reports compressed-linear-algebra activity: compressions,
	// planner rejections, operators executed directly on compressed data, and
	// transparent decompress fallbacks.
	CompressStats runtime.CompressStats
	// LineageStore reports persistent lineage-store activity (zero value when
	// persistence is off).
	LineageStore bufferpool.FileStoreStats
	// OpMetrics is the per-opcode heavy-hitter table (count, wall ns, self ns,
	// bytes moved) aggregated from the run's trace spans, sorted by self time.
	// Nil when tracing is off (Config.TraceEnabled).
	OpMetrics []obs.OpMetric
	// TraceDropped counts spans discarded after the tracer's record cap.
	TraceDropped int64
}

// NewEngine creates an engine with the given configuration (nil uses the
// default configuration). A configured persistent lineage directory implies
// lineage tracing and reuse; opening it also loads the saved cost-model
// calibration and the cached (or freshly measured) machine profile, so the
// planner of this session prices operators with the learned corrections.
func NewEngine(cfg *runtime.Config) *Engine {
	if cfg == nil {
		cfg = runtime.DefaultConfig()
	}
	if cfg.PersistentLineageDir != "" {
		cfg.LineageEnabled = true
		cfg.ReuseEnabled = true
	}
	cacheBudget := int64(0)
	if cfg.ReuseEnabled {
		cacheBudget = cfg.CacheBudget
	}
	e := &Engine{
		cfg:      cfg,
		registry: builtins.NewRegistry(),
		cache:    lineage.NewCache(cacheBudget),
		out:      os.Stdout,
	}
	if dir := cfg.PersistentLineageDir; dir != "" {
		budget := cfg.PersistentLineageBudget
		if budget <= 0 {
			budget = defaultPersistentBudget
		}
		// adaptivity state is a cache: if the directory is unusable the
		// session simply runs without persistence rather than failing
		if store, err := runtime.OpenPersistentLineage(dir, budget); err == nil {
			e.store = store
			e.cache.SetStore(store)
		}
		e.calibPth = filepath.Join(dir, calibrationFile)
		e.calib = hops.LoadCalibration(e.calibPth)
		cfg.Calib = e.calib
		cfg.Profile = hops.LoadOrMeasureProfile(filepath.Join(dir, profileFile))
	}
	return e
}

// LineageStoreStats returns the persistent lineage-store statistics (zero
// value when persistence is off).
func (e *Engine) LineageStoreStats() bufferpool.FileStoreStats { return e.store.Stats() }

// Calibration returns the engine's cost-model calibration, or nil when no
// persistent lineage directory is configured.
func (e *Engine) Calibration() *hops.Calibration { return e.calib }

// Config returns the engine configuration.
func (e *Engine) Config() *runtime.Config { return e.cfg }

// Registry returns the builtin registry (for registering additional
// DML-bodied builtins).
func (e *Engine) Registry() *builtins.Registry { return e.registry }

// SetOutput redirects print() output.
func (e *Engine) SetOutput(w io.Writer) { e.out = w }

// ClearCache drops all entries of the session reuse cache.
func (e *Engine) ClearCache() { e.cache.Clear() }

// CacheStats returns the session reuse-cache statistics.
func (e *Engine) CacheStats() lineage.CacheStats { return e.cache.Stats() }

// Execute compiles and runs a DML script. Inputs are bound by name before
// execution; the named outputs are extracted from the final symbol table.
// Supported input types: *matrix.MatrixBlock, *frame.FrameBlock,
// *fed.FederatedMatrix, float64, int, int64, bool, string and runtime.Data.
func (e *Engine) Execute(script string, inputs map[string]any, outputs []string) (map[string]any, *Stats, error) {
	prog, err := e.Compile(script, inputs)
	if err != nil {
		return nil, nil, err
	}
	return e.Run(prog, inputs, outputs)
}

// knownCharacteristics extracts the data characteristics of matrix inputs so
// the compiler can propagate sizes from the start.
func knownCharacteristics(inputs map[string]any) map[string]types.DataCharacteristics {
	known := map[string]types.DataCharacteristics{}
	for name, v := range inputs {
		if m, ok := v.(*matrix.MatrixBlock); ok {
			known[name] = types.DataCharacteristics{
				Rows: int64(m.Rows()), Cols: int64(m.Cols()),
				Blocksize: types.DefaultBlocksize, NNZ: m.NNZ(),
			}
		}
	}
	return known
}

// Compile compiles a script with size information from the given inputs.
func (e *Engine) Compile(script string, inputs map[string]any) (*runtime.Program, error) {
	comp := compiler.New(e.cfg, e.registry)
	prog, err := comp.Compile(script, knownCharacteristics(inputs))
	if err != nil {
		return nil, err
	}
	return prog, nil
}

// Run executes a compiled program with the given inputs and returns the
// requested outputs.
func (e *Engine) Run(prog *runtime.Program, inputs map[string]any, outputs []string) (map[string]any, *Stats, error) {
	ctx := runtime.NewContext(e.cfg)
	ctx.Cache = e.cache
	ctx.Out = e.out
	ctx.Prog = prog
	for name, v := range inputs {
		d, err := toRuntimeData(v, ctx)
		if err != nil {
			return nil, nil, fmt.Errorf("core: input %q: %w", name, err)
		}
		ctx.Set(name, d)
		ctx.Lineage.Set(name, e.inputLeaf(name, d))
	}
	if e.cfg.TraceEnabled {
		// Per-run trace: earlier spans are dropped so the exported trace and
		// the heavy-hitter table describe exactly this run. The tracer is
		// process-global, so concurrent traced runs share one span stream.
		obs.Reset()
		obs.Enable()
	}
	runSp := obs.Begin(obs.CatRun, "run")
	execErr := prog.Execute(ctx)
	runSp.End()
	if e.cfg.TraceEnabled {
		// stop emission but keep the records: TraceRecords/WriteTrace read
		// them until the next traced run resets the stream, and output
		// extraction below won't smear extra spans past the run span
		obs.Disable()
	}
	if execErr != nil {
		return nil, nil, execErr
	}
	e.observePlans(ctx)
	results := map[string]any{}
	for _, name := range outputs {
		d, err := ctx.Get(name)
		if err != nil {
			return nil, nil, fmt.Errorf("core: output %q was not produced by the script", name)
		}
		v, err := fromRuntimeData(d)
		if err != nil {
			return nil, nil, fmt.Errorf("core: output %q: %w", name, err)
		}
		results[name] = v
	}
	plans, plansDropped := ctx.PlanStats()
	stats := &Stats{CacheStats: ctx.Cache.Stats(), PoolStats: ctx.Pool.Stats(), DistStats: ctx.DistStats(),
		FusedStats: ctx.FusedStats(), PlanStats: plans, PlanRecordsDropped: plansDropped,
		CompressStats: ctx.CompressStats(), LineageStore: e.store.Stats()}
	if e.cfg.TraceEnabled {
		stats.OpMetrics = obs.Aggregate(obs.Resolve(obs.Snapshot()))
		stats.TraceDropped = obs.Dropped()
	}
	e.statsMu.Lock()
	e.lastStats = stats
	e.statsMu.Unlock()
	return results, stats, nil
}

// LastRunStats returns the statistics of the most recent Run on this engine
// (nil before the first run). The public API's Execute discards the per-call
// stats value; this accessor is how the CLI and embedders get at it.
func (e *Engine) LastRunStats() *Stats {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return e.lastStats
}

// TraceRecords returns the resolved span records of the last traced run:
// merged across worker buffers, sorted by start time, with orphan kernel
// sub-phase spans re-parented under their containing instruction spans.
func (e *Engine) TraceRecords() []obs.Record {
	return obs.Resolve(obs.Snapshot())
}

// WriteTrace writes the last traced run as Chrome trace-event JSON, loadable
// in Perfetto or chrome://tracing.
func (e *Engine) WriteTrace(w io.Writer) error {
	return obs.WriteChromeTrace(w, e.TraceRecords())
}

// inputLeaf builds the lineage leaf of a named input. Without persistence,
// leaves are keyed by name — sound within one process, where a rebound name
// changes the traced DAG anyway because the old entries age out against new
// hashes only if the data changed. Across processes a name tells us nothing,
// so with persistence on the leaf carries a content fingerprint: rebinding
// the name to different data changes every downstream lineage hash (the
// invalidation policy), while identical data keeps the hashes stable and the
// warm run hits the store. Inputs without a cheap stable fingerprint are
// keyed by a per-process nonce, which makes them never match across runs —
// correct, just without cross-run reuse for their derivations.
func (e *Engine) inputLeaf(name string, d runtime.Data) *lineage.Item {
	if e.store == nil {
		return lineage.NewCreation("input", name)
	}
	if fp, ok := runtime.Fingerprint(d); ok {
		return lineage.NewCreation("input", fmt.Sprintf("%s#%016x", name, fp))
	}
	return lineage.NewCreation("input", fmt.Sprintf("%s!%d.%d", name, os.Getpid(), runNonce.Add(1)))
}

// observePlans folds the run's estimated-vs-actual plan records into the
// calibration and persists the updated state, closing the adaptivity loop:
// the next compile (in this or any later process) plans with the corrected
// estimates.
func (e *Engine) observePlans(ctx *runtime.Context) {
	if e.calib == nil {
		return
	}
	plans, _ := ctx.PlanStats()
	for _, r := range plans {
		e.calib.Observe(r.Op, r.EstBytes, r.ActualBytes)
	}
	if e.calibPth != "" {
		// best-effort: a failed save just loses this run's observations
		_ = e.calib.Save(e.calibPth)
	}
}

// ExplainPlan compiles a script (with size information from the given inputs)
// and returns the cost-annotated physical plan chosen by the compiler's
// planner: per operator the dimensions, memory estimate, CP/DIST placement,
// matmult strategy and modeled costs.
func (e *Engine) ExplainPlan(script string, inputs map[string]any) (string, error) {
	comp := compiler.New(e.cfg, e.registry)
	return comp.ExplainPlan(script, knownCharacteristics(inputs))
}

// ExplainPlanAnnotated renders the plan like ExplainPlan and joins the
// measured per-opcode metrics of the engine's last traced run onto the
// operator lines (count, wall/self time, bytes). Requires a preceding Run
// with tracing enabled; without one the output equals ExplainPlan.
func (e *Engine) ExplainPlanAnnotated(script string, inputs map[string]any) (string, error) {
	measured := map[string]obs.OpMetric{}
	if stats := e.LastRunStats(); stats != nil {
		for _, m := range stats.OpMetrics {
			if m.Cat != obs.CatInstr {
				continue
			}
			if _, ok := measured[m.Name]; !ok {
				measured[m.Name] = m
			}
		}
	}
	comp := compiler.New(e.cfg, e.registry)
	return comp.ExplainPlanAnnotated(script, knownCharacteristics(inputs), measured)
}

// toRuntimeData converts an API value to a runtime data object.
func toRuntimeData(v any, ctx *runtime.Context) (runtime.Data, error) {
	switch x := v.(type) {
	case runtime.Data:
		return x, nil
	case *matrix.MatrixBlock:
		return runtime.NewMatrixObject(x, ctx.Pool), nil
	case *frame.FrameBlock:
		return runtime.NewFrameObject(x), nil
	case *fed.FederatedMatrix:
		return runtime.NewFederatedObject(x), nil
	case float64:
		return runtime.NewDouble(x), nil
	case float32:
		return runtime.NewDouble(float64(x)), nil
	case int:
		return runtime.NewInt(int64(x)), nil
	case int64:
		return runtime.NewInt(x), nil
	case bool:
		return runtime.NewBool(x), nil
	case string:
		return runtime.NewString(x), nil
	default:
		return nil, fmt.Errorf("unsupported input type %T", v)
	}
}

// fromRuntimeData converts a runtime data object to an API value.
func fromRuntimeData(d runtime.Data) (any, error) {
	switch x := d.(type) {
	case *runtime.Scalar:
		switch x.VT {
		case types.String:
			return x.StringValue(), nil
		case types.Boolean:
			return x.Bool(), nil
		default:
			return x.Float64(), nil
		}
	case *runtime.MatrixObject:
		return x.Acquire()
	case *runtime.BlockedMatrixObject:
		// API outputs are sinks: collect the blocked matrix lazily here
		return x.Collect()
	case *runtime.CompressedMatrixObject:
		// API outputs are sinks: decompress transparently (counted)
		return x.DecompressFor("output")
	case *runtime.TransposedCompressedObject:
		return x.MaterializeFor("output")
	case *runtime.FrameObject:
		return x.Frame, nil
	case *runtime.FederatedObject:
		return x.Fed, nil
	case *runtime.ListObject:
		return x, nil
	default:
		return nil, fmt.Errorf("unsupported output type %T", d)
	}
}

// Prepared is a pre-compiled script that can be executed repeatedly with
// different inputs (the JMLC-style embedded scoring API of Section 2.2).
type Prepared struct {
	engine  *Engine
	prog    *runtime.Program
	outputs []string
}

// Prepare compiles a script once for repeated low-latency execution.
func (e *Engine) Prepare(script string, outputs []string) (*Prepared, error) {
	prog, err := e.Compile(script, nil)
	if err != nil {
		return nil, err
	}
	return &Prepared{engine: e, prog: prog, outputs: outputs}, nil
}

// Execute runs the prepared script with the given inputs.
func (p *Prepared) Execute(inputs map[string]any) (map[string]any, error) {
	out, _, err := p.engine.Run(p.prog, inputs, p.outputs)
	return out, err
}
