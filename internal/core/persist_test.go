package core

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/systemds/systemds-go/internal/hops"
	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/runtime"
)

// persistEngine builds an engine with cross-run lineage persistence rooted at
// dir (each NewEngine simulates one process of the lifecycle).
func persistEngine(dir string) *Engine {
	cfg := runtime.DefaultConfig()
	cfg.Parallelism = 4
	cfg.PersistentLineageDir = dir
	cfg.CompressionEnabled = true
	return NewEngine(cfg)
}

// gridSearchScript is the compressed lm grid-search acceptance scenario: the
// loop re-reads X, so the compiler plants a compression site, and every
// lambda recomputes t(X)%*%X / t(X)%*%y — the tsmm/matmult work the lineage
// store amortizes across runs.
const gridSearchScript = `
[B, losses] = gridSearchLM(X, y, lambdas)
`

func gridSearchInputs() map[string]any {
	x, y := matrix.SyntheticRegression(2000, 20, 1.0, 17)
	lambdas := matrix.FromRows([][]float64{{0.001}, {0.01}, {0.1}, {1}, {10}})
	return map[string]any{"X": x, "y": y, "lambdas": lambdas}
}

// TestPersistentLineageWarmRunReuse is the tentpole acceptance test: a warm
// re-run of the grid-search scenario in a *fresh engine* (fresh in-memory
// cache, same persistent directory — a second process in the data-science
// lifecycle) serves tsmm/matmult intermediates from the persistent store and
// produces bitwise-identical outputs.
func TestPersistentLineageWarmRunReuse(t *testing.T) {
	dir := t.TempDir()
	inputs := gridSearchInputs()

	cold := persistEngine(dir)
	coldRes, coldStats, err := cold.Execute(gridSearchScript, inputs, []string{"B", "losses"})
	if err != nil {
		t.Fatal(err)
	}
	if coldStats.LineageStore.Puts == 0 {
		t.Fatalf("cold run persisted nothing: %+v", coldStats.LineageStore)
	}
	if coldStats.CacheStats.StoreHits != 0 {
		t.Errorf("cold run cannot hit the store: %+v", coldStats.CacheStats)
	}

	warm := persistEngine(dir)
	warmRes, warmStats, err := warm.Execute(gridSearchScript, inputs, []string{"B", "losses"})
	if err != nil {
		t.Fatal(err)
	}
	if warmStats.CacheStats.StoreHits == 0 {
		t.Fatalf("warm run reused nothing from the persistent store: cache=%+v store=%+v",
			warmStats.CacheStats, warmStats.LineageStore)
	}
	for _, name := range []string{"B", "losses"} {
		if !asMatrix(t, coldRes[name]).Equals(asMatrix(t, warmRes[name]), 0) {
			t.Errorf("warm %s not bitwise-equal to cold run", name)
		}
	}

	// reuse on vs off: the persisted path must be invisible in the results
	plain := newTestEngine()
	plainRes := execScript(t, plain, gridSearchScript, inputs, []string{"B", "losses"})
	for _, name := range []string{"B", "losses"} {
		if !asMatrix(t, plainRes[name]).Equals(asMatrix(t, warmRes[name]), 0) {
			t.Errorf("%s with reuse differs bitwise from no-reuse execution", name)
		}
	}
}

// TestPersistentLineageInvalidationOnInputChange: rebinding an input name to
// different data changes the content-fingerprinted lineage leaves, so a warm
// run must not serve the previous run's intermediates.
func TestPersistentLineageInvalidationOnInputChange(t *testing.T) {
	dir := t.TempDir()
	script := `S = t(X) %*% X
s = sum(S)`
	x1 := matrix.RandUniform(300, 12, -1, 1, 1.0, 21)

	cold := persistEngine(dir)
	if _, stats, err := cold.Execute(script, map[string]any{"X": x1}, []string{"s"}); err != nil {
		t.Fatal(err)
	} else if stats.LineageStore.Puts == 0 {
		t.Fatal("cold run persisted nothing")
	}

	// same name, different content: one cell changed
	x2 := x1.Copy()
	x2.Set(7, 3, x2.Get(7, 3)+1)
	warm := persistEngine(dir)
	res, stats, err := warm.Execute(script, map[string]any{"X": x2}, []string{"s"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheStats.StoreHits != 0 {
		t.Errorf("changed input must not hit the store: %+v", stats.CacheStats)
	}
	ref := execScript(t, newTestEngine(), script, map[string]any{"X": x2}, []string{"s"})
	if res["s"].(float64) != ref["s"].(float64) {
		t.Errorf("invalidated run returned a stale result: %v vs %v", res["s"], ref["s"])
	}

	// unchanged content under the same name still hits
	warm2 := persistEngine(dir)
	if _, stats, err := warm2.Execute(script, map[string]any{"X": x1}, []string{"s"}); err != nil {
		t.Fatal(err)
	} else if stats.CacheStats.StoreHits == 0 {
		t.Errorf("identical input must hit the store: %+v", stats.CacheStats)
	}
}

// TestPersistentLineageCorruptSpillRecovery: damaged spill files are dropped
// and recomputed, never surfaced as errors or wrong results.
func TestPersistentLineageCorruptSpillRecovery(t *testing.T) {
	dir := t.TempDir()
	script := `S = t(X) %*% X
s = sum(S)`
	x := matrix.RandUniform(300, 12, -1, 1, 1.0, 23)
	inputs := map[string]any{"X": x}

	cold := persistEngine(dir)
	coldRes, _, err := cold.Execute(script, inputs, []string{"s"})
	if err != nil {
		t.Fatal(err)
	}
	// truncate every spill file behind the store's back
	files, err := filepath.Glob(filepath.Join(dir, "lin_*.bin"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no spill files written (err=%v)", err)
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(f, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	}

	warm := persistEngine(dir)
	warmRes, stats, err := warm.Execute(script, inputs, []string{"s"})
	if err != nil {
		t.Fatalf("corrupt store must not fail execution: %v", err)
	}
	if warmRes["s"].(float64) != coldRes["s"].(float64) {
		t.Errorf("recomputed result differs: %v vs %v", warmRes["s"], coldRes["s"])
	}
	if stats.CacheStats.StoreHits != 0 {
		t.Errorf("corrupt entries must miss: %+v", stats.CacheStats)
	}
	if stats.LineageStore.CorruptDropped == 0 {
		t.Errorf("corruption not detected/cleaned: %+v", stats.LineageStore)
	}
}

// TestPersistentLineageCalibrationFeedback: plan records of a run are folded
// into the calibration and persisted, and the next engine over the same
// directory starts from the saved state (the machine profile is cached too).
func TestPersistentLineageCalibrationFeedback(t *testing.T) {
	dir := t.TempDir()
	// small budget forces distributed matmults, which record plan estimates
	// vs actuals
	mk := func() *Engine {
		cfg := runtime.DefaultConfig()
		cfg.PersistentLineageDir = dir
		cfg.DistEnabled = true
		cfg.OperatorMemBudget = 16_000
		cfg.DistBlocksize = 32
		return NewEngine(cfg)
	}
	a := matrix.RandUniform(64, 256, -1, 1, 1.0, 31)
	b := matrix.RandUniform(256, 32, -1, 1, 1.0, 32)
	inputs := map[string]any{"A": a, "B": b}

	e := mk()
	if e.Calibration() == nil {
		t.Fatal("persistent engine must carry a calibration")
	}
	if _, stats, err := e.Execute(`C = A %*% B`, inputs, []string{"C"}); err != nil {
		t.Fatal(err)
	} else if len(stats.PlanStats) == 0 {
		t.Fatal("scenario records no plans; calibration has nothing to learn")
	}
	if _, err := os.Stat(filepath.Join(dir, calibrationFile)); err != nil {
		t.Fatalf("calibration not persisted: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, profileFile)); err != nil {
		t.Fatalf("machine profile not cached: %v", err)
	}

	loaded := hops.LoadCalibration(filepath.Join(dir, calibrationFile))
	if loaded.Len() == 0 {
		t.Fatal("saved calibration is empty")
	}
	// the next "process" starts from the saved history
	e2 := mk()
	if e2.Calibration().Len() == 0 {
		t.Error("second engine did not load the saved calibration")
	}
	if !e2.Config().Profile.Measured {
		t.Error("second engine did not load the cached machine profile")
	}
}

// TestPersistentLineageImpliesReuse: the option alone must activate lineage
// tracing and reuse without further configuration.
func TestPersistentLineageImpliesReuse(t *testing.T) {
	cfg := runtime.DefaultConfig()
	cfg.LineageEnabled = false
	cfg.ReuseEnabled = false
	cfg.PersistentLineageDir = t.TempDir()
	e := NewEngine(cfg)
	if !cfg.LineageEnabled || !cfg.ReuseEnabled {
		t.Fatal("persistent lineage must imply tracing and reuse")
	}
	x := matrix.RandUniform(200, 10, -1, 1, 1.0, 41)
	_, stats, err := e.Execute(`S = t(X) %*% X
s = sum(S)`, map[string]any{"X": x}, []string{"s"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.LineageStore.Puts == 0 {
		t.Errorf("nothing persisted: %+v", stats.LineageStore)
	}
}
