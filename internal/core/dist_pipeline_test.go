package core

import (
	"testing"

	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/runtime"
)

// intMatrix generates a deterministic integer-valued matrix; integer values
// keep floating-point sums exact under any association, so blocked and local
// results must match bitwise.
func intMatrix(rows, cols int) *matrix.MatrixBlock {
	m := matrix.NewDense(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.Set(r, c, float64((r*cols+c)%7-3))
		}
	}
	return m
}

// distEngine builds an engine whose operator budget forces the X-sized
// operators onto the blocked backend while W (90x30 = ~21.6KB) still fits the
// broadcast path.
func distEngine(budget int64) *Engine {
	cfg := runtime.DefaultConfig()
	cfg.DistEnabled = true
	cfg.OperatorMemBudget = budget
	cfg.DistBlocksize = 32
	return NewEngine(cfg)
}

// TestBlockedPipelineStaysBlocked is the acceptance test of the blocked-flow
// design: a chained pipeline Y = (X + X) %*% W; s = sum(Y) with X forced to
// ExecDist must partition X exactly once, execute every operator blocked, and
// never collect an intermediate back into a local matrix.
func TestBlockedPipelineStaysBlocked(t *testing.T) {
	x := intMatrix(120, 90) // 86.4KB > budget
	w := intMatrix(90, 30)  // 21.6KB < budget: broadcast operand
	script := `Y = (X + X) %*% W
s = sum(Y)`
	e := distEngine(25_000)
	res, stats, err := e.Execute(script, map[string]any{"X": x, "W": w}, []string{"s"})
	if err != nil {
		t.Fatalf("blocked pipeline failed: %v", err)
	}
	ds := stats.DistStats
	if ds.Partitions != 1 {
		t.Errorf("partitions = %d, want exactly 1 (X partitioned once, reused across the chain)", ds.Partitions)
	}
	if ds.Collects != 0 {
		t.Errorf("collects = %d, want 0 (no intermediate ToMatrixBlock)", ds.Collects)
	}
	if ds.BlockedOps != 3 {
		t.Errorf("blocked ops = %d, want 3 (binary, matmult, sum)", ds.BlockedOps)
	}

	// bitwise equality against the pure CP execution
	cp := NewEngine(runtime.DefaultConfig())
	cpRes, cpStats, err := cp.Execute(script, map[string]any{"X": x, "W": w}, []string{"s"})
	if err != nil {
		t.Fatalf("CP pipeline failed: %v", err)
	}
	if cpStats.DistStats.BlockedOps != 0 {
		t.Fatalf("CP run unexpectedly used the blocked backend")
	}
	if res["s"].(float64) != cpRes["s"].(float64) {
		t.Errorf("blocked s = %v, CP s = %v (must match bitwise)", res["s"], cpRes["s"])
	}
}

// TestBlockedMatMultBothOperandsLarge checks the grid-join path: when both
// matmult operands exceed the per-operator budget, the right side cannot be
// broadcast and both flow blocked.
func TestBlockedMatMultBothOperandsLarge(t *testing.T) {
	a := intMatrix(100, 80) // 64KB
	b := intMatrix(80, 60)  // 38.4KB
	script := `C = A %*% B
s = sum(C)`
	e := distEngine(25_000)
	res, stats, err := e.Execute(script, map[string]any{"A": a, "B": b}, []string{"s"})
	if err != nil {
		t.Fatalf("blocked x blocked matmult failed: %v", err)
	}
	if ds := stats.DistStats; ds.Partitions != 2 || ds.Collects != 0 {
		t.Errorf("dist stats = %+v, want 2 partitions (A and the over-budget B) and 0 collects", ds)
	}
	cp := NewEngine(runtime.DefaultConfig())
	cpRes, _, err := cp.Execute(script, map[string]any{"A": a, "B": b}, []string{"s"})
	if err != nil {
		t.Fatal(err)
	}
	if res["s"].(float64) != cpRes["s"].(float64) {
		t.Errorf("blocked s = %v, CP s = %v", res["s"], cpRes["s"])
	}
}

// TestBlockedChainWithBlockedRightOperand drives matmult with a blocked right
// operand produced by an upstream blocked operator.
func TestBlockedChainWithBlockedRightOperand(t *testing.T) {
	a := intMatrix(100, 80)
	b := intMatrix(80, 60)
	script := `C = (A + A) %*% (B + B)
s = sum(C)`
	e := distEngine(25_000)
	res, stats, err := e.Execute(script, map[string]any{"A": a, "B": b}, []string{"s"})
	if err != nil {
		t.Fatalf("chained blocked matmult failed: %v", err)
	}
	if ds := stats.DistStats; ds.Partitions != 2 || ds.Collects != 0 || ds.BlockedOps != 4 {
		t.Errorf("dist stats = %+v, want 2 partitions, 0 collects, 4 blocked ops", ds)
	}
	cp := NewEngine(runtime.DefaultConfig())
	cpRes, _, err := cp.Execute(script, map[string]any{"A": a, "B": b}, []string{"s"})
	if err != nil {
		t.Fatal(err)
	}
	if res["s"].(float64) != cpRes["s"].(float64) {
		t.Errorf("blocked s = %v, CP s = %v", res["s"], cpRes["s"])
	}
}

// TestBlockedSinkCollectsOnce verifies the lazy-collect contract at sinks: a
// blocked result requested as an API output is collected exactly once, and
// the collected matrix matches the CP result exactly.
func TestBlockedSinkCollectsOnce(t *testing.T) {
	x := intMatrix(120, 90)
	script := `Y = X + X
Z = t(Y)
r = rowSums(Z)`
	e := distEngine(25_000)
	res, stats, err := e.Execute(script, map[string]any{"X": x}, []string{"r"})
	if err != nil {
		t.Fatalf("blocked sink pipeline failed: %v", err)
	}
	if ds := stats.DistStats; ds.Partitions != 1 || ds.Collects != 1 || ds.BlockedOps != 3 {
		t.Errorf("dist stats = %+v, want 1 partition, 1 collect (the output), 3 blocked ops", ds)
	}
	cp := NewEngine(runtime.DefaultConfig())
	cpRes, _, err := cp.Execute(script, map[string]any{"X": x}, []string{"r"})
	if err != nil {
		t.Fatal(err)
	}
	got := res["r"].(*matrix.MatrixBlock)
	want := cpRes["r"].(*matrix.MatrixBlock)
	if !want.Equals(got, 0) {
		t.Error("blocked rowSums differs from CP result")
	}
}

// TestRandGeneratesBlockedDirectly asserts the distributed-datagen path: a
// rand above the operator budget produces blocked partitions directly — the
// downstream blocked operators consume them with ZERO local-to-blocked
// repartitions — and a blocked seq is bitwise identical to the local kernel.
func TestRandGeneratesBlockedDirectly(t *testing.T) {
	cfg := runtime.DefaultConfig()
	cfg.DistEnabled = true
	cfg.OperatorMemBudget = 8 * 1024
	cfg.DistBlocksize = 32
	eng := NewEngine(cfg)
	script := `X = rand(rows=96, cols=96, seed=7)
Y = X + X
s = sum(Y)`
	res, stats, err := eng.Execute(script, nil, []string{"s"})
	if err != nil {
		t.Fatalf("execution failed: %v", err)
	}
	if stats.DistStats.Partitions != 0 {
		t.Errorf("partitions = %d, want 0: rand must generate blocked partitions directly", stats.DistStats.Partitions)
	}
	if stats.DistStats.BlockedOps < 2 {
		t.Errorf("blocked ops = %d, want >= 2 (rand and the cellwise add)", stats.DistStats.BlockedOps)
	}
	if rec, ok := planOf(stats, "rand"); !ok {
		t.Errorf("no plan record for blocked rand")
	} else if rec.ActualBytes <= 0 {
		t.Errorf("rand record has actual bytes %d", rec.ActualBytes)
	}
	if s := res["s"].(float64); s <= 0 {
		t.Errorf("sum of uniform rand = %v, want > 0", s)
	}
	// the same seed generates the same blocked content (deterministic per-block seeds)
	res2, _, err := NewEngine(cfg).Execute(script, nil, []string{"s"})
	if err != nil {
		t.Fatalf("second run failed: %v", err)
	}
	if res["s"].(float64) != res2["s"].(float64) {
		t.Errorf("blocked rand not deterministic: %v vs %v", res["s"], res2["s"])
	}
}

// TestSeqGeneratesBlockedBitwiseEqual asserts a blocked seq matches the local
// kernel bit for bit: the accumulation streams straight into the blocks.
func TestSeqGeneratesBlockedBitwiseEqual(t *testing.T) {
	cfg := runtime.DefaultConfig()
	cfg.DistEnabled = true
	cfg.OperatorMemBudget = 1024
	cfg.DistBlocksize = 32
	script := `v = seq(0.1, 2000.0, 0.25)
w = v * 1.0
s = sum(w)`
	res, stats, err := NewEngine(cfg).Execute(script, nil, []string{"v"})
	if err != nil {
		t.Fatalf("execution failed: %v", err)
	}
	if stats.DistStats.Partitions != 0 {
		t.Errorf("partitions = %d, want 0: seq must generate blocked partitions directly", stats.DistStats.Partitions)
	}
	got := res["v"].(*matrix.MatrixBlock)
	want := matrix.Seq(0.1, 2000.0, 0.25)
	if got.Rows() != want.Rows() {
		t.Fatalf("blocked seq has %d rows, want %d", got.Rows(), want.Rows())
	}
	for r := 0; r < want.Rows(); r++ {
		if got.Get(r, 0) != want.Get(r, 0) {
			t.Fatalf("row %d: blocked seq %v != local seq %v", r, got.Get(r, 0), want.Get(r, 0))
		}
	}
}
