package core

import (
	"regexp"
	"strings"
	"testing"

	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/runtime"
)

// plannerEngine builds an engine with a small operator budget and block size
// so modest test matrices exercise the blocked backend.
func plannerEngine(budget int64) *Engine {
	cfg := runtime.DefaultConfig()
	cfg.DistEnabled = true
	cfg.OperatorMemBudget = budget
	cfg.DistBlocksize = 32
	return NewEngine(cfg)
}

// planOf returns the first recorded plan for the given opcode.
func planOf(stats *Stats, op string) (runtime.PlanRecord, bool) {
	for _, r := range stats.PlanStats {
		if r.Op == op {
			return r, true
		}
	}
	return runtime.PlanRecord{}, false
}

// TestPlannerShuffleMatMultAcceptance is the acceptance test of the
// cost-based planner: for a matmult whose operands BOTH exceed the broadcast
// budget, ExplainPlan reports the shuffle-style strategy, the plan statistics
// confirm the shuffle executor ran, and the result is bitwise-equal to the
// pure CP execution.
func TestPlannerShuffleMatMultAcceptance(t *testing.T) {
	a := matrix.RandUniform(64, 256, -1, 1, 1.0, 4001) // ~128 KB
	b := matrix.RandUniform(256, 32, -1, 1, 1.0, 4002) // ~64 KB
	inputs := map[string]any{"A": a, "B": b}
	script := `C = A %*% B`
	e := plannerEngine(16_000) // both operands exceed the budget

	explain, err := e.ExplainPlan(script, inputs)
	if err != nil {
		t.Fatalf("ExplainPlan: %v", err)
	}
	if !strings.Contains(explain, "plan=DIST:sh") {
		t.Fatalf("ExplainPlan does not name the shuffle strategy:\n%s", explain)
	}

	res, stats, err := e.Execute(script, inputs, []string{"C"})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	rec, ok := planOf(stats, "ba+*")
	if !ok {
		t.Fatal("no plan record for the matmult")
	}
	if rec.Plan != "sh" {
		t.Errorf("executed plan = %q, want \"sh\"", rec.Plan)
	}
	if rec.EstBytes <= 0 || rec.ActualBytes <= 0 {
		t.Errorf("plan record bytes not populated: %+v", rec)
	}
	if stats.DistStats.Partitions != 2 {
		t.Errorf("partitions = %d, want 2 (both operands partitioned)", stats.DistStats.Partitions)
	}

	cp := NewEngine(runtime.DefaultConfig())
	cpRes, _, err := cp.Execute(script, inputs, []string{"C"})
	if err != nil {
		t.Fatal(err)
	}
	got := res["C"].(*matrix.MatrixBlock)
	want := cpRes["C"].(*matrix.MatrixBlock)
	if !want.Equals(got, 0) {
		t.Error("shuffle matmult result is not bitwise-equal to CP")
	}
}

// TestExplainPlanNamesExecutedStrategy cross-checks, per scenario, that the
// strategy ExplainPlan prints is exactly the strategy core.Stats reports as
// executed.
func TestExplainPlanNamesExecutedStrategy(t *testing.T) {
	planRe := regexp.MustCompile(`plan=DIST:(\w+)`)
	for _, tc := range []struct {
		name string
		a, b *matrix.MatrixBlock
	}{
		// small right operand -> broadcast-right
		{"broadcast-right", matrix.RandUniform(120, 90, -1, 1, 1.0, 1), matrix.RandUniform(90, 4, -1, 1, 1.0, 2)},
		// both large, long common dimension -> shuffle
		{"shuffle", matrix.RandUniform(64, 256, -1, 1, 1.0, 3), matrix.RandUniform(256, 32, -1, 1, 1.0, 4)},
	} {
		inputs := map[string]any{"A": tc.a, "B": tc.b}
		script := `C = A %*% B`
		e := plannerEngine(16_000)
		explain, err := e.ExplainPlan(script, inputs)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		m := planRe.FindStringSubmatch(explain)
		if m == nil {
			t.Fatalf("%s: no distributed matmult plan in explain:\n%s", tc.name, explain)
		}
		_, stats, err := e.Execute(script, inputs, []string{"C"})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		rec, ok := planOf(stats, "ba+*")
		if !ok {
			t.Fatalf("%s: no plan record", tc.name)
		}
		if rec.Plan != m[1] {
			t.Errorf("%s: explain names %q but %q executed", tc.name, m[1], rec.Plan)
		}
	}
}

// TestPartitionedInputCachedAcrossDAGs asserts the partition memo: a named
// input consumed by distributed operators in two different DAGs (split by a
// print barrier) partitions exactly once.
func TestPartitionedInputCachedAcrossDAGs(t *testing.T) {
	x := intMatrix(120, 90) // > budget
	script := `s1 = sum(X + 1)
print(s1)
s2 = sum(X * 2)`
	e := plannerEngine(25_000)
	e.SetOutput(nopWriter{})
	res, stats, err := e.Execute(script, map[string]any{"X": x}, []string{"s1", "s2"})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if stats.DistStats.Partitions != 1 {
		t.Errorf("partitions = %d, want 1 (partitioned form cached on the input object)", stats.DistStats.Partitions)
	}
	cp := NewEngine(runtime.DefaultConfig())
	cp.SetOutput(nopWriter{})
	cpRes, _, err := cp.Execute(script, map[string]any{"X": x}, []string{"s1", "s2"})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"s1", "s2"} {
		if res[name].(float64) != cpRes[name].(float64) {
			t.Errorf("%s: blocked %v != CP %v", name, res[name], cpRes[name])
		}
	}
}

type nopWriter struct{}

func (nopWriter) Write(p []byte) (int, error) { return len(p), nil }

// TestBlockedBroadcastVectorBinary asserts the blocked kernel for
// matrix±vector: the blocked operand is never collected and the result
// matches the CP broadcast kernel bitwise.
func TestBlockedBroadcastVectorBinary(t *testing.T) {
	x := matrix.RandUniform(120, 90, -1, 1, 1.0, 5001)
	v := matrix.RandUniform(1, 90, -1, 1, 1.0, 5002) // row vector
	script := `Y = X + v`
	e := plannerEngine(25_000)
	res, stats, err := e.Execute(script, map[string]any{"X": x, "v": v}, []string{"Y"})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	// one partition for X, one lazy collect for the API output only
	if ds := stats.DistStats; ds.Partitions != 1 || ds.Collects != 1 || ds.BlockedOps != 1 {
		t.Errorf("dist stats = %+v, want 1 partition (X), 1 output collect, 1 blocked op", ds)
	}
	cp := NewEngine(runtime.DefaultConfig())
	cpRes, _, err := cp.Execute(script, map[string]any{"X": x, "v": v}, []string{"Y"})
	if err != nil {
		t.Fatal(err)
	}
	got := res["Y"].(*matrix.MatrixBlock)
	want := cpRes["Y"].(*matrix.MatrixBlock)
	if !want.Equals(got, 0) {
		t.Error("blocked matrix+vector differs from the CP broadcast kernel")
	}
}

// TestLateBoundStrategyForUnknownSizes covers the compile-time-unknown case:
// a right operand whose size only materializes at runtime must not be blindly
// broadcast. The instruction re-invokes the planner's chooser with the live
// dimensions, so an over-budget operand still lands on a partition-both
// strategy and the result stays bitwise-equal to CP.
func TestLateBoundStrategyForUnknownSizes(t *testing.T) {
	a := matrix.RandUniform(64, 256, -1, 1, 1.0, 6001)
	x := matrix.RandUniform(256, 32, -1, 1, 1.0, 6002)
	// B = X[1:k, ] with a runtime k leaves B's rows unknown at compile time
	script := `B = X[1:k, ]
C = A %*% B`
	inputs := map[string]any{"A": a, "X": x, "k": 256}
	e := plannerEngine(16_000)
	res, stats, err := e.Execute(script, inputs, []string{"C"})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	rec, ok := planOf(stats, "ba+*")
	if !ok {
		t.Fatal("no plan record for the matmult")
	}
	// both operands exceed the budget at runtime: the late-bound chooser must
	// not broadcast the over-budget right operand
	if rec.Plan == "br" || rec.Plan == "bl" {
		t.Errorf("late-bound plan = %q; an over-budget operand must not be broadcast", rec.Plan)
	}
	cp := NewEngine(runtime.DefaultConfig())
	cpRes, _, err := cp.Execute(script, inputs, []string{"C"})
	if err != nil {
		t.Fatal(err)
	}
	if !cpRes["C"].(*matrix.MatrixBlock).Equals(res["C"].(*matrix.MatrixBlock), 0) {
		t.Error("late-bound distributed matmult differs from CP")
	}
}

// TestPlanRecordsCoverAllBlockedOperators asserts that estimated-vs-actual
// plan tracking is not a matmult-only feature: every blocked operator class —
// cellwise binary, unary, row/column and full aggregates, transpose — leaves
// a record with the compiler's estimate next to the actual output bytes.
func TestPlanRecordsCoverAllBlockedOperators(t *testing.T) {
	x := matrix.RandUniform(64, 64, -1, 1, 1.0, 5001) // 32 KB
	inputs := map[string]any{"X": x}
	script := `a = X + X
b = abs(a)
c = t(b)
r = rowSums(c)
s = sum(b)`
	_, stats, err := plannerEngine(8*1024).Execute(script, inputs, []string{"r", "s"})
	if err != nil {
		t.Fatalf("execution failed: %v", err)
	}
	for _, op := range []string{"+", "abs", "r'", "rowSums", "sum"} {
		rec, ok := planOf(stats, op)
		if !ok {
			t.Errorf("no plan record for blocked operator %q", op)
			continue
		}
		if rec.ActualBytes <= 0 {
			t.Errorf("%q record has actual bytes %d, want > 0", op, rec.ActualBytes)
		}
		if rec.EstBytes <= 0 {
			t.Errorf("%q record has estimated bytes %d, want a known compile-time estimate", op, rec.EstBytes)
		}
	}
}
