package instructions

import (
	"fmt"

	"github.com/systemds/systemds-go/internal/dist"
	"github.com/systemds/systemds-go/internal/hops"
	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/runtime"
	"github.com/systemds/systemds-go/internal/types"
)

// TransposedFederated marks the transpose of a federated matrix in the symbol
// table; matrix multiplications recognize it and push the computation to the
// federated sites instead of collecting the data.
type TransposedFederated struct {
	Source *runtime.FederatedObject
}

// DataType implements runtime.Data.
func (t *TransposedFederated) DataType() types.DataType { return types.Matrix }

// String implements runtime.Data.
func (t *TransposedFederated) String() string {
	return fmt.Sprintf("t(%s)", t.Source.String())
}

// MatMultInst computes matrix multiplication (opcode "ba+*") with local,
// BLAS-like, distributed and federated execution paths. For distributed
// execution the instruction is the executor of a named physical plan: the
// compiler's cost-based planner (hops/cost.go) decides the strategy at
// compile time and annotates it here; the runtime never re-decides against
// ad-hoc size checks.
type MatMultInst struct {
	base
	Left, Right Operand
	ExecType    types.ExecType
	// BlockedOut keeps the result in blocked representation (set by the
	// compiler when a downstream consumer is also a Dist operator).
	BlockedOut bool
	// Method is the physical strategy chosen by the planner for distributed
	// execution (broadcast-left/right, grid join, shuffle); MMAuto for CP
	// plans or plans compiled before sizes were known.
	Method types.MatMultMethod
	// EstBytes is the planner's estimated output size in bytes (-1 unknown),
	// surfaced next to the actual bytes in the plan statistics.
	EstBytes int64
}

// NewMatMult creates a matrix multiplication instruction.
func NewMatMult(out string, left, right Operand) *MatMultInst {
	inst := &MatMultInst{Left: left, Right: right, EstBytes: -1}
	inst.base = newBase("ba+*", []string{out}, "", left, right)
	return inst
}

// Execute implements runtime.Instruction.
func (i *MatMultInst) Execute(ctx *runtime.Context) error {
	l, err := i.Left.Resolve(ctx)
	if err != nil {
		return err
	}
	r, err := i.Right.Resolve(ctx)
	if err != nil {
		return err
	}
	// federated paths
	if tf, ok := l.(*TransposedFederated); ok {
		return i.executeTransposedFederated(ctx, tf, r)
	}
	if fo, ok := l.(*runtime.FederatedObject); ok {
		rb, err := i.Right.MatrixBlockFor(ctx, i.opcode)
		if err != nil {
			return err
		}
		res, err := fo.Fed.MatVec(rb)
		if err != nil {
			return err
		}
		ctx.SetMatrix(i.outs[0], res)
		return nil
	}
	threads := ctx.Config.Threads()
	// compressed paths: the hot MV/VM products of iterative algorithms run
	// directly on the compressed representation; any other shape combination
	// falls through and decompresses transparently (counted)
	if done, err := i.executeCompressed(ctx, l, r, threads); done {
		return err
	}
	if useDist(ctx, i.ExecType, l, r) {
		return i.executeDistributed(ctx, l, r, threads)
	}
	lb, err := i.Left.MatrixBlockFor(ctx, i.opcode)
	if err != nil {
		return err
	}
	rb, err := i.Right.MatrixBlockFor(ctx, i.opcode)
	if err != nil {
		return err
	}
	var res *matrix.MatrixBlock
	if ctx.Config.UseBLAS && !lb.IsSparse() && !rb.IsSparse() {
		res, err = matrix.MultiplyBLAS(lb, rb, threads)
	} else {
		res, err = matrix.Multiply(lb, rb, threads)
	}
	if err != nil {
		return fmt.Errorf("instructions: matrix multiplication: %w", err)
	}
	ctx.SetMatrix(i.outs[0], res)
	return nil
}

// executeCompressed runs matrix multiplications with a compressed operand
// directly on the column groups when the shape is one the CLA kernels
// pre-aggregate: X %*% v (matrix-vector), X %*% B (matrix right-hand side),
// t(X) %*% v and t(X) %*% B on the lazy transpose marker, t(X) %*% X
// (compressed TSMM), and u %*% X (vector-matrix). It reports whether it
// handled the operation.
func (i *MatMultInst) executeCompressed(ctx *runtime.Context, l, r runtime.Data, threads int) (bool, error) {
	// X %*% v / X %*% B with compressed X
	if co, ok := resolveCompressed(l); ok {
		if _, rc, rok := matrixDims(r); rok {
			cm, err := co.Compressed()
			if err != nil {
				return true, err
			}
			rb, err := i.Right.MatrixBlockFor(ctx, i.opcode)
			if err != nil {
				return true, err
			}
			var res *matrix.MatrixBlock
			var kernel string
			if useDist(ctx, i.ExecType, l, r) {
				// blocked flow: the compressed matrix partitions by row ranges of
				// its column groups (no decompression at the boundary) and the
				// dense right-hand side broadcasts
				p, err := co.Partitioned(ctx.Config.DistBlocksize)
				if err != nil {
					return true, err
				}
				kernel = "dist-cmv"
				if rc == 1 {
					res, err = dist.CompressedMatVec(p, rb, threads)
				} else {
					kernel = "dist-cmm"
					res, err = dist.CompressedMatMult(p, rb, threads)
				}
				if err != nil {
					return true, err
				}
				ctx.CountBlockedOp()
			} else {
				kernel = "cmv"
				if rc == 1 {
					res, err = cm.MatVec(rb, threads)
				} else {
					kernel = "cmm"
					res, err = cm.MatMultDense(rb, threads)
				}
				if err != nil {
					return true, err
				}
			}
			ctx.CountCompressedOp()
			ctx.RecordPlan(i.opcode, kernel+":"+cm.EncodingSummary(), i.EstBytes, res.InMemorySize())
			ctx.SetMatrix(i.outs[0], res)
			return true, nil
		}
	}
	// t(X) %*% ... with the lazy transpose of compressed X: the vector-matrix,
	// transposed matrix-matrix and TSMM kernels over X itself — no transpose
	// ever materializes
	if tc, ok := l.(*runtime.TransposedCompressedObject); ok {
		// t(X) %*% X over the same compressed object is the Gram matrix; a
		// defensive net under the tsmm rewrite (which normally catches this
		// form at the HOP level)
		if co, ok := resolveCompressed(r); ok && co == tc.Source {
			cm, err := co.Compressed()
			if err != nil {
				return true, err
			}
			res := cm.TSMM(threads)
			ctx.CountCompressedOp()
			ctx.RecordPlan(i.opcode, "ctsmm:"+cm.EncodingSummary(), i.EstBytes, res.InMemorySize())
			ctx.SetMatrix(i.outs[0], res)
			return true, nil
		}
		if _, rc, rok := matrixDims(r); rok {
			cm, err := tc.Source.Compressed()
			if err != nil {
				return true, err
			}
			rb, err := i.Right.MatrixBlockFor(ctx, i.opcode)
			if err != nil {
				return true, err
			}
			if rc == 1 {
				rowVec, err := rb.Reshape(1, rb.Rows(), true)
				if err != nil {
					return true, err
				}
				res, err := cm.VecMat(rowVec, threads)
				if err != nil {
					return true, err
				}
				col, err := res.Reshape(res.Cols(), 1, true)
				if err != nil {
					return true, err
				}
				ctx.CountCompressedOp()
				ctx.RecordPlan(i.opcode, "cvm:"+cm.EncodingSummary(), i.EstBytes, col.InMemorySize())
				ctx.SetMatrix(i.outs[0], col)
				return true, nil
			}
			res, err := cm.TransMatMultDense(rb, threads)
			if err != nil {
				return true, err
			}
			ctx.CountCompressedOp()
			ctx.RecordPlan(i.opcode, "cmm:"+cm.EncodingSummary(), i.EstBytes, res.InMemorySize())
			ctx.SetMatrix(i.outs[0], res)
			return true, nil
		}
	}
	// u %*% X with compressed X and a row vector u
	if co, ok := resolveCompressed(r); ok {
		if lr, _, lok := matrixDims(l); lok && lr == 1 {
			cm, err := co.Compressed()
			if err != nil {
				return true, err
			}
			lb, err := i.Left.MatrixBlockFor(ctx, i.opcode)
			if err != nil {
				return true, err
			}
			res, err := cm.VecMat(lb, threads)
			if err != nil {
				return true, err
			}
			ctx.CountCompressedOp()
			ctx.RecordPlan(i.opcode, "cvm:"+cm.EncodingSummary(), i.EstBytes, res.InMemorySize())
			ctx.SetMatrix(i.outs[0], res)
			return true, nil
		}
	}
	return false, nil
}

// executeDistributed runs the physical matmult plan named by the compiler on
// the blocked backend. Without a compile-time plan (sizes were unknown at
// compile time, or an operand became blocked at runtime while the operator
// itself compiled to CP) the instruction re-invokes the planner's own
// strategy chooser with the operands' actual characteristics — the decision
// still lives in hops/cost.go, just with late-bound sizes. A stale broadcast
// plan whose broadcast side arrives blocked (possible when the operand
// stayed blocked across DAGs, invisible to the compiler) is downgraded to
// the grid join by representation: grid-joining the already-partitioned
// operands avoids the collect the broadcast would force.
func (i *MatMultInst) executeDistributed(ctx *runtime.Context, l, r runtime.Data, threads int) error {
	method := i.Method
	if method == types.MMAuto {
		method = lateBoundStrategy(ctx, l, r)
	}
	if method == types.MMBroadcastRight {
		if _, ok := r.(*runtime.BlockedMatrixObject); ok {
			method = types.MMGridJoin
		}
	}
	if method == types.MMBroadcastLeft {
		if _, ok := l.(*runtime.BlockedMatrixObject); ok {
			method = types.MMGridJoin
		}
	}
	var res *dist.BlockedMatrix
	switch method {
	case types.MMBroadcastRight:
		bl, err := resolveBlocked(ctx, i.Left)
		if err != nil {
			return err
		}
		rb, err := i.Right.MatrixBlockFor(ctx, i.opcode)
		if err != nil {
			return err
		}
		if res, err = dist.MatMult(bl, rb, threads); err != nil {
			return err
		}
	case types.MMBroadcastLeft:
		lb, err := i.Left.MatrixBlockFor(ctx, i.opcode)
		if err != nil {
			return err
		}
		br, err := resolveBlocked(ctx, i.Right)
		if err != nil {
			return err
		}
		if res, err = dist.MatMultBL(lb, br, threads); err != nil {
			return err
		}
	case types.MMGridJoin, types.MMShuffle:
		bl, br, err := resolveBlockedPair(ctx, i.Left, i.Right)
		if err != nil {
			return err
		}
		if method == types.MMGridJoin {
			res, err = dist.MatMultBB(bl, br, threads)
		} else {
			res, err = dist.MatMultShuffle(bl, br, threads)
		}
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("instructions: unknown matmult strategy %s", method)
	}
	return bindBlockedResult(ctx, i.outs[0], res, i.BlockedOut, i.opcode, method.String(), i.EstBytes)
}

// lateBoundStrategy resolves a matmult without a compile-time plan by running
// the compiler's cost-based chooser against the operands' runtime
// characteristics (metadata only — no data is touched). Operands without
// matrix metadata fall back to the representation default: broadcast a local
// right operand, grid-join a blocked one.
func lateBoundStrategy(ctx *runtime.Context, l, r runtime.Data) types.MatMultMethod {
	lr, lc, lok := matrixDims(l)
	rr, rc, rok := matrixDims(r)
	if lok && rok {
		bs := ctx.Config.DistBlocksize
		m, _ := hops.ChooseMatMultStrategyCalibrated(
			types.NewDataCharacteristics(lr, lc, bs, -1),
			types.NewDataCharacteristics(rr, rc, bs, -1),
			bs, ctx.Config.OperatorMemBudget, ctx.Config.Calib, ctx.Config.Profile)
		if m != types.MMAuto {
			return m
		}
	}
	if _, ok := r.(*runtime.BlockedMatrixObject); ok {
		return types.MMGridJoin
	}
	return types.MMBroadcastRight
}

// executeTransposedFederated handles t(X) %*% Y where X is federated: when Y
// is federated with aligned row ranges the multiplication is pushed down as
// xty; when Y is a local matrix, the rows of Y are shipped to the matching
// sites.
func (i *MatMultInst) executeTransposedFederated(ctx *runtime.Context, tf *TransposedFederated, r runtime.Data) error {
	if rf, ok := r.(*runtime.FederatedObject); ok {
		res, err := tf.Source.Fed.XtY(rf.Fed)
		if err != nil {
			return err
		}
		ctx.SetMatrix(i.outs[0], res)
		return nil
	}
	rb, err := i.Right.MatrixBlockFor(ctx, i.opcode)
	if err != nil {
		return err
	}
	// t(X) %*% y with local y: ship the per-site slices of y and sum the
	// partial t(X_i) %*% y_i results (only d x 1 aggregates come back).
	res, err := tf.Source.Fed.XtLocalY(rb)
	if err != nil {
		return err
	}
	ctx.SetMatrix(i.outs[0], res)
	return nil
}

// TSMMInst computes the fused t(X) %*% X (opcode "tsmm") with local,
// distributed and federated execution paths.
type TSMMInst struct {
	base
	In       Operand
	ExecType types.ExecType
	// EstBytes is the planner's estimated output size in bytes (-1 unknown),
	// recorded next to the actual bytes when the operator runs blocked.
	EstBytes int64
}

// NewTSMM creates a tsmm instruction.
func NewTSMM(out string, in Operand) *TSMMInst {
	inst := &TSMMInst{In: in, EstBytes: -1}
	inst.base = newBase("tsmm", []string{out}, "", in)
	return inst
}

// Execute implements runtime.Instruction.
func (i *TSMMInst) Execute(ctx *runtime.Context) error {
	d, err := i.In.Resolve(ctx)
	if err != nil {
		return err
	}
	if fo, ok := d.(*runtime.FederatedObject); ok {
		res, err := fo.Fed.TSMM()
		if err != nil {
			return err
		}
		ctx.SetMatrix(i.outs[0], res)
		return nil
	}
	threads := ctx.Config.Threads()
	// compressed input: the Gram matrix comes straight off the dictionaries
	// (counts-weighted self products, co-occurrence-weighted cross products) —
	// X never materializes
	if co, ok := resolveCompressed(d); ok {
		cm, err := co.Compressed()
		if err != nil {
			return err
		}
		if useDist(ctx, i.ExecType, d) {
			// blocked flow: row-range partitions of the column groups compute
			// per-partition Gram matrices off the shared dictionaries, summed in
			// ascending partition order
			p, err := co.Partitioned(ctx.Config.DistBlocksize)
			if err != nil {
				return err
			}
			res, err := dist.CompressedTSMM(p, threads)
			if err != nil {
				return err
			}
			ctx.CountBlockedOp()
			ctx.CountCompressedOp()
			ctx.RecordPlan(i.opcode, "dist-ctsmm:"+cm.EncodingSummary(), i.EstBytes, res.InMemorySize())
			ctx.SetMatrix(i.outs[0], res)
			return nil
		}
		res := cm.TSMM(threads)
		ctx.CountCompressedOp()
		ctx.RecordPlan(i.opcode, "ctsmm:"+cm.EncodingSummary(), i.EstBytes, res.InMemorySize())
		ctx.SetMatrix(i.outs[0], res)
		return nil
	}
	if useDist(ctx, i.ExecType, d) {
		bm, err := resolveBlockedData(ctx, d, i.In)
		if err != nil {
			return err
		}
		res, err := dist.TSMM(bm, threads)
		if err != nil {
			return err
		}
		ctx.CountBlockedOp()
		ctx.RecordPlan(i.opcode, "dist", i.EstBytes, res.InMemorySize())
		ctx.SetMatrix(i.outs[0], res)
		return nil
	}
	blk, err := i.In.MatrixBlockFor(ctx, i.opcode)
	if err != nil {
		return err
	}
	ctx.SetMatrix(i.outs[0], matrix.TSMM(blk, threads))
	return nil
}
