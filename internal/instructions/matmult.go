package instructions

import (
	"fmt"

	"github.com/systemds/systemds-go/internal/dist"
	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/runtime"
	"github.com/systemds/systemds-go/internal/types"
)

// distFrom and distCellwise are small indirections so binary.go does not need
// to import the dist package twice.
func distFrom(m *matrix.MatrixBlock, blocksize int) (*dist.BlockedMatrix, error) {
	return dist.FromMatrixBlock(m, blocksize)
}

func distCellwise(a, b *dist.BlockedMatrix, op matrix.BinaryOp) (*dist.BlockedMatrix, error) {
	return dist.Cellwise(a, b, op)
}

// TransposedFederated marks the transpose of a federated matrix in the symbol
// table; matrix multiplications recognize it and push the computation to the
// federated sites instead of collecting the data.
type TransposedFederated struct {
	Source *runtime.FederatedObject
}

// DataType implements runtime.Data.
func (t *TransposedFederated) DataType() types.DataType { return types.Matrix }

// String implements runtime.Data.
func (t *TransposedFederated) String() string {
	return fmt.Sprintf("t(%s)", t.Source.String())
}

// MatMultInst computes matrix multiplication (opcode "ba+*") with local,
// BLAS-like, distributed and federated execution paths.
type MatMultInst struct {
	base
	Left, Right Operand
	ExecType    types.ExecType
}

// NewMatMult creates a matrix multiplication instruction.
func NewMatMult(out string, left, right Operand) *MatMultInst {
	inst := &MatMultInst{Left: left, Right: right}
	inst.base = newBase("ba+*", []string{out}, "", left, right)
	return inst
}

// Execute implements runtime.Instruction.
func (i *MatMultInst) Execute(ctx *runtime.Context) error {
	l, err := i.Left.Resolve(ctx)
	if err != nil {
		return err
	}
	r, err := i.Right.Resolve(ctx)
	if err != nil {
		return err
	}
	// federated paths
	if tf, ok := l.(*TransposedFederated); ok {
		return i.executeTransposedFederated(ctx, tf, r)
	}
	if fo, ok := l.(*runtime.FederatedObject); ok {
		rb, err := i.Right.MatrixBlock(ctx)
		if err != nil {
			return err
		}
		res, err := fo.Fed.MatVec(rb)
		if err != nil {
			return err
		}
		ctx.SetMatrix(i.outs[0], res)
		return nil
	}
	lb, err := i.Left.MatrixBlock(ctx)
	if err != nil {
		return err
	}
	rb, err := i.Right.MatrixBlock(ctx)
	if err != nil {
		return err
	}
	threads := ctx.Config.Threads()
	// distributed path for large left operands
	if i.ExecType == types.ExecDist && ctx.Config.DistEnabled {
		bl, err := dist.FromMatrixBlock(lb, ctx.Config.DistBlocksize)
		if err != nil {
			return err
		}
		res, err := dist.MatMult(bl, rb, threads)
		if err != nil {
			return err
		}
		local, err := res.ToMatrixBlock()
		if err != nil {
			return err
		}
		ctx.SetMatrix(i.outs[0], local)
		return nil
	}
	var res *matrix.MatrixBlock
	if ctx.Config.UseBLAS && !lb.IsSparse() && !rb.IsSparse() {
		res, err = matrix.MultiplyBLAS(lb, rb, threads)
	} else {
		res, err = matrix.Multiply(lb, rb, threads)
	}
	if err != nil {
		return fmt.Errorf("instructions: matrix multiplication: %w", err)
	}
	ctx.SetMatrix(i.outs[0], res)
	return nil
}

// executeTransposedFederated handles t(X) %*% Y where X is federated: when Y
// is federated with aligned row ranges the multiplication is pushed down as
// xty; when Y is a local matrix, the rows of Y are shipped to the matching
// sites.
func (i *MatMultInst) executeTransposedFederated(ctx *runtime.Context, tf *TransposedFederated, r runtime.Data) error {
	if rf, ok := r.(*runtime.FederatedObject); ok {
		res, err := tf.Source.Fed.XtY(rf.Fed)
		if err != nil {
			return err
		}
		ctx.SetMatrix(i.outs[0], res)
		return nil
	}
	rb, err := i.Right.MatrixBlock(ctx)
	if err != nil {
		return err
	}
	// t(X) %*% y with local y: ship the per-site slices of y and sum the
	// partial t(X_i) %*% y_i results (only d x 1 aggregates come back).
	res, err := tf.Source.Fed.XtLocalY(rb)
	if err != nil {
		return err
	}
	ctx.SetMatrix(i.outs[0], res)
	return nil
}

// TSMMInst computes the fused t(X) %*% X (opcode "tsmm") with local,
// distributed and federated execution paths.
type TSMMInst struct {
	base
	In       Operand
	ExecType types.ExecType
}

// NewTSMM creates a tsmm instruction.
func NewTSMM(out string, in Operand) *TSMMInst {
	inst := &TSMMInst{In: in}
	inst.base = newBase("tsmm", []string{out}, "", in)
	return inst
}

// Execute implements runtime.Instruction.
func (i *TSMMInst) Execute(ctx *runtime.Context) error {
	d, err := i.In.Resolve(ctx)
	if err != nil {
		return err
	}
	if fo, ok := d.(*runtime.FederatedObject); ok {
		res, err := fo.Fed.TSMM()
		if err != nil {
			return err
		}
		ctx.SetMatrix(i.outs[0], res)
		return nil
	}
	blk, err := i.In.MatrixBlock(ctx)
	if err != nil {
		return err
	}
	threads := ctx.Config.Threads()
	if i.ExecType == types.ExecDist && ctx.Config.DistEnabled {
		bm, err := dist.FromMatrixBlock(blk, ctx.Config.DistBlocksize)
		if err != nil {
			return err
		}
		res, err := dist.TSMM(bm, threads)
		if err != nil {
			return err
		}
		ctx.SetMatrix(i.outs[0], res)
		return nil
	}
	ctx.SetMatrix(i.outs[0], matrix.TSMM(blk, threads))
	return nil
}
