package instructions

import (
	"fmt"

	"github.com/systemds/systemds-go/internal/dist"
	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/runtime"
	"github.com/systemds/systemds-go/internal/types"
)

// TransposedFederated marks the transpose of a federated matrix in the symbol
// table; matrix multiplications recognize it and push the computation to the
// federated sites instead of collecting the data.
type TransposedFederated struct {
	Source *runtime.FederatedObject
}

// DataType implements runtime.Data.
func (t *TransposedFederated) DataType() types.DataType { return types.Matrix }

// String implements runtime.Data.
func (t *TransposedFederated) String() string {
	return fmt.Sprintf("t(%s)", t.Source.String())
}

// MatMultInst computes matrix multiplication (opcode "ba+*") with local,
// BLAS-like, distributed and federated execution paths.
type MatMultInst struct {
	base
	Left, Right Operand
	ExecType    types.ExecType
	// BlockedOut keeps the result in blocked representation (set by the
	// compiler when a downstream consumer is also a Dist operator).
	BlockedOut bool
}

// NewMatMult creates a matrix multiplication instruction.
func NewMatMult(out string, left, right Operand) *MatMultInst {
	inst := &MatMultInst{Left: left, Right: right}
	inst.base = newBase("ba+*", []string{out}, "", left, right)
	return inst
}

// Execute implements runtime.Instruction.
func (i *MatMultInst) Execute(ctx *runtime.Context) error {
	l, err := i.Left.Resolve(ctx)
	if err != nil {
		return err
	}
	r, err := i.Right.Resolve(ctx)
	if err != nil {
		return err
	}
	// federated paths
	if tf, ok := l.(*TransposedFederated); ok {
		return i.executeTransposedFederated(ctx, tf, r)
	}
	if fo, ok := l.(*runtime.FederatedObject); ok {
		rb, err := i.Right.MatrixBlock(ctx)
		if err != nil {
			return err
		}
		res, err := fo.Fed.MatVec(rb)
		if err != nil {
			return err
		}
		ctx.SetMatrix(i.outs[0], res)
		return nil
	}
	threads := ctx.Config.Threads()
	// distributed paths: blocked x blocked via a grid join when both operands
	// exceed the broadcast budget (or already live blocked), otherwise the
	// map-side broadcast join with a blocked left and local right operand
	if useDist(ctx, i.ExecType, l, r) {
		bl, err := resolveBlockedData(ctx, l, i.Left)
		if err != nil {
			return err
		}
		if rbo, ok := r.(*runtime.BlockedMatrixObject); ok {
			br, err := rbo.Blocked()
			if err != nil {
				return err
			}
			res, err := dist.MatMultBB(bl, br, threads)
			if err != nil {
				return err
			}
			return bindBlockedResult(ctx, i.outs[0], res, i.BlockedOut)
		}
		rb, err := i.Right.MatrixBlock(ctx)
		if err != nil {
			return err
		}
		// a right operand exceeding the per-operator budget cannot be
		// broadcast; partition it too and run the blocked grid join
		if budget := ctx.Config.OperatorMemBudget; budget > 0 && rb.InMemorySize() > budget {
			br, err := dist.FromMatrixBlock(rb, ctx.Config.DistBlocksize)
			if err != nil {
				return err
			}
			ctx.CountDistPartition()
			res, err := dist.MatMultBB(bl, br, threads)
			if err != nil {
				return err
			}
			return bindBlockedResult(ctx, i.outs[0], res, i.BlockedOut)
		}
		res, err := dist.MatMult(bl, rb, threads)
		if err != nil {
			return err
		}
		return bindBlockedResult(ctx, i.outs[0], res, i.BlockedOut)
	}
	lb, err := i.Left.MatrixBlock(ctx)
	if err != nil {
		return err
	}
	rb, err := i.Right.MatrixBlock(ctx)
	if err != nil {
		return err
	}
	var res *matrix.MatrixBlock
	if ctx.Config.UseBLAS && !lb.IsSparse() && !rb.IsSparse() {
		res, err = matrix.MultiplyBLAS(lb, rb, threads)
	} else {
		res, err = matrix.Multiply(lb, rb, threads)
	}
	if err != nil {
		return fmt.Errorf("instructions: matrix multiplication: %w", err)
	}
	ctx.SetMatrix(i.outs[0], res)
	return nil
}

// executeTransposedFederated handles t(X) %*% Y where X is federated: when Y
// is federated with aligned row ranges the multiplication is pushed down as
// xty; when Y is a local matrix, the rows of Y are shipped to the matching
// sites.
func (i *MatMultInst) executeTransposedFederated(ctx *runtime.Context, tf *TransposedFederated, r runtime.Data) error {
	if rf, ok := r.(*runtime.FederatedObject); ok {
		res, err := tf.Source.Fed.XtY(rf.Fed)
		if err != nil {
			return err
		}
		ctx.SetMatrix(i.outs[0], res)
		return nil
	}
	rb, err := i.Right.MatrixBlock(ctx)
	if err != nil {
		return err
	}
	// t(X) %*% y with local y: ship the per-site slices of y and sum the
	// partial t(X_i) %*% y_i results (only d x 1 aggregates come back).
	res, err := tf.Source.Fed.XtLocalY(rb)
	if err != nil {
		return err
	}
	ctx.SetMatrix(i.outs[0], res)
	return nil
}

// TSMMInst computes the fused t(X) %*% X (opcode "tsmm") with local,
// distributed and federated execution paths.
type TSMMInst struct {
	base
	In       Operand
	ExecType types.ExecType
}

// NewTSMM creates a tsmm instruction.
func NewTSMM(out string, in Operand) *TSMMInst {
	inst := &TSMMInst{In: in}
	inst.base = newBase("tsmm", []string{out}, "", in)
	return inst
}

// Execute implements runtime.Instruction.
func (i *TSMMInst) Execute(ctx *runtime.Context) error {
	d, err := i.In.Resolve(ctx)
	if err != nil {
		return err
	}
	if fo, ok := d.(*runtime.FederatedObject); ok {
		res, err := fo.Fed.TSMM()
		if err != nil {
			return err
		}
		ctx.SetMatrix(i.outs[0], res)
		return nil
	}
	threads := ctx.Config.Threads()
	if useDist(ctx, i.ExecType, d) {
		bm, err := resolveBlockedData(ctx, d, i.In)
		if err != nil {
			return err
		}
		res, err := dist.TSMM(bm, threads)
		if err != nil {
			return err
		}
		ctx.CountBlockedOp()
		ctx.SetMatrix(i.outs[0], res)
		return nil
	}
	blk, err := i.In.MatrixBlock(ctx)
	if err != nil {
		return err
	}
	ctx.SetMatrix(i.outs[0], matrix.TSMM(blk, threads))
	return nil
}
