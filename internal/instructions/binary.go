package instructions

import (
	"fmt"

	"github.com/systemds/systemds-go/internal/dist"
	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/runtime"
	"github.com/systemds/systemds-go/internal/types"
)

// binaryOps maps DML binary operators to matrix kernel operations.
var binaryOps = map[string]matrix.BinaryOp{
	"+": matrix.OpAdd, "-": matrix.OpSub, "*": matrix.OpMul, "/": matrix.OpDiv,
	"^": matrix.OpPow, "%%": matrix.OpModulus, "%/%": matrix.OpIntDiv,
	"min": matrix.OpMin, "max": matrix.OpMax,
	"==": matrix.OpEqual, "!=": matrix.OpNotEqual, "<": matrix.OpLess, "<=": matrix.OpLessEqual,
	">": matrix.OpGreater, ">=": matrix.OpGreaterEqual, "&": matrix.OpAnd, "|": matrix.OpOr,
}

// IsBinaryOp reports whether the opcode is a supported element-wise binary
// operation.
func IsBinaryOp(op string) bool {
	_, ok := binaryOps[op]
	return ok
}

// BinaryInst applies an element-wise binary operation between matrices and/or
// scalars, including string concatenation with "+".
type BinaryInst struct {
	base
	Left, Right Operand
	// ExecType selects the distributed backend for large operands.
	ExecType types.ExecType
	// BlockedOut keeps the result in blocked representation (set by the
	// compiler when a downstream consumer is also a Dist operator).
	BlockedOut bool
	// EstBytes is the planner's estimated output size in bytes (-1 unknown),
	// recorded next to the actual bytes when the operator runs blocked.
	EstBytes int64
}

// NewBinary creates a binary instruction.
func NewBinary(op string, out string, left, right Operand) *BinaryInst {
	inst := &BinaryInst{Left: left, Right: right, EstBytes: -1}
	inst.base = newBase(op, []string{out}, "", left, right)
	return inst
}

// Execute implements runtime.Instruction.
func (i *BinaryInst) Execute(ctx *runtime.Context) error {
	op, ok := binaryOps[i.opcode]
	if !ok {
		return fmt.Errorf("instructions: unknown binary op %q", i.opcode)
	}
	l, err := i.Left.Resolve(ctx)
	if err != nil {
		return err
	}
	r, err := i.Right.Resolve(ctx)
	if err != nil {
		return err
	}
	ls, lIsScalar := l.(*runtime.Scalar)
	rs, rIsScalar := r.(*runtime.Scalar)
	// string concatenation / comparison
	if lIsScalar && rIsScalar && (ls.VT == types.String || rs.VT == types.String) {
		return i.executeStringScalar(ctx, ls, rs)
	}
	switch {
	case lIsScalar && rIsScalar:
		res := op.Apply(ls.Float64(), rs.Float64())
		ctx.Set(i.outs[0], scalarResult(i.opcode, res))
		return nil
	case lIsScalar && !rIsScalar:
		if co, ok := resolveCompressed(r); ok {
			return i.executeCompressedScalar(ctx, co, op, ls.Float64(), true)
		}
		if useDist(ctx, i.ExecType, r) {
			bm, err := resolveBlockedData(ctx, r, i.Right)
			if err != nil {
				return err
			}
			res, err := dist.Scalar(bm, ls.Float64(), op, true)
			if err != nil {
				return err
			}
			return bindBlockedResult(ctx, i.outs[0], res, i.BlockedOut, i.opcode, "dist", i.EstBytes)
		}
		rb, err := i.Right.MatrixBlockFor(ctx, i.opcode)
		if err != nil {
			return err
		}
		ctx.SetMatrix(i.outs[0], matrix.ScalarOp(rb, ls.Float64(), op, true, ctx.Config.Threads()))
		return nil
	case !lIsScalar && rIsScalar:
		if co, ok := resolveCompressed(l); ok {
			return i.executeCompressedScalar(ctx, co, op, rs.Float64(), false)
		}
		if useDist(ctx, i.ExecType, l) {
			bm, err := resolveBlockedData(ctx, l, i.Left)
			if err != nil {
				return err
			}
			res, err := dist.Scalar(bm, rs.Float64(), op, false)
			if err != nil {
				return err
			}
			return bindBlockedResult(ctx, i.outs[0], res, i.BlockedOut, i.opcode, "dist", i.EstBytes)
		}
		lb, err := i.Left.MatrixBlockFor(ctx, i.opcode)
		if err != nil {
			return err
		}
		ctx.SetMatrix(i.outs[0], matrix.ScalarOp(lb, rs.Float64(), op, false, ctx.Config.Threads()))
		return nil
	default:
		// blocked cell-wise path for aligned operands; row/column vector
		// operands broadcast block-wise so the blocked side never collects.
		// The vector paths additionally require the matrix side to be blocked
		// (or the operator Dist-planned): a blocked *vector* alone must not
		// drag a large CP-resident matrix through a partition round trip when
		// collecting the small vector is all the local kernel needs.
		if useDist(ctx, i.ExecType, l, r) {
			lr, lc, lok := matrixDims(l)
			rr, rc, rok := matrixDims(r)
			_, lBlocked := l.(*runtime.BlockedMatrixObject)
			_, rBlocked := r.(*runtime.BlockedMatrixObject)
			if lok && rok {
				switch {
				case lr == rr && lc == rc:
					return i.executeDistributed(ctx, op)
				case ((rr == lr && rc == 1) || (rr == 1 && rc == lc)) &&
					(i.ExecType == types.ExecDist || lBlocked):
					// matrix op vector: vector on the right
					return i.executeDistributedVector(ctx, op, l, i.Left, i.Right, false)
				case ((lr == rr && lc == 1) || (lr == 1 && lc == rc)) &&
					(i.ExecType == types.ExecDist || rBlocked):
					// vector op matrix: vector on the left
					return i.executeDistributedVector(ctx, op, r, i.Right, i.Left, true)
				}
			}
		}
		lb, err := i.Left.MatrixBlockFor(ctx, i.opcode)
		if err != nil {
			return err
		}
		rb, err := i.Right.MatrixBlockFor(ctx, i.opcode)
		if err != nil {
			return err
		}
		res, err := matrix.CellwiseOp(lb, rb, op, ctx.Config.Threads())
		if err != nil {
			return fmt.Errorf("instructions: %s: %w", i.opcode, err)
		}
		ctx.SetMatrix(i.outs[0], res)
		return nil
	}
}

// executeCompressedScalar applies a matrix-scalar operation to a compressed
// matrix as a dictionary-only update: every distinct value is rewritten once,
// the per-row encoding is untouched. swap marks a scalar left operand.
func (i *BinaryInst) executeCompressedScalar(ctx *runtime.Context, co *runtime.CompressedMatrixObject,
	op matrix.BinaryOp, scalar float64, swap bool) error {
	cm, err := co.Compressed()
	if err != nil {
		return err
	}
	fn := func(x float64) float64 { return op.Apply(x, scalar) }
	if swap {
		fn = func(x float64) float64 { return op.Apply(scalar, x) }
	}
	ctx.CountCompressedOp()
	ctx.SetCompressed(i.outs[0], cm.MapValues(fn, ctx.Config.Threads()))
	return nil
}

func (i *BinaryInst) executeStringScalar(ctx *runtime.Context, l, r *runtime.Scalar) error {
	switch i.opcode {
	case "+":
		ctx.Set(i.outs[0], runtime.NewString(l.StringValue()+r.StringValue()))
		return nil
	case "==":
		ctx.Set(i.outs[0], runtime.NewBool(l.StringValue() == r.StringValue()))
		return nil
	case "!=":
		ctx.Set(i.outs[0], runtime.NewBool(l.StringValue() != r.StringValue()))
		return nil
	default:
		return fmt.Errorf("instructions: binary %s unsupported on strings", i.opcode)
	}
}

func (i *BinaryInst) executeDistributed(ctx *runtime.Context, op matrix.BinaryOp) error {
	bl, br, err := resolveBlockedPair(ctx, i.Left, i.Right)
	if err != nil {
		return err
	}
	res, err := dist.Cellwise(bl, br, op)
	if err != nil {
		return err
	}
	return bindBlockedResult(ctx, i.outs[0], res, i.BlockedOut, i.opcode, "dist", i.EstBytes)
}

// executeDistributedVector runs a matrix±vector broadcast on the blocked
// backend: the matrix side stays (or becomes) blocked, the vector side is a
// small local operand sliced per block.
func (i *BinaryInst) executeDistributedVector(ctx *runtime.Context, op matrix.BinaryOp,
	matData runtime.Data, matOp, vecOp Operand, swap bool) error {
	bm, err := resolveBlockedData(ctx, matData, matOp)
	if err != nil {
		return err
	}
	vb, err := vecOp.MatrixBlockFor(ctx, i.opcode)
	if err != nil {
		return err
	}
	res, err := dist.CellwiseVector(bm, vb, op, swap)
	if err != nil {
		return err
	}
	return bindBlockedResult(ctx, i.outs[0], res, i.BlockedOut, i.opcode, "dist", i.EstBytes)
}

// scalarResult wraps a numeric result, using boolean scalars for comparison
// and logical operators (so if-predicates read naturally).
func scalarResult(op string, v float64) *runtime.Scalar {
	switch op {
	case "==", "!=", "<", "<=", ">", ">=", "&", "|":
		return runtime.NewBool(v != 0)
	default:
		return runtime.NewDouble(v)
	}
}

// TernaryInst computes ifelse(cond, a, b) cell-wise.
type TernaryInst struct {
	base
	Cond, A, B Operand
}

// NewTernary creates an ifelse instruction.
func NewTernary(out string, cond, a, b Operand) *TernaryInst {
	inst := &TernaryInst{Cond: cond, A: a, B: b}
	inst.base = newBase("ifelse", []string{out}, "", cond, a, b)
	return inst
}

// Execute implements runtime.Instruction.
func (i *TernaryInst) Execute(ctx *runtime.Context) error {
	cd, err := i.Cond.Resolve(ctx)
	if err != nil {
		return err
	}
	// scalar condition: pick a branch directly
	if cs, ok := cd.(*runtime.Scalar); ok {
		var chosen Operand
		if cs.Bool() {
			chosen = i.A
		} else {
			chosen = i.B
		}
		d, err := chosen.Resolve(ctx)
		if err != nil {
			return err
		}
		ctx.Set(i.outs[0], d)
		return nil
	}
	cb, err := i.Cond.MatrixBlockFor(ctx, i.opcode)
	if err != nil {
		return err
	}
	ab, err := i.A.MatrixBlockFor(ctx, i.opcode)
	if err != nil {
		return err
	}
	bb, err := i.B.MatrixBlockFor(ctx, i.opcode)
	if err != nil {
		return err
	}
	res, err := matrix.Ternary(cb, ab, bb)
	if err != nil {
		return err
	}
	ctx.SetMatrix(i.outs[0], res)
	return nil
}
