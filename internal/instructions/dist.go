package instructions

import (
	"github.com/systemds/systemds-go/internal/dist"
	"github.com/systemds/systemds-go/internal/runtime"
	"github.com/systemds/systemds-go/internal/types"
)

// useDist reports whether an instruction should execute on the blocked
// backend: either the compiler selected ExecDist, or an operand already lives
// in blocked representation (so collecting it just to re-partition would pay
// the repartition cost the blocked flow exists to avoid).
func useDist(ctx *runtime.Context, et types.ExecType, data ...runtime.Data) bool {
	if !ctx.Config.DistEnabled {
		return false
	}
	if et == types.ExecDist {
		return true
	}
	for _, d := range data {
		if _, ok := d.(*runtime.BlockedMatrixObject); ok {
			return true
		}
	}
	return false
}

// resolveBlockedData returns the blocked form of an already-resolved operand:
// blocked objects are used as-is (restored from spill if evicted); local
// matrix objects are partitioned once and the partitioned form is memoized on
// the object — since rebinding a variable always creates a new object, the
// memo is keyed by the symbol-table entry's version, and a named input
// consumed by distributed operators in several DAGs partitions exactly once.
func resolveBlockedData(ctx *runtime.Context, d runtime.Data, o Operand) (*dist.BlockedMatrix, error) {
	if bo, ok := d.(*runtime.BlockedMatrixObject); ok {
		return bo.Blocked()
	}
	bs := ctx.Config.DistBlocksize
	mo, isMO := d.(*runtime.MatrixObject)
	if isMO {
		if bm, ok := mo.CachedBlocked(bs); ok {
			return bm, nil
		}
	}
	blk, err := o.MatrixBlockFor(ctx, "partition")
	if err != nil {
		return nil, err
	}
	ctx.CountDistPartition()
	bm, err := dist.FromMatrixBlock(blk, bs)
	if err != nil {
		return nil, err
	}
	if isMO {
		mo.StoreBlocked(bm, bs)
	}
	return bm, nil
}

// resolveBlocked resolves an operand into blocked form.
func resolveBlocked(ctx *runtime.Context, o Operand) (*dist.BlockedMatrix, error) {
	d, err := o.Resolve(ctx)
	if err != nil {
		return nil, err
	}
	return resolveBlockedData(ctx, d, o)
}

// resolveBlockedPair resolves two operands into blocked form, partitioning at
// most once when both reference the same data object (e.g. X + X).
func resolveBlockedPair(ctx *runtime.Context, a, b Operand) (*dist.BlockedMatrix, *dist.BlockedMatrix, error) {
	da, err := a.Resolve(ctx)
	if err != nil {
		return nil, nil, err
	}
	db, err := b.Resolve(ctx)
	if err != nil {
		return nil, nil, err
	}
	ba, err := resolveBlockedData(ctx, da, a)
	if err != nil {
		return nil, nil, err
	}
	if da == db {
		return ba, ba, nil
	}
	bb, err := resolveBlockedData(ctx, db, b)
	if err != nil {
		return nil, nil, err
	}
	return ba, bb, nil
}

// bindBlockedResult binds the result of a blocked operator: as a first-class
// blocked object when the compiler marked the output as staying blocked, or
// eagerly collected into a local matrix when every consumer runs in CP. Every
// blocked operator records a plan entry (opcode, plan string, estimated vs
// actual output bytes), so estimated-vs-actual tracking covers the whole
// blocked instruction set, not just matmults.
func bindBlockedResult(ctx *runtime.Context, name string, bm *dist.BlockedMatrix, keepBlocked bool,
	op, plan string, estBytes int64) error {
	ctx.CountBlockedOp()
	ctx.RecordPlan(op, plan, estBytes, bm.InMemorySize())
	if keepBlocked {
		ctx.SetBlocked(name, bm)
		return nil
	}
	ctx.CountDistCollect()
	local, err := bm.ToMatrixBlock()
	if err != nil {
		return err
	}
	ctx.SetMatrix(name, local)
	return nil
}

// matrixDims returns the dimensions of a matrix-typed data object without
// touching (or collecting) the data.
func matrixDims(d runtime.Data) (rows, cols int64, ok bool) {
	switch v := d.(type) {
	case *runtime.MatrixObject:
		dc := v.DataCharacteristics()
		return dc.Rows, dc.Cols, true
	case *runtime.BlockedMatrixObject:
		dc := v.DataCharacteristics()
		return dc.Rows, dc.Cols, true
	case *runtime.CompressedMatrixObject:
		dc := v.DataCharacteristics()
		return dc.Rows, dc.Cols, true
	case *runtime.TransposedCompressedObject:
		dc := v.DataCharacteristics()
		return dc.Rows, dc.Cols, true
	}
	return 0, 0, false
}
