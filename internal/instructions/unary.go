package instructions

import (
	"errors"
	"fmt"
	"math"

	"github.com/systemds/systemds-go/internal/dist"
	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/runtime"
	"github.com/systemds/systemds-go/internal/types"
)

// unaryOps maps DML unary function names to matrix kernel operations.
var unaryOps = map[string]matrix.UnaryOp{
	"uminus": matrix.OpNeg, "abs": matrix.OpAbs, "exp": matrix.OpExp, "log": matrix.OpLog,
	"sqrt": matrix.OpSqrt, "round": matrix.OpRound, "floor": matrix.OpFloor, "ceil": matrix.OpCeil,
	"sign": matrix.OpSign, "!": matrix.OpNot, "sin": matrix.OpSin, "cos": matrix.OpCos,
	"tan": matrix.OpTan, "sigmoid": matrix.OpSigmoid, "is.nan": matrix.OpIsNaN,
}

// IsUnaryOp reports whether the opcode is a supported element-wise unary
// operation.
func IsUnaryOp(op string) bool {
	_, ok := unaryOps[op]
	return ok
}

// UnaryInst applies an element-wise unary operation to a matrix or scalar.
type UnaryInst struct {
	base
	In Operand
	// ExecType selects the distributed backend for large operands.
	ExecType types.ExecType
	// BlockedOut keeps the result in blocked representation.
	BlockedOut bool
	// EstBytes is the planner's estimated output size in bytes (-1 unknown),
	// recorded next to the actual bytes when the operator runs blocked.
	EstBytes int64
}

// NewUnary creates a unary instruction.
func NewUnary(op string, out string, in Operand) *UnaryInst {
	inst := &UnaryInst{In: in, EstBytes: -1}
	inst.base = newBase(op, []string{out}, "", in)
	return inst
}

// Execute implements runtime.Instruction.
func (i *UnaryInst) Execute(ctx *runtime.Context) error {
	op, ok := unaryOps[i.opcode]
	if !ok {
		return fmt.Errorf("instructions: unknown unary op %q", i.opcode)
	}
	d, err := i.In.Resolve(ctx)
	if err != nil {
		return err
	}
	switch v := d.(type) {
	case *runtime.Scalar:
		res := op.Apply(v.Float64())
		if i.opcode == "!" {
			ctx.Set(i.outs[0], runtime.NewBool(res != 0))
		} else {
			ctx.Set(i.outs[0], runtime.NewDouble(res))
		}
		return nil
	case *runtime.CompressedMatrixObject:
		// cellwise unary on compressed data is a dictionary-only update: the
		// encoding structure is shared, only the distinct values are rewritten
		cm, err := v.Compressed()
		if err != nil {
			return err
		}
		ctx.CountCompressedOp()
		ctx.SetCompressed(i.outs[0], cm.MapValues(op.Apply, ctx.Config.Threads()))
		return nil
	case *runtime.MatrixObject, *runtime.BlockedMatrixObject, *runtime.TransposedCompressedObject:
		if useDist(ctx, i.ExecType, d) {
			bm, err := resolveBlockedData(ctx, d, i.In)
			if err != nil {
				return err
			}
			res, err := dist.Unary(bm, op)
			if err != nil {
				return err
			}
			return bindBlockedResult(ctx, i.outs[0], res, i.BlockedOut, i.opcode, "dist", i.EstBytes)
		}
		blk, err := i.In.MatrixBlockFor(ctx, i.opcode)
		if err != nil {
			return err
		}
		ctx.SetMatrix(i.outs[0], matrix.UnaryApply(blk, op, ctx.Config.Threads()))
		return nil
	default:
		return fmt.Errorf("instructions: unary %s unsupported on %s", i.opcode, d.DataType())
	}
}

// aggKinds lists full aggregates that produce scalars.
var scalarAggs = map[string]bool{
	"sum": true, "mean": true, "min": true, "max": true, "var": true, "sd": true,
	"trace": true, "nrow": true, "ncol": true, "length": true, "median": true, "sumsq": true,
}

// vectorAggs lists row/column aggregates that produce vectors.
var vectorAggs = map[string]bool{
	"colSums": true, "colMeans": true, "colMaxs": true, "colMins": true, "colVars": true, "colSds": true,
	"rowSums": true, "rowMeans": true, "rowMaxs": true, "rowMins": true, "rowIndexMax": true,
	"cumsum": true,
}

// IsAggOp reports whether the opcode is a supported aggregation.
func IsAggOp(op string) bool { return scalarAggs[op] || vectorAggs[op] }

// AggInst computes full, row-wise or column-wise aggregates.
type AggInst struct {
	base
	In Operand
	// ExecType selects the distributed backend for large operands.
	ExecType types.ExecType
	// BlockedOut keeps row/column aggregate results in blocked representation.
	BlockedOut bool
	// EstBytes is the planner's estimated output size in bytes (-1 unknown),
	// recorded next to the actual bytes when the operator runs blocked.
	EstBytes int64
}

// NewAgg creates an aggregation instruction.
func NewAgg(op string, out string, in Operand) *AggInst {
	inst := &AggInst{In: in, EstBytes: -1}
	inst.base = newBase(op, []string{out}, "", in)
	return inst
}

// Execute implements runtime.Instruction.
func (i *AggInst) Execute(ctx *runtime.Context) error {
	d, err := i.In.Resolve(ctx)
	if err != nil {
		return err
	}
	// metadata-only aggregates avoid acquiring (or collecting) the data
	if rows, cols, ok := matrixDims(d); ok {
		switch i.opcode {
		case "nrow":
			ctx.Set(i.outs[0], runtime.NewInt(rows))
			return nil
		case "ncol":
			ctx.Set(i.outs[0], runtime.NewInt(cols))
			return nil
		case "length":
			ctx.Set(i.outs[0], runtime.NewInt(rows*cols))
			return nil
		}
	}
	if co, ok := resolveCompressed(d); ok {
		if handled, err := i.tryCompressed(ctx, co); handled {
			return err
		}
	}
	if err := i.tryDistributed(ctx, d); err == nil || err != errNotDist {
		return err
	}
	if fo, ok := d.(*runtime.FederatedObject); ok {
		return i.executeFederated(ctx, fo)
	}
	if fr, ok := d.(*runtime.FrameObject); ok {
		switch i.opcode {
		case "nrow":
			ctx.Set(i.outs[0], runtime.NewInt(int64(fr.Frame.NumRows())))
			return nil
		case "ncol":
			ctx.Set(i.outs[0], runtime.NewInt(int64(fr.Frame.NumCols())))
			return nil
		}
		return fmt.Errorf("instructions: aggregate %s unsupported on frames", i.opcode)
	}
	if sc, ok := d.(*runtime.Scalar); ok {
		switch i.opcode {
		case "nrow", "ncol", "length":
			ctx.Set(i.outs[0], runtime.NewInt(1))
		case "sum", "mean", "min", "max":
			ctx.Set(i.outs[0], runtime.NewDouble(sc.Float64()))
		default:
			return fmt.Errorf("instructions: aggregate %s unsupported on scalars", i.opcode)
		}
		return nil
	}
	blk, err := i.In.MatrixBlockFor(ctx, i.opcode)
	if err != nil {
		return err
	}
	switch i.opcode {
	case "sum":
		ctx.Set(i.outs[0], runtime.NewDouble(matrix.Sum(blk, ctx.Config.Threads())))
	case "sumsq":
		ctx.Set(i.outs[0], runtime.NewDouble(matrix.SumSq(blk, ctx.Config.Threads())))
	case "mean":
		ctx.Set(i.outs[0], runtime.NewDouble(matrix.Mean(blk, ctx.Config.Threads())))
	case "min":
		ctx.Set(i.outs[0], runtime.NewDouble(matrix.Min(blk, ctx.Config.Threads())))
	case "max":
		ctx.Set(i.outs[0], runtime.NewDouble(matrix.Max(blk, ctx.Config.Threads())))
	case "var":
		ctx.Set(i.outs[0], runtime.NewDouble(matrix.Variance(blk)))
	case "sd":
		ctx.Set(i.outs[0], runtime.NewDouble(math.Sqrt(matrix.Variance(blk))))
	case "trace":
		ctx.Set(i.outs[0], runtime.NewDouble(matrix.Trace(blk)))
	case "median":
		ctx.Set(i.outs[0], runtime.NewDouble(matrix.Median(blk)))
	case "colSums":
		ctx.SetMatrix(i.outs[0], matrix.ColSums(blk, ctx.Config.Threads()))
	case "colMeans":
		ctx.SetMatrix(i.outs[0], matrix.ColMeans(blk, ctx.Config.Threads()))
	case "colMaxs":
		ctx.SetMatrix(i.outs[0], matrix.ColMaxs(blk))
	case "colMins":
		ctx.SetMatrix(i.outs[0], matrix.ColMins(blk))
	case "colVars":
		ctx.SetMatrix(i.outs[0], matrix.ColVars(blk))
	case "colSds":
		ctx.SetMatrix(i.outs[0], matrix.ColSds(blk))
	case "rowSums":
		ctx.SetMatrix(i.outs[0], matrix.RowSums(blk, ctx.Config.Threads()))
	case "rowMeans":
		ctx.SetMatrix(i.outs[0], matrix.RowMeans(blk, ctx.Config.Threads()))
	case "rowMaxs":
		ctx.SetMatrix(i.outs[0], matrix.RowMaxs(blk))
	case "rowMins":
		ctx.SetMatrix(i.outs[0], matrix.RowMins(blk))
	case "rowIndexMax":
		ctx.SetMatrix(i.outs[0], matrix.RowIndexMax(blk))
	case "cumsum":
		ctx.SetMatrix(i.outs[0], matrix.CumSumCols(blk))
	case "nrow":
		ctx.Set(i.outs[0], runtime.NewInt(int64(blk.Rows())))
	case "ncol":
		ctx.Set(i.outs[0], runtime.NewInt(int64(blk.Cols())))
	case "length":
		ctx.Set(i.outs[0], runtime.NewInt(int64(blk.Rows()*blk.Cols())))
	default:
		return fmt.Errorf("instructions: unknown aggregate %q", i.opcode)
	}
	return nil
}

// tryCompressed executes supported aggregates directly on the compressed
// representation: sums and extrema reduce over the value dictionaries
// weighted by their occurrence counts, never touching cell images. It
// reports whether it handled the aggregate; unsupported aggregates fall
// through (and decompress transparently via the local kernels).
func (i *AggInst) tryCompressed(ctx *runtime.Context, co *runtime.CompressedMatrixObject) (bool, error) {
	cm, err := co.Compressed()
	if err != nil {
		return true, err
	}
	threads := ctx.Config.Threads()
	rows, cols := cm.Rows(), cm.Cols()
	switch i.opcode {
	case "sum":
		ctx.Set(i.outs[0], runtime.NewDouble(cm.Sum()))
	case "sumsq":
		ctx.Set(i.outs[0], runtime.NewDouble(cm.SumSq()))
	case "mean":
		ctx.Set(i.outs[0], runtime.NewDouble(cm.Mean()))
	case "min":
		ctx.Set(i.outs[0], runtime.NewDouble(cm.Min()))
	case "max":
		ctx.Set(i.outs[0], runtime.NewDouble(cm.Max()))
	case "colSums":
		ctx.SetMatrix(i.outs[0], cm.ColSums())
	case "colMeans":
		ctx.SetMatrix(i.outs[0], matrix.ScalarOp(cm.ColSums(), float64(rows), matrix.OpDiv, false, threads))
	case "rowSums":
		ctx.SetMatrix(i.outs[0], cm.RowSums(threads))
	case "rowMeans":
		ctx.SetMatrix(i.outs[0], matrix.ScalarOp(cm.RowSums(threads), float64(cols), matrix.OpDiv, false, threads))
	default:
		return false, nil
	}
	ctx.CountCompressedOp()
	return true, nil
}

// errNotDist signals that an aggregate is not handled by the blocked
// backend and should fall through to the local kernels.
var errNotDist = errors.New("instructions: aggregate not distributed")

// tryDistributed executes supported aggregates on the blocked backend:
// full aggregates combine per-block partials into a scalar, row/column
// aggregates stay blocked. Unsupported aggregates (var, median, cumsum, ...)
// return errNotDist and fall back to the local kernels, collecting lazily.
func (i *AggInst) tryDistributed(ctx *runtime.Context, d runtime.Data) error {
	switch d.(type) {
	case *runtime.MatrixObject, *runtime.BlockedMatrixObject:
	default:
		return errNotDist
	}
	if !useDist(ctx, i.ExecType, d) {
		return errNotDist
	}
	switch i.opcode {
	case "sum", "sumsq", "mean", "min", "max":
		bm, err := resolveBlockedData(ctx, d, i.In)
		if err != nil {
			return err
		}
		v, err := dist.FullAgg(bm, i.opcode)
		if err != nil {
			return err
		}
		ctx.CountBlockedOp()
		ctx.RecordPlan(i.opcode, "dist", i.EstBytes, 64)
		ctx.Set(i.outs[0], runtime.NewDouble(v))
		return nil
	case "rowSums", "rowMeans", "rowMaxs", "rowMins":
		bm, err := resolveBlockedData(ctx, d, i.In)
		if err != nil {
			return err
		}
		res, err := dist.RowAgg(bm, i.opcode)
		if err != nil {
			return err
		}
		return bindBlockedResult(ctx, i.outs[0], res, i.BlockedOut, i.opcode, "dist", i.EstBytes)
	case "colSums", "colMeans", "colMaxs", "colMins":
		bm, err := resolveBlockedData(ctx, d, i.In)
		if err != nil {
			return err
		}
		res, err := dist.ColAgg(bm, i.opcode)
		if err != nil {
			return err
		}
		return bindBlockedResult(ctx, i.outs[0], res, i.BlockedOut, i.opcode, "dist", i.EstBytes)
	}
	return errNotDist
}

// executeFederated pushes supported aggregates to federated workers.
func (i *AggInst) executeFederated(ctx *runtime.Context, fo *runtime.FederatedObject) error {
	switch i.opcode {
	case "nrow":
		ctx.Set(i.outs[0], runtime.NewInt(fo.Fed.Rows))
	case "ncol":
		ctx.Set(i.outs[0], runtime.NewInt(fo.Fed.Cols))
	case "length":
		ctx.Set(i.outs[0], runtime.NewInt(fo.Fed.Rows*fo.Fed.Cols))
	case "sum":
		s, err := fo.Fed.Sum()
		if err != nil {
			return err
		}
		ctx.Set(i.outs[0], runtime.NewDouble(s))
	case "mean":
		s, err := fo.Fed.Sum()
		if err != nil {
			return err
		}
		ctx.Set(i.outs[0], runtime.NewDouble(s/float64(fo.Fed.Rows*fo.Fed.Cols)))
	case "colSums":
		cs, err := fo.Fed.ColSums()
		if err != nil {
			return err
		}
		ctx.SetMatrix(i.outs[0], cs)
	case "colMeans":
		cs, err := fo.Fed.ColSums()
		if err != nil {
			return err
		}
		ctx.SetMatrix(i.outs[0], matrix.ScalarOp(cs, float64(fo.Fed.Rows), matrix.OpDiv, false, ctx.Config.Threads()))
	default:
		return fmt.Errorf("instructions: aggregate %s not supported on federated matrices", i.opcode)
	}
	return nil
}
