// Package instructions implements the runtime instruction set of SystemDS-Go
// (the physical operators produced by lowering HOP DAGs, Section 2.3): data
// generation, unary/binary/ternary operations, aggregations, matrix
// multiplication with local, BLAS-like, distributed and federated variants,
// reorganizations, indexing, linear system solvers, parameterized builtins,
// frame transformations, I/O, control instructions and function calls.
package instructions

import (
	"fmt"
	"strings"

	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/runtime"
)

// Operand is an instruction operand: either a variable reference or a scalar
// literal.
type Operand struct {
	Name  string
	IsLit bool
	Lit   *runtime.Scalar
}

// Var creates a variable operand.
func Var(name string) Operand { return Operand{Name: name} }

// LitDouble creates a numeric literal operand.
func LitDouble(v float64) Operand { return Operand{IsLit: true, Lit: runtime.NewDouble(v)} }

// LitInt creates an integer literal operand.
func LitInt(v int64) Operand { return Operand{IsLit: true, Lit: runtime.NewInt(v)} }

// LitBool creates a boolean literal operand.
func LitBool(v bool) Operand { return Operand{IsLit: true, Lit: runtime.NewBool(v)} }

// LitString creates a string literal operand.
func LitString(s string) Operand { return Operand{IsLit: true, Lit: runtime.NewString(s)} }

// IsVar reports whether the operand references a variable.
func (o Operand) IsVar() bool { return !o.IsLit }

// Resolve returns the operand's runtime value.
func (o Operand) Resolve(ctx *runtime.Context) (runtime.Data, error) {
	if o.IsLit {
		return o.Lit, nil
	}
	return ctx.Get(o.Name)
}

// Scalar resolves the operand as a scalar.
func (o Operand) Scalar(ctx *runtime.Context) (*runtime.Scalar, error) {
	d, err := o.Resolve(ctx)
	if err != nil {
		return nil, err
	}
	s, ok := d.(*runtime.Scalar)
	if !ok {
		if mo, isMat := d.(*runtime.MatrixObject); isMat {
			dc := mo.DataCharacteristics()
			if dc.Rows == 1 && dc.Cols == 1 {
				blk, err := mo.Acquire()
				if err != nil {
					return nil, err
				}
				return runtime.NewDouble(blk.Get(0, 0)), nil
			}
		}
		return nil, fmt.Errorf("instructions: operand %s is not a scalar", o.Desc())
	}
	return s, nil
}

// MatrixBlock resolves the operand as a local matrix block (scalars are
// promoted to 1x1).
func (o Operand) MatrixBlock(ctx *runtime.Context) (*matrix.MatrixBlock, error) {
	return o.MatrixBlockFor(ctx, "other")
}

// MatrixBlockFor is MatrixBlock with the consuming opcode recorded when the
// read forces a fallback decompression of a compressed variable.
func (o Operand) MatrixBlockFor(ctx *runtime.Context, op string) (*matrix.MatrixBlock, error) {
	if o.IsLit {
		m := matrix.NewDense(1, 1)
		m.Set(0, 0, o.Lit.Float64())
		return m, nil
	}
	return ctx.GetMatrixBlockFor(o.Name, op)
}

// Float64 resolves the operand as a float.
func (o Operand) Float64(ctx *runtime.Context) (float64, error) {
	s, err := o.Scalar(ctx)
	if err != nil {
		return 0, err
	}
	return s.Float64(), nil
}

// Int resolves the operand as an int.
func (o Operand) Int(ctx *runtime.Context) (int, error) {
	v, err := o.Float64(ctx)
	return int(v), err
}

// StringValue resolves the operand as a string.
func (o Operand) StringValue(ctx *runtime.Context) (string, error) {
	s, err := o.Scalar(ctx)
	if err != nil {
		return "", err
	}
	return s.StringValue(), nil
}

// Desc renders the operand for lineage data and error messages: literals by
// value, variables by a placeholder (their lineage is traced separately).
func (o Operand) Desc() string {
	if o.IsLit {
		return o.Lit.StringValue()
	}
	return "°" + o.Name
}

// varNames extracts the variable names among a set of operands.
func varNames(ops ...Operand) []string {
	var names []string
	for _, o := range ops {
		if o.IsVar() {
			names = append(names, o.Name)
		}
	}
	return names
}

// litDescs renders the literal operands for lineage data.
func litDescs(ops ...Operand) string {
	var parts []string
	for i, o := range ops {
		if o.IsLit {
			parts = append(parts, fmt.Sprintf("%d=%s", i, o.Lit.StringValue()))
		}
	}
	return strings.Join(parts, ",")
}

// base provides the common operand bookkeeping embedded by all instructions.
type base struct {
	opcode string
	ins    []Operand
	outs   []string
	extra  string // additional lineage data (e.g. seeds, file names)
}

func newBase(opcode string, outs []string, extra string, ins ...Operand) base {
	return base{opcode: opcode, ins: ins, outs: outs, extra: extra}
}

// Opcode implements runtime.Instruction.
func (b *base) Opcode() string { return b.opcode }

// Inputs implements runtime.Instruction.
func (b *base) Inputs() []string { return varNames(b.ins...) }

// Outputs implements runtime.Instruction.
func (b *base) Outputs() []string { return b.outs }

// LineageData implements runtime.Instruction.
func (b *base) LineageData() string {
	lit := litDescs(b.ins...)
	if b.extra == "" {
		return lit
	}
	if lit == "" {
		return b.extra
	}
	return b.extra + ";" + lit
}
