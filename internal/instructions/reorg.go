package instructions

import (
	"fmt"

	"github.com/systemds/systemds-go/internal/dist"
	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/runtime"
	"github.com/systemds/systemds-go/internal/types"
)

// ReorgInst implements reorganization operations: transpose (opcode "r'"),
// diag ("rdiag") and row reversal ("rev").
type ReorgInst struct {
	base
	In Operand
	// ExecType selects the distributed backend for large operands.
	ExecType types.ExecType
	// BlockedOut keeps the result in blocked representation.
	BlockedOut bool
	// EstBytes is the planner's estimated output size in bytes (-1 unknown),
	// recorded next to the actual bytes when the operator runs blocked.
	EstBytes int64
}

// NewReorg creates a reorg instruction with the given opcode.
func NewReorg(opcode, out string, in Operand) *ReorgInst {
	inst := &ReorgInst{In: in, EstBytes: -1}
	inst.base = newBase(opcode, []string{out}, "", in)
	return inst
}

// Execute implements runtime.Instruction.
func (i *ReorgInst) Execute(ctx *runtime.Context) error {
	d, err := i.In.Resolve(ctx)
	if err != nil {
		return err
	}
	// transpose of a federated matrix stays a metadata operation
	if fo, ok := d.(*runtime.FederatedObject); ok && i.opcode == "r'" {
		ctx.Set(i.outs[0], &TransposedFederated{Source: fo})
		return nil
	}
	// transpose of a compressed matrix stays a zero-cost view: t(X) %*% v
	// consumers run the vector-matrix kernel over the groups, and t(t(X))
	// folds back to the source
	if i.opcode == "r'" {
		if co, ok := resolveCompressed(d); ok {
			ctx.CountCompressedOp()
			ctx.Set(i.outs[0], &runtime.TransposedCompressedObject{Source: co})
			return nil
		}
		if tc, ok := d.(*runtime.TransposedCompressedObject); ok {
			ctx.CountCompressedOp()
			ctx.Set(i.outs[0], tc.Source)
			return nil
		}
	}
	// blocked transpose: per-block transpose with mirrored grid coordinates;
	// other reorg ops fall back to the local kernel (collecting lazily)
	if i.opcode == "r'" && useDist(ctx, i.ExecType, d) {
		if _, isScalar := d.(*runtime.Scalar); !isScalar {
			bm, err := resolveBlockedData(ctx, d, i.In)
			if err != nil {
				return err
			}
			res, err := dist.Transpose(bm)
			if err != nil {
				return err
			}
			return bindBlockedResult(ctx, i.outs[0], res, i.BlockedOut, i.opcode, "dist", i.EstBytes)
		}
	}
	blk, err := i.In.MatrixBlockFor(ctx, i.opcode)
	if err != nil {
		return err
	}
	switch i.opcode {
	case "r'":
		ctx.SetMatrix(i.outs[0], matrix.Transpose(blk))
	case "rdiag":
		res, err := matrix.Diag(blk)
		if err != nil {
			return err
		}
		ctx.SetMatrix(i.outs[0], res)
	case "rev":
		ctx.SetMatrix(i.outs[0], matrix.Reverse(blk))
	default:
		return fmt.Errorf("instructions: unknown reorg op %q", i.opcode)
	}
	return nil
}

// NaryInst implements n-ary operations over matrices: cbind and rbind.
type NaryInst struct {
	base
	Ins []Operand
	// ExecType selects the distributed backend for large operands.
	ExecType types.ExecType
	// BlockedOut keeps the result in blocked representation.
	BlockedOut bool
	// EstBytes is the planner's estimated output size in bytes (-1 unknown),
	// recorded next to the actual bytes when the operator runs blocked.
	EstBytes int64
}

// NewNary creates a cbind/rbind instruction.
func NewNary(opcode, out string, ins ...Operand) *NaryInst {
	inst := &NaryInst{Ins: ins, EstBytes: -1}
	inst.base = newBase(opcode, []string{out}, "", ins...)
	return inst
}

// Execute implements runtime.Instruction.
func (i *NaryInst) Execute(ctx *runtime.Context) error {
	if err := i.tryDistributed(ctx); err == nil || err != errNotDist {
		return err
	}
	blocks := make([]*matrix.MatrixBlock, len(i.Ins))
	for idx, op := range i.Ins {
		blk, err := op.MatrixBlockFor(ctx, i.opcode)
		if err != nil {
			return err
		}
		blocks[idx] = blk
	}
	var res *matrix.MatrixBlock
	var err error
	switch i.opcode {
	case "cbind":
		res, err = matrix.CBind(blocks...)
	case "rbind":
		res, err = matrix.RBind(blocks...)
	default:
		return fmt.Errorf("instructions: unknown nary op %q", i.opcode)
	}
	if err != nil {
		return err
	}
	ctx.SetMatrix(i.outs[0], res)
	return nil
}

// tryDistributed concatenates blocked operands without collecting them:
// block-aligned grids are concatenated by reference, boundary-spanning output
// blocks are re-assembled from the covering regions.
func (i *NaryInst) tryDistributed(ctx *runtime.Context) error {
	if (i.opcode != "cbind" && i.opcode != "rbind") || len(i.Ins) < 2 {
		return errNotDist
	}
	datas := make([]runtime.Data, len(i.Ins))
	for idx, o := range i.Ins {
		d, err := o.Resolve(ctx)
		if err != nil {
			return err
		}
		switch d.(type) {
		case *runtime.MatrixObject, *runtime.BlockedMatrixObject:
		default:
			return errNotDist
		}
		datas[idx] = d
	}
	if !useDist(ctx, i.ExecType, datas...) {
		return errNotDist
	}
	acc, err := resolveBlockedData(ctx, datas[0], i.Ins[0])
	if err != nil {
		return err
	}
	for idx := 1; idx < len(datas); idx++ {
		next, err := resolveBlockedData(ctx, datas[idx], i.Ins[idx])
		if err != nil {
			return err
		}
		if i.opcode == "cbind" {
			acc, err = dist.CBind(acc, next)
		} else {
			acc, err = dist.RBind(acc, next)
		}
		if err != nil {
			return err
		}
	}
	return bindBlockedResult(ctx, i.outs[0], acc, i.BlockedOut, i.opcode, "dist", i.EstBytes)
}

// IndexInst implements right indexing X[rl:ru, cl:cu] with 1-based inclusive
// bounds; bounds of 0 mean "unbounded" (start or end of the dimension).
type IndexInst struct {
	base
	Target         Operand
	RL, RU, CL, CU Operand
}

// NewRightIndex creates a right-indexing instruction.
func NewRightIndex(out string, target, rl, ru, cl, cu Operand) *IndexInst {
	inst := &IndexInst{Target: target, RL: rl, RU: ru, CL: cl, CU: cu}
	inst.base = newBase("rightIndex", []string{out}, "", target, rl, ru, cl, cu)
	return inst
}

// resolveBounds converts 1-based inclusive (possibly 0/unbounded) operands to
// 0-based exclusive slice bounds.
func resolveBounds(ctx *runtime.Context, rows, cols int, rl, ru, cl, cu Operand) (r0, r1, c0, c1 int, err error) {
	get := func(o Operand, def int) (int, error) {
		v, err := o.Float64(ctx)
		if err != nil {
			return 0, err
		}
		if v == 0 {
			return def, nil
		}
		return int(v), nil
	}
	rlV, err := get(rl, 1)
	if err != nil {
		return
	}
	ruV, err := get(ru, rows)
	if err != nil {
		return
	}
	clV, err := get(cl, 1)
	if err != nil {
		return
	}
	cuV, err := get(cu, cols)
	if err != nil {
		return
	}
	r0, r1, c0, c1 = rlV-1, ruV, clV-1, cuV
	if r0 < 0 || r1 > rows || c0 < 0 || c1 > cols || r0 >= r1 || c0 >= c1 {
		err = fmt.Errorf("instructions: index [%d:%d,%d:%d] out of bounds for %dx%d matrix", rlV, ruV, clV, cuV, rows, cols)
	}
	return
}

// Execute implements runtime.Instruction.
func (i *IndexInst) Execute(ctx *runtime.Context) error {
	d, err := i.Target.Resolve(ctx)
	if err != nil {
		return err
	}
	// blocked targets assemble the region from the covering blocks only: no
	// full collect, and a spilled object restores just the touched blocks
	if bo, ok := d.(*runtime.BlockedMatrixObject); ok {
		dc := bo.DataCharacteristics()
		r0, r1, c0, c1, err := resolveBounds(ctx, int(dc.Rows), int(dc.Cols), i.RL, i.RU, i.CL, i.CU)
		if err != nil {
			return err
		}
		res, err := bo.Region(r0, r1, c0, c1)
		if err != nil {
			return err
		}
		ctx.SetMatrix(i.outs[0], res)
		return nil
	}
	blk, err := i.Target.MatrixBlockFor(ctx, i.opcode)
	if err != nil {
		return err
	}
	r0, r1, c0, c1, err := resolveBounds(ctx, blk.Rows(), blk.Cols(), i.RL, i.RU, i.CL, i.CU)
	if err != nil {
		return err
	}
	res, err := matrix.Slice(blk, r0, r1, c0, c1)
	if err != nil {
		return err
	}
	ctx.SetMatrix(i.outs[0], res)
	return nil
}

// LeftIndexInst implements left indexing target[rl:ru, cl:cu] = src, creating
// a new matrix for the output variable (copy-on-write).
type LeftIndexInst struct {
	base
	Target, Src    Operand
	RL, RU, CL, CU Operand
}

// NewLeftIndex creates a left-indexing instruction.
func NewLeftIndex(out string, target, src, rl, ru, cl, cu Operand) *LeftIndexInst {
	inst := &LeftIndexInst{Target: target, Src: src, RL: rl, RU: ru, CL: cl, CU: cu}
	inst.base = newBase("leftIndex", []string{out}, "", target, src, rl, ru, cl, cu)
	return inst
}

// Execute implements runtime.Instruction.
func (i *LeftIndexInst) Execute(ctx *runtime.Context) error {
	target, err := i.Target.MatrixBlockFor(ctx, i.opcode)
	if err != nil {
		return err
	}
	src, err := i.Src.MatrixBlockFor(ctx, i.opcode)
	if err != nil {
		return err
	}
	r0, r1, c0, c1, err := resolveBounds(ctx, target.Rows(), target.Cols(), i.RL, i.RU, i.CL, i.CU)
	if err != nil {
		return err
	}
	// scalar source broadcast to the range
	if src.Rows() == 1 && src.Cols() == 1 && (r1-r0 != 1 || c1-c0 != 1) {
		src = matrix.Fill(r1-r0, c1-c0, src.Get(0, 0))
	}
	res, err := matrix.LeftIndex(target, src, r0, r1, c0, c1)
	if err != nil {
		return err
	}
	ctx.SetMatrix(i.outs[0], res)
	return nil
}
