package instructions

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"github.com/systemds/systemds-go/internal/frame"
	sdsio "github.com/systemds/systemds-go/internal/io"
	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/runtime"
	"github.com/systemds/systemds-go/internal/types"
)

func newCtx() *runtime.Context {
	cfg := runtime.DefaultConfig()
	cfg.Parallelism = 2
	return runtime.NewContext(cfg)
}

func getMat(t *testing.T, ctx *runtime.Context, name string) *matrix.MatrixBlock {
	t.Helper()
	blk, err := ctx.GetMatrixBlock(name)
	if err != nil {
		t.Fatal(err)
	}
	return blk
}

func getScalar(t *testing.T, ctx *runtime.Context, name string) *runtime.Scalar {
	t.Helper()
	s, err := ctx.GetScalar(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestOperandResolution(t *testing.T) {
	ctx := newCtx()
	ctx.Set("s", runtime.NewDouble(3))
	ctx.SetMatrix("m", matrix.FromRows([][]float64{{7}}))
	if v, _ := LitDouble(2.5).Float64(ctx); v != 2.5 {
		t.Error("literal resolution wrong")
	}
	if v, _ := Var("s").Float64(ctx); v != 3 {
		t.Error("variable resolution wrong")
	}
	// 1x1 matrix auto-casts to scalar
	if v, err := Var("m").Scalar(ctx); err != nil || v.Float64() != 7 {
		t.Errorf("1x1 matrix as scalar: %v %v", v, err)
	}
	if _, err := Var("missing").Resolve(ctx); err == nil {
		t.Error("expected missing variable error")
	}
	if LitString("x").Desc() != "x" || Var("v").Desc() != "°v" {
		t.Error("operand descriptions wrong")
	}
	if s, _ := LitBool(true).StringValue(ctx); s != "TRUE" {
		t.Error("bool literal string wrong")
	}
	if v, _ := LitInt(4).Int(ctx); v != 4 {
		t.Error("int literal wrong")
	}
	mb, err := LitDouble(5).MatrixBlock(ctx)
	if err != nil || mb.Get(0, 0) != 5 {
		t.Error("literal to matrix promotion wrong")
	}
}

func TestDataGenInstructions(t *testing.T) {
	ctx := newCtx()
	if err := NewRand("R", LitInt(5), LitInt(4), LitDouble(0), LitDouble(1), LitDouble(1), LitString("uniform"), LitInt(9)).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	r := getMat(t, ctx, "R")
	if r.Rows() != 5 || r.Cols() != 4 {
		t.Errorf("rand dims %dx%d", r.Rows(), r.Cols())
	}
	if err := NewRand("N", LitInt(5), LitInt(4), LitDouble(0), LitDouble(1), LitDouble(1), LitString("normal"), LitInt(9)).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if err := NewSeq("S", LitDouble(1), LitDouble(5), LitDouble(2)).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	s := getMat(t, ctx, "S")
	if s.Rows() != 3 || s.Get(2, 0) != 5 {
		t.Errorf("seq = %v", s)
	}
	if err := NewFill("F", LitDouble(2.5), LitInt(2), LitInt(3)).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	f := getMat(t, ctx, "F")
	if f.Get(1, 2) != 2.5 {
		t.Errorf("fill = %v", f)
	}
	if err := NewFill("bad", LitDouble(1), LitInt(-1), LitInt(2)).Execute(ctx); err == nil {
		t.Error("expected negative dims error")
	}
	if err := NewSample("P", LitInt(10), LitInt(5), LitBool(false), LitInt(3)).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	p := getMat(t, ctx, "P")
	if p.Rows() != 5 || matrix.Max(p, 1) > 10 || matrix.Min(p, 1) < 1 {
		t.Errorf("sample = %v", p)
	}
}

func TestUnaryAndAggInstructions(t *testing.T) {
	ctx := newCtx()
	ctx.SetMatrix("X", matrix.FromRows([][]float64{{1, -4}, {9, 16}}))
	ctx.Set("v", runtime.NewDouble(-3))
	if err := NewUnary("abs", "A", Var("X")).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if getMat(t, ctx, "A").Get(0, 1) != 4 {
		t.Error("matrix abs wrong")
	}
	if err := NewUnary("abs", "av", Var("v")).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if getScalar(t, ctx, "av").Float64() != 3 {
		t.Error("scalar abs wrong")
	}
	if err := NewUnary("!", "nb", LitBool(false)).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if !getScalar(t, ctx, "nb").Bool() {
		t.Error("not wrong")
	}
	if err := NewUnary("warp", "w", Var("X")).Execute(ctx); err == nil {
		t.Error("expected unknown op error")
	}
	if !IsUnaryOp("exp") || IsUnaryOp("zzz") {
		t.Error("IsUnaryOp wrong")
	}

	for op, want := range map[string]float64{"sum": 22, "min": -4, "max": 16, "mean": 5.5, "trace": 17} {
		if err := NewAgg(op, "r", Var("X")).Execute(ctx); err != nil {
			t.Fatal(err)
		}
		if got := getScalar(t, ctx, "r").Float64(); got != want {
			t.Errorf("%s = %v, want %v", op, got, want)
		}
	}
	if err := NewAgg("colSums", "cs", Var("X")).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if !getMat(t, ctx, "cs").Equals(matrix.FromRows([][]float64{{10, 12}}), 0) {
		t.Error("colSums wrong")
	}
	if err := NewAgg("nrow", "nr", Var("X")).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if getScalar(t, ctx, "nr").Float64() != 2 {
		t.Error("nrow wrong")
	}
	// aggregates over scalars and frames
	if err := NewAgg("nrow", "sr", Var("v")).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	fr := frame.NewFrame(types.UniformSchema(types.FP64, 2), 3)
	ctx.Set("F", runtime.NewFrameObject(fr))
	if err := NewAgg("ncol", "fc", Var("F")).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if getScalar(t, ctx, "fc").Float64() != 2 {
		t.Error("frame ncol wrong")
	}
	if !IsAggOp("sum") || IsAggOp("banana") {
		t.Error("IsAggOp wrong")
	}
}

func TestBinaryAndTernaryInstructions(t *testing.T) {
	ctx := newCtx()
	ctx.SetMatrix("A", matrix.FromRows([][]float64{{1, 2}, {3, 4}}))
	ctx.SetMatrix("B", matrix.FromRows([][]float64{{10, 20}, {30, 40}}))
	if err := NewBinary("+", "C", Var("A"), Var("B")).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if getMat(t, ctx, "C").Get(1, 1) != 44 {
		t.Error("matrix add wrong")
	}
	if err := NewBinary("*", "D", Var("A"), LitDouble(2)).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if getMat(t, ctx, "D").Get(0, 0) != 2 {
		t.Error("matrix-scalar multiply wrong")
	}
	if err := NewBinary("-", "E", LitDouble(10), Var("A")).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if getMat(t, ctx, "E").Get(0, 0) != 9 {
		t.Error("scalar-matrix subtract wrong")
	}
	if err := NewBinary("<", "F", LitDouble(1), LitDouble(2)).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if !getScalar(t, ctx, "F").Bool() {
		t.Error("scalar comparison wrong")
	}
	// string concatenation and comparison
	if err := NewBinary("+", "S", LitString("n="), LitInt(5)).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if getScalar(t, ctx, "S").StringValue() != "n=5" {
		t.Error("string concat wrong")
	}
	if err := NewBinary("==", "SE", LitString("a"), LitString("a")).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if !getScalar(t, ctx, "SE").Bool() {
		t.Error("string equality wrong")
	}
	if err := NewBinary("*", "SX", LitString("a"), LitString("b")).Execute(ctx); err == nil {
		t.Error("expected unsupported string op error")
	}
	if err := NewBinary("zz", "Z", Var("A"), Var("B")).Execute(ctx); err == nil {
		t.Error("expected unknown op error")
	}
	if !IsBinaryOp("+") || IsBinaryOp("@@") {
		t.Error("IsBinaryOp wrong")
	}
	// ternary with matrix condition
	ctx.SetMatrix("cond", matrix.FromRows([][]float64{{1, 0}, {0, 1}}))
	if err := NewTernary("T", Var("cond"), Var("A"), Var("B")).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	tm := getMat(t, ctx, "T")
	if tm.Get(0, 0) != 1 || tm.Get(0, 1) != 20 {
		t.Error("ternary matrix wrong")
	}
	// ternary with scalar condition picks a branch without evaluation error
	if err := NewTernary("T2", LitBool(false), Var("A"), LitDouble(7)).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if getScalar(t, ctx, "T2").Float64() != 7 {
		t.Error("scalar ternary wrong")
	}
}

func TestMatMultAndTSMMInstructions(t *testing.T) {
	ctx := newCtx()
	x := matrix.RandUniform(30, 6, -1, 1, 1.0, 4)
	y := matrix.RandUniform(6, 3, -1, 1, 1.0, 5)
	ctx.SetMatrix("X", x)
	ctx.SetMatrix("Y", y)
	if err := NewMatMult("P", Var("X"), Var("Y")).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	want, _ := matrix.Multiply(x, y, 1)
	if !getMat(t, ctx, "P").Equals(want, 1e-9) {
		t.Error("matmult wrong")
	}
	if err := NewTSMM("G", Var("X")).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if !getMat(t, ctx, "G").Equals(matrix.TSMM(x, 1), 1e-9) {
		t.Error("tsmm wrong")
	}
	// BLAS kernel path
	ctx.Config.UseBLAS = true
	if err := NewMatMult("PB", Var("X"), Var("Y")).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if !getMat(t, ctx, "PB").Equals(want, 1e-9) {
		t.Error("BLAS matmult wrong")
	}
	ctx.Config.UseBLAS = false
	// distributed path
	ctx.Config.DistEnabled = true
	mm := NewMatMult("PD", Var("X"), Var("Y"))
	mm.ExecType = types.ExecDist
	if err := mm.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if !getMat(t, ctx, "PD").Equals(want, 1e-9) {
		t.Error("distributed matmult wrong")
	}
	ts := NewTSMM("GD", Var("X"))
	ts.ExecType = types.ExecDist
	if err := ts.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if !getMat(t, ctx, "GD").Equals(matrix.TSMM(x, 1), 1e-9) {
		t.Error("distributed tsmm wrong")
	}
}

func TestReorgIndexNaryInstructions(t *testing.T) {
	ctx := newCtx()
	x := matrix.FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	ctx.SetMatrix("X", x)
	if err := NewReorg("r'", "T", Var("X")).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if !getMat(t, ctx, "T").Equals(matrix.Transpose(x), 0) {
		t.Error("transpose wrong")
	}
	ctx.SetMatrix("v", matrix.FromRows([][]float64{{1}, {2}}))
	if err := NewReorg("rdiag", "D", Var("v")).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if getMat(t, ctx, "D").Get(1, 1) != 2 {
		t.Error("diag wrong")
	}
	if err := NewReorg("rev", "R", Var("X")).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if getMat(t, ctx, "R").Get(0, 0) != 4 {
		t.Error("rev wrong")
	}
	if err := NewReorg("spin", "Z", Var("X")).Execute(ctx); err == nil {
		t.Error("expected unknown reorg error")
	}
	if err := NewNary("cbind", "CB", Var("X"), Var("X")).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if getMat(t, ctx, "CB").Cols() != 6 {
		t.Error("cbind wrong")
	}
	if err := NewNary("rbind", "RB", Var("X"), Var("X")).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if getMat(t, ctx, "RB").Rows() != 4 {
		t.Error("rbind wrong")
	}
	if err := NewNary("zip", "ZZ", Var("X")).Execute(ctx); err == nil {
		t.Error("expected unknown nary error")
	}
	// right indexing with 1-based inclusive bounds (0 = unbounded)
	if err := NewRightIndex("S", Var("X"), LitInt(1), LitInt(2), LitInt(2), LitInt(3)).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if !getMat(t, ctx, "S").Equals(matrix.FromRows([][]float64{{2, 3}, {5, 6}}), 0) {
		t.Error("rightIndex wrong")
	}
	if err := NewRightIndex("S2", Var("X"), LitInt(2), LitInt(2), LitInt(0), LitInt(0)).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if getMat(t, ctx, "S2").Cols() != 3 || getMat(t, ctx, "S2").Get(0, 0) != 4 {
		t.Error("row slice wrong")
	}
	if err := NewRightIndex("S3", Var("X"), LitInt(5), LitInt(9), LitInt(0), LitInt(0)).Execute(ctx); err == nil {
		t.Error("expected out of bounds error")
	}
	// left indexing
	if err := NewLeftIndex("L", Var("X"), LitDouble(9), LitInt(1), LitInt(1), LitInt(1), LitInt(1)).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if getMat(t, ctx, "L").Get(0, 0) != 9 {
		t.Error("leftIndex wrong")
	}
	// scalar broadcast into a range
	if err := NewLeftIndex("L2", Var("X"), LitDouble(7), LitInt(1), LitInt(2), LitInt(1), LitInt(3)).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if matrix.Sum(getMat(t, ctx, "L2"), 1) != 42 {
		t.Error("broadcast leftIndex wrong")
	}
}

func TestSolveCastParamBuiltinInstructions(t *testing.T) {
	ctx := newCtx()
	a := matrix.FromRows([][]float64{{4, 1}, {1, 3}})
	xTrue := matrix.FromRows([][]float64{{1}, {2}})
	b, _ := matrix.Multiply(a, xTrue, 1)
	ctx.SetMatrix("A", a)
	ctx.SetMatrix("b", b)
	if err := NewSolve("x", Var("A"), Var("b")).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if !getMat(t, ctx, "x").Equals(xTrue, 1e-10) {
		t.Error("solve wrong")
	}
	if err := NewInverse("Ai", Var("A")).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	prod, _ := matrix.Multiply(a, getMat(t, ctx, "Ai"), 1)
	if !prod.Equals(matrix.Identity(2), 1e-10) {
		t.Error("inverse wrong")
	}
	if err := NewCholesky("L", Var("A")).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if err := NewEigen("ev", "EV", Var("A")).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if getMat(t, ctx, "ev").Rows() != 2 || getMat(t, ctx, "EV").Cols() != 2 {
		t.Error("eigen outputs wrong")
	}
	// casts
	ctx.SetMatrix("one", matrix.FromRows([][]float64{{5}}))
	if err := NewCast("castdts", "s", Var("one")).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if getScalar(t, ctx, "s").Float64() != 5 {
		t.Error("as.scalar wrong")
	}
	if err := NewCast("castdts", "bad", Var("A")).Execute(ctx); err == nil {
		t.Error("expected as.scalar shape error")
	}
	if err := NewCast("castsdm", "m", LitDouble(3)).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if getMat(t, ctx, "m").Get(0, 0) != 3 {
		t.Error("as.matrix wrong")
	}
	if err := NewCast("as.integer", "i", LitDouble(3.9)).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if getScalar(t, ctx, "i").Float64() != 3 {
		t.Error("as.integer wrong")
	}
	// parameterized builtins
	ctx.SetMatrix("M", matrix.FromRows([][]float64{{1, 0}, {0, 0}, {3, 4}}))
	if err := NewParamBuiltin("removeEmpty", "RE", map[string]Operand{"target": Var("M"), "margin": LitString("rows")}).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if getMat(t, ctx, "RE").Rows() != 2 {
		t.Error("removeEmpty wrong")
	}
	if err := NewParamBuiltin("replace", "RP", map[string]Operand{"target": Var("M"), "pattern": LitDouble(0), "replacement": LitDouble(-1)}).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if getMat(t, ctx, "RP").Get(1, 0) != -1 {
		t.Error("replace wrong")
	}
	// NaN replacement
	nanMat := matrix.FromRows([][]float64{{math.NaN(), 1}})
	ctx.SetMatrix("NM", nanMat)
	if err := NewParamBuiltin("replace", "RN", map[string]Operand{"target": Var("NM"), "pattern": LitDouble(math.NaN()), "replacement": LitDouble(0)}).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if getMat(t, ctx, "RN").Get(0, 0) != 0 {
		t.Error("NaN replace wrong")
	}
	if err := NewParamBuiltin("order", "OR", map[string]Operand{"target": Var("M"), "by": LitInt(1), "decreasing": LitBool(true)}).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if getMat(t, ctx, "OR").Get(0, 0) != 3 {
		t.Error("order wrong")
	}
	if err := NewParamBuiltin("quantile", "Q", map[string]Operand{"target": Var("b"), "p": LitDouble(0.5)}).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if err := NewParamBuiltin("mystery", "X1", map[string]Operand{}).Execute(ctx); err == nil {
		t.Error("expected unknown builtin error")
	}
}

func TestTransformInstructions(t *testing.T) {
	ctx := newCtx()
	schema := types.Schema{types.String, types.FP64}
	f := frame.NewFrame(schema, 3)
	_ = f.SetColumnNames([]string{"city", "v"})
	_ = f.SetString(0, 0, "a")
	_ = f.SetString(1, 0, "b")
	_ = f.SetString(2, 0, "a")
	_ = f.SetNumeric(0, 1, 1)
	_ = f.SetNumeric(1, 1, 2)
	_ = f.SetNumeric(2, 1, 3)
	ctx.Set("F", runtime.NewFrameObject(f))
	enc := NewTransformEncode("X", "M", Var("F"), LitString("dummycode=city;scale=v"))
	if err := enc.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	x := getMat(t, ctx, "X")
	if x.Cols() != 3 {
		t.Errorf("encoded cols = %d", x.Cols())
	}
	// apply to the same frame reproduces the same encoding
	app := NewTransformApply("X2", Var("F"), Var("M"))
	if err := app.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if !getMat(t, ctx, "X2").Equals(x, 1e-12) {
		t.Error("transformapply differs from transformencode output")
	}
	// spec parse errors
	if _, err := ParseTransformSpec("bogus"); err == nil {
		t.Error("expected spec parse error")
	}
	if _, err := ParseTransformSpec("bin=v"); err == nil {
		t.Error("expected bin clause error")
	}
	spec, err := ParseTransformSpec("recode=a,b;dummycode=c;bin=d:4;impute=e:mean;scale=f")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Recode) != 2 || spec.Bin["d"] != 4 || spec.Impute["e"] != "mean" {
		t.Errorf("spec = %+v", spec)
	}
}

func TestControlInstructions(t *testing.T) {
	ctx := newCtx()
	var buf bytes.Buffer
	ctx.Out = &buf
	ctx.SetMatrix("M", matrix.FromRows([][]float64{{1, 2}}))
	if err := NewPrint(LitString("hello")).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if err := NewPrint(Var("M")).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "hello") || !strings.Contains(buf.String(), "1.0000") {
		t.Errorf("print output = %q", buf.String())
	}
	if err := NewAssign("copy", Var("M")).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if !getMat(t, ctx, "copy").Equals(getMat(t, ctx, "M"), 0) {
		t.Error("assign wrong")
	}
	if err := NewStop(LitString("boom")).Execute(ctx); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Error("stop should error with message")
	}
	if err := NewAssert(LitBool(true)).Execute(ctx); err != nil {
		t.Error("assert true should pass")
	}
	if err := NewAssert(LitBool(false)).Execute(ctx); err == nil {
		t.Error("assert false should fail")
	}
}

func TestReadWriteInstructions(t *testing.T) {
	ctx := newCtx()
	dir := t.TempDir()
	m := matrix.RandUniform(10, 3, -1, 1, 1.0, 6)
	csvPath := filepath.Join(dir, "m.csv")
	if err := sdsio.WriteMatrixCSV(csvPath, m, sdsio.DefaultCSVOptions()); err != nil {
		t.Fatal(err)
	}
	if err := NewRead("X", LitString(csvPath), LitString(""), LitString("matrix"), LitBool(false)).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if !getMat(t, ctx, "X").Equals(m, 1e-12) {
		t.Error("csv read wrong")
	}
	binPath := filepath.Join(dir, "m.bin")
	if err := NewWrite(Var("X"), LitString(binPath), LitString("binary")).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if err := NewRead("X2", LitString(binPath), LitString("binary"), LitString("matrix"), LitBool(false)).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if !getMat(t, ctx, "X2").Equals(m, 1e-12) {
		t.Error("binary round trip wrong")
	}
	// frame read
	framePath := filepath.Join(dir, "f.csv")
	if err := NewWrite(Var("X"), LitString(framePath), LitString("csv")).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if err := NewRead("F", LitString(framePath), LitString("csv"), LitString("frame"), LitBool(false)).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.GetFrame("F"); err != nil {
		t.Error("frame read wrong")
	}
	// scalar write
	ctx.Set("s", runtime.NewDouble(5))
	if err := NewWrite(Var("s"), LitString(filepath.Join(dir, "s.csv")), LitString("csv")).Execute(ctx); err != nil {
		t.Fatal(err)
	}
	// missing file error
	if err := NewRead("Z", LitString(filepath.Join(dir, "missing.csv")), LitString(""), LitString("matrix"), LitBool(false)).Execute(ctx); err == nil {
		t.Error("expected missing file error")
	}
}

func TestFCallInstruction(t *testing.T) {
	ctx := newCtx()
	prog := &runtime.Program{Functions: map[string]*runtime.FunctionBlock{}}
	prog.Functions["twice"] = &runtime.FunctionBlock{
		Name:    "twice",
		Params:  []runtime.FunctionParam{{Name: "x"}},
		Returns: []string{"y"},
		Body: []runtime.ProgramBlock{&runtime.BasicBlock{Instructions: []runtime.Instruction{
			NewBinary("*", "y", Var("x"), LitDouble(2)),
		}}},
	}
	ctx.Prog = prog
	inst := NewFCall("twice", []Operand{LitDouble(21)}, nil, []string{"result"})
	if err := inst.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if getScalar(t, ctx, "result").Float64() != 42 {
		t.Error("fcall result wrong")
	}
	if err := NewFCall("nothere", nil, nil, nil).Execute(ctx); err == nil {
		t.Error("expected unknown function error")
	}
	if err := NewFCall("twice", nil, map[string]Operand{"zz": LitDouble(1)}, []string{"r"}).Execute(ctx); err == nil {
		t.Error("expected unknown parameter error")
	}
}
