package instructions

import (
	"fmt"

	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/runtime"
)

// DataGenInst generates matrices: rand (uniform or normal), seq, and fill
// (the matrix(value, rows, cols) constructor).
type DataGenInst struct {
	base
	Kind string // "rand", "seq", "fill", "sample"
	// rand parameters
	Rows, Cols         Operand
	Min, Max, Sparsity Operand
	PDF                Operand // "uniform" or "normal"
	Seed               Operand
	// seq parameters
	From, To, Incr Operand
	// fill value
	Value Operand
	// sample parameters
	Population, Size Operand
	Replace          Operand
}

// NewRand creates a rand data generation instruction.
func NewRand(out string, rows, cols, minV, maxV, sparsity, pdf, seed Operand) *DataGenInst {
	inst := &DataGenInst{Kind: "rand", Rows: rows, Cols: cols, Min: minV, Max: maxV, Sparsity: sparsity, PDF: pdf, Seed: seed}
	inst.base = newBase("rand", []string{out}, "", rows, cols, minV, maxV, sparsity, pdf, seed)
	return inst
}

// NewSeq creates a seq data generation instruction.
func NewSeq(out string, from, to, incr Operand) *DataGenInst {
	inst := &DataGenInst{Kind: "seq", From: from, To: to, Incr: incr}
	inst.base = newBase("seq", []string{out}, "", from, to, incr)
	return inst
}

// NewFill creates a fill (matrix constructor) instruction.
func NewFill(out string, value, rows, cols Operand) *DataGenInst {
	inst := &DataGenInst{Kind: "fill", Value: value, Rows: rows, Cols: cols}
	inst.base = newBase("fill", []string{out}, "", value, rows, cols)
	return inst
}

// NewSample creates a sample instruction.
func NewSample(out string, population, size, replace, seed Operand) *DataGenInst {
	inst := &DataGenInst{Kind: "sample", Population: population, Size: size, Replace: replace, Seed: seed}
	inst.base = newBase("sample", []string{out}, "", population, size, replace, seed)
	return inst
}

// Execute implements runtime.Instruction.
func (i *DataGenInst) Execute(ctx *runtime.Context) error {
	switch i.Kind {
	case "rand":
		rows, err := i.Rows.Int(ctx)
		if err != nil {
			return err
		}
		cols, err := i.Cols.Int(ctx)
		if err != nil {
			return err
		}
		minV, err := i.Min.Float64(ctx)
		if err != nil {
			return err
		}
		maxV, err := i.Max.Float64(ctx)
		if err != nil {
			return err
		}
		sp, err := i.Sparsity.Float64(ctx)
		if err != nil {
			return err
		}
		pdf, err := i.PDF.StringValue(ctx)
		if err != nil {
			return err
		}
		seedF, err := i.Seed.Float64(ctx)
		if err != nil {
			return err
		}
		seed := int64(seedF)
		if seed < 0 {
			seed = 42
		}
		var m *matrix.MatrixBlock
		if pdf == "normal" {
			m = matrix.RandNormal(rows, cols, sp, seed)
		} else {
			m = matrix.RandUniform(rows, cols, minV, maxV, sp, seed)
		}
		ctx.SetMatrix(i.outs[0], m)
		return nil
	case "seq":
		from, err := i.From.Float64(ctx)
		if err != nil {
			return err
		}
		to, err := i.To.Float64(ctx)
		if err != nil {
			return err
		}
		incr, err := i.Incr.Float64(ctx)
		if err != nil {
			return err
		}
		if incr == 0 {
			incr = 1
		}
		if to < from && incr > 0 {
			incr = -incr
		}
		ctx.SetMatrix(i.outs[0], matrix.Seq(from, to, incr))
		return nil
	case "fill":
		v, err := i.Value.Float64(ctx)
		if err != nil {
			return err
		}
		rows, err := i.Rows.Int(ctx)
		if err != nil {
			return err
		}
		cols, err := i.Cols.Int(ctx)
		if err != nil {
			return err
		}
		if rows < 0 || cols < 0 {
			return fmt.Errorf("instructions: matrix(%v, rows=%d, cols=%d): negative dimensions", v, rows, cols)
		}
		ctx.SetMatrix(i.outs[0], matrix.Fill(rows, cols, v))
		return nil
	case "sample":
		pop, err := i.Population.Int(ctx)
		if err != nil {
			return err
		}
		size, err := i.Size.Int(ctx)
		if err != nil {
			return err
		}
		replaceS, err := i.Replace.Scalar(ctx)
		if err != nil {
			return err
		}
		seedF, err := i.Seed.Float64(ctx)
		if err != nil {
			return err
		}
		seed := int64(seedF)
		if seed < 0 {
			seed = 7
		}
		ctx.SetMatrix(i.outs[0], matrix.Sample(pop, size, replaceS.Bool(), seed))
		return nil
	default:
		return fmt.Errorf("instructions: unknown datagen kind %q", i.Kind)
	}
}
