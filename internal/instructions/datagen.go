package instructions

import (
	"fmt"

	"github.com/systemds/systemds-go/internal/dist"
	"github.com/systemds/systemds-go/internal/matrix"
	"github.com/systemds/systemds-go/internal/runtime"
	"github.com/systemds/systemds-go/internal/types"
)

// DataGenInst generates matrices: rand (uniform or normal), seq, and fill
// (the matrix(value, rows, cols) constructor). rand/seq planned for the
// blocked backend generate the partitions directly — block by block, with
// per-block derived seeds — so a huge generated matrix never materializes as
// one local allocation just to be cut apart again.
type DataGenInst struct {
	base
	Kind string // "rand", "seq", "fill", "sample"
	// ExecType selects blocked generation for outputs above the dist budget.
	ExecType types.ExecType
	// BlockedOut keeps the generated result in blocked representation.
	BlockedOut bool
	// EstBytes is the planner's estimated output size in bytes (-1 unknown),
	// recorded next to the actual bytes when the operator runs blocked.
	EstBytes int64
	// rand parameters
	Rows, Cols         Operand
	Min, Max, Sparsity Operand
	PDF                Operand // "uniform" or "normal"
	Seed               Operand
	// seq parameters
	From, To, Incr Operand
	// fill value
	Value Operand
	// sample parameters
	Population, Size Operand
	Replace          Operand
}

// NewRand creates a rand data generation instruction.
func NewRand(out string, rows, cols, minV, maxV, sparsity, pdf, seed Operand) *DataGenInst {
	inst := &DataGenInst{Kind: "rand", Rows: rows, Cols: cols, Min: minV, Max: maxV, Sparsity: sparsity, PDF: pdf, Seed: seed, EstBytes: -1}
	inst.base = newBase("rand", []string{out}, "", rows, cols, minV, maxV, sparsity, pdf, seed)
	return inst
}

// NewSeq creates a seq data generation instruction.
func NewSeq(out string, from, to, incr Operand) *DataGenInst {
	inst := &DataGenInst{Kind: "seq", From: from, To: to, Incr: incr, EstBytes: -1}
	inst.base = newBase("seq", []string{out}, "", from, to, incr)
	return inst
}

// NewFill creates a fill (matrix constructor) instruction.
func NewFill(out string, value, rows, cols Operand) *DataGenInst {
	inst := &DataGenInst{Kind: "fill", Value: value, Rows: rows, Cols: cols}
	inst.base = newBase("fill", []string{out}, "", value, rows, cols)
	return inst
}

// NewSample creates a sample instruction.
func NewSample(out string, population, size, replace, seed Operand) *DataGenInst {
	inst := &DataGenInst{Kind: "sample", Population: population, Size: size, Replace: replace, Seed: seed}
	inst.base = newBase("sample", []string{out}, "", population, size, replace, seed)
	return inst
}

// Execute implements runtime.Instruction.
func (i *DataGenInst) Execute(ctx *runtime.Context) error {
	switch i.Kind {
	case "rand":
		rows, err := i.Rows.Int(ctx)
		if err != nil {
			return err
		}
		cols, err := i.Cols.Int(ctx)
		if err != nil {
			return err
		}
		minV, err := i.Min.Float64(ctx)
		if err != nil {
			return err
		}
		maxV, err := i.Max.Float64(ctx)
		if err != nil {
			return err
		}
		sp, err := i.Sparsity.Float64(ctx)
		if err != nil {
			return err
		}
		pdf, err := i.PDF.StringValue(ctx)
		if err != nil {
			return err
		}
		seedF, err := i.Seed.Float64(ctx)
		if err != nil {
			return err
		}
		seed := int64(seedF)
		if seed < 0 {
			seed = 42
		}
		if i.ExecType == types.ExecDist && ctx.Config.DistEnabled {
			return i.generateBlockedRand(ctx, rows, cols, minV, maxV, sp, pdf, seed)
		}
		var m *matrix.MatrixBlock
		if pdf == "normal" {
			m = matrix.RandNormal(rows, cols, sp, seed)
		} else {
			m = matrix.RandUniform(rows, cols, minV, maxV, sp, seed)
		}
		ctx.SetMatrix(i.outs[0], m)
		return nil
	case "seq":
		from, err := i.From.Float64(ctx)
		if err != nil {
			return err
		}
		to, err := i.To.Float64(ctx)
		if err != nil {
			return err
		}
		incr, err := i.Incr.Float64(ctx)
		if err != nil {
			return err
		}
		if incr == 0 {
			incr = 1
		}
		if to < from && incr > 0 {
			incr = -incr
		}
		if i.ExecType == types.ExecDist && ctx.Config.DistEnabled {
			return i.generateBlockedSeq(ctx, from, to, incr)
		}
		ctx.SetMatrix(i.outs[0], matrix.Seq(from, to, incr))
		return nil
	case "fill":
		v, err := i.Value.Float64(ctx)
		if err != nil {
			return err
		}
		rows, err := i.Rows.Int(ctx)
		if err != nil {
			return err
		}
		cols, err := i.Cols.Int(ctx)
		if err != nil {
			return err
		}
		if rows < 0 || cols < 0 {
			return fmt.Errorf("instructions: matrix(%v, rows=%d, cols=%d): negative dimensions", v, rows, cols)
		}
		ctx.SetMatrix(i.outs[0], matrix.Fill(rows, cols, v))
		return nil
	case "sample":
		pop, err := i.Population.Int(ctx)
		if err != nil {
			return err
		}
		size, err := i.Size.Int(ctx)
		if err != nil {
			return err
		}
		replaceS, err := i.Replace.Scalar(ctx)
		if err != nil {
			return err
		}
		seedF, err := i.Seed.Float64(ctx)
		if err != nil {
			return err
		}
		seed := int64(seedF)
		if seed < 0 {
			seed = 7
		}
		ctx.SetMatrix(i.outs[0], matrix.Sample(pop, size, replaceS.Bool(), seed))
		return nil
	default:
		return fmt.Errorf("instructions: unknown datagen kind %q", i.Kind)
	}
}

// mixSeed derives a per-block seed from the root seed and the block index
// with a splitmix64-style finalizer, so block streams are decorrelated and
// the blocked generation stays deterministic for a given root seed.
func mixSeed(seed int64, idx int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(idx+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// generateBlockedRand builds the blocked matrix partition-by-partition: each
// block is generated with its own derived seed and boundary-clipped shape, so
// the full matrix never exists as one local allocation and no repartition is
// ever paid (DistStats.Partitions stays untouched).
func (i *DataGenInst) generateBlockedRand(ctx *runtime.Context, rows, cols int, minV, maxV, sp float64, pdf string, seed int64) error {
	bs := ctx.Config.DistBlocksize
	if bs <= 0 {
		bs = types.DefaultBlocksize
	}
	bm := &dist.BlockedMatrix{Rows: rows, Cols: cols, Blocksize: bs}
	gr, gc := bm.GridRows(), bm.GridCols()
	bm.Blocks = make([]*matrix.MatrixBlock, gr*gc)
	for bi := 0; bi < gr; bi++ {
		for bj := 0; bj < gc; bj++ {
			idx := bi*gc + bj
			br := min(bs, rows-bi*bs)
			bc := min(bs, cols-bj*bs)
			if pdf == "normal" {
				bm.Blocks[idx] = matrix.RandNormal(br, bc, sp, mixSeed(seed, idx))
			} else {
				bm.Blocks[idx] = matrix.RandUniform(br, bc, minV, maxV, sp, mixSeed(seed, idx))
			}
		}
	}
	return bindBlockedResult(ctx, i.outs[0], bm, i.BlockedOut, i.opcode, "dist", i.EstBytes)
}

// generateBlockedSeq streams the sequence straight into its blocks with the
// same accumulation the local kernel uses, so the blocked result is bitwise
// identical to matrix.Seq without ever materializing the full vector.
func (i *DataGenInst) generateBlockedSeq(ctx *runtime.Context, from, to, incr float64) error {
	bs := ctx.Config.DistBlocksize
	if bs <= 0 {
		bs = types.DefaultBlocksize
	}
	n := matrix.SeqLength(from, to, incr)
	bm := &dist.BlockedMatrix{Rows: n, Cols: 1, Blocksize: bs}
	gr := bm.GridRows()
	bm.Blocks = make([]*matrix.MatrixBlock, gr)
	v := from
	for bi := 0; bi < gr; bi++ {
		br := min(bs, n-bi*bs)
		blk := matrix.NewDense(br, 1)
		for r := 0; r < br; r++ {
			blk.Set(r, 0, v)
			v += incr
		}
		bm.Blocks[bi] = blk
	}
	return bindBlockedResult(ctx, i.outs[0], bm, i.BlockedOut, i.opcode, "dist", i.EstBytes)
}
